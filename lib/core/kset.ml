type state = {
  me : Proc.t;
  input : int;
  decision : int option;
}

let one_round ~inputs =
  {
    Algorithm.name = "kset-one-round";
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Kset.one_round: inputs length mismatch";
        { me = p; input = inputs.(p); decision = None });
    emit = (fun s ~round:_ -> s.input);
    deliver =
      (fun s ~round ~view ->
        if round > 1 || Option.is_some s.decision then s
        else begin
          (* Decide the value of the lowest-id process outside D(i,1).  The
             engine guarantees D ≠ S so a candidate exists; its slot is
             readable by the delivery invariant ([lowest] keeps the test
             allocation-free). *)
          let j = Pset.lowest (View.heard view) in
          if j < 0 then s else { s with decision = Some (View.get view j) }
        end);
    decide = (fun s -> s.decision);
  }

let consensus ~inputs = { (one_round ~inputs) with Algorithm.name = "consensus-one-round" }
