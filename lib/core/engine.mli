(** The round-by-round executor.

    Runs an {!Algorithm} against a {!Detector}: each round it collects the
    emitted messages, asks the detector for the fault sets, delivers to every
    process exactly the messages of processes outside its fault set, and
    records the round in the fault history.  Optionally a {!Predicate} is
    re-checked after every round, so a misbehaving detector is caught at the
    earliest offending round. *)

type 'out outcome = {
  decisions : 'out option array;
      (** First decision of each process ([None] if it never decided). *)
  decision_rounds : int option array;
      (** Round at which each process first decided. *)
  rounds_used : int;  (** Number of rounds executed. *)
  history : Fault_history.t;  (** The fault history of the execution. *)
  violation : string option;
      (** Earliest predicate violation, when a check was requested.  The run
          stops at the violating round. *)
  counters : Counters.t;
      (** Exact work accounting for the execution: rounds executed,
          messages delivered, detector queries, predicate checks.  See
          {!Counters}. *)
}

val run :
  n:int ->
  ?max_rounds:int ->
  ?check:Predicate.t ->
  ?stop_when_decided:bool ->
  algorithm:('s, 'm, 'out) Algorithm.t ->
  detector:Detector.t ->
  unit ->
  'out outcome
(** [run ~n ~algorithm ~detector ()] executes rounds until every process has
    decided (when [stop_when_decided], the default) or [max_rounds] (default
    64) have run.  With [stop_when_decided:false] it always runs exactly
    [max_rounds] rounds, which is how fixed-horizon protocols such as the
    full-information algorithm are driven.

    @raise Invalid_argument if [n] is out of range, if the detector returns a
    malformed round (wrong length or ids out of range), or if a detector
    marks every process faulty to some process ([D(i,r) = S] — the paper
    notes this can never happen, as not all processes can be late). *)

(** {1 The engine as a substrate} *)

module As_substrate : sig
  type config = {
    detector : Detector.t;  (** The environment being simulated. *)
    check : Predicate.t option;
        (** Optional per-round predicate check, as in {!run}. *)
    stop_when_decided : bool;
  }

  include Substrate.S with type config := config
end
(** {!Substrate.S} view of {!run}: [rounds] maps to [max_rounds], the
    induced history is the detector's output, no process ever crashes
    ([crashed = Pset.empty]) and every process completes every executed
    round. *)

val states_after :
  n:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Algorithm.t ->
  detector:Detector.t ->
  unit ->
  's array * Fault_history.t
(** [states_after ~n ~rounds ~algorithm ~detector ()] runs exactly [rounds]
    rounds and returns the resulting per-process states together with the
    fault history — the raw material for simulation arguments that inspect
    states rather than decisions. *)
