(** Work counters for one engine execution.

    The bench/report layer wants tables to say how much work a run did, not
    just whether it passed, so the {!Engine} counts the cheap-to-count
    events of the round loop and surfaces them in the outcome.  All
    counters are exact (no sampling):

    - [rounds]: rounds actually executed (equals
      [outcome.rounds_used] unless a predicate violation stopped the run);
    - [messages]: round messages delivered — per process and round, the
      processes {e outside} its fault set, i.e. [Σ_{i,r} (n − |D(i,r)|)];
    - [detector_queries]: calls to {!Detector.next} (one per round);
    - [predicate_checks]: per-round re-evaluations of the [?check]
      predicate (0 when no check was requested). *)

type t = {
  rounds : int;
  messages : int;
  detector_queries : int;
  predicate_checks : int;
}

val zero : t
(** All counters 0 — the state before the first round. *)

val add : t -> t -> t
(** Field-wise sum, for aggregating across runs or trials. *)

val of_history : ?predicate_checks:int -> Fault_history.t -> t
(** [of_history h] is the exact work record of executing history [h] on
    any round-driving substrate: [rounds = Fault_history.rounds h],
    [messages = Σ_{i,r} (n − |D(i,r)|)] (the delivered slots), one
    detector query per round, and [predicate_checks] as given (default
    0).  This is what {!Engine.run} would have counted round by round —
    exposed so substrates and experiments that only keep the history
    (e.g. {!Engine.states_after} call sites) report identical numbers. *)

val to_fields : t -> (string * int) list
(** Stable [(label, value)] view in declaration order; the labels
    ("rounds", "messages", "detector-queries", "predicate-checks") are the
    vocabulary used by experiment tables and the BENCH json schema. *)

val pp : Format.formatter -> t -> unit
(** ["rounds=…, messages=…, …"]. *)
