(* Safe-agreement instances are modelled at doorway granularity: proposing
   is a begin/finish pair of atomic actions; a simulator crashing between
   them wedges the instance forever.  The chosen value is the first
   proposal to enter the doorway — fixed before anyone can resolve, which
   is the agreement property the register-level protocol
   (Shm.Safe_agreement) provides; here the simulation logic is the
   subject, not the shared-memory implementation. *)

type instance = {
  mutable first_proposal : Pset.t option;
  mutable in_doorway : int; (* simulators currently mid-propose *)
  mutable resolved : Pset.t option;
}

type 'out outcome = {
  completed : int array;
  decisions : 'out option array;
  fault_set_sizes_ok : bool;
  wedged_instances : int;
  stalled_processes : int;
  actions : int;
}

(* Per-simulator (and canonical-replay) view of the simulated system. *)
type ('s, 'm) local = {
  states : 's array;
  round_of : int array; (* next simulated round per process *)
  emissions : 'm option array array; (* cache: emissions.(r-1).(q) *)
  proposed : bool array array; (* this simulator proposed for (r-1, j) *)
  mutable mid_propose : (int * int) option;
  mutable actions_taken : int;
  mutable crashed : bool;
}

let simulate ~rng ~simulators ?(crashes = []) ~n ~k ~rounds ~algorithm () =
  if simulators < 1 then invalid_arg "Bg_simulation: need a simulator";
  if k < 0 || k >= n then invalid_arg "Bg_simulation: need 0 ≤ k < n";
  if List.length crashes >= simulators then
    invalid_arg "Bg_simulation: at least one simulator must survive";
  let open Algorithm in
  let crash_at = Array.make simulators max_int in
  List.iter
    (fun (s, after) ->
      if s < 0 || s >= simulators then
        invalid_arg "Bg_simulation: crash simulator out of range";
      crash_at.(s) <- after)
    crashes;
  let instances =
    Array.init rounds (fun _ ->
        Array.init n (fun _ ->
            { first_proposal = None; in_doorway = 0; resolved = None }))
  in
  let instance ~j ~r = instances.(r - 1).(j) in
  let fresh_local () =
    {
      states = Array.init n (fun j -> algorithm.init ~n j);
      round_of = Array.make n 1;
      emissions = Array.make_matrix rounds n None;
      proposed = Array.make_matrix rounds n false;
      mid_propose = None;
      actions_taken = 0;
      crashed = false;
    }
  in
  let locals = Array.init simulators (fun _ -> fresh_local ()) in
  let total_actions = ref 0 in
  (* Emission of process q at round r, from this local's deterministic
     replica.  Cached, because the replica moves past round r. *)
  let emission_of local q r =
    match local.emissions.(r - 1).(q) with
    | Some m -> m
    | None ->
      assert (local.round_of.(q) = r);
      let m = algorithm.emit local.states.(q) ~round:r in
      local.emissions.(r - 1).(q) <- Some m;
      m
  in
  let advance local j r receive_set =
    let received =
      Array.init n (fun q ->
          if Pset.mem q receive_set then Some (emission_of local q r) else None)
    in
    let faulty = Pset.diff (Pset.full n) receive_set in
    let view = View.of_option_array received ~faulty in
    (* cache j's own round-r emission before its state moves on *)
    ignore (emission_of local j r);
    local.states.(j) <- algorithm.deliver local.states.(j) ~round:r ~view;
    local.round_of.(j) <- r + 1
  in
  (* One atomic action for simulator s; false = nothing to do right now. *)
  let act s =
    let local = locals.(s) in
    match local.mid_propose with
    | Some (j, r) ->
      let inst = instance ~j ~r in
      inst.in_doorway <- inst.in_doorway - 1;
      local.mid_propose <- None;
      true
    | None ->
      let apply_one () =
        let found = ref false in
        for j = 0 to n - 1 do
          if not !found then begin
            let r = local.round_of.(j) in
            if r <= rounds then
              match (instance ~j ~r).resolved with
              | Some receive_set
                when
                  (* every member's round-r emission is available locally:
                     cached (the member's replica already passed round r)
                     or computable right now *)
                  Pset.for_all
                    (fun q ->
                      Option.is_some local.emissions.(r - 1).(q)
                      || local.round_of.(q) = r)
                    receive_set ->
                advance local j r receive_set;
                found := true
              | Some _ | None -> ()
          end
        done;
        !found
      in
      let resolve_one () =
        let found = ref false in
        for j = 0 to n - 1 do
          if not !found then begin
            let r = local.round_of.(j) in
            if r <= rounds then begin
              let inst = instance ~j ~r in
              if
                inst.resolved = None && inst.in_doorway = 0
                && Option.is_some inst.first_proposal
              then begin
                inst.resolved <- inst.first_proposal;
                found := true
              end
            end
          end
        done;
        !found
      in
      let propose_one () =
        let found = ref false in
        for j = 0 to n - 1 do
          if not !found then begin
            let r = local.round_of.(j) in
            if r <= rounds then begin
              let inst = instance ~j ~r in
              let ready =
                Pset.filter
                  (fun q ->
                    Option.is_some local.emissions.(r - 1).(q)
                    || local.round_of.(q) = r)
                  (Pset.full n)
              in
              if
                inst.resolved = None
                && (not local.proposed.(r - 1).(j))
                && Pset.cardinal ready >= n - k
                && Pset.mem j ready
              then begin
                if inst.first_proposal = None then inst.first_proposal <- Some ready;
                inst.in_doorway <- inst.in_doorway + 1;
                local.proposed.(r - 1).(j) <- true;
                local.mid_propose <- Some (j, r);
                found := true
              end
            end
          end
        done;
        !found
      in
      apply_one () || resolve_one () || propose_one ()
  in
  (* Driver: random fair interleaving with explicit crashes; terminate
     when every live simulator has nothing to do (remaining instances are
     wedged or waiting on wedged ones). *)
  let guard = ref (max 1000 (simulators * n * rounds * 200)) in
  let rec drive () =
    Array.iteri
      (fun s local ->
        if (not local.crashed) && local.actions_taken >= crash_at.(s) then
          local.crashed <- true)
      locals;
    let live = ref [] in
    for s = simulators - 1 downto 0 do
      if not locals.(s).crashed then live := s :: !live
    done;
    match !live with
    | [] -> ()
    | ready ->
      decr guard;
      if !guard <= 0 then ()
      else begin
        let s = Dsim.Rng.choose rng ready in
        let stepped s' =
          if act s' then begin
            locals.(s').actions_taken <- locals.(s').actions_taken + 1;
            incr total_actions;
            true
          end
          else false
        in
        if stepped s then drive ()
        else if List.exists (fun s' -> s' <> s && stepped s') ready then drive ()
        else () (* globally quiescent *)
      end
  in
  drive ();
  (* Canonical read-out: replay every resolved instance deterministically —
     what every correct simulator converges to. *)
  let canon = fresh_local () in
  let rec settle () =
    let progressed = ref false in
    for j = 0 to n - 1 do
      let r = canon.round_of.(j) in
      if r <= rounds then
        match (instance ~j ~r).resolved with
        | Some receive_set
          when
            Pset.for_all
              (fun q ->
                Option.is_some canon.emissions.(r - 1).(q)
                || canon.round_of.(q) = r)
              receive_set ->
          advance canon j r receive_set;
          progressed := true
        | Some _ | None -> ()
    done;
    if !progressed then settle ()
  in
  settle ();
  let wedged = ref 0 and sizes_ok = ref true in
  Array.iter
    (Array.iter (fun inst ->
         if inst.in_doorway > 0 && inst.resolved = None then incr wedged;
         match inst.resolved with
         | Some set -> if n - Pset.cardinal set > k then sizes_ok := false
         | None -> ()))
    instances;
  let completed = Array.map (fun r -> r - 1) canon.round_of in
  {
    completed;
    decisions = Array.map algorithm.decide canon.states;
    fault_set_sizes_ok = !sizes_ok;
    wedged_instances = !wedged;
    stalled_processes =
      Array.fold_left
        (fun acc c -> if c < rounds then acc + 1 else acc)
        0 completed;
    actions = !total_actions;
  }
