type 'out execution = {
  substrate : string;
  decisions : 'out option array;
  decision_rounds : int option array;
  rounds_used : int;
  induced : Fault_history.t;
  counters : Counters.t;
  violation : string option;
  crashed : Pset.t;
  completed : int array;
  wall_ns : int64 option;
}

module type S = sig
  type config

  val name : string

  val execute :
    config ->
    n:int ->
    rounds:int ->
    algorithm:('s, 'm, 'out) Algorithm.t ->
    'out execution
end
