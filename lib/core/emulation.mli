(** Cross-model emulations from Section 2.

    Two constructions share one engine, the {e two-round heard-of closure}:
    run two RRFD rounds in which every process first emits a token and then
    emits the set of processes it heard from; the simulated fault set is
    everything a process did not hear of directly or through a relay.

    - Item 4: if [2f < n], two rounds of the item-3 asynchronous
      message-passing RRFD implement one round of the shared-memory RRFD —
      every round-1 quorum of [n − f] processes intersects every other, so
      some process heard by a majority is relayed to everybody
      (predicate 4), and each simulated fault set stays within [f]
      (predicate 3).
    - Item 3: if [f < t] and [2t < n], two rounds of system B implement one
      round of system A — a process that missed up to [t] still hears some
      process outside the weak set [Q], whose round-1 view misses at most
      [f].

    The module also implements item 4's alternative-predicate analysis: the
    "does-not-know" cycle argument showing that under
    [Predicate.shared_memory_alt] some process's round-1 value is known by
    all within [n] rounds, and the machinery to test the paper's conjecture
    that two rounds suffice. *)

type closure_result = {
  simulated : Pset.t array;
      (** The simulated round's fault sets [D_sim(i)]. *)
  underlying : Fault_history.t;  (** The two underlying rounds. *)
}

val two_round_closure : n:int -> detector:Detector.t -> closure_result
(** Run the construction for one simulated round on a fresh history. *)

val simulate_rounds :
  n:int -> rounds:int -> detector:Detector.t -> Fault_history.t * Fault_history.t
(** [simulate_rounds ~n ~rounds ~detector] iterates the closure: returns
    [(simulated, underlying)] histories of [rounds] and [2 * rounds] rounds
    respectively. *)

val knowledge_rounds : Fault_history.t -> int option
(** Given a fault history, propagate knowledge of round-1 emissions —
    process [i] learns everything known by every process outside [D(i,r)] —
    and return the first round by which {e some} process's round-1 emission
    is known to all, if it happens within the history. *)

val known_by_all_within : n:int -> detector:Detector.t -> max_rounds:int -> int option
(** Drive a detector for up to [max_rounds] rounds and report the first
    round at which someone is known by all. *)

val known_by_all_observed :
  n:int ->
  detector:Detector.t ->
  max_rounds:int ->
  int option * Fault_history.t
(** {!known_by_all_within} additionally returning the materialised history
    (always [max_rounds] long, same detector consumption), so callers can
    account the work via {!Counters.of_history}. *)
