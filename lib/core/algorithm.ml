type ('state, 'msg, 'out) t = {
  name : string;
  init : n:int -> Proc.t -> 'state;
  emit : 'state -> round:int -> 'msg;
  deliver : 'state -> round:int -> view:'msg View.t -> 'state;
  decide : 'state -> 'out option;
}

let map_output f a = { a with decide = (fun s -> Option.map f (a.decide s)) }
