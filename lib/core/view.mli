(** Delivery views: what one process sees at the end of one round.

    A view is the zero-allocation replacement for the per-process
    [received : 'm option array] the executor used to build each round:
    one borrowed message buffer plus the round's fault set, read through
    {!get}/{!fold}.  [received.(j) = Some m] becomes "[j] ∈ {!heard} and
    {!get} returns [m]"; [received.(j) = None] becomes "[j] ∈ {!faulty}".
    The invariant every substrate maintains is exactly the paper's
    delivery rule: a slot is readable iff the sender is outside [D(i,r)],
    and every readable slot holds that sender's round message.

    {b Lifetime.}  A view is only valid for the duration of the
    [deliver] call it is passed to: the executor owns the underlying
    buffer and reuses it for the next process and the next round.  A
    transition that wants to keep round data must copy it out
    ({!to_option_array}, or fold into its own state); retaining the view
    itself is a bug.  See DESIGN.md, "hot path discipline". *)

type 'm t

(** {1 Reading} *)

val n : 'm t -> int
(** Number of processes in the system. *)

val faulty : 'm t -> Pset.t
(** [D(i,r)]: the senders whose round messages the receiver did not
    wait for. *)

val heard : 'm t -> Pset.t
(** Complement of {!faulty} in the universe — exactly the readable
    slots. *)

val mem : 'm t -> Proc.t -> bool
(** [mem v j] is [j ∈ heard v].
    @raise Invalid_argument if [j] is outside the universe. *)

val get : 'm t -> Proc.t -> 'm
(** [get v j] is [j]'s round message.
    @raise Invalid_argument if [j ∉ heard v]. *)

val find : 'm t -> Proc.t -> 'm option
(** [find v j] is [Some (get v j)] when [j ∈ heard v], else [None] —
    the literal translation of the old [received.(j)]. *)

val fold : (Proc.t -> 'm -> 'a -> 'a) -> 'm t -> 'a -> 'a
(** Fold over the heard messages in ascending sender order. *)

val iter : (Proc.t -> 'm -> unit) -> 'm t -> unit
(** Iterate over the heard messages in ascending sender order. *)

val to_option_array : 'm t -> 'm option array
(** Fresh snapshot in the old [received] encoding — the escape hatch for
    transitions that retain round data (the full-information protocol). *)

(** {1 Building}

    Substrate-side constructors.  {!create} once per execution, {!set}
    once per (process, round): the buffer is borrowed, never copied, and
    [heard] is derived from the hoisted universe set, so a steady-state
    round allocates nothing. *)

val create : n:int -> 'm t
(** An empty view shell for an [n]-process system.  Until the first
    {!set} the view reads as "heard nobody".
    @raise Invalid_argument if [n < 1] or [n > Pset.max_universe]. *)

val set : 'm t -> msgs:'m array -> faulty:Pset.t -> unit
(** [set v ~msgs ~faulty] repoints [v] at [msgs] (borrowed, length [n])
    with fault set [faulty].  Slots named by [faulty] may hold junk —
    they are unreachable through the reading API.
    @raise Invalid_argument if [msgs] has the wrong length or [faulty]
    reaches outside the universe. *)

val unsafe_set : 'm t -> msgs:'m array -> faulty:Pset.t -> unit
(** {!set} without the length and universe checks, for executors that
    have already validated the round's fault sets (the engine runs
    [validate_round] on every detector output before building views).
    Passing an unvalidated [faulty] or a short buffer breaks the
    delivery invariant silently — never call this with data that has not
    gone through an equivalent check. *)

val of_option_array : 'm option array -> faulty:Pset.t -> 'm t
(** Compatibility constructor from the old encoding: heard slots are the
    [Some]s.  Validates the delivery invariant ([arr.(j) = Some _] iff
    [j ∉ faulty]) and copies, so it allocates — fine for the replay,
    trace and simulation paths, not for the engine kernel.
    @raise Invalid_argument if the invariant does not hold. *)
