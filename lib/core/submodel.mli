(** The submodel relation between RRFD systems (Section 2).

    [A] is a submodel of [B] iff [P_A ⇒ P_B]: every fault history allowed by
    [A] is allowed by [B], so [A] trivially implements [B].  Implication is
    checked two ways: exhaustively over every history of a small system
    (sound and complete for that size) and by sampling histories from a
    generator (a cheap refutation search at larger sizes). *)

type verdict =
  | Implies  (** No counterexample found in the searched space. *)
  | Counterexample of Fault_history.t
      (** A history satisfying the left predicate but not the right. *)

val check_exhaustive : n:int -> rounds:int -> Predicate.t -> Predicate.t -> verdict
(** [check_exhaustive ~n ~rounds a b] enumerates every fault history of at
    most [rounds] rounds over [n] processes (every process's fault set
    ranging over all proper subsets), pruning prefixes that already violate
    [a], and reports the first history satisfying [a] but violating [b].
    Exponential: intended for [n ≤ 3], [rounds ≤ 2]
    ([((2^n − 1)^n)^rounds] histories). *)

val check_sampled :
  Dsim.Rng.t ->
  samples:int ->
  rounds:int ->
  gen:(Dsim.Rng.t -> Detector.t) ->
  n:int ->
  Predicate.t ->
  Predicate.t ->
  verdict
(** [check_sampled rng ~samples ~rounds ~gen ~n a b] draws [samples]
    detectors from [gen], runs each for [rounds] rounds, discards histories
    that do not satisfy [a] (a generator bug), and reports any that violate
    [b]. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 The named-predicate lattice}

    Answering many order queries over the same predicate vocabulary with
    {!check_exhaustive} repeats the exponential history walk per pair.
    {!lattice} walks the space {e once} — every history of depth
    [0..rounds] over [n] processes — and records, per named predicate, the
    bitset of histories it accepts; every subsequent query (implication,
    equivalence, immediate neighbours, redundant conjuncts) is bitset
    algebra.  Sound and complete for the enumerated size, exactly like
    {!check_exhaustive}: intended for [n ≤ 3], [rounds ≤ 2]. *)

type lattice

val lattice : n:int -> rounds:int -> (string * Predicate.t) list -> lattice
(** [lattice ~n ~rounds named] evaluates every named predicate on every
    history of at most [rounds] rounds over [n] processes (each process's
    round fault set ranging over all proper subsets, the empty history
    included).  Names are the query keys and must be distinct.
    @raise Invalid_argument on an empty or duplicate-named vocabulary. *)

val lattice_size : lattice -> int
(** Number of histories enumerated ([Σ_{d≤rounds} ((2^n − 1)^n)^d]). *)

val lattice_names : lattice -> string list
(** The vocabulary, in construction order. *)

val mem : lattice -> string -> bool

val implies : lattice -> string -> string -> bool
(** [implies l a b]: every enumerated history satisfying [a] satisfies
    [b] — the submodel order of Section 2 restricted to the vocabulary.
    All queries below raise [Invalid_argument] on names outside it. *)

val equivalent : lattice -> string -> string -> bool
(** Implication both ways: the two names accept the same history set. *)

val strictly_stronger : lattice -> string -> string -> bool
(** [strictly_stronger l a b]: [a]'s history set is a proper subset of
    [b]'s. *)

val immediate_stronger : lattice -> string -> string list
(** Covers from below: names strictly stronger than the argument with no
    third name strictly between — the downward neighbours a derived
    predicate must refute to be tight. *)

val immediate_weaker : lattice -> string -> string list
(** Covers from above. *)

val meet_implies : lattice -> string list -> string -> bool
(** [meet_implies l names target]: the conjunction of [names] implies
    [target] over the enumerated space ([names = []] is the empty
    conjunction, i.e. [true]). *)

val minimal_conjuncts : lattice -> string list -> string list
(** Drop every name implied by the conjunction of the others, in one
    deterministic left-to-right pass: a minimal sub-vocabulary with the
    same meet, used to {e name} a derived predicate without changing it. *)

val weakest : lattice -> string list -> string list
(** The maximal (weakest) members of a set of names: those not strictly
    stronger than any other member.  Applied to the refuted candidates of
    a derivation this is the frontier — refuting it refutes everything
    strictly stronger. *)
