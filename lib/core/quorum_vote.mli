(** Two-threshold quorum voting: the round machine behind fork
    accountability (E24).

    One shot, two communication-closed rounds, in the style of a single
    Tendermint height stripped to its quorum-intersection core:

    - Round 1 (vote): every process broadcasts its input value and
      decides [v] iff the votes it holds when the round completes include
      at least [n − f] {e distinct senders} for [v].
    - Round 2 (certificate): a decided process broadcasts the sender set
      it counted.  Certificates are evidence for the auditor
      ({!Msgnet.Accountability}), never a way to decide — a bystander
      that accepts a certificate it cannot check would let a single
      forger fork the system.

    With [n ≥ 3f + 1] two conflicting decisions force two vote quorums
    whose intersection has at least [n − 2f ≥ f + 1] members, each of
    which signed both values — the ≥ f+1 provably-faulty bound.  Under
    benign (crash/omission) faults the unanimity requirement makes the
    protocol safe outright; with pairwise-distinct default inputs it
    simply never decides, which is the conservative reading of "no
    quorum, no decision". *)

type msg =
  | Vote of int  (** Round-1 ballot for a value. *)
  | Cert of { v : int; quorum : Pset.t }
      (** Round-2 claim: "I decided [v] on the round-1 votes of [quorum]". *)
  | Idle  (** Round-2 filler from a process that decided nothing. *)

type state

val pp_msg : Format.formatter -> msg -> unit

val quorum_of : state -> Pset.t option
(** The sender set behind the decision, if any — what round 2 broadcasts. *)

val algorithm : inputs:int array -> f:int -> (state, msg, int) Algorithm.t
(** [algorithm ~inputs ~f] decides on vote quorums of [n − f] distinct
    senders.  @raise Invalid_argument (at [init]) unless [0 ≤ f < n]. *)
