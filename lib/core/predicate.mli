(** RRFD predicates: properties of fault histories.

    A round-by-round fault detector {e is} a predicate over the family
    [{D(i,r)}] (Sec. 1 of the paper): the more histories it allows, the more
    adversarial the system.  This module defines the paper's named predicates
    and the combinators used to compare models.

    All the paper's predicates are prefix-closed: every prefix of a valid
    history is valid, so predicates can be re-checked after each round and a
    violation report names the earliest offending round. *)

type t
(** A predicate over fault histories. *)

val name : t -> string

val doc : t -> string
(** One-line description, quoting the paper's definition. *)

val holds : t -> Fault_history.t -> bool
(** [holds p h] is true iff the (prefix) history [h] satisfies [p]. *)

val explain : t -> Fault_history.t -> string option
(** [explain p h] is [None] when [holds p h], otherwise a human-readable
    description of the earliest violation. *)

val check_round : t -> Fault_history.t -> round:int -> string option
(** [check_round p h ~round] re-checks [p] after [h] grew to [round]
    rounds, using the predicate's round-local incremental form when it
    has one and the full {!explain} scan otherwise.  Sound — identical
    to [explain p h] — under the executor's calling convention: the
    history grew one round at a time, [round = Fault_history.rounds h],
    and every earlier call returned [None].  Outside that discipline use
    {!explain}. *)

val make :
  ?incr:(Fault_history.t -> round:int -> string option) ->
  name:string ->
  doc:string ->
  (Fault_history.t -> string option) ->
  t
(** [make ~name ~doc explain] builds a predicate from a violation finder.
    [incr], when given, is the round-local form {!check_round} uses; it
    must equal [explain] whenever [explain] was [None] on every proper
    prefix (the {!check_round} precondition). *)

val conj : ?name:string -> t -> t -> t
(** Conjunction: both predicates must hold. *)

val disj : ?name:string -> t -> t -> t
(** Disjunction: at least one predicate must hold; a violation is reported
    only when both fail (quoting the left one's reason). *)

val always : t
(** The trivial predicate satisfied by every history (the unconstrained,
    maximally adversarial RRFD — nothing is solvable under it). *)

(** {1 The paper's named predicates} *)

val no_self_suspicion : t
(** [∀ i, r. p_i ∉ D(i,r)] — part of predicates 1, 2 and 5. *)

val omission : f:int -> t
(** Predicate (1), item 1: synchronous message passing with at most [f]
    send-omission faults: no self-suspicion and
    [|⋃_{r>0} ⋃_i D(i,r)| ≤ f]. *)

val crash_closure : t
(** Predicate (2) alone: [∀ r > 0, ∀ p_k. ⋃_i D(i,r) ⊆ D(k, r+1)] — once any
    process misses [p_j], everyone misses [p_j] in later rounds. *)

val crash : f:int -> t
(** Item 2: synchronous with at most [f] crash faults:
    [omission ~f] ∧ {!crash_closure}. *)

val async_resilient : f:int -> t
(** Predicate (3), item 3: asynchronous message passing with at most [f]
    crash failures: [∀ r, i. |D(i,r)| ≤ f]. *)

val async_mixed : f:int -> t:int -> t
(** Item 3's system B: per round there is a set [Q] with [|Q| ≤ t] such that
    processes outside [Q] miss at most [f] and processes inside [Q] miss at
    most [t].  Strictly weaker than [async_resilient ~f] when [f < t]. *)

val someone_seen_by_all : t
(** Predicate (4) alone: [∀ r. |⋃_i D(i,r)| < n] — each round at least one
    process is declared faulty to nobody. *)

val shared_memory : f:int -> t
(** Item 4: asynchronous SWMR shared memory with at most [f] crash faults:
    [async_resilient ~f] ∧ {!someone_seen_by_all}. *)

val antisymmetric_misses : t
(** Item 4's alternative ingredient: [p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)]. *)

val shared_memory_alt : f:int -> t
(** The alternative shared-memory predicate discussed in item 4:
    [async_resilient ~f] ∧ {!someone_seen_by_all} ∧
    {!antisymmetric_misses}. *)

val snapshot : f:int -> t
(** Predicate of item 5 (atomic snapshot / iterated immediate snapshot):
    [async_resilient ~f] ∧ no self-suspicion ∧ per-round comparability
    [D(i,r) ⊆ D(j,r) ∨ D(j,r) ⊆ D(i,r)]. *)

val detector_s : t
(** Item 6: the RRFD counterpart of failure detector S:
    [∃ p_j. p_j ∉ ⋃_{r>0} ⋃_i D(i,r)]; equivalently
    [|⋃_{r>0} ⋃_i D(i,r)| < n]. *)

val k_set : k:int -> t
(** Section 3's detector: [∀ r. |⋃_i D(i,r) − ⋂_i D(i,r)| < k].  For [k = 1]
    the detectors at different processes never disagree. *)

val identical_views : t
(** Equation (5), Sec. 5: [∀ r, i, j. D(i,r) = D(j,r)].  Implies
    [k_set ~k:1]. *)

val byzantine_round_bound : f:int -> t
(** Byzantine-aware variant for E24: [∀ r. |⋃_i D(i,r)| ≤ f].  Applied to
    the fused silent∪lied history ({!Fault_history.union}) this says at
    most [f] distinct processes misbehave — stay silent toward someone or
    lie to someone — in any single round.  RRFDs only report suspicion
    sets, so the same predicate machinery covers "lied" exactly as it
    covers "late"; this is the per-round budget the accountability
    construction assumes of the honest majority. *)

val eventual_honest_kernel : k:int -> t
(** Byzantine-aware variant for E24:
    [∃ r₀. |⋃_{r≥r₀} ⋃_i D(i,r)| ≤ n − k] — from some round on, a kernel
    of at least [k] processes is never suspected or lied about.  On a
    finite prefix the suffix union is monotone in its start round, so
    this holds iff the final round leaves [k] processes clean;
    {!honest_kernel_start} reports the earliest such suffix. *)

val honest_kernel_start : k:int -> Fault_history.t -> int option
(** The earliest round [r₀] witnessing {!eventual_honest_kernel} — the
    diagnostic behind the predicate — or [None] if no suffix (or an empty
    history) qualifies. *)

val not_all_faulty : t
(** Sanity property noted in Sec. 1: [D(i,r) ≠ S] (not every process can be
    late).  Holds automatically under most named predicates; exposed for the
    enumeration experiments. *)
