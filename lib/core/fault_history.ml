type t = {
  n : int;
  rounds : Pset.t array list; (* most recent round first *)
  count : int;
}

let empty ~n =
  if n < 1 || n > Pset.max_universe then invalid_arg "Fault_history.empty: bad n";
  { n; rounds = []; count = 0 }

let n h = h.n

let rounds h = h.count

let validate_round n d =
  if Array.length d <> n then invalid_arg "Fault_history: wrong array length";
  let universe = Pset.full n in
  Array.iter
    (fun s ->
      if not (Pset.subset s universe) then
        invalid_arg "Fault_history: fault set mentions process out of range")
    d

let append h d =
  validate_round h.n d;
  { h with rounds = Array.copy d :: h.rounds; count = h.count + 1 }

let nth_round h round =
  if round < 1 || round > h.count then invalid_arg "Fault_history: round out of range";
  List.nth h.rounds (h.count - round)

let round_sets h ~round = Array.copy (nth_round h round)

let d h ~proc ~round =
  if proc < 0 || proc >= h.n then invalid_arg "Fault_history.d: proc out of range";
  (nth_round h round).(proc)

let round_union h ~round =
  Array.fold_left Pset.union Pset.empty (nth_round h round)

let round_inter h ~round =
  Array.fold_left Pset.inter (Pset.full h.n) (nth_round h round)

let fold_rounds f h init =
  let indexed = List.rev h.rounds in
  let _, acc =
    List.fold_left (fun (r, acc) sets -> (r + 1, f r sets acc)) (1, init) indexed
  in
  acc

let cumulative_union h =
  fold_rounds
    (fun _ sets acc -> Array.fold_left Pset.union acc sets)
    h Pset.empty

let cumulative_union_upto h ~round =
  fold_rounds
    (fun r sets acc ->
      if r <= round then Array.fold_left Pset.union acc sets else acc)
    h Pset.empty

let of_rounds ~n l =
  List.fold_left append (empty ~n) l

(* Pointwise union, padding the shorter history with empty rounds: the
   combined view "process j was bad toward i in round r in either
   history".  The Byzantine extraction uses this to fuse the silent
   history (messages that never arrived) with the lie history (messages
   that arrived with tampered content) into one D(i,r) family. *)
let union a b =
  if a.n <> b.n then invalid_arg "Fault_history.union: process counts differ";
  let rounds = max a.count b.count in
  let row h r =
    if r <= h.count then nth_round h r else Array.make h.n Pset.empty
  in
  of_rounds ~n:a.n
    (List.init rounds (fun i ->
         Array.map2 Pset.union (row a (i + 1)) (row b (i + 1))))

(* Rounds first-round-first, as fresh arrays — the raw material every
   surgery operation below rebuilds from (through [of_rounds], so each
   result is re-validated). *)
let to_rounds h = List.rev_map Array.copy h.rounds

let update h ~round ~proc s =
  if proc < 0 || proc >= h.n then invalid_arg "Fault_history.update: proc out of range";
  if round < 1 || round > h.count then
    invalid_arg "Fault_history.update: round out of range";
  if not (Pset.subset s (Pset.full h.n)) then
    invalid_arg "Fault_history.update: fault set mentions process out of range";
  of_rounds ~n:h.n
    (List.mapi
       (fun i sets ->
         if i + 1 = round then (
           let sets = Array.copy sets in
           sets.(proc) <- s;
           sets)
         else sets)
       (to_rounds h))

let drop_round h ~round =
  if round < 1 || round > h.count then
    invalid_arg "Fault_history.drop_round: round out of range";
  of_rounds ~n:h.n
    (List.filteri (fun i _ -> i + 1 <> round) (to_rounds h))

let truncate h ~rounds =
  if rounds < 0 || rounds > h.count then
    invalid_arg "Fault_history.truncate: round count out of range";
  of_rounds ~n:h.n (List.filteri (fun i _ -> i < rounds) (to_rounds h))

let remove_proc h ~proc =
  if proc < 0 || proc >= h.n then
    invalid_arg "Fault_history.remove_proc: proc out of range";
  if h.n = 1 then invalid_arg "Fault_history.remove_proc: need n > 1";
  let renumber s =
    Pset.fold
      (fun j acc ->
        if j = proc then acc
        else Pset.add (if j > proc then j - 1 else j) acc)
      s Pset.empty
  in
  of_rounds ~n:(h.n - 1)
    (List.map
       (fun sets ->
         Array.init (h.n - 1) (fun i ->
             renumber sets.(if i >= proc then i + 1 else i)))
       (to_rounds h))

let equal a b =
  a.n = b.n && a.count = b.count
  && List.for_all2 (fun ra rb -> Array.for_all2 Pset.equal ra rb) a.rounds b.rounds

let to_string_compact h =
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer (Printf.sprintf "n=%d" h.n);
  ignore
    (fold_rounds
       (fun r sets () ->
         Buffer.add_string buffer (Printf.sprintf ";%d:" r);
         Array.iter
           (fun s ->
             Buffer.add_char buffer '{';
             Buffer.add_string buffer
               (String.concat "," (List.map string_of_int (Pset.to_list s)));
             Buffer.add_char buffer '}')
           sets)
       h ());
  Buffer.contents buffer

let of_string_compact text =
  let fail () = invalid_arg "Fault_history.of_string_compact: malformed input" in
  match String.split_on_char ';' text with
  | [] -> fail ()
  | header :: rounds_text ->
    let n =
      match String.split_on_char '=' header with
      | [ "n"; v ] -> ( match int_of_string_opt v with Some n -> n | None -> fail ())
      | _ -> fail ()
    in
    let parse_set s =
      if s = "" then Pset.empty
      else
        String.split_on_char ',' s
        |> List.map (fun id ->
               match int_of_string_opt id with Some i -> i | None -> fail ())
        |> Pset.of_list
    in
    let parse_round text =
      let body =
        match String.index_opt text ':' with
        | Some colon -> String.sub text (colon + 1) (String.length text - colon - 1)
        | None -> fail ()
      in
      (* split "{a}{b}{c}" on "}{" after trimming outer braces *)
      let body =
        if String.length body >= 2 && body.[0] = '{'
           && body.[String.length body - 1] = '}'
        then String.sub body 1 (String.length body - 2)
        else fail ()
      in
      let parts =
        if body = "" then [ "" ]
        else
          (* There are n segments separated by "}{". *)
          String.split_on_char '}' body
          |> List.map (fun s ->
                 if String.length s > 0 && s.[0] = '{' then
                   String.sub s 1 (String.length s - 1)
                 else s)
      in
      let sets = Array.of_list (List.map parse_set parts) in
      if Array.length sets <> n then fail ();
      sets
    in
    List.fold_left (fun h r -> append h (parse_round r)) (empty ~n) rounds_text

let pp ppf h =
  Format.fprintf ppf "@[<v>n=%d, %d round(s)" h.n h.count;
  ignore
    (fold_rounds
       (fun r sets () ->
         Format.fprintf ppf "@,round %d:" r;
         Array.iteri (fun i s -> Format.fprintf ppf " D(%d)=%a" i Pset.pp s) sets;
         ())
       h ());
  Format.fprintf ppf "@]"
