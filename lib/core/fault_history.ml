(* Flat preallocated row storage behind the persistent-looking API.

   All rounds of a history family live in one [Pset.t array] of
   [capacity * n] slots (row r at offset [(r-1) * n]), shared between a
   history and every extension of it.  [append] on the tip (the history
   whose [count] equals the backing's [used]) writes the next row in
   place and shares the backing; appending to a proper prefix — the
   rare, branching case — copies the prefix into a fresh backing first.
   Growth is by doubling, so a sequence of appends is amortised O(1) and
   an engine run that preallocates its horizon ({!create}) never grows
   at all.  [Pset.t] values are immutable, so sharing rows is safe. *)

type backing = {
  mutable data : Pset.t array; (* capacity * n slots; rows 0..used-1 valid *)
  mutable used : int; (* committed rows *)
}

type t = {
  n : int;
  full : Pset.t; (* hoisted universe, used by every validation *)
  backing : backing;
  mutable count : int;
      (* rounds visible through this handle; mutable only for
         [append_in_place] (the engine's linear fast path) *)
}

let make ~n ~capacity =
  if n < 1 || n > Pset.max_universe then invalid_arg "Fault_history.empty: bad n";
  if capacity < 0 then invalid_arg "Fault_history.create: negative capacity";
  {
    n;
    full = Pset.full n;
    backing = { data = Array.make (capacity * n) Pset.empty; used = 0 };
    count = 0;
  }

let empty ~n = make ~n ~capacity:0

let create ~n ~capacity = make ~n ~capacity

let n h = h.n

let rounds h = h.count

let validate_round h d =
  if Array.length d <> h.n then invalid_arg "Fault_history: wrong array length";
  for i = 0 to h.n - 1 do
    if not (Pset.subset (Array.unsafe_get d i) h.full) then
      invalid_arg "Fault_history: fault set mentions process out of range"
  done

(* Row capacity of a backing, in rounds. *)
let cap_rows b ~n = Array.length b.data / n

let ensure_row b ~n ~row =
  if (row + 1) * n > Array.length b.data then begin
    let rows = max 4 (max (row + 1) (2 * cap_rows b ~n)) in
    let data = Array.make (rows * n) Pset.empty in
    Array.blit b.data 0 data 0 (b.used * n);
    b.data <- data
  end

let write_row b ~n ~row d =
  ensure_row b ~n ~row;
  Array.blit d 0 b.data (row * n) n

let append h d =
  validate_round h d;
  if h.count = h.backing.used then begin
    (* tip: extend the shared backing in place *)
    write_row h.backing ~n:h.n ~row:h.count d;
    h.backing.used <- h.count + 1;
    { h with count = h.count + 1 }
  end
  else begin
    (* branching off a proper prefix: copy-on-branch *)
    let b = { data = Array.make ((h.count + 1) * h.n) Pset.empty; used = 0 } in
    Array.blit h.backing.data 0 b.data 0 (h.count * h.n);
    Array.blit d 0 b.data (h.count * h.n) h.n;
    b.used <- h.count + 1;
    { h with backing = b; count = h.count + 1 }
  end

(* Engine-internal: append mutating [h] itself.  Only valid on the tip
   of a backing this caller exclusively owns — exactly the executor's
   linear use, where it makes the steady-state round allocation-free. *)
let append_in_place h d =
  validate_round h d;
  if h.count <> h.backing.used then
    invalid_arg "Fault_history.append_in_place: not the tip of its backing";
  write_row h.backing ~n:h.n ~row:h.count d;
  h.backing.used <- h.count + 1;
  h.count <- h.count + 1;
  h

let check_round h round =
  if round < 1 || round > h.count then
    invalid_arg "Fault_history: round out of range"

let round_off h round = (round - 1) * h.n

let round_sets h ~round =
  check_round h round;
  Array.sub h.backing.data (round_off h round) h.n

let d h ~proc ~round =
  if proc < 0 || proc >= h.n then invalid_arg "Fault_history.d: proc out of range";
  check_round h round;
  h.backing.data.(round_off h round + proc)

let fold_round_slots f h ~round init =
  check_round h round;
  let off = round_off h round in
  let acc = ref init in
  for i = 0 to h.n - 1 do
    acc := f !acc h.backing.data.(off + i)
  done;
  !acc

let round_union h ~round = fold_round_slots Pset.union h ~round Pset.empty

let round_inter h ~round = fold_round_slots Pset.inter h ~round h.full

let fold_rounds f h init =
  let acc = ref init in
  for r = 1 to h.count do
    acc := f r (round_sets h ~round:r) !acc
  done;
  !acc

let cumulative_union_upto h ~round =
  let upto = min round h.count in
  let acc = ref Pset.empty in
  for i = 0 to (upto * h.n) - 1 do
    acc := Pset.union !acc h.backing.data.(i)
  done;
  !acc

let cumulative_union h = cumulative_union_upto h ~round:h.count

let of_rounds ~n l =
  List.fold_left append (make ~n ~capacity:(List.length l)) l

(* Pointwise union, padding the shorter history with empty rounds: the
   combined view "process j was bad toward i in round r in either
   history".  The Byzantine extraction uses this to fuse the silent
   history (messages that never arrived) with the lie history (messages
   that arrived with tampered content) into one D(i,r) family. *)
let union a b =
  if a.n <> b.n then invalid_arg "Fault_history.union: process counts differ";
  let rounds = max a.count b.count in
  let row h r =
    if r <= h.count then round_sets h ~round:r else Array.make h.n Pset.empty
  in
  of_rounds ~n:a.n
    (List.init rounds (fun i ->
         Array.map2 Pset.union (row a (i + 1)) (row b (i + 1))))

(* Rounds first-round-first, as fresh arrays — the raw material every
   surgery operation below rebuilds from (through [of_rounds], so each
   result is re-validated). *)
let to_rounds h = List.init h.count (fun i -> round_sets h ~round:(i + 1))

let update h ~round ~proc s =
  if proc < 0 || proc >= h.n then invalid_arg "Fault_history.update: proc out of range";
  if round < 1 || round > h.count then
    invalid_arg "Fault_history.update: round out of range";
  if not (Pset.subset s h.full) then
    invalid_arg "Fault_history.update: fault set mentions process out of range";
  of_rounds ~n:h.n
    (List.mapi
       (fun i sets ->
         if i + 1 = round then (
           let sets = Array.copy sets in
           sets.(proc) <- s;
           sets)
         else sets)
       (to_rounds h))

let drop_round h ~round =
  if round < 1 || round > h.count then
    invalid_arg "Fault_history.drop_round: round out of range";
  of_rounds ~n:h.n
    (List.filteri (fun i _ -> i + 1 <> round) (to_rounds h))

let truncate h ~rounds =
  if rounds < 0 || rounds > h.count then
    invalid_arg "Fault_history.truncate: round count out of range";
  of_rounds ~n:h.n (List.filteri (fun i _ -> i < rounds) (to_rounds h))

let remove_proc h ~proc =
  if proc < 0 || proc >= h.n then
    invalid_arg "Fault_history.remove_proc: proc out of range";
  if h.n = 1 then invalid_arg "Fault_history.remove_proc: need n > 1";
  let renumber s =
    Pset.fold
      (fun j acc ->
        if j = proc then acc
        else Pset.add (if j > proc then j - 1 else j) acc)
      s Pset.empty
  in
  of_rounds ~n:(h.n - 1)
    (List.map
       (fun sets ->
         Array.init (h.n - 1) (fun i ->
             renumber sets.(if i >= proc then i + 1 else i)))
       (to_rounds h))

let equal a b =
  a.n = b.n && a.count = b.count
  &&
  let slots = a.count * a.n in
  let rec go i =
    i >= slots
    || (Pset.equal a.backing.data.(i) b.backing.data.(i) && go (i + 1))
  in
  go 0

let to_string_compact h =
  let buffer = Buffer.create 64 in
  Buffer.add_string buffer (Printf.sprintf "n=%d" h.n);
  ignore
    (fold_rounds
       (fun r sets () ->
         Buffer.add_string buffer (Printf.sprintf ";%d:" r);
         Array.iter
           (fun s ->
             Buffer.add_char buffer '{';
             Buffer.add_string buffer
               (String.concat "," (List.map string_of_int (Pset.to_list s)));
             Buffer.add_char buffer '}')
           sets)
       h ());
  Buffer.contents buffer

let of_string_compact text =
  let fail () = invalid_arg "Fault_history.of_string_compact: malformed input" in
  match String.split_on_char ';' text with
  | [] -> fail ()
  | header :: rounds_text ->
    let n =
      match String.split_on_char '=' header with
      | [ "n"; v ] -> ( match int_of_string_opt v with Some n -> n | None -> fail ())
      | _ -> fail ()
    in
    let parse_set s =
      if s = "" then Pset.empty
      else
        String.split_on_char ',' s
        |> List.map (fun id ->
               match int_of_string_opt id with Some i -> i | None -> fail ())
        |> Pset.of_list
    in
    let parse_round text =
      let body =
        match String.index_opt text ':' with
        | Some colon -> String.sub text (colon + 1) (String.length text - colon - 1)
        | None -> fail ()
      in
      (* split "{a}{b}{c}" on "}{" after trimming outer braces *)
      let body =
        if String.length body >= 2 && body.[0] = '{'
           && body.[String.length body - 1] = '}'
        then String.sub body 1 (String.length body - 2)
        else fail ()
      in
      let parts =
        if body = "" then [ "" ]
        else
          (* There are n segments separated by "}{". *)
          String.split_on_char '}' body
          |> List.map (fun s ->
                 if String.length s > 0 && s.[0] = '{' then
                   String.sub s 1 (String.length s - 1)
                 else s)
      in
      let sets = Array.of_list (List.map parse_set parts) in
      if Array.length sets <> n then fail ();
      sets
    in
    List.fold_left (fun h r -> append h (parse_round r)) (empty ~n) rounds_text

let pp ppf h =
  Format.fprintf ppf "@[<v>n=%d, %d round(s)" h.n h.count;
  ignore
    (fold_rounds
       (fun r sets () ->
         Format.fprintf ppf "@,round %d:" r;
         Array.iteri (fun i s -> Format.fprintf ppf " D(%d)=%a" i Pset.pp s) sets;
         ())
       h ());
  Format.fprintf ppf "@]"
