(** The execution-substrate abstraction.

    The paper's central claim is that one algorithm text runs unchanged
    over synchrony, asynchrony and shared memory once the environment is
    presented as an RRFD.  The repository carries several concrete
    environments — the abstract detector-driven {!Engine}, the lock-step
    synchronous network ([Syncnet.Sync_net]), the event-driven
    asynchronous round layer ([Msgnet.Round_layer]) — and each of them is
    a {e substrate}: something that drives an {!Algorithm} and yields the
    same uniform observation, an {!execution}.

    A substrate implements {!S}: a name, a substrate-specific [config]
    (the detector, the fault pattern, the network adversary …) and an
    [execute] function polymorphic in the algorithm's state, message and
    output types.  Everything downstream — the protocol catalog, the
    cross-substrate differential matrix (E22), the model checker's SUTs,
    the experiment tables — consumes executions and never needs to know
    which substrate produced them.  This is the executable form of the
    "communication-closed" correspondence (Damian et al.) and the
    heard-of characterisation (Shimi et al.): whatever the wall clock did,
    the observable content of a run is its decisions plus the fault
    history it induced. *)

type 'out execution = {
  substrate : string;  (** Name of the substrate that ran the algorithm. *)
  decisions : 'out option array;
      (** First decision of each process ([None] if it never decided). *)
  decision_rounds : int option array;
      (** Round at which each process first decided, when the substrate
          tracks it (the asynchronous round layer reports the last
          completed round of a decided process). *)
  rounds_used : int;  (** Rounds executed (the induced history's length). *)
  induced : Fault_history.t;
      (** The fault history the run induced: for the engine this is the
          detector's output, for a real network the per-round complement
          of who was heard. *)
  counters : Counters.t;
      (** Exact work accounting, in the same vocabulary on every
          substrate: rounds, messages delivered, detector queries,
          predicate checks.  See {!Counters}. *)
  violation : string option;
      (** Earliest violation of the optional online predicate check, when
          the substrate's config requested one. *)
  crashed : Pset.t;
      (** Processes the substrate actually crashed ([Pset.empty] for the
          abstract engine, whose processes all keep executing). *)
  completed : int array;
      (** Rounds each process completed.  Lock-step substrates complete
          the same number everywhere; the asynchronous layer may leave
          slow processes behind. *)
}

module type S = sig
  type config
  (** Everything the substrate needs besides the algorithm: the
      detector/check for the engine, the fault pattern for the
      synchronous network, the seed/adversary/crash schedule for the
      asynchronous one. *)

  val name : string

  val execute :
    config ->
    n:int ->
    rounds:int ->
    algorithm:('s, 'm, 'out) Algorithm.t ->
    'out execution
  (** Drive [algorithm] for up to [rounds] rounds over [n] processes.
      Implementations preserve their substrate's native semantics (early
      stop on decision, crash schedules, repair protocols …); the record
      is the common observable. *)
end
