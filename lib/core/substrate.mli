(** The execution-substrate abstraction.

    The paper's central claim is that one algorithm text runs unchanged
    over synchrony, asynchrony and shared memory once the environment is
    presented as an RRFD.  The repository carries four concrete
    environments — the abstract detector-driven {!Engine}, the lock-step
    synchronous network ([Syncnet.Sync_net]), the event-driven
    asynchronous round layer ([Msgnet.Round_layer]), and the
    real-concurrency domain-per-process runner ([Live.Live]) — and each
    of them is a {e substrate}: something that drives an {!Algorithm} and
    yields the same uniform observation, an {!execution}.

    A substrate implements {!S}: a name, a substrate-specific [config]
    (the detector, the fault pattern, the network adversary, the patience
    policy …) and an [execute] function polymorphic in the algorithm's
    state, message and output types.  Everything downstream — the
    protocol catalog, the cross-substrate differential matrix (E22), the
    live-vs-model matrix (E23), the model checker's SUTs, the experiment
    tables — consumes executions and never needs to know which substrate
    produced them.  This is the executable form of the
    "communication-closed" correspondence (Damian et al.) and the
    heard-of characterisation (Shimi et al.): whatever the wall clock did,
    the observable content of a run is its decisions plus the fault
    history it induced. *)

type 'out execution = {
  substrate : string;  (** Name of the substrate that ran the algorithm. *)
  decisions : 'out option array;
      (** First decision of each process ([None] if it never decided). *)
  decision_rounds : int option array;
      (** Round at which each process first decided, when the substrate
          tracks it.  The asynchronous round layer reports the last
          completed round of a decided process; the live substrate
          reports the (real-time) round whose delivery first made
          [decide] answer [Some _] at that process. *)
  rounds_used : int;  (** Rounds executed (the induced history's length).
          Simulated substrates may stop early once every process decided;
          the live substrate has no global decided-everywhere view, so
          its processes always run the full horizon and [rounds_used]
          equals the requested round count. *)
  induced : Fault_history.t;
      (** The fault history the run induced: for the engine this is the
          detector's output, for a real network — simulated or live — the
          per-round complement of who was heard. *)
  counters : Counters.t;
      (** Exact work accounting, in the same vocabulary on every
          substrate: rounds, messages delivered, detector queries,
          predicate checks.  See {!Counters}. *)
  violation : string option;
      (** Earliest violation of the optional online predicate check, when
          the substrate's config requested one. *)
  crashed : Pset.t;
      (** Processes the substrate actually crashed ([Pset.empty] for the
          abstract engine, whose processes all keep executing). *)
  completed : int array;
      (** Rounds each process completed.  Lock-step substrates complete
          the same number everywhere; the asynchronous layer may leave
          slow processes behind. *)
  wall_ns : int64 option;
      (** Real elapsed wall-clock time of the run in nanoseconds.
          [Some _] only on substrates whose nondeterminism comes from an
          actual scheduler (the live substrate); [None] on deterministic
          simulations, whose "time" is virtual and whose outputs must not
          depend on the wall clock. *)
}

module type S = sig
  type config
  (** Everything the substrate needs besides the algorithm: the
      detector/check for the engine, the fault pattern for the
      synchronous network, the seed/adversary/crash schedule for the
      asynchronous one, the resilience/patience policy for the live
      one. *)

  val name : string

  val execute :
    config ->
    n:int ->
    rounds:int ->
    algorithm:('s, 'm, 'out) Algorithm.t ->
    'out execution
  (** Drive [algorithm] for up to [rounds] rounds over [n] processes.
      Implementations preserve their substrate's native semantics (early
      stop on decision, crash schedules, repair protocols, patience
      deadlines …); the record is the common observable. *)
end
