type t = {
  name : string;
  doc : string;
  explain : Fault_history.t -> string option;
  incr : (Fault_history.t -> round:int -> string option) option;
      (* Round-local re-check: equals [explain h] under the precondition
         that [explain] returned [None] on every proper prefix of [h] and
         [round = Fault_history.rounds h].  [None] means the predicate has
         no cheap per-round form; callers fall back to [explain]. *)
}

let name p = p.name

let doc p = p.doc

let explain p h = p.explain h

let holds p h = explain p h = None

(* What the executor calls after each round: sound whenever the history
   grew one round at a time and no earlier call reported a violation —
   exactly the engine's use.  Falls back to the full scan when the
   predicate has no incremental form. *)
let check_round p h ~round =
  match p.incr with Some f -> f h ~round | None -> p.explain h

let make ?incr ~name ~doc explain = { name; doc; explain; incr }

let conj ?name:n2 a b =
  let name = match n2 with Some n -> n | None -> a.name ^ " ∧ " ^ b.name in
  {
    name;
    doc = a.doc ^ "; and " ^ b.doc;
    explain =
      (fun h ->
        match a.explain h with Some e -> Some e | None -> b.explain h);
    (* Both conjuncts were clean on every prefix whenever the conjunction
       was, so each side's round check is individually sound. *)
    incr =
      Some
        (fun h ~round ->
          match check_round a h ~round with
          | Some e -> Some e
          | None -> check_round b h ~round);
  }

let disj ?name:n2 a b =
  let name = match n2 with Some n -> n | None -> a.name ^ " ∨ " ^ b.name in
  {
    name;
    doc = a.doc ^ "; or " ^ b.doc;
    explain =
      (fun h ->
        match a.explain h with
        | None -> None
        | Some e -> ( match b.explain h with None -> None | Some _ -> Some e));
    (* A clean disjunction does not mean both disjuncts were clean, so a
       per-round check of either side is unsound; re-scan. *)
    incr = None;
  }

let always =
  make ~name:"true" ~doc:"the unconstrained RRFD; every history is allowed"
    (fun _ -> None)

(* Earliest (round, proc) violating [bad], reported via [msg]; the
   violation test only reads round [r], so checking just the newest round
   is a sound incremental form. *)
let per_proc ~name ~doc bad msg =
  let at h ~round =
    let n = Fault_history.n h in
    let rec scan_proc i =
      if i >= n then None
      else if bad h round i then Some (msg h round i)
      else scan_proc (i + 1)
    in
    scan_proc 0
  in
  {
    name;
    doc;
    explain =
      (fun h ->
        let rec scan_round r =
          if r > Fault_history.rounds h then None
          else
            match at h ~round:r with
            | Some _ as e -> e
            | None -> scan_round (r + 1)
        in
        scan_round 1);
    incr = Some at;
  }

(* Per-round (not per-process) violations, same incremental structure. *)
let per_round ~name ~doc bad msg =
  let at h ~round = if bad h round then Some (msg h round) else None in
  {
    name;
    doc;
    explain =
      (fun h ->
        let rec scan r =
          if r > Fault_history.rounds h then None
          else
            match at h ~round:r with
            | Some _ as e -> e
            | None -> scan (r + 1)
        in
        scan 1);
    incr = Some at;
  }

let no_self_suspicion =
  per_proc ~name:"no-self-suspicion" ~doc:"∀i,r. p_i ∉ D(i,r)"
    (fun h r i -> Pset.mem i (Fault_history.d h ~proc:i ~round:r))
    (fun _ r i -> Printf.sprintf "p%d suspects itself at round %d" i r)

let bounded_cumulative_union ~bound ~strict =
  let op = if strict then "<" else "≤" in
  make
    ~name:(Printf.sprintf "|∪∪D| %s %d" op bound)
    ~doc:
      (Printf.sprintf "|⋃_{r>0} ⋃_i D(i,r)| %s %d over all completed rounds" op
         bound)
    (fun h ->
      let total = Pset.cardinal (Fault_history.cumulative_union h) in
      let ok = if strict then total < bound else total <= bound in
      if ok then None
      else
        Some
          (Printf.sprintf "cumulative union has %d processes, want %s %d" total
             op bound))

let omission ~f =
  conj
    ~name:(Printf.sprintf "omission(f=%d)" f)
    no_self_suspicion
    (bounded_cumulative_union ~bound:f ~strict:false)

(* The closure test for one adjacent pair (r, r+1); [explain] scans all
   pairs, the incremental form checks only the pair the new round
   completed. *)
let crash_closure_pair h r =
  let union = Fault_history.round_union h ~round:r in
  let n = Fault_history.n h in
  let rec check k =
    if k >= n then None
    else
      let next = Fault_history.d h ~proc:k ~round:(r + 1) in
      (* A process never suspects itself under crash faults, so the
         closure requirement exempts k's own id. *)
      if Pset.subset (Pset.remove k union) next then check (k + 1)
      else
        Some
          (Printf.sprintf "round-%d union %s not contained in D(%d,%d)=%s" r
             (Pset.to_string union) k (r + 1) (Pset.to_string next))
  in
  check 0

let crash_closure =
  make ~name:"crash-closure" ~doc:"∀r,k. ⋃_i D(i,r) ⊆ D(k,r+1)"
    ~incr:(fun h ~round ->
      if round < 2 then None else crash_closure_pair h (round - 1))
    (fun h ->
      let rounds = Fault_history.rounds h in
      let rec scan r =
        if r >= rounds then None
        else
          match crash_closure_pair h r with
          | Some _ as e -> e
          | None -> scan (r + 1)
      in
      scan 1)

let crash ~f =
  conj ~name:(Printf.sprintf "crash(f=%d)" f) (omission ~f) crash_closure

let async_resilient ~f =
  per_proc
    ~name:(Printf.sprintf "async(f=%d)" f)
    ~doc:(Printf.sprintf "∀r,i. |D(i,r)| ≤ %d" f)
    (fun h r i -> Pset.cardinal (Fault_history.d h ~proc:i ~round:r) > f)
    (fun h r i ->
      Printf.sprintf "|D(%d,%d)| = %d > %d" i r
        (Pset.cardinal (Fault_history.d h ~proc:i ~round:r))
        f)

let async_mixed ~f ~t =
  per_round
    ~name:(Printf.sprintf "async-mixed(f=%d,t=%d)" f t)
    ~doc:
      (Printf.sprintf
         "∃Q, |Q| ≤ %d: processes outside Q miss ≤ %d, inside Q miss ≤ %d" t f
         t)
    (fun h r ->
      (* The minimal witness Q is exactly the processes missing more
         than f; the predicate holds iff that set is small enough and
         none of its members misses more than t. *)
      let n = Fault_history.n h in
      let over = ref [] in
      for i = 0 to n - 1 do
        let size = Pset.cardinal (Fault_history.d h ~proc:i ~round:r) in
        if size > f then over := (i, size) :: !over
      done;
      List.length !over > t || List.exists (fun (_, s) -> s > t) !over)
    (fun _ r -> Printf.sprintf "no witness Q exists at round %d" r)

let someone_seen_by_all =
  per_round ~name:"someone-seen-by-all" ~doc:"∀r. |⋃_i D(i,r)| < n"
    (fun h r ->
      Pset.cardinal (Fault_history.round_union h ~round:r)
      >= Fault_history.n h)
    (fun _ r -> Printf.sprintf "round %d: every process is suspected by someone" r)

let shared_memory ~f =
  conj
    ~name:(Printf.sprintf "shm(f=%d)" f)
    (async_resilient ~f) someone_seen_by_all

let antisymmetric_misses =
  per_proc ~name:"antisymmetric-misses" ~doc:"p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)"
    (fun h r i ->
      let di = Fault_history.d h ~proc:i ~round:r in
      Pset.exists
        (fun j -> Pset.mem i (Fault_history.d h ~proc:j ~round:r))
        di)
    (fun h r i ->
      let di = Fault_history.d h ~proc:i ~round:r in
      let j =
        Pset.to_list
          (Pset.filter
             (fun j -> Pset.mem i (Fault_history.d h ~proc:j ~round:r))
             di)
        |> List.hd
      in
      Printf.sprintf "round %d: p%d and p%d suspect each other" r i j)

let shared_memory_alt ~f =
  conj
    ~name:(Printf.sprintf "shm-alt(f=%d)" f)
    (shared_memory ~f) antisymmetric_misses

let comparable_views =
  per_round ~name:"comparable-views" ~doc:"∀r,i,j. D(i,r) ⊆ D(j,r) ∨ D(j,r) ⊆ D(i,r)"
    (fun h r ->
      let n = Fault_history.n h in
      let incomparable = ref false in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let di = Fault_history.d h ~proc:i ~round:r in
          let dj = Fault_history.d h ~proc:j ~round:r in
          if not (Pset.subset di dj || Pset.subset dj di) then
            incomparable := true
        done
      done;
      !incomparable)
    (fun _ r -> Printf.sprintf "round %d has incomparable fault sets" r)

let snapshot ~f =
  conj
    ~name:(Printf.sprintf "snapshot(f=%d)" f)
    (conj (async_resilient ~f) no_self_suspicion)
    comparable_views

let detector_s =
  make ~name:"detector-S" ~doc:"∃p_j. p_j ∉ ⋃_{r>0} ⋃_i D(i,r)"
    (fun h ->
      let total = Pset.cardinal (Fault_history.cumulative_union h) in
      if total < Fault_history.n h then None
      else Some "every process is eventually suspected by someone")

let k_set ~k =
  per_round
    ~name:(Printf.sprintf "k-set(k=%d)" k)
    ~doc:(Printf.sprintf "∀r. |⋃_i D(i,r) − ⋂_i D(i,r)| < %d" k)
    (fun h r ->
      let union = Fault_history.round_union h ~round:r in
      let inter = Fault_history.round_inter h ~round:r in
      Pset.cardinal (Pset.diff union inter) >= k)
    (fun h r ->
      let union = Fault_history.round_union h ~round:r in
      let inter = Fault_history.round_inter h ~round:r in
      Printf.sprintf "round %d: |∪D − ∩D| = %d ≥ %d" r
        (Pset.cardinal (Pset.diff union inter))
        k)

let identical_views =
  per_proc ~name:"identical-views" ~doc:"∀r,i,j. D(i,r) = D(j,r) (equation 5)"
    (fun h r i ->
      i > 0
      && not
           (Pset.equal
              (Fault_history.d h ~proc:i ~round:r)
              (Fault_history.d h ~proc:0 ~round:r)))
    (fun _ r i ->
      Printf.sprintf "round %d: D(%d) differs from D(0)" r i)

let byzantine_round_bound ~f =
  per_round
    ~name:(Printf.sprintf "byz-round(f=%d)" f)
    ~doc:
      (Printf.sprintf
         "∀r. |⋃_i D(i,r)| ≤ %d — at most %d distinct processes behave \
          badly (silently or by lying) in any single round"
         f f)
    (fun h r -> Pset.cardinal (Fault_history.round_union h ~round:r) > f)
    (fun h r ->
      Printf.sprintf "round %d: %d processes misbehave, want ≤ %d" r
        (Pset.cardinal (Fault_history.round_union h ~round:r))
        f)

(* A finite history can only witness "eventually" on a suffix, and the
   suffix union is monotone in its start round, so the weakest nonempty
   witness is the final round alone: the predicate holds iff the last
   round leaves at least [k] processes unsuspected.  [explain] still
   hunts for the earliest suffix that works, which is the useful
   diagnostic when the kernel exists. *)
let eventual_honest_kernel ~k =
  make
    ~name:(Printf.sprintf "honest-kernel(k=%d)" k)
    ~doc:
      (Printf.sprintf
         "∃r₀. |⋃_{r≥r₀} ⋃_i D(i,r)| ≤ n − %d — from some round on, a \
          kernel of ≥ %d processes is never suspected or lied about"
         k k)
    (fun h ->
      let n = Fault_history.n h in
      let rounds = Fault_history.rounds h in
      if rounds = 0 then None
      else
        let last = Fault_history.round_union h ~round:rounds in
        if n - Pset.cardinal last >= k then None
        else
          Some
            (Printf.sprintf
               "final round still has only %d clean processes, want ≥ %d"
               (n - Pset.cardinal last)
               k))

let honest_kernel_start ~k h =
  let n = Fault_history.n h in
  let rounds = Fault_history.rounds h in
  let rec scan r0 union =
    if r0 < 1 then Some 1
    else
      let union = Pset.union union (Fault_history.round_union h ~round:r0) in
      if n - Pset.cardinal union >= k then
        match scan (r0 - 1) union with Some r -> Some r | None -> Some r0
      else None
  in
  if rounds = 0 then None else scan rounds Pset.empty

let not_all_faulty =
  per_proc ~name:"not-all-faulty" ~doc:"∀i,r. D(i,r) ≠ S"
    (fun h r i ->
      Pset.equal
        (Fault_history.d h ~proc:i ~round:r)
        (Pset.full (Fault_history.n h)))
    (fun _ r i -> Printf.sprintf "D(%d,%d) is the whole system" i r)
