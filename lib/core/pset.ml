(* Two representations behind one abstract type, discriminated by the
   runtime tag (the zarith idiom):

   - "small": an immediate int, one bit per process id in [0,62).  This
     is the original single-word bitset and stays allocation-free.
   - "wide": an [int array] of >= 2 words, {!bits_per_word} bits per
     word (bit [b] of word [w] encodes id [w * bits_per_word + b]), with
     a nonzero last word.

   The representation is canonical — every set has exactly one encoding
   (a value that fits one word is always small) — so structural equality
   coincides with set equality and [compare] is a total order.  All the
   set algebra is word-at-a-time, keeping per-round operations O(n/62)
   instead of O(n). *)

type t = Obj.t

let bits_per_word = 62

(* [1 lsl 62] wraps to [min_int] on 63-bit ints, so this is [max_int] =
   0x3FFF_FFFF_FFFF_FFFF — exactly the 62 low bits. *)
let word_mask = (1 lsl bits_per_word) - 1

let small_universe = bits_per_word

(* Sanity bound, not a representation limit: wide sets grow by whole
   words, so this only caps absurd ids (and keeps error messages
   finite).  2^30 processes is far past any campaign we can run. *)
let max_universe = 1 lsl 30

let[@inline] is_small (s : t) = Obj.is_int s

let[@inline] of_small (x : int) : t = Obj.repr x

let[@inline] to_small (s : t) : int = Obj.obj s

let[@inline] of_words (a : int array) : t = Obj.repr a

let[@inline] to_words (s : t) : int array = Obj.obj s

let[@inline] nwords s = if is_small s then 1 else Array.length (to_words s)

(* Word [i] of either representation, 0 beyond the stored width. *)
let[@inline] word s i =
  if is_small s then if i = 0 then to_small s else 0
  else
    let a = to_words s in
    if i < Array.length a then a.(i) else 0

(* Canonicalise a freshly built word array: drop trailing zero words and
   collapse single-word values to the small representation. *)
let norm (a : int array) : t =
  let last = ref (Array.length a - 1) in
  while !last > 0 && a.(!last) = 0 do
    decr last
  done;
  if !last = 0 then of_small a.(0)
  else if !last = Array.length a - 1 then of_words a
  else of_words (Array.sub a 0 (!last + 1))

let empty = of_small 0

let check_id p =
  if p < 0 || p >= max_universe then
    invalid_arg (Printf.sprintf "Pset: process id %d out of [0,%d)" p max_universe)

let full n =
  if n < 0 || n > max_universe then
    invalid_arg
      (Printf.sprintf "Pset.full: size %d out of [0,%d]" n max_universe);
  if n <= bits_per_word then of_small (if n = 0 then 0 else (1 lsl n) - 1)
  else begin
    let k = (n + bits_per_word - 1) / bits_per_word in
    let a = Array.make k word_mask in
    let rem = n mod bits_per_word in
    if rem <> 0 then a.(k - 1) <- (1 lsl rem) - 1;
    of_words a
  end

let singleton p =
  check_id p;
  if p < bits_per_word then of_small (1 lsl p)
  else begin
    let w = p / bits_per_word in
    let a = Array.make (w + 1) 0 in
    a.(w) <- 1 lsl (p mod bits_per_word);
    of_words a
  end

let[@inline] add p s =
  check_id p;
  let w = p / bits_per_word and b = p mod bits_per_word in
  if is_small s && w = 0 then of_small (to_small s lor (1 lsl b))
  else begin
    let k = if w + 1 > nwords s then w + 1 else nwords s in
    let a = Array.init k (word s) in
    a.(w) <- a.(w) lor (1 lsl b);
    (* Canonical: either the last word was already nonzero, or [w] is the
       last word and we just set a bit in it. *)
    of_words a
  end

let remove p s =
  check_id p;
  let w = p / bits_per_word and b = p mod bits_per_word in
  if is_small s then
    if w = 0 then of_small (to_small s land lnot (1 lsl b)) else s
  else
    let a = to_words s in
    if w >= Array.length a then s
    else begin
      let a = Array.copy a in
      a.(w) <- a.(w) land lnot (1 lsl b);
      norm a
    end

let[@inline] mem p s =
  check_id p;
  if is_small s then p < bits_per_word && to_small s land (1 lsl p) <> 0
  else word s (p / bits_per_word) land (1 lsl (p mod bits_per_word)) <> 0

let of_list l =
  match l with
  | [] -> empty
  | _ ->
    let maxp =
      List.fold_left
        (fun m p ->
          check_id p;
          if p > m then p else m)
        0 l
    in
    if maxp < bits_per_word then
      of_small (List.fold_left (fun s p -> s lor (1 lsl p)) 0 l)
    else begin
      let a = Array.make ((maxp / bits_per_word) + 1) 0 in
      List.iter
        (fun p ->
          let w = p / bits_per_word in
          a.(w) <- a.(w) lor (1 lsl (p mod bits_per_word)))
        l;
      (* The word holding [maxp] is the last one and is nonzero. *)
      of_words a
    end

(* SWAR popcount over a 62-bit word.  The usual 64-bit constants are
   truncated to what fits an OCaml int; inputs never have bit 62 set, so
   the truncated first mask (0x5555.. with the two top bits dropped)
   still covers every bit position [x lsr 1] can occupy. *)
let[@inline] popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

(* Index of the lowest set bit of a nonzero word, popcount-style ctz:
   [x land -x] isolates the bit, minus one masks everything below it. *)
let[@inline] ctz x = popcount ((x land -x) - 1)

(* Index of the highest set bit of a nonzero word: smear the top bit
   down, then count. *)
let top_index x =
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let x = x lor (x lsr 32) in
  popcount x - 1

let[@inline] cardinal s =
  if is_small s then popcount (to_small s)
  else Array.fold_left (fun acc w -> acc + popcount w) 0 (to_words s)

let[@inline] is_empty s = is_small s && to_small s = 0

let[@inline] union a b =
  if is_small a && is_small b then of_small (to_small a lor to_small b)
  else begin
    let k = if nwords a > nwords b then nwords a else nwords b in
    (* Canonical: the longer operand's last word is nonzero. *)
    of_words (Array.init k (fun i -> word a i lor word b i))
  end

let inter a b =
  if is_small a || is_small b then of_small (word a 0 land word b 0)
  else begin
    let k = if nwords a < nwords b then nwords a else nwords b in
    norm (Array.init k (fun i -> word a i land word b i))
  end

let[@inline] diff a b =
  (* A word holds only bits 0..61, so [land lnot] cannot introduce high
     bits: the result stays a valid 62-bit word. *)
  if is_small a then of_small (to_small a land lnot (word b 0))
  else norm (Array.mapi (fun i w -> w land lnot (word b i)) (to_words a))

let[@inline] subset a b =
  if is_small a then to_small a land lnot (word b 0) = 0
  else begin
    let aw = to_words a in
    let rec go i =
      i >= Array.length aw || (aw.(i) land lnot (word b i) = 0 && go (i + 1))
    in
    go 0
  end

let[@inline] equal a b =
  if is_small a then is_small b && to_small a = to_small b
  else if is_small b then false
  else begin
    let x = to_words a and y = to_words b in
    Array.length x = Array.length y
    &&
    let rec go i = i < 0 || (x.(i) = y.(i) && go (i - 1)) in
    go (Array.length x - 1)
  end

(* Total order: small sets before wide ones, wide sets by width then by
   most-significant word.  Consistent with canonical representations. *)
let compare a b =
  match (is_small a, is_small b) with
  | true, true -> Int.compare (to_small a) (to_small b)
  | true, false -> -1
  | false, true -> 1
  | false, false ->
    let x = to_words a and y = to_words b in
    let c = Int.compare (Array.length x) (Array.length y) in
    if c <> 0 then c
    else begin
      let rec go i =
        if i < 0 then 0
        else
          let c = Int.compare x.(i) y.(i) in
          if c <> 0 then c else go (i - 1)
      in
      go (Array.length x - 1)
    end

let disjoint a b =
  if is_small a || is_small b then word a 0 land word b 0 = 0
  else begin
    let k = if nwords a < nwords b then nwords a else nwords b in
    let rec go i = i >= k || (word a i land word b i = 0 && go (i + 1)) in
    go 0
  end

(* Index of the lowest set bit; undefined on empty (guarded by callers). *)
let lowest_index s =
  if is_small s then ctz (to_small s)
  else begin
    let a = to_words s in
    let rec go i =
      if a.(i) <> 0 then (i * bits_per_word) + ctz a.(i) else go (i + 1)
    in
    go 0
  end

(* Ascending iteration over one word's members, ids offset by [base]. *)
let iter_word f base w =
  let rec go w =
    if w <> 0 then begin
      f (base + ctz w);
      go (w land (w - 1))
    end
  in
  go w

let iter f s =
  if is_small s then iter_word f 0 (to_small s)
  else Array.iteri (fun i w -> iter_word f (i * bits_per_word) w) (to_words s)

let fold f s init =
  let acc = ref init in
  iter (fun p -> acc := f p !acc) s;
  !acc

let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])

let for_all f s = fold (fun p acc -> acc && f p) s true

let exists f s = fold (fun p acc -> acc || f p) s false

(* [f] is consulted once per member in ascending order — seeded callers
   (random_subset) rely on that exact consumption pattern. *)
let filter f s =
  if is_small s then begin
    let w = ref 0 in
    iter_word (fun p -> if f p then w := !w lor (1 lsl p)) 0 (to_small s);
    of_small !w
  end
  else begin
    let a = to_words s in
    let c = Array.make (Array.length a) 0 in
    Array.iteri
      (fun i w ->
        let base = i * bits_per_word in
        iter_word (fun p -> if f p then c.(i) <- c.(i) lor (1 lsl (p - base))) base w)
      a;
    norm c
  end

let min_elt s = if is_empty s then None else Some (lowest_index s)

let[@inline] lowest s = if is_empty s then -1 else lowest_index s

let max_elt s =
  if is_empty s then None
  else if is_small s then Some (top_index (to_small s))
  else begin
    let a = to_words s in
    let i = Array.length a - 1 in
    (* Last word nonzero by canonicity. *)
    Some ((i * bits_per_word) + top_index a.(i))
  end

(* Index of the (i+1)-th set bit of [w]; requires [i < popcount w]. *)
let nth_in_word w i =
  let rec go w i =
    let b = ctz w in
    if i = 0 then b else go (w land (w - 1)) (i - 1)
  in
  go w i

let choose_nth s i =
  let card = cardinal s in
  if i < 0 || i >= card then
    invalid_arg (Printf.sprintf "Pset.choose_nth: index %d out of [0,%d)" i card);
  if is_small s then nth_in_word (to_small s) i
  else begin
    let a = to_words s in
    let rec go wi i =
      let c = popcount a.(wi) in
      if i < c then (wi * bits_per_word) + nth_in_word a.(wi) i
      else go (wi + 1) (i - c)
    in
    go 0 i
  end

(* One [Rng.bool] per member in ascending order.  The small-set fast
   path walks the word directly — bit-identical draw consumption to the
   [filter] spelling, without the closure and set-rebuild machinery. *)
let random_subset rng s =
  if is_small s then begin
    let w = ref (to_small s) in
    let out = ref 0 in
    while !w <> 0 do
      let bit = !w land - !w in
      if Dsim.Rng.bool rng then out := !out lor bit;
      w := !w land (!w - 1)
    done;
    of_small !out
  end
  else filter (fun _ -> Dsim.Rng.bool rng) s

let random_subset_of_size rng s k =
  let size = cardinal s in
  if k < 0 || k > size then
    invalid_arg
      (Printf.sprintf "Pset.random_subset_of_size: k %d out of [0,%d]" k size);
  (* Knuth selection sampling (algorithm S) inlined over the member rank,
     drawing exactly as [Rng.sample_without_replacement rng k size] would
     — same draws in the same order — but folding the chosen members
     straight into the set instead of materialising an index list.  The
     small-set path walks the word's bits ascending in one pass instead
     of rank-scanning with [choose_nth] per pick. *)
  if is_small s then begin
    let w = ref (to_small s) in
    let out = ref 0 in
    let remaining = ref k in
    let i = ref 0 in
    while !remaining > 0 do
      if size - !i = !remaining then begin
        (* Take every member not yet examined; no draws. *)
        out := !out lor !w;
        remaining := 0
      end
      else begin
        let bit = !w land - !w in
        if Dsim.Rng.int rng (size - !i) < !remaining then begin
          out := !out lor bit;
          decr remaining
        end;
        w := !w land (!w - 1);
        incr i
      end
    done;
    of_small !out
  end
  else begin
    let acc = ref empty in
    let remaining = ref k in
    let i = ref 0 in
    while !remaining > 0 do
      if size - !i = !remaining then begin
        for j = !i to size - 1 do
          acc := add (choose_nth s j) !acc
        done;
        remaining := 0
      end
      else begin
        if Dsim.Rng.int rng (size - !i) < !remaining then begin
          acc := add (choose_nth s !i) !acc;
          decr remaining
        end;
        incr i
      end
    done;
    !acc
  end

let subsets s =
  let elements = to_list s in
  List.fold_left
    (fun acc p -> List.concat_map (fun sub -> [ sub; add p sub ]) acc)
    [ empty ] elements

let subsets_of_size s k =
  let rec choose elements k =
    if k = 0 then [ empty ]
    else
      match elements with
      | [] -> []
      | p :: rest ->
        let with_p = List.map (add p) (choose rest (k - 1)) in
        with_p @ choose rest k
  in
  choose (to_list s) k

let pp ppf s =
  let elements = to_list s in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Proc.pp)
    elements

let to_string s = Format.asprintf "%a" pp s
