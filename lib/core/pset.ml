type t = int

let max_universe = 62

let empty = 0

let check_id p =
  if p < 0 || p >= max_universe then
    invalid_arg (Printf.sprintf "Pset: process id %d out of [0,%d)" p max_universe)

let full n =
  if n < 0 || n > max_universe then
    invalid_arg
      (Printf.sprintf "Pset.full: size %d out of [0,%d]" n max_universe);
  if n = 0 then 0 else (1 lsl n) - 1

let singleton p =
  check_id p;
  1 lsl p

let add p s =
  check_id p;
  s lor (1 lsl p)

let remove p s =
  check_id p;
  s land lnot (1 lsl p)

let mem p s = p >= 0 && p < max_universe && s land (1 lsl p) <> 0

let of_list l = List.fold_left (fun s p -> add p s) empty l

let cardinal s =
  let rec count s acc = if s = 0 then acc else count (s land (s - 1)) (acc + 1) in
  count s 0

let is_empty s = s = 0

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let subset a b = a land lnot b = 0

let equal (a : int) b = a = b

let compare = Int.compare

let disjoint a b = a land b = 0

let lowest_bit s = s land -s

(* Index of the lowest set bit; undefined on 0 (guarded by callers). *)
let lowest_index s =
  let rec go bit i = if bit land 1 <> 0 then i else go (bit lsr 1) (i + 1) in
  go (lowest_bit s) 0

let iter f s =
  let rec go s =
    if s <> 0 then begin
      let i = lowest_index s in
      f i;
      go (s land (s - 1))
    end
  in
  go s

let fold f s init =
  let rec go s acc =
    if s = 0 then acc
    else
      let i = lowest_index s in
      go (s land (s - 1)) (f i acc)
  in
  go s init

let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])

let for_all f s = fold (fun p acc -> acc && f p) s true

let exists f s = fold (fun p acc -> acc || f p) s false

let filter f s = fold (fun p acc -> if f p then add p acc else acc) s empty

let min_elt s = if s = 0 then None else Some (lowest_index s)

let max_elt s =
  if s = 0 then None
  else
    let rec go s best = if s = 0 then best else go (s land (s - 1)) (lowest_index s) in
    Some (go s 0)

let choose_nth s i =
  if i < 0 || i >= cardinal s then
    invalid_arg
      (Printf.sprintf "Pset.choose_nth: index %d out of [0,%d)" i (cardinal s));
  let rec go s i =
    let low = lowest_index s in
    if i = 0 then low else go (s land (s - 1)) (i - 1)
  in
  go s i

let random_subset rng s = filter (fun _ -> Dsim.Rng.bool rng) s

let random_subset_of_size rng s k =
  let size = cardinal s in
  if k < 0 || k > size then
    invalid_arg
      (Printf.sprintf "Pset.random_subset_of_size: k %d out of [0,%d]" k size);
  let indices = Dsim.Rng.sample_without_replacement rng k size in
  List.fold_left (fun acc i -> add (choose_nth s i) acc) empty indices

let subsets s =
  let elements = to_list s in
  List.fold_left
    (fun acc p -> List.concat_map (fun sub -> [ sub; add p sub ]) acc)
    [ empty ] elements

let subsets_of_size s k =
  let rec choose elements k =
    if k = 0 then [ empty ]
    else
      match elements with
      | [] -> []
      | p :: rest ->
        let with_p = List.map (add p) (choose rest (k - 1)) in
        with_p @ choose rest k
  in
  choose (to_list s) k

let pp ppf s =
  let elements = to_list s in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Proc.pp)
    elements

let to_string s = Format.asprintf "%a" pp s
