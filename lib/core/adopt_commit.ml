type 'v vote = Commit_vote of 'v | Adopt_vote of 'v

type 'v outcome = Commit of 'v | Adopt of 'v

let value_of = function Commit v | Adopt v -> v

let is_commit = function Commit _ -> true | Adopt _ -> false

let all_equal = function
  | [] -> None
  | v :: rest -> if List.for_all (fun w -> w = v) rest then Some v else None

let propose ~own ~seen =
  match all_equal seen with
  | Some v -> Commit_vote v
  | None -> Adopt_vote own

let resolve ~own ~seen =
  let commits =
    List.filter_map (function Commit_vote v -> Some v | Adopt_vote _ -> None) seen
  in
  match commits with
  | [] -> Adopt own
  | v :: _ ->
    if List.length commits = List.length seen && all_equal commits <> None then
      Commit v
    else Adopt v

type 'v message = Value of 'v | Vote of 'v vote

type 'v state = {
  me : Proc.t;
  input : 'v;
  vote : 'v vote option;
  result : 'v outcome option;
}

let algorithm ~inputs =
  {
    Algorithm.name = "adopt-commit";
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Adopt_commit.algorithm: inputs length mismatch";
        { me = p; input = inputs.(p); vote = None; result = None });
    emit =
      (fun s ~round ->
        match (round, s.vote) with
        | 1, _ -> Value s.input
        | _, Some vote -> Vote vote
        | _, None -> Value s.input);
    deliver =
      (fun s ~round ~view ->
        (* Self-inclusion: a process knows its own round message through its
           local state even when the detector marks it late. *)
        let seen extract own =
          let items =
            List.rev (View.fold (fun _ m acc -> extract m :: acc) view [])
          in
          if Pset.mem s.me (View.faulty view) then own :: items else items
        in
        match round with
        | 1 ->
          let values =
            seen (function Value v -> v | Vote _ -> assert false) s.input
          in
          { s with vote = Some (propose ~own:s.input ~seen:values) }
        | 2 ->
          let own_vote = match s.vote with Some v -> v | None -> assert false in
          let votes =
            seen (function Vote v -> v | Value _ -> assert false) own_vote
          in
          { s with result = Some (resolve ~own:s.input ~seen:votes) }
        | _ -> s);
    decide = (fun s -> s.result);
  }

let pp_outcome pp_v ppf = function
  | Commit v -> Format.fprintf ppf "commit %a" pp_v v
  | Adopt v -> Format.fprintf ppf "adopt %a" pp_v v

let check_outcomes ~inputs outcomes =
  let n = Array.length inputs in
  if Array.length outcomes <> n then
    invalid_arg "Adopt_commit.check_outcomes: length mismatch";
  let undecided = ref None in
  Array.iteri
    (fun i o -> if o = None && !undecided = None then undecided := Some i)
    outcomes;
  match !undecided with
  | Some i -> Some (Printf.sprintf "termination: p%d produced no outcome" i)
  | None ->
    let outcome i = Option.get outcomes.(i) in
    let invalid = ref None in
    for i = 0 to n - 1 do
      let v = value_of (outcome i) in
      if (not (Array.exists (fun w -> w = v) inputs)) && !invalid = None then
        invalid := Some (i, v)
    done;
    (match !invalid with
    | Some (i, _) -> Some (Printf.sprintf "validity: p%d output a non-input value" i)
    | None ->
      let first = inputs.(0) in
      let convergent = Array.for_all (fun v -> v = first) inputs in
      let all_commit_first =
        Array.for_all
          (fun i -> match outcome i with Commit v -> v = first | Adopt _ -> false)
          (Array.init n Fun.id)
      in
      if convergent && not all_commit_first then
        Some "convergence: identical inputs but some process did not commit"
      else
        let committed =
          Array.to_list outcomes
          |> List.filter_map (function
               | Some (Commit v) -> Some v
               | Some (Adopt _) | None -> None)
        in
        let agreement_broken =
          List.exists
            (fun v ->
              Array.exists
                (fun i -> value_of (outcome i) <> v)
                (Array.init n Fun.id))
            committed
        in
        if agreement_broken then
          Some "agreement: a committed value was not universally carried"
        else None)

let encode = function
  | Commit v ->
    if v < 0 then invalid_arg "Adopt_commit.encode: negative value";
    2 * v
  | Adopt v ->
    if v < 0 then invalid_arg "Adopt_commit.encode: negative value";
    (2 * v) + 1

let decode code =
  if code < 0 then invalid_arg "Adopt_commit.decode: negative code";
  if code land 1 = 0 then Commit (code asr 1) else Adopt (code asr 1)

let pp_encoded ppf code = pp_outcome Format.pp_print_int ppf (decode code)
