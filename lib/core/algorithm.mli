(** Abstract emit/receive algorithms (Sec. 1 of the paper).

    An RRFD algorithm runs at every process and proceeds in rounds:

    {v
      r := 1
      forever do
        compute message m_{i,r} for round r
        emit m_{i,r}
        wait until ∀ p_j: received m_{j,r} or p_j ∈ D(i,r)
        r := r + 1
    v}

    The engine drives this loop; an algorithm supplies the per-process state
    machine.  ['msg] is the round message type, ['out] the decision type. *)

type ('state, 'msg, 'out) t = {
  name : string;
  init : n:int -> Proc.t -> 'state;
      (** Initial state of each process in an [n]-process system. *)
  emit : 'state -> round:int -> 'msg;
      (** The message this process sends to everyone in the given round. *)
  deliver : 'state -> round:int -> view:'msg View.t -> 'state;
      (** End-of-round transition.  The view exposes exactly the messages
          of processes outside [D(i,r)] ([View.faulty view]): [j] is
          readable iff [p_j ∉ D(i,r)].  Note the paper allows a process
          to appear in its own fault set, in which case it still knows its
          own emitted message through its local state.  The view is only
          valid for the duration of the call — the executor reuses its
          buffer; copy ([View.to_option_array]) to retain round data. *)
  decide : 'state -> 'out option;
      (** [Some v] once the process has irrevocably decided [v]. *)
}

val map_output : ('out1 -> 'out2) -> ('s, 'm, 'out1) t -> ('s, 'm, 'out2) t
(** Post-compose the decision function. *)
