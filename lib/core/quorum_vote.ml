(* Two-threshold quorum voting, the round-machine core of the fork
   accountability construction.  See quorum_vote.mli. *)

type msg = Vote of int | Cert of { v : int; quorum : Pset.t } | Idle

type state = {
  threshold : int;
  input : int;
  decided : (int * Pset.t) option;
}

let pp_msg ppf = function
  | Vote v -> Format.fprintf ppf "vote %d" v
  | Cert { v; quorum } ->
      Format.fprintf ppf "cert %d by %s" v (Pset.to_string quorum)
  | Idle -> Format.pp_print_string ppf "idle"

let quorum_of state = Option.map snd state.decided

(* Find a value carried by at least [threshold] distinct senders.  Votes
   are keyed by sender position in the view, so duplicated deliveries
   can never inflate a quorum — the same discipline Ct_consensus uses. *)
let scan_quorum ~threshold view =
  let tally = ref [] in
  View.iter
    (fun sender m ->
      match m with
      | Vote v ->
          let senders =
            match List.assoc_opt v !tally with
            | Some s -> s
            | None -> Pset.empty
          in
          tally := (v, Pset.add sender senders) :: List.remove_assoc v !tally
      | Cert _ | Idle -> ())
    view;
  List.find_opt (fun (_, s) -> Pset.cardinal s >= threshold) !tally

let algorithm ~inputs ~f =
  {
    Algorithm.name = "quorum-vote";
    init =
      (fun ~n i ->
        if f < 0 || f >= n then invalid_arg "Quorum_vote: need 0 ≤ f < n";
        { threshold = n - f; input = inputs.(i); decided = None });
    emit =
      (fun s ~round ->
        if round <= 1 then Vote s.input
        else
          match s.decided with
          | Some (v, quorum) -> Cert { v; quorum }
          | None -> Idle);
    deliver =
      (fun s ~round ~view ->
        (* Only the vote round moves the state: certificates are gossip
           for the auditor, never a second chance to decide — a decision
           must rest on a directly observed vote quorum, which is what
           makes forks provable (quorum intersection) instead of
           injectable (a forged certificate convincing a bystander). *)
        if round <> 1 || s.decided <> None then s
        else
          match scan_quorum ~threshold:s.threshold view with
          | Some (v, senders) -> { s with decided = Some (v, senders) }
          | None -> s);
    decide = (fun s -> Option.map fst s.decided);
  }
