(** Immutable sets of process identifiers.

    A set is a width-polymorphic bitset with two representations behind
    this abstract type: ids below {!small_universe} live in a single
    immediate-int word (allocation-free, the common case for the paper's
    experiments), larger universes in a canonical multi-word array with
    62 bits per word.  All set algebra is word-at-a-time — O(n/62), not
    O(n) — and sets compare structurally under {!equal}/{!compare}. *)

type t
(** An immutable set of process identifiers in [\[0, max_universe)]. *)

val max_universe : int
(** Upper bound on process ids (2{^30}).  A sanity bound, not a
    representation limit: wide sets grow by whole 62-bit words. *)

val small_universe : int
(** Ids below this bound (62) are stored in the one-word immediate-int
    fast path; at or above it the set is promoted to the multi-word
    representation. *)

val is_small : t -> bool
(** True iff the set is in the one-word representation, i.e. all its
    elements are below {!small_universe}.  Representation introspection
    for tests and diagnostics; the two representations are otherwise
    indistinguishable. *)

val empty : t

val full : int -> t
(** [full n] is [{0, ..., n-1}].
    @raise Invalid_argument if [n < 0] or [n > max_universe]. *)

val singleton : Proc.t -> t
(** @raise Invalid_argument if the id is out of range. *)

val of_list : Proc.t list -> t

val to_list : t -> Proc.t list
(** Elements in increasing order. *)

val add : Proc.t -> t -> t

val remove : Proc.t -> t -> t

val mem : Proc.t -> t -> bool
(** @raise Invalid_argument if the id is out of [\[0, max_universe)],
    like every other entry point. *)

val cardinal : t -> int
(** Constant-time per word (SWAR popcount). *)

val is_empty : t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order (small sets before wide ones, wide by width then
    most-significant word); consistent with {!equal}. *)

val disjoint : t -> t -> bool

val iter : (Proc.t -> unit) -> t -> unit
(** Ascending order. *)

val fold : (Proc.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val for_all : (Proc.t -> bool) -> t -> bool

val exists : (Proc.t -> bool) -> t -> bool

val filter : (Proc.t -> bool) -> t -> t
(** Consults the predicate once per member in ascending order (seeded
    callers rely on that consumption pattern). *)

val min_elt : t -> Proc.t option
(** The least identifier in the set, if any (constant-time ctz per
    word). *)

val lowest : t -> int
(** Allocation-free {!min_elt}: the least identifier, or [-1] when the
    set is empty.  For per-delivery hot paths that cannot afford the
    option box. *)

val max_elt : t -> Proc.t option

val choose_nth : t -> int -> Proc.t
(** [choose_nth s i] is the [i]-th smallest element.  Skips whole words
    by popcount.
    @raise Invalid_argument if [i < 0] or [i >= cardinal s]. *)

val random_subset : Dsim.Rng.t -> t -> t
(** [random_subset rng s] keeps each element of [s] independently with
    probability 1/2. *)

val random_subset_of_size : Dsim.Rng.t -> t -> int -> t
(** [random_subset_of_size rng s k] is a uniform k-element subset of [s].
    @raise Invalid_argument if [k < 0] or [k > cardinal s]. *)

val subsets : t -> t list
(** All subsets of [s] (2^|s| of them), in an unspecified but deterministic
    order.  Intended only for small sets in exhaustive enumerations. *)

val subsets_of_size : t -> int -> t list
(** All k-element subsets of [s]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{p0,p2,p5}]. *)

val to_string : t -> string
