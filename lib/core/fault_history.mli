(** Fault histories: the family [{D(i,r)}] of an RRFD execution.

    In round [r], process [p_i] is told by the fault detector that the
    processes in [D(i,r)] are faulty (it does not wait for their round-[r]
    messages).  A fault history records these sets for every process and
    every completed round.  RRFD predicates ({!Predicate}) are properties of
    fault histories; the engine ({!Engine}) produces one per execution.

    Rounds are numbered from 1, matching the paper. *)

type t
(** An immutable fault history prefix. *)

val empty : n:int -> t
(** [empty ~n] is the history of zero completed rounds in an [n]-process
    system.
    @raise Invalid_argument if [n < 1] or [n > Pset.max_universe]. *)

val create : n:int -> capacity:int -> t
(** [empty ~n] with row storage preallocated for [capacity] rounds: the
    first [capacity] {!append}s write into the preallocated arena and
    never grow it.  Beyond that, storage doubles like {!empty}'s.
    @raise Invalid_argument as {!empty}, or if [capacity < 0]. *)

val n : t -> int
(** Number of processes in the system. *)

val rounds : t -> int
(** Number of completed rounds. *)

val append : t -> Pset.t array -> t
(** [append h d] extends [h] with one round in which process [i] was given
    the fault set [d.(i)].
    @raise Invalid_argument if [Array.length d <> n h] or some [d.(i)]
    contains an id [>= n h]. *)

val append_in_place : t -> Pset.t array -> t
(** Executor-internal tip append: extends [t] {e itself} (the result is
    physically [t]) instead of returning a fresh handle, making the
    steady-state engine round allocation-free.  Only legal on a history
    that is the tip of a backing its caller exclusively owns — i.e. no
    other live handle shares the backing with an equal or greater round
    count.  Everyone else wants {!append}.
    @raise Invalid_argument as {!append}, or if [t] is not its backing's
    tip. *)

val d : t -> proc:Proc.t -> round:int -> Pset.t
(** [d h ~proc:i ~round:r] is [D(i,r)].
    @raise Invalid_argument if [r < 1], [r > rounds h], or [proc] is out of
    range. *)

val round_sets : t -> round:int -> Pset.t array
(** All of round [r]'s fault sets, indexed by process. *)

val round_union : t -> round:int -> Pset.t
(** [round_union h ~round:r] is [⋃_i D(i,r)]. *)

val round_inter : t -> round:int -> Pset.t
(** [round_inter h ~round:r] is [⋂_i D(i,r)]. *)

val cumulative_union : t -> Pset.t
(** [cumulative_union h] is [⋃_{r>0} ⋃_i D(i,r)] over all completed rounds. *)

val cumulative_union_upto : t -> round:int -> Pset.t
(** Union restricted to rounds [1..round]. *)

val fold_rounds : (int -> Pset.t array -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_rounds f h init] folds [f] over rounds in increasing order; the
    first argument of [f] is the round number. *)

val of_rounds : n:int -> Pset.t array list -> t
(** [of_rounds ~n l] builds a history from explicit per-round arrays, first
    round first.  Same validity requirements as {!append}. *)

val union : t -> t -> t
(** Pointwise union: [D(i,r)] of the result is the union of the two
    arguments' sets, with the shorter history padded by empty rounds.
    The Byzantine heard-of extraction uses this to fuse "silent toward i"
    and "lied to i" records into a single fault-history view.
    @raise Invalid_argument if the process counts differ. *)

(** {1 Surgery}

    Point edits used by the schedule-space shrinker ({!Check.Shrink}): each
    returns a fresh, validated history and leaves the original untouched. *)

val update : t -> round:int -> proc:Proc.t -> Pset.t -> t
(** [update h ~round ~proc s] replaces [D(proc,round)] with [s].
    @raise Invalid_argument if the round or process is out of range, or [s]
    mentions a process outside the system. *)

val drop_round : t -> round:int -> t
(** [drop_round h ~round] deletes round [round]; later rounds shift down by
    one.  @raise Invalid_argument if the round is out of range. *)

val truncate : t -> rounds:int -> t
(** [truncate h ~rounds] keeps only the first [rounds] rounds — the
    [rounds]-prefix of [h].
    @raise Invalid_argument if [rounds < 0] or [rounds > rounds h]. *)

val remove_proc : t -> proc:Proc.t -> t
(** [remove_proc h ~proc] deletes process [proc] from the system: its fault
    sets disappear, it is erased from everybody else's sets, and processes
    above it renumber down by one.  The result is a history of an
    [(n−1)]-process system with the same number of rounds.
    @raise Invalid_argument if [proc] is out of range or [n h = 1]. *)

val equal : t -> t -> bool
(** Same process count and identical fault sets in every round. *)

val to_string_compact : t -> string
(** Compact machine-readable rendering: ["n=3;1:{1}{}{0,1};2:{}{}{}"] —
    rounds separated by [;], one [{…}] per process with comma-separated
    ids.  Inverse of {!of_string_compact}; used to persist counterexamples
    from the enumeration experiments. *)

val of_string_compact : string -> t
(** Parse {!to_string_compact} output.
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line rendering (one line per round, prefixed by a
    [n=…, k round(s)] header).  Paired with {!equal} this makes histories
    first-class [Alcotest.testable]/qcheck-printable values, so failing
    tests and shrinker traces show the offending history instead of
    [<abstr>]. *)
