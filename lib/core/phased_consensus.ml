module Ac = Adopt_commit

(* Round r (1-based) belongs to phase (r-1)/3; within a phase the slots are
   1 = candidate, 2 = adopt-commit values, 3 = adopt-commit votes. *)
let slot ~round = ((round - 1) mod 3) + 1

let is_candidate_round round = slot ~round = 1

let predicate ~f ~stabilize_at =
  Predicate.make
    ~name:(Printf.sprintf "phased(f=%d,GST=%d)" f stabilize_at)
    ~doc:
      "candidate rounds: |D| ≤ f, identical after stabilisation; \
       adopt-commit rounds: snapshot clauses"
    (fun h ->
      let violation = ref None in
      let note fmt =
        Printf.ksprintf
          (fun s -> if !violation = None then violation := Some s)
          fmt
      in
      for round = 1 to Fault_history.rounds h do
        let sets = Fault_history.round_sets h ~round in
        if is_candidate_round round then begin
          Array.iteri
            (fun i d ->
              if Pset.cardinal d > f then
                note "candidate round %d: |D(%d)| > %d" round i f)
            sets;
          if round >= stabilize_at then
            Array.iteri
              (fun i d ->
                if not (Pset.equal d sets.(0)) then
                  note "stabilised candidate round %d: D(%d) ≠ D(0)" round i)
              sets
        end
        else begin
          (* snapshot clauses: size bound, self-exclusion, comparability *)
          Array.iteri
            (fun i d ->
              if Pset.cardinal d > f then
                note "AC round %d: |D(%d)| > %d" round i f;
              if Pset.mem i d then note "AC round %d: p%d suspects itself" round i)
            sets;
          Array.iteri
            (fun i di ->
              Array.iteri
                (fun j dj ->
                  if
                    i < j
                    && not (Pset.subset di dj || Pset.subset dj di)
                  then note "AC round %d: D(%d), D(%d) incomparable" round i j)
                sets)
            sets
        end
      done;
      !violation)

let detector rng ~n ~f ~stabilize_at =
  let iis = Detector_gen.iis rng ~n ~f in
  Detector.make
    ~name:(Printf.sprintf "gen-phased(f=%d,GST=%d)" f stabilize_at)
    (fun h ->
      let round = Fault_history.rounds h + 1 in
      if is_candidate_round round then
        if round >= stabilize_at then begin
          (* identical proper subsets of size ≤ f *)
          let size = Dsim.Rng.int_in_range rng ~min:0 ~max:(min f (n - 1)) in
          let d = Pset.random_subset_of_size rng (Pset.full n) size in
          Array.make n d
        end
        else
          (* divergent: each process misses its own bounded subset — the
             Theorem-3.1 choice then disagrees maximally *)
          Array.init n (fun _ ->
              let size = Dsim.Rng.int_in_range rng ~min:0 ~max:(min f (n - 1)) in
              Pset.random_subset_of_size rng (Pset.full n) size)
      else Detector.next iis h)

type message =
  | Estimate of int
  | Value of int (* adopt-commit round 1: the candidate being agreed on *)
  | Vote of int Ac.vote

type state = {
  me : Proc.t;
  n : int;
  estimate : int;
  candidate : int option;
  vote : int Ac.vote option;
  decision : int option;
}

let seen extract ~own ~me ~view =
  let items = List.rev (View.fold (fun _ m acc -> extract m :: acc) view []) in
  if Pset.mem me (View.faulty view) then own :: items else items

let algorithm ~inputs =
  {
    Algorithm.name = "phased-consensus";
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Phased_consensus.algorithm: inputs length mismatch";
        {
          me = p;
          n;
          estimate = inputs.(p);
          candidate = None;
          vote = None;
          decision = None;
        });
    emit =
      (fun s ~round ->
        match slot ~round with
        | 1 -> Estimate s.estimate
        | 2 -> Value (Option.value s.candidate ~default:s.estimate)
        | _ -> (
          match s.vote with
          | Some vote -> Vote vote
          | None -> Value s.estimate));
    deliver =
      (fun s ~round ~view ->
        match slot ~round with
        | 1 ->
          (* Theorem 3.1 choice: the estimate of the lowest-id unsuspected
             process. *)
          let candidate =
            match Pset.min_elt (View.heard view) with
            | Some j -> (
              match View.get view j with
              | Estimate v -> v
              | Value _ | Vote _ -> assert false)
            | None -> s.estimate
          in
          { s with candidate = Some candidate }
        | 2 ->
          let own = Option.value s.candidate ~default:s.estimate in
          let values =
            seen
              (function Value v | Estimate v -> v | Vote _ -> assert false)
              ~own ~me:s.me ~view
          in
          { s with vote = Some (Ac.propose ~own ~seen:values) }
        | _ ->
          let own_candidate = Option.value s.candidate ~default:s.estimate in
          let own_vote =
            match s.vote with Some v -> v | None -> Ac.Adopt_vote own_candidate
          in
          let votes =
            seen
              (function
                | Vote v -> v
                | Value v | Estimate v -> Ac.Adopt_vote v)
              ~own:own_vote ~me:s.me ~view
          in
          let outcome = Ac.resolve ~own:own_candidate ~seen:votes in
          let estimate = Ac.value_of outcome in
          let decision =
            if Option.is_some s.decision then s.decision
            else if Ac.is_commit outcome then Some estimate
            else None
          in
          { s with estimate; candidate = None; vote = None; decision });
    decide = (fun s -> s.decision);
  }

let rounds_needed ~stabilize_at =
  (* the first phase whose candidate round is ≥ stabilize_at, completed *)
  let phase = (max 0 (stabilize_at - 1) + 2) / 3 in
  3 * (phase + 1)
