type 'out outcome = {
  decisions : 'out option array;
  decision_rounds : int option array;
  rounds_used : int;
  history : Fault_history.t;
  violation : string option;
  counters : Counters.t;
}

let validate_round n sets =
  if Array.length sets <> n then
    invalid_arg "Engine: detector returned wrong number of fault sets";
  let universe = Pset.full n in
  Array.iter
    (fun s ->
      if not (Pset.subset s universe) then
        invalid_arg "Engine: detector named a process outside the system";
      if Pset.equal s universe then
        invalid_arg "Engine: detector declared every process faulty (D = S)")
    sets

(* One round: emit, consult detector, deliver.  Returns the new history and
   the number of messages delivered (the non-suspected sender slots). *)
let execute_round ~n ~algorithm ~detector ~round states history =
  let open Algorithm in
  let emitted = Array.map (fun s -> algorithm.emit s ~round) states in
  let fault_sets = Detector.next detector history in
  validate_round n fault_sets;
  let history = Fault_history.append history fault_sets in
  let delivered = ref 0 in
  for i = 0 to n - 1 do
    let faulty = fault_sets.(i) in
    delivered := !delivered + (n - Pset.cardinal faulty);
    let received =
      Array.init n (fun j -> if Pset.mem j faulty then None else Some emitted.(j))
    in
    states.(i) <- algorithm.deliver states.(i) ~round ~received ~faulty
  done;
  (history, !delivered)

let run ~n ?(max_rounds = 64) ?check ?(stop_when_decided = true) ~algorithm
    ~detector () =
  let open Algorithm in
  let states = Array.init n (fun i -> algorithm.init ~n i) in
  let decisions = Array.make n None in
  let decision_rounds = Array.make n None in
  let record_decisions round =
    for i = 0 to n - 1 do
      if Option.is_none decisions.(i) then begin
        match algorithm.decide states.(i) with
        | None -> ()
        | Some v ->
          decisions.(i) <- Some v;
          decision_rounds.(i) <- Some round
      end
    done
  in
  let all_decided () = Array.for_all Option.is_some decisions in
  let rec loop round history counters =
    if round > max_rounds || (stop_when_decided && all_decided ()) then
      { decisions; decision_rounds; rounds_used = round - 1; history;
        violation = None; counters }
    else
      let history, delivered =
        execute_round ~n ~algorithm ~detector ~round states history
      in
      record_decisions round;
      let counters =
        Counters.
          {
            rounds = counters.rounds + 1;
            messages = counters.messages + delivered;
            detector_queries = counters.detector_queries + 1;
            predicate_checks =
              (counters.predicate_checks
              + if Option.is_some check then 1 else 0);
          }
      in
      let violation = Option.bind check (fun p -> Predicate.explain p history) in
      match violation with
      | Some _ ->
        { decisions; decision_rounds; rounds_used = round; history; violation;
          counters }
      | None -> loop (round + 1) history counters
  in
  loop 1 (Fault_history.empty ~n) Counters.zero

module As_substrate = struct
  type config = {
    detector : Detector.t;
    check : Predicate.t option;
    stop_when_decided : bool;
  }

  let name = "engine"

  let execute config ~n ~rounds ~algorithm =
    let outcome =
      run ~n ~max_rounds:rounds ?check:config.check
        ~stop_when_decided:config.stop_when_decided ~algorithm
        ~detector:config.detector ()
    in
    {
      Substrate.substrate = name;
      decisions = outcome.decisions;
      decision_rounds = outcome.decision_rounds;
      rounds_used = outcome.rounds_used;
      induced = outcome.history;
      counters = outcome.counters;
      violation = outcome.violation;
      crashed = Pset.empty;
      completed = Array.make n outcome.rounds_used;
      wall_ns = None;
    }
end

let states_after ~n ~rounds ~algorithm ~detector () =
  let open Algorithm in
  let states = Array.init n (fun i -> algorithm.init ~n i) in
  let rec loop round history =
    if round > rounds then history
    else
      let history, _delivered =
        execute_round ~n ~algorithm ~detector ~round states history
      in
      loop (round + 1) history
  in
  let history = loop 1 (Fault_history.empty ~n) in
  (states, history)
