type 'out outcome = {
  decisions : 'out option array;
  decision_rounds : int option array;
  rounds_used : int;
  history : Fault_history.t;
  violation : string option;
  counters : Counters.t;
}

(* Per-round detector validation against the hoisted universe set: subset
   and D ≠ S per process, allocation-free ([subset]/[equal] on the
   immediate representation touch no heap). *)
let validate_round ~n ~full sets =
  if Array.length sets <> n then
    invalid_arg "Engine: detector returned wrong number of fault sets";
  for i = 0 to n - 1 do
    let s = Array.unsafe_get sets i in
    if not (Pset.subset s full) then
      invalid_arg "Engine: detector named a process outside the system";
    if Pset.equal s full then
      invalid_arg "Engine: detector declared every process faulty (D = S)"
  done

(* The one inner loop behind both [run] and [states_after].

   Steady-state rounds allocate nothing: the emit buffer and the delivery
   view are created once and repointed per (process, round), the history
   writes into its preallocated arena ([append_in_place] on a backing
   this run exclusively owns), counters accumulate in mutable locals, and
   the optional predicate re-check is incremental ([check_round]) instead
   of a whole-history re-scan.  What still allocates is per run (states,
   decision arrays, the first round's buffer sizing) or belongs to the
   algorithm and detector, which the engine does not control. *)
let exec ~n ~max_rounds ?check ~stop_when_decided ~algorithm ~detector () =
  let open Algorithm in
  (* [create] validates n.  Short runs (the common case: most algorithms
     decide in a few rounds) get a small arena; long runs amortise growth
     by doubling.  Callers that need a growth-free run for allocation
     measurements pass max_rounds ≤ 4. *)
  let history = Fault_history.create ~n ~capacity:(min max_rounds 4) in
  let full = Pset.full n in
  let states = Array.init n (fun i -> algorithm.init ~n i) in
  let decisions = Array.make n None in
  let decision_rounds = Array.make n None in
  let view = View.create ~n in
  let emitted = ref [||] in
  let rounds_done = ref 0 in
  let messages = ref 0 in
  let queries = ref 0 in
  let checks = ref 0 in
  let violation = ref None in
  let record_decisions round =
    for i = 0 to n - 1 do
      if Option.is_none decisions.(i) then begin
        match algorithm.decide states.(i) with
        | None -> ()
        | Some v ->
          decisions.(i) <- Some v;
          decision_rounds.(i) <- Some round
      end
    done
  in
  let all_decided () = Array.for_all Option.is_some decisions in
  let continue = ref true in
  let round = ref 1 in
  while
    !continue && !round <= max_rounds
    && not (stop_when_decided && all_decided ())
  do
    let r = !round in
    (* Emit into the reusable buffer; the first round sizes it from the
       first message (there is no manufactured dummy 'm). *)
    let ems =
      let buf = !emitted in
      if Array.length buf = n then begin
        for i = 0 to n - 1 do buf.(i) <- algorithm.emit states.(i) ~round:r done;
        buf
      end
      else begin
        let m0 = algorithm.emit states.(0) ~round:r in
        let buf = Array.make n m0 in
        for i = 1 to n - 1 do buf.(i) <- algorithm.emit states.(i) ~round:r done;
        emitted := buf;
        buf
      end
    in
    let fault_sets = Detector.next detector history in
    incr queries;
    validate_round ~n ~full fault_sets;
    ignore (Fault_history.append_in_place history fault_sets : Fault_history.t);
    for i = 0 to n - 1 do
      let faulty = Array.unsafe_get fault_sets i in
      messages := !messages + (n - Pset.cardinal faulty);
      (* unsafe: [validate_round] above checked every set this round. *)
      View.unsafe_set view ~msgs:ems ~faulty;
      states.(i) <- algorithm.deliver states.(i) ~round:r ~view
    done;
    record_decisions r;
    rounds_done := r;
    (match check with
    | None -> ()
    | Some p -> (
      incr checks;
      match Predicate.check_round p history ~round:r with
      | Some _ as v ->
        violation := v;
        continue := false
      | None -> ()));
    round := r + 1
  done;
  let counters =
    Counters.
      {
        rounds = !rounds_done;
        messages = !messages;
        detector_queries = !queries;
        predicate_checks = !checks;
      }
  in
  let rounds_used =
    match !violation with Some _ -> !rounds_done | None -> !round - 1
  in
  ( states,
    {
      decisions;
      decision_rounds;
      rounds_used;
      history;
      violation = !violation;
      counters;
    } )

let run ~n ?(max_rounds = 64) ?check ?(stop_when_decided = true) ~algorithm
    ~detector () =
  snd (exec ~n ~max_rounds ?check ~stop_when_decided ~algorithm ~detector ())

module As_substrate = struct
  type config = {
    detector : Detector.t;
    check : Predicate.t option;
    stop_when_decided : bool;
  }

  let name = "engine"

  let execute config ~n ~rounds ~algorithm =
    let outcome =
      run ~n ~max_rounds:rounds ?check:config.check
        ~stop_when_decided:config.stop_when_decided ~algorithm
        ~detector:config.detector ()
    in
    {
      Substrate.substrate = name;
      decisions = outcome.decisions;
      decision_rounds = outcome.decision_rounds;
      rounds_used = outcome.rounds_used;
      induced = outcome.history;
      counters = outcome.counters;
      violation = outcome.violation;
      crashed = Pset.empty;
      completed = Array.make n outcome.rounds_used;
      wall_ns = None;
    }
end

let states_after ~n ~rounds ~algorithm ~detector () =
  let states, outcome =
    exec ~n ~max_rounds:rounds ~stop_when_decided:false ~algorithm ~detector ()
  in
  (states, outcome.history)
