(** The adopt-commit protocol (Section 4.2).

    Each process inputs a value it proposes; each process outputs either
    [Commit v] or [Adopt v] for some input value [v], such that

    + {b convergence}: if all inputs equal [v], every process commits [v];
    + {b agreement}: if any process commits [v], every process commits or
      adopts [v] (in particular no other value is committed).

    The paper gives a wait-free two-round protocol.  Run as an RRFD
    algorithm it is correct under the atomic-snapshot predicate
    [Predicate.snapshot] (self-inclusion plus comparable views), which is
    what the crash-fault simulation of Theorem 4.3 uses; the register-based
    original is in the [shm] library.

    The pure per-round decision functions are exposed so that
    {!Sim_crash} can run [n] adopt-commit instances inside two of its
    rounds without duplicating the logic. *)

type 'v vote =
  | Commit_vote of 'v  (** "commit v": every first-round value seen was [v] *)
  | Adopt_vote of 'v  (** "adopt v": mixed values seen; [v] is the proposer's own *)

type 'v outcome = Commit of 'v | Adopt of 'v

val value_of : 'v outcome -> 'v

val is_commit : 'v outcome -> bool

val propose : own:'v -> seen:'v list -> 'v vote
(** First-round transition.  [seen] is every value received (the protocol's
    self-inclusion means it contains [own]); commit iff all are equal.
    Values are compared with polymorphic equality. *)

val resolve : own:'v -> seen:'v vote list -> 'v outcome
(** Second-round transition.  [seen] is every vote received (including the
    process's own): commit [v] if all votes are [Commit_vote v]; else adopt
    [v] if some [Commit_vote v] was seen; else adopt [own]. *)

type 'v state
(** Per-process state of the two-round RRFD protocol. *)

type 'v message = Value of 'v | Vote of 'v vote
(** Round messages of the RRFD protocol. *)

val algorithm : inputs:'v array -> ('v state, 'v message, 'v outcome) Algorithm.t
(** The two-round protocol as an RRFD algorithm: round 1 emits the input,
    round 2 emits the vote, after which the process decides.  Correct under
    [Predicate.snapshot ~f] for any [f] (wait-free: [f = n − 1]). *)

val pp_outcome :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v outcome -> unit

val encode : int outcome -> int
(** Pack an outcome over non-negative int values into a single int
    ([Commit v ↦ 2v], [Adopt v ↦ 2v+1]) so adopt-commit executions flow
    through machinery — the protocol catalog, the model checker — whose
    decisions are plain ints.
    @raise Invalid_argument on negative values. *)

val decode : int -> int outcome
(** Inverse of {!encode}. @raise Invalid_argument on negative codes. *)

val pp_encoded : Format.formatter -> int -> unit
(** Renders an {!encode}d outcome as [commit v] / [adopt v]. *)

val check_outcomes : inputs:'v array -> 'v outcome option array -> string option
(** [check_outcomes ~inputs outcomes] verifies the adopt-commit
    specification on one execution (shared by the RRFD and register
    versions): every process decided; convergence — equal inputs force
    everyone to commit that input; agreement — a committed value is
    committed or adopted by everybody; validity — every output value is
    some process's input.  Returns the earliest violation, or [None]. *)
