type closure_result = {
  simulated : Pset.t array;
  underlying : Fault_history.t;
}

let heard n fault_sets i = Pset.add i (Pset.diff (Pset.full n) fault_sets.(i))

let closure_from ~n ~detector history =
  let d1 = Detector.next detector history in
  let history = Fault_history.append history d1 in
  let d2 = Detector.next detector history in
  let history = Fault_history.append history d2 in
  let simulated =
    Array.init n (fun i ->
        let relayed =
          Pset.fold
            (fun x acc -> Pset.union acc (heard n d1 x))
            (heard n d2 i) Pset.empty
        in
        Pset.diff (Pset.full n) relayed)
  in
  (simulated, history)

let two_round_closure ~n ~detector =
  let simulated, underlying =
    closure_from ~n ~detector (Fault_history.empty ~n)
  in
  { simulated; underlying }

let simulate_rounds ~n ~rounds ~detector =
  let rec go r sim_h underlying =
    if r > rounds then (sim_h, underlying)
    else
      let simulated, underlying = closure_from ~n ~detector underlying in
      go (r + 1) (Fault_history.append sim_h simulated) underlying
  in
  go 1 (Fault_history.empty ~n) (Fault_history.empty ~n)

let knowledge_rounds history =
  let n = Fault_history.n history in
  let rounds = Fault_history.rounds history in
  let know = Array.init n Pset.singleton in
  let someone_known_by_all () =
    let common = Array.fold_left Pset.inter (Pset.full n) know in
    not (Pset.is_empty common)
  in
  let rec go r =
    if r > rounds then None
    else begin
      let d = Fault_history.round_sets history ~round:r in
      let next =
        Array.init n (fun i ->
            Pset.fold
              (fun x acc -> Pset.union acc know.(x))
              (heard n d i) know.(i))
      in
      Array.blit next 0 know 0 n;
      if someone_known_by_all () then Some r else go (r + 1)
    end
  in
  go 1

let known_by_all_observed ~n ~detector ~max_rounds =
  let rec materialise history r =
    if r > max_rounds then history
    else
      materialise (Fault_history.append history (Detector.next detector history)) (r + 1)
  in
  let history = materialise (Fault_history.empty ~n) 1 in
  (knowledge_rounds history, history)

let known_by_all_within ~n ~detector ~max_rounds =
  fst (known_by_all_observed ~n ~detector ~max_rounds)
