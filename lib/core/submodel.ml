type verdict = Implies | Counterexample of Fault_history.t

(* All per-round assignments: one proper subset of S per process. *)
let all_round_assignments n =
  let proper = List.filter (fun s -> not (Pset.equal s (Pset.full n))) (Pset.subsets (Pset.full n)) in
  let rec build i =
    if i = n then [ [] ]
    else
      let rest = build (i + 1) in
      List.concat_map (fun s -> List.map (fun tail -> s :: tail) rest) proper
  in
  List.map Array.of_list (build 0)

let check_exhaustive ~n ~rounds a b =
  let assignments = all_round_assignments n in
  let exception Found of Fault_history.t in
  let rec explore history depth =
    if Predicate.holds a history then begin
      if not (Predicate.holds b history) then raise (Found history);
      if depth < rounds then
        List.iter
          (fun d -> explore (Fault_history.append history d) (depth + 1))
          assignments
    end
  in
  match explore (Fault_history.empty ~n) 0 with
  | () -> Implies
  | exception Found h -> Counterexample h

let check_sampled rng ~samples ~rounds ~gen ~n a b =
  let exception Found of Fault_history.t in
  try
    for _ = 1 to samples do
      let detector = gen (Dsim.Rng.split rng) in
      let history = ref (Fault_history.empty ~n) in
      for _ = 1 to rounds do
        history := Fault_history.append !history (Detector.next detector !history)
      done;
      if Predicate.holds a !history && not (Predicate.holds b !history) then
        raise (Found !history)
    done;
    Implies
  with Found h -> Counterexample h

let pp_verdict ppf = function
  | Implies -> Format.pp_print_string ppf "implies"
  | Counterexample h ->
    Format.fprintf ppf "counterexample:@ %a" Fault_history.pp h

(* ------------------------------------------------------------------ *)
(* Named-predicate lattice over one shared enumeration.                *)
(* ------------------------------------------------------------------ *)

(* Checking all O(c²) implication pairs with [check_exhaustive] repeats
   the same exponential history walk c² times.  Instead: enumerate every
   history of depth 0..rounds once, record for each named predicate the
   bitset of histories it accepts, and answer every order query as a
   bitset inclusion.  c predicates cost c·|space| predicate evaluations
   total instead of c²·|space|. *)

type lattice = {
  l_n : int;
  l_rounds : int;
  l_names : string array;
  l_sat : Bytes.t array;  (* l_sat.(p) bit h: predicate p holds on history h *)
  l_total : int;  (* histories enumerated: sum of |assignments|^d, d=0..rounds *)
}

let bit_set bytes i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.unsafe_set bytes byte
    (Char.chr (Char.code (Bytes.unsafe_get bytes byte) lor mask))

(* a ⊆ b as bitsets (trailing padding bits are zero on both sides). *)
let bytes_subset a b =
  let len = Bytes.length a in
  let rec go i =
    i >= len
    || (Char.code (Bytes.unsafe_get a i)
          land lnot (Char.code (Bytes.unsafe_get b i))
        = 0
       && go (i + 1))
  in
  go 0

let lattice ~n ~rounds named =
  if named = [] then invalid_arg "Submodel.lattice: no predicates";
  let names = Array.of_list (List.map fst named) in
  let preds = Array.of_list (List.map snd named) in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun name ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Submodel.lattice: duplicate name %S" name);
      Hashtbl.add seen name ())
    names;
  let assignments = all_round_assignments n in
  let per_round = List.length assignments in
  let total =
    let rec sum acc pow d = if d > rounds then acc else sum (acc + pow) (pow * per_round) (d + 1) in
    sum 0 1 0
  in
  let sat = Array.map (fun _ -> Bytes.make ((total + 7) / 8) '\000') names in
  let idx = ref 0 in
  let rec explore history depth =
    let h = !idx in
    incr idx;
    Array.iteri
      (fun p pred -> if Predicate.holds pred history then bit_set sat.(p) h)
      preds;
    if depth < rounds then
      List.iter
        (fun d -> explore (Fault_history.append history d) (depth + 1))
        assignments
  in
  explore (Fault_history.empty ~n) 0;
  { l_n = n; l_rounds = rounds; l_names = names; l_sat = sat; l_total = total }

let lattice_size l = l.l_total

let lattice_names l = Array.to_list l.l_names

let index l name =
  let rec find i =
    if i >= Array.length l.l_names then
      invalid_arg
        (Printf.sprintf "Submodel.lattice: unknown predicate %S, expected one of: %s"
           name
           (String.concat ", " (Array.to_list l.l_names)))
    else if l.l_names.(i) = name then i
    else find (i + 1)
  in
  find 0

let mem l name = Array.exists (fun n -> n = name) l.l_names

let implies l a b = bytes_subset l.l_sat.(index l a) l.l_sat.(index l b)

let equivalent l a b =
  Bytes.equal l.l_sat.(index l a) l.l_sat.(index l b)

let strictly_stronger l a b =
  let sa = l.l_sat.(index l a) and sb = l.l_sat.(index l b) in
  bytes_subset sa sb && not (Bytes.equal sa sb)

let immediate_stronger l name =
  let covers cand =
    strictly_stronger l cand name
    && not
         (Array.exists
            (fun mid ->
              strictly_stronger l cand mid && strictly_stronger l mid name)
            l.l_names)
  in
  List.filter covers (lattice_names l)

let immediate_weaker l name =
  let covered cand =
    strictly_stronger l name cand
    && not
         (Array.exists
            (fun mid ->
              strictly_stronger l name mid && strictly_stronger l mid cand)
            l.l_names)
  in
  List.filter covered (lattice_names l)

let bytes_inter a b =
  let out = Bytes.copy a in
  for i = 0 to Bytes.length a - 1 do
    Bytes.unsafe_set out i
      (Char.chr
         (Char.code (Bytes.unsafe_get a i)
         land Char.code (Bytes.unsafe_get b i)))
  done;
  out

(* The whole space as a bitset: bits 0..total-1 set, padding bits clear
   (so it compares correctly against per-predicate sets). *)
let full_sat l =
  let bytes = Bytes.make ((l.l_total + 7) / 8) '\000' in
  for i = 0 to l.l_total - 1 do
    bit_set bytes i
  done;
  bytes

let meet_sat l names =
  match names with
  | [] -> full_sat l
  | first :: rest ->
    List.fold_left
      (fun acc name -> bytes_inter acc l.l_sat.(index l name))
      (Bytes.copy l.l_sat.(index l first))
      rest

let meet_implies l names target =
  bytes_subset (meet_sat l names) l.l_sat.(index l target)

let minimal_conjuncts l names =
  List.iter (fun n -> ignore (index l n)) names;
  let rec prune kept = function
    | [] -> List.rev kept
    | name :: rest ->
      let others = List.rev_append kept rest in
      if others <> [] && bytes_subset (meet_sat l others) l.l_sat.(index l name)
      then prune kept rest
      else prune (name :: kept) rest
  in
  prune [] names

let weakest l names =
  List.iter (fun n -> ignore (index l n)) names;
  List.filter
    (fun m -> not (List.exists (fun u -> strictly_stronger l m u) names))
    names
