type 'm proposal = Faulty | Alive of 'm

type 'm vote_msg = {
  vote : 'm proposal Adopt_commit.vote;
  witness : 'm option;
      (* An alive value for the target seen by the voter, carried so that a
         process resolving to "adopt faulty" can still deliver the target's
         round value (see the .mli implementation note). *)
}

type 'm message =
  | Write of 'm
  | Proposals of 'm proposal array
  | Votes of 'm vote_msg array

type ('s, 'm) state = {
  me : Proc.t;
  n : int;
  sync_state : 's;
  sync_round : int; (* simulated round currently being executed *)
  failed : Pset.t; (* F_i *)
  committed : Pset.t list; (* D_sync(i, ·), most recent first *)
  self_crashed : bool;
  missing_witness_count : int;
  phase1_values : 'm option array;
  my_proposals : 'm proposal array;
  my_votes : 'm vote_msg array;
}

let phase ~round = ((round - 1) mod 3) + 1

let async_rounds ~sync_rounds = 3 * sync_rounds

let sync_rounds_completed s = s.sync_round - 1

let sync_state s = s.sync_state

let self_crashed s = s.self_crashed

let proposed_crashed s = s.failed

let missing_witnesses s = s.missing_witness_count

let dummy_vote = { vote = Adopt_commit.Adopt_vote Faulty; witness = None }

(* Messages actually received this round, plus the process's own (known
   through local state even when it is told it was late). *)
let seen_messages ~me ~own view =
  let items = List.rev (View.fold (fun _ m acc -> m :: acc) view []) in
  if Pset.mem me (View.faulty view) then own :: items else items

let alive_value = function Alive v -> Some v | Faulty -> None

let algorithm ~sync =
  let open Algorithm in
  let deliver_phase1 s ~view =
    let values =
      Array.map
        (Option.map (function Write v -> v | Proposals _ | Votes _ -> assert false))
        (View.to_option_array view)
    in
    if Option.is_none values.(s.me) then
      values.(s.me) <- Some (sync.emit s.sync_state ~round:s.sync_round);
    let failed = Pset.union s.failed (Pset.remove s.me (View.faulty view)) in
    let my_proposals =
      Array.init s.n (fun j ->
          if Pset.mem j failed then Faulty
          else
            match values.(j) with
            | Some v -> Alive v
            | None -> Faulty)
    in
    { s with failed; phase1_values = values; my_proposals }
  in
  let deliver_phase2 s ~view =
    let arrays =
      seen_messages ~me:s.me ~own:(Proposals s.my_proposals) view
      |> List.map (function Proposals a -> a | Write _ | Votes _ -> assert false)
    in
    let my_votes =
      Array.init s.n (fun j ->
          let seen = List.map (fun a -> a.(j)) arrays in
          let vote = Adopt_commit.propose ~own:s.my_proposals.(j) ~seen in
          let witness = List.find_map alive_value seen in
          { vote; witness })
    in
    { s with my_votes }
  in
  let deliver_phase3 s ~view =
    let arrays =
      seen_messages ~me:s.me ~own:(Votes s.my_votes) view
      |> List.map (function Votes a -> a | Write _ | Proposals _ -> assert false)
    in
    let committed_now = ref Pset.empty in
    let failed = ref s.failed in
    let missing = ref s.missing_witness_count in
    let round_values =
      Array.init s.n (fun j ->
          let seen = List.map (fun a -> a.(j)) arrays in
          let outcome =
            Adopt_commit.resolve ~own:s.my_proposals.(j)
              ~seen:(List.map (fun vm -> vm.vote) seen)
          in
          match outcome with
          | Adopt_commit.Commit (Alive v) | Adopt_commit.Adopt (Alive v) -> Some v
          | Adopt_commit.Commit Faulty ->
            committed_now := Pset.add j !committed_now;
            failed := Pset.add j !failed;
            None
          | Adopt_commit.Adopt Faulty -> (
            failed := Pset.add j !failed;
            (* The target is suspected but not crashed this round: deliver
               its value from an alive witness. *)
            match List.find_map (fun vm -> vm.witness) seen with
            | Some v -> Some v
            | None ->
              incr missing;
              committed_now := Pset.add j !committed_now;
              None))
    in
    (* [round_values.(j)] is [None] exactly when [j] was committed faulty
       this simulated round, so the compat constructor's invariant holds. *)
    let sync_view = View.of_option_array round_values ~faulty:!committed_now in
    let sync_state =
      sync.deliver s.sync_state ~round:s.sync_round ~view:sync_view
    in
    {
      s with
      sync_state;
      sync_round = s.sync_round + 1;
      failed = !failed;
      committed = !committed_now :: s.committed;
      self_crashed = s.self_crashed || Pset.mem s.me !committed_now;
      missing_witness_count = !missing;
    }
  in
  {
    name = "sim-crash(" ^ sync.name ^ ")";
    init =
      (fun ~n p ->
        {
          me = p;
          n;
          sync_state = sync.init ~n p;
          sync_round = 1;
          failed = Pset.empty;
          committed = [];
          self_crashed = false;
          missing_witness_count = 0;
          phase1_values = Array.make n None;
          my_proposals = Array.make n Faulty;
          my_votes = Array.make n dummy_vote;
        });
    emit =
      (fun s ~round ->
        match phase ~round with
        | 1 -> Write (sync.emit s.sync_state ~round:s.sync_round)
        | 2 -> Proposals s.my_proposals
        | _ -> Votes s.my_votes);
    deliver =
      (fun s ~round ~view ->
        match phase ~round with
        | 1 -> deliver_phase1 s ~view
        | 2 -> deliver_phase2 s ~view
        | _ -> deliver_phase3 s ~view);
    decide = (fun s -> if s.self_crashed then None else sync.decide s.sync_state);
  }

let simulated_history states =
  let n = Array.length states in
  if n = 0 then invalid_arg "Sim_crash.simulated_history: no states";
  let rounds = sync_rounds_completed states.(0) in
  Array.iter
    (fun s ->
      if sync_rounds_completed s <> rounds then
        invalid_arg "Sim_crash.simulated_history: uneven progress")
    states;
  let per_round = Array.map (fun s -> Array.of_list (List.rev s.committed)) states in
  let round_sets r = Array.init n (fun i -> per_round.(i).(r)) in
  Fault_history.of_rounds ~n (List.init rounds round_sets)

let check_simulated ~f ~k states =
  let history = simulated_history states in
  let n = Fault_history.n history in
  let rounds = Fault_history.rounds history in
  (* A process is "live at round r" if it never committed itself faulty at
     any round ≤ r; crashed processes' later views are unconstrained. *)
  let self_crash_round = Array.make n max_int in
  for r = 1 to rounds do
    for i = 0 to n - 1 do
      if
        self_crash_round.(i) = max_int
        && Pset.mem i (Fault_history.d history ~proc:i ~round:r)
      then self_crash_round.(i) <- r
    done
  done;
  let live i r = r < self_crash_round.(i) in
  let live_union r =
    let u = ref Pset.empty in
    for i = 0 to n - 1 do
      if live i r then u := Pset.union !u (Fault_history.d history ~proc:i ~round:r)
    done;
    !u
  in
  let total = Pset.cardinal (Fault_history.cumulative_union history) in
  if total > f then
    Some (Printf.sprintf "cumulative crash count %d exceeds f = %d" total f)
  else begin
    let violation = ref None in
    for r = 1 to rounds do
      let cumulative = Fault_history.cumulative_union_upto history ~round:r in
      (* The asynchronous side misses at most k new processes per simulated
         round (comparability makes the per-round miss-union ≤ k), so by
         round r at most k·r processes can have been committed faulty.  A
         fault adopted at round r may only be committed at r+1, so the
         bound is cumulative, not per-round. *)
      let total = Pset.cardinal cumulative in
      if total > k * r && !violation = None then
        violation :=
          Some
            (Printf.sprintf
               "%d faults committed by round %d, bound is k·r = %d" total r
               (k * r));
      if r < rounds then begin
        let union = live_union r in
        for j = 0 to n - 1 do
          if live j (r + 1) then begin
            let next = Fault_history.d history ~proc:j ~round:(r + 1) in
            if (not (Pset.subset (Pset.remove j union) next)) && !violation = None
            then
              violation :=
                Some
                  (Printf.sprintf
                     "crash closure broken: round-%d union %s ⊄ D(%d,%d)=%s" r
                     (Pset.to_string union) j (r + 1) (Pset.to_string next))
          end
        done
      end
    done;
    !violation
  end
