type t =
  | Initial of Proc.t * int
  | Node of { owner : Proc.t; round : int; heard : t option array; faulty : Pset.t }

let owner = function Initial (p, _) -> p | Node { owner; _ } -> owner

let depth = function Initial _ -> 0 | Node { round; _ } -> round

let rec knows_input_of v p =
  match v with
  | Initial (q, _) -> Proc.equal p q
  | Node { heard; _ } ->
    Array.exists
      (function Some sub -> knows_input_of sub p | None -> false)
      heard

let known_inputs v =
  let module M = Map.Make (Int) in
  let rec collect v acc =
    match v with
    | Initial (p, value) -> M.add p value acc
    | Node { heard; _ } ->
      Array.fold_left
        (fun acc sub ->
          match sub with Some s -> collect s acc | None -> acc)
        acc heard
  in
  M.bindings (collect v M.empty)

let heard_from_last_round = function
  | Initial _ -> Pset.empty
  | Node { heard; _ } ->
    let set = ref Pset.empty in
    Array.iteri
      (fun j sub -> if Option.is_some sub then set := Pset.add j !set)
      heard;
    !set

let rec equal a b =
  match (a, b) with
  | Initial (p, v), Initial (q, w) -> Proc.equal p q && v = w
  | Node a', Node b' ->
    Proc.equal a'.owner b'.owner
    && a'.round = b'.round
    && Pset.equal a'.faulty b'.faulty
    && Array.length a'.heard = Array.length b'.heard
    && Array.for_all2
         (fun x y ->
           match (x, y) with
           | None, None -> true
           | Some x, Some y -> equal x y
           | None, Some _ | Some _, None -> false)
         a'.heard b'.heard
  | Initial _, Node _ | Node _, Initial _ -> false

let rec pp ppf = function
  | Initial (p, v) -> Format.fprintf ppf "%a:%d" Proc.pp p v
  | Node { owner; round; heard; _ } ->
    Format.fprintf ppf "%a@@%d⟨" Proc.pp owner round;
    Array.iteri
      (fun j sub ->
        if j > 0 then Format.pp_print_string ppf " ";
        match sub with
        | None -> Format.pp_print_string ppf "×"
        | Some s -> pp ppf s)
      heard;
    Format.pp_print_string ppf "⟩"

let algorithm ~inputs =
  {
    Algorithm.name = "full-information";
    init = (fun ~n p ->
      if Array.length inputs <> n then
        invalid_arg "Full_info.algorithm: inputs length mismatch";
      Initial (p, inputs.(p)));
    emit = (fun state ~round:_ -> state);
    deliver =
      (fun state ~round ~view ->
        let me = owner state in
        let heard = View.to_option_array view in
        (* Even when told faulty itself, a process knows its own round
           message through its local state (Sec. 1). *)
        (match heard.(me) with
        | None -> heard.(me) <- Some state
        | Some _ -> ());
        Node { owner = me; round; heard; faulty = View.faulty view });
    decide = (fun state -> Some state);
  }
