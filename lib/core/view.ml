type 'm t = {
  n : int;
  full : Pset.t;  (* hoisted universe: computed once, reused every set *)
  mutable msgs : 'm array;  (* borrowed; [||] until the first set *)
  mutable heard : Pset.t;
  mutable faulty : Pset.t;
}

let[@inline] n v = v.n

let[@inline] faulty v = v.faulty

let[@inline] heard v = v.heard

let[@inline] mem v j =
  if j < 0 || j >= v.n then invalid_arg "View.mem: process out of range";
  Pset.mem j v.heard

let[@inline] get v j =
  if j < 0 || j >= v.n then invalid_arg "View.get: process out of range";
  if Pset.mem j v.heard then v.msgs.(j)
  else invalid_arg "View.get: process not heard from"

let find v j = if mem v j then Some v.msgs.(j) else None

let fold f v init = Pset.fold (fun j acc -> f j v.msgs.(j) acc) v.heard init

let iter f v = Pset.iter (fun j -> f j v.msgs.(j)) v.heard

let to_option_array v =
  Array.init v.n (fun j -> if Pset.mem j v.heard then Some v.msgs.(j) else None)

let create ~n =
  if n < 1 || n > Pset.max_universe then invalid_arg "View.create: bad n";
  { n; full = Pset.full n; msgs = [||]; heard = Pset.empty; faulty = Pset.full n }

let set v ~msgs ~faulty =
  if Array.length msgs <> v.n then invalid_arg "View.set: wrong buffer length";
  if not (Pset.subset faulty v.full) then
    invalid_arg "View.set: fault set outside the system";
  v.msgs <- msgs;
  v.faulty <- faulty;
  v.heard <- Pset.diff v.full faulty

let[@inline] unsafe_set v ~msgs ~faulty =
  v.msgs <- msgs;
  v.faulty <- faulty;
  v.heard <- Pset.diff v.full faulty

let of_option_array arr ~faulty =
  let n = Array.length arr in
  let v = create ~n in
  if not (Pset.subset faulty v.full) then
    invalid_arg "View.of_option_array: fault set outside the system";
  let heard = Pset.diff v.full faulty in
  let filler = ref None in
  Array.iteri
    (fun j slot ->
      match (slot, Pset.mem j heard) with
      | Some _, true -> (
        match !filler with None -> filler := slot | Some _ -> ())
      | None, false -> ()
      | Some _, false ->
        invalid_arg "View.of_option_array: message from a faulty process"
      | None, true ->
        invalid_arg "View.of_option_array: heard slot holds no message")
    arr;
  let msgs =
    match !filler with
    | None -> [||] (* heard nobody: the reading API never indexes msgs *)
    | Some fill ->
      Array.map (function Some m -> m | None -> fill) arr
  in
  v.msgs <- msgs;
  v.faulty <- faulty;
  v.heard <- heard;
  v
