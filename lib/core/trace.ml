type 'out round = {
  number : int;
  emissions : string array;
  fault_sets : Pset.t array;
  new_decisions : (Proc.t * 'out) list;
}

type 'out t = {
  n : int;
  rounds : 'out round list;
  outcome : 'out Engine.outcome;
}

(* Run the engine for the outcome, then replay the execution from the
   recorded fault history to render each round's emissions — algorithms
   are deterministic, so the replay reproduces the run exactly. *)
let record ~n ?max_rounds ?check ?stop_when_decided ~pp_msg ~algorithm
    ~detector () =
  let outcome =
    Engine.run ~n ?max_rounds ?check ?stop_when_decided ~algorithm ~detector ()
  in
  let history = outcome.Engine.history in
  let states = Array.init n (fun i -> algorithm.Algorithm.init ~n i) in
  let decided = Array.make n false in
  let view = View.create ~n in
  let rounds = ref [] in
  for round = 1 to Fault_history.rounds history do
    let fault_sets = Fault_history.round_sets history ~round in
    let emitted = Array.map (fun s -> algorithm.Algorithm.emit s ~round) states in
    let emissions = Array.map (fun m -> Format.asprintf "%a" pp_msg m) emitted in
    for i = 0 to n - 1 do
      View.set view ~msgs:emitted ~faulty:fault_sets.(i);
      states.(i) <- algorithm.Algorithm.deliver states.(i) ~round ~view
    done;
    let new_decisions = ref [] in
    for i = n - 1 downto 0 do
      if not decided.(i) then
        match algorithm.Algorithm.decide states.(i) with
        | Some v ->
          decided.(i) <- true;
          new_decisions := (i, v) :: !new_decisions
        | None -> ()
    done;
    rounds :=
      { number = round; emissions; fault_sets; new_decisions = !new_decisions }
      :: !rounds
  done;
  { n; rounds = List.rev !rounds; outcome }

let pp pp_out ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "@[<v 2>round %d:@," r.number;
      Array.iteri
        (fun i emission ->
          Format.fprintf ppf "p%d emits %s, suspects %a@," i emission Pset.pp
            r.fault_sets.(i))
        r.emissions;
      List.iter
        (fun (p, v) -> Format.fprintf ppf "p%d DECIDES %a@," p pp_out v)
        r.new_decisions;
      Format.fprintf ppf "@]@,")
    t.rounds
