module Rng = Dsim.Rng

let check_nf ~n ~f =
  if n < 1 || n > Pset.max_universe then invalid_arg "Detector_gen: bad n";
  if f < 0 || f >= n then invalid_arg "Detector_gen: need 0 ≤ f < n"

let random_set_of_max_size rng pool limit =
  let size = Rng.int_in_range rng ~min:0 ~max:(min limit (Pset.cardinal pool)) in
  Pset.random_subset_of_size rng pool size

let omission rng ~n ~f =
  check_nf ~n ~f;
  let faulty_senders =
    let size = Rng.int_in_range rng ~min:0 ~max:f in
    Pset.random_subset_of_size rng (Pset.full n) size
  in
  Detector.make ~name:(Printf.sprintf "gen-omission(f=%d)" f) (fun _h ->
      Array.init n (fun i ->
          Pset.random_subset rng (Pset.remove i faulty_senders)))

let crash ?(crash_probability = 0.3) rng ~n ~f =
  check_nf ~n ~f;
  let crashed = ref Pset.empty in
  (* Processes crashing in the round being built: receivers in the partial
     set miss them this round, everyone misses them afterwards. *)
  Detector.make ~name:(Printf.sprintf "gen-crash(f=%d)" f) (fun _h ->
      let newly =
        Pset.filter
          (fun _ ->
            Pset.cardinal !crashed < f
            && Rng.float rng 1.0 < crash_probability)
          (Pset.diff (Pset.full n) !crashed)
      in
      (* Respect the global bound even if the filter picked too many. *)
      let newly =
        let excess = Pset.cardinal !crashed + Pset.cardinal newly - f in
        if excess <= 0 then newly
        else
          Pset.random_subset_of_size rng newly (Pset.cardinal newly - excess)
      in
      let previously = !crashed in
      crashed := Pset.union !crashed newly;
      Array.init n (fun i ->
          let missed_new = Pset.random_subset rng newly in
          Pset.remove i (Pset.union previously missed_new)))

let async rng ~n ~f =
  check_nf ~n ~f;
  Detector.make ~name:(Printf.sprintf "gen-async(f=%d)" f) (fun _h ->
      Array.init n (fun _ -> random_set_of_max_size rng (Pset.full n) f))

let async_mixed rng ~n ~f ~t =
  check_nf ~n ~f;
  if t < f || t >= n then invalid_arg "Detector_gen.async_mixed: need f ≤ t < n";
  Detector.make ~name:(Printf.sprintf "gen-async-mixed(f=%d,t=%d)" f t)
    (fun _h ->
      let q_size = Rng.int_in_range rng ~min:0 ~max:t in
      let q = Pset.random_subset_of_size rng (Pset.full n) q_size in
      Array.init n (fun i ->
          let limit = if Pset.mem i q then t else f in
          random_set_of_max_size rng (Pset.full n) limit))

let shared_memory rng ~n ~f =
  check_nf ~n ~f;
  Detector.make ~name:(Printf.sprintf "gen-shm(f=%d)" f) (fun _h ->
      let winner = Rng.int rng n in
      let pool = Pset.remove winner (Pset.full n) in
      Array.init n (fun _ -> random_set_of_max_size rng pool f))

let iis rng ~n ~f =
  check_nf ~n ~f;
  Detector.make ~name:(Printf.sprintf "gen-iis(f=%d)" f) (fun _h ->
      let order = Array.init n Fun.id in
      Rng.shuffle_in_place rng order;
      (* Ordered partition: block 1 has at least n − f members so nobody
         misses more than f; a process sees its own block and all earlier
         ones. *)
      let first_block = Rng.int_in_range rng ~min:(n - f) ~max:n in
      let block_of = Array.make n 0 in
      let block = ref 0 in
      Array.iteri
        (fun position p ->
          if position >= first_block && (position = first_block || Rng.bool rng)
          then incr block;
          block_of.(p) <- !block)
        order;
      Array.init n (fun i ->
          Pset.filter (fun j -> block_of.(j) > block_of.(i)) (Pset.full n)))

let k_set rng ~n ~k =
  if n < 1 || n > Pset.max_universe then invalid_arg "Detector_gen.k_set: bad n";
  if k < 1 || k > n then invalid_arg "Detector_gen.k_set: need 1 ≤ k ≤ n";
  let full = Pset.full n in
  (* Output scratch, reused across rounds: the executor copies fault sets
     into the history before the next query, and recording detectors copy
     (see Detector.recording), so nothing retains this array. *)
  let out = Array.make n Pset.empty in
  Detector.make ~name:(Printf.sprintf "gen-kset(k=%d)" k) (fun _h ->
      let u_size = Rng.int_in_range rng ~min:0 ~max:(k - 1) in
      let uncertainty = Pset.random_subset_of_size rng full u_size in
      let common_pool = Pset.diff full uncertainty in
      (* Keep every D(i) a proper subset of S. *)
      let common_limit = max 0 (n - u_size - 1) in
      let common = random_set_of_max_size rng common_pool common_limit in
      for i = 0 to n - 1 do
        out.(i) <- Pset.union common (Pset.random_subset rng uncertainty)
      done;
      out)

let antisymmetric rng ~n ~f =
  check_nf ~n ~f;
  Detector.make ~name:(Printf.sprintf "gen-antisym(f=%d)" f) (fun _h ->
      let sets = Array.make n Pset.empty in
      (* Visit ordered pairs in random order; orient at most one miss per
         unordered pair, respecting the per-process budget. *)
      let pairs = ref [] in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then pairs := (i, j) :: !pairs
        done
      done;
      let pairs = Array.of_list !pairs in
      Rng.shuffle_in_place rng pairs;
      Array.iter
        (fun (i, j) ->
          if
            Rng.bool rng
            && Pset.cardinal sets.(i) < f
            && (not (Pset.mem j sets.(i)))
            && not (Pset.mem i sets.(j))
          then sets.(i) <- Pset.add j sets.(i))
        pairs;
      sets)

let identical rng ~n =
  if n < 1 || n > Pset.max_universe then invalid_arg "Detector_gen.identical: bad n";
  Detector.make ~name:"gen-identical" (fun _h ->
      let size = Rng.int_in_range rng ~min:0 ~max:(n - 1) in
      let d = Pset.random_subset_of_size rng (Pset.full n) size in
      Array.make n d)

let detector_s rng ~n =
  if n < 1 || n > Pset.max_universe then invalid_arg "Detector_gen.detector_s: bad n";
  let immortal = Rng.int rng n in
  Detector.make ~name:"gen-detector-S" (fun _h ->
      let pool = Pset.remove immortal (Pset.full n) in
      Array.init n (fun _ -> Pset.random_subset rng pool))
