type t = {
  rounds : int;
  messages : int;
  detector_queries : int;
  predicate_checks : int;
}

let zero = { rounds = 0; messages = 0; detector_queries = 0; predicate_checks = 0 }

let add a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    detector_queries = a.detector_queries + b.detector_queries;
    predicate_checks = a.predicate_checks + b.predicate_checks;
  }

let of_history ?(predicate_checks = 0) history =
  let n = Fault_history.n history in
  let messages =
    Fault_history.fold_rounds
      (fun _round sets acc ->
        Array.fold_left (fun acc d -> acc + (n - Pset.cardinal d)) acc sets)
      history 0
  in
  let rounds = Fault_history.rounds history in
  { rounds; messages; detector_queries = rounds; predicate_checks }

let to_fields t =
  [
    ("rounds", t.rounds);
    ("messages", t.messages);
    ("detector-queries", t.detector_queries);
    ("predicate-checks", t.predicate_checks);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (to_fields t)
