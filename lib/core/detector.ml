type t = {
  name : string;
  next : Fault_history.t -> Pset.t array;
}

let name d = d.name

let make ~name next = { name; next }

let next d history = d.next history

let none =
  make ~name:"failure-free" (fun h ->
      Array.make (Fault_history.n h) Pset.empty)

let of_schedule ?after rounds =
  let table = Array.of_list rounds in
  let fallback h =
    match after with
    | Some d -> d
    | None ->
      if Array.length table > 0 then table.(Array.length table - 1)
      else Array.make (Fault_history.n h) Pset.empty
  in
  make ~name:"schedule" (fun h ->
      let r = Fault_history.rounds h in
      if r < Array.length table then table.(r) else fallback h)

let constant ~n:_ d = make ~name:"constant" (fun _ -> d)

let map ~name f d = make ~name (fun h -> f h (d.next h))

let recording d =
  let log = ref [] in
  let wrapped =
    make ~name:(d.name ^ "+recorded") (fun h ->
        let round = d.next h in
        (* Copy: generators may reuse their output array as scratch. *)
        log := Array.copy round :: !log;
        round)
  in
  (wrapped, fun () -> List.rev !log)
