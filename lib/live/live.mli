(** The live substrate: one OCaml domain per process, real scheduling.

    Every other substrate in the repository is a deterministic simulation
    whose nondeterminism comes from an RNG.  Here the processes are
    actual [Domain]s exchanging round-tagged messages through
    {!Mailbox}es, and a round ends when the process's {!Patience} policy
    says so — whom it heard from by then is decided by the operating
    system's scheduler, not by an adversary model.  Omission and
    asynchrony are {e observed}, and the per-round heard-from records are
    collected into exactly the paper's fault history [{D(i,r)}]
    ({!Msgnet.Heard_of}), which the abstract engine can replay pinned
    ({!differential}) — the communication-closed reduction (Damian et
    al.) run in the forward direction, validating the model against
    reality instead of against another simulation.

    Execution discipline: every process runs the full round horizon (no
    process can observe that everybody else decided), it always hears
    itself (so [i ∉ D(i,r)] and [D ≠ S] by construction), and a message
    arriving for an already-completed round is dropped — which is what
    makes the run communication-closed and the pinned replay exact.

    Everything cross-domain goes through the mailboxes; the per-process
    buffers, logs and decision slots are owned by one domain until the
    join, so the runner is data-race-free by construction. *)

module Patience = Patience
(** Round-completion policies ({!Patience.t}), re-exported as the
    library's entry point is this module. *)

module Mailbox = Mailbox
(** The inter-domain channel, re-exported for tests and benchmarks. *)

val max_processes : int
(** Largest supported [n] (127): this substrate spawns one OCaml domain
    per process and the runtime caps domains at ~128.  Simulated
    substrates scale far wider — see {!Rrfd.Pset.max_universe}. *)

type 'out result = {
  decisions : 'out option array;
      (** First decision per process ([None] if it never decided). *)
  decision_rounds : int option array;
      (** Round whose delivery first made [decide] answer [Some _]. *)
  induced : Rrfd.Fault_history.t;
      (** The extracted heard-of fault history: [D(i,r)] is the
          complement of what [i] had heard when its patience for round
          [r] ran out. *)
  completed : int array;
      (** Rounds completed per process — always the full horizon. *)
  counters : Rrfd.Counters.t;
      (** [messages] counts accepted deliveries (a slot filed into a
          live round buffer, self included), which equals
          [Σ_{i,r} (n − |D(i,r)|)] — the engine's vocabulary.  No
          detector is ever queried. *)
  wall_ns : int64;  (** Real elapsed wall-clock time of the whole run. *)
}

val run :
  ?patience:Patience.t ->
  n:int ->
  f:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  unit ->
  'out result
(** Spawn [n − 1] domains (the calling domain runs process 0), drive
    [algorithm] for exactly [rounds] rounds under [patience] (default
    {!Patience.Wait_quorum} with the given [f]) and collect the uniform
    observation.  Re-raises the first exception any process's algorithm
    raised, after every domain has been joined.
    @raise Invalid_argument if [n] is outside [1..max_processes],
    [f < 0], [f ≥ n] or [rounds < 0]. *)

val effective_jobs : ?jobs:int -> n_procs:int -> unit -> int
(** Worker-domain budget for a campaign whose trials each spawn
    [n_procs] domains: [min jobs (recommended_domain_count / n_procs)],
    floored at 1.  Without the cap a live campaign oversubscribes the
    machine quadratically (pool workers × process domains), which both
    distorts deadline-patience runs and slows everything down. *)

module As_substrate : sig
  type config = { patience : Patience.t; f : int }

  val name : string
  (** ["live"]. *)

  val execute :
    config ->
    n:int ->
    rounds:int ->
    algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
    'out Rrfd.Substrate.execution
  (** {!run} packaged as the fourth {!Rrfd.Substrate.S} implementation.
      [rounds_used] is always the requested horizon, [crashed] is empty
      (live processes never stop early) and [wall_ns] is [Some _] — the
      only substrate whose executions carry real elapsed time. *)
end

type 'out differential = {
  outcome : 'out result;
  replayed : 'out option array;
      (** Decisions of the pinned engine replay of [outcome.induced]. *)
  matched : bool;
      (** Live and replayed decision vectors agree at {e every} process
          (all live processes complete the full horizon, so the whole
          vector is comparable — no prefix rule needed). *)
}

val differential :
  ?patience:Patience.t ->
  ?equal:('out -> 'out -> bool) ->
  n:int ->
  f:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  unit ->
  'out differential
(** One live run plus its {!Msgnet.Heard_of.replay_decisions} oracle:
    if [matched] is false, either the extraction lost information or the
    substrate is not communication-closed — both bugs. *)
