type t = Wait_all | Wait_quorum | Deadline of int64

let names = "all, quorum, deadline:ns=_ (or us=_/ms=_)"

(* Same [name] / [name:k=v,...] grammar as Check.Spec, inlined because
   live sits below check in the dependency order. *)
let of_spec spec =
  let parse_params rest =
    List.fold_left
      (fun acc pair ->
        Result.bind acc (fun params ->
            match String.split_on_char '=' pair with
            | [ key; value ] -> (
              match Int64.of_string_opt value with
              | Some v when v >= 0L -> Ok ((key, v) :: params)
              | _ ->
                Error
                  (Printf.sprintf "%S: %S is not a non-negative int" spec value)
              )
            | _ ->
              Error (Printf.sprintf "%S: expected key=value, got %S" spec pair)))
      (Ok [])
      (String.split_on_char ',' rest)
  in
  let name, params =
    match String.index_opt spec ':' with
    | None -> (spec, Ok [])
    | Some i ->
      ( String.sub spec 0 i,
        parse_params (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  Result.bind params (fun params ->
      let bare t =
        if params = [] then Ok t
        else Error (Printf.sprintf "%S: %s takes no parameters" spec name)
      in
      match name with
      | "all" -> bare Wait_all
      | "quorum" -> bare Wait_quorum
      | "deadline" -> (
        let scaled key factor =
          Option.map (fun v -> Int64.mul v factor) (List.assoc_opt key params)
        in
        match
          List.find_map Fun.id
            [ scaled "ms" 1_000_000L; scaled "us" 1_000L; scaled "ns" 1L ]
        with
        | Some ns -> Ok (Deadline ns)
        | None ->
          Error
            (Printf.sprintf "%S: deadline needs ns=, us= or ms=" spec))
      | _ ->
        Error
          (Printf.sprintf "unknown patience %S, expected one of: %s" spec names))

let to_string = function
  | Wait_all -> "all"
  | Wait_quorum -> "quorum"
  | Deadline ns -> Printf.sprintf "deadline:ns=%Ld" ns

let pp ppf t = Format.pp_print_string ppf (to_string t)
