(** A concurrent mailbox: the only channel between live process domains.

    One mailbox per receiving process, many posting domains.  Posts carry
    [(from, round, payload)] envelopes; the receiver drains them in
    arrival order and files them into its private round buffers.  The
    implementation is a [Mutex]/[Condition] pair over a reversed list —
    the classic monitor — because the receiver must be able to {e block}
    until mail arrives ({!receive}); lock-free rings only help when both
    sides spin, and a live round spends most of its life waiting. *)

type 'm t

val create : unit -> 'm t

val post : 'm t -> from:int -> round:int -> 'm -> unit
(** Enqueue and wake the receiver.  Never blocks beyond the mutex. *)

val receive : 'm t -> ?deadline_ns:int64 -> unit -> (int * int * 'm) list
(** Drain everything pending, in arrival order.  With the box empty,
    blocks until a {!post} or a {!poke} arrives — or, when [deadline_ns]
    (absolute, {!now_ns} clock) is given, polls until the deadline passes
    and then returns [[]].  A wake with nothing pending (a poke, a racing
    drain) also returns [[]]: callers re-check their own predicate and
    loop. *)

val poke : 'm t -> unit
(** Wake a blocked receiver without posting (abort propagation). *)

val now_ns : unit -> int64
(** Wall-clock nanoseconds ([Unix.gettimeofday] scaled): the clock
    {!receive} deadlines and the substrate's [wall_ns] are measured on. *)
