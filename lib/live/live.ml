module Patience = Patience
module Mailbox = Mailbox

type 'out result = {
  decisions : 'out option array;
  decision_rounds : int option array;
  induced : Rrfd.Fault_history.t;
  completed : int array;
  counters : Rrfd.Counters.t;
  wall_ns : int64;
}

(* Raised inside a worker when another worker already failed; never
   escapes [run]. *)
exception Aborted

(* One OCaml domain per process, and the runtime caps domains at ~128 —
   a real bound of this substrate, independent of Pset's width. *)
let max_processes = 127

let run ?(patience = Patience.Wait_quorum) ~n ~f ~rounds ~algorithm () =
  if n < 1 || n > max_processes then
    invalid_arg
      (Printf.sprintf "Live.run: n = %d outside 1..%d" n max_processes);
  if f < 0 || f >= n then
    invalid_arg (Printf.sprintf "Live.run: f = %d outside 0..n-1" f);
  if rounds < 0 then invalid_arg "Live.run: rounds < 0";
  let boxes = Array.init n (fun _ -> Mailbox.create ()) in
  (* First failure wins; everyone else sees the flag at the next round
     boundary (pokes unblock the ones parked in [receive]). *)
  let abort : exn option Atomic.t = Atomic.make None in
  let fail e =
    ignore (Atomic.compare_and_set abort None (Some e));
    Array.iter Mailbox.poke boxes
  in
  (* Per-process slots: each is written only by the owning domain before
     the join, read only after — the join is the happens-before edge. *)
  let decisions = Array.make n None in
  let decision_rounds = Array.make n None in
  let heard_logs = Array.make n [] (* newest round first *) in
  let accepted = Array.make n 0 in
  let completed = Array.make n 0 in
  let full = Rrfd.Pset.full n in
  let quorum = n - f in
  let worker i () =
    try
      let buffers : (int, 'm option array) Hashtbl.t = Hashtbl.create 8 in
      let buffer_for round =
        match Hashtbl.find_opt buffers round with
        | Some b -> b
        | None ->
          let b = Array.make n None in
          Hashtbl.add buffers round b;
          b
      in
      let current = ref 1 in
      (* Accept an envelope: file it unless its round already completed
         here (late mail is exactly what omission means) or the slot is
         already filled
         (a duplicate cannot happen, but stay idempotent). *)
      let file (from, round, msg) =
        if round >= !current then begin
          let b = buffer_for round in
          if Option.is_none b.(from) then begin
            b.(from) <- Some msg;
            accepted.(i) <- accepted.(i) + 1
          end
        end
      in
      let state = ref (algorithm.Rrfd.Algorithm.init ~n i) in
      for round = 1 to rounds do
        current := round;
        let msg = algorithm.Rrfd.Algorithm.emit !state ~round in
        (* Self-delivery at emit: i always hears itself, so i ∉ D(i,r)
           and the induced history can never be the paper's excluded
           D = S. *)
        file (i, round, msg);
        for j = 0 to n - 1 do
          if j <> i then Mailbox.post boxes.(j) ~from:i ~round msg
        done;
        let b = buffer_for round in
        let count () =
          Array.fold_left (fun c m -> if Option.is_some m then c + 1 else c) 0 b
        in
        let target =
          match patience with
          | Patience.Wait_quorum -> quorum
          | Patience.Wait_all | Patience.Deadline _ -> n
        in
        let deadline_ns =
          match patience with
          | Patience.Deadline ns -> Some (Int64.add (Mailbox.now_ns ()) ns)
          | Patience.Wait_all | Patience.Wait_quorum -> None
        in
        let rec collect () =
          (match Atomic.get abort with
          | Some _ -> raise Aborted
          | None -> ());
          if count () < target then begin
            let expired =
              match deadline_ns with
              | Some d -> Mailbox.now_ns () >= d
              | None -> false
            in
            if not expired then begin
              List.iter file (Mailbox.receive boxes.(i) ?deadline_ns ());
              collect ()
            end
          end
        in
        collect ();
        let heard = Rrfd.Pset.filter (fun j -> Option.is_some b.(j)) full in
        heard_logs.(i) <- heard :: heard_logs.(i);
        Hashtbl.remove buffers round;
        let view =
          Rrfd.View.of_option_array b ~faulty:(Rrfd.Pset.diff full heard)
        in
        state := algorithm.Rrfd.Algorithm.deliver !state ~round ~view;
        completed.(i) <- round;
        if Option.is_none decisions.(i) then begin
          match algorithm.Rrfd.Algorithm.decide !state with
          | Some _ as d ->
            decisions.(i) <- d;
            decision_rounds.(i) <- Some round
          | None -> ()
        end
      done
    with
    | Aborted -> ()
    | e -> fail e
  in
  let t0 = Mailbox.now_ns () in
  let spawned = Array.init (n - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join spawned;
  let wall_ns = Int64.sub (Mailbox.now_ns ()) t0 in
  (match Atomic.get abort with Some e -> raise e | None -> ());
  let record = Msgnet.Heard_of.create ~n in
  for i = 0 to n - 1 do
    List.iteri
      (fun k heard -> Msgnet.Heard_of.note record i ~round:(k + 1) ~heard ())
      (List.rev heard_logs.(i))
  done;
  let induced = Msgnet.Heard_of.to_history record in
  let counters =
    {
      Rrfd.Counters.rounds = Rrfd.Fault_history.rounds induced;
      messages = Array.fold_left ( + ) 0 accepted;
      detector_queries = 0;
      predicate_checks = 0;
    }
  in
  { decisions; decision_rounds; induced; completed; counters; wall_ns }

let effective_jobs ?jobs ~n_procs () =
  let recommended = Domain.recommended_domain_count () in
  let requested = Option.value jobs ~default:recommended in
  max 1 (min requested (recommended / max 1 n_procs))

module As_substrate = struct
  type config = { patience : Patience.t; f : int }

  let name = "live"

  let execute { patience; f } ~n ~rounds ~algorithm =
    let r = run ~patience ~n ~f ~rounds ~algorithm () in
    {
      Rrfd.Substrate.substrate = name;
      decisions = r.decisions;
      decision_rounds = r.decision_rounds;
      rounds_used = rounds;
      induced = r.induced;
      counters = r.counters;
      violation = None;
      crashed = Rrfd.Pset.empty;
      completed = r.completed;
      wall_ns = Some r.wall_ns;
    }
end

type 'out differential = {
  outcome : 'out result;
  replayed : 'out option array;
  matched : bool;
}

let differential ?patience ?(equal = Stdlib.( = )) ~n ~f ~rounds ~algorithm () =
  let outcome = run ?patience ~n ~f ~rounds ~algorithm () in
  let replayed = Msgnet.Heard_of.replay_decisions ~algorithm outcome.induced in
  let opt_equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> equal x y
    | _ -> false
  in
  let matched = ref true in
  Array.iteri
    (fun i d -> if not (opt_equal d replayed.(i)) then matched := false)
    outcome.decisions;
  { outcome; replayed; matched = !matched }
