(** Round patience policies for the live substrate.

    A live process has no detector telling it whom to give up on; what it
    has is a mailbox and a clock.  A patience policy is the rule by which
    it decides that round [r] is over: the processes it has not heard from
    by then become its fault set [D(i,r)].  The three policies span the
    paper's spectrum —

    - {!Wait_all} never gives up: rounds are lock-step, the induced
      history is failure-free and the run behaves like the synchronous
      network without faults (but paced by the real scheduler).
    - {!Wait_quorum} proceeds on the first [n − f] round-[r] messages
      (its own included): the classic asynchronous rule, inducing
      [|D(i,r)| ≤ f] (predicate P3) by construction.
    - {!Deadline} proceeds when every message arrived or the given
      wall-clock budget (nanoseconds since the round's wait began) is
      spent, whichever is first — genuine timing-driven omission.  A
      loaded scheduler can make [D(i,r)] arbitrarily large (never all of
      [S]: a process always hears itself), so which predicates hold is an
      empirical question; E23 measures the rates. *)

type t =
  | Wait_all  (** Complete a round only with all [n] messages. *)
  | Wait_quorum  (** Complete on the first [n − f] messages. *)
  | Deadline of int64
      (** [Deadline ns]: complete when all [n] messages arrived or [ns]
          wall-clock nanoseconds elapsed, whichever is first. *)

val names : string
(** Human-readable spec vocabulary, for CLI [--help] and errors. *)

val of_spec : string -> (t, string) result
(** Parse ["all"], ["quorum"], ["deadline:ns=N"] / ["deadline:us=N"] /
    ["deadline:ms=N"] (the unit keys are alternatives, largest wins). *)

val to_string : t -> string
(** Inverse of {!of_spec}, canonical form (deadlines in ns). *)

val pp : Format.formatter -> t -> unit
