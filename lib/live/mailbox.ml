type 'm t = {
  mutex : Mutex.t;
  wakeup : Condition.t;
  mutable pending : (int * int * 'm) list; (* newest first *)
}

let create () =
  { mutex = Mutex.create (); wakeup = Condition.create (); pending = [] }

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let post t ~from ~round msg =
  Mutex.lock t.mutex;
  t.pending <- (from, round, msg) :: t.pending;
  Condition.signal t.wakeup;
  Mutex.unlock t.mutex

let poke t =
  Mutex.lock t.mutex;
  Condition.broadcast t.wakeup;
  Mutex.unlock t.mutex

let take_pending t =
  let got = t.pending in
  t.pending <- [];
  List.rev got

(* Stdlib Condition has no timed wait, so the deadline path polls: drop
   the lock, sleep a few scheduler quanta, retry.  20 µs keeps the poll
   an order of magnitude below any deadline worth configuring while
   staying invisible next to a Domain context switch. *)
let poll_interval = 20e-6

let receive t ?deadline_ns () =
  match deadline_ns with
  | None ->
    Mutex.lock t.mutex;
    if t.pending = [] then Condition.wait t.wakeup t.mutex;
    let got = take_pending t in
    Mutex.unlock t.mutex;
    got
  | Some deadline ->
    let rec loop () =
      Mutex.lock t.mutex;
      let got = take_pending t in
      Mutex.unlock t.mutex;
      if got <> [] || now_ns () >= deadline then got
      else begin
        Unix.sleepf poll_interval;
        loop ()
      end
    in
    loop ()
