module Pset = Rrfd.Pset

module S = Snapshot.Make (struct
  type t = int (* a process's current level *)
end)

type result = { views : Rrfd.Pset.t array; steps : int }

(* Reference implementation: the generic fiber executor running the
   textbook body — one effect per register operation, Afek-style embedded
   snapshots underneath.  Kept as the semantic oracle for the specialized
   engine below (see the differential test in test_shm). *)
let run_once_reference ~n ~schedule =
  if n < 1 || n > Pset.max_universe then invalid_arg "Immediate_snapshot: bad n";
  let views = Array.make n Pset.empty in
  let body ~proc =
    let rec descend level =
      S.update ~proc level;
      let levels = S.scan () in
      let at_or_below = ref Pset.empty in
      Array.iteri
        (fun q l ->
          match l with
          | Some lq when lq <= level -> at_or_below := Pset.add q !at_or_below
          | Some _ | None -> ())
        levels;
      if Pset.cardinal !at_or_below >= level then views.(proc) <- !at_or_below
      else descend (level - 1)
    in
    descend n
  in
  let outcome = S.run ~n ~schedule body in
  { views; steps = outcome.S.steps }

(* Specialized engine: the same algorithm unrolled into an explicit
   per-process state machine driven one register operation per scheduler
   step — no fibers, no continuation capture, no option boxing.  The
   operation sequence of every process and the scheduler's RNG draw
   sequence are identical to the reference above (one draw below the
   ready-count per step, ascending pick), so seeded runs produce
   bit-identical views and step counts; the differential test enforces
   this.  Registers are three flat arrays (seq 0 = never written); views
   and embedded snapshots are int arrays with -1 for "not seen". *)

(* Per-process control state.  [phase]: 0 = scan embedded in update,
   1 = read own seq, 2 = write own register, 3 = post-update scan,
   4 = finished. *)
type pstate = {
  mutable level : int;
  mutable phase : int;
  mutable new_seq : int;
  mutable embedded : int array;
  (* double-collect machine: col 0 reads seqs only, col 1 reads cells *)
  mutable col : int;
  mutable q : int;
  c1seq : int array;
  c2seq : int array;
  c2val : int array;
  c2emb : int array array;
  moved : int array;
}

let run_once ~n ~schedule =
  if n < 1 || n > Pset.max_universe then invalid_arg "Immediate_snapshot: bad n";
  let views = Array.make n Pset.empty in
  let no_view : int array = [||] in
  (* The shared SWMR memory: seq = 0 means never written. *)
  let mem_seq = Array.make n 0 in
  let mem_val = Array.make n 0 in
  let mem_emb = Array.make n no_view in
  let procs =
    Array.init n (fun _ ->
        {
          level = n;
          phase = 0;
          new_seq = 0;
          embedded = no_view;
          col = 0;
          q = 0;
          c1seq = Array.make n 0;
          c2seq = Array.make n 0;
          c2val = Array.make n 0;
          c2emb = Array.make n no_view;
          moved = Array.make n 0;
        })
  in
  let start_scan st =
    st.col <- 0;
    st.q <- 0;
    Array.fill st.moved 0 n 0
  in
  Array.iter start_scan procs;
  let nready = ref n in
  let steps = ref 0 in
  (* A completed scan delivered [result]; route it per the current phase. *)
  let scan_done p st result =
    if st.phase = 0 then begin
      st.embedded <- result;
      st.phase <- 1
    end
    else begin
      (* Post-update scan: processes at or below our level form the view. *)
      let at_or_below = ref Pset.empty in
      for q = 0 to n - 1 do
        let lq = result.(q) in
        if lq >= 0 && lq <= st.level then at_or_below := Pset.add q !at_or_below
      done;
      if Pset.cardinal !at_or_below >= st.level then begin
        views.(p) <- !at_or_below;
        st.phase <- 4;
        decr nready
      end
      else begin
        st.level <- st.level - 1;
        st.phase <- 0;
        start_scan st
      end
    end
  in
  let finish_attempt p st =
    let clean = ref true in
    for q = 0 to n - 1 do
      if Array.unsafe_get st.c1seq q <> Array.unsafe_get st.c2seq q then begin
        clean := false;
        Array.unsafe_set st.moved q (Array.unsafe_get st.moved q + 1)
      end
    done;
    if !clean then begin
      let result = Array.make n (-1) in
      for q = 0 to n - 1 do
        if st.c2seq.(q) <> 0 then result.(q) <- st.c2val.(q)
      done;
      scan_done p st result
    end
    else begin
      (* A register seen moving twice completed a whole update — and hence
         a whole embedded scan — inside our interval: borrow it. *)
      let borrowed = ref no_view in
      let q = ref 0 in
      while !borrowed == no_view && !q < n do
        if st.moved.(!q) >= 2 && st.c2seq.(!q) <> 0 then
          borrowed := st.c2emb.(!q);
        incr q
      done;
      if !borrowed != no_view then scan_done p st (Array.copy !borrowed)
      else begin
        st.col <- 0;
        st.q <- 0
      end
    end
  in
  (* Execute one register operation of process [p] and advance its
     machine to the next one — the step granularity of the reference. *)
  let exec_step p =
    incr steps;
    let st = procs.(p) in
    match st.phase with
    | 0 | 3 ->
      (* q < n by construction; unchecked accesses keep the per-read cost
         at a handful of loads and stores. *)
      let q = st.q in
      if st.col = 0 then begin
        Array.unsafe_set st.c1seq q (Array.unsafe_get mem_seq q);
        st.q <- q + 1;
        if st.q = n then begin
          st.col <- 1;
          st.q <- 0
        end
      end
      else begin
        Array.unsafe_set st.c2seq q (Array.unsafe_get mem_seq q);
        Array.unsafe_set st.c2val q (Array.unsafe_get mem_val q);
        Array.unsafe_set st.c2emb q (Array.unsafe_get mem_emb q);
        st.q <- q + 1;
        if st.q = n then finish_attempt p st
      end
    | 1 ->
      st.new_seq <- mem_seq.(p) + 1;
      st.phase <- 2
    | 2 ->
      mem_seq.(p) <- st.new_seq;
      mem_val.(p) <- st.level;
      mem_emb.(p) <- st.embedded;
      st.phase <- 3;
      start_scan st
    | _ -> assert false
  in
  let ready p = procs.(p).phase <> 4 in
  (match schedule with
  | Exec.Random rng ->
    (* Ready processes kept sorted ascending in a compact array, so the
       idx-th ready pick — the element the reference scheduler's
       Rng.choose takes from its ascending ready list — is O(1); removal
       on completion shifts left (n removals total). *)
    let ready_arr = Array.init n Fun.id in
    while !nready > 0 do
      let cnt = !nready in
      let idx = Dsim.Rng.int rng cnt in
      let p = Array.unsafe_get ready_arr idx in
      exec_step p;
      if (Array.unsafe_get procs p).phase = 4 then
        for i = idx to cnt - 2 do
          Array.unsafe_set ready_arr i (Array.unsafe_get ready_arr (i + 1))
        done
    done
  | Exec.Round_robin | Exec.Fixed _ ->
    let rec drive ~rr_next ~script =
      if !nready = 0 then ()
      else begin
        let pick_round_robin () =
          let rec find i =
            let candidate = (rr_next + i) mod n in
            if ready candidate then candidate else find (i + 1)
          in
          find 0
        in
        let proc, script =
          match (schedule, script) with
          | Exec.Round_robin, _ -> (pick_round_robin (), script)
          | Exec.Random _, _ -> assert false
          | Exec.Fixed _, p :: rest when ready p -> (p, rest)
          | Exec.Fixed _, _ :: rest -> (pick_round_robin (), rest)
          | Exec.Fixed _, [] -> (pick_round_robin (), [])
        in
        exec_step proc;
        drive ~rr_next:((proc + 1) mod n) ~script
      end
    in
    let script = match schedule with Exec.Fixed s -> s | _ -> [] in
    drive ~rr_next:0 ~script);
  { views; steps = !steps }

let check_views views =
  let n = Array.length views in
  let violation = ref None in
  let report fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  for i = 0 to n - 1 do
    if not (Pset.mem i views.(i)) then report "p%d missing from its own view" i
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        not (Pset.subset views.(i) views.(j) || Pset.subset views.(j) views.(i))
      then report "views of p%d and p%d are incomparable" i j
    done
  done;
  for i = 0 to n - 1 do
    Pset.iter
      (fun j ->
        if not (Pset.subset views.(j) views.(i)) then
          report "immediacy broken: p%d ∈ view of p%d but V_%d ⊄ V_%d" j i j i)
      views.(i)
  done;
  !violation

let to_fault_sets views =
  let n = Array.length views in
  Array.map (fun v -> Pset.diff (Pset.full n) v) views
