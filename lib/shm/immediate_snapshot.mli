(** One-shot immediate snapshot (the participating-set protocol).

    The Borowsky–Gafni level-descent algorithm: a process starts at level
    [n], writes its level, scans everyone's levels, and returns the set of
    processes at or below its level once that set is at least as large as
    the level (otherwise it descends one level and retries).  Outputs are
    {e views} [V_i ∋ p_i] satisfying

    - {b self-inclusion}: [p_i ∈ V_i];
    - {b comparability}: [V_i ⊆ V_j ∨ V_j ⊆ V_i];
    - {b immediacy}: [p_j ∈ V_i ⇒ V_j ⊆ V_i].

    One round of item 5's iterated model is exactly one such one-shot
    object: [D(i,r) = S − V_i] then satisfies the snapshot predicate
    (with [f = n − 1]; resilience-bounded variants additionally wait, which
    {!Detector_gen.iis} models at the predicate level). *)

type result = {
  views : Rrfd.Pset.t array;  (** [views.(i)] is [V_i]. *)
  steps : int;  (** Register operations executed in total. *)
}

val run_once : n:int -> schedule:Exec.strategy -> result
(** Execute the protocol once among [n] processes under the given
    interleaving.  Runs on a specialized per-process state machine (one
    register operation per scheduler step, no fibers) whose operation and
    RNG-draw sequences are identical to {!run_once_reference}: seeded
    schedules yield bit-identical views and step counts on either path. *)

val run_once_reference : n:int -> schedule:Exec.strategy -> result
(** The textbook implementation on the generic fiber executor ({!Exec}
    effects, Afek-style embedded snapshots underneath).  Semantic oracle
    for {!run_once}; the differential test keeps the two in lockstep. *)

val check_views : Rrfd.Pset.t array -> string option
(** [None] iff the views satisfy self-inclusion, comparability and
    immediacy; otherwise a description of the earliest violation.  Exposed
    for the property tests and the E4 experiment. *)

val to_fault_sets : Rrfd.Pset.t array -> Rrfd.Pset.t array
(** [D(i) = S − V_i]. *)
