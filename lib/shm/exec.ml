type strategy =
  | Round_robin
  | Random of Dsim.Rng.t
  | Fixed of int list

module Make (V : sig
  type t
end) =
struct
  open Effect
  open Effect.Deep

  type _ Effect.t += Read : int -> V.t option Effect.t
  type _ Effect.t += Write : int * V.t -> unit Effect.t

  let read loc = perform (Read loc)

  let write loc v = perform (Write (loc, v))

  (* A blocked fiber waiting for its pending operation to be executed. *)
  type blocked =
    | On_read of int * (V.t option, unit) continuation
    | On_write of int * V.t * (unit, unit) continuation

  type outcome = {
    steps : int;
    steps_per_process : int array;
    killed_flags : bool array;
  }

  let killed o = o.killed_flags

  let run ?enforce_swmr ?kill_after ~n_procs ~n_locs ~schedule body =
    if n_procs < 1 then invalid_arg "Exec.run: need at least one process";
    let memory : V.t option array = Array.make n_locs None in
    let pending : blocked option array = Array.make n_procs None in
    (* Cached count of pending fibers: the scheduler's hot loop never
       rebuilds a ready list, it draws an index below [nready] and scans
       [pending] for the index-th ready process in ascending order —
       exactly the element [Rng.choose] would have picked from the old
       ascending ready list, so seeded schedules are unchanged. *)
    let nready = ref 0 in
    let post p op =
      (match pending.(p) with None -> incr nready | Some _ -> ());
      pending.(p) <- Some op
    in
    let steps_per_process = Array.make n_procs 0 in
    let killed_flags = Array.make n_procs false in
    let limit p =
      match kill_after with
      | None -> None
      | Some limits -> limits.(p)
    in
    let total_steps = ref 0 in
    let start proc =
      match_with
        (fun () -> body ~proc)
        ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Read loc ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    post proc (On_read (loc, k)))
              | Write (loc, v) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    post proc (On_write (loc, v, k)))
              | _ -> None);
        }
    in
    for p = 0 to n_procs - 1 do
      start p
    done;
    (* The [idx]-th ready process in ascending order, 0 ≤ idx < !nready. *)
    let nth_ready idx =
      let seen = ref (-1) in
      let proc = ref (-1) in
      let p = ref 0 in
      while !proc < 0 do
        if Option.is_some pending.(!p) then begin
          incr seen;
          if !seen = idx then proc := !p
        end;
        incr p
      done;
      !proc
    in
    let check_owner proc loc =
      match enforce_swmr with
      | None -> ()
      | Some owner ->
        if owner loc <> proc then
          invalid_arg
            (Printf.sprintf "Exec: p%d wrote location %d owned by p%d" proc loc
               (owner loc))
    in
    let execute proc =
      match pending.(proc) with
      | None -> assert false
      | Some op ->
        pending.(proc) <- None;
        decr nready;
        (match limit proc with
        | Some k when steps_per_process.(proc) >= k ->
          (* Crash: the operation never executes; the fiber is abandoned. *)
          killed_flags.(proc) <- true;
          raise Exit
        | Some _ | None -> ());
        incr total_steps;
        steps_per_process.(proc) <- steps_per_process.(proc) + 1;
        (match op with
        | On_read (loc, k) ->
          if loc < 0 || loc >= n_locs then invalid_arg "Exec: location out of range";
          continue k memory.(loc)
        | On_write (loc, v, k) ->
          if loc < 0 || loc >= n_locs then invalid_arg "Exec: location out of range";
          check_owner proc loc;
          memory.(loc) <- Some v;
          continue k ())
    in
    let rec drive ~rr_next ~script =
      if !nready = 0 then ()
      else begin
        let pick_round_robin () =
          let rec find i =
            let candidate = (rr_next + i) mod n_procs in
            if Option.is_some pending.(candidate) then candidate
            else find (i + 1)
          in
          find 0
        in
        let proc, script =
          match (schedule, script) with
          | Round_robin, _ -> (pick_round_robin (), script)
          | Random rng, _ -> (nth_ready (Dsim.Rng.int rng !nready), script)
          | Fixed _, p :: rest when Option.is_some pending.(p) -> (p, rest)
          | Fixed _, _ :: rest -> (pick_round_robin (), rest)
          | Fixed _, [] -> (pick_round_robin (), [])
        in
        (try execute proc with Exit -> ());
        drive ~rr_next:((proc + 1) mod n_procs) ~script
      end
    in
    let script = match schedule with Fixed s -> s | Round_robin | Random _ -> [] in
    drive ~rr_next:0 ~script;
    { steps = !total_steps; steps_per_process; killed_flags }
end
