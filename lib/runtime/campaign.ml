let run ?jobs ~seed ~trials f =
  Pool.map_range ?jobs ~n:trials (fun i ->
      f ~trial:i ~rng:(Dsim.Rng.derive ~seed ~stream:i))

let run_stats ?jobs ~seed ~trials f = Stats.of_array (run ?jobs ~seed ~trials f)

let search ?jobs ~seed ~trials f =
  Pool.search ?jobs ~n:trials (fun i ->
      f ~trial:i ~rng:(Dsim.Rng.derive ~seed ~stream:i))

let map ?jobs ~seed items f =
  let items = Array.of_list items in
  Pool.map_range ?jobs ~n:(Array.length items) (fun i ->
      f ~index:i ~rng:(Dsim.Rng.derive ~seed ~stream:i) items.(i))
  |> Array.to_list
