(** A work-stealing-free domain pool for embarrassingly parallel ranges.

    Trials of a Monte-Carlo campaign are independent communication-closed
    units, so the pool only needs one primitive: evaluate [f] at every index
    of a range, spreading chunks of the range across OCaml 5 domains.  The
    result at index [i] is always [f i] — scheduling can never change what
    is computed, only where — so callers get parallelism without giving up
    reproducibility. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible default worker count
    for this machine (1 on a single-core host). *)

val map_range : ?jobs:int -> n:int -> (int -> 'a) -> 'a array
(** [map_range ~jobs ~n f] is [Array.init n f] computed by up to [jobs]
    domains (default {!recommended_jobs}).  Chunks of the index range are
    handed out through a shared atomic cursor; each index is evaluated
    exactly once, by exactly one domain.  If any [f i] raises, the first
    exception observed is re-raised after all domains have been joined.
    [jobs <= 1] runs serially in the calling domain. *)

val iter_range : ?jobs:int -> n:int -> (int -> unit) -> unit
(** [iter_range ~jobs ~n f] is {!map_range} without materialising results. *)

val search : ?jobs:int -> n:int -> (int -> 'a option) -> 'a option
(** [search ~jobs ~n f] evaluates [f] over [\[0, n)] in parallel and returns
    the hit with the {e smallest} index — exactly what a serial
    left-to-right scan returns, at every [jobs].  Determinism costs only a
    little completeness of the early exit: indices {e above} the best hit
    found so far are skipped, indices below it are always evaluated.  Used
    by the model checker to hunt for the first counterexample across
    domains without making "first" scheduling-dependent. *)
