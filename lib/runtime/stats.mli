(** Summary statistics for per-trial observations.

    Experiment tables aggregate hundreds of per-trial measurements into one
    cell; this module is the shared vocabulary for doing so: count, mean,
    sample standard deviation, extrema, and a normal-approximation
    confidence interval for the mean. *)

type t = private {
  count : int;
  mean : float;  (** [nan] when [count = 0]. *)
  stddev : float;
      (** Sample standard deviation (Bessel-corrected, [n - 1] denominator);
          [0.] when [count = 1], [nan] when [count = 0]. *)
  min : float;  (** [nan] when [count = 0]. *)
  max : float;  (** [nan] when [count = 0]. *)
}

val empty : t
(** The statistics of no observations: [count = 0], all moments [nan]. *)

val of_array : float array -> t

val of_list : float list -> t

val of_ints : int array -> t

val ci95 : t -> float * float
(** [ci95 t] is the normal-approximation 95% confidence interval for the
    mean, [(mean - h, mean + h)] with [h = 1.96 * stddev / sqrt count].
    Degenerate cases: [(nan, nan)] when [count = 0] and [(mean, mean)] when
    [count = 1]. *)

val ci95_halfwidth : t -> float
(** The [h] of {!ci95}; [nan] when [count = 0]. *)

val pp : Format.formatter -> t -> unit
(** ["mean ± h (n=…, sd=…, min=…, max=…)"]. *)
