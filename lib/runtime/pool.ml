let recommended_jobs () = Domain.recommended_domain_count ()

(* Hand out [0, n) in chunks through a shared cursor.  The calling domain
   participates as a worker, so [jobs] counts it: jobs = 4 spawns 3.  Every
   worker runs [body start stop] on disjoint chunks; exceptions are collected
   and the first one re-raised only after every domain has been joined, so a
   failing trial can never leak a running domain. *)
let run_chunked ~jobs ~n body =
  let workers = min jobs n in
  if workers <= 1 then (if n > 0 then body 0 n)
  else begin
    (* Chunks several times smaller than a fair share keep domains busy when
       per-index cost is uneven, without contending on the cursor per index. *)
    let chunk = max 1 (n / (workers * 8)) in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          body start (min n (start + chunk));
          loop ()
        end
      in
      loop ()
    in
    let first_exn = ref None in
    let record e = if !first_exn = None then first_exn := Some e in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (try worker () with e -> record e);
    Array.iter (fun d -> try Domain.join d with e -> record e) domains;
    match !first_exn with Some e -> raise e | None -> ()
  end

let map_range ?jobs ~n f =
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if n <= 0 then [||]
  else if jobs <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run_chunked ~jobs ~n (fun start stop ->
        for i = start to stop - 1 do
          results.(i) <- Some (f i)
        done);
    Array.map (function Some v -> v | None -> assert false) results
  end

(* Deterministic parallel first-hit search.  Every index below the current
   best hit is still evaluated (skipping applies only above it), so the
   final answer is the hit with the smallest index — the same one a serial
   left-to-right scan finds — no matter how chunks were scheduled. *)
let search ?jobs ~n f =
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if n <= 0 then None
  else if jobs <= 1 then begin
    let rec scan i =
      if i >= n then None
      else match f i with Some _ as hit -> hit | None -> scan (i + 1)
    in
    scan 0
  end
  else begin
    let results = Array.make n None in
    let best = Atomic.make n in
    let lower_best i =
      let rec cas () =
        let cur = Atomic.get best in
        if i < cur && not (Atomic.compare_and_set best cur i) then cas ()
      in
      cas ()
    in
    run_chunked ~jobs ~n (fun start stop ->
        for i = start to stop - 1 do
          if i < Atomic.get best then
            match f i with
            | None -> ()
            | Some _ as hit ->
              results.(i) <- hit;
              lower_best i
        done);
    let rec first i =
      if i >= n then None
      else match results.(i) with Some _ as hit -> hit | None -> first (i + 1)
    in
    first 0
  end

let iter_range ?jobs ~n f =
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if n <= 0 then ()
  else if jobs <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else
    run_chunked ~jobs ~n (fun start stop ->
        for i = start to stop - 1 do
          f i
        done)
