(** Deterministic Monte-Carlo campaigns over a domain pool.

    A campaign runs [trials] independent trials of a function under an
    explicit seed.  Each trial receives its own RNG, derived from
    [(seed, trial index)] by {!Dsim.Rng.derive} rather than by splitting a
    shared stream in program order — so trial [i] sees the same random
    choices whether the campaign runs on one domain or sixteen, and the
    aggregated table is bit-identical for every [-j].  Parallelism is pure
    scheduling. *)

val run :
  ?jobs:int ->
  seed:int ->
  trials:int ->
  (trial:int -> rng:Dsim.Rng.t -> 'a) ->
  'a array
(** [run ~jobs ~seed ~trials f] evaluates
    [f ~trial:i ~rng:(Dsim.Rng.derive ~seed ~stream:i)] for every
    [i < trials] on up to [jobs] domains (default
    {!Pool.recommended_jobs}) and returns the observations in trial order.
    [f] must not touch shared mutable state: everything a trial needs is
    its index and its private RNG. *)

val run_stats :
  ?jobs:int ->
  seed:int ->
  trials:int ->
  (trial:int -> rng:Dsim.Rng.t -> float) ->
  Stats.t
(** [run_stats] is {!run} followed by {!Stats.of_array}: the campaign's
    observations summarised for a table cell. *)

val search :
  ?jobs:int ->
  seed:int ->
  trials:int ->
  (trial:int -> rng:Dsim.Rng.t -> 'a option) ->
  'a option
(** [search ~jobs ~seed ~trials f] is {!Pool.search} with per-trial RNG
    derivation: the returned hit is the one of the {e lowest} trial index,
    so a fuzzing campaign reports the same counterexample at every [-j].
    Trials above the best hit so far are skipped (early exit); trials below
    it always run. *)

val map :
  ?jobs:int ->
  seed:int ->
  'a list ->
  (index:int -> rng:Dsim.Rng.t -> 'a -> 'b) ->
  'b list
(** [map ~jobs ~seed items f] runs one trial per list element — for
    campaigns whose independent units are an explicit case list (an
    adversary per horizon, a fault model per row) rather than an anonymous
    trial count.  Results come back in list order; RNG derivation follows
    the element's position, exactly as in {!run}. *)
