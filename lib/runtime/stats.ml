type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let empty = { count = 0; mean = nan; stddev = nan; min = nan; max = nan }

(* Welford's online algorithm: one pass, numerically stable for the large
   trial counts campaigns produce. *)
let of_array a =
  let n = Array.length a in
  if n = 0 then empty
  else begin
    let mean = ref 0.0 and m2 = ref 0.0 in
    let mn = ref a.(0) and mx = ref a.(0) in
    Array.iteri
      (fun i x ->
        let delta = x -. !mean in
        mean := !mean +. (delta /. float_of_int (i + 1));
        m2 := !m2 +. (delta *. (x -. !mean));
        if x < !mn then mn := x;
        if x > !mx then mx := x)
      a;
    let stddev = if n = 1 then 0.0 else sqrt (!m2 /. float_of_int (n - 1)) in
    { count = n; mean = !mean; stddev; min = !mn; max = !mx }
  end

let of_list l = of_array (Array.of_list l)

let of_ints a = of_array (Array.map float_of_int a)

let ci95_halfwidth t =
  if t.count = 0 then nan
  else if t.count = 1 then 0.0
  else 1.96 *. t.stddev /. sqrt (float_of_int t.count)

let ci95 t =
  if t.count = 0 then (nan, nan)
  else
    let h = ci95_halfwidth t in
    (t.mean -. h, t.mean +. h)

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "%.4g ± %.2g (n=%d, sd=%.2g, min=%.4g, max=%.4g)"
      t.mean (ci95_halfwidth t) t.count t.stddev t.min t.max
