module Acc = Msgnet.Accountability
module Json = Report.Json

type witness = {
  n : int;
  f : int;
  seed : int;
  inputs : int array;
  strategies : Acc.strategy option array;
}

let run_witness w =
  Acc.run ~seed:w.seed ~n:w.n ~f:w.f ~inputs:w.inputs ~strategies:w.strategies
    ()

let forks w = (run_witness w).Acc.fork <> None

(* ------------------------------------------------------------------ *)
(* Shrinking: the same greedy ladder as {!Shrink}, over lying plans.   *)
(* ------------------------------------------------------------------ *)

(* Every candidate strictly reduces the witness's lie count — Byzantine
   members, fabricated certs, per-receiver vote cells that differ from
   the liar's own input — so greedy descent terminates and the fixpoint
   is 1-minimal by construction. *)
let candidates w =
  let with_strategy i s =
    let strategies = Array.copy w.strategies in
    strategies.(i) <- s;
    { w with strategies }
  in
  let acc = ref [] in
  (* Least aggressive first, reversed below: vote-cell honesty, then
     cert drops, then whole-process demotions — so the emitted list
     tries the biggest reductions first, like Shrink.candidates. *)
  Array.iteri
    (fun i st ->
      match st with
      | None -> ()
      | Some { Acc.votes; cert } ->
          Array.iteri
            (fun receiver v ->
              if v <> w.inputs.(receiver) then begin
                let votes = Array.copy votes in
                votes.(receiver) <- w.inputs.(receiver);
                acc := with_strategy i (Some { Acc.votes; cert }) :: !acc
              end)
            votes;
          if cert <> None then
            acc := with_strategy i (Some { Acc.votes; cert = None }) :: !acc;
          acc := with_strategy i None :: !acc)
    w.strategies;
  !acc

let minimize ~still_fails w =
  let rec loop w steps =
    match List.find_opt still_fails (candidates w) with
    | Some smaller -> loop smaller (steps + 1)
    | None -> (w, steps)
  in
  loop w 0

(* ------------------------------------------------------------------ *)
(* Fuzzing: soundness under random lying plans.                        *)
(* ------------------------------------------------------------------ *)

type fuzz = {
  trials : int;
  forked : int;
  tampered : int;
  violations : int;
  first_violation : (int * witness * Acc.verdict) option;
}

let binary_inputs n = Array.init n (fun i -> i mod 2)

let derive_witness ~n ~f ~byz ~forge ~rng =
  let inputs = binary_inputs n in
  let strategies = Array.make n None in
  for i = 0 to byz - 1 do
    let forge_cert = forge && Dsim.Rng.bool rng in
    strategies.(i) <- Some (Acc.random_strategy rng ~n ~f ~inputs ~forge_cert ())
  done;
  { n; f; seed = Dsim.Rng.bits30 rng; inputs; strategies }

let fuzz ?jobs ?(n = 4) ?(f = 1) ?(byz = 2) ?(forge = false) ~seed ~trials () =
  let obs =
    Runtime.Campaign.run ?jobs ~seed ~trials (fun ~trial:_ ~rng ->
        let w = derive_witness ~n ~f ~byz ~forge ~rng in
        let outcome = run_witness w in
        let verdict = Acc.check ~f outcome in
        ( outcome.Acc.fork <> None,
          outcome.Acc.messages_tampered,
          (if verdict = Acc.Accountable then None else Some (w, verdict)) ))
  in
  let forked = ref 0 and tampered = ref 0 and violations = ref 0 in
  let first = ref None in
  Array.iteri
    (fun idx (fork, tamp, bad) ->
      if fork then incr forked;
      tampered := !tampered + tamp;
      match bad with
      | Some (w, v) ->
          incr violations;
          if !first = None then first := Some (idx, w, v)
      | None -> ())
    obs;
  {
    trials;
    forked = !forked;
    tampered = !tampered;
    violations = !violations;
    first_violation = !first;
  }

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration: completeness as a finite proof.             *)
(* ------------------------------------------------------------------ *)

type exhaustive = {
  combos : int;
  runs : int;
  forked : int;
  min_accused_on_fork : int option;
  violations : int;
  first_violation : (int * witness * Acc.verdict) option;
}

let exhaustive ?jobs ?(seeds = 3) ?(n = 4) ?(f = 1) ?(byz = 2) ~seed () =
  let values = 2 in
  let per_proc = Acc.vote_strategy_count ~n ~values in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let combos = pow per_proc byz in
  let inputs = binary_inputs n in
  let witness_of ~combo ~variant =
    let strategies = Array.make n None in
    let rest = ref combo in
    for i = 0 to byz - 1 do
      strategies.(i) <-
        Some (Acc.vote_strategy_of_index ~n ~values (!rest mod per_proc));
      rest := !rest / per_proc
    done;
    (* Distinct schedules per (combo, variant): sharing schedules across
       combos would let a single unlucky delay race suppress every fork
       in the space at once. *)
    {
      n;
      f;
      seed = Dsim.Rng.derive_seed seed ((combo * seeds) + variant);
      inputs;
      strategies;
    }
  in
  let obs =
    Runtime.Campaign.run ?jobs ~seed ~trials:(combos * seeds)
      (fun ~trial ~rng:_ ->
        let w = witness_of ~combo:(trial / seeds) ~variant:(trial mod seeds) in
        let outcome = run_witness w in
        let verdict = Acc.check ~f outcome in
        ( (if outcome.Acc.fork <> None then
             Some (Rrfd.Pset.cardinal outcome.Acc.accused)
           else None),
          if verdict = Acc.Accountable then None else Some (w, verdict) ))
  in
  let forked = ref 0 and violations = ref 0 in
  let min_accused = ref None in
  let first = ref None in
  Array.iteri
    (fun idx (fork, bad) ->
      (match fork with
      | Some accused ->
          incr forked;
          min_accused :=
            Some
              (match !min_accused with
              | None -> accused
              | Some m -> min m accused)
      | None -> ());
      match bad with
      | Some (w, v) ->
          incr violations;
          if !first = None then first := Some (idx, w, v)
      | None -> ())
    obs;
  {
    combos;
    runs = combos * seeds;
    forked = !forked;
    min_accused_on_fork = !min_accused;
    violations = !violations;
    first_violation = !first;
  }

(* ------------------------------------------------------------------ *)
(* Replayable artifacts: the E24 counterpart of {!Artifact}.           *)
(* ------------------------------------------------------------------ *)

type artifact = {
  witness : witness;
  expected_fork : bool;
  expected_accused : Rrfd.Pset.t;
}

let kind = "e24-byz"
let version = 1

let of_outcome w (outcome : Acc.outcome) =
  {
    witness = w;
    expected_fork = outcome.Acc.fork <> None;
    expected_accused = outcome.Acc.accused;
  }

let pset_to_json s =
  Json.List
    (List.map (fun p -> Json.Number (float_of_int p)) (Rrfd.Pset.to_list s))

let pset_of_json json = Rrfd.Pset.of_list (List.map Json.int (Json.list json))

let int_array_to_json a =
  Json.List
    (Array.to_list a |> List.map (fun v -> Json.Number (float_of_int v)))

let int_array_of_json json =
  Json.list json |> List.map Json.int |> Array.of_list

let strategy_to_json = function
  | None -> Json.Null
  | Some { Acc.votes; cert } ->
      Json.Obj
        (("votes", int_array_to_json votes)
        ::
        (match cert with
        | None -> []
        | Some (v, quorum) ->
            [
              ("cert_value", Json.Number (float_of_int v));
              ("cert_quorum", pset_to_json quorum);
            ]))

let strategy_of_json = function
  | Json.Null -> None
  | json ->
      let votes = int_array_of_json (Json.member "votes" json) in
      let cert =
        if Json.mem "cert_value" json then
          Some
            ( Json.int (Json.member "cert_value" json),
              pset_of_json (Json.member "cert_quorum" json) )
        else None
      in
      Some { Acc.votes; cert }

let to_json t =
  let w = t.witness in
  Json.Obj
    [
      ("version", Json.Number (float_of_int version));
      ("kind", Json.String kind);
      ("n", Json.Number (float_of_int w.n));
      ("f", Json.Number (float_of_int w.f));
      (* As a decimal string: seeds from [Dsim.Rng.derive_seed] use the
         full 63-bit range, which a JSON double cannot represent. *)
      ("seed", Json.String (string_of_int w.seed));
      ("inputs", int_array_to_json w.inputs);
      ( "strategies",
        Json.List (Array.to_list (Array.map strategy_to_json w.strategies)) );
      ("expected_fork", Json.Bool t.expected_fork);
      ("expected_accused", pset_to_json t.expected_accused);
    ]

let of_json json =
  let v = Json.int (Json.member "version" json) in
  if v <> version then
    raise (Json.Error (Printf.sprintf "unsupported %s version %d" kind v));
  let k = Json.str (Json.member "kind" json) in
  if k <> kind then
    raise (Json.Error (Printf.sprintf "expected kind %S, got %S" kind k));
  {
    witness =
      {
        n = Json.int (Json.member "n" json);
        f = Json.int (Json.member "f" json);
        seed =
          (match Json.member "seed" json with
          | Json.String s -> int_of_string s
          | j -> Json.int j);
        inputs = int_array_of_json (Json.member "inputs" json);
        strategies =
          Json.list (Json.member "strategies" json)
          |> List.map strategy_of_json |> Array.of_list;
      };
    expected_fork = Json.bool (Json.member "expected_fork" json);
    expected_accused = pset_of_json (Json.member "expected_accused" json);
  }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json t));
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (Json.of_string (In_channel.input_all ic)))

type replay = {
  outcome : Acc.outcome;
  verdict : Acc.verdict;
  fork_match : bool;
  accused_match : bool;
}

let replay t =
  let outcome = run_witness t.witness in
  {
    outcome;
    verdict = Acc.check ~f:t.witness.f outcome;
    fork_match = (outcome.Acc.fork <> None) = t.expected_fork;
    accused_match = Rrfd.Pset.equal outcome.Acc.accused t.expected_accused;
  }

let reproduced r = r.fork_match && r.accused_match
