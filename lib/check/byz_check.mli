(** The E24 adversarial battery: fuzzed soundness, enumerated
    completeness, greedy witness shrinking, replayable artifacts.

    The object under test is {!Msgnet.Accountability}: the two-threshold
    quorum vote over the signed transport plus its post-hoc audit.  The
    battery establishes the two sides of accountability —

    - {e soundness}: over arbitrary lying plans, no honest process is
      ever accused ({!fuzz} — random plans; campaigns in the test suite
      and CLI run ≥ 10k derived histories);
    - {e completeness}: every forced fork names at least [f + 1]
      provably-faulty processes ({!exhaustive} — the entire per-receiver
      vote-strategy space at small [n], a finite proof rather than a
      sample).

    Counterexamples (should either side ever fail) and interesting fork
    witnesses are persisted as [e24-byz/1] JSON artifacts, replayable
    like E20's counterexample files. *)

type witness = {
  n : int;
  f : int;
  seed : int;  (** Delay-schedule seed for {!Msgnet.Accountability.run}. *)
  inputs : int array;
  strategies : Msgnet.Accountability.strategy option array;
}
(** Everything needed to reproduce one accountability execution. *)

val run_witness : witness -> Msgnet.Accountability.outcome

val forks : witness -> bool
(** Whether the execution forks two honest deciders — the shrinker's
    default failure notion. *)

(** {1 Shrinking} *)

val candidates : witness -> witness list
(** One-step reductions, most aggressive first: demote a Byzantine
    process to honest, drop a fabricated certificate, make one
    per-receiver vote cell truthful.  Every candidate strictly reduces
    the witness's lie count, so greedy descent terminates. *)

val minimize : still_fails:(witness -> bool) -> witness -> witness * int
(** Greedy fixpoint of {!candidates} under [still_fails] (which must be
    deterministic), with the accepted-step count.  The result is
    1-minimal: no single candidate still fails.  Minimizing an already
    minimal witness returns it unchanged with zero steps — the
    idempotence the regression test pins. *)

(** {1 Fuzzing} *)

type fuzz = {
  trials : int;
  forked : int;  (** Trials whose execution forked honest deciders. *)
  tampered : int;  (** Total tampered sends across all trials. *)
  violations : int;  (** Trials whose verdict was not [Accountable]. *)
  first_violation : (int * witness * Msgnet.Accountability.verdict) option;
      (** Lowest failing trial index with its witness — the artifact to
          save and shrink.  [None] is the expected outcome. *)
}

val fuzz :
  ?jobs:int ->
  ?n:int ->
  ?f:int ->
  ?byz:int ->
  ?forge:bool ->
  seed:int ->
  trials:int ->
  unit ->
  fuzz
(** A {!Runtime.Campaign} of random witnesses (defaults n=4, f=1,
    byz=2): binary inputs, fork-biased vote plans, optionally forged
    certificates.  Each trial derives from [(seed, trial)], so the
    result — including [first_violation] — is bit-identical at every
    [-j]. *)

(** {1 Exhaustive enumeration} *)

type exhaustive = {
  combos : int;  (** Strategy combinations enumerated. *)
  runs : int;  (** [combos × seeds] executions. *)
  forked : int;
  min_accused_on_fork : int option;
      (** The fewest processes any fork convicted — completeness holds
          iff this is [≥ f + 1] (and it is [None] only if nothing
          forked, which would make the claim vacuous; the tests require
          [forked > 0]). *)
  violations : int;
  first_violation : (int * witness * Msgnet.Accountability.verdict) option;
}

val exhaustive :
  ?jobs:int ->
  ?seeds:int ->
  ?n:int ->
  ?f:int ->
  ?byz:int ->
  seed:int ->
  unit ->
  exhaustive
(** Every per-receiver vote strategy over the binary domain for every
    Byzantine member (defaults n=4, f=1, byz=2: 16² = 256 combinations),
    each under [seeds] (default 3) derived delay schedules.  At these
    defaults this is proof-grade: the whole strategy space is covered,
    so [violations = 0] means no lying plan in the space can fork the
    vote without surrendering ≥ f+1 members to the audit. *)

(** {1 Replayable artifacts ([e24-byz/1])} *)

type artifact = {
  witness : witness;
  expected_fork : bool;
  expected_accused : Rrfd.Pset.t;
}

val of_outcome : witness -> Msgnet.Accountability.outcome -> artifact
(** Pin the outcome's fork flag and accused set as the expectation. *)

val to_json : artifact -> Report.Json.t

val of_json : Report.Json.t -> artifact
(** @raise Report.Json.Error on malformed input, wrong [kind] or
    unsupported [version]. *)

val save : string -> artifact -> unit

val load : string -> artifact

type replay = {
  outcome : Msgnet.Accountability.outcome;
  verdict : Msgnet.Accountability.verdict;
  fork_match : bool;
  accused_match : bool;
}

val replay : artifact -> replay
(** Re-run the witness and compare against the pinned expectation. *)

val reproduced : replay -> bool
(** Fork flag and accused set both match. *)

val binary_inputs : int -> int array
(** [i mod 2] — the two-value input split every battery entry point
    uses (forks need honest disagreement to exist). *)

val derive_witness :
  n:int -> f:int -> byz:int -> forge:bool -> rng:Dsim.Rng.t -> witness
(** One random witness exactly as {!fuzz} draws it — exposed so the CLI
    can regenerate and save the artifact for any (seed, trial) pair. *)
