(** Derivation and two-sided certification of heard-of predicates from
    network adversary policies (E26).

    The E21 grid {e observes} which paper predicates each
    {!Msgnet.Adversary} policy happens to satisfy, seed by seed.  This
    module turns the observation into a characterisation, after the
    Shimi–Hurault–Queinnec programme (arXiv:2004.10619, 2011.12879):
    given a policy spec, find the {e strongest} predicate in the
    {!Check.Spec} vocabulary that every execution of the policy
    satisfies, and certify the answer two-sidedly —

    - {b upward (soundness)}: a fresh deterministic fuzz campaign of
      [certify_trials] executions (sharded through
      {!Runtime.Campaign.search}, so the verdict is identical at every
      [-j]) finds no execution violating the derived predicate;
    - {b downward (tightness)}: every candidate the derivation refuted
      comes with a concrete violating execution — the lowest-index
      observation trial that broke it — and, in [exhaustive] mode at
      small [n], every frontier member additionally gets a separating
      history found by {!Adversary.Enumerate} over the {e whole} space
      of derived-predicate histories: a proof, not a sample, that the
      derived predicate does not imply its stronger neighbour.

    The derived predicate is the conjunction of {e all} surviving
    candidates, so it is the strongest expressible answer by
    construction; the {!Rrfd.Submodel} lattice is used to {e name} it
    (redundant conjuncts dropped) and to reduce the refuted set to its
    weakest members (the frontier — refuting a predicate refutes
    everything strictly stronger than it). *)

type config = {
  n : int;
  f : int;  (** Round-layer resilience: rounds complete on [n − f]. *)
  rounds : int;  (** Simulated rounds per execution. *)
  observe_trials : int;  (** Executions the derivation itself looks at. *)
  certify_trials : int;  (** Fresh executions for the upward certificate. *)
  exhaustive : bool;
      (** Also prove tightness by enumeration — requires small [n]
          (the space is [((2^n − 1)^n)^rounds]; keep [n ≤ 4]). *)
  seed : int;
  jobs : int option;
}

val default_config : config
(** [n = 5], [f = 2], [rounds = 4], 2000 observation trials, 10000
    certification trials, [exhaustive = false], seed 26. *)

val candidates : n:int -> f:int -> string list
(** The searched vocabulary, as {!Check.Spec.predicate} specs
    instantiated for the system size: the parameterless paper predicates
    plus [async]/[omission]/[crash]/[shm]/[snapshot]/[kset]/… at the
    relevant [f] and [k] values.  Every future predicate added here is
    automatically placed by the next derivation. *)

type source =
  | Fuzz of int  (** Observation-campaign trial index that violated it. *)
  | Exhaustive  (** Found by full enumeration of the derived space. *)

type witness = {
  spec : string;  (** The refuted candidate. *)
  source : source;
  history : Rrfd.Fault_history.t;
      (** Satisfies the derived predicate, violates [spec]. *)
  reason : string;  (** [Predicate.explain] of the violation. *)
}

type outcome = {
  policy : string;
  cfg : config;
  cands : string list;  (** The vocabulary searched. *)
  sound : string list;  (** Candidates no observed execution violated. *)
  conjuncts : string list;
      (** Lattice-minimal naming of the meet of [sound] (same predicate,
          redundant members dropped). *)
  frontier : string list;
      (** Weakest refuted candidates: the strictly-stronger neighbours
          of the derived predicate within the vocabulary.  Refuted
          candidates indistinguishable from [true] at the lattice size
          (degenerate there, e.g. round-coupled predicates in a
          one-round lattice) are appended individually rather than
          allowed to dominate the order. *)
  witnesses : witness list;  (** One fuzz witness per refuted candidate. *)
  separations : witness list;
      (** One enumeration-backed witness per frontier member
          ([exhaustive] mode only). *)
  certified : bool;  (** The upward campaign found no violation. *)
  certify_violation : (int * Rrfd.Fault_history.t) option;
      (** Lowest-index certification trial violating the derived
          predicate, when [certified] is false. *)
  counters : Rrfd.Counters.t array;
      (** Per-observation-trial work accounting (not serialised). *)
}

val predicate_of : outcome -> Rrfd.Predicate.t
(** The derived predicate: the conjunction of [sound], named by
    [conjuncts]. *)

val induced_history :
  adversary:Msgnet.Adversary.t ->
  n:int ->
  f:int ->
  rounds:int ->
  rng:Dsim.Rng.t ->
  Rrfd.Fault_history.t * Rrfd.Counters.t
(** One policy execution: run the full-information algorithm over the
    damaged asynchronous network and extract the induced fault history
    (the benign projection — [byz:*] atoms change message {e content}
    only, never the delay schedule, so their derived predicate provably
    equals the benign policy's). *)

val lattice_for : cfg:config -> (Rrfd.Submodel.lattice, string) result
(** The {!Rrfd.Submodel.lattice} over {!candidates} for this config —
    share it across the derivations of a grid instead of rebuilding per
    policy.  Dimensions are the largest enumerable size at which the
    parameterised candidates stay non-vacuous: two rounds at [n' = 3],
    one round at [n' = 4] (used when [f = 2], so [|D| ≤ f] does not
    collapse to [true]). *)

val derive :
  ?lattice:Rrfd.Submodel.lattice ->
  cfg:config ->
  policy:string ->
  unit ->
  (outcome, string) result
(** Derive and certify the policy's predicate.  [lattice] lets callers
    share one {!Rrfd.Submodel.lattice} over the same [(n, f)] vocabulary
    across many derivations (the grid, the tests); when absent one is
    built at the {!lattice_for} dimensions.  [Error] on an unparseable
    policy spec. *)

val tight : outcome -> bool
(** Every refuted candidate has a witness, and — in [exhaustive] mode —
    every frontier member has an enumeration-backed separation. *)

val ok : outcome -> bool
(** [certified && tight]. *)

val pp : Format.formatter -> outcome -> unit
(** Human-readable derivation report. *)

(** {1 Replayable artifacts}

    Same discipline as {!Check.Artifact} and {!Check.Byz_check}: the
    JSON carries everything needed to re-check the claim from scratch.
    Schema [e26-derive] version 1. *)

val kind : string

val version : int

val to_json : outcome -> Report.Json.t

val of_json : Report.Json.t -> (outcome, string) result
(** [Error] on shape, kind or version mismatch ([counters] come back
    empty, [jobs] as [None]). *)

val save : string -> outcome -> unit

val load : string -> (outcome, string) result
(** [Error] also on an unreadable path. *)

type replay = {
  loaded : outcome;
  witnesses_valid : bool;
      (** Every witness satisfies the derived predicate and violates its
          [spec]. *)
  fuzz_reproduced : bool;
      (** Re-running each fuzz witness's [(seed, trial)] reproduces its
          history bit-for-bit. *)
  separations_valid : bool;
      (** Every separation re-checks, and re-running the enumeration
          finds the identical history. *)
}

val replay : outcome -> (replay, string) result
(** Re-check a loaded artifact against the current code. *)

val reproduced : replay -> bool
