(** String specs for predicates, generators, systems and properties.

    Counterexample artifacts must survive a round-trip through JSON and
    come back executable, so everything the checker is configured with is
    named by a little spec string: a bare name, or [name:key=val,key=val]
    (e.g. ["kset:k=2"], ["async-mixed:f=1,t=2"]).  The same specs are the
    CLI's vocabulary, so an artifact's fields read exactly like the command
    line that would regenerate it. *)

val predicate : string -> (Rrfd.Predicate.t, string) result
(** Named predicates: [true], [no-self], [not-all-faulty], [crash-closure],
    [someone-seen], [antisym], [omission:f=_], [crash:f=_], [async:f=_],
    [async-mixed:f=_,t=_], [shm:f=_], [shm-alt:f=_], [snapshot:f=_],
    [kset:k=_], [eq5], [detector-s], and the Byzantine-aware pair
    [byz-round:f=_] ({!Rrfd.Predicate.byzantine_round_bound}) and
    [honest-kernel:k=_] ({!Rrfd.Predicate.eventual_honest_kernel}), meant
    for fused silent∪lied histories
    ({!Msgnet.Heard_of.to_byz_history}).  [f] defaults to 1, [k] to 2,
    [t] to 2.  [Error] names the unknown spec and lists the
    vocabulary. *)

val generator :
  string ->
  ((Dsim.Rng.t -> n:int -> Rrfd.Detector.t) * Rrfd.Predicate.t, string) result
(** Constructive {!Rrfd.Detector_gen} generators, paired with the
    predicate they satisfy by construction (the shrinker re-validates
    against it): [omission:f=_], [crash:f=_], [async:f=_],
    [async-mixed:f=_,t=_], [shm:f=_], [snapshot:f=_], [kset:k=_],
    [antisym:f=_], [eq5], [detector-s]. *)

val sut : string -> (Sut.t, string) result
(** Any {!Protocols.Catalog} name ([kset-one-round], [consensus],
    [adopt-commit], [phased-consensus], …) — SUTs are derived from the
    catalog via {!Sut.of_protocol}. *)

val property : string -> (Property.t, string) result
(** [agreement], [k-agreement:k=_], [validity], [termination],
    [adopt-commit]. *)

val adversary : string -> (Msgnet.Adversary.t, string) result
(** Network fault-injection policies in the same grammar, atoms joined
    with [+]: [none], [drop:p=_], [dup:p=_,copies=_], [spike:p=_,factor=_],
    [reorder:p=_,window=_], [partition:at=_,heal=_,left=_] — probabilities
    as percentages.  Delegates to {!Msgnet.Adversary.of_spec}. *)

val default_properties : Sut.t -> string list
(** The property specs the CLI checks when none are given: the full
    adopt-commit specification for the adopt-commit SUT, and
    termination + validity + agreement otherwise. *)

val predicate_names : string
(** Comma-separated vocabulary, for [--help] and error messages. *)

val generator_names : string

val sut_names : string

val property_names : string

val adversary_names : string
