module Pset = Rrfd.Pset

(* A proper subset of the system: the engine (and the paper) forbid
   D(i,r) = S.  Resampling the full set away terminates quickly (the full
   set has probability 2^-n per draw). *)
let proper_subset rng n =
  let rec draw () =
    let s = Pset.random_subset rng (Pset.full n) in
    if Pset.equal s (Pset.full n) then draw () else s
  in
  draw ()

(* Sparse rounds: mostly-empty sets with the occasional singleton.  Most
   named predicates (crash, async with small f, k-set) live here, and small
   sets are also where minimal counterexamples live. *)
let sparse_round rng n =
  Array.init n (fun _ ->
      if Dsim.Rng.bool rng then Pset.empty
      else Pset.singleton (Dsim.Rng.int rng n))

(* Shared-base rounds: one proper subset B drawn per round, each process
   missing a subset of B — the shape of omission and k-set histories. *)
let shared_round rng n =
  let base = proper_subset rng n in
  Array.init n (fun _ -> Pset.random_subset rng base)

(* Wild rounds: independent proper subsets, the unconstrained adversary. *)
let wild_round rng n = Array.init n (fun _ -> proper_subset rng n)

let round_sets rng ~n =
  match Dsim.Rng.int rng 3 with
  | 0 -> sparse_round rng n
  | 1 -> shared_round rng n
  | _ -> wild_round rng n

let history ?(attempts = 64) rng ~n ~rounds ~satisfying =
  if rounds < 0 then invalid_arg "Gen.history: negative round count";
  let rec extend h built =
    if built = rounds then Some h
    else
      let rec try_round budget =
        if budget = 0 then None
        else
          let candidate = Rrfd.Fault_history.append h (round_sets rng ~n) in
          if Rrfd.Predicate.holds satisfying candidate then Some candidate
          else try_round (budget - 1)
      in
      match try_round attempts with
      | None -> None
      | Some h -> extend h (built + 1)
  in
  let empty = Rrfd.Fault_history.empty ~n in
  if not (Rrfd.Predicate.holds satisfying empty) then None
  else extend empty 0
