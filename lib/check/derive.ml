(* Derivation of heard-of predicates from adversary policies (E26).

   The strongest expressible predicate is the conjunction of every
   candidate no observed execution violates — strongest by construction,
   independent of any small-n ordering subtleties.  The Submodel lattice
   (built once per vocabulary at n' = min n 3) is only used to *present*
   the answer: drop conjuncts implied by the rest, and reduce the
   refuted set to its weakest members (the frontier).  A refuted
   candidate strictly stronger than the derivation can never be sound —
   if it were, it would be a conjunct of the meet — so witnessing every
   refuted candidate certifies tightness over the whole vocabulary. *)

module Json = Report.Json

type config = {
  n : int;
  f : int;
  rounds : int;
  observe_trials : int;
  certify_trials : int;
  exhaustive : bool;
  seed : int;
  jobs : int option;
}

let default_config =
  {
    n = 5;
    f = 2;
    rounds = 4;
    observe_trials = 2000;
    certify_trials = 10_000;
    exhaustive = false;
    seed = 26;
    jobs = None;
  }

(* Distinct RNG streams per campaign phase, all derived from the one
   user-facing seed (the artifact stores only that seed; replay
   recomputes the streams). *)
let observe_seed cfg = Dsim.Rng.derive_seed cfg.seed 1

let certify_seed cfg = Dsim.Rng.derive_seed cfg.seed 2

let dedupe specs =
  List.rev
    (List.fold_left
       (fun acc s -> if List.mem s acc then acc else s :: acc)
       [] specs)

let candidates ~n ~f =
  dedupe
    ([
       "true";
       "no-self";
       "not-all-faulty";
       "crash-closure";
       "someone-seen";
       "antisym";
       "detector-s";
       "eq5";
       "kset:k=1";
       "kset:k=2";
     ]
    @ List.init (f + 1) (fun f' -> Printf.sprintf "async:f=%d" f')
    @ [
        Printf.sprintf "omission:f=%d" f;
        Printf.sprintf "omission:f=%d" (n - 1);
        Printf.sprintf "crash:f=%d" f;
        Printf.sprintf "shm:f=%d" f;
        Printf.sprintf "shm-alt:f=%d" f;
        Printf.sprintf "snapshot:f=%d" f;
        Printf.sprintf "async-mixed:f=%d,t=%d" (max 0 (f - 1)) (max 1 f);
      ])

type source = Fuzz of int | Exhaustive

type witness = {
  spec : string;
  source : source;
  history : Rrfd.Fault_history.t;
  reason : string;
}

type outcome = {
  policy : string;
  cfg : config;
  cands : string list;
  sound : string list;
  conjuncts : string list;
  frontier : string list;
  witnesses : witness list;
  separations : witness list;
  certified : bool;
  certify_violation : (int * Rrfd.Fault_history.t) option;
  counters : Rrfd.Counters.t array;
}

let induced_history ~adversary ~n ~f ~rounds ~rng =
  let seed = Dsim.Rng.bits30 rng in
  let r =
    Msgnet.Round_layer.run ~seed ~adversary ~n ~f ~rounds
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
      ()
  in
  (r.Msgnet.Round_layer.induced, r.Msgnet.Round_layer.counters)

let ( let* ) = Result.bind

let predicates_of specs =
  List.fold_left
    (fun acc spec ->
      let* acc = acc in
      let* p = Spec.predicate spec in
      Ok ((spec, p) :: acc))
    (Ok []) specs
  |> Result.map List.rev

let conj_of named =
  match named with
  | [] -> Rrfd.Predicate.always
  | (_, first) :: rest ->
    List.fold_left (fun acc (_, p) -> Rrfd.Predicate.conj acc p) first rest

let predicate_of o =
  match predicates_of o.sound with
  | Ok named ->
    Rrfd.Predicate.make
      ~name:(String.concat " ∧ " o.conjuncts)
      ~doc:("derived from policy " ^ o.policy)
      (fun h -> Rrfd.Predicate.explain (conj_of named) h)
  | Error e -> invalid_arg ("Derive.predicate_of: " ^ e)

(* Enumeration-backed separation: the first history of the whole
   depth-1-then-depth-2 derived space violating [q].  Deterministic, so
   replay can re-run it and demand the identical history. *)
let find_separation ~n ~rounds ~derived ~q =
  let violates h = not (Rrfd.Predicate.holds q h) in
  let rec try_depth r =
    if r > min rounds 2 then None
    else
      match
        Adversary.Enumerate.find ~n ~rounds:r ~satisfying:derived ~f:violates
      with
      | Some h -> Some h
      | None -> try_depth (r + 1)
  in
  try_depth 1

(* Lattice dimensions: big enough that the parameterised candidates do
   not collapse (|D| ≤ f must not be vacuous, so n' > f + 1 where the
   space allows), small enough to enumerate.  At n' = 3 two rounds fit
   (≈ 1.2·10^5 histories); at n' = 4 only one does (the two-round space
   is ≈ 2.6·10^9). *)
let lattice_dims cfg =
  let n' = max 3 (min cfg.n (min 4 (cfg.f + 2))) in
  (n', if n' <= 3 then min cfg.rounds 2 else 1)

(* One lattice serves every derivation over the same vocabulary; the
   grid and the tests build it here once instead of per policy. *)
let lattice_for ~cfg =
  let* named = predicates_of (candidates ~n:cfg.n ~f:cfg.f) in
  let n, rounds = lattice_dims cfg in
  Ok (Rrfd.Submodel.lattice ~n ~rounds named)

let derive ?lattice ~cfg ~policy () =
  let* adversary = Spec.adversary policy in
  let cands = candidates ~n:cfg.n ~f:cfg.f in
  let* named = predicates_of cands in
  if List.length cands > 62 then invalid_arg "Derive.derive: > 62 candidates";
  if cfg.exhaustive && cfg.n > 4 then
    Error
      (Printf.sprintf
         "exhaustive tightness needs n <= 4 (the space is ((2^n-1)^n)^rounds); \
          got n=%d" cfg.n)
  else begin
    let preds = Array.of_list (List.map snd named) in
    let specs = Array.of_list cands in
    let lat =
      match lattice with
      | Some l -> l
      | None ->
        let n', rounds' = lattice_dims cfg in
        Rrfd.Submodel.lattice ~n:n' ~rounds:rounds' named
    in
    (* Observation pass: one violation bitmask per execution. *)
    let obs =
      Runtime.Campaign.run ?jobs:cfg.jobs ~seed:(observe_seed cfg)
        ~trials:cfg.observe_trials (fun ~trial:_ ~rng ->
          let h, counters =
            induced_history ~adversary ~n:cfg.n ~f:cfg.f ~rounds:cfg.rounds
              ~rng
          in
          let mask = ref 0 in
          Array.iteri
            (fun i p -> if not (Rrfd.Predicate.holds p h) then
                mask := !mask lor (1 lsl i))
            preds;
          (Rrfd.Fault_history.to_string_compact h, !mask, counters))
      |> Array.map (fun (c, m, k) -> (c, m, k))
    in
    let violated =
      Array.fold_left (fun acc (_, mask, _) -> acc lor mask) 0 obs
    in
    let sound = ref [] and refuted = ref [] in
    Array.iteri
      (fun i spec ->
        if violated land (1 lsl i) = 0 then sound := spec :: !sound
        else refuted := spec :: !refuted)
      specs;
    let sound = List.rev !sound and refuted = List.rev !refuted in
    (* One fuzz witness per refuted candidate: its lowest violating
       trial.  The history is an observed execution, so it satisfies
       every sound candidate — hence the derived predicate — by
       construction. *)
    let witnesses =
      List.map
        (fun spec ->
          let i =
            let rec idx j = if specs.(j) = spec then j else idx (j + 1) in
            idx 0
          in
          let rec first t =
            let _, mask, _ = obs.(t) in
            if mask land (1 lsl i) <> 0 then t else first (t + 1)
          in
          let trial = first 0 in
          let compact, _, _ = obs.(trial) in
          let history = Rrfd.Fault_history.of_string_compact compact in
          let reason =
            match Rrfd.Predicate.explain preds.(i) history with
            | Some r -> r
            | None -> "violation not reproducible from compact history"
          in
          { spec; source = Fuzz trial; history; reason })
        refuted
    in
    let conjuncts = Rrfd.Submodel.minimal_conjuncts lat sound in
    (* A refuted candidate whose lattice history set equals [true]'s is
       degenerate at the lattice size (e.g. crash-closure in a one-round
       space): its real strength is invisible there, so it must neither
       dominate the frontier nor be dominated out of it — list it
       alongside the ordered frontier instead. *)
    let degenerate, orderable =
      List.partition
        (fun s -> s <> "true" && Rrfd.Submodel.equivalent lat s "true")
        refuted
    in
    let frontier = Rrfd.Submodel.weakest lat orderable @ degenerate in
    let derived = conj_of (List.filter (fun (s, _) -> List.mem s sound) named) in
    (* Upward certificate: a fresh sharded campaign must find nothing. *)
    let certify_violation =
      Runtime.Campaign.search ?jobs:cfg.jobs ~seed:(certify_seed cfg)
        ~trials:cfg.certify_trials (fun ~trial ~rng ->
          let h, _ =
            induced_history ~adversary ~n:cfg.n ~f:cfg.f ~rounds:cfg.rounds
              ~rng
          in
          if Rrfd.Predicate.holds derived h then None else Some (trial, h))
    in
    (* Downward proof at small n: enumerate the whole derived space for a
       history escaping each frontier member. *)
    let separations =
      if not cfg.exhaustive then []
      else
        List.filter_map
          (fun spec ->
            let q = List.assoc spec named in
            match
              find_separation ~n:cfg.n ~rounds:cfg.rounds ~derived ~q
            with
            | None -> None
            | Some history ->
              let reason =
                match Rrfd.Predicate.explain q history with
                | Some r -> r
                | None -> "separation no longer violates the candidate"
              in
              Some { spec; source = Exhaustive; history; reason })
          frontier
    in
    Ok
      {
        policy;
        cfg;
        cands;
        sound;
        conjuncts;
        frontier;
        witnesses;
        separations;
        certified = certify_violation = None;
        certify_violation;
        counters = Array.map (fun (_, _, k) -> k) obs;
      }
  end

let tight o =
  let witnessed spec = List.exists (fun w -> w.spec = spec) o.witnesses in
  let separated spec = List.exists (fun w -> w.spec = spec) o.separations in
  List.for_all witnessed
    (List.filter (fun s -> not (List.mem s o.sound)) o.cands)
  && ((not o.cfg.exhaustive) || List.for_all separated o.frontier)

let ok o = o.certified && tight o

let pp ppf o =
  let open Format in
  fprintf ppf "@[<v>policy %s (n=%d f=%d rounds=%d seed=%d):@," o.policy
    o.cfg.n o.cfg.f o.cfg.rounds o.cfg.seed;
  fprintf ppf "  candidates searched: %d@," (List.length o.cands);
  fprintf ppf "  derived: %s@," (String.concat " ∧ " o.conjuncts);
  fprintf ppf "  sound (%d): %s@," (List.length o.sound)
    (String.concat ", " o.sound);
  fprintf ppf "  frontier (%d refuted, %d weakest): %s@,"
    (List.length o.witnesses) (List.length o.frontier)
    (String.concat ", " o.frontier);
  List.iter
    (fun w ->
      let tag =
        match w.source with
        | Fuzz t -> Printf.sprintf "fuzz trial %d" t
        | Exhaustive -> "exhaustive"
      in
      fprintf ppf "    %s refuted (%s): %s@," w.spec tag w.reason)
    o.witnesses;
  List.iter
    (fun w ->
      fprintf ppf "    %s separated by enumeration: %s  [%s]@," w.spec
        w.reason
        (Rrfd.Fault_history.to_string_compact w.history))
    o.separations;
  (match o.certify_violation with
  | None ->
    fprintf ppf "  certified: %d fresh executions, zero violations@,"
      o.cfg.certify_trials
  | Some (t, h) ->
    fprintf ppf "  NOT CERTIFIED: certification trial %d violates it: %s@," t
      (Rrfd.Fault_history.to_string_compact h));
  fprintf ppf "  tight: %s@]" (if tight o then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* Replayable artifacts (schema e26-derive/1).                         *)
(* ------------------------------------------------------------------ *)

let kind = "e26-derive"

let version = 1

let strings l = Json.List (List.map (fun s -> Json.String s) l)

let string_list json = List.map Json.str (Json.list json)

let witness_to_json w =
  Json.Obj
    (("spec", Json.String w.spec)
    :: (match w.source with
       | Fuzz t -> [ ("source", Json.String "fuzz"); ("trial", Json.Number (float_of_int t)) ]
       | Exhaustive -> [ ("source", Json.String "exhaustive") ])
    @ [
        ("history", Json.String (Rrfd.Fault_history.to_string_compact w.history));
        ("reason", Json.String w.reason);
      ])

let witness_of_json json =
  let spec = Json.str (Json.member "spec" json) in
  let source =
    match Json.str (Json.member "source" json) with
    | "fuzz" -> Fuzz (Json.int (Json.member "trial" json))
    | "exhaustive" -> Exhaustive
    | s -> raise (Json.Error ("unknown witness source " ^ s))
  in
  let history =
    Rrfd.Fault_history.of_string_compact (Json.str (Json.member "history" json))
  in
  let reason = Json.str (Json.member "reason" json) in
  { spec; source; history; reason }

let to_json o =
  Json.Obj
    [
      ("version", Json.Number (float_of_int version));
      ("kind", Json.String kind);
      ("policy", Json.String o.policy);
      ("n", Json.Number (float_of_int o.cfg.n));
      ("f", Json.Number (float_of_int o.cfg.f));
      ("rounds", Json.Number (float_of_int o.cfg.rounds));
      ("observe_trials", Json.Number (float_of_int o.cfg.observe_trials));
      ("certify_trials", Json.Number (float_of_int o.cfg.certify_trials));
      ("exhaustive", Json.Bool o.cfg.exhaustive);
      (* Seeds can be 63-bit (derived per grid row); a JSON double only
         holds 53, so carry the seed as a decimal string. *)
      ("seed", Json.String (string_of_int o.cfg.seed));
      ("candidates", strings o.cands);
      ("sound", strings o.sound);
      ("conjuncts", strings o.conjuncts);
      ("frontier", strings o.frontier);
      ("witnesses", Json.List (List.map witness_to_json o.witnesses));
      ("separations", Json.List (List.map witness_to_json o.separations));
      ("certified", Json.Bool o.certified);
      ( "certify_violation",
        match o.certify_violation with
        | None -> Json.Null
        | Some (t, h) ->
          Json.Obj
            [
              ("trial", Json.Number (float_of_int t));
              ("history", Json.String (Rrfd.Fault_history.to_string_compact h));
            ] );
    ]

let of_json json =
  try
    let v = Json.int (Json.member "version" json) in
    let k = Json.str (Json.member "kind" json) in
    if k <> kind then Error (Printf.sprintf "expected kind %s, got %s" kind k)
    else if v <> version then
      Error (Printf.sprintf "unsupported %s version %d" kind v)
    else
      let seed =
        match int_of_string_opt (Json.str (Json.member "seed" json)) with
        | Some s -> s
        | None -> raise (Json.Error "seed is not a decimal integer")
      in
      let cfg =
        {
          n = Json.int (Json.member "n" json);
          f = Json.int (Json.member "f" json);
          rounds = Json.int (Json.member "rounds" json);
          observe_trials = Json.int (Json.member "observe_trials" json);
          certify_trials = Json.int (Json.member "certify_trials" json);
          exhaustive = Json.bool (Json.member "exhaustive" json);
          seed;
          jobs = None;
        }
      in
      Ok
        {
          policy = Json.str (Json.member "policy" json);
          cfg;
          cands = string_list (Json.member "candidates" json);
          sound = string_list (Json.member "sound" json);
          conjuncts = string_list (Json.member "conjuncts" json);
          frontier = string_list (Json.member "frontier" json);
          witnesses =
            List.map witness_of_json (Json.list (Json.member "witnesses" json));
          separations =
            List.map witness_of_json
              (Json.list (Json.member "separations" json));
          certified = Json.bool (Json.member "certified" json);
          certify_violation =
            (match Json.member "certify_violation" json with
            | Json.Null -> None
            | cv ->
              Some
                ( Json.int (Json.member "trial" cv),
                  Rrfd.Fault_history.of_string_compact
                    (Json.str (Json.member "history" cv)) ));
          counters = [||];
        }
  with
  | Json.Error e -> Error ("malformed e26-derive artifact: " ^ e)
  | Invalid_argument e -> Error ("malformed e26-derive artifact: " ^ e)

let save path o = Report.save_json path (to_json o)

let load path =
  match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
  | json -> of_json json
  | exception Json.Error e -> Error ("malformed JSON in " ^ path ^ ": " ^ e)
  | exception Sys_error e -> Error e

type replay = {
  loaded : outcome;
  witnesses_valid : bool;
  fuzz_reproduced : bool;
  separations_valid : bool;
}

let replay o =
  let* adversary = Spec.adversary o.policy in
  let* named = predicates_of o.cands in
  let* sound_named = predicates_of o.sound in
  let derived = conj_of sound_named in
  let pair_valid w =
    Rrfd.Predicate.holds derived w.history
    && not (Rrfd.Predicate.holds (List.assoc w.spec named) w.history)
  in
  let witnesses_valid =
    List.for_all pair_valid o.witnesses && List.for_all pair_valid o.separations
  in
  let fuzz_reproduced =
    List.for_all
      (fun w ->
        match w.source with
        | Exhaustive -> true
        | Fuzz trial ->
          let rng = Dsim.Rng.derive ~seed:(observe_seed o.cfg) ~stream:trial in
          let h, _ =
            induced_history ~adversary ~n:o.cfg.n ~f:o.cfg.f
              ~rounds:o.cfg.rounds ~rng
          in
          Rrfd.Fault_history.equal h w.history)
      o.witnesses
  in
  let separations_valid =
    List.for_all
      (fun w ->
        let q = List.assoc w.spec named in
        match find_separation ~n:o.cfg.n ~rounds:o.cfg.rounds ~derived ~q with
        | Some h -> Rrfd.Fault_history.equal h w.history
        | None -> false)
      o.separations
  in
  Ok { loaded = o; witnesses_valid; fuzz_reproduced; separations_valid }

let reproduced r =
  r.witnesses_valid && r.fuzz_reproduced && r.separations_valid
