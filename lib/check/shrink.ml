module H = Rrfd.Fault_history

(* D(i,r) = S is structurally impossible in the model (not every process
   can be late, paper §2), and the engine rejects it with an exception
   rather than a recorded violation — so no candidate may contain a full
   fault set.  Round drops and element removals only ever shrink sets, but
   removing a process can promote a proper subset to the full set of the
   smaller system, so those candidates get filtered. *)
let well_formed h =
  let n = H.n h in
  let full = Rrfd.Pset.full n in
  let ok = ref true in
  for round = 1 to H.rounds h do
    for proc = 0 to n - 1 do
      if Rrfd.Pset.equal (H.d h ~proc ~round) full then ok := false
    done
  done;
  !ok

let candidates h =
  let n = H.n h in
  let rounds = H.rounds h in
  let drop_rounds =
    List.init rounds (fun i -> H.drop_round h ~round:(rounds - i))
  in
  let drop_procs =
    if n <= 1 then []
    else
      List.filter well_formed
        (List.init n (fun i -> H.remove_proc h ~proc:(n - 1 - i)))
  in
  let drop_elements =
    List.concat
      (List.init rounds (fun r ->
           let round = r + 1 in
           List.concat
             (List.init n (fun proc ->
                  let d = H.d h ~proc ~round in
                  List.map
                    (fun e -> H.update h ~round ~proc (Rrfd.Pset.remove e d))
                    (Rrfd.Pset.to_list d)))))
  in
  drop_rounds @ drop_procs @ drop_elements

let minimize ~satisfying ~still_fails h =
  let accept c = Rrfd.Predicate.holds satisfying c && still_fails c in
  let rec loop h steps =
    match List.find_opt accept (candidates h) with
    | Some c -> loop c (steps + 1)
    | None -> (h, steps)
  in
  loop h 0
