(** The schedule-space model checker.

    Two search modes over the space of predicate-satisfying fault
    histories, both hunting for one that makes a {!Sut} violate a
    {!Property}:

    - {!fuzz} — Monte-Carlo: [trials] independent trials, each drawing a
      history ({!Gen}, or a constructive {!Rrfd.Detector} generator) from a
      per-trial RNG derived from [(seed, trial)].  Trials run across
      domains through {!Runtime.Campaign.search}, and the reported
      counterexample is always the one of the lowest failing trial index —
      bit-identical at every [-j].
    - {!exhaustive} — small-scope: every history of the given size, via
      {!Adversary.Enumerate}, sharded across domains by first-round
      assignment through {!Runtime.Pool.search} with the same
      deterministic-first-hit guarantee.

    Either way the raw failing history is handed to {!Shrink.minimize}, so
    what comes out is a minimal legal history refuting the property. *)

type counterexample = {
  sut : string;  (** {!Sut.name} of the refuted system. *)
  n : int;  (** System size after shrinking. *)
  inputs : int array;  (** The inputs used ([Tasks.Inputs.distinct n]). *)
  history : Rrfd.Fault_history.t;  (** Minimal predicate-satisfying history. *)
  property : string;  (** Name of the violated property. *)
  failure : string;  (** The property's violation message. *)
  decisions : int option array;  (** Decision vector under [history]. *)
  trial : int;  (** Failing trial index; [-1] for exhaustive mode. *)
  shrink_steps : int;  (** Accepted shrink steps. *)
}

type fuzz_config = {
  n : int;  (** System size to fuzz at. *)
  rounds : int;  (** History length to draw. *)
  trials : int;
  seed : int;
  jobs : int option;  (** Worker domains; [None] = all cores. *)
  attempts : int;  (** Per-round rejection budget ({!Gen.history}). *)
}

val test_history :
  sut:Sut.t ->
  predicate:Rrfd.Predicate.t ->
  properties:Property.t list ->
  Rrfd.Fault_history.t ->
  Property.obs * (Property.t * string) option
(** Replay one pinned history and evaluate the properties.  A history whose
    replay trips the engine's online predicate check is never counted as a
    property failure (that would blame the algorithm for an illegal
    adversary). *)

val fuzz :
  fuzz_config ->
  sut:Sut.t ->
  predicate:Rrfd.Predicate.t ->
  ?generator:(Dsim.Rng.t -> n:int -> Rrfd.Detector.t) ->
  properties:Property.t list ->
  unit ->
  counterexample option
(** Monte-Carlo search.  Without [generator], histories are
    rejection-sampled against the predicate; with it, each trial runs the
    SUT live under [generator rng ~n] (constructive sampling) and the
    produced history is the candidate ({!Rrfd.Detector_gen} generators
    match their predicates by construction).  Returns the shrunk counterexample
    of the lowest failing trial, or [None] if no trial failed. *)

val exhaustive :
  ?jobs:int ->
  n:int ->
  rounds:int ->
  sut:Sut.t ->
  predicate:Rrfd.Predicate.t ->
  properties:Property.t list ->
  unit ->
  counterexample option
(** Exhaustive small-scope search over every [rounds]-round [n]-process
    history satisfying the predicate.  The space is
    [((2^n − 1)^n)^rounds] before pruning — keep [n ≤ 4] and
    [rounds ≤ 2], like E13/E14 do. *)
