type counterexample = {
  sut : string;
  n : int;
  inputs : int array;
  history : Rrfd.Fault_history.t;
  property : string;
  failure : string;
  decisions : int option array;
  trial : int;
  shrink_steps : int;
}

type fuzz_config = {
  n : int;
  rounds : int;
  trials : int;
  seed : int;
  jobs : int option;
  attempts : int;
}

let test_history ~sut ~predicate ~properties history =
  let obs = Sut.run_history sut ~check:predicate history in
  match obs.Property.violation with
  | Some _ -> (obs, None)
  | None -> (obs, Property.first_failure properties obs)

(* Shrink a raw failing history and package the result.  Re-runs the SUT on
   the minimal history one last time so the recorded failure message and
   decision vector describe exactly what the artifact will replay. *)
let finish ~sut ~predicate ~properties ~trial raw =
  let still_fails h =
    snd (test_history ~sut ~predicate ~properties h) <> None
  in
  let history, shrink_steps = Shrink.minimize ~satisfying:predicate ~still_fails raw in
  let obs, failure = test_history ~sut ~predicate ~properties history in
  match failure with
  | None ->
    (* [minimize] only accepts still-failing candidates and [raw] failed, so
       the fixed point must fail too. *)
    assert false
  | Some (prop, msg) ->
    {
      sut = Sut.name sut;
      n = obs.Property.n;
      inputs = obs.Property.inputs;
      (* Record the executed history, not the shrunk input: replay pads a
         short history with failure-free rounds up to the SUT's horizon
         ({!Sut.run_history}), and the artifact should show exactly the
         rounds that ran. *)
      history = obs.Property.history;
      property = Property.name prop;
      failure = msg;
      decisions = obs.Property.decisions;
      trial;
      shrink_steps;
    }

let fuzz config ~sut ~predicate ?generator ~properties () =
  (* The candidate carries its own trial index so the artifact can name the
     exact stream a reader needs to reproduce the raw (pre-shrink) find. *)
  let candidate ~trial ~rng =
    let raw =
      match generator with
      | None ->
        Gen.history ~attempts:config.attempts rng ~n:config.n
          ~rounds:config.rounds ~satisfying:predicate
      | Some gen ->
        (* Constructive sampling: run the SUT live under the generated
           detector and take the history it produced.  The engine's online
           check guards against a generator straying off its predicate. *)
        let detector = gen rng ~n:config.n in
        let obs =
          Sut.run sut ~n:config.n ~max_rounds:config.rounds ~check:predicate
            ~detector
        in
        if obs.Property.violation <> None then None
        else Some obs.Property.history
    in
    match raw with
    | None -> None
    | Some h ->
      if snd (test_history ~sut ~predicate ~properties h) <> None then
        Some (trial, h)
      else None
  in
  Runtime.Campaign.search ?jobs:config.jobs ~seed:config.seed
    ~trials:config.trials candidate
  |> Option.map (fun (trial, raw) ->
         finish ~sut ~predicate ~properties ~trial raw)

let exhaustive ?jobs ~n ~rounds ~sut ~predicate ~properties () =
  let fails h = snd (test_history ~sut ~predicate ~properties h) <> None in
  let raw =
    if rounds = 0 then begin
      let empty = Rrfd.Fault_history.empty ~n in
      if Rrfd.Predicate.holds predicate empty && fails empty then Some empty
      else None
    end
    else begin
      (* Shard by first-round assignment: each domain owns the subtree under
         one assignment, and Pool.search keeps "first counterexample" equal
         to the serial enumeration order at every -j. *)
      let tops = Array.of_list (Adversary.Enumerate.round_assignments ~n) in
      Runtime.Pool.search ?jobs ~n:(Array.length tops) (fun idx ->
          let prefix = Rrfd.Fault_history.of_rounds ~n [ tops.(idx) ] in
          if not (Rrfd.Predicate.holds predicate prefix) then None
          else
            Adversary.Enumerate.find_extension ~prefix ~rounds
              ~satisfying:predicate ~f:fails)
    end
  in
  Option.map (fun raw -> finish ~sut ~predicate ~properties ~trial:(-1) raw) raw
