(** Systems under test: an algorithm packaged for the model checker.

    A SUT hides the algorithm's state and message types behind two closures
    — one producing a {!Property.obs} through {!Rrfd.Engine.run}, one
    rendering a full {!Rrfd.Trace} transcript — so the checker can drive any
    of the repo's protocols uniformly.  Inputs are always
    [Tasks.Inputs.distinct n] (every process proposes its own id, the
    hardest case for agreement), which keeps counterexamples meaningful
    after the shrinker merges processes away. *)

type t

val name : t -> string

val rounds : t -> int
(** Rounds the protocol needs to terminate — the default history length the
    fuzzer draws. *)

val make :
  name:string ->
  rounds:int ->
  pp_msg:(Format.formatter -> 'm -> unit) ->
  ?pp_out:(Format.formatter -> int -> unit) ->
  (inputs:int array -> ('s, 'm, int) Rrfd.Algorithm.t) ->
  t
(** [make ~name ~rounds ~pp_msg algo] packages [algo].  [pp_out] renders
    decisions in transcripts (default: plain int). *)

val of_protocol : Protocols.Catalog.t -> t
(** Derive a SUT from a protocol-catalog entry — name, horizon (at the
    entry's default [n]/[f]) and printers come from the catalog, the run
    closures drive the catalog's engine/network runners.  This is how
    every stock SUT is defined; the catalog is the single definition site
    for algorithms. *)

val default_inputs : n:int -> int array
(** [Tasks.Inputs.distinct n]. *)

val run :
  t ->
  n:int ->
  max_rounds:int ->
  check:Rrfd.Predicate.t ->
  detector:Rrfd.Detector.t ->
  Property.obs
(** One execution, observed.  The engine stops when every process decided
    or after [max_rounds] rounds, and re-checks [check] online so a
    detector straying outside its predicate is reported in
    [obs.violation]. *)

val run_network :
  t ->
  n:int ->
  f:int ->
  seed:int ->
  adversary:Msgnet.Adversary.t ->
  Property.obs
(** One execution over the fault-injected asynchronous network
    ({!Msgnet.Round_layer} with [adversary]) instead of the abstract
    engine, observed through the extracted heard-of history — so the same
    {!Property} vocabulary judges network runs.  [obs.violation] reports
    any breach of the layer's own guarantee, [async:f] (P3). *)

val run_history :
  t -> check:Rrfd.Predicate.t -> Rrfd.Fault_history.t -> Property.obs
(** Replay a pinned fault history ({!Rrfd.Detector.of_schedule}).  A
    history shorter than the SUT's horizon is padded with failure-free
    rounds up to {!rounds} — so shrinking a round away means "the adversary
    goes quiet", never "the protocol is starved of rounds" — and the
    engine's online check rejects paddings the predicate forbids.
    Deterministic: equal histories produce equal observations, which is
    what makes counterexample replay and shrinking sound. *)

val pp_out : t -> Format.formatter -> int -> unit

val transcript :
  t -> check:Rrfd.Predicate.t -> Rrfd.Fault_history.t -> string
(** The rendered {!Rrfd.Trace} of replaying the history — what
    [check --replay] prints. *)

(** {1 Stock systems} *)

val kset_one_round : t
(** Theorem 3.1's one-round algorithm ({!Rrfd.Kset.one_round}). *)

val consensus : t
(** The same algorithm run for consensus ({!Rrfd.Kset.consensus}). *)

val adopt_commit : t
(** The two-round adopt-commit protocol ({!Rrfd.Adopt_commit.algorithm}),
    decisions packed through {!Property.encode_outcome}. *)
