(** Greedy counterexample shrinking over fault histories.

    A raw failing history from the fuzzer is noisy: extra rounds, extra
    processes, bloated fault sets.  The shrinker walks a candidate ladder —
    drop a round, remove a process, drop one element from one [D(i,r)] —
    and greedily accepts any candidate that {e still satisfies the
    predicate} and {e still fails the property}, restarting from the top
    until no candidate is accepted.  Predicate re-validation at every step
    is what keeps the minimised history a legal execution of the model
    under test, not just a small failing input. *)

val candidates : Rrfd.Fault_history.t -> Rrfd.Fault_history.t list
(** One-step reductions of a history, most aggressive first: round drops
    (last round first), then process removals (only when [n > 1], and only
    those the engine accepts — removal may promote a proper subset to
    [D = S] of the smaller system, and such candidates are dropped), then
    single-element removals from individual fault sets.  Every candidate is
    strictly smaller in (rounds, processes, total fault-set size). *)

val minimize :
  satisfying:Rrfd.Predicate.t ->
  still_fails:(Rrfd.Fault_history.t -> bool) ->
  Rrfd.Fault_history.t ->
  Rrfd.Fault_history.t * int
(** [minimize ~satisfying ~still_fails h] greedily minimises [h], returning
    the fixed point and the number of accepted shrink steps.  [still_fails]
    must be deterministic; [h] itself is assumed to satisfy the predicate
    and fail the property.  The result is 1-minimal: no single candidate
    step keeps both the predicate and the failure. *)
