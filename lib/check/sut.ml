type t = {
  name : string;
  rounds : int;
  pp_out : Format.formatter -> int -> unit;
  run_fn :
    n:int ->
    max_rounds:int ->
    check:Rrfd.Predicate.t ->
    detector:Rrfd.Detector.t ->
    Property.obs;
  transcript_fn :
    n:int ->
    max_rounds:int ->
    check:Rrfd.Predicate.t ->
    detector:Rrfd.Detector.t ->
    string;
  network_fn :
    n:int ->
    f:int ->
    seed:int ->
    adversary:Msgnet.Adversary.t ->
    Property.obs;
}

let name sut = sut.name

let rounds sut = sut.rounds

let pp_out sut = sut.pp_out

let default_inputs ~n = Tasks.Inputs.distinct n

let obs_of_outcome ~n ~inputs (outcome : int Rrfd.Engine.outcome) =
  {
    Property.n;
    inputs;
    decisions = outcome.Rrfd.Engine.decisions;
    decision_rounds = outcome.Rrfd.Engine.decision_rounds;
    rounds_used = outcome.Rrfd.Engine.rounds_used;
    history = outcome.Rrfd.Engine.history;
    violation = outcome.Rrfd.Engine.violation;
  }

let make ~name ~rounds ~pp_msg ?(pp_out = Format.pp_print_int) algo =
  {
    name;
    rounds;
    pp_out;
    run_fn =
      (fun ~n ~max_rounds ~check ~detector ->
        let inputs = default_inputs ~n in
        let outcome =
          Rrfd.Engine.run ~n ~max_rounds ~check ~algorithm:(algo ~inputs)
            ~detector ()
        in
        obs_of_outcome ~n ~inputs outcome);
    transcript_fn =
      (fun ~n ~max_rounds ~check ~detector ->
        let inputs = default_inputs ~n in
        let trace =
          Rrfd.Trace.record ~n ~max_rounds ~check ~pp_msg
            ~algorithm:(algo ~inputs) ~detector ()
        in
        Format.asprintf "@[<v>%a@]" (Rrfd.Trace.pp pp_out) trace);
    network_fn =
      (fun ~n ~f ~seed ~adversary ->
        let inputs = default_inputs ~n in
        let r : int Msgnet.Round_layer.result =
          Msgnet.Round_layer.run ~seed ~adversary ~n ~f ~rounds
            ~algorithm:(algo ~inputs) ()
        in
        {
          Property.n;
          inputs;
          decisions = r.decisions;
          (* A process that decided did so at its last completed round:
             the round layer's decisions are read off final states. *)
          decision_rounds =
            Array.init n (fun i ->
                match r.decisions.(i) with
                | None -> None
                | Some _ -> Some (max 1 r.completed.(i)));
          rounds_used = Rrfd.Fault_history.rounds r.induced;
          history = r.induced;
          violation =
            Rrfd.Predicate.explain (Rrfd.Predicate.async_resilient ~f)
              r.induced;
        });
  }

let run sut ~n ~max_rounds ~check ~detector =
  sut.run_fn ~n ~max_rounds ~check ~detector

let run_network sut ~n ~f ~seed ~adversary =
  sut.network_fn ~n ~f ~seed ~adversary

(* Replay a pinned history, padded with failure-free rounds up to the
   protocol's horizon.  Without the padding, shrinking away a round of a
   multi-round protocol would starve it of rounds and every candidate would
   "fail" by trivial non-termination; with it, a shortened history means
   "the adversary goes quiet", and the online predicate check rejects
   paddings the model forbids (e.g. crash-closure never lets the adversary
   unsuspect anyone). *)
let pinned_detector ~n ~sut_rounds history =
  let pinned = Rrfd.Fault_history.rounds history in
  let schedule =
    List.init pinned (fun r ->
        Rrfd.Fault_history.round_sets history ~round:(r + 1))
  in
  let after = Array.make n Rrfd.Pset.empty in
  (Rrfd.Detector.of_schedule ~after schedule, max pinned sut_rounds)

let run_history sut ~check history =
  let n = Rrfd.Fault_history.n history in
  let detector, max_rounds = pinned_detector ~n ~sut_rounds:sut.rounds history in
  sut.run_fn ~n ~max_rounds ~check ~detector

let transcript sut ~check history =
  let n = Rrfd.Fault_history.n history in
  let detector, max_rounds = pinned_detector ~n ~sut_rounds:sut.rounds history in
  sut.transcript_fn ~n ~max_rounds ~check ~detector

(* Derivation from the protocol catalog: the single definition site for
   algorithms.  The closures reproduce [make]'s observations exactly — the
   engine path is the same [Rrfd.Engine.run] call, and the network path
   reads decision rounds off the completion record the same way. *)
let of_protocol p =
  let obs_of_execution ~n ~inputs (ex : int Rrfd.Substrate.execution) =
    {
      Property.n;
      inputs;
      decisions = ex.Rrfd.Substrate.decisions;
      decision_rounds = ex.Rrfd.Substrate.decision_rounds;
      rounds_used = ex.Rrfd.Substrate.rounds_used;
      history = ex.Rrfd.Substrate.induced;
      violation = ex.Rrfd.Substrate.violation;
    }
  in
  let default_n = Protocols.Catalog.default_n p in
  {
    name = Protocols.Catalog.name p;
    rounds =
      Protocols.Catalog.horizon p ~n:default_n
        ~f:(Protocols.Catalog.default_f p ~n:default_n);
    pp_out = Protocols.Catalog.pp_out p;
    run_fn =
      (fun ~n ~max_rounds ~check ~detector ->
        let inputs = default_inputs ~n in
        let ex =
          Protocols.Catalog.run_engine p ~inputs ~check ~max_rounds ~n
            ~f:(Protocols.Catalog.default_f p ~n) ~detector ()
        in
        obs_of_execution ~n ~inputs ex);
    transcript_fn =
      (fun ~n ~max_rounds ~check ~detector ->
        Protocols.Catalog.transcript p ~check ~n
          ~f:(Protocols.Catalog.default_f p ~n) ~max_rounds ~detector ());
    network_fn =
      (fun ~n ~f ~seed ~adversary ->
        let inputs = default_inputs ~n in
        let ex =
          Protocols.Catalog.run_msgnet p ~inputs ~adversary ~seed ~n ~f
            ~rounds:
              (Protocols.Catalog.horizon p ~n:default_n
                 ~f:(Protocols.Catalog.default_f p ~n:default_n))
            ()
        in
        {
          (obs_of_execution ~n ~inputs ex) with
          (* A process that decided did so at its last completed round:
             the round layer's decisions are read off final states. *)
          Property.decision_rounds =
            Array.init n (fun i ->
                match ex.Rrfd.Substrate.decisions.(i) with
                | None -> None
                | Some _ -> Some (max 1 ex.Rrfd.Substrate.completed.(i)));
          violation =
            Rrfd.Predicate.explain (Rrfd.Predicate.async_resilient ~f)
              ex.Rrfd.Substrate.induced;
        });
  }

let kset_one_round = of_protocol (Protocols.Catalog.find_exn "kset-one-round")

let consensus = of_protocol (Protocols.Catalog.find_exn "consensus")

let adopt_commit = of_protocol (Protocols.Catalog.find_exn "adopt-commit")
