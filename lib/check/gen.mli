(** Random fault histories conditioned on a predicate.

    The fuzzer's history source: rounds are drawn from a mix of styles
    (sparse, shared-base, wild) chosen to land inside the interesting
    predicates reasonably often, then rejection-sampled round by round
    against the target {!Rrfd.Predicate}.  Per-round rejection is sound
    because every predicate in the paper is prefix-closed: a prefix that
    already violates can never be extended into a satisfying history.

    All draws flow through an explicit {!Dsim.Rng.t}, so a trial is
    reproducible from its derived seed at any [-j]. *)

val round_sets : Dsim.Rng.t -> n:int -> Rrfd.Pset.t array
(** One unconstrained round: a fault set per process, never the full
    system (the engine rejects [D(i,r) = S]). *)

val history :
  ?attempts:int ->
  Dsim.Rng.t ->
  n:int ->
  rounds:int ->
  satisfying:Rrfd.Predicate.t ->
  Rrfd.Fault_history.t option
(** [history rng ~n ~rounds ~satisfying] draws a [rounds]-round history
    every prefix of which satisfies the predicate, retrying each round up
    to [attempts] (default 64) times before giving up on the trial ([None]
    — the caller just moves on to the next trial's RNG stream). *)
