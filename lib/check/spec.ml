(* Spec strings: [name] or [name:k1=v1,k2=v2].  Parameters are small
   non-negative ints. *)

let parse spec =
  match String.index_opt spec ':' with
  | None -> Ok (spec, [])
  | Some i ->
    let name = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    let parse_pair acc pair =
      match acc with
      | Error _ as e -> e
      | Ok params -> (
        match String.split_on_char '=' pair with
        | [ key; value ] -> (
          match int_of_string_opt value with
          | Some v when v >= 0 -> Ok ((key, v) :: params)
          | _ -> Error (Printf.sprintf "%S: %S is not a non-negative int" spec value))
        | _ -> Error (Printf.sprintf "%S: expected key=value, got %S" spec pair))
    in
    List.fold_left parse_pair (Ok []) (String.split_on_char ',' rest)
    |> Result.map (fun params -> (name, params))

let param params key ~default =
  match List.assoc_opt key params with Some v -> v | None -> default

let predicate_names =
  "true, no-self, not-all-faulty, crash-closure, someone-seen, antisym, \
   omission:f=_, crash:f=_, async:f=_, async-mixed:f=_,t=_, shm:f=_, \
   shm-alt:f=_, snapshot:f=_, kset:k=_, eq5, detector-s, byz-round:f=_, \
   honest-kernel:k=_"

let predicate spec =
  Result.bind (parse spec) (fun (name, params) ->
      let f = param params "f" ~default:1 in
      let k = param params "k" ~default:2 in
      let t = param params "t" ~default:2 in
      match name with
      | "true" | "always" -> Ok Rrfd.Predicate.always
      | "no-self" -> Ok Rrfd.Predicate.no_self_suspicion
      | "not-all-faulty" -> Ok Rrfd.Predicate.not_all_faulty
      | "crash-closure" -> Ok Rrfd.Predicate.crash_closure
      | "someone-seen" -> Ok Rrfd.Predicate.someone_seen_by_all
      | "antisym" -> Ok Rrfd.Predicate.antisymmetric_misses
      | "omission" -> Ok (Rrfd.Predicate.omission ~f)
      | "crash" -> Ok (Rrfd.Predicate.crash ~f)
      | "async" -> Ok (Rrfd.Predicate.async_resilient ~f)
      | "async-mixed" -> Ok (Rrfd.Predicate.async_mixed ~f ~t)
      | "shm" -> Ok (Rrfd.Predicate.shared_memory ~f)
      | "shm-alt" -> Ok (Rrfd.Predicate.shared_memory_alt ~f)
      | "snapshot" -> Ok (Rrfd.Predicate.snapshot ~f)
      | "kset" -> Ok (Rrfd.Predicate.k_set ~k)
      | "eq5" | "identical" -> Ok Rrfd.Predicate.identical_views
      | "detector-s" | "dets" -> Ok Rrfd.Predicate.detector_s
      (* Byzantine-aware (E24): judge the fused silent∪lied history from
         Heard_of.to_byz_history rather than a plain heard-of complement. *)
      | "byz-round" -> Ok (Rrfd.Predicate.byzantine_round_bound ~f)
      | "honest-kernel" -> Ok (Rrfd.Predicate.eventual_honest_kernel ~k)
      | _ ->
        Error
          (Printf.sprintf "unknown predicate %S, expected one of: %s" spec
             predicate_names))

let generator_names =
  "omission:f=_, crash:f=_, async:f=_, async-mixed:f=_,t=_, shm:f=_, \
   snapshot:f=_, kset:k=_, antisym:f=_, eq5, detector-s"

let generator spec =
  Result.bind (parse spec) (fun (name, params) ->
      let f = param params "f" ~default:1 in
      let k = param params "k" ~default:2 in
      let t = param params "t" ~default:2 in
      let open Rrfd.Detector_gen in
      match name with
      | "omission" ->
        Ok ((fun rng ~n -> omission rng ~n ~f), Rrfd.Predicate.omission ~f)
      | "crash" -> Ok ((fun rng ~n -> crash rng ~n ~f), Rrfd.Predicate.crash ~f)
      | "async" ->
        Ok ((fun rng ~n -> async rng ~n ~f), Rrfd.Predicate.async_resilient ~f)
      | "async-mixed" ->
        Ok
          ( (fun rng ~n -> async_mixed rng ~n ~f ~t),
            Rrfd.Predicate.async_mixed ~f ~t )
      | "shm" ->
        Ok
          ( (fun rng ~n -> shared_memory rng ~n ~f),
            Rrfd.Predicate.shared_memory ~f )
      | "snapshot" | "iis" ->
        Ok ((fun rng ~n -> iis rng ~n ~f), Rrfd.Predicate.snapshot ~f)
      | "kset" -> Ok ((fun rng ~n -> k_set rng ~n ~k), Rrfd.Predicate.k_set ~k)
      | "antisym" ->
        Ok
          ( (fun rng ~n -> antisymmetric rng ~n ~f),
            Rrfd.Predicate.(
              conj (async_resilient ~f) antisymmetric_misses) )
      | "eq5" | "identical" ->
        Ok ((fun rng ~n -> identical rng ~n), Rrfd.Predicate.identical_views)
      | "detector-s" | "dets" ->
        Ok ((fun rng ~n -> detector_s rng ~n), Rrfd.Predicate.detector_s)
      | _ ->
        Error
          (Printf.sprintf "unknown generator %S, expected one of: %s" spec
             generator_names))

(* SUT names are the protocol catalog's: registering a protocol there is
   all it takes to make it checkable. *)
let sut_names = String.concat ", " Protocols.Catalog.names

let sut spec =
  match Protocols.Catalog.find spec with
  | Some p -> Ok (Sut.of_protocol p)
  | None ->
    Error (Printf.sprintf "unknown sut %S, expected one of: %s" spec sut_names)

let property_names =
  "agreement, k-agreement:k=_, validity, termination, adopt-commit"

let property spec =
  Result.bind (parse spec) (fun (name, params) ->
      match name with
      | "agreement" -> Ok Property.agreement
      | "k-agreement" ->
        Ok (Property.k_agreement ~k:(param params "k" ~default:2))
      | "validity" -> Ok Property.validity
      | "termination" -> Ok Property.termination
      | "adopt-commit" -> Ok Property.adopt_commit_coherence
      | _ ->
        Error
          (Printf.sprintf "unknown property %S, expected one of: %s" spec
             property_names))

(* Adversary policies share the same [name:k=v,...] grammar; the parser
   lives in Msgnet.Adversary (msgnet cannot depend on check) and this is
   the vocabulary's front door for the CLI and artifacts. *)
let adversary_names = Msgnet.Adversary.spec_names

let adversary spec = Msgnet.Adversary.of_spec spec

let default_properties s =
  match Protocols.Catalog.find (Sut.name s) with
  | Some p -> Protocols.Catalog.properties p
  | None -> [ "termination"; "validity"; "agreement" ]
