(** Counterexample artifacts: serialize, reload, re-execute.

    A counterexample is only worth anything if it survives the process that
    found it, so the checker persists each one as a small JSON document
    (schema {!version}): the spec strings that configured the run, the
    minimal history in {!Rrfd.Fault_history.to_string_compact} form, and
    the decision vector observed on it.  {!replay} reconstructs everything
    from the specs and re-executes the history deterministically — the
    replayed decision vector must match the recorded one bit for bit, at
    any [-j], or the artifact (or the code under test) has drifted. *)

type t = {
  version : int;
  sut : string;  (** {!Spec.sut} string. *)
  predicate : string;  (** {!Spec.predicate} string. *)
  properties : string list;  (** {!Spec.property} strings. *)
  seed : int;  (** Seed of the finding run ([0] for exhaustive). *)
  counterexample : Checker.counterexample;
}

val version : int
(** Current schema version (1). *)

val make :
  sut_spec:string ->
  predicate_spec:string ->
  property_specs:string list ->
  seed:int ->
  Checker.counterexample ->
  t

val record :
  sut_spec:string ->
  ?predicate_spec:string ->
  ?seed:int ->
  n:int ->
  history:Rrfd.Fault_history.t ->
  unit ->
  (t, string) result
(** Package an {e observed} history (e.g. one extracted from a live run)
    in the same artifact format, so [check --replay] validates recordings
    and counterexamples alike.  The decision vector is computed through
    {!Checker.test_history} — the exact path {!replay} re-executes — so a
    recording reproduces by construction; its empty [failure] field marks
    that the replay is expected to pass every property.
    [predicate_spec] defaults to ["true"]; [Error] if the spec strings do
    not parse or the history violates the predicate on replay. *)

val to_json : t -> Report.Json.t

val of_json : Report.Json.t -> t
(** @raise Report.Json.Error on shape or version mismatch. *)

val save : string -> t -> unit
(** Pretty-printed, trailing newline — artifacts are meant to be read. *)

val load : string -> t
(** @raise Report.Json.Error on malformed content; [Sys_error] on I/O
    failure. *)

type replay = {
  obs : Property.obs;  (** The re-execution. *)
  failure : (string * string) option;
      (** Violated property (name, message) on replay, if any. *)
  failure_expected : bool;
      (** Whether the artifact recorded a failure (a counterexample) or a
          clean observation (a {!record}ing, empty [failure] field). *)
  decisions_match : bool;
      (** Replayed decision vector identical to the recorded one. *)
  transcript : string;  (** Full {!Rrfd.Trace} rendering of the replay. *)
}

val replay : t -> (replay, string) result
(** Re-execute the artifact.  [Error] only when a spec string no longer
    parses (an artifact from a different vocabulary version). *)

val reproduced : replay -> bool
(** The decision vector matches the recording {e and} the replay's
    failure status is the recorded one: a counterexample must still fail
    some property, a clean recording must still pass them all. *)
