module Json = Report.Json

type t = {
  version : int;
  sut : string;
  predicate : string;
  properties : string list;
  seed : int;
  counterexample : Checker.counterexample;
}

let version = 1

let make ~sut_spec ~predicate_spec ~property_specs ~seed counterexample =
  {
    version;
    sut = sut_spec;
    predicate = predicate_spec;
    properties = property_specs;
    seed;
    counterexample;
  }

let decisions_to_json decisions =
  Json.List
    (Array.to_list decisions
    |> List.map (function
         | None -> Json.Null
         | Some v -> Json.Number (float_of_int v)))

let decisions_of_json json =
  Json.list json
  |> List.map (function Json.Null -> None | j -> Some (Json.int j))
  |> Array.of_list

let to_json t =
  let ce = t.counterexample in
  Json.Obj
    [
      ("version", Json.Number (float_of_int t.version));
      ("kind", Json.String "rrfd-counterexample");
      ("sut", Json.String t.sut);
      ("predicate", Json.String t.predicate);
      ("properties", Json.List (List.map (fun p -> Json.String p) t.properties));
      ("seed", Json.Number (float_of_int t.seed));
      ("trial", Json.Number (float_of_int ce.Checker.trial));
      ("shrink_steps", Json.Number (float_of_int ce.Checker.shrink_steps));
      ("n", Json.Number (float_of_int ce.Checker.n));
      ( "inputs",
        Json.List
          (Array.to_list ce.Checker.inputs
          |> List.map (fun v -> Json.Number (float_of_int v))) );
      ( "history",
        Json.String (Rrfd.Fault_history.to_string_compact ce.Checker.history) );
      ("property", Json.String ce.Checker.property);
      ("failure", Json.String ce.Checker.failure);
      ("decisions", decisions_to_json ce.Checker.decisions);
    ]

let of_json json =
  let v = Json.int (Json.member "version" json) in
  if v <> version then
    raise (Json.Error (Printf.sprintf "unsupported artifact version %d" v));
  let history_text = Json.str (Json.member "history" json) in
  let history =
    try Rrfd.Fault_history.of_string_compact history_text
    with Invalid_argument msg -> raise (Json.Error msg)
  in
  {
    version = v;
    sut = Json.str (Json.member "sut" json);
    predicate = Json.str (Json.member "predicate" json);
    properties = List.map Json.str (Json.list (Json.member "properties" json));
    seed = Json.int (Json.member "seed" json);
    counterexample =
      {
        Checker.sut = Json.str (Json.member "sut" json);
        n = Json.int (Json.member "n" json);
        inputs =
          Json.list (Json.member "inputs" json)
          |> List.map Json.int |> Array.of_list;
        history;
        property = Json.str (Json.member "property" json);
        failure = Json.str (Json.member "failure" json);
        decisions = decisions_of_json (Json.member "decisions" json);
        trial = Json.int (Json.member "trial" json);
        shrink_steps = Json.int (Json.member "shrink_steps" json);
      };
  }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json t));
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json (Json.of_string (In_channel.input_all ic)))

(* Recordings: the same artifact format, written by an observation run
   (live --record) rather than a property refutation.  The decision
   vector is computed through [Checker.test_history] — the exact code
   path [replay] will take — so a recording round-trips by construction;
   an empty [failure] marks that the replay is expected to pass. *)
let record ~sut_spec ?(predicate_spec = "true") ?(seed = 0) ~n ~history () =
  Result.bind (Spec.sut sut_spec) (fun sut ->
      Result.bind (Spec.predicate predicate_spec) (fun predicate ->
          let obs, _ = Checker.test_history ~sut ~predicate ~properties:[] history in
          match obs.Property.violation with
          | Some v ->
            Error
              (Printf.sprintf
                 "refusing to record: history violates %s on replay (%s)"
                 predicate_spec v)
          | None ->
            Ok
              {
                version;
                sut = sut_spec;
                predicate = predicate_spec;
                properties = [];
                seed;
                counterexample =
                  {
                    Checker.sut = Sut.name sut;
                    n;
                    inputs = Sut.default_inputs ~n;
                    history;
                    property = "";
                    failure = "";
                    decisions = obs.Property.decisions;
                    trial = -1;
                    shrink_steps = 0;
                  };
              }))

type replay = {
  obs : Property.obs;
  failure : (string * string) option;
  failure_expected : bool;
  decisions_match : bool;
  transcript : string;
}

let collect_specs parse specs =
  List.fold_right
    (fun spec acc ->
      Result.bind acc (fun parsed ->
          Result.map (fun p -> p :: parsed) (parse spec)))
    specs (Ok [])

let replay t =
  Result.bind (Spec.sut t.sut) (fun sut ->
      Result.bind (Spec.predicate t.predicate) (fun predicate ->
          Result.bind (collect_specs Spec.property t.properties)
            (fun properties ->
              let history = t.counterexample.Checker.history in
              let obs, failure =
                Checker.test_history ~sut ~predicate ~properties history
              in
              Ok
                {
                  obs;
                  failure =
                    Option.map
                      (fun (p, msg) -> (Property.name p, msg))
                      failure;
                  failure_expected = t.counterexample.Checker.failure <> "";
                  decisions_match =
                    obs.Property.decisions = t.counterexample.Checker.decisions;
                  transcript = Sut.transcript sut ~check:predicate history;
                })))

let reproduced r =
  r.decisions_match && (r.failure <> None) = r.failure_expected
