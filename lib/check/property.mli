(** First-class safety properties of RRFD executions.

    The paper's theorems all have the shape "every history satisfying
    predicate [P] makes algorithm [A] satisfy property [S]": {!Predicate}
    captures [P], {!Sut} captures [A], and this module captures [S] — the
    decision-vector side of the claim.  A property inspects an observed
    execution ({!obs}) and returns the earliest violated clause, so the
    model checker can hunt for predicate-satisfying histories that refute
    the theorem.

    All decisions are carried as [int].  Adopt-commit outcomes are packed
    through {!encode_outcome} so that adopt-commit executions flow through
    the same checker pipeline as agreement tasks. *)

type obs = {
  n : int;
  inputs : int array;
  decisions : int option array;
  decision_rounds : int option array;
  rounds_used : int;
  history : Rrfd.Fault_history.t;
  violation : string option;
      (** The engine's online predicate check, when one tripped.  The
          checker treats this as a generator bug, not a property failure. *)
}
(** What one execution exposes to properties. *)

type t
(** A named safety property. *)

val name : t -> string

val doc : t -> string

val check : t -> obs -> string option
(** [check p o] is [None] when the execution satisfies [p], otherwise a
    description of the violation. *)

val make : name:string -> doc:string -> (obs -> string option) -> t

val first_failure : t list -> obs -> (t * string) option
(** Earliest failing property in list order. *)

(** {1 The stock properties} *)

val k_agreement : k:int -> t
(** At most [k] distinct values decided (undecided processes are ignored —
    {!termination} is the property that flags those). *)

val agreement : t
(** [k_agreement ~k:1]. *)

val validity : t
(** Every decided value is the input of some process. *)

val termination : t
(** Every process decided within the executed rounds. *)

val adopt_commit_coherence : t
(** Decisions are {!encode_outcome}-packed adopt-commit outcomes and they
    satisfy the full adopt-commit specification (termination, convergence,
    agreement, validity) via {!Rrfd.Adopt_commit.check_outcomes}. *)

(** {1 Adopt-commit packing} *)

val encode_outcome : int Rrfd.Adopt_commit.outcome -> int
(** [Commit v ↦ 2v], [Adopt v ↦ 2v + 1] — injective for [v ≥ 0]. *)

val decode_outcome : int -> int Rrfd.Adopt_commit.outcome

val pp_encoded_outcome : Format.formatter -> int -> unit
(** Renders an encoded outcome as [commit v] / [adopt v]. *)
