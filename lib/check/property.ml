type obs = {
  n : int;
  inputs : int array;
  decisions : int option array;
  decision_rounds : int option array;
  rounds_used : int;
  history : Rrfd.Fault_history.t;
  violation : string option;
}

type t = { name : string; doc : string; check : obs -> string option }

let name p = p.name

let doc p = p.doc

let check p o = p.check o

let make ~name ~doc check = { name; doc; check }

let first_failure props o =
  List.find_map
    (fun p -> Option.map (fun msg -> (p, msg)) (p.check o))
    props

let k_agreement ~k =
  make
    ~name:(Printf.sprintf "k-agreement(k=%d)" k)
    ~doc:(Printf.sprintf "at most %d distinct values are decided" k)
    (fun o ->
      let report = Tasks.Agreement.evaluate ~inputs:o.inputs ~decisions:o.decisions in
      let distinct = List.length report.Tasks.Agreement.distinct_values in
      if distinct <= k then None
      else
        Some
          (Printf.sprintf "%d distinct decisions %s, want ≤ %d" distinct
             (String.concat ","
                (List.map string_of_int report.Tasks.Agreement.distinct_values))
             k))

let agreement = make ~name:"agreement" ~doc:"all decided values are equal"
    (fun o -> check (k_agreement ~k:1) o)

let validity =
  make ~name:"validity" ~doc:"every decided value is some process's input"
    (fun o ->
      let report = Tasks.Agreement.evaluate ~inputs:o.inputs ~decisions:o.decisions in
      match report.Tasks.Agreement.invalid with
      | [] -> None
      | (p, v) :: _ ->
        Some (Printf.sprintf "p%d decided %d, which is nobody's input" p v))

let termination =
  make ~name:"termination" ~doc:"every process decides within the horizon"
    (fun o ->
      let report = Tasks.Agreement.evaluate ~inputs:o.inputs ~decisions:o.decisions in
      match report.Tasks.Agreement.undecided with
      | [] -> None
      | ps ->
        Some
          (Printf.sprintf "undecided after %d round(s): %s" o.rounds_used
             (String.concat "," (List.map (Printf.sprintf "p%d") ps))))

(* The packing itself lives in core ({!Rrfd.Adopt_commit.encode}) so the
   protocol catalog, which check depends on, shares the single definition. *)
let encode_outcome = Rrfd.Adopt_commit.encode

let decode_outcome = Rrfd.Adopt_commit.decode

let pp_encoded_outcome = Rrfd.Adopt_commit.pp_encoded

let adopt_commit_coherence =
  make ~name:"adopt-commit"
    ~doc:
      "decisions, decoded as adopt-commit outcomes, satisfy convergence, \
       agreement and validity"
    (fun o ->
      let outcomes = Array.map (Option.map decode_outcome) o.decisions in
      Rrfd.Adopt_commit.check_outcomes ~inputs:o.inputs outcomes)
