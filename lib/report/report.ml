module Json = Json

let version = 2

type stat = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

type subject = {
  name : string;
  ns_per_run : float;
  alloc_per_run : float option;
}

type table = {
  id : string;
  title : string;
  ok : bool;
  counters : (string * stat) list;
}

type speedup = {
  trials : int;
  jobs : int;
  serial_s : float;
  parallel_s : float;
  factor : float;
  identical : bool;
}

type meta = {
  seed : int;
  jobs : int;
  recommended_jobs : int;
  git_sha : string;
  hostname : string;
}

type t = {
  version : int;
  meta : meta;
  subjects : subject list;
  tables : table list;
  speedup : speedup option;
}

let stat_of_stats (s : Runtime.Stats.t) =
  {
    count = s.Runtime.Stats.count;
    mean = s.Runtime.Stats.mean;
    stddev = s.Runtime.Stats.stddev;
    min = s.Runtime.Stats.min;
    max = s.Runtime.Stats.max;
  }

(* ------------------------------------------------------------------ *)
(* Encode.                                                             *)

let json_of_stat s =
  Json.Obj
    [
      ("count", Json.Number (float_of_int s.count));
      ("mean", Json.Number s.mean);
      ("stddev", Json.Number s.stddev);
      ("min", Json.Number s.min);
      ("max", Json.Number s.max);
    ]

let json_of_subject s =
  Json.Obj
    ([ ("name", Json.String s.name); ("ns_per_run", Json.Number s.ns_per_run) ]
    @
    match s.alloc_per_run with
    | None -> []
    | Some w -> [ ("alloc_per_run", Json.Number w) ])

let json_of_table t =
  Json.Obj
    [
      ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("ok", Json.Bool t.ok);
      ( "counters",
        Json.Obj (List.map (fun (k, s) -> (k, json_of_stat s)) t.counters) );
    ]

let json_of_speedup s =
  Json.Obj
    [
      ("trials", Json.Number (float_of_int s.trials));
      ("jobs", Json.Number (float_of_int s.jobs));
      ("serial_s", Json.Number s.serial_s);
      ("parallel_s", Json.Number s.parallel_s);
      ("factor", Json.Number s.factor);
      ("identical", Json.Bool s.identical);
    ]

let to_json r =
  Json.Obj
    [
      ("version", Json.Number (float_of_int r.version));
      ( "meta",
        Json.Obj
          [
            ("seed", Json.Number (float_of_int r.meta.seed));
            ("jobs", Json.Number (float_of_int r.meta.jobs));
            ( "recommended_jobs",
              Json.Number (float_of_int r.meta.recommended_jobs) );
            ("git_sha", Json.String r.meta.git_sha);
            ("hostname", Json.String r.meta.hostname);
          ] );
      ("subjects", Json.List (List.map json_of_subject r.subjects));
      ("tables", Json.List (List.map json_of_table r.tables));
      ( "speedup",
        match r.speedup with None -> Json.Null | Some s -> json_of_speedup s );
    ]

(* ------------------------------------------------------------------ *)
(* Decode.                                                             *)

let stat_of_json j =
  {
    count = Json.int (Json.member "count" j);
    mean = Json.num (Json.member "mean" j);
    stddev = Json.num (Json.member "stddev" j);
    min = Json.num (Json.member "min" j);
    max = Json.num (Json.member "max" j);
  }

let subject_of_json j =
  {
    name = Json.str (Json.member "name" j);
    ns_per_run = Json.num (Json.member "ns_per_run" j);
    alloc_per_run =
      (* absent in v1 reports and in v2 subjects without a sample *)
      (match Json.member "alloc_per_run" j with
      | Json.Null -> None
      | w -> Some (Json.num w));
  }

let table_of_json j =
  {
    id = Json.str (Json.member "id" j);
    title = Json.str (Json.member "title" j);
    ok = Json.bool (Json.member "ok" j);
    counters =
      List.map (fun (k, s) -> (k, stat_of_json s))
        (Json.obj (Json.member "counters" j));
  }

let speedup_of_json j =
  {
    trials = Json.int (Json.member "trials" j);
    jobs = Json.int (Json.member "jobs" j);
    serial_s = Json.num (Json.member "serial_s" j);
    parallel_s = Json.num (Json.member "parallel_s" j);
    factor = Json.num (Json.member "factor" j);
    identical = Json.bool (Json.member "identical" j);
  }

let of_json j =
  let v = Json.int (Json.member "version" j) in
  (* v1 decodes tolerantly: it is v2 minus the per-subject allocation
     field, so old baselines stay comparable across the schema bump. *)
  if v < 1 || v > version then
    raise
      (Json.Error
         (Printf.sprintf "report: unsupported schema version %d (want 1..%d)" v
            version));
  let m = Json.member "meta" j in
  {
    version = v;
    meta =
      {
        seed = Json.int (Json.member "seed" m);
        jobs = Json.int (Json.member "jobs" m);
        recommended_jobs =
          (* absent in pre-oversubscription-era reports: 0 = unrecorded *)
          (match Json.member "recommended_jobs" m with
          | Json.Null -> 0
          | j -> Json.int j);
        git_sha = Json.str (Json.member "git_sha" m);
        hostname = Json.str (Json.member "hostname" m);
      };
    subjects = List.map subject_of_json (Json.list (Json.member "subjects" j));
    tables = List.map table_of_json (Json.list (Json.member "tables" j));
    speedup =
      (match Json.member "speedup" j with
      | Json.Null -> None
      | s -> Some (speedup_of_json s));
  }

let to_string r = Json.to_string (to_json r)

let of_string s = of_json (Json.of_string s)

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string r);
      output_char oc '\n')

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Artifact plumbing shared by every subcommand that writes one.       *)

let git_short_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let artifact_path ~prefix path =
  if path = "auto" then Printf.sprintf "%s_%s.json" prefix (git_short_sha ())
  else path

let save_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Regression check.                                                   *)

type verdict = Ok | Regressed | Improved | Missing | New | Incomparable

type comparison = {
  subject : string;
  baseline_ns : float;
  current_ns : float;
  delta_pct : float;
  verdict : verdict;
}

type check_result = {
  tolerance_pct : float;
  comparisons : comparison list;
  regressions : string list;
  broken_tables : string list;
  stale_tables : string list;
}

let finite v = Float.is_nan v = false && Float.abs v <> infinity && v > 0.0

let compare_subject ~tolerance_pct name baseline_ns current_ns =
  let verdict, delta_pct =
    match (finite baseline_ns, finite current_ns) with
    | true, true ->
      let delta = (current_ns -. baseline_ns) /. baseline_ns *. 100.0 in
      if delta > tolerance_pct then (Regressed, delta)
      else if delta < -.tolerance_pct then (Improved, delta)
      else (Ok, delta)
    | _ -> (Incomparable, nan)
  in
  { subject = name; baseline_ns; current_ns; delta_pct; verdict }

let check ~tolerance_pct ~baseline ~current =
  let current_subjects =
    List.map (fun s -> (s.name, s.ns_per_run)) current.subjects
  in
  let baseline_subjects =
    List.map (fun s -> (s.name, s.ns_per_run)) baseline.subjects
  in
  let comparisons =
    List.map
      (fun (name, old_ns) ->
        match List.assoc_opt name current_subjects with
        | None ->
          {
            subject = name;
            baseline_ns = old_ns;
            current_ns = nan;
            delta_pct = nan;
            verdict = Missing;
          }
        | Some new_ns -> compare_subject ~tolerance_pct name old_ns new_ns)
      baseline_subjects
    @ List.filter_map
        (fun (name, new_ns) ->
          if List.mem_assoc name baseline_subjects then None
          else
            Some
              {
                subject = name;
                baseline_ns = nan;
                current_ns = new_ns;
                delta_pct = nan;
                verdict = New;
              })
        current_subjects
  in
  let regressions =
    List.filter_map
      (fun c -> if c.verdict = Regressed then Some c.subject else None)
      comparisons
  in
  let broken_tables =
    List.filter_map
      (fun (bt : table) ->
        if not bt.ok then None
        else
          match List.find_opt (fun (ct : table) -> ct.id = bt.id) current.tables with
          | Some ct when ct.ok -> None
          | Some _ | None -> Some bt.id)
      baseline.tables
  in
  let stale_tables =
    List.filter_map
      (fun (bt : table) ->
        if bt.ok then None
        else
          match List.find_opt (fun (ct : table) -> ct.id = bt.id) current.tables with
          | Some ct when ct.ok -> Some bt.id
          | Some _ | None -> None)
      baseline.tables
  in
  { tolerance_pct; comparisons; regressions; broken_tables; stale_tables }

let check_ok r =
  r.regressions = [] && r.broken_tables = [] && r.stale_tables = []

let pp_ns v =
  if Float.is_nan v then "-"
  else if v > 1e6 then Printf.sprintf "%.3f ms" (v /. 1e6)
  else if v > 1e3 then Printf.sprintf "%.3f us" (v /. 1e3)
  else Printf.sprintf "%.1f ns" v

let verdict_label = function
  | Ok -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Missing -> "missing"
  | New -> "new"
  | Incomparable -> "no estimate"

let print_check r =
  Printf.printf "\n=== bench check (tolerance ±%.0f%%) ===\n" r.tolerance_pct;
  Printf.printf "  %-44s %12s %12s %9s  %s\n" "subject" "baseline" "current"
    "delta" "verdict";
  List.iter
    (fun c ->
      let delta =
        if Float.is_nan c.delta_pct then "-"
        else Printf.sprintf "%+.1f%%" c.delta_pct
      in
      Printf.printf "  %-44s %12s %12s %9s  %s\n" c.subject (pp_ns c.baseline_ns)
        (pp_ns c.current_ns) delta (verdict_label c.verdict))
    r.comparisons;
  if r.broken_tables <> [] then
    Printf.printf "  tables newly FAILING: %s\n"
      (String.concat ", " r.broken_tables);
  if r.stale_tables <> [] then
    Printf.printf
      "  tables failing in baseline but passing now (refresh the baseline): \
       %s\n"
      (String.concat ", " r.stale_tables);
  if check_ok r then Printf.printf "  check: OK\n"
  else
    Printf.printf
      "  check: FAILED (%d regression(s), %d broken table(s), %d stale \
       table(s))\n"
      (List.length r.regressions)
      (List.length r.broken_tables)
      (List.length r.stale_tables)
