type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer.                                                             *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that reads back exactly; integral values drop the
   fractional part so counts stay recognisable. *)
let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number v ->
    if Float.is_nan v || Float.abs v = infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string v)
  | String s -> escape_string buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        escape_string buf k;
        Buffer.add_string buf ": ";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

(* Indented rendering, two spaces per level.  Scalars and empty containers
   stay on one line; the grammar emitted is the same as [write]'s, so
   [of_string] reads both forms identically. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Number _ | String _) as scalar -> write buf scalar
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List l ->
    let pad = String.make ((indent + 1) * 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        write_pretty buf (indent + 1) x)
      l;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_char buf ']'
  | Obj fields ->
    let pad = String.make ((indent + 1) * 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_string buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 1) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (indent * 2) ' ');
    Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the raw bytes.                       *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st fmt =
  Printf.ksprintf (fun s -> error "json parse error at byte %d: %s" st.pos s) fmt

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st "expected %c, found %c" c d
  | None -> fail st "expected %c, found end of input" c

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st "invalid literal (expected %s)" word

(* Encode a Unicode code point as UTF-8 into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let cp =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "bad \\u escape %S" hex
        in
        st.pos <- st.pos + 4;
        add_utf8 buf cp
      | Some c -> fail st "bad escape \\%c" c
      | None -> fail st "unterminated escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_number_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  try Number (float_of_string s) with _ -> fail st "bad number %S" s

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | _ -> fail st "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | _ -> fail st "expected , or ] in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %C" c

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Number _ -> "number"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | j -> error "json: member %S of non-object (%s)" k (type_name j)

let mem k = function Obj fields -> List.mem_assoc k fields | _ -> false

let str = function
  | String s -> s
  | j -> error "json: expected string, found %s" (type_name j)

let num = function
  | Number v -> v
  | Null -> nan
  | j -> error "json: expected number, found %s" (type_name j)

let int = function
  | Number v when Float.is_integer v -> int_of_float v
  | j -> error "json: expected integer, found %s" (type_name j)

let bool = function
  | Bool b -> b
  | j -> error "json: expected bool, found %s" (type_name j)

let list = function
  | List l -> l
  | j -> error "json: expected array, found %s" (type_name j)

let obj = function
  | Obj fields -> fields
  | j -> error "json: expected object, found %s" (type_name j)
