(** Machine-readable bench telemetry (the BENCH json).

    One value of {!t} captures everything a bench run measured — the
    micro-benchmark subjects (ns/run), each experiment table's status plus
    its engine work counters, the campaign speedup check — together with
    the metadata needed to compare runs (seed, jobs, git sha, hostname).
    {!check} compares two such reports and is the regression gate CI runs:
    a subject slower than baseline beyond a tolerance, or a table that was
    passing and now fails, is a hard failure.

    Schema (version {!version}) — see README.md for the field-by-field
    description:
    {v
    { "version": 2,
      "meta": { "seed", "jobs", "git_sha", "hostname" },
      "subjects": [ { "name", "ns_per_run", "alloc_per_run"? } ],
      "tables": [ { "id", "title", "ok",
                    "counters": { <label>: { "count", "mean", "stddev",
                                             "min", "max" } } } ],
      "speedup": { "trials", "jobs", "serial_s", "parallel_s",
                   "factor", "identical" } | null }
    v} *)

module Json = Json

val version : int
(** Current schema version (2).  {!of_json} also accepts version 1 —
    v2 is v1 plus the optional per-subject [alloc_per_run] — and refuses
    anything else. *)

type stat = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}
(** A decoded {!Runtime.Stats.t} (that type is private, so reports carry
    their own mirror). *)

type subject = {
  name : string;  (** e.g. ["rrfd/kset-one-round n=8"]. *)
  ns_per_run : float;  (** OLS estimate; [nan] when bechamel had none. *)
  alloc_per_run : float option;
      (** Minor-heap words allocated per run ([Gc.minor_words] delta over
          a counted loop), when the run sampled it.  [None] in v1 reports
          and for subjects the run did not instrument.  Informational —
          the regression gate is on time; the hard allocation gate is the
          [@alloc-smoke] alias. *)
}

type table = {
  id : string;
  title : string;
  ok : bool;
  counters : (string * stat) list;
}

type speedup = {
  trials : int;
  jobs : int;
  serial_s : float;
  parallel_s : float;
  factor : float;
  identical : bool;  (** Serial and parallel tables bit-identical. *)
}

type meta = {
  seed : int;
  jobs : int;
  recommended_jobs : int;
      (** [Domain.recommended_domain_count] on the recording machine, so
          a report shows whether [jobs] oversubscribed it.  0 in reports
          written before the field existed (the decoder tolerates its
          absence). *)
  git_sha : string;
  hostname : string;
}

type t = {
  version : int;
  meta : meta;
  subjects : subject list;
  tables : table list;
  speedup : speedup option;
}

val stat_of_stats : Runtime.Stats.t -> stat

val to_json : t -> Json.t

val of_json : Json.t -> t
(** @raise Json.Error on shape or version mismatch. *)

val to_string : t -> string

val of_string : string -> t
(** @raise Json.Error on malformed input. *)

val save : string -> t -> unit
(** Write to a file (trailing newline included). *)

val load : string -> t
(** @raise Json.Error on malformed content; [Sys_error] on I/O failure. *)

(** {1 Artifact plumbing}

    Every subcommand that writes a JSON artifact ([bench --json],
    [faultnet --json], [xsub --json], [live --record]) resolves its
    output path and serialises through these, so the ["auto"] naming
    convention is defined exactly once. *)

val git_short_sha : unit -> string
(** [git rev-parse --short HEAD], or ["unknown"] outside a work tree. *)

val artifact_path : prefix:string -> string -> string
(** [artifact_path ~prefix path] is [path] verbatim, except the literal
    ["auto"] becomes [<prefix>_<git_short_sha>.json]. *)

val save_json : string -> Json.t -> unit
(** Write compact JSON with a trailing newline. *)

(** {1 Regression check} *)

type verdict =
  | Ok  (** Within tolerance. *)
  | Regressed  (** Slower than baseline beyond tolerance — gates. *)
  | Improved  (** Faster than baseline beyond tolerance (informational). *)
  | Missing  (** In baseline, absent from the current run. *)
  | New  (** In the current run, absent from baseline. *)
  | Incomparable  (** No finite estimate on one of the sides. *)

type comparison = {
  subject : string;
  baseline_ns : float;  (** [nan] when absent. *)
  current_ns : float;  (** [nan] when absent. *)
  delta_pct : float;  (** [(new − old)/old · 100]; [nan] if incomparable. *)
  verdict : verdict;
}

type check_result = {
  tolerance_pct : float;
  comparisons : comparison list;  (** Baseline order, then new subjects. *)
  regressions : string list;  (** Subjects with [Regressed]. *)
  broken_tables : string list;
      (** Tables ok in baseline but failing (or gone) in the current run —
          strict, no tolerance. *)
  stale_tables : string list;
      (** Tables failing in baseline but passing now: the baseline no
          longer describes reality and must be refreshed.  Gates, so the
          status check is strict in both directions. *)
}

val check : tolerance_pct:float -> baseline:t -> current:t -> check_result
(** Compare a fresh run against a baseline.  Subject timing gates with
    tolerance ([Regressed] iff [delta_pct > tolerance_pct]); table status
    gates strictly.  [Missing]/[New]/[Incomparable] subjects never gate:
    estimates on shared runners come and go, only confirmed slowdowns and
    broken tables should fail CI. *)

val check_ok : check_result -> bool
(** No regressions, no broken tables, no stale tables. *)

val print_check : check_result -> unit
(** Render the per-subject old/new/delta table and the verdict summary to
    stdout. *)
