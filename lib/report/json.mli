(** A minimal JSON tree, writer and parser.

    The BENCH telemetry needs structured output and the container bakes in
    no JSON library, so this is a small hand-rolled implementation: enough
    of RFC 8259 to round-trip every report this repo writes.  Numbers are
    carried as [float] (the only number type JSON has); non-finite floats
    are written as [null] and read back as [nan]. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Error of string
(** Raised by the parser on malformed input (with byte position) and by
    the accessors on type mismatch. *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace except after [,] and
    [:]).  Strings are escaped per RFC 8259; non-ASCII bytes pass through
    untouched, so UTF-8 input stays UTF-8.  Non-finite numbers render as
    [null]. *)

val to_string_pretty : t -> string
(** Indented rendering (two spaces per level) for artifacts meant to be
    read by humans — the model checker's counterexample files.  Parses back
    identically to {!to_string} output. *)

val of_string : string -> t
(** Parse a complete JSON document.
    @raise Error on malformed input or trailing garbage. *)

(** {1 Accessors} — all raise {!Error} with the offending shape. *)

val member : string -> t -> t
(** Field of an [Obj]; [Null] when the field is absent. *)

val mem : string -> t -> bool

val str : t -> string

val num : t -> float
(** Of a [Number]; [nan] for [Null] (the writer's encoding of non-finite
    floats). *)

val int : t -> int

val bool : t -> bool

val list : t -> t list

val obj : t -> (string * t) list
