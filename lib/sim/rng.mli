(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from an explicit seed.  The generator is
    splitmix64 (Steele, Lea & Flood 2014): a tiny, fast, well-distributed
    64-bit generator whose state is a single [int64].  It also supports
    {e splitting}, which lets independent components derive statistically
    independent streams from a parent seed without sharing mutable state. *)

type t
(** A mutable pseudo-random stream. *)

val create : int -> t
(** [create seed] returns a fresh stream deterministically derived from
    [seed].  Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent stream with the same current state as [t]. *)

val derive_seed : int -> int -> int
(** [derive_seed seed stream] deterministically mixes [seed] with a stream
    index into a fresh seed.  Distinct [(seed, stream)] pairs map to
    statistically unrelated seeds, so parallel workers can each be handed
    [derive_seed seed i] without coordinating on shared RNG state — the
    foundation of order-independent (and therefore [-j]-independent)
    Monte-Carlo campaigns. *)

val derive : seed:int -> stream:int -> t
(** [derive ~seed ~stream] is [create (derive_seed seed stream)]. *)

val split : t -> t
(** [split t] advances [t] and returns a new stream whose subsequent outputs
    are statistically independent of [t]'s. *)

val int64 : t -> int64
(** [int64 t] is the next raw 64-bit output. *)

val bits30 : t -> int
(** [bits30 t] is a uniform integer in [\[0, 2^30)]. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> min:int -> max:int -> int
(** [int_in_range t ~min ~max] is uniform in [\[min, max\]] (inclusive).
    @raise Invalid_argument if [max < min]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates permutation. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t l] is a uniformly permuted copy of [l]. *)

val choose : t -> 'a list -> 'a
(** [choose t l] is a uniformly chosen element of [l].
    @raise Invalid_argument on the empty list. *)

val choose_array : t -> 'a array -> 'a
(** [choose_array t a] is a uniformly chosen element of [a].
    @raise Invalid_argument on the empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] returns [k] distinct integers drawn
    uniformly from [\[0, n)], in increasing order.
    @raise Invalid_argument if [k < 0] or [k > n]. *)
