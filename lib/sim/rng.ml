(* Splitmix64.  The state lives in an 8-byte [Bytes] rather than a
   [mutable int64] record field: int64 record fields are boxed, so every
   state advance would allocate a fresh box — ~6 minor words per draw on
   the hot path.  The bytes get/set primitives compile to raw 64-bit
   loads and stores, and with the [@inline] hints below the whole draw
   pipeline stays unboxed in native code.  The generated stream is
   bit-identical to the record representation. *)

type t = Bytes.t

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] get_state (t : t) = Bytes.get_int64_le t 0

let[@inline] set_state (t : t) v = Bytes.set_int64_le t 0 v

let[@inline always] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_state v =
  let t = Bytes.create 8 in
  set_state t v;
  t

let create seed = of_state (mix64 (Int64.of_int seed))

let derive_seed seed stream =
  let z =
    Int64.logxor
      (mix64 (Int64.of_int seed))
      (Int64.mul golden_gamma (Int64.of_int (stream + 1)))
  in
  Int64.to_int (mix64 z)

let derive ~seed ~stream = create (derive_seed seed stream)

let copy t = Bytes.copy t

let[@inline] next_state t =
  let s = Int64.add (get_state t) golden_gamma in
  set_state t s;
  s

let[@inline] int64 t = mix64 (next_state t)

let split t = of_state (mix64 (int64 t))

let[@inline] bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling over 30 random bits avoids modulo bias.  A
       while loop rather than a local rec function: the latter costs a
       closure allocation per call on the non-flambda compiler. *)
    let v = ref (-1) in
    while !v < 0 do
      let r = bits30 t in
      let m = r mod bound in
      if r - m + (bound - 1) >= 0 then v := m
    done;
    !v
  end else
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    r mod bound

let int_in_range t ~min ~max =
  if max < min then invalid_arg "Rng.int_in_range: max < min";
  min + int t (max - min + 1)

(* Same single draw as before; the comparison is on native ints so the
   hot path never calls the boxed-int64 structural equality. *)
let bool t = Int64.to_int (int64 t) land 1 = 1

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let choose_array t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_array: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Reservoir-free selection sampling (Knuth algorithm S): O(n). *)
  let rec go i remaining acc =
    if remaining = 0 then List.rev acc
    else if n - i = remaining then List.rev_append acc (List.init remaining (fun j -> i + j))
    else if int t (n - i) < remaining then go (i + 1) (remaining - 1) (i :: acc)
    else go (i + 1) remaining acc
  in
  go 0 k []
