type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let derive_seed seed stream =
  let z =
    Int64.logxor
      (mix64 (Int64.of_int seed))
      (Int64.mul golden_gamma (Int64.of_int (stream + 1)))
  in
  Int64.to_int (mix64 z)

let derive ~seed ~stream = create (derive_seed seed stream)

let copy t = { state = t.state }

let next_state t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let int64 t = mix64 (next_state t)

let split t = { state = mix64 (int64 t) }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling over 30 random bits avoids modulo bias. *)
    let rec draw () =
      let r = bits30 t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end else
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    r mod bound

let int_in_range t ~min ~max =
  if max < min then invalid_arg "Rng.int_in_range: max < min";
  min + int t (max - min + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let choose_array t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_array: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Reservoir-free selection sampling (Knuth algorithm S): O(n). *)
  let rec go i remaining acc =
    if remaining = 0 then List.rev acc
    else if n - i = remaining then List.rev_append acc (List.init remaining (fun j -> i + j))
    else if int t (n - i) < remaining then go (i + 1) (remaining - 1) (i :: acc)
    else go (i + 1) remaining acc
  in
  go 0 k []
