module Pset = Rrfd.Pset

let round_assignments ~n =
  let proper =
    List.filter
      (fun s -> not (Pset.equal s (Pset.full n)))
      (Pset.subsets (Pset.full n))
  in
  let rec build i =
    if i = n then [ [] ]
    else
      let rest = build (i + 1) in
      List.concat_map (fun s -> List.map (fun tail -> s :: tail) rest) proper
  in
  List.map Array.of_list (build 0)

let fold_extensions ~prefix ~rounds ~satisfying ~init ~f =
  let n = Rrfd.Fault_history.n prefix in
  if rounds < Rrfd.Fault_history.rounds prefix then
    invalid_arg "Enumerate.fold_extensions: prefix longer than target";
  let assignments = round_assignments ~n in
  let rec explore acc history depth =
    if not (Rrfd.Predicate.holds satisfying history) then acc
    else if depth = rounds then f acc history
    else
      List.fold_left
        (fun acc d -> explore acc (Rrfd.Fault_history.append history d) (depth + 1))
        acc assignments
  in
  explore init prefix (Rrfd.Fault_history.rounds prefix)

let fold ~n ~rounds ~satisfying ~init ~f =
  fold_extensions ~prefix:(Rrfd.Fault_history.empty ~n) ~rounds ~satisfying ~init
    ~f

let count ~n ~rounds ~satisfying =
  fold ~n ~rounds ~satisfying ~init:0 ~f:(fun c _ -> c + 1)

let find_extension ~prefix ~rounds ~satisfying ~f =
  let exception Found of Rrfd.Fault_history.t in
  try
    fold_extensions ~prefix ~rounds ~satisfying ~init:() ~f:(fun () h ->
        if f h then raise (Found h));
    None
  with Found h -> Some h

let find ~n ~rounds ~satisfying ~f =
  find_extension ~prefix:(Rrfd.Fault_history.empty ~n) ~rounds ~satisfying ~f
