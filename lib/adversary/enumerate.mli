(** Exhaustive enumeration of fault histories for small systems.

    Used by the submodel-lattice experiment (E13) and the two-round
    known-by-all conjecture search (E14): enumerate every history of a given
    size that satisfies a predicate and fold over them.  The space is
    [((2^n − 1)^n)^rounds] before pruning, so callers keep [n ≤ 4] and
    [rounds ≤ 2]. *)

val round_assignments : n:int -> Rrfd.Pset.t array list
(** Every way to assign one proper subset of the system to each process —
    all possible single rounds. *)

val fold :
  n:int ->
  rounds:int ->
  satisfying:Rrfd.Predicate.t ->
  init:'a ->
  f:('a -> Rrfd.Fault_history.t -> 'a) ->
  'a
(** [fold ~n ~rounds ~satisfying ~init ~f] applies [f] to every
    [rounds]-round history satisfying the predicate.  Prefixes violating the
    predicate are pruned (all the paper's predicates are prefix-closed). *)

val count : n:int -> rounds:int -> satisfying:Rrfd.Predicate.t -> int
(** Number of histories the fold would visit. *)

val fold_extensions :
  prefix:Rrfd.Fault_history.t ->
  rounds:int ->
  satisfying:Rrfd.Predicate.t ->
  init:'a ->
  f:('a -> Rrfd.Fault_history.t -> 'a) ->
  'a
(** [fold_extensions ~prefix ~rounds ~satisfying ~init ~f] folds over every
    extension of [prefix] to exactly [rounds] total rounds that satisfies the
    predicate — the sharding primitive of the model checker's exhaustive
    mode: each domain explores the subtree below one first-round assignment.
    [fold] is [fold_extensions] from the empty prefix.
    @raise Invalid_argument if [prefix] already has more than [rounds]
    rounds. *)

val find_extension :
  prefix:Rrfd.Fault_history.t ->
  rounds:int ->
  satisfying:Rrfd.Predicate.t ->
  f:(Rrfd.Fault_history.t -> bool) ->
  Rrfd.Fault_history.t option
(** First extension of [prefix] for which [f] holds, with early exit. *)

val find :
  n:int ->
  rounds:int ->
  satisfying:Rrfd.Predicate.t ->
  f:(Rrfd.Fault_history.t -> bool) ->
  Rrfd.Fault_history.t option
(** First enumerated history for which [f] holds, with early exit. *)
