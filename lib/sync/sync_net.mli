(** Lock-step synchronous execution of RRFD algorithms under fault
    injection.

    This is "system N" of items 1 and 2: real synchronous rounds in which a
    process sends to everybody and, by the end of the round, has received
    every message sent to it by a process that did not fail.  Running an
    algorithm here both executes it and {e derives} the RRFD fault history
    — [D(i,r)] is simply the set of senders process [i] failed to hear — so
    the model-correspondence experiments can check the derived history
    against the item-1/item-2 predicates. *)

type 'out result = {
  decisions : 'out option array;
  decision_rounds : int option array;
  rounds_used : int;
  induced : Rrfd.Fault_history.t;
      (** The derived fault history.  For a process that crashed, later
          rounds record what it {e would} have missed — consistent with the
          RRFD reading in which every process keeps executing. *)
  crashed : Rrfd.Pset.t;  (** Processes that crashed during the run. *)
  counters : Rrfd.Counters.t;
      (** Work accounting in the engine's vocabulary: rounds executed,
          messages delivered to live processes, zero detector queries
          (the environment {e is} the detector here), predicate checks
          when a [?check] was requested. *)
  violation : string option;
      (** Earliest [?check] violation of the induced history.  Purely an
          observation: the lock-step run continues regardless, so the
          result is otherwise identical with and without a check. *)
}

val run :
  n:int ->
  rounds:int ->
  pattern:Faults.t ->
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  ?check:Rrfd.Predicate.t ->
  ?stop_when_decided:bool ->
  unit ->
  'out result
(** [run ~n ~rounds ~pattern ~algorithm ()] executes up to [rounds]
    synchronous rounds.  A process crashed by [pattern] stops emitting and
    stops updating its state (its pre-crash decision, if any, stands).
    With [stop_when_decided] (default true) the run ends once every
    non-crashed process has decided. *)

(** {1 The synchronous network as a substrate} *)

module As_substrate : sig
  type config = {
    pattern : Faults.t;  (** The injected fault pattern. *)
    check : Rrfd.Predicate.t option;
    stop_when_decided : bool;
  }

  include Rrfd.Substrate.S with type config := config
end
(** {!Rrfd.Substrate.S} view of {!run}.  The induced history keeps the
    RRFD reading in which every process executes every round, so
    [completed] is uniform even when the pattern crashed someone —
    [crashed] says who actually stopped. *)
