module Pset = Rrfd.Pset

type 'out result = {
  decisions : 'out option array;
  decision_rounds : int option array;
  rounds_used : int;
  induced : Rrfd.Fault_history.t;
  crashed : Rrfd.Pset.t;
  counters : Rrfd.Counters.t;
  violation : string option;
}

let run ~n ~rounds ~pattern ~algorithm ?check ?(stop_when_decided = true) () =
  if Faults.n pattern <> n then invalid_arg "Sync_net.run: pattern size mismatch";
  let open Rrfd.Algorithm in
  let states = Array.init n (fun i -> algorithm.init ~n i) in
  let decisions = Array.make n None in
  let decision_rounds = Array.make n None in
  let all = Pset.full n in
  let record_decisions round alive =
    Pset.iter
      (fun i ->
        if Option.is_none decisions.(i) then
          match algorithm.decide states.(i) with
          | None -> ()
          | Some v ->
            decisions.(i) <- Some v;
            decision_rounds.(i) <- Some round)
      alive
  in
  let view = Rrfd.View.create ~n in
  let msgs = ref [||] in
  let rec loop round history counters violation =
    let alive = Pset.diff all (Faults.crashed_before pattern ~round) in
    let done_ =
      round > rounds
      || (stop_when_decided
         && Pset.for_all (fun i -> Option.is_some decisions.(i)) alive)
    in
    if done_ then
      {
        decisions;
        decision_rounds;
        rounds_used = round - 1;
        induced = history;
        crashed = Pset.diff all alive;
        counters;
        violation;
      }
    else begin
      (* Emissions go into a reusable buffer; slots of crashed processes
         keep stale contents, but a dead sender is in every live
         receiver's fault set, so the view never reads them. *)
      let buf =
        if Array.length !msgs = n then begin
          let b = !msgs in
          Pset.iter (fun i -> b.(i) <- algorithm.emit states.(i) ~round) alive;
          b
        end
        else
          match Pset.min_elt alive with
          | None -> [||] (* nobody alive: nobody delivers either *)
          | Some i0 ->
            let b = Array.make n (algorithm.emit states.(i0) ~round) in
            Pset.iter
              (fun i ->
                if not (Rrfd.Proc.equal i i0) then
                  b.(i) <- algorithm.emit states.(i) ~round)
              alive;
            msgs := b;
            b
      in
      let fault_sets =
        Array.init n (fun i ->
            Pset.filter
              (fun s ->
                (not (Rrfd.Proc.equal s i))
                && not
                     (Pset.mem s alive
                     && Faults.delivered pattern ~round ~sender:s ~receiver:i))
              all)
      in
      let history = Rrfd.Fault_history.append history fault_sets in
      let delivered = ref 0 in
      Pset.iter
        (fun i ->
          let faulty = fault_sets.(i) in
          delivered := !delivered + (n - Pset.cardinal faulty);
          (* A process's own slot is always readable: i ∉ D(i,r) here. *)
          Rrfd.View.set view ~msgs:buf ~faulty;
          states.(i) <- algorithm.deliver states.(i) ~round ~view)
        alive;
      record_decisions round alive;
      let counters =
        Rrfd.Counters.
          {
            rounds = counters.rounds + 1;
            messages = counters.messages + !delivered;
            detector_queries = counters.detector_queries;
            predicate_checks =
              (counters.predicate_checks
              + if Option.is_some check then 1 else 0);
          }
      in
      (* The check observes the run without altering it: the earliest
         violation is recorded but lock-step execution continues, so the
         induced history is the same with and without a check. *)
      let violation =
        match violation with
        | Some _ -> violation
        | None ->
          Option.bind check (fun p ->
              Rrfd.Predicate.check_round p history ~round)
      in
      loop (round + 1) history counters violation
    end
  in
  loop 1 (Rrfd.Fault_history.empty ~n) Rrfd.Counters.zero None

module As_substrate = struct
  type config = {
    pattern : Faults.t;
    check : Rrfd.Predicate.t option;
    stop_when_decided : bool;
  }

  let name = "sync"

  let execute config ~n ~rounds ~algorithm =
    let result =
      run ~n ~rounds ~pattern:config.pattern ~algorithm ?check:config.check
        ~stop_when_decided:config.stop_when_decided ()
    in
    {
      Rrfd.Substrate.substrate = name;
      decisions = result.decisions;
      decision_rounds = result.decision_rounds;
      rounds_used = result.rounds_used;
      induced = result.induced;
      counters = result.counters;
      violation = result.violation;
      crashed = result.crashed;
      completed = Array.make n result.rounds_used;
      wall_ns = None;
    }
end
