type state = {
  known : int list; (* sorted, distinct *)
  horizon : int;
  decision : int option;
}

let known s = s.known

let merge a b = List.sort_uniq Int.compare (List.rev_append a b)

let min_flood ~inputs ~horizon =
  if horizon < 1 then invalid_arg "Flood.min_flood: horizon must be ≥ 1";
  {
    Rrfd.Algorithm.name = Printf.sprintf "min-flood(horizon=%d)" horizon;
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Flood.min_flood: inputs length mismatch";
        { known = [ inputs.(p) ]; horizon; decision = None });
    emit = (fun s ~round:_ -> s.known);
    deliver =
      (fun s ~round ~view ->
        let known =
          Rrfd.View.fold (fun _ vs acc -> merge acc vs) view s.known
        in
        let decision =
          if round >= s.horizon && Option.is_none s.decision then
            match known with v :: _ -> Some v | [] -> assert false
          else s.decision
        in
        { s with known; decision });
    decide = (fun s -> s.decision);
  }

let consensus ~inputs ~f = min_flood ~inputs ~horizon:(f + 1)

let kset ~inputs ~f ~k =
  if k <= 0 || f < k then invalid_arg "Flood.kset: need f ≥ k > 0";
  min_flood ~inputs ~horizon:((f / k) + 1)
