module Pset = Rrfd.Pset

type state = {
  known : int list; (* sorted, distinct *)
  heard : Pset.t list; (* per completed round, most recent first *)
  f : int;
  decision : int option;
}

let rounds_heard s = s.heard

let merge a b = List.sort_uniq Int.compare (List.rev_append a b)

let algorithm ~inputs ~f =
  if f < 0 then invalid_arg "Early_deciding.algorithm: negative f";
  {
    Rrfd.Algorithm.name = Printf.sprintf "early-deciding(f=%d)" f;
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Early_deciding.algorithm: inputs length mismatch";
        { known = [ inputs.(p) ]; heard = []; f; decision = None });
    emit = (fun s ~round:_ -> s.known);
    deliver =
      (fun s ~round ~view ->
        let known =
          Rrfd.View.fold (fun _ vs acc -> merge acc vs) view s.known
        in
        let heard_now = Rrfd.View.heard view in
        let clean =
          match s.heard with
          | previous :: _ -> Pset.equal previous heard_now
          | [] -> false
        in
        let decision =
          if Option.is_some s.decision then s.decision
          else if clean || round >= s.f + 1 then
            match known with v :: _ -> Some v | [] -> assert false
          else None
        in
        { s with known; heard = heard_now :: s.heard; decision });
    decide = (fun s -> s.decision);
  }
