(* E7 — Corollary 3.2: k-set agreement is solvable in an asynchronous
   (snapshot) system with at most k − 1 failures, because the item-5 RRFD
   with f = k − 1 is a submodel of the k-set detector. *)

let run ?(seed = 7) ?(trials = 400) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let work = ref [] in
  List.iter
    (fun (n, k) ->
      let max_distinct = ref 0 and failures = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Tasks.Inputs.distinct n in
        (* The adversary: genuine snapshot rounds with at most k−1 misses. *)
        let detector = Rrfd.Detector_gen.iis trial_rng ~n ~f:(k - 1) in
        let ex =
          Protocols.Catalog.run_engine
            (Protocols.Catalog.find_exn "kset-snapshot")
            ~inputs
            ~check:(Rrfd.Predicate.snapshot ~f:(k - 1))
            ~n ~f:(k - 1) ~detector ()
        in
        let distinct =
          Tasks.Agreement.distinct_decisions
            ~decisions:ex.Rrfd.Substrate.decisions
        in
        max_distinct := max !max_distinct distinct;
        if
          Tasks.Agreement.check ~k ~inputs ex.Rrfd.Substrate.decisions <> None
        then incr failures;
        work := ex.Rrfd.Substrate.counters :: !work
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int (k - 1);
          Table.cell_int trials;
          Table.cell_int !max_distinct;
          Table.cell_int !failures;
          Table.cell_bool (!failures = 0 && !max_distinct <= k);
        ]
        :: !rows)
    [ (4, 2); (6, 2); (8, 3); (12, 4); (16, 6) ];
  {
    Table.id = "E7";
    title = "k-set agreement with k−1 failures (Corollary 3.2)";
    claim =
      "Cor 3.2 (Chaudhuri): the snapshot RRFD with f = k−1 implies the \
       k-set detector, so the one-round algorithm solves k-set agreement \
       in an asynchronous system with at most k−1 crashes";
    header = [ "n"; "k"; "f=k−1"; "trials"; "max-distinct"; "task-fails"; "ok" ];
    rows = List.rev !rows;
    notes = [];
    counters = Table.counter_stats (Array.of_list (List.rev !work));
  }
