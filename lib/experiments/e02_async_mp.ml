(* E2 — item 3: the buffered/discarding round layer over a real
   asynchronous network implements predicate (3), and two rounds of the
   weaker system B implement one round of system A. *)

let run ?(seed = 2) ?(trials = 100) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  (* Part 1: the round layer. *)
  List.iter
    (fun (n, f) ->
      let p3_bad = ref 0 and stalled = ref 0 in
      for t = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let crash_count = Dsim.Rng.int trial_rng (f + 1) in
        let crashes =
          Dsim.Rng.sample_without_replacement trial_rng crash_count n
          |> List.map (fun p -> (p, Dsim.Rng.float trial_rng 40.0))
        in
        let inputs = Tasks.Inputs.distinct n in
        let result =
          Msgnet.Round_layer.run ~seed:(seed + t) ~crashes ~n ~f ~rounds:4
            ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
            ()
        in
        if
          not
            (Rrfd.Predicate.holds
               (Rrfd.Predicate.async_resilient ~f)
               result.Msgnet.Round_layer.induced)
        then incr p3_bad;
        Array.iteri
          (fun i completed ->
            if
              (not (Rrfd.Pset.mem i result.Msgnet.Round_layer.crashed))
              && completed < 4
            then incr stalled)
          result.Msgnet.Round_layer.completed
      done;
      rows :=
        [
          "round-layer";
          Table.cell_int n;
          Printf.sprintf "f=%d" f;
          Table.cell_int trials;
          Table.cell_int !p3_bad;
          Table.cell_int !stalled;
          Table.cell_bool (!p3_bad = 0 && !stalled = 0);
        ]
        :: !rows)
    [ (4, 1); (8, 3); (16, 7) ];
  (* Part 2: B implements A (2t < n, f < t). *)
  List.iter
    (fun n ->
      let t_param = (n - 1) / 2 in
      let f = t_param - 1 in
      if f >= 1 then begin
        let bad = ref 0 in
        for _ = 1 to trials do
          let trial_rng = Dsim.Rng.split rng in
          let detector = Rrfd.Detector_gen.async_mixed trial_rng ~n ~f ~t:t_param in
          let r = Rrfd.Emulation.two_round_closure ~n ~detector in
          let h = Rrfd.Fault_history.of_rounds ~n [ r.Rrfd.Emulation.simulated ] in
          if not (Rrfd.Predicate.holds (Rrfd.Predicate.async_resilient ~f) h)
          then incr bad
        done;
        rows :=
          [
            "B⇒A (2 rounds)";
            Table.cell_int n;
            Printf.sprintf "f=%d,t=%d" f t_param;
            Table.cell_int trials;
            Table.cell_int !bad;
            "-";
            Table.cell_bool (!bad = 0);
          ]
          :: !rows
      end)
    [ 7; 11; 15 ];
  {
    Table.id = "E2";
    title = "asynchronous message passing as an RRFD (item 3)";
    claim =
      "Sec. 2 item 3: waiting for n−f round-tagged messages yields \
       |D(i,r)| ≤ f and never blocks live processes; two rounds of system B \
       implement a round of system A";
    header = [ "construction"; "n"; "params"; "trials"; "violations"; "stalls"; "ok" ];
    rows = List.rev !rows;
    notes = [];
    counters = [];
  }
