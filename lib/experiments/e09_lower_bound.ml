(* E9 — Corollaries 4.2 / 4.4: k-set agreement in a synchronous system
   with f crash (or omission) faults needs ⌊f/k⌋ + 1 rounds.  The chain
   adversary forces k+1 distinct values from min-flooding at every horizon
   up to ⌊f/k⌋; at ⌊f/k⌋ + 1 the same adversary is powerless.

   Every (case, fault model, horizon) cell is an independent deterministic
   unit, so the table is a Runtime.Campaign.map over the flattened case
   list — rows come back in order regardless of -j. *)

let distinct_live (ex : int Rrfd.Substrate.execution) =
  Tasks.Agreement.distinct_decisions
    ~decisions:
      (Array.mapi
         (fun i d ->
           if Rrfd.Pset.mem i ex.Rrfd.Substrate.crashed then None else d)
         ex.Rrfd.Substrate.decisions)

let run ?(seed = 9) ?(trials = 1) ?jobs () =
  ignore trials;
  let cases = [ (1, 3); (2, 2); (2, 3); (3, 2); (4, 2) ] in
  let units =
    List.concat_map
      (fun (k, chain_rounds) ->
        let f = k * chain_rounds in
        let bound = (f / k) + 1 in
        List.concat_map
          (fun fault_model ->
            List.init bound (fun h -> (k, chain_rounds, fault_model, h + 1)))
          [ `Crash; `Omission ])
      cases
  in
  let cells =
    Runtime.Campaign.map ?jobs ~seed units
      (fun ~index:_ ~rng:_ (k, chain_rounds, fault_model, horizon) ->
        let f = k * chain_rounds in
        let n = Adversary.Lower_bound.required_processes ~k ~rounds:chain_rounds in
        let bound = (f / k) + 1 in
        let adv = Adversary.Lower_bound.build ~n ~k ~rounds:chain_rounds in
        let pattern =
          match fault_model with
          | `Crash ->
            Syncnet.Faults.crash ~n adv.Adversary.Lower_bound.crash_specs
          | `Omission ->
            Syncnet.Faults.omission ~n
              ~faulty:(Adversary.Lower_bound.omission_faulty adv)
              ~drops:(fun ~round ~sender ->
                Adversary.Lower_bound.omission_drops adv ~round ~sender)
        in
        (* [flood-consensus] at resilience [horizon − 1] is exactly
           [min_flood ~horizon]: flooding that decides the minimum at the
           chosen horizon, which is the algorithm the bound speaks about. *)
        let ex =
          Protocols.Catalog.run_sync
            (Protocols.Catalog.find_exn "flood-consensus")
            ~inputs:adv.Adversary.Lower_bound.inputs ~rounds:horizon ~n
            ~f:(horizon - 1) ~pattern ()
        in
        let distinct = distinct_live ex in
        let at_bound = horizon = bound in
        let expected = if at_bound then distinct <= k else distinct > k in
        ( [
            (match fault_model with `Crash -> "crash" | `Omission -> "omission");
            Table.cell_int n;
            Table.cell_int k;
            Table.cell_int f;
            Table.cell_int horizon;
            Table.cell_int distinct;
            (if at_bound then Printf.sprintf "≤ %d (solves)" k
             else Printf.sprintf "> %d (broken)" k);
            Table.cell_bool expected;
          ],
          ex.Rrfd.Substrate.counters ))
  in
  let rows = List.map fst cells in
  {
    Table.id = "E9";
    title = "⌊f/k⌋ + 1 round lower bound for synchronous k-set agreement";
    claim =
      "Cor 4.2/4.4 (Chaudhuri–Herlihy–Lynch–Tuttle): any k-set agreement \
       algorithm needs ⌊f/k⌋+1 rounds with f crash faults — min-flooding \
       loses agreement at every smaller horizon under the chain adversary \
       and regains it exactly at the bound — for crash and send-omission \
       faults alike";
    header = [ "faults"; "n"; "k"; "f"; "rounds"; "distinct"; "expected"; "ok" ];
    rows;
    notes =
      [
        "distinct = decisions among live processes; the crossover row per \
         (k,f) block is the paper's bound";
      ];
    counters = Table.counter_stats (Array.of_list (List.map snd cells));
  }
