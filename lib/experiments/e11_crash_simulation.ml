(* E11 — Theorem 4.3: three asynchronous snapshot rounds per simulated
   synchronous crash round, with the crash predicate holding among live
   simulated processes.

   Trials run as a Runtime.Campaign with per-(case, trial) RNG derivation;
   the avg-crashes cell is the campaign mean via Runtime.Stats. *)

let run ?(seed = 11) ?(trials = 200) ?jobs () =
  let cases = [ (4, 1, 2); (4, 1, 3); (6, 2, 2); (8, 2, 3); (10, 3, 2) ] in
  let work = ref [] in
  let rows =
    List.mapi
      (fun case_idx (n, k, sync_rounds) ->
        let f = k * sync_rounds in
        let obs =
          Runtime.Campaign.run ?jobs
            ~seed:(Dsim.Rng.derive_seed seed case_idx)
            ~trials
            (fun ~trial:_ ~rng ->
              let inputs = Tasks.Inputs.distinct n in
              let sync = Syncnet.Flood.min_flood ~inputs ~horizon:sync_rounds in
              let algorithm = Rrfd.Sim_crash.algorithm ~sync in
              let detector = Rrfd.Detector_gen.iis rng ~n ~f:k in
              let states, history =
                Rrfd.Engine.states_after ~n
                  ~rounds:(Rrfd.Sim_crash.async_rounds ~sync_rounds)
                  ~algorithm ~detector ()
              in
              let witness_gaps = ref 0 in
              Array.iter
                (fun s ->
                  if Rrfd.Sim_crash.missing_witnesses s > 0 then
                    incr witness_gaps)
                states;
              let check_failed =
                Rrfd.Sim_crash.check_simulated ~f ~k states <> None
              in
              let crashes =
                Rrfd.Pset.cardinal
                  (Rrfd.Fault_history.cumulative_union
                     (Rrfd.Sim_crash.simulated_history states))
              in
              (check_failed, !witness_gaps, crashes, Rrfd.Counters.of_history history))
        in
        work := Array.map (fun (_, _, _, c) -> c) obs :: !work;
        let check_bad =
          Array.fold_left (fun c (b, _, _, _) -> if b then c + 1 else c) 0 obs
        in
        let witness_bad =
          Array.fold_left (fun c (_, w, _, _) -> c + w) 0 obs
        in
        let crash_stats =
          Runtime.Stats.of_ints (Array.map (fun (_, _, c, _) -> c) obs)
        in
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int sync_rounds;
          Table.cell_int (3 * sync_rounds);
          Table.cell_int trials;
          Table.cell_int check_bad;
          Table.cell_int witness_bad;
          Table.cell_float crash_stats.Runtime.Stats.mean;
          Table.cell_bool (check_bad = 0 && witness_bad = 0);
        ])
      cases
  in
  {
    Table.id = "E11";
    title = "crash-fault simulation: 3 async rounds per sync round (Thm 4.3)";
    claim =
      "Thm 4.3: an async snapshot system with ≤k failures simulates \
       ⌊f/k⌋ rounds of a synchronous system with ≤f crash faults, via n \
       parallel adopt-commits per round; ≤k·r simulated crashes by round r \
       and crash closure hold";
    header =
      [
        "n"; "k"; "sync-rounds"; "async-rounds"; "trials"; "check-viol";
        "witness-gaps"; "avg-crashes"; "ok";
      ];
    rows;
    notes =
      [ "overhead is exactly 3 asynchronous rounds per simulated synchronous round" ];
    counters = Table.counter_stats (Array.concat (List.rev !work));
  }
