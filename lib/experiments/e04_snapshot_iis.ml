(* E4 — item 5: real immediate-snapshot executions generate exactly the
   atomic-snapshot RRFD predicate. *)

let run ?(seed = 4) ?(trials = 200) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      let view_bad = ref 0 and pred_bad = ref 0 and total_steps = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let r =
          Shm.Immediate_snapshot.run_once ~n
            ~schedule:(Shm.Exec.Random trial_rng)
        in
        total_steps := !total_steps + r.Shm.Immediate_snapshot.steps;
        if
          Shm.Immediate_snapshot.check_views r.Shm.Immediate_snapshot.views
          <> None
        then incr view_bad;
        let h =
          Rrfd.Fault_history.of_rounds ~n
            [ Shm.Immediate_snapshot.to_fault_sets r.Shm.Immediate_snapshot.views ]
        in
        if not (Rrfd.Predicate.holds (Rrfd.Predicate.snapshot ~f:(n - 1)) h)
        then incr pred_bad
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int trials;
          Table.cell_int !view_bad;
          Table.cell_int !pred_bad;
          Table.cell_float (float_of_int !total_steps /. float_of_int trials);
          Table.cell_bool (!view_bad = 0 && !pred_bad = 0);
        ]
        :: !rows)
    [ 2; 3; 4; 6; 8; 12 ];
  {
    Table.id = "E4";
    title = "atomic snapshot / IIS as an RRFD (item 5)";
    claim =
      "Sec. 2 item 5: one-shot immediate snapshots give views with \
       self-inclusion, comparability and immediacy, i.e. D(i,r) = S − V_i \
       satisfies predicate (3) ∧ containment";
    header = [ "n"; "trials"; "view-viol"; "pred-viol"; "avg-steps"; "ok" ];
    rows = List.rev !rows;
    notes =
      [ "avg-steps = register operations per one-shot immediate snapshot" ];
    counters = [];
  }
