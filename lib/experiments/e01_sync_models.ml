(* E1 — items 1 and 2: real synchronous executions induce exactly the
   omission / crash RRFD predicates. *)

let run ?(seed = 1) ?(trials = 200) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let sizes = [ (4, 1); (4, 3); (8, 3); (8, 7); (16, 5); (16, 15) ] in
  List.iter
    (fun (n, f) ->
      let violations kind =
        let bad = ref 0 in
        for _ = 1 to trials do
          let trial_rng = Dsim.Rng.split rng in
          let rounds = 1 + Dsim.Rng.int trial_rng 5 in
          let pattern, predicate =
            match kind with
            | `Crash ->
              ( Syncnet.Faults.random_crash trial_rng ~n ~f ~max_round:rounds,
                Rrfd.Predicate.crash ~f )
            | `Omission ->
              ( Syncnet.Faults.random_omission trial_rng ~n ~f,
                Rrfd.Predicate.omission ~f )
          in
          let inputs = Tasks.Inputs.distinct n in
          let result =
            Syncnet.Sync_net.run ~n ~rounds ~pattern ~stop_when_decided:false
              ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
              ()
          in
          if
            not
              (Rrfd.Predicate.holds predicate result.Syncnet.Sync_net.induced)
          then incr bad
        done;
        !bad
      in
      let crash_bad = violations `Crash in
      let omission_bad = violations `Omission in
      rows :=
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_int trials;
          Table.cell_int crash_bad;
          Table.cell_int omission_bad;
          Table.cell_bool (crash_bad = 0 && omission_bad = 0);
        ]
        :: !rows)
    sizes;
  {
    Table.id = "E1";
    title = "synchronous systems induce the item-1/item-2 RRFD predicates";
    claim =
      "Sec. 2 items 1-2: a synchronous run with ≤f omission (resp. crash) \
       faults, read as D(i,r) = senders missed, satisfies predicate (1) \
       (resp. (1)∧(2))";
    header = [ "n"; "f"; "trials"; "crash-viol"; "omit-viol"; "ok" ];
    rows = List.rev !rows;
    notes = [];
    counters = [];
  }
