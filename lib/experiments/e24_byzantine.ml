(* E24 — Byzantine round-machines with fork accountability.

   A violation-rate × detection-completeness grid over Byz adversary
   specs.  Each row drives three probes per trial:

   - the accountable quorum vote (Check.Byz_check over
     Msgnet.Accountability): how often do the row's equivocators fork
     two honest deciders, and does the signed-log audit then convict
     ≥ f+1 of them without ever naming an honest process?
   - the round layer under the same spec string: content lies must land
     in the heard-of record's "lied" component attributed only to
     Byzantine members (lie-attribution soundness), and the lie history
     must leave an honest kernel of n − m processes clean;
   - Chandra–Toueg under the same spec: CT trusts a Decide on receipt,
     so corrupt members fork it outright — the table reports that
     violation rate and checks the CT equivocation audit stays sound.

   Trials run as a Runtime.Campaign keyed by (seed, row, trial), so the
   table is bit-identical at every -j. *)

module Byz = Check.Byz_check
module Acc = Msgnet.Accountability

type row_spec = {
  label : string; (* an Adversary.of_spec string — rows read like specs *)
  n : int;
  f : int;
  m : int; (* Byzantine member count, 0..m-1 *)
  forge : bool;
}

let grid =
  [
    { label = "byz:m=0"; n = 4; f = 1; m = 0; forge = false };
    { label = "byz:m=1,equiv=1"; n = 4; f = 1; m = 1; forge = false };
    { label = "byz:m=1,corrupt=1"; n = 4; f = 1; m = 1; forge = false };
    { label = "byz:m=2,equiv=1"; n = 4; f = 1; m = 2; forge = false };
    { label = "byz:m=2,equiv=1,forge=1"; n = 4; f = 1; m = 2; forge = true };
    { label = "byz:m=3,equiv=1"; n = 7; f = 2; m = 3; forge = false };
  ]

type trial_obs = {
  vote_forked : bool;
  vote_sound : bool;
  vote_complete : bool; (* vacuously true without a fork *)
  accused : int;
  lied_sound : bool;
  kernel : bool;
  tampered : int;
  ct_violated : bool;
  ct_sound : bool;
  ct_undecided : int;
  counters : Rrfd.Counters.t;
}

let run_trial row ~adversary ~rng =
  let { n; f; m; forge; _ } = row in
  let s_vote = Dsim.Rng.bits30 rng in
  let s_rl = Dsim.Rng.bits30 rng in
  let s_ct = Dsim.Rng.bits30 rng in
  (* Probe 1: the accountable quorum vote.  Half the trials use the
     split-brain plan — every member echoes each receiver's own input,
     the strongest fork driver in the strategy space — so the m > f
     rows actually exercise the completeness gate; the rest draw random
     lying plans like the fuzzer. *)
  let witness =
    let rng = Dsim.Rng.create s_vote in
    if m >= 1 && Dsim.Rng.bool rng then begin
      let inputs = Byz.binary_inputs n in
      let strategies = Array.make n None in
      for i = 0 to m - 1 do
        strategies.(i) <- Some { Acc.votes = Array.copy inputs; cert = None }
      done;
      { Byz.n; f; seed = Dsim.Rng.bits30 rng; inputs; strategies }
    end
    else Byz.derive_witness ~n ~f ~byz:m ~forge ~rng
  in
  let outcome = Byz.run_witness witness in
  let verdict = Acc.check ~f outcome in
  let vote_forked = outcome.Acc.fork <> None in
  let vote_sound = match verdict with Acc.Unsound _ -> false | _ -> true in
  let vote_complete =
    match verdict with Acc.Incomplete _ -> false | _ -> true
  in
  (* Probe 2: the round layer under the row's spec string. *)
  let rounds = 3 in
  let rl =
    Msgnet.Round_layer.run ~seed:s_rl ~adversary ~n ~f ~rounds
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
      ()
  in
  let members = Msgnet.Adversary.byzantine adversary ~n in
  let lie_history = Msgnet.Heard_of.to_lie_history rl.Msgnet.Round_layer.heard_of in
  let lied_sound =
    (* Every lied-about sender is an adversary-marked member. *)
    Rrfd.Pset.subset
      (Rrfd.Fault_history.cumulative_union lie_history)
      members
  in
  let kernel =
    Rrfd.Predicate.holds
      (Rrfd.Predicate.eventual_honest_kernel ~k:(n - m))
      lie_history
  in
  (* Probe 3: CT consensus, which trusts Decide on receipt. *)
  let ct_inputs = Array.init n (fun i -> i mod 2) in
  let ct =
    Msgnet.Ct_consensus.run ~seed:s_ct ~adversary ~n ~f ~inputs:ct_inputs
      ~horizon:240.0 ()
  in
  let honest_decisions =
    List.filter_map
      (fun i ->
        if Rrfd.Pset.mem i members then None else ct.Msgnet.Ct_consensus.decisions.(i))
      (List.init n Fun.id)
  in
  let ct_violated =
    match honest_decisions with
    | [] -> false
    | v :: rest -> List.exists (fun w -> w <> v) rest
  in
  let ct_sound = Rrfd.Pset.subset ct.Msgnet.Ct_consensus.accused members in
  let ct_undecided =
    Array.fold_left
      (fun c d -> if d = None then c + 1 else c)
      0 ct.Msgnet.Ct_consensus.decisions
  in
  {
    vote_forked;
    vote_sound;
    vote_complete;
    accused = Rrfd.Pset.cardinal outcome.Acc.accused;
    lied_sound;
    kernel;
    tampered =
      outcome.Acc.messages_tampered
      + rl.Msgnet.Round_layer.messages_tampered
      + ct.Msgnet.Ct_consensus.messages_tampered;
    ct_violated;
    ct_sound;
    ct_undecided;
    counters =
      {
        Rrfd.Counters.rounds =
          Rrfd.Fault_history.rounds rl.Msgnet.Round_layer.induced;
        messages = rl.Msgnet.Round_layer.messages_delivered;
        detector_queries = 0;
        predicate_checks = 1;
      };
  }

type row_digest = {
  spec : string;
  trials : int;
  vote_forks : int;
  min_accused_on_fork : int option;
  vote_sound_all : bool;
  vote_complete_all : bool;
  lied_sound_all : bool;
  kernel_all : bool;
  tampered_total : int;
  ct_violations : int;
  ct_sound_all : bool;
  ct_undecided_total : int;
}

let run_detailed ?(seed = 24) ?(trials = 50) ?jobs () =
  let work = ref [] in
  let digests = ref [] in
  let rows =
    List.mapi
      (fun idx row ->
        let adversary =
          match Msgnet.Adversary.of_spec row.label with
          | Ok a -> a
          | Error e -> invalid_arg ("E24: " ^ e)
        in
        let obs =
          Runtime.Campaign.run ?jobs
            ~seed:(Dsim.Rng.derive_seed seed idx)
            ~trials
            (fun ~trial:_ ~rng -> run_trial row ~adversary ~rng)
        in
        work := Array.map (fun o -> o.counters) obs :: !work;
        let count p = Array.fold_left (fun c o -> if p o then c + 1 else c) 0 obs in
        let sum g = Array.fold_left (fun c o -> c + g o) 0 obs in
        let vote_forks = count (fun o -> o.vote_forked) in
        let min_accused_on_fork =
          Array.fold_left
            (fun acc o ->
              if not o.vote_forked then acc
              else
                match acc with
                | None -> Some o.accused
                | Some m -> Some (min m o.accused))
            None obs
        in
        let vote_sound_all = count (fun o -> o.vote_sound) = trials in
        let vote_complete_all = count (fun o -> o.vote_complete) = trials in
        let lied_sound_all = count (fun o -> o.lied_sound) = trials in
        let kernel_all = count (fun o -> o.kernel) = trials in
        let ct_violations = count (fun o -> o.ct_violated) in
        let ct_sound_all = count (fun o -> o.ct_sound) = trials in
        let digest =
          {
            spec = row.label;
            trials;
            vote_forks;
            min_accused_on_fork;
            vote_sound_all;
            vote_complete_all;
            lied_sound_all;
            kernel_all;
            tampered_total = sum (fun o -> o.tampered);
            ct_violations;
            ct_sound_all;
            ct_undecided_total = sum (fun o -> o.ct_undecided);
          }
        in
        digests := digest :: !digests;
        (* The tentpole's theorem, as a per-row gate: accusations are
           always sound, every vote fork convicts ≥ f+1, lies are always
           attributed to members, and a below-threshold row (m ≤ f)
           never forks the vote at all. *)
        let ok =
          vote_sound_all && vote_complete_all && lied_sound_all && kernel_all
          && ct_sound_all
          && ((row.m > row.f) || vote_forks = 0)
        in
        [
          row.label;
          Printf.sprintf "%d/%d/%d" row.n row.f row.m;
          Table.cell_int trials;
          Table.cell_int vote_forks;
          (match min_accused_on_fork with
          | None -> "-"
          | Some m -> Table.cell_int m);
          Table.cell_bool vote_sound_all;
          Table.cell_bool vote_complete_all;
          Table.cell_bool lied_sound_all;
          Table.cell_bool kernel_all;
          Table.cell_int (sum (fun o -> o.tampered));
          Table.cell_int ct_violations;
          Table.cell_bool ct_sound_all;
          Table.cell_int (sum (fun o -> o.ct_undecided));
          Table.cell_bool ok;
        ])
      grid
  in
  let table =
    {
      Table.id = "E24";
      title = "Byzantine round-machines and fork accountability";
      claim =
        "content lies are attributable: under byz:* adversaries the \
         heard-of record splits \"silent toward p\" from \"lied to p\" \
         with lies only ever attributed to Byzantine members, and when \
         > n/3 equivocators fork the accountable quorum vote, replaying \
         the signed send log convicts ≥ f+1 of them (equivocation or \
         phantom quorum) without ever accusing an honest process — \
         while CT consensus, which trusts a Decide on receipt, forks \
         under a single corrupt member";
      header =
        [
          "adversary"; "n/f/m"; "trials"; "forks"; "min-acc"; "sound";
          "complete"; "lied⊆byz"; "kernel"; "tampered"; "ct-viol";
          "ct-sound"; "ct-undec"; "ok";
        ];
      rows;
      notes =
        [
          "forks = trials where two honest processes decided differently \
           in the accountable quorum vote; min-acc = fewest processes \
           convicted by the audit across those forks (must be ≥ f+1)";
          "sound/complete gate the audit two-sidedly; lied⊆byz and \
           kernel gate the round layer's lie extraction (lies attributed \
           only to members; n−m honest processes stay clean)";
          "ct-viol counts CT agreement violations — nonzero under \
           corrupt members by design (CT trusts Decide); ct-sound gates \
           its equivocation audit; m ≤ f rows must show zero vote forks";
        ];
      counters = Table.counter_stats (Array.concat (List.rev !work));
    }
  in
  (table, List.rev !digests)

let run ?seed ?trials ?jobs () = fst (run_detailed ?seed ?trials ?jobs ())
