(** The experiment registry: every table the harness can regenerate. *)

type entry = {
  id : string;
  title : string;
  run : seed:int -> trials:int option -> jobs:int option -> Table.t;
}
(** [jobs] is the campaign worker-domain count ([None] = all cores); it
    never changes a table, only how fast it is produced.  Serial
    experiments ignore it. *)

val all : entry list
(** E1 through E21, in order. *)

val find : string -> entry option
(** Look up by case-insensitive id ("e9" finds E9). *)

val default_seed : int

val run_all : ?seed:int -> ?jobs:int -> unit -> Table.t list
