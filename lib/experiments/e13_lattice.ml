(* E13 — the submodel lattice of Section 2, checked exhaustively over every
   two-round history of a three-process system. *)

let run ?(seed = 13) ?(trials = 0) () =
  ignore seed;
  ignore trials;
  let open Rrfd.Predicate in
  let predicates =
    [
      ("crash(1)", crash ~f:1);
      ("omission(1)", omission ~f:1);
      ("snapshot(1)", snapshot ~f:1);
      ("shm(1)", shared_memory ~f:1);
      ("async(1)", async_resilient ~f:1);
      ("kset(1)", k_set ~k:1);
      ("kset(2)", k_set ~k:2);
      ("eq5", identical_views);
      ("detS", detector_s);
    ]
  in
  (* Expected implication matrix at n = 3, rounds ≤ 2 (row ⇒ column). *)
  let rows =
    List.map
      (fun (name_a, a) ->
        let cells =
          List.map
            (fun (_, b) ->
              match Rrfd.Submodel.check_exhaustive ~n:3 ~rounds:2 a b with
              | Rrfd.Submodel.Implies -> "⇒"
              | Rrfd.Submodel.Counterexample _ -> "·")
            predicates
        in
        name_a :: cells)
      predicates
  in
  (* Sanity anchors from the paper: crash ⊂ omission explicitly (item 2),
     snapshot ⊂ shm ⊂ async, eq5 ⊂ kset(1) ⊂ kset(2). *)
  let lookup r c =
    let row = List.nth rows r in
    List.nth row (c + 1)
  in
  let anchors_ok =
    lookup 0 1 = "⇒" (* crash ⇒ omission *)
    && lookup 2 3 = "⇒" (* snapshot ⇒ shm *)
    && lookup 3 4 = "⇒" (* shm ⇒ async *)
    && lookup 7 5 = "⇒" (* eq5 ⇒ kset(1) *)
    && lookup 5 6 = "⇒" (* kset(1) ⇒ kset(2) *)
    && lookup 1 0 = "·" (* omission ⇏ crash *)
    && lookup 4 3 = "·" (* async ⇏ shm *)
  in
  let rows = rows @ [ [ "anchors"; Table.cell_bool anchors_ok ] ] in
  {
    Table.id = "E13";
    title = "the submodel lattice (Section 2), exhaustive at n = 3";
    claim =
      "Sec. 2: models compare by predicate implication — crash ⊂ omission \
       (explicit in item 2), snapshot ⊂ shm ⊂ async message passing, \
       eq(5) ⊂ 1-set ⊂ 2-set";
    header = "P_A ⇒ P_B" :: List.map fst predicates;
    rows;
    notes =
      [
        "⇒ = implication over every ≤2-round 3-process history; · = \
         counterexample found";
      ];
    counters = [];
  }
