(* E5 — item 6: the detector-S RRFD is the |∪∪D| < n predicate, i.e.
   omission with f = n − 1, reducing wait-free S-consensus to item-1
   consensus by predicate manipulation. *)

let run ?(seed = 5) ?(trials = 300) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      (* Sampled both directions of the equivalence. *)
      let wait_free_omission = Rrfd.Predicate.omission ~f:(n - 1) in
      let s_to_omission =
        Rrfd.Submodel.check_sampled (Dsim.Rng.split rng) ~samples:trials
          ~rounds:4
          ~gen:(fun r -> Rrfd.Detector_gen.detector_s r ~n)
          ~n Rrfd.Predicate.detector_s
          (Rrfd.Predicate.make ~name:"|∪∪D|<n" ~doc:"" (fun h ->
               if
                 Rrfd.Pset.cardinal (Rrfd.Fault_history.cumulative_union h)
                 < Rrfd.Fault_history.n h
               then None
               else Some "covers all"))
      in
      (* The omission predicate additionally forbids self-suspicion, which
         detector-S histories may exhibit; the cumulative-union clause is
         the operative one.  We also check the omission generator's
         histories satisfy detector-S. *)
      let omission_to_s =
        Rrfd.Submodel.check_sampled (Dsim.Rng.split rng) ~samples:trials
          ~rounds:4
          ~gen:(fun r -> Rrfd.Detector_gen.omission r ~n ~f:(n - 1))
          ~n wait_free_omission Rrfd.Predicate.detector_s
      in
      let verdict = function
        | Rrfd.Submodel.Implies -> true
        | Rrfd.Submodel.Counterexample _ -> false
      in
      rows :=
        [
          Table.cell_int n;
          Table.cell_int trials;
          Table.cell_bool (verdict s_to_omission);
          Table.cell_bool (verdict omission_to_s);
          Table.cell_bool (verdict s_to_omission && verdict omission_to_s);
        ]
        :: !rows)
    [ 3; 5; 8; 12 ];
  {
    Table.id = "E5";
    title = "failure detector S as an RRFD (item 6)";
    claim =
      "Sec. 2 item 6: ∃p_j never suspected ⟺ |∪_r ∪_i D(i,r)| < n — the \
       RRFD of item 1 with f = n−1, so wait-free consensus with S reduces \
       to synchronous omission consensus";
    header = [ "n"; "samples"; "S⇒|∪∪D|<n"; "omission(n−1)⇒S"; "ok" ];
    rows = List.rev !rows;
    notes = [];
    counters = [];
  }
