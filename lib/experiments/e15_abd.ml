(* E15 — item 4's substrate citation [22]: SWMR atomic registers from
   asynchronous message passing with a correct majority (ABD). *)

let run ?(seed = 15) ?(trials = 150) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      let f = (n - 1) / 2 in
      let violations = ref 0 and ops = ref 0 and messages = ref 0 in
      for t = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let sim = Dsim.Sim.create ~seed:(seed + t) () in
        let reg =
          Msgnet.Abd.create ~sim ~n ~f ~writer:0 ~min_delay:1.0 ~max_delay:15.0 ()
        in
        let rec writes k () =
          if k < 4 then
            Msgnet.Abd.write reg ~value:(10 + k) ~on_done:(fun () ->
                Dsim.Sim.schedule sim
                  ~delay:(Dsim.Rng.float trial_rng 8.0)
                  (fun _ -> writes (k + 1) ()))
        in
        writes 0 ();
        for _ = 1 to 6 do
          let proc = 1 + Dsim.Rng.int trial_rng (n - 1) in
          Dsim.Sim.schedule sim
            ~delay:(Dsim.Rng.float trial_rng 80.0)
            (fun _ -> Msgnet.Abd.read reg ~proc ~on_done:(fun _ -> ()))
        done;
        let crash_count = Dsim.Rng.int trial_rng (f + 1) in
        List.iter
          (fun v ->
            Dsim.Sim.schedule sim
              ~delay:(Dsim.Rng.float trial_rng 60.0)
              (fun _ -> Msgnet.Abd.crash reg (v + 1)))
          (Dsim.Rng.sample_without_replacement trial_rng crash_count (n - 1));
        Dsim.Sim.run sim;
        let events = Msgnet.Abd.History.events reg in
        ops := !ops + List.length events;
        messages := !messages + 0;
        if Msgnet.Abd.History.check_atomic events <> None then incr violations
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_int trials;
          Table.cell_int !violations;
          Table.cell_float (float_of_int !ops /. float_of_int trials);
          Table.cell_bool (!violations = 0);
        ]
        :: !rows)
    [ 3; 5; 7; 9 ];
  {
    Table.id = "E15";
    title = "atomic registers from message passing (ABD, item 4's [22])";
    claim =
      "Attiya–Bar-Noy–Dolev: with 2f < n, majority-quorum write and \
       query+write-back read give a SWMR atomic register over asynchronous \
       message passing — all operation histories linearize";
    header = [ "n"; "f"; "trials"; "atomicity-viol"; "ops/trial"; "ok" ];
    rows = List.rev !rows;
    notes =
      [ "each trial: 4 chained writes, 6 reads at random times, ≤ f crashes" ];
    counters = [];
  }
