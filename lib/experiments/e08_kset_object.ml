(* E8 — Theorem 3.3: a k-set-consensus object plus SWMR memory implements
   the k-set RRFD. *)

let run ?(seed = 8) ?(trials = 400) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let work = ref [] in
  List.iter
    (fun (n, k) ->
      let pred_bad = ref 0 and unreadable = ref 0 and agreement_ok = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let r =
          Shm.Thm33.one_round ~rng:(Dsim.Rng.split trial_rng) ~n ~k
            ~schedule:(Shm.Exec.Random (Dsim.Rng.split trial_rng))
            ()
        in
        if not r.Shm.Thm33.values_readable then incr unreadable;
        let h = Rrfd.Fault_history.of_rounds ~n [ r.Shm.Thm33.fault_sets ] in
        if not (Rrfd.Predicate.holds (Rrfd.Predicate.k_set ~k) h) then
          incr pred_bad;
        (* and the derived detector really lets Thm 3.1 run on top *)
        let inputs = Tasks.Inputs.distinct n in
        let ex =
          Protocols.Catalog.run_engine
            (Protocols.Catalog.find_exn "kset-one-round")
            ~inputs ~n ~f:(k - 1)
            ~detector:(Rrfd.Detector.of_schedule [ r.Shm.Thm33.fault_sets ])
            ()
        in
        if Tasks.Agreement.check ~k ~inputs ex.Rrfd.Substrate.decisions = None
        then incr agreement_ok;
        work := ex.Rrfd.Substrate.counters :: !work
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int trials;
          Table.cell_int !pred_bad;
          Table.cell_int !unreadable;
          Table.cell_int !agreement_ok;
          Table.cell_bool
            (!pred_bad = 0 && !unreadable = 0 && !agreement_ok = trials);
        ]
        :: !rows)
    [ (4, 1); (4, 2); (8, 2); (8, 4); (12, 3) ];
  {
    Table.id = "E8";
    title = "k-set object + SWMR memory implements the k-set RRFD (Thm 3.3)";
    claim =
      "Thm 3.3: writing one's choice from a k-set-consensus object and \
       collecting yields D(i,r) = S − Q with |∪D − ∩D| ≤ k−1, and the \
       values of unsuspected processes are readable";
    header =
      [ "n"; "k"; "trials"; "pred-viol"; "unreadable"; "kset-solved"; "ok" ];
    rows = List.rev !rows;
    notes = [ "kset-solved counts trials where Thm 3.1 on the derived detector solved the task" ];
    counters = Table.counter_stats (Array.of_list (List.rev !work));
  }
