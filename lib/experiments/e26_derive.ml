(* E26 — derived heard-of predicates, certified two-sidedly.

   Every E21 policy (plus a Byzantine one) goes through Check.Derive:
   find the strongest vocabulary predicate all its executions satisfy,
   certify upward with a fresh fuzz campaign, witness every refuted
   candidate downward, and at n = 3 replace the sampled tightness
   argument with a full enumeration of the derived space (a proof).

   Two structural gates ride on the grid:
   - the byz row runs at the same row seed as "none" and must derive the
     identical predicate with identical witnesses — lies change message
     content, never the delay schedule, so the benign projection of a
     Byzantine policy is placed at exactly the benign policy's point of
     the lattice;
   - the exhaustive rows must find an enumeration-backed separation for
     every frontier member (tight as a theorem, not a sample).

   Rows run as derivation campaigns keyed on (seed, row); the table and
   the per-row artifacts run_detailed exposes are identical at any -j. *)

let fuzz_grid = E21_faultnet.grid @ [ "byz:m=2,corrupt=1" ]

let exhaustive_grid = [ "none"; "drop:p=30" ]

type row = {
  policy : string;
  mode : string;  (* "fuzz" | "exh" *)
  outcome : Check.Derive.outcome;
  row_ok : bool;
}

let run_detailed ?(seed = 26) ?(trials = 250) ?jobs () =
  let fuzz_cfg =
    {
      Check.Derive.default_config with
      observe_trials = trials;
      certify_trials = 2 * trials;
      jobs;
    }
  in
  let exh_cfg =
    {
      fuzz_cfg with
      Check.Derive.n = 3;
      f = 1;
      rounds = 3;
      exhaustive = true;
    }
  in
  let fuzz_lat =
    match Check.Derive.lattice_for ~cfg:fuzz_cfg with
    | Ok l -> l
    | Error e -> invalid_arg ("E26: " ^ e)
  in
  let exh_lat =
    match Check.Derive.lattice_for ~cfg:exh_cfg with
    | Ok l -> l
    | Error e -> invalid_arg ("E26: " ^ e)
  in
  let derive ~lattice ~cfg ~row_seed policy =
    match
      Check.Derive.derive ~lattice
        ~cfg:{ cfg with Check.Derive.seed = row_seed }
        ~policy ()
    with
    | Ok o -> o
    | Error e -> invalid_arg ("E26: " ^ e)
  in
  (* The byz row reuses row 0's seed: same delay schedules as "none",
     so its benign projection must derive identically. *)
  let row_seed idx policy =
    if policy = "byz:m=2,corrupt=1" then Dsim.Rng.derive_seed seed 0
    else Dsim.Rng.derive_seed seed idx
  in
  let fuzz_rows =
    List.mapi
      (fun idx policy ->
        let outcome =
          derive ~lattice:fuzz_lat ~cfg:fuzz_cfg ~row_seed:(row_seed idx policy)
            policy
        in
        { policy; mode = "fuzz"; outcome; row_ok = Check.Derive.ok outcome })
      fuzz_grid
  in
  let none_outcome = (List.hd fuzz_rows).outcome in
  let fuzz_rows =
    List.map
      (fun r ->
        if r.policy <> "byz:m=2,corrupt=1" then r
        else
          let benign_matches_none =
            r.outcome.Check.Derive.sound = none_outcome.Check.Derive.sound
            && List.map
                 (fun w -> (w.Check.Derive.spec, w.Check.Derive.source))
                 r.outcome.Check.Derive.witnesses
               = List.map
                   (fun w -> (w.Check.Derive.spec, w.Check.Derive.source))
                   none_outcome.Check.Derive.witnesses
          in
          { r with row_ok = r.row_ok && benign_matches_none })
      fuzz_rows
  in
  let exh_rows =
    List.mapi
      (fun i policy ->
        let outcome =
          derive ~lattice:exh_lat ~cfg:exh_cfg
            ~row_seed:(Dsim.Rng.derive_seed seed (List.length fuzz_grid + i))
            policy
        in
        { policy; mode = "exh"; outcome; row_ok = Check.Derive.ok outcome })
      exhaustive_grid
  in
  let rows = fuzz_rows @ exh_rows in
  let cells r =
    let o = r.outcome in
    let cfg = o.Check.Derive.cfg in
    [
      r.policy;
      r.mode;
      Table.cell_int cfg.Check.Derive.n;
      Table.cell_int cfg.Check.Derive.f;
      Table.cell_int cfg.Check.Derive.observe_trials;
      Table.cell_int cfg.Check.Derive.certify_trials;
      Table.cell_int (List.length o.Check.Derive.cands);
      Table.cell_int (List.length o.Check.Derive.sound);
      String.concat "+" o.Check.Derive.conjuncts;
      Table.cell_int (List.length o.Check.Derive.witnesses);
      Table.cell_int (List.length o.Check.Derive.separations);
      Table.cell_bool o.Check.Derive.certified;
      Table.cell_bool (Check.Derive.tight o);
      Table.cell_bool r.row_ok;
    ]
  in
  let table =
    {
      Table.id = "E26";
      title = "derived heard-of predicates from adversary policies";
      claim =
        "for every network adversary policy the strongest vocabulary \
         predicate its executions satisfy is derivable and certifiable \
         two-sidedly: a fresh sharded fuzz campaign finds no violation of \
         the derived predicate (sound), every stronger candidate comes \
         with a concrete violating execution (tight), at n=3 by full \
         enumeration of the derived space (proof), and a Byzantine \
         policy's benign projection derives exactly the benign policy's \
         predicate";
      header =
        [
          "adversary"; "mode"; "n"; "f"; "obs"; "cert"; "cands"; "sound";
          "derived"; "wit"; "sep"; "certified"; "tight"; "ok";
        ];
      rows = List.map cells rows;
      notes =
        [
          "derived = lattice-minimal conjunction of every candidate no \
           observed execution violated; wit = refuted candidates, each \
           with its lowest violating trial as a replayable witness";
          "mode exh additionally separates each frontier member from the \
           derived predicate by enumerating the whole small-n space — \
           sep counts those proofs";
          "the byz row runs at the same row seed as none and must derive \
           identically (lies never touch the delay schedule), or its ok \
           cell fails";
        ];
      counters =
        Table.counter_stats
          (Array.concat
             (List.map (fun r -> r.outcome.Check.Derive.counters) rows));
    }
  in
  (table, rows)

let run ?seed ?trials ?jobs () = fst (run_detailed ?seed ?trials ?jobs ())
