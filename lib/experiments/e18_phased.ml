(* E18 — the Section-7 program: a new algorithm developed inside the RRFD
   framework.  Consensus under an eventually-stable RRFD (divergent
   candidate rounds until a "GST" round, snapshot-style adopt-commit rounds
   throughout): safe always, live one phase after stabilisation. *)

let run ?(seed = 18) ?(trials = 300) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let work = ref [] in
  List.iter
    (fun (n, stabilize_at) ->
      let f = n - 1 in
      let violations = ref 0 and late = ref 0 and max_rounds_used = ref 0 in
      let horizon = Rrfd.Phased_consensus.rounds_needed ~stabilize_at in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs =
          Array.init n (fun _ -> 100 + Dsim.Rng.int trial_rng 3)
        in
        let ex =
          Protocols.Catalog.run_engine
            (Protocols.Catalog.find_exn "phased-consensus")
            ~inputs
            ~check:(Rrfd.Phased_consensus.predicate ~f ~stabilize_at)
            ~max_rounds:horizon ~n ~f
            ~detector:
              (Rrfd.Phased_consensus.detector trial_rng ~n ~f ~stabilize_at)
            ()
        in
        max_rounds_used := max !max_rounds_used ex.Rrfd.Substrate.rounds_used;
        work := ex.Rrfd.Substrate.counters :: !work;
        (match
           Tasks.Agreement.check ~k:1 ~inputs ex.Rrfd.Substrate.decisions
         with
        | None -> ()
        | Some _ -> incr violations);
        if ex.Rrfd.Substrate.rounds_used > horizon then incr late
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int stabilize_at;
          Table.cell_int horizon;
          Table.cell_int trials;
          Table.cell_int !violations;
          Table.cell_int !max_rounds_used;
          Table.cell_bool (!violations = 0 && !late = 0);
        ]
        :: !rows)
    [ (3, 1); (3, 7); (6, 1); (6, 4); (6, 10); (12, 7) ];
  {
    Table.id = "E18";
    title = "a new RRFD-native algorithm: phased consensus with eventual stability";
    claim =
      "Sec. 7's program ('we advocate using these models to develop real \
       algorithms'): mixing equation-(5)-after-GST candidate rounds with \
       snapshot adopt-commit rounds yields wait-free consensus — safe \
       under full pre-GST chaos, deciding within one phase of \
       stabilisation";
    header =
      [ "n"; "GST-round"; "horizon"; "trials"; "violations"; "max-rounds"; "ok" ];
    rows = List.rev !rows;
    notes =
      [
        "horizon = 3·(⌈(GST−1)/3⌉+1) rounds, the guaranteed decision point; \
         f = n−1 (wait-free)";
      ];
    counters = Table.counter_stats (Array.of_list (List.rev !work));
  }
