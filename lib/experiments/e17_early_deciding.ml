(* E17 — ablation on the E9 lower bound: the ⌊f/k⌋+1 bound is worst-case.
   With f' < f actual crashes, early-deciding consensus finishes in
   min(f'+2, f+1) rounds; the chain adversary is exactly the schedule that
   makes "early" impossible. *)

let latest_decision_round (ex : int Rrfd.Substrate.execution) =
  Array.fold_left
    (fun acc r -> match r with Some round -> max acc round | None -> acc)
    0 ex.Rrfd.Substrate.decision_rounds

let run ?(seed = 17) ?(trials = 150) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let work = ref [] in
  let n = 10 and f = 6 in
  (* Sweep the number of actual crashes. *)
  List.iter
    (fun actual ->
      let worst_round = ref 0 and violations = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Tasks.Inputs.distinct n in
        let victims = Dsim.Rng.sample_without_replacement trial_rng actual n in
        let specs =
          List.map
            (fun p ->
              ( p,
                1 + Dsim.Rng.int trial_rng (f + 1),
                Rrfd.Pset.random_subset trial_rng (Rrfd.Pset.full n) ))
            victims
        in
        let pattern = Syncnet.Faults.crash ~n specs in
        let ex =
          Protocols.Catalog.run_sync
            (Protocols.Catalog.find_exn "early-deciding")
            ~inputs ~rounds:(f + 1) ~n ~f ~pattern ()
        in
        worst_round := max !worst_round (latest_decision_round ex);
        let masked =
          Array.mapi
            (fun i d ->
              if Rrfd.Pset.mem i ex.Rrfd.Substrate.crashed then None else d)
            ex.Rrfd.Substrate.decisions
        in
        if
          Tasks.Agreement.check ~allow_undecided:ex.Rrfd.Substrate.crashed
            ~k:1 ~inputs masked
          <> None
        then incr violations;
        work := ex.Rrfd.Substrate.counters :: !work
      done;
      let bound = min (actual + 2) (f + 1) in
      rows :=
        [
          "random crashes";
          Table.cell_int actual;
          Table.cell_int trials;
          Table.cell_int !worst_round;
          Table.cell_int bound;
          Table.cell_int !violations;
          Table.cell_bool (!violations = 0 && !worst_round <= bound);
        ]
        :: !rows)
    [ 0; 1; 2; 4; 6 ];
  (* The chain adversary saturates the bound. *)
  let chain_rounds = 3 in
  let k = 1 in
  let cn = Adversary.Lower_bound.required_processes ~k ~rounds:chain_rounds in
  let cf = k * chain_rounds in
  let adv = Adversary.Lower_bound.build ~n:cn ~k ~rounds:chain_rounds in
  let pattern = Syncnet.Faults.crash ~n:cn adv.Adversary.Lower_bound.crash_specs in
  let chain_ex =
    Protocols.Catalog.run_sync
      (Protocols.Catalog.find_exn "early-deciding")
      ~inputs:adv.Adversary.Lower_bound.inputs ~rounds:(cf + 2) ~n:cn
      ~f:(cf + 1) ~pattern ()
  in
  work := chain_ex.Rrfd.Substrate.counters :: !work;
  let worst = latest_decision_round chain_ex in
  rows :=
    [
      "chain adversary";
      Table.cell_int cf;
      "1";
      Table.cell_int worst;
      Table.cell_int (cf + 2);
      "-";
      Table.cell_bool (worst >= chain_rounds + 1);
    ]
    :: !rows;
  {
    Table.id = "E17";
    title = "early-deciding consensus: the bound is worst-case only";
    claim =
      "ablation on Cor 4.2: with f' actual crashes, consensus decides in \
       min(f'+2, f+1) rounds; the chain adversary (the lower-bound \
       schedule) forces decisions past round f'+1";
    header =
      [
        "workload"; "f'"; "trials"; "worst-round"; "bound"; "violations"; "ok";
      ];
    rows = List.rev !rows;
    notes = [ Printf.sprintf "random-crash rows: n = %d, f = %d" n f ];
    counters = Table.counter_stats (Array.of_list (List.rev !work));
  }
