(* E10 — Section 4.2: the wait-free adopt-commit protocol, register and
   RRFD versions, under random interleavings / snapshot adversaries. *)

let run ?(seed = 10) ?(trials = 500) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let work = ref [] in
  List.iter
    (fun n ->
      let reg_bad = ref 0 and reg_commits = ref 0 in
      let rrfd_bad = ref 0 and rrfd_commits = ref 0 in
      let conv_bad = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Tasks.Inputs.binary trial_rng n in
        (* register version *)
        let r =
          Shm.Adopt_commit_shm.run ~inputs
            ~schedule:(Shm.Exec.Random (Dsim.Rng.split trial_rng))
        in
        let outcomes = Array.map Option.some r.Shm.Adopt_commit_shm.outcomes in
        if Rrfd.Adopt_commit.check_outcomes ~inputs outcomes <> None then
          incr reg_bad;
        Array.iter
          (fun o -> if Rrfd.Adopt_commit.is_commit o then incr reg_commits)
          r.Shm.Adopt_commit_shm.outcomes;
        (* RRFD version under a snapshot adversary, via the catalog (whose
           adopt-commit entry packs outcomes as ints — decode to judge). *)
        let ex =
          Protocols.Catalog.run_engine
            (Protocols.Catalog.find_exn "adopt-commit")
            ~inputs
            ~check:(Rrfd.Predicate.snapshot ~f:(n - 1))
            ~n ~f:(n - 1)
            ~detector:(Rrfd.Detector_gen.iis (Dsim.Rng.split trial_rng) ~n ~f:(n - 1))
            ()
        in
        let rrfd_outcomes =
          Array.map
            (Option.map Rrfd.Adopt_commit.decode)
            ex.Rrfd.Substrate.decisions
        in
        if Rrfd.Adopt_commit.check_outcomes ~inputs rrfd_outcomes <> None then
          incr rrfd_bad;
        Array.iter
          (fun o ->
            match o with
            | Some o when Rrfd.Adopt_commit.is_commit o -> incr rrfd_commits
            | Some _ | None -> ())
          rrfd_outcomes;
        work := ex.Rrfd.Substrate.counters :: !work;
        (* convergence on identical inputs *)
        let same = Tasks.Inputs.constant n 7 in
        let rc =
          Shm.Adopt_commit_shm.run ~inputs:same
            ~schedule:(Shm.Exec.Random (Dsim.Rng.split trial_rng))
        in
        if
          not
            (Array.for_all
               (function Rrfd.Adopt_commit.Commit 7 -> true | _ -> false)
               rc.Shm.Adopt_commit_shm.outcomes)
        then incr conv_bad
      done;
      let pct count = 100.0 *. float_of_int count /. float_of_int (trials * n) in
      rows :=
        [
          Table.cell_int n;
          Table.cell_int trials;
          Table.cell_int !reg_bad;
          Table.cell_int !rrfd_bad;
          Table.cell_int !conv_bad;
          Table.cell_float (pct !reg_commits);
          Table.cell_float (pct !rrfd_commits);
          Table.cell_bool (!reg_bad = 0 && !rrfd_bad = 0 && !conv_bad = 0);
        ]
        :: !rows)
    [ 2; 3; 5; 8; 12 ];
  {
    Table.id = "E10";
    title = "wait-free adopt-commit (Sec. 4.2)";
    claim =
      "Sec. 4.2: two register rounds give adopt-commit — identical inputs \
       commit everywhere, and a committed value is universally carried — \
       under every interleaving";
    header =
      [
        "n"; "trials"; "reg-viol"; "rrfd-viol"; "conv-viol"; "reg-commit%";
        "rrfd-commit%"; "ok";
      ];
    rows = List.rev !rows;
    notes = [ "inputs are random bits; commit% is per-process over all trials" ];
    counters = Table.counter_stats (Array.of_list (List.rev !work));
  }
