(* E21 — fault-injection adversaries and the heard-of bridge.

   An adversary grid (drop / duplicate / spike / reorder / partition and a
   composite) damages the asynchronous network; each trial extracts the
   induced fault history from the round layer, classifies it against the
   paper's predicate ladder P1–P5, replays it through the abstract engine
   (decisions must match bit-for-bit), and probes the three protocol
   stacks — heartbeat suspicions, Chandra–Toueg consensus, the ABD
   register — under the same policy.

   Trials run as a Runtime.Campaign: each draws its RNG from
   (seed, policy, trial), so the table — and the per-trial history
   artifacts run_detailed exposes for the -j smoke gate — are identical
   at every worker count. *)

let grid =
  [
    "none";
    "drop:p=10";
    "drop:p=30";
    "dup:p=25,copies=2";
    "spike:p=20,factor=8";
    "reorder:p=30,window=15";
    "partition:at=5,heal=45,left=2";
    "drop:p=15+dup:p=15";
  ]

type trial_obs = {
  compact : string;
  held : (string * bool) list;
  matched : bool;
  all_completed : bool;
  hb_suspicions : int;
  ct_safe : bool;
  ct_undecided : int;
  abd_atomic : bool;
  counters : Rrfd.Counters.t;
}

(* Heartbeats under the adversary: let emissions run to the horizon, then
   count live-live suspicions left at drain (informational — transient
   suspicion is exactly what lossy links cause; the dedicated convergence
   test drives this with controlled parameters). *)
let heartbeat_suspicions ~seed ~adversary ~n =
  let sim = Dsim.Sim.create ~seed () in
  let hb = ref None in
  let deliver _ ~to_ ~from () =
    Msgnet.Heartbeat.beat (Option.get !hb) ~at:to_ ~from
  in
  let net = Msgnet.Network.create ~sim ~n ~adversary ~deliver () in
  hb :=
    Some
      (Msgnet.Heartbeat.create ~sim ~n
         ~send_heartbeat:(fun ~from ->
           Msgnet.Network.broadcast net ~from ~self:false ())
         ~interval:4.0 ~initial_timeout:12.0 ~timeout_increment:8.0
         ~horizon:240.0 ());
  Dsim.Sim.run sim;
  List.length
    (Msgnet.Heartbeat.live_suspicions (Option.get !hb)
       ~among:(Rrfd.Pset.full n))

(* One writer chaining two writes, staggered readers; atomicity of the
   completed operations must survive every policy. *)
let abd_atomic ~seed ~adversary ~n ~f =
  let sim = Dsim.Sim.create ~seed () in
  let reg = Msgnet.Abd.create ~sim ~n ~f ~writer:0 ~adversary () in
  Msgnet.Abd.write reg ~value:1 ~on_done:(fun () ->
      Msgnet.Abd.write reg ~value:2 ~on_done:(fun () -> ()));
  List.iteri
    (fun i p ->
      Dsim.Sim.schedule sim
        ~delay:(4.0 +. (7.0 *. float_of_int i))
        (fun _ -> Msgnet.Abd.read reg ~proc:p ~on_done:(fun _ -> ())))
    [ 1; 2; 3; 4 ];
  Dsim.Sim.run sim;
  Msgnet.Abd.History.check_atomic (Msgnet.Abd.History.events reg) = None

let run_trial ~adversary ~n ~f ~rounds ~rng =
  let s_rl = Dsim.Rng.bits30 rng in
  let s_hb = Dsim.Rng.bits30 rng in
  let s_ct = Dsim.Rng.bits30 rng in
  let s_abd = Dsim.Rng.bits30 rng in
  let d =
    Msgnet.Round_layer.differential ~seed:s_rl ~adversary
      ~equal:Rrfd.Full_info.equal ~n ~f ~rounds
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
      ()
  in
  let induced = d.Msgnet.Round_layer.outcome.Msgnet.Round_layer.induced in
  let ct =
    Msgnet.Ct_consensus.run ~seed:s_ct ~adversary ~n ~f
      ~inputs:(Array.init n (fun i -> i mod 3))
      ()
  in
  let ct_safe =
    Tasks.Agreement.check
      ~allow_undecided:(Rrfd.Pset.full n)
      ~k:1
      ~inputs:(Array.init n (fun i -> i mod 3))
      ct.Msgnet.Ct_consensus.decisions
    = None
  in
  let ct_undecided =
    Array.fold_left
      (fun c dec -> if dec = None then c + 1 else c)
      0 ct.Msgnet.Ct_consensus.decisions
  in
  {
    compact = Rrfd.Fault_history.to_string_compact induced;
    held = Msgnet.Heard_of.classify ~f induced;
    matched = d.Msgnet.Round_layer.matched;
    all_completed = d.Msgnet.Round_layer.all_completed;
    hb_suspicions = heartbeat_suspicions ~seed:s_hb ~adversary ~n;
    ct_safe;
    ct_undecided = ct_undecided;
    abd_atomic = abd_atomic ~seed:s_abd ~adversary ~n ~f;
    counters =
      {
        Rrfd.Counters.rounds = Rrfd.Fault_history.rounds induced;
        messages =
          d.Msgnet.Round_layer.outcome.Msgnet.Round_layer.messages_delivered;
        detector_queries = 0;
        predicate_checks = List.length (Msgnet.Heard_of.paper_predicates ~f);
      };
  }

let run_detailed ?(seed = 21) ?(trials = 40) ?jobs () =
  let n = 5 and f = 2 and rounds = 4 in
  let work = ref [] in
  let histories = ref [] in
  let rows =
    List.mapi
      (fun idx spec ->
        let adversary =
          match Msgnet.Adversary.of_spec spec with
          | Ok a -> a
          | Error e -> invalid_arg ("E21: " ^ e)
        in
        let obs =
          Runtime.Campaign.run ?jobs
            ~seed:(Dsim.Rng.derive_seed seed idx)
            ~trials
            (fun ~trial:_ ~rng -> run_trial ~adversary ~n ~f ~rounds ~rng)
        in
        work := Array.map (fun o -> o.counters) obs :: !work;
        histories :=
          (spec, Array.to_list (Array.map (fun o -> o.compact) obs))
          :: !histories;
        let count p = Array.fold_left (fun c o -> if p o then c + 1 else c) 0 obs in
        let sum g = Array.fold_left (fun c o -> c + g o) 0 obs in
        let held name = count (fun o -> List.assoc name o.held) in
        let p3 = held "P3" in
        let replay_ok = count (fun o -> o.matched) = trials in
        let ct_safe = count (fun o -> o.ct_safe) = trials in
        let abd_ok = count (fun o -> o.abd_atomic) = trials in
        [
          spec;
          Table.cell_int trials;
          Table.cell_int (held "P1");
          Table.cell_int (held "P2");
          Table.cell_int p3;
          Table.cell_int (held "P4");
          Table.cell_int (held "P5");
          Table.cell_bool replay_ok;
          Table.cell_int (sum (fun o -> if o.all_completed then 0 else 1));
          Table.cell_int (sum (fun o -> o.hb_suspicions));
          Table.cell_int (sum (fun o -> o.ct_undecided));
          Table.cell_bool ct_safe;
          Table.cell_bool abd_ok;
          Table.cell_bool (p3 = trials && replay_ok && ct_safe && abd_ok);
        ])
      grid
  in
  let table =
    {
      Table.id = "E21";
      title = "fault-injection adversaries and the heard-of bridge";
      claim =
        "every asynchronous network adversary induces a fault history: the \
         round layer keeps P3 = (|D| ≤ f) invariant under drop, \
         duplication, delay spikes, reorder and healing partitions, and \
         replaying the extracted heard-of history through the abstract \
         engine reproduces the network run's decisions bit-for-bit";
      header =
        [
          "adversary"; "trials"; "P1"; "P2"; "P3"; "P4"; "P5"; "replay";
          "stalled"; "hb-susp"; "ct-undec"; "ct-safe"; "abd-atomic"; "ok";
        ];
      rows;
      notes =
        [
          "P1–P5 count trials whose extracted history satisfied the \
           predicate (n=5, f=2, 4 rounds, full-information algorithm)";
          "replay = engine decisions match the network's for every trial; \
           stalled/hb-susp/ct-undec are informational totals";
          "ct-safe/abd-atomic gate safety only — a policy may slow \
           consensus or the register, never break agreement or atomicity";
        ];
      counters = Table.counter_stats (Array.concat (List.rev !work));
    }
  in
  (table, List.rev !histories)

let run ?seed ?trials ?jobs () = fst (run_detailed ?seed ?trials ?jobs ())
