(* E19 — the BG simulation, the machinery behind the asynchronous
   impossibility results Section 4 invokes: k+1 wait-free simulators run a
   k-resilient n-process execution; each simulator crash wedges at most
   one safe-agreement doorway, stalling at most one simulated process. *)

let run ?(seed = 19) ?(trials = 200) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun (n, k, crash_count) ->
      let rounds = 3 in
      let simulators = k + 1 in
      let size_bad = ref 0 and stall_bad = ref 0 in
      let total_wedged = ref 0 and total_stalled = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let crashes =
          Dsim.Rng.sample_without_replacement trial_rng crash_count simulators
          |> List.map (fun s -> (s, Dsim.Rng.int trial_rng 80))
        in
        let o =
          Rrfd.Bg_simulation.simulate ~rng:trial_rng ~simulators ~crashes ~n
            ~k ~rounds
            ~algorithm:
              (Syncnet.Flood.min_flood ~inputs:(Tasks.Inputs.distinct n)
                 ~horizon:rounds)
            ()
        in
        if not o.Rrfd.Bg_simulation.fault_set_sizes_ok then incr size_bad;
        if o.Rrfd.Bg_simulation.stalled_processes > crash_count then
          incr stall_bad;
        total_wedged := !total_wedged + o.Rrfd.Bg_simulation.wedged_instances;
        total_stalled := !total_stalled + o.Rrfd.Bg_simulation.stalled_processes
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int simulators;
          Table.cell_int crash_count;
          Table.cell_int trials;
          Table.cell_int !size_bad;
          Table.cell_int !stall_bad;
          Table.cell_float (float_of_int !total_wedged /. float_of_int trials);
          Table.cell_float (float_of_int !total_stalled /. float_of_int trials);
          Table.cell_bool (!size_bad = 0 && !stall_bad = 0);
        ]
        :: !rows)
    [ (4, 1, 0); (4, 1, 1); (6, 2, 2); (8, 3, 3); (8, 2, 1) ];
  {
    Table.id = "E19";
    title = "the BG simulation: wait-free simulators, k-resilient executions";
    claim =
      "Borowsky–Gafni ([4]/[9], the engine of Sec. 4's impossibility \
       transfer): k+1 simulators of which k may crash produce a legal \
       k-resilient n-process execution — every receive set misses ≤ k, \
       and c simulator crashes stall ≤ c simulated processes";
    header =
      [
        "n"; "k"; "sims"; "crashes"; "trials"; "size-viol"; "stall-viol";
        "avg-wedged"; "avg-stalled"; "ok";
      ];
    rows = List.rev !rows;
    notes =
      [
        "simulated protocol: 3-round min-flooding; safe-agreement doorways \
         modelled at begin/finish granularity (register-level protocol in \
         shm.Safe_agreement)";
      ];
    counters = [];
  }
