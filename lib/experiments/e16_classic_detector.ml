(* E16 — Sections 6-7: the classic detector-augmented route to consensus
   (heartbeats + rotating coordinator over the asynchronous network),
   the approach the RRFD framework reinterprets. *)

let run ?(seed = 16) ?(trials = 60) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun (n, crash_count) ->
      let f = (n - 1) / 2 in
      let violations = ref 0 and total_phases = ref 0 in
      let total_time = ref 0.0 and undecided_live = ref 0 in
      for t = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Array.init n (fun i -> (i * 3) mod 4) in
        let crashes =
          Dsim.Rng.sample_without_replacement trial_rng crash_count n
          |> List.map (fun p -> (p, Dsim.Rng.float trial_rng 50.0))
        in
        let r = Msgnet.Ct_consensus.run ~seed:(seed + t) ~n ~f ~inputs ~crashes () in
        let crashed = Rrfd.Pset.of_list (List.map fst crashes) in
        (match
           Tasks.Agreement.check ~allow_undecided:crashed ~k:1 ~inputs
             r.Msgnet.Ct_consensus.decisions
         with
        | None -> ()
        | Some _ -> incr violations);
        Array.iteri
          (fun i d ->
            if (not (Rrfd.Pset.mem i crashed)) && Option.is_none d then
              incr undecided_live)
          r.Msgnet.Ct_consensus.decisions;
        total_phases := !total_phases + r.Msgnet.Ct_consensus.phases_used;
        let latest =
          Array.fold_left
            (fun acc t -> match t with Some t -> max acc t | None -> acc)
            0.0 r.Msgnet.Ct_consensus.decision_times
        in
        total_time := !total_time +. latest
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int crash_count;
          Table.cell_int trials;
          Table.cell_int !violations;
          Table.cell_int !undecided_live;
          Table.cell_float (float_of_int !total_phases /. float_of_int trials);
          Table.cell_float (!total_time /. float_of_int trials);
          Table.cell_bool (!violations = 0 && !undecided_live = 0);
        ]
        :: !rows)
    [ (3, 0); (3, 1); (5, 2); (7, 3); (9, 4) ];
  {
    Table.id = "E16";
    title = "classic failure-detector consensus (Secs. 6-7 context)";
    claim =
      "Chandra–Toueg: with heartbeats giving eventual accuracy and a \
       correct majority, rotating-coordinator consensus terminates and \
       agrees — the 'detector as helpful augmentation' view the RRFD \
       framework contrasts itself with";
    header =
      [
        "n"; "crashes"; "trials"; "violations"; "undecided"; "avg-phases";
        "avg-time"; "ok";
      ];
    rows = List.rev !rows;
    notes =
      [
        "avg-time is virtual time to the last decision; crashes at random \
         times ≤ 50";
      ];
    counters = [];
  }
