(* E22 — the cross-substrate differential matrix.

   The paper's unification claim, stress-tested wholesale: every protocol
   in the catalog runs on every execution substrate (abstract engine,
   lock-step synchronous network, event-driven asynchronous network) under
   equivalent fault policies; each run's induced fault history is replayed
   pinned on the abstract engine, and the decisions and the P1–P5
   classification of the history must agree bit-for-bit.  This generalises
   Round_layer.differential from one ad-hoc algorithm to the whole
   catalog × substrate × policy grid.

   Trials run as a Runtime.Campaign with per-(cell, trial) RNG derivation,
   so the table and the per-trial artifacts run_detailed exposes for the
   -j smoke gate are identical at every worker count. *)

let n = 5

let f = 2

let policies = [ "none"; "crash"; "lossy" ]

type sub_obs = {
  sub : string;
  compact : string;  (* induced history, compact rendering *)
  replay_compact : string;  (* replayed history — must be identical *)
  decisions_ok : bool;
  classes_ok : bool;
}

type trial_obs = { subs : sub_obs list; counters : Rrfd.Counters.t }

let lossy_adversary =
  lazy
    (match Msgnet.Adversary.of_spec "drop:p=20" with
    | Ok a -> a
    | Error e -> invalid_arg ("E22: " ^ e))

(* The comparable set: processes whose substrate execution the pinned
   replay is expected to reproduce.  The engine reproduces everybody; the
   synchronous network everybody it did not crash (a crashed process stops
   mid-protocol, while the RRFD reading keeps executing it); the
   asynchronous layer everybody that completed the full extracted
   prefix — exactly Round_layer.differential's rule. *)
let comparable (ex : int Rrfd.Substrate.execution) =
  let r_max = Rrfd.Fault_history.rounds ex.Rrfd.Substrate.induced in
  List.filter
    (fun i ->
      match ex.Rrfd.Substrate.substrate with
      | "engine" -> true
      | "sync" -> not (Rrfd.Pset.mem i ex.Rrfd.Substrate.crashed)
      | _ -> ex.Rrfd.Substrate.completed.(i) = r_max)
    (List.init n Fun.id)

let check_substrate proto ~inputs (ex : int Rrfd.Substrate.execution) =
  let open Rrfd.Substrate in
  let replayed =
    Protocols.Catalog.replay proto ~inputs ~f ~history:ex.induced ()
  in
  let decisions_ok =
    List.for_all
      (fun i -> ex.decisions.(i) = replayed.decisions.(i))
      (comparable ex)
  in
  let classes_ok =
    Msgnet.Heard_of.classify ~f ex.induced
    = Msgnet.Heard_of.classify ~f replayed.induced
  in
  ( {
      sub = ex.substrate;
      compact = Rrfd.Fault_history.to_string_compact ex.induced;
      replay_compact = Rrfd.Fault_history.to_string_compact replayed.induced;
      decisions_ok;
      classes_ok;
    },
    ex.counters )

let failure_free_detector =
  Rrfd.Detector.of_schedule ~after:(Array.make n Rrfd.Pset.empty) []

let run_trial proto ~policy ~rng =
  let inputs = Protocols.Catalog.default_inputs ~n in
  let rounds = Protocols.Catalog.horizon proto ~n ~f in
  let detector =
    match policy with
    | "none" -> failure_free_detector
    | "crash" -> Rrfd.Detector_gen.crash rng ~n ~f
    | _ -> Rrfd.Detector_gen.omission rng ~n ~f
  in
  let pattern =
    match policy with
    | "none" -> Syncnet.Faults.none ~n
    | "crash" -> Syncnet.Faults.random_crash rng ~n ~f ~max_round:rounds
    | _ -> Syncnet.Faults.random_omission rng ~n ~f
  in
  let net_seed = Dsim.Rng.bits30 rng in
  let crashes =
    match policy with
    | "crash" ->
      List.map
        (fun p -> (p, 1.0 +. float_of_int (Dsim.Rng.int rng 40)))
        (Dsim.Rng.sample_without_replacement rng f n)
    | _ -> []
  in
  let adversary =
    match policy with "lossy" -> Some (Lazy.force lossy_adversary) | _ -> None
  in
  let engine_ex =
    Protocols.Catalog.run_engine proto ~inputs ~max_rounds:rounds ~n ~f
      ~detector ()
  in
  let sync_ex =
    Protocols.Catalog.run_sync proto ~inputs ~rounds ~n ~f ~pattern ()
  in
  let net_ex =
    Protocols.Catalog.run_msgnet proto ~inputs ~crashes ?adversary ~rounds
      ~seed:net_seed ~n ~f ()
  in
  let subs, counters =
    List.fold_left
      (fun (subs, acc) ex ->
        let s, c = check_substrate proto ~inputs ex in
        (s :: subs, Rrfd.Counters.add acc c))
      ([], Rrfd.Counters.zero)
      [ engine_ex; sync_ex; net_ex ]
  in
  { subs = List.rev subs; counters }

let sub_ok name o =
  List.for_all (fun s -> s.sub <> name || s.decisions_ok) o.subs

let run_detailed ?(seed = 22) ?(trials = 30) ?jobs () =
  let work = ref [] in
  let details = ref [] in
  let cell_idx = ref 0 in
  let rows =
    List.concat_map
      (fun proto ->
        List.map
          (fun policy ->
            let idx = !cell_idx in
            incr cell_idx;
            let obs =
              Runtime.Campaign.run ?jobs
                ~seed:(Dsim.Rng.derive_seed seed idx)
                ~trials
                (fun ~trial:_ ~rng -> run_trial proto ~policy ~rng)
            in
            work := Array.map (fun o -> o.counters) obs :: !work;
            details :=
              (Protocols.Catalog.name proto, policy, Array.to_list obs)
              :: !details;
            let count p =
              Array.fold_left (fun c o -> if p o then c + 1 else c) 0 obs
            in
            let eng = count (sub_ok "engine") in
            let syn = count (sub_ok "sync") in
            let net = count (sub_ok "msgnet") in
            let classes =
              count (fun o -> List.for_all (fun s -> s.classes_ok) o.subs)
            in
            [
              Protocols.Catalog.name proto;
              policy;
              Table.cell_int trials;
              Table.cell_int eng;
              Table.cell_int syn;
              Table.cell_int net;
              Table.cell_int classes;
              Table.cell_bool
                (eng = trials && syn = trials && net = trials
               && classes = trials);
            ])
          policies)
      Protocols.Catalog.all
  in
  let table =
    {
      Table.id = "E22";
      title = "cross-substrate differential matrix (protocol × substrate × policy)";
      claim =
        "the unification claim at catalog scale: every protocol, run over \
         the abstract engine, the synchronous network and the asynchronous \
         network under equivalent fault policies, induces a fault history \
         whose pinned engine replay reproduces the run's decisions and \
         P1–P5 classification bit-for-bit";
      header =
        [
          "protocol"; "policy"; "trials"; "engine"; "sync"; "msgnet";
          "classes"; "ok";
        ];
      rows;
      notes =
        [
          Printf.sprintf
            "n = %d, f = %d; engine/sync/msgnet count trials whose decisions \
             the replay reproduced on the comparable set (all / non-crashed \
             / fully-completed processes)"
            n f;
          "classes counts trials where the P1–P5 classification of every \
           substrate's induced history survived the replay unchanged";
        ];
      counters = Table.counter_stats (Array.concat (List.rev !work));
    }
  in
  (table, List.rev !details)

let run ?seed ?trials ?jobs () = fst (run_detailed ?seed ?trials ?jobs ())
