type t = {
  id : string;
  title : string;
  claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
  counters : (string * Runtime.Stats.t) list;
}

let cell_int = string_of_int

let cell_float v = Printf.sprintf "%.2f" v

let cell_bool b = if b then "yes" else "NO"

(* Per-trial engine counters, summarised per field.  The field order of
   Counters.to_fields is kept so every table reports work in the same
   vocabulary (rounds, messages, detector-queries, predicate-checks). *)
let counter_stats trials =
  if Array.length trials = 0 then []
  else
    let labels = List.map fst (Rrfd.Counters.to_fields trials.(0)) in
    List.map
      (fun label ->
        let per_trial =
          Array.map
            (fun c -> List.assoc label (Rrfd.Counters.to_fields c))
            trials
        in
        (label, Runtime.Stats.of_ints per_trial))
      labels

(* Width of a string as displayed: count UTF-8 code points rather than
   bytes so the box drawing stays aligned with ⌊, ≤, etc. *)
let display_width s =
  let count = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr count) s;
  !count

let pad width s = s ^ String.make (max 0 (width - display_width s)) ' '

let print t =
  Printf.printf "\n== %s: %s ==\n" t.id t.title;
  Printf.printf "claim: %s\n" t.claim;
  let columns = List.length t.header in
  let widths = Array.make columns 0 in
  List.iteri (fun i h -> widths.(i) <- display_width h) t.header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < columns then widths.(i) <- max widths.(i) (display_width cell))
        row)
    t.rows;
  let line cells =
    let padded = List.mapi (fun i c -> pad widths.(i) c) cells in
    Printf.printf "  %s\n" (String.concat "  " padded)
  in
  line t.header;
  line (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter line t.rows;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) t.notes;
  List.iter
    (fun (label, s) ->
      Printf.printf "  work: %-16s per trial %s\n" label
        (Format.asprintf "%a" Runtime.Stats.pp s))
    t.counters;
  if not (List.exists (List.exists (String.equal "NO")) t.rows) then
    Printf.printf "  [%s OK]\n" t.id
  else Printf.printf "  [%s FAILED]\n" t.id

let ok t = not (List.exists (List.exists (String.equal "NO")) t.rows)
