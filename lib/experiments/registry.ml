type entry = {
  id : string;
  title : string;
  run : seed:int -> trials:int option -> jobs:int option -> Table.t;
}

let default_seed = 0

(* Serial experiments ignore [jobs]; campaign-backed ones fan their trials
   out over that many domains (None = all cores) with the table guaranteed
   identical either way. *)
let wrap f ~seed ~trials ~jobs:_ = f ?seed:(Some seed) ?trials ()

let wrap_campaign f ~seed ~trials ~jobs = f ?seed:(Some seed) ?trials ?jobs ()

let all =
  [
    {
      id = "E1";
      title = "synchronous models (items 1-2)";
      run = wrap E01_sync_models.run;
    };
    {
      id = "E2";
      title = "asynchronous message passing (item 3)";
      run = wrap E02_async_mp.run;
    };
    {
      id = "E3";
      title = "shared memory (item 4)";
      run = wrap E03_shared_memory.run;
    };
    {
      id = "E4";
      title = "atomic snapshot / IIS (item 5)";
      run = wrap E04_snapshot_iis.run;
    };
    { id = "E5"; title = "detector S (item 6)"; run = wrap E05_detector_s.run };
    {
      id = "E6";
      title = "one-round k-set agreement (Thm 3.1)";
      run = wrap_campaign E06_kset_one_round.run;
    };
    {
      id = "E7";
      title = "k-set agreement with k-1 failures (Cor 3.2)";
      run = wrap E07_kset_snapshot.run;
    };
    {
      id = "E8";
      title = "k-set object implements the k-set RRFD (Thm 3.3)";
      run = wrap E08_kset_object.run;
    };
    {
      id = "E9";
      title = "round lower bound (Cor 4.2/4.4)";
      run = wrap_campaign E09_lower_bound.run;
    };
    {
      id = "E10";
      title = "adopt-commit (Sec. 4.2)";
      run = wrap E10_adopt_commit.run;
    };
    {
      id = "E11";
      title = "crash-fault simulation (Thm 4.3)";
      run = wrap_campaign E11_crash_simulation.run;
    };
    {
      id = "E12";
      title = "2-step semi-synchronous consensus (Thm 5.1)";
      run = wrap E12_semisync.run;
    };
    {
      id = "E13";
      title = "submodel lattice (Sec. 2)";
      run = wrap E13_lattice.run;
    };
    {
      id = "E14";
      title = "known-by-all conjecture (item 4)";
      run = wrap_campaign E14_conjecture.run;
    };
    {
      id = "E15";
      title = "ABD atomic registers from message passing (item 4's [22])";
      run = wrap E15_abd.run;
    };
    {
      id = "E16";
      title = "classic failure-detector consensus (Secs. 6-7)";
      run = wrap E16_classic_detector.run;
    };
    {
      id = "E17";
      title = "early-deciding ablation on the round lower bound";
      run = wrap E17_early_deciding.run;
    };
    {
      id = "E18";
      title = "phased consensus under eventual stability (Sec. 7 program)";
      run = wrap E18_phased.run;
    };
    {
      id = "E19";
      title = "the BG simulation behind Sec. 4's impossibility transfer";
      run = wrap E19_bg.run;
    };
    {
      id = "E21";
      title = "fault-injection adversaries and the heard-of bridge";
      run = wrap_campaign E21_faultnet.run;
    };
    {
      id = "E22";
      title = "cross-substrate differential matrix";
      run = wrap_campaign E22_xsub.run;
    };
    {
      id = "E23";
      title = "live-substrate heard-of predicate rates";
      run = wrap_campaign E23_live.run;
    };
    {
      id = "E24";
      title = "Byzantine round-machines and fork accountability";
      run = wrap_campaign E24_byzantine.run;
    };
    {
      id = "E25";
      title = "large-n scaling campaigns on the wide Pset";
      run = wrap_campaign E25_scale.run;
    };
    {
      id = "E26";
      title = "derived heard-of predicates from adversary policies";
      run = wrap_campaign E26_derive.run;
    };
  ]

let find id =
  let target = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = target) all

let run_all ?(seed = default_seed) ?jobs () =
  List.map (fun e -> e.run ~seed ~trials:None ~jobs) all
