(* E23 — heard-of predicate rates on the live substrate.

   Every other experiment asks what the model predicts; this one asks
   what an actual machine does.  A grid of system sizes × patience
   policies runs flood-consensus on the live substrate (one OCaml domain
   per process, real mailboxes, real clock), extracts each run's
   heard-of fault history and measures how often the paper's predicates
   P1–P5 hold — wait-for-all should induce failure-free synchrony,
   wait-for-quorum P3 by construction, and a wall-clock deadline
   whatever the scheduler felt like.  The rates are empirical and
   machine-dependent, so the table's [ok] column never depends on them:
   it asserts only the invariant — the pinned engine replay of every
   recorded history reproduces the live decisions bit-for-bit.

   The experiment is split into a nondeterministic {!collect} phase
   (the only part that touches domains or the clock) and a pure
   {!table_of} phase computed from the records alone.  The CLI persists
   {!collect}'s output as a JSON artifact ([live --grid --json]);
   regenerating the table or the artifact from recorded histories
   ([--from]) is deterministic at any [-j], which is what the
   [@live-smoke] gate compares. *)

module Json = Report.Json

let protocol = "flood-consensus"

let grid_ns = [ 3; 5; 7 ]

let policies =
  [
    Live.Patience.Wait_all;
    Live.Patience.Wait_quorum;
    Live.Patience.Deadline 50_000L;
  ]

let f_for n = (n - 1) / 2

type recorded = {
  n : int;
  f : int;
  patience : string;  (** Canonical {!Live.Patience.to_string} form. *)
  inputs : int array;
  history : string;  (** {!Rrfd.Fault_history.to_string_compact}. *)
  decisions : int option array;  (** The live run's decisions. *)
  wall_ns : int64;
}

(* {2 The live phase} *)

let collect ?(seed = 23) ?(trials = 12) ?jobs () =
  let proto = Protocols.Catalog.find_exn protocol in
  let cell_idx = ref 0 in
  List.concat_map
    (fun n ->
      let f = f_for n in
      let jobs =
        Some (Live.effective_jobs ?jobs ~n_procs:n ())
        (* each trial spawns [n] domains of its own: cap the pool so
           workers × processes stays within the machine *)
      in
      List.concat_map
        (fun patience ->
          let idx = !cell_idx in
          incr cell_idx;
          Runtime.Campaign.run ?jobs
            ~seed:(Dsim.Rng.derive_seed seed idx)
            ~trials
            (fun ~trial:_ ~rng ->
              let inputs = Tasks.Inputs.distinct n in
              Dsim.Rng.shuffle_in_place rng inputs;
              let ex =
                Protocols.Catalog.run_live proto ~inputs ~patience ~n ~f ()
              in
              {
                n;
                f;
                patience = Live.Patience.to_string patience;
                inputs;
                history =
                  Rrfd.Fault_history.to_string_compact
                    ex.Rrfd.Substrate.induced;
                decisions = ex.Rrfd.Substrate.decisions;
                wall_ns = Option.get ex.Rrfd.Substrate.wall_ns;
              })
          |> Array.to_list)
        policies)
    grid_ns

(* {2 The deterministic phase} *)

let predicate_names = List.map fst (Msgnet.Heard_of.paper_predicates ~f:0)

type cell_row = {
  cell_n : int;
  cell_patience : string;
  cell_trials : int;
  matched : int;  (** Trials whose pinned replay reproduced the run. *)
  satisfied : (string * int) list;  (** Per-predicate satisfaction counts. *)
  counters : Rrfd.Counters.t array;
}

(* Everything below is a pure function of the records: replays, predicate
   classification and work counters all derive from the recorded history
   (and inputs), never from a clock or a domain.  [Pool.map_range] keeps
   the regeneration parallel yet deterministic — results land in cell
   order whatever the worker count. *)
let cells_of records =
  let proto = Protocols.Catalog.find_exn protocol in
  let keys =
    List.concat_map
      (fun n -> List.map (fun p -> (n, Live.Patience.to_string p)) policies)
      grid_ns
  in
  let cells = Array.of_list keys in
  Runtime.Pool.map_range ~n:(Array.length cells) (fun i ->
      let cell_n, cell_patience = cells.(i) in
      let mine =
        List.filter
          (fun r -> r.n = cell_n && r.patience = cell_patience)
          records
      in
      let matched = ref 0 in
      let satisfied =
        List.map (fun p -> (p, ref 0)) predicate_names
      in
      let counters =
        List.map
          (fun r ->
            let history = Rrfd.Fault_history.of_string_compact r.history in
            let replayed =
              Protocols.Catalog.replay proto ~inputs:r.inputs ~f:r.f ~history
                ()
            in
            if replayed.Rrfd.Substrate.decisions = r.decisions then
              incr matched;
            List.iter
              (fun (name, holds) ->
                if holds then incr (List.assoc name satisfied))
              (Msgnet.Heard_of.classify ~f:r.f history);
            Rrfd.Counters.of_history history)
          mine
      in
      {
        cell_n;
        cell_patience;
        cell_trials = List.length mine;
        matched = !matched;
        satisfied = List.map (fun (p, c) -> (p, !c)) satisfied;
        counters = Array.of_list counters;
      })
  |> Array.to_list

let table_of records =
  let cells = cells_of records in
  let rows =
    List.map
      (fun c ->
        Table.cell_int c.cell_n :: c.cell_patience
        :: Table.cell_int c.cell_trials
        :: Table.cell_int c.matched
        :: (List.map (fun (_, k) -> Table.cell_int k) c.satisfied
           @ [ Table.cell_bool (c.matched = c.cell_trials) ]))
      cells
  in
  {
    Table.id = "E23";
    title = "live-substrate heard-of predicate rates (n × patience)";
    claim =
      "real concurrency is just another round-by-round environment: every \
       fault history a machine induces under a patience policy replays \
       pinned on the abstract engine with identical decisions, and the \
       paper's predicates measure which model the machine happened to \
       inhabit";
    header =
      [ "n"; "patience"; "trials"; "matched" ] @ predicate_names @ [ "ok" ];
    rows;
    notes =
      [
        Printf.sprintf
          "protocol = %s, f = (n-1)/2, rounds = protocol horizon; trials \
           ran live (one domain per process)"
          protocol;
        "matched counts trials whose pinned engine replay of the recorded \
         history reproduced the live decisions; ok requires matched = \
         trials and never depends on the (machine-dependent) P1–P5 rates";
        "P1..P5 count recorded histories satisfying each paper predicate \
         at the cell's f";
      ];
    counters =
      Table.counter_stats
        (Array.concat (List.map (fun c -> c.counters) cells));
  }

let run ?seed ?trials ?jobs () = table_of (collect ?seed ?trials ?jobs ())

(* {2 Artifact codec}

   Version-tagged so [live --grid --from] can refuse foreign files; the
   decisions array uses the counterexample artifact's null-for-undecided
   convention. *)

let version = 1

let to_json records =
  Json.Obj
    [
      ("version", Json.Number (float_of_int version));
      ("kind", Json.String "rrfd-live-grid");
      ("protocol", Json.String protocol);
      ( "records",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("n", Json.Number (float_of_int r.n));
                   ("f", Json.Number (float_of_int r.f));
                   ("patience", Json.String r.patience);
                   ( "inputs",
                     Json.List
                       (List.map
                          (fun v -> Json.Number (float_of_int v))
                          (Array.to_list r.inputs)) );
                   ("history", Json.String r.history);
                   ( "decisions",
                     Json.List
                       (List.map
                          (function
                            | None -> Json.Null
                            | Some v -> Json.Number (float_of_int v))
                          (Array.to_list r.decisions)) );
                   ("wall_ns", Json.String (Int64.to_string r.wall_ns));
                 ])
             records) );
    ]

let of_json json =
  let v = Json.int (Json.member "version" json) in
  if v <> version then
    raise
      (Json.Error
         (Printf.sprintf "live-grid artifact version %d, expected %d" v
            version));
  (match Json.str (Json.member "kind" json) with
  | "rrfd-live-grid" -> ()
  | k -> raise (Json.Error (Printf.sprintf "unexpected artifact kind %S" k)));
  List.map
    (fun r ->
      {
        n = Json.int (Json.member "n" r);
        f = Json.int (Json.member "f" r);
        patience = Json.str (Json.member "patience" r);
        inputs =
          Array.of_list (List.map Json.int (Json.list (Json.member "inputs" r)));
        history = Json.str (Json.member "history" r);
        decisions =
          Array.of_list
            (List.map
               (function Json.Null -> None | j -> Some (Json.int j))
               (Json.list (Json.member "decisions" r)));
        wall_ns =
          (let s = Json.str (Json.member "wall_ns" r) in
           match Int64.of_string_opt s with
           | Some v -> v
           | None -> raise (Json.Error ("bad wall_ns " ^ s)));
      })
    (Json.list (Json.member "records" json))
