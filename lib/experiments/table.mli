(** Result tables for the experiment harness.

    Every experiment produces one table; the bench harness and the
    [experiments] CLI render them identically, so EXPERIMENTS.md can quote
    the output verbatim. *)

type t = {
  id : string;  (** "E6" *)
  title : string;
  claim : string;  (** The paper statement being reproduced. *)
  header : string list;
  rows : string list list;
  notes : string list;
  counters : (string * Runtime.Stats.t) list;
      (** Work accounting: per-trial {!Rrfd.Counters} fields summarised
          over every trial behind the table ([[]] for experiments that do
          not drive the engine).  Printed as "work:" lines and exported in
          the BENCH json. *)
}

val cell_int : int -> string

val cell_float : float -> string
(** Two decimal places. *)

val cell_bool : bool -> string
(** "yes" / "NO". *)

val counter_stats : Rrfd.Counters.t array -> (string * Runtime.Stats.t) list
(** [counter_stats trials] summarises one engine-counter record per trial
    into per-field {!Runtime.Stats}, in {!Rrfd.Counters.to_fields} order —
    the canonical way for an experiment to fill {!t.counters}.  [[]] for an
    empty array. *)

val print : t -> unit
(** Render to stdout with aligned columns. *)

val ok : t -> bool
(** True iff no row cell equals ["NO"] — the quick health signal used by
    the harness exit code. *)
