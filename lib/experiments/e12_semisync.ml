(* E12 — Theorem 5.1: consensus in 2 steps in the semi-synchronous model,
   against a Θ(n)-step baseline — the answer to the DDS open problem. *)

let run ?(seed = 12) ?(trials = 300) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      let consensus_bad = ref 0 and eq5_bad = ref 0 and steps_bad = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Tasks.Inputs.distinct n in
        let crash_count = Dsim.Rng.int trial_rng n in
        let crashes =
          Dsim.Rng.sample_without_replacement trial_rng crash_count n
          |> List.map (fun p -> (p, 1 + Dsim.Rng.int trial_rng 3))
        in
        let r =
          Semisync.Two_step.run ~n ~inputs
            ~schedule:(Semisync.Machine.Random (Dsim.Rng.split trial_rng))
            ~crashes ()
        in
        let res = r.Semisync.Two_step.result in
        if Semisync.Two_step.check_identical r <> None then incr eq5_bad;
        if
          Array.exists
            (function Some s -> s <> 2 | None -> false)
            res.Semisync.Machine.steps_to_decide
        then incr steps_bad;
        if
          Tasks.Agreement.check
            ~allow_undecided:res.Semisync.Machine.crashed ~k:1 ~inputs
            res.Semisync.Machine.decisions
          <> None
        then incr consensus_bad
      done;
      (* failure-free baseline comparison *)
      let inputs = Tasks.Inputs.distinct n in
      let baseline =
        Semisync.Ring_baseline.run ~n ~inputs
          ~schedule:Semisync.Machine.Round_robin
      in
      let baseline_steps =
        Array.fold_left
          (fun acc s -> max acc (Option.value s ~default:0))
          0 baseline.Semisync.Machine.steps_to_decide
      in
      rows :=
        [
          Table.cell_int n;
          Table.cell_int trials;
          Table.cell_int !consensus_bad;
          Table.cell_int !eq5_bad;
          Table.cell_int !steps_bad;
          "2";
          Table.cell_int baseline_steps;
          Table.cell_float (float_of_int baseline_steps /. 2.0);
          Table.cell_bool
            (!consensus_bad = 0 && !eq5_bad = 0 && !steps_bad = 0
           && baseline_steps >= n);
        ]
        :: !rows)
    [ 2; 4; 8; 16; 32 ];
  {
    Table.id = "E12";
    title = "2-step semi-synchronous consensus (Theorem 5.1)";
    claim =
      "Thm 5.1: the DDS model implements the equation-(5) RRFD in two \
       steps per round, so consensus takes 2 steps — against Θ(n) for the \
       phase-structured baseline (DDS's own algorithm ran in 2n steps)";
    header =
      [
        "n"; "trials"; "cons-viol"; "eq5-viol"; "steps≠2"; "new-steps";
        "baseline-steps"; "speedup"; "ok";
      ];
    rows = List.rev !rows;
    notes =
      [ "baseline-steps measured failure-free under round-robin speeds" ];
    counters = [];
  }
