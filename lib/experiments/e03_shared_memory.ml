(* E3 — item 4: shared memory ↔ predicates (3)∧(4); 2 message-passing
   rounds implement one shared-memory round when 2f < n. *)

let run ?(seed = 3) ?(trials = 200) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      let f = (n - 1) / 2 in
      let closure_bad = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let detector = Rrfd.Detector_gen.async trial_rng ~n ~f in
        let r = Rrfd.Emulation.two_round_closure ~n ~detector in
        let h = Rrfd.Fault_history.of_rounds ~n [ r.Rrfd.Emulation.simulated ] in
        if not (Rrfd.Predicate.holds (Rrfd.Predicate.shared_memory ~f) h) then
          incr closure_bad
      done;
      (* the shm generator's rounds satisfy both ingredients *)
      let gen_bad = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let detector = Rrfd.Detector_gen.shared_memory trial_rng ~n ~f in
        let rec build h r =
          if r > 3 then h
          else build (Rrfd.Fault_history.append h (Rrfd.Detector.next detector h)) (r + 1)
        in
        let h = build (Rrfd.Fault_history.empty ~n) 1 in
        if not (Rrfd.Predicate.holds (Rrfd.Predicate.shared_memory ~f) h) then
          incr gen_bad
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int f;
          Table.cell_int trials;
          Table.cell_int !closure_bad;
          Table.cell_int !gen_bad;
          Table.cell_bool (!closure_bad = 0 && !gen_bad = 0);
        ]
        :: !rows)
    [ 3; 5; 9; 15 ];
  {
    Table.id = "E3";
    title = "SWMR shared memory as an RRFD (item 4)";
    claim =
      "Sec. 2 item 4: shared-memory rounds satisfy (3)∧(4); with 2f<n, two \
       async message-passing rounds (heard-of closure) implement one \
       shared-memory round";
    header = [ "n"; "f"; "trials"; "closure-viol"; "model-viol"; "ok" ];
    rows = List.rev !rows;
    notes = [ "closure = two-round emulation from async MP; model = native shm rounds" ];
    counters = [];
  }
