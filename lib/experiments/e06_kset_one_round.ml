(* E6 — Theorem 3.1: one-round k-set agreement under the k-set detector.

   The trial loop is a Runtime.Campaign: each trial draws its RNG from
   (seed, case, trial) so the table is identical for every -j. *)

let run ?(seed = 6) ?(trials = 500) ?jobs () =
  let cases =
    [ (4, 1); (4, 2); (4, 3); (8, 1); (8, 3); (8, 7); (16, 2); (16, 5); (24, 4) ]
  in
  let work = ref [] in
  let rows =
    List.mapi
      (fun case_idx (n, k) ->
        let obs =
          Runtime.Campaign.run ?jobs
            ~seed:(Dsim.Rng.derive_seed seed case_idx)
            ~trials
            (fun ~trial:_ ~rng ->
              let inputs = Tasks.Inputs.distinct n in
              let detector = Rrfd.Detector_gen.k_set rng ~n ~k in
              let ex =
                Protocols.Catalog.run_engine
                  (Protocols.Catalog.find_exn "kset-one-round")
                  ~inputs
                  ~check:(Rrfd.Predicate.k_set ~k)
                  ~n ~f:(k - 1) ~detector ()
              in
              let distinct =
                Tasks.Agreement.distinct_decisions
                  ~decisions:ex.Rrfd.Substrate.decisions
              in
              let failed =
                Tasks.Agreement.check ~k ~inputs ex.Rrfd.Substrate.decisions
                <> None
              in
              ( distinct,
                failed,
                ex.Rrfd.Substrate.rounds_used <> 1,
                ex.Rrfd.Substrate.counters ))
        in
        work := Array.map (fun (_, _, _, c) -> c) obs :: !work;
        let max_distinct =
          Array.fold_left (fun m (d, _, _, _) -> max m d) 0 obs
        in
        let count p = Array.fold_left (fun c o -> if p o then c + 1 else c) 0 obs in
        let failures = count (fun (_, f, _, _) -> f) in
        let rounds_bad = count (fun (_, _, r, _) -> r) in
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int trials;
          Table.cell_int max_distinct;
          Table.cell_int failures;
          Table.cell_int rounds_bad;
          Table.cell_bool (failures = 0 && rounds_bad = 0 && max_distinct <= k);
        ])
      cases
  in
  {
    Table.id = "E6";
    title = "one-round k-set agreement (Theorem 3.1)";
    claim =
      "Thm 3.1: under |∪D − ∩D| < k per round, emitting the input and \
       deciding the lowest-id unsuspected value solves k-set agreement in \
       exactly one round";
    header =
      [ "n"; "k"; "trials"; "max-distinct"; "task-fails"; "extra-rounds"; "ok" ];
    rows;
    notes = [ "max-distinct ≤ k is the agreement bound; 0 task-fails = validity+termination also hold" ];
    counters = Table.counter_stats (Array.concat (List.rev !work));
  }
