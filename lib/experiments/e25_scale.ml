(* E25 — breaking the n ≤ 62 wall: large-n scaling campaigns.

   Every earlier experiment lives below Pset's old single-word cap.
   This one exists to prove the wide (multi-word) representation end to
   end: three protocol probes — one-round k-set agreement on the
   abstract engine, heartbeat convergence on the asynchronous network,
   and Chandra–Toueg consensus with its embedded detector — run at
   n = 100 and n = 1000 (and n = 10000 from the CLI), sizes where every
   fault set, quorum and heard-of computation is multi-word.  The table
   gates on correctness only (agreement, validity, convergence,
   all-decided); {!measure} times the same probes wall-clock and
   denominates them in work units (ns/round, ns/msg — the
   ThroughputMeasure idiom) for the BENCH json regression gate.

   Trials run as a Runtime.Campaign with per-cell derived seeds, so the
   table and the {!to_json} artifact are bit-identical at every [-j] —
   the [@scale-smoke] contract.  Per-cell trial counts shrink as n grows
   ([trials_for]): a 1000-process heartbeat trial is n² simulated
   deliveries per beat, so the grid buys width with repetition. *)

module Json = Report.Json

let probes = [ "kset"; "heartbeat"; "ct" ]

let default_ns = [ 100; 1000 ]

(* Budget ~1000 simulated processes' worth of work per cell: n = 100
   runs [trials] trials (capped at 10), n = 1000 one. *)
let trials_for ~trials n = max 1 (min trials (1000 / n))

type digest = {
  ok : bool;
  counters : Rrfd.Counters.t;
  checksum : int;  (** Order-sensitive hash of the decision vector. *)
}

let checksum_decisions decisions =
  Array.fold_left
    (fun acc d ->
      let v = match d with None -> -1 | Some v -> v in
      ((acc * 31) + v + 1) land 0x3FFFFFFF)
    17 decisions

(* {2 Probes}

   Each consumes one [rng] draw per simulator it seeds, so the campaign's
   per-trial RNG derivation fixes the whole trial. *)

let kset_trial ~rng ~n =
  let k = 2 in
  let inputs = Tasks.Inputs.distinct n in
  let detector = Rrfd.Detector_gen.k_set rng ~n ~k in
  let ex =
    Protocols.Catalog.run_engine
      (Protocols.Catalog.find_exn "kset-one-round")
      ~inputs
      ~check:(Rrfd.Predicate.k_set ~k)
      ~n ~f:(k - 1) ~detector ()
  in
  let distinct =
    Tasks.Agreement.distinct_decisions ~decisions:ex.Rrfd.Substrate.decisions
  in
  let ok =
    ex.Rrfd.Substrate.rounds_used = 1
    && distinct <= k
    && Tasks.Agreement.check ~k ~inputs ex.Rrfd.Substrate.decisions = None
    && ex.Rrfd.Substrate.violation = None
  in
  {
    ok;
    counters = ex.Rrfd.Substrate.counters;
    checksum = checksum_decisions ex.Rrfd.Substrate.decisions;
  }

(* Failure-free heartbeat exchange: every beat is an (n−1)-way broadcast
   (n² simulated deliveries), so the horizon allows exactly two beats per
   process and convergence (no live-live suspicion at drain) is the
   correctness claim.  Deterministically convergent: the last beat of any
   process arrives within [horizon + max_delay], so every observer's
   recency at drain is at most [horizon + max_delay − 1 < initial_timeout]. *)
let hb_interval = 15.0

let hb_horizon = 30.0

let heartbeat_trial ~seed ~n =
  let sim = Dsim.Sim.create ~seed () in
  let hb = ref None in
  let deliver _ ~to_ ~from () =
    Msgnet.Heartbeat.beat (Option.get !hb) ~at:to_ ~from
  in
  let net = Msgnet.Network.create ~sim ~n ~deliver () in
  hb :=
    Some
      (Msgnet.Heartbeat.create ~sim ~n
         ~send_heartbeat:(fun ~from ->
           Msgnet.Network.broadcast net ~from ~self:false ())
         ~interval:hb_interval ~initial_timeout:42.0 ~horizon:hb_horizon ());
  Dsim.Sim.run sim;
  let hb = Option.get !hb in
  let suspicions =
    List.length (Msgnet.Heartbeat.live_suspicions hb ~among:(Rrfd.Pset.full n))
  in
  {
    ok = suspicions = 0;
    counters =
      {
        Rrfd.Counters.rounds =
          int_of_float (hb_horizon /. hb_interval) (* beats per process *);
        messages = Msgnet.Network.messages_delivered net;
        detector_queries = n * n (* the convergence sweep *);
        predicate_checks = 0;
      };
    checksum = suspicions;
  }

(* Failure-free CT consensus.  The scale parameters stretch the heartbeat
   interval and shorten the horizon (every beat is an n-way broadcast);
   the long initial timeout keeps the failure-free run suspicion-free, so
   decisions land in phase 0 and the horizon only bounds drain work. *)
let ct_trial ~seed ~n =
  let f = (n - 1) / 2 in
  let inputs = Array.init n (fun i -> i mod 3) in
  let r =
    Msgnet.Ct_consensus.run ~seed ~n ~f ~inputs ~hb_interval:55.0
      ~hb_initial_timeout:120.0 ~horizon:60.0 ()
  in
  let all_decided = Array.for_all Option.is_some r.Msgnet.Ct_consensus.decisions in
  let ok =
    all_decided
    && Tasks.Agreement.check ~k:1 ~inputs r.Msgnet.Ct_consensus.decisions = None
  in
  {
    ok;
    counters =
      {
        Rrfd.Counters.rounds = r.Msgnet.Ct_consensus.phases_used + 1;
        messages = r.Msgnet.Ct_consensus.messages_sent;
        detector_queries = 0;
        predicate_checks = 0;
      };
    checksum = checksum_decisions r.Msgnet.Ct_consensus.decisions;
  }

let run_probe probe ~rng ~n =
  match probe with
  | "kset" -> kset_trial ~rng ~n
  | "heartbeat" -> heartbeat_trial ~seed:(Dsim.Rng.bits30 rng) ~n
  | "ct" -> ct_trial ~seed:(Dsim.Rng.bits30 rng) ~n
  | p -> invalid_arg ("E25: unknown probe " ^ p)

(* {2 The campaign} *)

type cell = {
  probe : string;
  cell_n : int;
  cell_trials : int;
  digests : digest array;
}

let collect ?(seed = 25) ?(trials = 6) ?jobs ?(ns = default_ns) () =
  let cell_idx = ref 0 in
  List.concat_map
    (fun probe ->
      List.map
        (fun n ->
          let idx = !cell_idx in
          incr cell_idx;
          let cell_trials = trials_for ~trials n in
          let digests =
            Runtime.Campaign.run ?jobs
              ~seed:(Dsim.Rng.derive_seed seed idx)
              ~trials:cell_trials
              (fun ~trial:_ ~rng -> run_probe probe ~rng ~n)
          in
          { probe; cell_n = n; cell_trials; digests })
        ns)
    probes

let table_of cells =
  let rows =
    List.map
      (fun c ->
        let count p =
          Array.fold_left (fun k d -> if p d then k + 1 else k) 0 c.digests
        in
        let sum g =
          Array.fold_left (fun k d -> k + g d) 0 c.digests
        in
        let oks = count (fun d -> d.ok) in
        [
          c.probe;
          Table.cell_int c.cell_n;
          Table.cell_int c.cell_trials;
          Table.cell_int oks;
          Table.cell_int (sum (fun d -> d.counters.Rrfd.Counters.rounds));
          Table.cell_int (sum (fun d -> d.counters.Rrfd.Counters.messages));
          Table.cell_bool (oks = c.cell_trials);
        ])
      cells
  in
  {
    Table.id = "E25";
    title = "large-n scaling campaigns on the wide Pset";
    claim =
      "the n ≤ 62 wall is gone: one-round k-set agreement, heartbeat \
       convergence and Chandra–Toueg consensus all run correctly at \
       n = 100 and n = 1000, where every fault set, quorum and heard-of \
       computation exercises the multi-word bitset representation";
    header = [ "probe"; "n"; "trials"; "ok-trials"; "rounds"; "messages"; "ok" ];
    rows;
    notes =
      [
        "kset: engine + k-set detector (k=2), gates agreement/validity in \
         exactly one round; heartbeat: lossless network, gates zero \
         live-live suspicions at drain; ct: failure-free consensus \
         (f=(n-1)/2), gates all-decided + agreement";
        "per-cell trials shrink as n grows (max 1 (min trials 1000/n)): \
         the grid buys width with repetition";
        "rounds/messages are summed per cell and feed the throughput \
         denominators in the BENCH scale subjects";
      ];
    counters =
      Table.counter_stats
        (Array.concat (List.map (fun c -> Array.map (fun d -> d.counters) c.digests) cells));
  }

let run_detailed ?seed ?trials ?jobs ?ns () =
  let cells = collect ?seed ?trials ?jobs ?ns () in
  (table_of cells, cells)

let run ?seed ?trials ?jobs () = fst (run_detailed ?seed ?trials ?jobs ())

(* {2 Artifact codec}

   Per-trial digests only — ok flags, exact work counters and a decision
   checksum — never full histories or decision vectors: a single
   n = 1000 trial's history would dwarf the artifact.  Version-tagged so
   [scale --check-artifact]-style consumers can refuse foreign files. *)

let version = 1

let to_json cells =
  Json.Obj
    [
      ("version", Json.Number (float_of_int version));
      ("kind", Json.String "rrfd-scale-grid");
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("probe", Json.String c.probe);
                   ("n", Json.Number (float_of_int c.cell_n));
                   ("trials", Json.Number (float_of_int c.cell_trials));
                   ( "digests",
                     Json.List
                       (Array.to_list
                          (Array.map
                             (fun d ->
                               Json.Obj
                                 [
                                   ("ok", Json.Bool d.ok);
                                   ( "rounds",
                                     Json.Number
                                       (float_of_int
                                          d.counters.Rrfd.Counters.rounds) );
                                   ( "messages",
                                     Json.Number
                                       (float_of_int
                                          d.counters.Rrfd.Counters.messages) );
                                   ( "detector_queries",
                                     Json.Number
                                       (float_of_int
                                          d.counters
                                            .Rrfd.Counters.detector_queries) );
                                   ( "predicate_checks",
                                     Json.Number
                                       (float_of_int
                                          d.counters
                                            .Rrfd.Counters.predicate_checks) );
                                   ( "checksum",
                                     Json.Number (float_of_int d.checksum) );
                                 ])
                             c.digests)) );
                 ])
             cells) );
    ]

let of_json json =
  let v = Json.int (Json.member "version" json) in
  if v <> version then
    raise
      (Json.Error
         (Printf.sprintf "scale-grid artifact version %d, expected %d" v version));
  (match Json.str (Json.member "kind" json) with
  | "rrfd-scale-grid" -> ()
  | k -> raise (Json.Error (Printf.sprintf "unexpected artifact kind %S" k)));
  List.map
    (fun c ->
      {
        probe = Json.str (Json.member "probe" c);
        cell_n = Json.int (Json.member "n" c);
        cell_trials = Json.int (Json.member "trials" c);
        digests =
          Array.of_list
            (List.map
               (fun d ->
                 {
                   ok = Json.bool (Json.member "ok" d);
                   counters =
                     {
                       Rrfd.Counters.rounds = Json.int (Json.member "rounds" d);
                       messages = Json.int (Json.member "messages" d);
                       detector_queries =
                         Json.int (Json.member "detector_queries" d);
                       predicate_checks =
                         Json.int (Json.member "predicate_checks" d);
                     };
                   checksum = Json.int (Json.member "checksum" d);
                 })
               (Json.list (Json.member "digests" c)));
      })
    (Json.list (Json.member "cells" json))

(* {2 Throughput measurement}

   The ThroughputMeasure idiom: attach work units to timed runs and
   report time per unit, not just time per run.  [now_ns] is injected so
   this library stays clock-agnostic (bench and the CLI pass the
   bechamel monotonic clock).  Subjects are all lower-is-better
   (ns/run, ns/round, ns/msg), so the existing --check tolerance gate
   applies unchanged; rounds/sec and messages/sec are derived views for
   humans. *)

type measurement = {
  m_probe : string;
  m_n : int;
  m_repeats : int;
  m_ns_per_run : float;
  m_rounds_per_run : float;
  m_msgs_per_run : float;
  m_ok : bool;
}

let measure ~now_ns ?(seed = 25) ?(ns = [ 100 ]) ?(repeats = 2) () =
  List.concat_map
    (fun probe ->
      List.map
        (fun n ->
          let rounds = ref 0 and msgs = ref 0 and all_ok = ref true in
          let t0 = now_ns () in
          for rep = 0 to repeats - 1 do
            let rng = Dsim.Rng.create (Dsim.Rng.derive_seed seed rep) in
            let d = run_probe probe ~rng ~n in
            rounds := !rounds + d.counters.Rrfd.Counters.rounds;
            msgs := !msgs + d.counters.Rrfd.Counters.messages;
            all_ok := !all_ok && d.ok
          done;
          let elapsed = Int64.to_float (Int64.sub (now_ns ()) t0) in
          let per_run = elapsed /. float_of_int repeats in
          {
            m_probe = probe;
            m_n = n;
            m_repeats = repeats;
            m_ns_per_run = per_run;
            m_rounds_per_run = float_of_int !rounds /. float_of_int repeats;
            m_msgs_per_run = float_of_int !msgs /. float_of_int repeats;
            m_ok = !all_ok;
          })
        ns)
    probes

let subjects_of measurements =
  List.concat_map
    (fun m ->
      let name unit =
        Printf.sprintf "rrfd/scale:%s n=%d [%s]" m.m_probe m.m_n unit
      in
      (* whole-run probes are too coarse for an allocation estimate *)
      [
        {
          Report.name = name "ns/run";
          ns_per_run = m.m_ns_per_run;
          alloc_per_run = None;
        };
        {
          Report.name = name "ns/round";
          ns_per_run = m.m_ns_per_run /. m.m_rounds_per_run;
          alloc_per_run = None;
        };
        {
          Report.name = name "ns/msg";
          ns_per_run = m.m_ns_per_run /. m.m_msgs_per_run;
          alloc_per_run = None;
        };
      ])
    measurements

let print_measurements measurements =
  Printf.printf "scale throughput:\n";
  List.iter
    (fun m ->
      Printf.printf
        "  %-10s n=%-6d %8.2f ms/run  %10.0f rounds/s  %12.0f msgs/s%s\n"
        m.m_probe m.m_n
        (m.m_ns_per_run /. 1e6)
        (m.m_rounds_per_run /. (m.m_ns_per_run /. 1e9))
        (m.m_msgs_per_run /. (m.m_ns_per_run /. 1e9))
        (if m.m_ok then "" else "  [FAILED]"))
    measurements
