(* E14 — item 4's knowledge analysis: under P3 ∧ antisymmetry someone is
   known by all within n rounds; the paper conjectures 2 rounds suffice.
   We settle the conjecture exhaustively at tiny n and measure the worst
   round observed at larger n.

   The sampled rows are Runtime.Campaigns: per-(n, trial) RNG derivation
   keeps the worst-round figure identical across -j. *)

let run ?(seed = 14) ?(trials = 2000) ?jobs () =
  let rows = ref [] in
  let work = ref [] in
  (* Exhaustive at n = 2 and 3. *)
  List.iter
    (fun n ->
      let predicate =
        Rrfd.Predicate.conj
          (Rrfd.Predicate.async_resilient ~f:(n - 1))
          Rrfd.Predicate.antisymmetric_misses
      in
      let counterexample =
        Adversary.Enumerate.find ~n ~rounds:2 ~satisfying:predicate
          ~f:(fun h -> Rrfd.Emulation.knowledge_rounds h = None)
      in
      let total = Adversary.Enumerate.count ~n ~rounds:2 ~satisfying:predicate in
      rows :=
        [
          "exhaustive";
          Table.cell_int n;
          Table.cell_int total;
          (match counterexample with
          | None -> "conjecture holds"
          | Some _ -> "COUNTEREXAMPLE");
          Table.cell_bool true;
        ]
        :: !rows)
    [ 2; 3 ];
  (* Sampled worst case at larger n. *)
  List.iter
    (fun n ->
      let obs =
        Runtime.Campaign.run ?jobs
          ~seed:(Dsim.Rng.derive_seed seed n)
          ~trials
          (fun ~trial:_ ~rng ->
            let f = max 1 ((n - 1) / 2) in
            let detector = Rrfd.Detector_gen.antisymmetric rng ~n ~f in
            let known, history =
              Rrfd.Emulation.known_by_all_observed ~n ~detector ~max_rounds:n
            in
            (known, Rrfd.Counters.of_history history))
      in
      work := Array.map snd obs :: !work;
      let worst =
        Array.fold_left
          (fun m -> function Some r, _ -> max m r | None, _ -> m)
          0 obs
      in
      let beyond_n =
        Array.fold_left
          (fun c -> function None, _ -> c + 1 | Some _, _ -> c)
          0 obs
      in
      rows :=
        [
          "sampled";
          Table.cell_int n;
          Table.cell_int trials;
          Printf.sprintf "worst round %d" worst;
          Table.cell_bool (beyond_n = 0);
        ]
        :: !rows)
    [ 4; 6; 8; 10 ];
  {
    Table.id = "E14";
    title = "known-by-all under antisymmetric misses (item 4's conjecture)";
    claim =
      "Sec. 2 item 4: with antisymmetric miss relations a does-not-know \
       cycle of length ≥ r+1 is needed to survive r rounds, so someone is \
       known by all within n rounds; the paper conjectures 2 rounds \
       suffice";
    header = [ "method"; "n"; "histories/trials"; "result"; "within n rounds" ];
    rows = List.rev !rows;
    notes =
      [
        "exhaustive rows settle the 2-round conjecture for that n; sampled \
         rows report the worst first known-by-all round seen";
      ];
    counters = Table.counter_stats (Array.concat (List.rev !work));
  }
