type packed =
  | Packed : {
      pp_msg : Format.formatter -> 'm -> unit;
      algorithm : inputs:int array -> f:int -> ('s, 'm, int) Rrfd.Algorithm.t;
    }
      -> packed

type t = {
  name : string;
  doc : string;
  horizon : n:int -> f:int -> int;
  default_n : int;
  default_f : n:int -> int;
  pp_out : Format.formatter -> int -> unit;
  properties : string list;
  faults : string list;
  packed : packed;
}

let name t = t.name

let doc t = t.doc

let horizon t = t.horizon

let default_n t = t.default_n

let default_f t = t.default_f

let pp_out t = t.pp_out

let properties t = t.properties

let faults t = t.faults

(* Fault-model vocabulary every entry must draw from; the catalog
   invariant test rejects anything else, so a new fault class has to be
   added here deliberately rather than by typo. *)
let known_faults = [ "crash"; "omission"; "byzantine" ]

let default_inputs ~n = Tasks.Inputs.distinct n

(* The agreement defaults mirror what the checker historically assumed:
   consensus-flavoured protocols answer to termination/validity/agreement,
   adopt-commit to its own coherence property. *)
let consensus_properties = [ "termination"; "validity"; "agreement" ]

let pp_int_list ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    l

let pp_adopt_commit_msg ppf = function
  | Rrfd.Adopt_commit.Value v -> Format.fprintf ppf "value %d" v
  | Rrfd.Adopt_commit.Vote (Rrfd.Adopt_commit.Commit_vote v) ->
    Format.fprintf ppf "commit-vote %d" v
  | Rrfd.Adopt_commit.Vote (Rrfd.Adopt_commit.Adopt_vote v) ->
    Format.fprintf ppf "adopt-vote %d" v

let all =
  [
    {
      name = "kset-one-round";
      doc =
        "Theorem 3.1: emit the input, decide the lowest-id unsuspected \
         value — k-set agreement in one round under the k-set detector";
      horizon = (fun ~n:_ ~f:_ -> 1);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Format.pp_print_int;
      properties = consensus_properties;
      faults = [ "crash"; "omission" ];
      packed =
        Packed
          {
            pp_msg = Format.pp_print_int;
            algorithm = (fun ~inputs ~f:_ -> Rrfd.Kset.one_round ~inputs);
          };
    };
    {
      name = "consensus";
      doc =
        "the Theorem-3.1 algorithm run for consensus (k-set detector with \
         k = 1, or identical views)";
      horizon = (fun ~n:_ ~f:_ -> 1);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Format.pp_print_int;
      properties = consensus_properties;
      faults = [ "crash"; "omission" ];
      packed =
        Packed
          {
            pp_msg = Format.pp_print_int;
            algorithm = (fun ~inputs ~f:_ -> Rrfd.Kset.consensus ~inputs);
          };
    };
    {
      name = "kset-snapshot";
      doc =
        "Corollary 3.2: the same one-round algorithm under the snapshot \
         RRFD with f = k − 1 failures, which implies the k-set detector";
      horizon = (fun ~n:_ ~f:_ -> 1);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Format.pp_print_int;
      properties = consensus_properties;
      faults = [ "crash"; "omission" ];
      packed =
        Packed
          {
            pp_msg = Format.pp_print_int;
            algorithm = (fun ~inputs ~f:_ -> Rrfd.Kset.one_round ~inputs);
          };
    };
    {
      name = "adopt-commit";
      doc =
        "the Section-4.2 two-round adopt-commit protocol, decisions packed \
         as ints (commit v = 2v, adopt v = 2v+1)";
      horizon = (fun ~n:_ ~f:_ -> 2);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Rrfd.Adopt_commit.pp_encoded;
      properties = [ "adopt-commit" ];
      faults = [ "crash"; "omission" ];
      packed =
        Packed
          {
            pp_msg = pp_adopt_commit_msg;
            algorithm =
              (fun ~inputs ~f:_ ->
                Rrfd.Algorithm.map_output Rrfd.Adopt_commit.encode
                  (Rrfd.Adopt_commit.algorithm ~inputs));
          };
    };
    {
      name = "phased-consensus";
      doc =
        "the Section-7 program: phases of one candidate round plus two \
         adopt-commit rounds; safe always, decides one phase after the \
         candidate rounds stabilise";
      horizon =
        (fun ~n:_ ~f:_ -> Rrfd.Phased_consensus.rounds_needed ~stabilize_at:1);
      default_n = 4;
      default_f = (fun ~n -> n - 1);
      pp_out = Format.pp_print_int;
      properties = consensus_properties;
      faults = [ "crash"; "omission" ];
      packed =
        Packed
          {
            pp_msg =
              (fun ppf _ -> Format.pp_print_string ppf "<phased-msg>");
            algorithm =
              (fun ~inputs ~f:_ -> Rrfd.Phased_consensus.algorithm ~inputs);
          };
    };
    {
      name = "early-deciding";
      doc =
        "flooding consensus with the clean-round rule: decides by round \
         min(f'+2, f+1) when only f' ≤ f crashes actually occur";
      horizon = (fun ~n:_ ~f -> f + 1);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Format.pp_print_int;
      properties = consensus_properties;
      faults = [ "crash" ];
      packed =
        Packed
          {
            pp_msg = pp_int_list;
            algorithm =
              (fun ~inputs ~f -> Syncnet.Early_deciding.algorithm ~inputs ~f);
          };
    };
    {
      name = "flood-consensus";
      doc =
        "FloodSet: broadcast known values for f+1 rounds, decide the \
         minimum — the Corollary-4.2 baseline the chain adversary defeats \
         at any smaller horizon";
      horizon = (fun ~n:_ ~f -> f + 1);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Format.pp_print_int;
      properties = consensus_properties;
      faults = [ "crash" ];
      packed =
        Packed
          {
            pp_msg = pp_int_list;
            algorithm = (fun ~inputs ~f -> Syncnet.Flood.consensus ~inputs ~f);
          };
    };
    {
      name = "byz-vote";
      doc =
        "one-shot two-threshold quorum vote: decide on n−f unanimous \
         round-1 votes, publish the quorum as a round-2 certificate — \
         the decision rule whose forks are ≥ f+1-accountable \
         (Accountability/E24)";
      horizon = (fun ~n:_ ~f:_ -> 2);
      default_n = 4;
      default_f = (fun ~n:_ -> 1);
      pp_out = Format.pp_print_int;
      (* No termination: the vote legitimately abstains whenever the
         first n−f votes disagree — safety without liveness, which is
         the point of an accountable decision rule. *)
      properties = [ "validity"; "agreement" ];
      faults = [ "crash"; "byzantine" ];
      packed =
        Packed
          {
            pp_msg = Rrfd.Quorum_vote.pp_msg;
            algorithm = (fun ~inputs ~f -> Rrfd.Quorum_vote.algorithm ~inputs ~f);
          };
    };
  ]

let names = List.map (fun t -> t.name) all

let find name_ = List.find_opt (fun t -> String.equal t.name name_) all

let find_exn name_ =
  match find name_ with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "Catalog.find_exn: unknown protocol %S (have: %s)" name_
         (String.concat ", " names))

(* {2 Substrate runners}

   The algorithm's state and message types are existential, so the only way
   out of the catalog is to run: each runner instantiates the algorithm
   once and drives it through the corresponding {!Rrfd.Substrate.S}
   implementation. *)

let run_engine t ?inputs ?check ?(stop_when_decided = true) ?max_rounds ~n ~f
    ~detector () =
  let (Packed p) = t.packed in
  let inputs = match inputs with Some i -> i | None -> default_inputs ~n in
  let rounds = match max_rounds with Some r -> r | None -> 64 in
  Rrfd.Engine.As_substrate.execute
    { Rrfd.Engine.As_substrate.detector; check; stop_when_decided }
    ~n ~rounds
    ~algorithm:(p.algorithm ~inputs ~f)

let run_sync t ?inputs ?check ?(stop_when_decided = true) ?rounds ~n ~f
    ~pattern () =
  let (Packed p) = t.packed in
  let inputs = match inputs with Some i -> i | None -> default_inputs ~n in
  let rounds = match rounds with Some r -> r | None -> t.horizon ~n ~f in
  Syncnet.Sync_net.As_substrate.execute
    { Syncnet.Sync_net.As_substrate.pattern; check; stop_when_decided }
    ~n ~rounds
    ~algorithm:(p.algorithm ~inputs ~f)

let run_msgnet t ?inputs ?(crashes = []) ?adversary ?min_delay ?max_delay
    ?retransmit_every ?time_horizon ?rounds ~seed ~n ~f () =
  let (Packed p) = t.packed in
  let inputs = match inputs with Some i -> i | None -> default_inputs ~n in
  let rounds = match rounds with Some r -> r | None -> t.horizon ~n ~f in
  Msgnet.Round_layer.As_substrate.execute
    {
      Msgnet.Round_layer.As_substrate.seed;
      f;
      min_delay;
      max_delay;
      crashes;
      adversary;
      retransmit_every;
      horizon = time_horizon;
    }
    ~n ~rounds
    ~algorithm:(p.algorithm ~inputs ~f)

let run_live t ?inputs ?patience ?rounds ~n ~f () =
  let (Packed p) = t.packed in
  let inputs = match inputs with Some i -> i | None -> default_inputs ~n in
  let rounds = match rounds with Some r -> r | None -> t.horizon ~n ~f in
  let patience =
    match patience with Some p -> p | None -> Live.Patience.Wait_quorum
  in
  Live.As_substrate.execute
    { Live.As_substrate.patience; f }
    ~n ~rounds
    ~algorithm:(p.algorithm ~inputs ~f)

(* Pinned replay: the differential oracle.  The history becomes an
   [of_schedule] detector with a failure-free tail, the engine runs it for
   exactly the history's length without early stopping, so the replay's
   induced history is the input history bit-for-bit and the decisions are
   those of the lock-step execution the history describes. *)
let replay t ?inputs ?check ~f ~history () =
  let n = Rrfd.Fault_history.n history in
  let pinned = Rrfd.Fault_history.rounds history in
  let schedule =
    List.init pinned (fun r ->
        Rrfd.Fault_history.round_sets history ~round:(r + 1))
  in
  let after = Array.make n Rrfd.Pset.empty in
  let detector = Rrfd.Detector.of_schedule ~after schedule in
  run_engine t ?inputs ?check ~stop_when_decided:false ~max_rounds:pinned ~n
    ~f ~detector ()

let transcript t ?inputs ?check ~n ~f ~max_rounds ~detector () =
  let (Packed p) = t.packed in
  let inputs = match inputs with Some i -> i | None -> default_inputs ~n in
  let trace =
    Rrfd.Trace.record ~n ~max_rounds ?check ~pp_msg:p.pp_msg
      ~algorithm:(p.algorithm ~inputs ~f) ~detector ()
  in
  Format.asprintf "@[<v>%a@]" (Rrfd.Trace.pp t.pp_out) trace
