(** The protocol catalog: every round-machine protocol in the repository,
    registered exactly once.

    An entry packages an [('s, 'm, int) Rrfd.Algorithm.t] constructor with
    the protocol's horizon, default parameters, printers and checker
    vocabulary.  The state and message types are existentially packed, so
    the only way to use an entry is through the substrate runners below —
    which is the point: downstream layers (the model checker's SUTs, the
    experiment run-loops, the CLI's protocol names, the cross-substrate
    matrix E22) are all derived from this single definition site instead
    of re-instantiating algorithms locally. *)

type packed =
  | Packed : {
      pp_msg : Format.formatter -> 'm -> unit;
      algorithm : inputs:int array -> f:int -> ('s, 'm, int) Rrfd.Algorithm.t;
    }
      -> packed  (** The algorithm constructor, state/message types hidden. *)

type t = {
  name : string;  (** CLI / checker name, kebab-case, unique. *)
  doc : string;  (** One-line description for listings. *)
  horizon : n:int -> f:int -> int;
      (** Rounds by which every process has decided (under the protocol's
          intended predicate). *)
  default_n : int;
  default_f : n:int -> int;
  pp_out : Format.formatter -> int -> unit;  (** Decision printer. *)
  properties : string list;
      (** Default {!Check.Spec} property names the protocol answers to. *)
  faults : string list;
      (** Fault models the protocol's guarantees are stated against, drawn
          from {!known_faults}.  Entries claiming ["byzantine"] must keep
          their safety properties when adversary-marked processes lie
          about content (E24's battery holds them to it); the others are
          only ever exercised under crash/omission schedules. *)
  packed : packed;
}

val all : t list
(** Registration order is the display order everywhere. *)

val names : string list

val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument on unknown names, listing the known ones. *)

val name : t -> string

val doc : t -> string

val horizon : t -> n:int -> f:int -> int

val default_n : t -> int

val default_f : t -> n:int -> int

val pp_out : t -> Format.formatter -> int -> unit

val properties : t -> string list

val faults : t -> string list

val known_faults : string list
(** The allowed fault-model vocabulary: ["crash"], ["omission"],
    ["byzantine"].  The catalog invariant test rejects entries declaring
    anything else. *)

val default_inputs : n:int -> int array
(** [Tasks.Inputs.distinct n] — every process proposes its own id, the
    hardest case for agreement. *)

(** {1 Substrate runners}

    Each runner instantiates the entry's algorithm (default inputs
    {!default_inputs} unless given) and drives it through one
    {!Rrfd.Substrate.S} implementation, returning the uniform
    [int Rrfd.Substrate.execution] record. *)

val run_engine :
  t ->
  ?inputs:int array ->
  ?check:Rrfd.Predicate.t ->
  ?stop_when_decided:bool ->
  ?max_rounds:int ->
  n:int ->
  f:int ->
  detector:Rrfd.Detector.t ->
  unit ->
  int Rrfd.Substrate.execution
(** The abstract engine ({!Rrfd.Engine.As_substrate}).  [max_rounds]
    defaults to 64, matching {!Rrfd.Engine.run}. *)

val run_sync :
  t ->
  ?inputs:int array ->
  ?check:Rrfd.Predicate.t ->
  ?stop_when_decided:bool ->
  ?rounds:int ->
  n:int ->
  f:int ->
  pattern:Syncnet.Faults.t ->
  unit ->
  int Rrfd.Substrate.execution
(** The lock-step synchronous network ({!Syncnet.Sync_net.As_substrate}).
    [rounds] defaults to the protocol's horizon at ([n], [f]). *)

val run_live :
  t ->
  ?inputs:int array ->
  ?patience:Live.Patience.t ->
  ?rounds:int ->
  n:int ->
  f:int ->
  unit ->
  int Rrfd.Substrate.execution
(** The live substrate ({!Live.As_substrate}): one OCaml domain per
    process, real scheduling, omission observed rather than injected.
    [patience] defaults to {!Live.Patience.Wait_quorum} (at the given
    [f]); [rounds] defaults to the protocol's horizon at ([n], [f]).
    Nondeterministic run to run — but [execution.induced] is the exact
    heard-of record, so {!replay} of it is the deterministic pin. *)

val run_msgnet :
  t ->
  ?inputs:int array ->
  ?crashes:(Rrfd.Proc.t * float) list ->
  ?adversary:Msgnet.Adversary.t ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?retransmit_every:float ->
  ?time_horizon:float ->
  ?rounds:int ->
  seed:int ->
  n:int ->
  f:int ->
  unit ->
  int Rrfd.Substrate.execution
(** The event-driven asynchronous network
    ({!Msgnet.Round_layer.As_substrate}).  [rounds] defaults to the
    protocol's horizon; [time_horizon] is the simulated-time repair cutoff
    ({!Msgnet.Round_layer.run}'s [horizon]). *)

val replay :
  t ->
  ?inputs:int array ->
  ?check:Rrfd.Predicate.t ->
  f:int ->
  history:Rrfd.Fault_history.t ->
  unit ->
  int Rrfd.Substrate.execution
(** Pinned replay, the differential oracle: run the engine over exactly
    [history] ({!Rrfd.Detector.of_schedule}, no early stop), so the
    replay's induced history is [history] bit-for-bit and its decisions
    are the lock-step reading of it. *)

val transcript :
  t ->
  ?inputs:int array ->
  ?check:Rrfd.Predicate.t ->
  n:int ->
  f:int ->
  max_rounds:int ->
  detector:Rrfd.Detector.t ->
  unit ->
  string
(** Rendered {!Rrfd.Trace} of one engine execution — what [check --replay]
    and [trace] print. *)
