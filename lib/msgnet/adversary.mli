(** Composable network fault-injection policies.

    The paper's whole point is that a model {e is} a predicate over the
    fault-history families [{D(i,r)}]; this module supplies the other half
    of that bridge — adversaries that damage the {e wire} rather than the
    detector, so the heard-of extraction ({!Heard_of}) can ask which
    predicate a given network adversary actually induces.

    A policy is a list of atoms applied to every non-loopback message a
    {!Network} carries: seeded-probability drop, bounded duplication, delay
    spikes, reorder jitter, and timed partition/heal schedules over
    {!Rrfd.Pset} blocks.  All randomness flows through the simulator's
    {!Dsim.Rng} stream, so a run is a pure function of its seed and the
    campaign layer's [(seed, trial)] derivation keeps tables bit-identical
    at every [-j].

    Policies are named by spec strings in the {!Check.Spec} vocabulary
    ([name:key=val,key=val], integer parameters, atoms joined with [+]), so
    a table row, a CLI flag and a JSON artifact all read the same way. *)

type blocks =
  | Split_at of int
      (** [{0..k-1}] versus [{k..n-1}] — the two-block split the spec
          string language can express without knowing [n]. *)
  | Blocks of Rrfd.Pset.t list
      (** Explicit disjoint blocks; processes in no block are unaffected. *)

type byz_behaviour = { equivocate : bool; corrupt : bool; forge : bool }
(** What a Byzantine process is allowed to do to its outgoing traffic:
    [equivocate] — send different round-[r] payloads to different
    receivers; [corrupt] — replace the payload it should have sent;
    [forge] — inject round-[r] messages it was never asked to send.
    Flags compose; all three lie about {e content}, never timing. *)

type atom =
  | Drop of { p : float }  (** Lose the message with probability [p]. *)
  | Duplicate of { p : float; copies : int }
      (** With probability [p], inject 1 to [copies] extra deliveries,
          each with an independently drawn delay. *)
  | Spike of { p : float; factor : float }
      (** With probability [p], multiply the drawn delay by [factor]. *)
  | Reorder of { p : float; window : float }
      (** With probability [p], add uniform extra delay in [\[0, window)] —
          enough to push the message behind later sends. *)
  | Partition of { at : float; heal : float; blocks : blocks }
      (** Messages crossing block boundaries are cut while
          [at <= now < heal]. *)
  | Byz of { members : Rrfd.Pset.t; behaviour : byz_behaviour }
      (** The processes in [members] lie per [behaviour].  Unlike every
          other atom this one never consumes the rng stream nor touches
          the delay plan — content tampering is applied by the transport
          ({!Network}'s [tamper] hook), keyed off {!byz_behaviour} — so
          adding a [Byz] atom leaves the benign delay schedule of a run
          bit-identical. *)

type t
(** A policy: an atom list plus the spec string that names it. *)

val none : t
(** The identity policy (spec ["none"]): every message is delivered once
    with its drawn delay. *)

val is_noop : t -> bool

val make : spec:string -> atom list -> t
(** Programmatic construction, e.g. partitions over arbitrary
    {!Rrfd.Pset} blocks that the spec grammar cannot spell. *)

val atoms : t -> atom list

val spec : t -> string
(** The policy's name — round-trips through {!of_spec} for every policy
    built by it. *)

val of_spec : string -> (t, string) result
(** Parse a policy.  Atoms are joined with [+]; each is a bare name or
    [name:key=val,...] with small non-negative integer values
    (probabilities are percentages):

    - [none]
    - [drop:p=20] — drop each message with probability 0.20
    - [dup:p=25,copies=2] — with probability 0.25 add 1..2 extra copies
    - [spike:p=10,factor=10] — with probability 0.10 multiply the delay
    - [reorder:p=25,window=10] — with probability 0.25 add jitter < 10
    - [partition:at=5,heal=50,left=2] — cut [{0..1}] from the rest during
      virtual time [\[5, 50)]
    - [byz:m=2,equiv=1,corrupt=0,forge=0] — processes [{0..1}] are
      Byzantine with the given behaviour flags (defaults:
      [equiv=1,corrupt=0,forge=0]); [m=0] spells the "nobody is
      Byzantine" grid row

    [Error] names the unknown atom and lists this vocabulary. *)

val spec_names : string
(** Comma-separated vocabulary for [--help] and error messages. *)

val partitioned : t -> now:float -> from:Rrfd.Proc.t -> to_:Rrfd.Proc.t -> bool
(** Whether some partition atom currently cuts the [from → to_] link. *)

val byzantine : t -> n:int -> Rrfd.Pset.t
(** Union of all [Byz] atoms' members, clipped to the [n]-process
    universe — the ground-truth corrupted set a soundness check compares
    accusations against. *)

val byz_behaviour : t -> Rrfd.Proc.t -> byz_behaviour option
(** [byz_behaviour t p] is [Some b] iff some [Byz] atom contains [p];
    behaviours of multiple atoms naming [p] are OR-merged.  [None] means
    [p] is honest and its messages must never be tampered with. *)

val plan :
  t ->
  Dsim.Rng.t ->
  now:float ->
  from:Rrfd.Proc.t ->
  to_:Rrfd.Proc.t ->
  delay:float ->
  redraw:(unit -> float) ->
  float list
(** [plan t rng ~now ~from ~to_ ~delay ~redraw] decides the fate of one
    message whose network-drawn delay is [delay]: the returned list holds
    one delivery delay per copy ([[]] means the message is lost; extra
    copies draw fresh base delays via [redraw]).  Atoms consume [rng] in
    list order with a fixed per-atom draw pattern, so equal policies and
    stream states always plan identically. *)
