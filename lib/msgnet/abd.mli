(** Attiya–Bar-Noy–Dolev register emulation over message passing.

    Item 4 leans on the classic result that a SWMR atomic register can be
    implemented in an asynchronous message-passing system with a majority of
    correct processes ([22] in the paper).  This module implements it over
    the simulated network: one single-writer register, replicated at all [n]
    processes, tolerating [f < n/2] crashes.

    - {b write(v)}: the writer increments its timestamp, broadcasts
      [(ts, v)], and completes on [n − f] acknowledgements.
    - {b read}: query all replicas, wait for [n − f] replies, pick the
      highest-timestamped pair, {e write it back} to a majority before
      returning — the write-back is what makes concurrent reads atomic
      rather than merely regular.

    Operations are asynchronous: callers get completion callbacks fired by
    the simulator.  {!History} records invocations/responses so tests can
    check atomicity on the real-time order. *)

type t
(** One emulated register (with its replicas) over a network. *)

val create :
  sim:Dsim.Sim.t ->
  n:int ->
  f:int ->
  writer:Rrfd.Proc.t ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?adversary:Adversary.t ->
  ?retry_every:float ->
  ?retry_horizon:float ->
  unit ->
  t
(** [create ~sim ~n ~f ~writer ()] sets up the protocol among [n]
    processes.  Quorums are counted over distinct replicas, so a
    duplicating [adversary] cannot fake one.  When an adversary is present
    (or [retry_every] is given), pending operations rebroadcast their
    message every [retry_every] (default 10.0) until [retry_horizon]
    (default 600.0) virtual time, so drops and healed partitions delay
    quorums instead of starving them.
    @raise Invalid_argument unless [0 ≤ 2f < n]. *)

val write : t -> value:int -> on_done:(unit -> unit) -> unit
(** Start a write by the writer.  At most one outstanding write at a time
    (SWMR; the writer is sequential).
    @raise Invalid_argument if a write is already pending. *)

val read : t -> proc:Rrfd.Proc.t -> on_done:(int option -> unit) -> unit
(** Start a read at process [proc] ([None] if nothing was ever written).
    One outstanding read per process. *)

val crash : t -> Rrfd.Proc.t -> unit
(** Crash a replica/client.  Pending operations of that process never
    complete; everyone else's still do while crashes stay ≤ f. *)

(** Operation log for atomicity checking. *)
module History : sig
  type event = {
    proc : Rrfd.Proc.t;
    kind : [ `Write of int | `Read of int option ];
    invoked : float;
    responded : float;
    timestamp : int;  (** Protocol timestamp attached to the value. *)
  }

  val events : t -> event list
  (** Completed operations, in response order. *)

  val check_atomic : event list -> string option
  (** Single-writer atomicity on the real-time order: a read returns the
      timestamp of the last write that completed before it started, or of a
      concurrent write; and reads that do not overlap are monotone in
      timestamp.  [None] when it holds. *)
end
