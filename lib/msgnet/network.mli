(** Asynchronous point-to-point network on the discrete-event simulator.

    Messages are delivered after adversarially chosen finite delays (drawn
    from the simulator's random stream within configurable bounds, or
    overridden per send), optionally damaged by a fault-injection
    {!Adversary} — drop, duplication, delay spikes, reorder jitter, timed
    partitions.  Loopback sends ([from = to_]) bypass the adversary: a
    process's channel to itself is process-internal.

    Crash semantics (all three statements agree, and the counters below
    audit them): once [crash p] is called, (1) further sends {e from} [p]
    are no-ops and are not counted in {!messages_sent}; (2) messages
    already in flight from [p] are still delivered — the standard
    asynchronous crash model; (3) messages arriving {e at} [p] are dropped
    at delivery time and counted in {!messages_lost_to_crash}.

    Delivery is not FIFO unless the delay bounds make it so.  In a drained
    simulation the counters satisfy
    [sent + duplicated = delivered + dropped + lost_to_crash]. *)

type 'msg t
(** A network carrying messages of type ['msg] between [n] processes. *)

val create :
  sim:Dsim.Sim.t ->
  n:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?adversary:Adversary.t ->
  deliver:(Dsim.Sim.t -> to_:Rrfd.Proc.t -> from:Rrfd.Proc.t -> 'msg -> unit) ->
  unit ->
  'msg t
(** [create ~sim ~n ~deliver ()] builds a network whose per-message delays
    are uniform in [\[min_delay, max_delay\]] (defaults 1.0 and 10.0);
    [deliver] is invoked at the receiver's delivery time.  [adversary]
    (default {!Adversary.none}) is consulted for every non-loopback send. *)

val n : _ t -> int

val adversary : _ t -> Adversary.t

val send : 'msg t -> from:Rrfd.Proc.t -> to_:Rrfd.Proc.t -> ?delay:float -> 'msg -> unit
(** Queue one message.  No-op if the sender has crashed.  An explicit
    [?delay] fixes the base delay but the adversary still applies. *)

val broadcast : 'msg t -> from:Rrfd.Proc.t -> ?self:bool -> 'msg -> unit
(** Send to every process, including the sender itself when [self] (default
    true); each copy gets an independent delay. *)

val crash : 'msg t -> Rrfd.Proc.t -> unit
(** Crash a process: its future sends are no-ops (uncounted), messages in
    flight from it still arrive, and deliveries to it are dropped and
    counted in {!messages_lost_to_crash}. *)

val crashed : 'msg t -> Rrfd.Pset.t

val messages_sent : _ t -> int
(** Sends accepted from live processes (adversarial extra copies not
    included). *)

val messages_delivered : _ t -> int
(** Deliveries actually handed to [deliver]. *)

val messages_dropped : _ t -> int
(** Messages lost to the adversary (drop atoms and partitions). *)

val messages_duplicated : _ t -> int
(** Extra copies the adversary injected beyond the original send. *)

val messages_lost_to_crash : _ t -> int
(** Deliveries dropped because the receiver had crashed. *)
