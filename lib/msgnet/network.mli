(** Asynchronous point-to-point network on the discrete-event simulator.

    Messages are delivered after adversarially chosen finite delays (drawn
    from the simulator's random stream within configurable bounds, or
    overridden per send), optionally damaged by a fault-injection
    {!Adversary} — drop, duplication, delay spikes, reorder jitter, timed
    partitions.  Loopback sends ([from = to_]) bypass the adversary: a
    process's channel to itself is process-internal.

    Crash semantics (all three statements agree, and the counters below
    audit them): once [crash p] is called, (1) further sends {e from} [p]
    are no-ops and are not counted in {!messages_sent}; (2) messages
    already in flight from [p] are still delivered — the standard
    asynchronous crash model; (3) messages arriving {e at} [p] are dropped
    at delivery time and counted in {!messages_lost_to_crash}.

    Delivery is not FIFO unless the delay bounds make it so.  In a drained
    simulation the counters satisfy
    [sent + duplicated = delivered + dropped + lost_to_crash]. *)

type 'msg t
(** A network carrying messages of type ['msg] between [n] processes. *)

type 'msg signed = {
  seq : int;  (** Global send order, from 0. *)
  signer : Rrfd.Proc.t;
      (** The {e true} origin, stamped by the transport — the model of an
          unforgeable signature.  Whatever a tampered payload claims, the
          evidence stays attributable to its sender. *)
  receiver : Rrfd.Proc.t;
  sent_at : float;  (** Virtual send time. *)
  payload : 'msg;  (** Post-tamper content, exactly as the wire carried it. *)
}
(** One entry of the signed send log ({!signed_log}): the evidence unit
    the accountability audit ({!Accountability}) replays. *)

type 'msg tamper =
  behaviour:Adversary.byz_behaviour ->
  now:float ->
  from:Rrfd.Proc.t ->
  to_:Rrfd.Proc.t ->
  'msg ->
  'msg option
(** Content-tampering hook, invoked once per non-loopback send whose
    sender the adversary marks Byzantine ({!Adversary.byz_behaviour}).
    [Some m'] replaces the payload on the wire (counted in
    {!messages_tampered}); [None] lets the canonical payload through.
    Honest senders never reach the hook, so any tampered message is
    attributable by construction.  Hooks needing randomness must close
    over their own {!Dsim.Rng} stream — the simulator's stream is
    reserved for delays, which keeps benign schedules bit-identical
    whether or not anyone lies. *)

val create :
  sim:Dsim.Sim.t ->
  n:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?adversary:Adversary.t ->
  ?tamper:'msg tamper ->
  ?log_sends:bool ->
  deliver:(Dsim.Sim.t -> to_:Rrfd.Proc.t -> from:Rrfd.Proc.t -> 'msg -> unit) ->
  unit ->
  'msg t
(** [create ~sim ~n ~deliver ()] builds a network whose per-message delays
    are uniform in [\[min_delay, max_delay\]] (defaults 1.0 and 10.0);
    [deliver] is invoked at the receiver's delivery time.  [adversary]
    (default {!Adversary.none}) is consulted for every non-loopback send.
    [tamper] (default absent) lets Byzantine senders lie about content;
    [log_sends] (default [false]) retains every send — loopback included,
    post-tamper, true sender stamped — for {!signed_log}. *)

val n : _ t -> int

val adversary : _ t -> Adversary.t

val send : 'msg t -> from:Rrfd.Proc.t -> to_:Rrfd.Proc.t -> ?delay:float -> 'msg -> unit
(** Queue one message.  No-op if the sender has crashed.  An explicit
    [?delay] fixes the base delay but the adversary still applies. *)

val broadcast : 'msg t -> from:Rrfd.Proc.t -> ?self:bool -> 'msg -> unit
(** Send to every process, including the sender itself when [self] (default
    true); each copy gets an independent delay. *)

val crash : 'msg t -> Rrfd.Proc.t -> unit
(** Crash a process: its future sends are no-ops (uncounted), messages in
    flight from it still arrive, and deliveries to it are dropped and
    counted in {!messages_lost_to_crash}. *)

val crashed : 'msg t -> Rrfd.Pset.t

val signed_log : 'msg t -> 'msg signed list
(** Chronological (by [seq]) record of every send since creation, empty
    unless [log_sends] was set.  Sends are logged whatever their delivery
    fate — a dropped copy was still emitted and signed, and two
    conflicting signed copies are a proof of equivocation regardless of
    who got to read them. *)

val messages_tampered : _ t -> int
(** Sends whose payload the [tamper] hook replaced. *)

val messages_sent : _ t -> int
(** Sends accepted from live processes (adversarial extra copies not
    included). *)

val messages_delivered : _ t -> int
(** Deliveries actually handed to [deliver]. *)

val messages_dropped : _ t -> int
(** Messages lost to the adversary (drop atoms and partitions). *)

val messages_duplicated : _ t -> int
(** Extra copies the adversary injected beyond the original send. *)

val messages_lost_to_crash : _ t -> int
(** Deliveries dropped because the receiver had crashed. *)
