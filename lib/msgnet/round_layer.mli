(** The item-3 construction: asynchronous message passing implements the
    f-resilient RRFD.

    Each process simulates rounds on top of the raw network by tagging
    messages with round numbers, buffering messages that arrive early,
    discarding messages that arrive late, and completing round [r] as soon
    as it holds at least [n − f] round-[r] messages.  The fault set
    [D(i,r)] is the set of senders whose round-[r] message had not arrived
    at completion time — by construction [|D(i,r)| ≤ f], which is exactly
    predicate (3).  A process delivers its own emission locally at emit
    time, so it always hears itself and [i ∉ D(i,r)] even under an
    adversary.

    With a fault-injection {!Adversary} the layer also runs a repair
    protocol (periodic retransmission of the current round, answered by
    catch-up copies from processes further ahead), without which a lossy
    or partitioned round could starve below the [n − f] threshold
    forever.  As rounds complete, a {!Heard_of} recorder extracts the
    induced fault history; {!differential} replays it through the
    abstract engine and checks the two executions decide identically. *)

type 'out result = {
  decisions : 'out option array;
  induced : Rrfd.Fault_history.t;
      (** Extracted fault history over the longest completed prefix.
          Slots of rounds a (crashed or starved) process never completed
          hold the empty set; [completed] says how far each process got. *)
  heard_of : Heard_of.t;  (** The raw heard-of record behind [induced]. *)
  completed : int array;  (** Rounds completed by each process. *)
  crashed : Rrfd.Pset.t;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;  (** Lost to the adversary. *)
  messages_duplicated : int;  (** Extra copies the adversary injected. *)
  messages_tampered : int;
      (** Sends whose content a Byzantine sender replaced.  When the
          adversary has [Byz] atoms, corrupt/equivocating members replay
          their own round-[r−1] emission under a round-[r] tag (and
          forging members additionally inject future-round messages), so
          the recorded heard-of sets gain a "lied" component — see
          {!Heard_of.to_lie_history}.  Lies change content only; the
          delay schedule is bit-identical to the byz-free run. *)
  virtual_time : float;  (** Simulated time at which the run drained. *)
  counters : Rrfd.Counters.t;
      (** Work accounting in the engine's vocabulary, measuring what the
          wire actually did: [rounds] of the extracted history, [messages]
          physically delivered (retransmissions and catch-up help
          included), zero detector queries. *)
}

val run :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?crashes:(Rrfd.Proc.t * float) list ->
  ?adversary:Adversary.t ->
  ?retransmit_every:float ->
  ?horizon:float ->
  n:int ->
  f:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  unit ->
  'out result
(** [run ~n ~f ~rounds ~algorithm ()] executes [algorithm] for [rounds]
    simulated rounds over the asynchronous network.  [crashes] lists
    processes and the virtual times at which they crash (at most [f] of
    them, or the waiting rule could block the survivors).

    [adversary] damages non-loopback messages (see {!Adversary}); when one
    is present the repair protocol is enabled with retransmission period
    [retransmit_every] (default 10.0) until [horizon] (default 600.0)
    virtual time.  Passing [retransmit_every] explicitly enables repair
    even without an adversary.  Without repair the fault-free behaviour —
    including its random delay stream — is unchanged.
    @raise Invalid_argument if more than [f] crashes are requested or
    [retransmit_every <= 0]. *)

(** {1 The asynchronous network as a substrate} *)

module As_substrate : sig
  type config = {
    seed : int;  (** Delay/adversary randomness; part of the experiment key. *)
    f : int;  (** Resilience: rounds complete on [n - f] messages. *)
    min_delay : float option;
    max_delay : float option;
    crashes : (Rrfd.Proc.t * float) list;
    adversary : Adversary.t option;
    retransmit_every : float option;
    horizon : float option;
  }

  include Rrfd.Substrate.S with type config := config
end
(** {!Rrfd.Substrate.S} view of {!run}.  [decision_rounds] reports the
    last completed round of each decided process (the layer has no global
    round clock); [completed] may be ragged when crashes or loss starve a
    process. *)

type 'out differential = {
  outcome : 'out result;
  replayed : 'out option array;
      (** {!Heard_of.replay_decisions} of the extracted history. *)
  matched : bool;
      (** Decisions agree (under [equal]) for every process that completed
          the full extracted prefix. *)
  all_completed : bool;  (** Every process completed all [rounds]. *)
}

val differential :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?crashes:(Rrfd.Proc.t * float) list ->
  ?adversary:Adversary.t ->
  ?retransmit_every:float ->
  ?horizon:float ->
  ?equal:('out -> 'out -> bool) ->
  n:int ->
  f:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  unit ->
  'out differential
(** Run over the damaged network, extract the fault history, replay it on
    {!Rrfd.Engine.states_after}, and compare decision vectors ([equal]
    defaults to structural equality).  This is the differential oracle
    tying the discrete-event network back to the paper's abstract model:
    [matched] must hold for every adversary. *)
