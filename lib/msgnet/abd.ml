module Pset = Rrfd.Pset

type message =
  | Update of { ts : int; value : int; op : int }
  | Update_ack of { op : int }
  | Query of { op : int }
  | Query_reply of { op : int; ts : int; value : int option }

(* Quorums are sets of distinct replicas, never reply counts: an
   adversary that duplicates messages must not be able to fake a quorum
   out of one replica's acks (the original int counters allowed exactly
   that). *)
type pending =
  | Write_pending of {
      ts : int;
      value : int;
      acks : Pset.t;
      on_done : unit -> unit;
      invoked : float;
    }
  | Read_query of {
      replies : (int * (int * int option)) list;
          (* replica -> (ts, value) *)
      on_done : int option -> unit;
      invoked : float;
    }
  | Read_write_back of {
      ts : int;
      value : int option;
      acks : Pset.t;
      on_done : int option -> unit;
      invoked : float;
    }

module History0 = struct
  type event = {
    proc : Rrfd.Proc.t;
    kind : [ `Write of int | `Read of int option ];
    invoked : float;
    responded : float;
    timestamp : int;
  }

  (* t is defined below; events accessor added after. *)

  let check_atomic events =
    (* events are in response order already. *)
    let violation = ref None in
    let note fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
    (* 1. Writes carry strictly increasing timestamps (single writer). *)
    let writes =
      List.filter (fun e -> match e.kind with `Write _ -> true | `Read _ -> false) events
    in
    let rec strictly_increasing = function
      | a :: (b :: _ as rest) ->
        if a.timestamp >= b.timestamp then
          note "write timestamps not increasing (%d then %d)" a.timestamp b.timestamp;
        strictly_increasing rest
      | [ _ ] | [] -> ()
    in
    strictly_increasing writes;
    (* 2. A read starting after a write responded returns ts ≥ that write's. *)
    List.iter
      (fun r ->
        match r.kind with
        | `Write _ -> ()
        | `Read _ ->
          List.iter
            (fun w ->
              if w.responded < r.invoked && r.timestamp < w.timestamp then
                note
                  "read at p%d returned ts %d although write ts %d completed \
                   before it started"
                  r.proc r.timestamp w.timestamp)
            writes)
      events;
    (* 3. A read never returns a timestamp from the future: ts must belong
       to a write invoked before the read responded (ts 0 = initial). *)
    List.iter
      (fun r ->
        match r.kind with
        | `Write _ -> ()
        | `Read _ ->
          if
            r.timestamp > 0
            && not
                 (List.exists
                    (fun w -> w.timestamp = r.timestamp && w.invoked < r.responded)
                    writes)
          then
            note "read at p%d returned ts %d not matching any prior write"
              r.proc r.timestamp)
      events;
    (* 4. Non-overlapping reads are monotone. *)
    let reads =
      List.filter (fun e -> match e.kind with `Read _ -> true | `Write _ -> false) events
    in
    List.iter
      (fun r1 ->
        List.iter
          (fun r2 ->
            if r1.responded < r2.invoked && r2.timestamp < r1.timestamp then
              note "new/old inversion between reads at p%d and p%d" r1.proc r2.proc)
          reads)
      reads;
    !violation
end

type replica = { mutable ts : int; mutable value : int option }

type t = {
  sim : Dsim.Sim.t;
  n : int;
  f : int;
  writer : Rrfd.Proc.t;
  replicas : replica array;
  pending : (int, Rrfd.Proc.t * pending) Hashtbl.t; (* op id -> owner, state *)
  mutable next_op : int;
  mutable write_ts : int;
  mutable network : message Network.t option;
  mutable events : History0.event list; (* response order, newest first *)
  retry_every : float option;
  retry_horizon : float;
}

let net t = Option.get t.network

let quorum t = t.n - t.f

let record t proc kind invoked timestamp =
  t.events <-
    {
      History0.proc;
      kind;
      invoked;
      responded = Dsim.Sim.now t.sim;
      timestamp;
    }
    :: t.events

(* While an operation stays pending, periodically rebroadcast its message
   so a dropping or partitioned adversary can delay quorums but not starve
   them.  Replicas are idempotent (ts-guarded updates) and owners dedupe
   acks by replica, so the duplicates are harmless. *)
let arm_retry t op =
  match t.retry_every with
  | None -> ()
  | Some every ->
    let rec retry sim =
      match Hashtbl.find_opt t.pending op with
      | None -> ()
      | Some (owner, p) ->
        (match p with
        | Write_pending w ->
          Network.broadcast (net t) ~from:owner
            (Update { ts = w.ts; value = w.value; op })
        | Read_query _ -> Network.broadcast (net t) ~from:owner (Query { op })
        | Read_write_back { ts; value = Some v; _ } ->
          Network.broadcast (net t) ~from:owner (Update { ts; value = v; op })
        | Read_write_back { value = None; _ } -> ());
        if Dsim.Sim.now sim +. every <= t.retry_horizon then
          Dsim.Sim.schedule sim ~delay:every retry
    in
    Dsim.Sim.schedule t.sim ~delay:every retry

let handle t ~to_ ~from msg =
  match msg with
  | Update { ts; value; op } ->
    let r = t.replicas.(to_) in
    if ts > r.ts then begin
      r.ts <- ts;
      r.value <- Some value
    end;
    Network.send (net t) ~from:to_ ~to_:from (Update_ack { op })
  | Query { op } ->
    let r = t.replicas.(to_) in
    Network.send (net t) ~from:to_ ~to_:from
      (Query_reply { op; ts = r.ts; value = r.value })
  | Update_ack { op } -> (
    match Hashtbl.find_opt t.pending op with
    | Some (owner, Write_pending w) when owner = to_ ->
      let acks = Pset.add from w.acks in
      if Pset.cardinal acks >= quorum t then begin
        Hashtbl.remove t.pending op;
        record t owner (`Write w.value) w.invoked w.ts;
        w.on_done ()
      end
      else Hashtbl.replace t.pending op (owner, Write_pending { w with acks })
    | Some (owner, Read_write_back r) when owner = to_ ->
      let acks = Pset.add from r.acks in
      if Pset.cardinal acks >= quorum t then begin
        Hashtbl.remove t.pending op;
        record t owner (`Read r.value) r.invoked r.ts;
        r.on_done r.value
      end
      else Hashtbl.replace t.pending op (owner, Read_write_back { r with acks })
    | Some _ | None -> ())
  | Query_reply { op; ts; value } -> (
    match Hashtbl.find_opt t.pending op with
    | Some (owner, Read_query q) when owner = to_ ->
      let replies =
        if List.mem_assoc from q.replies then q.replies
        else (from, (ts, value)) :: q.replies
      in
      if List.length replies >= quorum t then begin
        Hashtbl.remove t.pending op;
        let best_ts, best_value =
          List.fold_left
            (fun (bt, bv) (_, (ts, v)) -> if ts > bt then (ts, v) else (bt, bv))
            (-1, None) replies
        in
        (* Phase 2: write back the freshest pair before returning. *)
        let wb_op = t.next_op in
        t.next_op <- t.next_op + 1;
        Hashtbl.replace t.pending wb_op
          ( owner,
            Read_write_back
              {
                ts = best_ts;
                value = best_value;
                acks = Pset.empty;
                on_done = q.on_done;
                invoked = q.invoked;
              } );
        (match best_value with
        | Some v ->
          Network.broadcast (net t) ~from:owner
            (Update { ts = best_ts; value = v; op = wb_op });
          arm_retry t wb_op
        | None ->
          (* Nothing ever written: ack ourselves through the same path by
             broadcasting a no-op query... simpler: complete directly, the
             initial value needs no write-back. *)
          Hashtbl.remove t.pending wb_op;
          record t owner (`Read None) q.invoked 0;
          q.on_done None)
      end
      else Hashtbl.replace t.pending op (owner, Read_query { q with replies })
    | Some _ | None -> ())

let create ~sim ~n ~f ~writer ?min_delay ?max_delay ?adversary ?retry_every
    ?(retry_horizon = 600.0) () =
  if f < 0 || 2 * f >= n then invalid_arg "Abd.create: need 0 ≤ 2f < n";
  if writer < 0 || writer >= n then invalid_arg "Abd.create: writer out of range";
  let retry_every =
    match (retry_every, adversary) with
    | Some e, _ -> Some e
    | None, Some a when not (Adversary.is_noop a) -> Some 10.0
    | None, _ -> None
  in
  let t =
    {
      sim;
      n;
      f;
      writer;
      replicas = Array.init n (fun _ -> { ts = 0; value = None });
      pending = Hashtbl.create 16;
      next_op = 0;
      write_ts = 0;
      network = None;
      events = [];
      retry_every;
      retry_horizon;
    }
  in
  let deliver _sim ~to_ ~from msg = handle t ~to_ ~from msg in
  t.network <-
    Some (Network.create ~sim ~n ?min_delay ?max_delay ?adversary ~deliver ());
  t

let write t ~value ~on_done =
  let has_pending_write =
    Hashtbl.fold
      (fun _ (_, p) acc ->
        acc || match p with Write_pending _ -> true | Read_query _ | Read_write_back _ -> false)
      t.pending false
  in
  if has_pending_write then invalid_arg "Abd.write: a write is already pending";
  t.write_ts <- t.write_ts + 1;
  let op = t.next_op in
  t.next_op <- t.next_op + 1;
  Hashtbl.replace t.pending op
    ( t.writer,
      Write_pending
        {
          ts = t.write_ts;
          value;
          acks = Pset.empty;
          on_done;
          invoked = Dsim.Sim.now t.sim;
        } );
  Network.broadcast (net t) ~from:t.writer
    (Update { ts = t.write_ts; value; op });
  arm_retry t op

let read t ~proc ~on_done =
  if proc < 0 || proc >= t.n then invalid_arg "Abd.read: process out of range";
  let op = t.next_op in
  t.next_op <- t.next_op + 1;
  Hashtbl.replace t.pending op
    ( proc,
      Read_query { replies = []; on_done; invoked = Dsim.Sim.now t.sim } );
  Network.broadcast (net t) ~from:proc (Query { op });
  arm_retry t op

let crash t p = Network.crash (net t) p

let history_events t = List.rev t.events

module History = struct
  include History0

  let events = history_events
end
