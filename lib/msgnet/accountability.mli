(** Fork accountability: after a safety violation, name the culprits.

    The construction follows the Tendermint/accountable-BFT line of
    work: run a two-threshold quorum vote ({!Rrfd.Quorum_vote}) over the
    signed transport ({!Network} with [log_sends]), and when more than
    [n/3] equivocators force two honest processes to decide differently,
    replay the signed send log and output at least [f + 1]
    provably-faulty processes, each with a self-contained proof:

    - {e equivocation} — two conflicting signed messages for the same
      round.  Honest processes send one canonical payload per round to
      every receiver, so a conflict convicts the signer.
    - {e phantom quorum} — a vote certificate citing a quorum with no
      justifying signed votes in the log (or an undersized quorum).

    Why the bound holds: a decision commits to the {e first} [n − f]
    distinct round-1 votes, which must be unanimous, and certificates
    are never a decision path — so two honest decisions on different
    values pin two quorums whose intersection has at least
    [n − 2f ≥ f + 1] members (for [n ≥ 3f + 1]), every one of which
    signed conflicting votes.  Soundness is unconditional: honest
    payloads are never tampered with (the transport's tamper hook fires
    only for adversary-marked processes), so no proof can mention an
    honest signer. *)

type wire = int * Rrfd.Quorum_vote.msg
(** What the transport carries: [(round, body)]. *)

type strategy = {
  votes : int array;
      (** [votes.(p)] is the round-1 vote this Byzantine process shows
          to receiver [p] — per-receiver values are equivocation. *)
  cert : (int * Rrfd.Pset.t) option;
      (** [Some (v, q)] replaces the round-2 message with a fabricated
          certificate claiming quorum [q] decided [v]. *)
}
(** A Byzantine process's lying plan.  Honest processes have no
    strategy ([None] in the strategy array). *)

type proof =
  | Equivocation of {
      first : wire Network.signed;
      second : wire Network.signed;
    }
  | Phantom_quorum of { cert : wire Network.signed; missing : Rrfd.Pset.t }
      (** [missing] are the cited quorum members with no matching signed
          vote addressed to the cert's signer (empty iff the quorum was
          merely undersized). *)

type accusation = { accused : Rrfd.Proc.t; proof : proof }

type outcome = {
  decisions : (int * Rrfd.Pset.t) option array;
      (** Per process: decided value and the vote quorum it committed
          to.  Byzantine slots are mechanical, not trusted. *)
  fork : (Rrfd.Proc.t * Rrfd.Proc.t) option;
      (** Two {e honest} processes that decided different values, if
          any — the safety violation that triggers the audit. *)
  byzantine : Rrfd.Pset.t;  (** Ground truth, for checking the audit. *)
  accusations : accusation list;
  accused : Rrfd.Pset.t;  (** Signers named by some accusation. *)
  log : wire Network.signed list;  (** The evidence the audit replayed. *)
  messages_tampered : int;
}

type verdict =
  | Accountable  (** No honest accused; any fork yielded ≥ f+1 accused. *)
  | Unsound of Rrfd.Pset.t  (** Honest processes accused — must never happen. *)
  | Incomplete of { accused : Rrfd.Pset.t; needed : int }
      (** A fork happened but the audit named fewer than [f + 1]. *)

val run :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  n:int ->
  f:int ->
  inputs:int array ->
  strategies:strategy option array ->
  unit ->
  outcome
(** One quorum-vote execution over the signed transport: round 1 at
    time zero (every process broadcasts its input vote; the transport
    applies each Byzantine sender's strategy per receiver), round 2
    after all round-1 deliveries (deciders publish certificates,
    everyone else [Idle], forgers substitute their fabricated cert).
    A process decides at the moment its [n − f]-th distinct round-1
    vote arrives, iff all of them agree; loopback is never tampered, so
    even a Byzantine process's own recorded vote is canonical.
    @raise Invalid_argument unless [0 ≤ f < n] and both arrays have
    length [n]. *)

val audit : n:int -> f:int -> log:wire Network.signed list -> accusation list
(** Pure replay of a signed log — no access to the execution, ground
    truth, or strategies — producing one accusation per (signer, proof
    class) conviction.  This is the function whose soundness and
    completeness the E24 battery establishes. *)

val accused_set : accusation list -> Rrfd.Pset.t

val pp_accusation : Format.formatter -> accusation -> unit
(** ["p2: equivocation: #5 p2→p0@3.1 r1:vote 0 vs #9 p2→p3@4.2 r1:vote 1"]. *)

val check : f:int -> outcome -> verdict
(** Two-sided judgement of an outcome: soundness (accused ⊆ byzantine)
    and, when a fork occurred, completeness (≥ f+1 accused). *)

val conflicting_sends :
  key:('msg Network.signed -> 'k option) ->
  'msg Network.signed list ->
  (Rrfd.Proc.t * 'msg Network.signed * 'msg Network.signed) list
(** Generic equivocation scanner shared with the CT-consensus probe:
    two entries by one signer that agree on [key] but carry different
    payloads convict the signer (first conflicting pair per
    [(signer, key)]; [None] keys are exempt — e.g. heartbeats, which
    repeat by design). *)

(** {1 Strategy constructors} *)

val honest : n:int -> strategy option array
(** Everybody honest: [Array.make n None]. *)

val random_strategy :
  Dsim.Rng.t ->
  n:int ->
  f:int ->
  inputs:int array ->
  ?forge_cert:bool ->
  unit ->
  strategy
(** A fork-biased random plan: each receiver is shown, with probability
    1/2, its own input echoed back (the classic split vote), otherwise a
    uniform input value.  With [forge_cert] the round-2 message becomes
    a certificate for a random value citing a random [n − f]-subset. *)

val vote_strategy_count : n:int -> values:int -> int
(** [values]{^ [n]} — the size of the exhaustive per-process strategy
    space over a [values]-element vote domain. *)

val vote_strategy_of_index : n:int -> values:int -> int -> strategy
(** Decode an index in [\[0, vote_strategy_count)] into a vote
    strategy (base-[values] digits, receiver 0 least significant; no
    forged cert), so an exhaustive campaign can shard the whole space by
    integer range.
    @raise Invalid_argument if the index is out of range. *)
