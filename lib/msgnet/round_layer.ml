module Pset = Rrfd.Pset

type 'out result = {
  decisions : 'out option array;
  induced : Rrfd.Fault_history.t;
  heard_of : Heard_of.t;
  completed : int array;
  crashed : Rrfd.Pset.t;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_duplicated : int;
  messages_tampered : int;
  virtual_time : float;
  counters : Rrfd.Counters.t;
}

(* Wire format is [(round, payload, kind)].  [`Retry] marks a periodic
   retransmission of the sender's current round; a receiver already past
   that round answers a [`Retry] with [`Help] copies of its own cached
   emissions, which is what lets a partitioned or lossy run catch up
   after healing.  Only [`Retry] triggers help — help answering help
   would ping-pong forever between two finished processes. *)

(* A round buffer: who has been heard from ([got]) plus their payloads.
   [msgs] is sized lazily from the first payload (there is no dummy 'm);
   slots outside [got] hold stale junk the view never exposes. *)
type 'm buf = {
  mutable msgs : 'm array;
  mutable got : Pset.t;
}

type ('s, 'm) proc = {
  mutable state : 's;
  mutable current_round : int; (* round currently being collected *)
  buffers : (int, 'm buf) Hashtbl.t;
  emitted : (int, 'm) Hashtbl.t; (* own emissions, kept for repair *)
  mutable done_ : bool;
}

let buffer_for proc round =
  match Hashtbl.find_opt proc.buffers round with
  | Some b -> b
  | None ->
    let b = { msgs = [||]; got = Pset.empty } in
    Hashtbl.replace proc.buffers round b;
    b

(* Idempotent per (sender, round): duplicates overwrite with the same
   payload, and tampered payloads keep only the latest delivery — exactly
   the [buffer.(from) <- Some msg] semantics this replaces. *)
let store b ~n ~from msg =
  if Array.length b.msgs = 0 then b.msgs <- Array.make n msg
  else b.msgs.(from) <- msg;
  b.got <- Pset.add from b.got

let run ?(seed = 0) ?min_delay ?max_delay ?(crashes = []) ?adversary
    ?retransmit_every ?(horizon = 600.0) ~n ~f ~rounds ~algorithm () =
  if f < 0 || f >= n then invalid_arg "Round_layer.run: need 0 ≤ f < n";
  if List.length crashes > f then
    invalid_arg "Round_layer.run: more crashes than the resilience bound";
  let adversary = Option.value adversary ~default:Adversary.none in
  (* Repair (periodic retransmission + catch-up help) is on whenever an
     adversary is present — without it a lossy round can starve forever —
     and off otherwise, preserving the fault-free delay stream.  An
     explicit [retransmit_every] forces it on. *)
  let repair_every =
    match retransmit_every with
    | Some e -> Some e
    | None -> if Adversary.is_noop adversary then None else Some 10.0
  in
  let open Rrfd.Algorithm in
  let sim = Dsim.Sim.create ~seed () in
  let heard_rec = Heard_of.create ~n in
  let procs =
    Array.init n (fun i ->
        {
          state = algorithm.init ~n i;
          current_round = 1;
          buffers = Hashtbl.create 16;
          emitted = Hashtbl.create 16;
          done_ = false;
        })
  in
  let network = ref None in
  let net () = Option.get !network in
  let byz = Adversary.byzantine adversary ~n in
  (* Payload-agnostic Byzantine lying: a corrupt or equivocating sender
     replays its own round-[r−1] emission under a round-[r] tag — a
     well-typed payload of the algorithm's own message type, yet (for any
     algorithm whose emissions evolve) not the canonical round-[r]
     content.  Randomness comes from a dedicated stream so the delay
     schedule is bit-identical to the byz-free run with the same seed. *)
  let byz_rng = Dsim.Rng.derive ~seed ~stream:0xB42 in
  let tamper ~behaviour ~now:_ ~from ~to_:_ (round, msg, kind) =
    let { Adversary.equivocate; corrupt; forge = _ } = behaviour in
    match Hashtbl.find_opt procs.(from).emitted (round - 1) with
    | None -> None
    | Some stale ->
        (* Equivocation is a per-receiver coin — broadcast calls the hook
           once per receiver, so some get the truth and some the lie. *)
        let lie = corrupt || (equivocate && Dsim.Rng.bool byz_rng) in
        if lie && stale <> msg then Some (round, stale, kind) else None
  in
  let tamper = if Pset.is_empty byz then None else Some tamper in
  let full = Pset.full n in
  let view = Rrfd.View.create ~n in
  let emit_round i round =
    let msg = algorithm.emit procs.(i).state ~round in
    Hashtbl.replace procs.(i).emitted round msg;
    (* Own emissions are delivered locally at emission time: a process
       always hears itself, so i ∉ D(i,r) by construction and the
       adversary cannot fabricate self-suspicion. *)
    store (buffer_for procs.(i) round) ~n ~from:i msg;
    Network.broadcast (net ()) ~from:i ~self:false (round, msg, `Fresh);
    (* A forging sender also injects round-[r+1] messages it was never
       asked to send — its current payload under a future round tag. *)
    match Adversary.byz_behaviour adversary i with
    | Some { Adversary.forge = true; _ } when round < rounds ->
        Network.broadcast (net ()) ~from:i ~self:false (round + 1, msg, `Fresh)
    | _ -> ()
  in
  (* Complete as many consecutive rounds as the buffers allow. *)
  let rec try_complete i =
    let proc = procs.(i) in
    if not proc.done_ then begin
      let round = proc.current_round in
      let buffer = buffer_for proc round in
      if Pset.cardinal buffer.got >= n - f then begin
        let heard = buffer.got in
        let faulty = Pset.diff full heard in
        (* n - f ≥ 1 senders heard, so [buffer.msgs] is sized. *)
        Rrfd.View.set view ~msgs:buffer.msgs ~faulty;
        proc.state <- algorithm.deliver proc.state ~round ~view;
        (* "Lied to i": the final buffered content differs from the
           sender's canonical cached emission for this round (or the
           sender never canonically emitted it — a forged future-round
           message).  Honest transports only ever carry cached emissions
           (fresh, retry and help all resend [emitted]), so an honest
           sender can never land here: lied ⊆ byzantine is a theorem of
           the construction, which the E24 battery checks as
           lie-attribution soundness. *)
        let lied =
          if Pset.is_empty byz then Pset.empty
          else
            Pset.filter
              (fun j ->
                match Hashtbl.find_opt procs.(j).emitted round with
                | Some canonical -> buffer.msgs.(j) <> canonical
                | None -> true)
              heard
        in
        Heard_of.note heard_rec i ~round ~lied ~heard ();
        Hashtbl.remove proc.buffers round;
        proc.current_round <- round + 1;
        if round + 1 > rounds then proc.done_ <- true
        else begin
          emit_round i (round + 1);
          try_complete i
        end
      end
    end
  in
  let help i ~to_ ~round =
    let proc = procs.(i) in
    for r = round to min proc.current_round rounds do
      match Hashtbl.find_opt proc.emitted r with
      | Some m -> Network.send (net ()) ~from:i ~to_ (r, m, `Help)
      | None -> ()
    done
  in
  let deliver _sim ~to_ ~from (round, msg, kind) =
    let proc = procs.(to_) in
    if round >= proc.current_round && not proc.done_ then begin
      store (buffer_for proc round) ~n ~from msg;
      if round = proc.current_round then try_complete to_
    end
    else if kind = `Retry && repair_every <> None then
      (* The sender is still collecting a round we have already passed:
         resend it (and everything since) our cached emissions. *)
      help to_ ~to_:from ~round
  in
  network :=
    Some
      (Network.create ~sim ~n ?min_delay ?max_delay ~adversary ?tamper ~deliver
         ());
  List.iter
    (fun (p, time) ->
      Dsim.Sim.schedule_at sim ~time (fun _ -> Network.crash (net ()) p))
    crashes;
  (match repair_every with
  | None -> ()
  | Some every ->
      if every <= 0.0 then invalid_arg "Round_layer.run: bad retransmit_every";
      let rec tick i sim =
        let proc = procs.(i) in
        if (not proc.done_) && not (Pset.mem i (Network.crashed (net ())))
        then begin
          (match Hashtbl.find_opt proc.emitted proc.current_round with
          | Some m ->
              Network.broadcast (net ()) ~from:i ~self:false
                (proc.current_round, m, `Retry)
          | None -> ());
          if Dsim.Sim.now sim +. every <= horizon then
            Dsim.Sim.schedule sim ~delay:every (tick i)
        end
      in
      for i = 0 to n - 1 do
        Dsim.Sim.schedule sim ~delay:every (tick i)
      done);
  for i = 0 to n - 1 do
    emit_round i 1;
    try_complete i
  done;
  Dsim.Sim.run sim;
  let completed = Array.init n (Heard_of.completed heard_rec) in
  let decisions = Array.map (fun p -> algorithm.decide p.state) procs in
  let induced = Heard_of.to_history heard_rec in
  let counters =
    (* Physical work, not the abstract replay's: [messages] counts actual
       network deliveries (including retransmissions and catch-up help),
       and no detector is ever queried — the fault history is extracted
       from what the wire did. *)
    Rrfd.Counters.
      {
        rounds = Rrfd.Fault_history.rounds induced;
        messages = Network.messages_delivered (net ());
        detector_queries = 0;
        predicate_checks = 0;
      }
  in
  {
    decisions;
    induced;
    heard_of = heard_rec;
    completed;
    crashed = Network.crashed (net ());
    messages_sent = Network.messages_sent (net ());
    messages_delivered = Network.messages_delivered (net ());
    messages_dropped = Network.messages_dropped (net ());
    messages_duplicated = Network.messages_duplicated (net ());
    messages_tampered = Network.messages_tampered (net ());
    virtual_time = Dsim.Sim.now sim;
    counters;
  }

module As_substrate = struct
  type config = {
    seed : int;
    f : int;
    min_delay : float option;
    max_delay : float option;
    crashes : (Rrfd.Proc.t * float) list;
    adversary : Adversary.t option;
    retransmit_every : float option;
    horizon : float option;
  }

  let name = "msgnet"

  let execute config ~n ~rounds ~algorithm =
    let result =
      run ~seed:config.seed ?min_delay:config.min_delay
        ?max_delay:config.max_delay ~crashes:config.crashes
        ?adversary:config.adversary ?retransmit_every:config.retransmit_every
        ?horizon:config.horizon ~n ~f:config.f ~rounds ~algorithm ()
    in
    let decision_rounds =
      Array.mapi
        (fun i d -> Option.map (fun _ -> result.completed.(i)) d)
        result.decisions
    in
    {
      Rrfd.Substrate.substrate = name;
      decisions = result.decisions;
      decision_rounds;
      rounds_used = Rrfd.Fault_history.rounds result.induced;
      induced = result.induced;
      counters = result.counters;
      violation = None;
      crashed = result.crashed;
      completed = result.completed;
      wall_ns = None;
    }
end

type 'out differential = {
  outcome : 'out result;
  replayed : 'out option array;
  matched : bool;
  all_completed : bool;
}

let differential ?seed ?min_delay ?max_delay ?crashes ?adversary
    ?retransmit_every ?horizon ?(equal = Stdlib.( = )) ~n ~f ~rounds ~algorithm
    () =
  let outcome =
    run ?seed ?min_delay ?max_delay ?crashes ?adversary ?retransmit_every
      ?horizon ~n ~f ~rounds ~algorithm ()
  in
  let replayed = Heard_of.replay_decisions ~algorithm outcome.induced in
  let r_max = Rrfd.Fault_history.rounds outcome.induced in
  let opt_equal a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> equal x y
    | _ -> false
  in
  (* The engine replays the longest completed prefix in lockstep, so only
     processes that got that far have a network decision to compare. *)
  let matched = ref true in
  Array.iteri
    (fun i c ->
      if c = r_max && not (opt_equal outcome.decisions.(i) replayed.(i)) then
        matched := false)
    outcome.completed;
  {
    outcome;
    replayed;
    matched = !matched;
    all_completed = Array.for_all (fun c -> c = rounds) outcome.completed;
  }
