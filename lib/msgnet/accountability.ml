module Pset = Rrfd.Pset

type wire = int * Rrfd.Quorum_vote.msg

type strategy = { votes : int array; cert : (int * Pset.t) option }

type proof =
  | Equivocation of { first : wire Network.signed; second : wire Network.signed }
  | Phantom_quorum of { cert : wire Network.signed; missing : Pset.t }

type accusation = { accused : Rrfd.Proc.t; proof : proof }

type outcome = {
  decisions : (int * Pset.t) option array;
  fork : (Rrfd.Proc.t * Rrfd.Proc.t) option;
  byzantine : Pset.t;
  accusations : accusation list;
  accused : Pset.t;
  log : wire Network.signed list;
  messages_tampered : int;
}

type verdict =
  | Accountable
  | Unsound of Pset.t
  | Incomplete of { accused : Pset.t; needed : int }

let pp_wire ppf ((round, body) : wire) =
  Format.fprintf ppf "r%d:%a" round Rrfd.Quorum_vote.pp_msg body

let pp_signed ppf (e : wire Network.signed) =
  Format.fprintf ppf "#%d p%d→p%d@%g %a" e.Network.seq e.Network.signer
    e.Network.receiver e.Network.sent_at pp_wire e.Network.payload

let pp_proof ppf = function
  | Equivocation { first; second } ->
      Format.fprintf ppf "equivocation: %a vs %a" pp_signed first pp_signed
        second
  | Phantom_quorum { cert; missing } ->
      Format.fprintf ppf "phantom quorum: %a cites %s without logged votes"
        pp_signed cert
        (Pset.to_string missing)

let pp_accusation ppf (a : accusation) =
  Format.fprintf ppf "p%d: %a" a.accused pp_proof a.proof

(* ------------------------------------------------------------------ *)
(* The audit: replay the signed log after the fact.                    *)
(* ------------------------------------------------------------------ *)

(* Generic scanner shared with the CT probe: two signed messages from
   one signer that agree on [key] but not on payload convict the signer
   of equivocation.  One conviction per (signer, key) — extra conflicts
   add no information.  [key] returning [None] exempts an entry (e.g.
   heartbeats, which repeat by design). *)
let conflicting_sends ~key log =
  let seen = Hashtbl.create 16 in
  let convicted = Hashtbl.create 8 in
  List.fold_left
    (fun acc (entry : _ Network.signed) ->
      match key entry with
      | None -> acc
      | Some k -> (
          let slot = (entry.Network.signer, k) in
          match Hashtbl.find_opt seen slot with
          | None ->
              Hashtbl.replace seen slot entry;
              acc
          | Some first ->
              if
                first.Network.payload <> entry.Network.payload
                && not (Hashtbl.mem convicted slot)
              then begin
                Hashtbl.replace convicted slot ();
                (entry.Network.signer, first, entry) :: acc
              end
              else acc))
    [] log
  |> List.rev

let audit ~n ~f ~log =
  let accusations = ref [] in
  let accuse a = accusations := a :: !accusations in
  (* Proof class 1 — equivocation: two conflicting signed messages for
     the same round.  An honest process sends one payload per round to
     every receiver (its canonical emission), so a conflict is
     unforgeable evidence against the signer. *)
  List.iter
    (fun (signer, first, second) ->
      accuse { accused = signer; proof = Equivocation { first; second } })
    (conflicting_sends ~key:(fun e -> Some (fst e.Network.payload)) log);
  (* Proof class 2 — a vote certificate without a justifying quorum: a
     round-2 cert citing [quorum] for value [v] is only honest if every
     cited member's signed round-1 vote for [v], addressed to the cert's
     signer, is in the log (votes are logged at send time, so even a
     dropped vote backs the cert of whoever received a copy that did get
     through — deciders only cite votes that arrived).  An undersized
     quorum is phantom evidence too. *)
  let cert_seen = Hashtbl.create 8 in
  List.iter
    (fun (entry : wire Network.signed) ->
      match entry.Network.payload with
      | 2, Rrfd.Quorum_vote.Cert { v; quorum } ->
          let dedup = (entry.Network.signer, v, Pset.to_string quorum) in
          if not (Hashtbl.mem cert_seen dedup) then begin
            Hashtbl.replace cert_seen dedup ();
            let missing =
              Pset.filter
                (fun q ->
                  not
                    (List.exists
                       (fun (e : wire Network.signed) ->
                         e.Network.signer = q
                         && e.Network.receiver = entry.Network.signer
                         && e.Network.payload = (1, Rrfd.Quorum_vote.Vote v))
                       log))
                quorum
            in
            if Pset.cardinal quorum < n - f || not (Pset.is_empty missing)
            then
              accuse
                {
                  accused = entry.Network.signer;
                  proof = Phantom_quorum { cert = entry; missing };
                }
          end
      | _ -> ())
    log;
  List.rev !accusations

let accused_set accusations =
  List.fold_left
    (fun acc (a : accusation) -> Pset.add a.accused acc)
    Pset.empty accusations

(* ------------------------------------------------------------------ *)
(* Strategies.                                                         *)
(* ------------------------------------------------------------------ *)

let honest ~n : strategy option array = Array.make n None

let rec pow base e = if e = 0 then 1 else base * pow base (e - 1)

let vote_strategy_count ~n ~values =
  if values <= 0 || n <= 0 then invalid_arg "Accountability: bad enumeration";
  pow values n

let vote_strategy_of_index ~n ~values index =
  if index < 0 || index >= vote_strategy_count ~n ~values then
    invalid_arg "Accountability.vote_strategy_of_index: index out of range";
  let votes = Array.make n 0 in
  let rest = ref index in
  for receiver = 0 to n - 1 do
    votes.(receiver) <- !rest mod values;
    rest := !rest / values
  done;
  { votes; cert = None }

let random_strategy rng ~n ~f ~inputs ?(forge_cert = false) () =
  if Array.length inputs <> n then
    invalid_arg "Accountability.random_strategy: inputs length";
  let value () = inputs.(Dsim.Rng.int rng n) in
  (* Fork-forcing bias: with probability 1/2 echo the receiver's own
     input back at it (the classic split vote), else pick uniformly —
     uniform strategies alone almost never line two quorums up. *)
  let votes =
    Array.init n (fun receiver ->
        if Dsim.Rng.bool rng then inputs.(receiver) else value ())
  in
  let cert =
    if forge_cert then
      let quorum =
        Dsim.Rng.shuffle rng (List.init n Fun.id)
        |> List.filteri (fun i _ -> i < n - f)
        |> Pset.of_list
      in
      Some (value (), quorum)
    else None
  in
  { votes; cert }

(* ------------------------------------------------------------------ *)
(* The execution: quorum-vote over the signed transport.               *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0) ?min_delay ?max_delay ~n ~f ~inputs ~strategies () =
  if f < 0 || f >= n then invalid_arg "Accountability.run: need 0 ≤ f < n";
  if Array.length inputs <> n then invalid_arg "Accountability.run: inputs";
  if Array.length strategies <> n then
    invalid_arg "Accountability.run: strategies";
  let byzantine =
    Pset.filter (fun i -> strategies.(i) <> None) (Pset.full n)
  in
  let forge = Array.exists (function Some { cert = Some _; _ } -> true | _ -> false) strategies in
  let adversary =
    if Pset.is_empty byzantine then Adversary.none
    else
      Adversary.make
        ~spec:(Printf.sprintf "byz(programmed m=%d)" (Pset.cardinal byzantine))
        [
          Adversary.Byz
            {
              members = byzantine;
              behaviour = { equivocate = true; corrupt = true; forge };
            };
        ]
  in
  let sim = Dsim.Sim.create ~seed () in
  (* Per process: round-1 votes in arrival order (newest first), frozen
     once the decision attempt fires at exactly the [n − f]-th vote. *)
  let received = Array.make n [] in
  let decided : (int * Pset.t) option array = Array.make n None in
  let tamper ~behaviour:_ ~now:_ ~from ~to_ (round, body) =
    match strategies.(from) with
    | None -> None
    | Some st -> (
        match (round, body) with
        | 1, Rrfd.Quorum_vote.Vote canonical ->
            let v = st.votes.(to_) in
            if v = canonical then None else Some (1, Rrfd.Quorum_vote.Vote v)
        | 2, _ -> (
            match st.cert with
            | Some (v, quorum) -> Some (2, Rrfd.Quorum_vote.Cert { v; quorum })
            | None -> None)
        | _ -> None)
  in
  let deliver _sim ~to_ ~from (round, body) =
    match (round, body) with
    | 1, Rrfd.Quorum_vote.Vote v ->
        (* Decide on the first n − f distinct senders, iff unanimous —
           and only then.  Certs (round 2) are auditor evidence and
           never a decision path, which is what makes the ≥ f + 1
           intersection argument go through. *)
        if
          List.length received.(to_) < n - f
          && not (List.mem_assoc from received.(to_))
        then begin
          received.(to_) <- (from, v) :: received.(to_);
          if List.length received.(to_) = n - f then
            match received.(to_) with
            | [] -> ()
            | (_, v0) :: rest ->
                if List.for_all (fun (_, w) -> w = v0) rest then
                  decided.(to_) <-
                    Some (v0, Pset.of_list (List.map fst received.(to_)))
        end
    | _ -> ()
  in
  let network =
    Network.create ~sim ~n ?min_delay ?max_delay ~adversary ~tamper
      ~log_sends:true ~deliver ()
  in
  (* Round 1 at time zero: everyone votes its input; the transport lies
     per strategy.  Loopback bypasses the tamper hook — a process cannot
     equivocate to itself — so even a Byzantine decider's own recorded
     vote is its canonical input. *)
  for i = 0 to n - 1 do
    Network.broadcast network ~from:i ~self:true (1, Rrfd.Quorum_vote.Vote inputs.(i))
  done;
  (* Round 2 strictly after every round-1 delivery: deciders publish
     their certificates, everyone else an explicit Idle (so a forging
     strategy has a round-2 send to replace). *)
  let max_delay_v = match max_delay with Some d -> d | None -> 10.0 in
  Dsim.Sim.schedule_at sim ~time:(2.0 *. max_delay_v) (fun _ ->
      for i = 0 to n - 1 do
        let body =
          match decided.(i) with
          | Some (v, quorum) -> Rrfd.Quorum_vote.Cert { v; quorum }
          | None -> Rrfd.Quorum_vote.Idle
        in
        Network.broadcast network ~from:i ~self:false (2, body)
      done);
  Dsim.Sim.run sim;
  let fork =
    let honest_deciders =
      List.filter_map
        (fun i ->
          if Pset.mem i byzantine then None
          else Option.map (fun (v, _) -> (i, v)) decided.(i))
        (List.init n Fun.id)
    in
    let rec scan = function
      | (i, v) :: rest -> (
          match List.find_opt (fun (_, w) -> w <> v) rest with
          | Some (j, _) -> Some (i, j)
          | None -> scan rest)
      | [] -> None
    in
    scan honest_deciders
  in
  let log = Network.signed_log network in
  let accusations = audit ~n ~f ~log in
  {
    decisions = decided;
    fork;
    byzantine;
    accusations;
    accused = accused_set accusations;
    log;
    messages_tampered = Network.messages_tampered network;
  }

let check ~f outcome =
  let honest_accused = Pset.diff outcome.accused outcome.byzantine in
  if not (Pset.is_empty honest_accused) then Unsound honest_accused
  else
    match outcome.fork with
    | Some _ when Pset.cardinal outcome.accused < f + 1 ->
        Incomplete { accused = outcome.accused; needed = f + 1 }
    | _ -> Accountable
