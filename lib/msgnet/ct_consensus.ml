module Pset = Rrfd.Pset

type message =
  | Heartbeat
  | Estimate of { phase : int; est : int; ts : int }
  | New_estimate of { phase : int; est : int }
  | Ack of { phase : int }
  | Nack of { phase : int }
  | Decide of { value : int }

(* Quorum bookkeeping is keyed by sender, never counted: an adversary
   that duplicates messages must not be able to inflate a majority.  The
   original count-based version let two copies of one Ack look like two
   acknowledgers — an agreement violation waiting to happen. *)
type coordinator_state = {
  mutable estimates : (int * (int * int)) list;
      (* sender -> (est, ts) received this phase *)
  mutable proposed : bool;
  mutable acks : Pset.t;
  mutable nacks : Pset.t;
  mutable announced : bool;
  mutable proposal : int;
}

type process = {
  mutable est : int;
  mutable ts : int;
  mutable phase : int;
  mutable waiting : bool; (* sent estimate, awaiting coordinator or suspicion *)
  mutable phase_entered : float;
  mutable patience : float; (* stuck-phase timeout; doubles on each use *)
  mutable decided : int option;
  mutable decided_at : float option;
  coordinating : (int, coordinator_state) Hashtbl.t; (* phase -> state *)
}

type result = {
  decisions : int option array;
  decision_times : float option array;
  phases_used : int;
  false_suspicions : int;
  messages_sent : int;
  messages_tampered : int;
  accused : Pset.t;
  virtual_time : float;
}

(* Post-hoc equivocation audit of the signed log.  Keys are the message
   classes an honest process provably sends at most one payload for:
   its phase-[p] estimate (est/ts frozen while waiting in [p], so
   retransmissions are byte-identical) and its phase-[p] proposal
   (fixed at [proposed <- true], repeated verbatim to stragglers).
   Heartbeats repeat by design; Ack/Nack carry no value; and Decide is
   deliberately exempt — an honest process relays whatever Decide value
   reached it first, so under Byzantine tampering two honest Decide
   payloads can genuinely differ without the sender having lied. *)
let equivocation_key (e : message Network.signed) =
  match e.Network.payload with
  | Estimate { phase; _ } -> Some (0, phase)
  | New_estimate { phase; _ } -> Some (1, phase)
  | Heartbeat | Ack _ | Nack _ | Decide _ -> None

let run ?(seed = 0) ?min_delay ?max_delay ?(crashes = []) ?adversary
    ?(max_phases = 64) ?hb_interval ?hb_initial_timeout ?(horizon = 1000.0) ~n
    ~f ~inputs () =
  if 2 * f >= n then invalid_arg "Ct_consensus.run: need 2f < n";
  if List.length crashes > f then
    invalid_arg "Ct_consensus.run: more crashes than f";
  if Array.length inputs <> n then
    invalid_arg "Ct_consensus.run: inputs length mismatch";
  let sim = Dsim.Sim.create ~seed () in
  let adversary = Option.value adversary ~default:Adversary.none in
  let byz = Pset.inter (Adversary.byzantine adversary ~n) (Pset.full n) in
  (* Value-level lies for Byzantine members: nudge the estimate (with a
     timestamp bump so it wins the coordinator's max-ts pick), the
     proposal, or the announced decision.  [corrupt] lies on every copy,
     [equivocate] flips a per-receiver coin from a dedicated stream —
     the delay schedule never changes.  Unlike {!Accountability}'s
     quorum-vote protocol, CT trusts Decide on receipt, so a single
     corrupted Decide forks it: the E24 grid measures that violation
     rate and checks the audit stays sound, not complete. *)
  let byz_rng = Dsim.Rng.derive ~seed ~stream:0xB42 in
  let tamper ~behaviour ~now:_ ~from:_ ~to_:_ msg =
    let { Adversary.equivocate; corrupt; forge = _ } = behaviour in
    let lie = corrupt || (equivocate && Dsim.Rng.bool byz_rng) in
    if not lie then None
    else
      match msg with
      | Estimate { phase; est; ts } ->
          Some (Estimate { phase; est = est + 1; ts = ts + 1 })
      | New_estimate { phase; est } -> Some (New_estimate { phase; est = est + 1 })
      | Decide { value } -> Some (Decide { value = value + 1 })
      | Heartbeat | Ack _ | Nack _ -> None
  in
  let tamper = if Pset.is_empty byz then None else Some tamper in
  let log_sends = not (Pset.is_empty byz) in
  let procs =
    Array.init n (fun i ->
        {
          est = inputs.(i);
          ts = 0;
          phase = 0;
          waiting = false;
          phase_entered = 0.0;
          patience = 45.0;
          decided = None;
          decided_at = None;
          coordinating = Hashtbl.create 4;
        })
  in
  let network = ref None in
  let detector = ref None in
  let net () = Option.get !network in
  let fd () = Option.get !detector in
  let majority = (n / 2) + 1 in
  let coordinator_of phase = phase mod n in
  let coord_state p phase =
    let proc = procs.(p) in
    match Hashtbl.find_opt proc.coordinating phase with
    | Some s -> s
    | None ->
      let s =
        {
          estimates = [];
          proposed = false;
          acks = Pset.empty;
          nacks = Pset.empty;
          announced = false;
          proposal = 0;
        }
      in
      Hashtbl.replace proc.coordinating phase s;
      s
  in
  let send ~from ~to_ msg = Network.send (net ()) ~from ~to_ msg in
  let broadcast ~from msg = Network.broadcast (net ()) ~from msg in
  let send_estimate i =
    let proc = procs.(i) in
    send ~from:i ~to_:(coordinator_of proc.phase)
      (Estimate { phase = proc.phase; est = proc.est; ts = proc.ts })
  in
  let rec enter_phase i phase =
    let proc = procs.(i) in
    if proc.decided = None && phase <= max_phases then begin
      proc.phase <- phase;
      proc.waiting <- true;
      proc.phase_entered <- Dsim.Sim.now sim;
      send_estimate i
    end
  and try_propose c phase =
    let s = coord_state c phase in
    if (not s.proposed) && List.length s.estimates >= majority then begin
      let est, _ =
        List.fold_left
          (fun (be, bt) (_, (e, t)) -> if t > bt then (e, t) else (be, bt))
          (snd (List.hd s.estimates))
          (List.tl s.estimates)
      in
      s.proposed <- true;
      s.proposal <- est;
      broadcast ~from:c (New_estimate { phase; est })
    end
  and handle _sim ~to_ ~from msg =
    let proc = procs.(to_) in
    match msg with
    | Heartbeat -> Heartbeat.beat (fd ()) ~at:to_ ~from
    | Estimate { phase; est; ts } -> (
      match proc.decided with
      | Some value ->
        (* A retransmitting straggler reaches a decided coordinator: hand
           it the decision so lost Decide broadcasts cannot strand it. *)
        send ~from:to_ ~to_:from (Decide { value })
      | None ->
        let s = coord_state to_ phase in
        if not (List.mem_assoc from s.estimates) then
          s.estimates <- (from, (est, ts)) :: s.estimates;
        if s.proposed then
          (* Late or retransmitted estimate after the proposal went out:
             the sender may have missed it, so repeat it point-to-point. *)
          send ~from:to_ ~to_:from (New_estimate { phase; est = s.proposal })
        else try_propose to_ phase)
    | New_estimate { phase; est } ->
      if proc.decided = None && proc.phase = phase && proc.waiting then begin
        proc.est <- est;
        (* Timestamps must strictly dominate the initial ts 0 or the lock
           is invisible: phases count from 0, so [ts <- phase] would let a
           value adopted (and possibly decided) in phase 0 tie with
           never-adopted inputs when the phase-1 coordinator picks its
           max-ts estimate — an agreement violation under message loss. *)
        proc.ts <- phase + 1;
        proc.waiting <- false;
        send ~from:to_ ~to_:from (Ack { phase });
        enter_phase to_ (phase + 1)
      end
      else if proc.decided = None && proc.phase > phase then
        (* Already moved on: a late proposal must be nacked so the
           coordinator can account for this process. *)
        send ~from:to_ ~to_:from (Nack { phase })
    | Ack { phase } ->
      let s = coord_state to_ phase in
      s.acks <- Pset.add from s.acks;
      if s.proposed && (not s.announced) && Pset.cardinal s.acks >= majority
      then begin
        s.announced <- true;
        broadcast ~from:to_ (Decide { value = s.proposal })
      end
    | Nack { phase } ->
      let s = coord_state to_ phase in
      s.nacks <- Pset.add from s.nacks
    | Decide { value } ->
      if proc.decided = None then begin
        proc.decided <- Some value;
        proc.decided_at <- Some (Dsim.Sim.now sim);
        (* Reliable broadcast: relay once so every correct process decides
           even if the original sender crashes mid-broadcast. *)
        broadcast ~from:to_ (Decide { value })
      end
  in
  network :=
    Some
      (Network.create ~sim ~n ?min_delay ?max_delay ~adversary ?tamper
         ~log_sends ~deliver:handle ());
  detector :=
    Some
      (Heartbeat.create ~sim ~n
         ~send_heartbeat:(fun ~from -> Network.broadcast (net ()) ~from ~self:false Heartbeat)
         ?interval:hb_interval ?initial_timeout:hb_initial_timeout ~horizon ());
  List.iter
    (fun (p, time) ->
      Dsim.Sim.schedule_at sim ~time (fun _ -> Network.crash (net ()) p))
    crashes;
  (* Suspicion polling: a waiting process that suspects its coordinator
     nacks and moves to the next phase; one that does not yet suspect it
     retransmits its estimate, so a message-dropping adversary can delay a
     phase but not wedge it.  Polls stop at the same horizon as the
     heartbeats, so the simulation always drains even when a process
     (e.g. a crashed one) never decides. *)
  let poll_interval = 3.0 in
  let rec poll i sim_ =
    let proc = procs.(i) in
    if proc.decided = None && proc.phase <= max_phases then begin
      if proc.waiting then begin
        let c = coordinator_of proc.phase in
        let suspected =
          (not (Rrfd.Proc.equal c i))
          && Heartbeat.suspects (fd ()) ~observer:i ~target:c
        in
        (* A phase can wedge without suspicion — e.g. a process ends up
           coordinating a phase nobody else enters, so its estimate
           reaches no one who could answer.  Exponential patience breaks
           the wedge: CT's safety never depends on when a process nacks,
           and once a phase's coordinator has decided (or communication
           stabilises) the retransmitted estimate gets an answer. *)
        let out_of_patience =
          Dsim.Sim.now sim_ -. proc.phase_entered > proc.patience
        in
        if suspected || out_of_patience then begin
          if out_of_patience then proc.patience <- proc.patience *. 2.0;
          proc.waiting <- false;
          send ~from:i ~to_:c (Nack { phase = proc.phase });
          enter_phase i (proc.phase + 1)
        end
        else send_estimate i
      end;
      if Dsim.Sim.now sim_ +. poll_interval <= horizon then
        Dsim.Sim.schedule sim_ ~delay:poll_interval (poll i)
    end
  in
  for i = 0 to n - 1 do
    enter_phase i 0;
    Dsim.Sim.schedule sim ~delay:poll_interval (poll i)
  done;
  Dsim.Sim.run sim;
  let accused =
    Accountability.conflicting_sends ~key:equivocation_key
      (Network.signed_log (net ()))
    |> List.fold_left (fun acc (signer, _, _) -> Pset.add signer acc) Pset.empty
  in
  {
    decisions = Array.map (fun p -> p.decided) procs;
    decision_times = Array.map (fun p -> p.decided_at) procs;
    phases_used = Array.fold_left (fun acc p -> max acc p.phase) 0 procs;
    false_suspicions = Heartbeat.false_suspicions (fd ());
    messages_sent = Network.messages_sent (net ());
    messages_tampered = Network.messages_tampered (net ());
    accused;
    virtual_time = Dsim.Sim.now sim;
  }
