module Pset = Rrfd.Pset

type t = {
  sim : Dsim.Sim.t;
  n : int;
  last : float array array; (* last.(observer).(target) = delivery time *)
  timeout : float array array;
  increment : float;
  mutable false_count : int;
}

let create ~sim ~n ~send_heartbeat ?(interval = 5.0) ?(initial_timeout = 12.0)
    ?(timeout_increment = 5.0) ?(horizon = 1000.0) () =
  if n < 1 then invalid_arg "Heartbeat.create: bad n";
  if interval <= 0.0 || initial_timeout <= 0.0 then
    invalid_arg "Heartbeat.create: non-positive timing parameter";
  let t =
    {
      sim;
      n;
      last = Array.init n (fun _ -> Array.make n (Dsim.Sim.now sim));
      timeout = Array.init n (fun _ -> Array.make n initial_timeout);
      increment = timeout_increment;
      false_count = 0;
    }
  in
  let rec tick from sim =
    send_heartbeat ~from;
    if Dsim.Sim.now sim +. interval <= horizon then
      Dsim.Sim.schedule sim ~delay:interval (tick from)
  in
  for p = 0 to n - 1 do
    (* Stagger first emissions so heartbeats don't arrive in lockstep. *)
    Dsim.Sim.schedule sim
      ~delay:(interval *. float_of_int p /. float_of_int n)
      (tick p)
  done;
  t

let overdue t ~observer ~target =
  Dsim.Sim.now t.sim -. t.last.(observer).(target)
  > t.timeout.(observer).(target)

let beat t ~at ~from =
  if at < 0 || at >= t.n || from < 0 || from >= t.n then
    invalid_arg "Heartbeat.beat: process out of range";
  (* A heartbeat from a currently-suspected process is a false suspicion:
     retract it and adapt the timeout (the ◇P recipe). *)
  if overdue t ~observer:at ~target:from then begin
    t.false_count <- t.false_count + 1;
    t.timeout.(at).(from) <- t.timeout.(at).(from) +. t.increment
  end;
  t.last.(at).(from) <- Dsim.Sim.now t.sim

let suspects t ~observer ~target =
  if observer < 0 || observer >= t.n || target < 0 || target >= t.n then
    invalid_arg "Heartbeat.suspects: process out of range";
  (not (Rrfd.Proc.equal observer target)) && overdue t ~observer ~target

let suspected_by t observer =
  let set = ref Pset.empty in
  for target = 0 to t.n - 1 do
    if suspects t ~observer ~target then set := Pset.add target !set
  done;
  !set

let false_suspicions t = t.false_count

let live_suspicions t ~among =
  let pairs = ref [] in
  for observer = t.n - 1 downto 0 do
    if Pset.mem observer among then
      for target = t.n - 1 downto 0 do
        if Pset.mem target among && suspects t ~observer ~target then
          pairs := (observer, target) :: !pairs
      done
  done;
  !pairs

let converged t ~among = live_suspicions t ~among = []
