(** Rotating-coordinator consensus with an unreliable failure detector.

    The Chandra–Toueg ◇S algorithm, which the paper's Sections 6–7 hold up
    as the "classic" detector-augmented approach that RRFDs reinterpret:
    phases rotate through coordinators; in phase [r] every process sends
    its timestamped estimate to coordinator [r mod n]; the coordinator
    picks the estimate with the highest timestamp among a majority,
    broadcasts it, and decides (by reliable broadcast) once a majority
    acknowledges.  A process that suspects the coordinator (heartbeat
    detector, {!Heartbeat}) sends a nack and moves on.  Requires a majority
    of correct processes ([2f < n]).

    Safety comes from majority intersection and timestamp locking, with
    all quorum bookkeeping keyed by sender so duplicated messages cannot
    inflate a majority; termination from the detector's eventual accuracy
    plus estimate retransmission, so a fault-injection {!Adversary} that
    drops or partitions messages delays phases without wedging them. *)

type result = {
  decisions : int option array;
  decision_times : float option array;  (** Virtual decision times. *)
  phases_used : int;  (** Highest phase any process entered. *)
  false_suspicions : int;
  messages_sent : int;
  messages_tampered : int;
      (** Sends whose content a Byzantine member replaced.  When the
          adversary has [Byz] atoms, members lie about estimate,
          proposal and decision values per their behaviour flags;
          because CT trusts a Decide on receipt, a single corrupted
          Decide can violate agreement — the E24 experiment measures
          exactly that rate. *)
  accused : Rrfd.Pset.t;
      (** Post-hoc equivocation audit of the signed send log (only
          byte-classes an honest process provably never varies —
          per-phase estimates and proposals — are scanned, so
          [accused ⊆ byzantine] unconditionally; see
          {!Accountability.conflicting_sends}).  Empty when the
          adversary has no Byzantine members. *)
  virtual_time : float;
}

val run :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?crashes:(Rrfd.Proc.t * float) list ->
  ?adversary:Adversary.t ->
  ?max_phases:int ->
  ?hb_interval:float ->
  ?hb_initial_timeout:float ->
  ?horizon:float ->
  n:int ->
  f:int ->
  inputs:int array ->
  unit ->
  result
(** [run ~n ~f ~inputs ()] executes one consensus instance.  [crashes]
    lists processes with their crash times (at most [f], and [2f < n] must
    hold).  [adversary] damages the network (see {!Adversary}); safety
    must survive any policy, termination needs losses to eventually let a
    phase through (e.g. a partition that heals).  [max_phases] (default
    64) bounds the run; live processes are expected to decide well before
    it.

    [hb_interval] and [hb_initial_timeout] tune the embedded {!Heartbeat}
    detector (defaults 5.0 / 12.0) and [horizon] (default 1000.0) bounds
    both heartbeat traffic and suspicion polling.  The defaults reproduce
    the historical behaviour; large-n scaling campaigns shorten the
    horizon and stretch the interval because every beat is an n-way
    broadcast — O(n² · horizon / interval) simulated deliveries.
    @raise Invalid_argument on parameter violations. *)
