(* Composable network fault-injection policies.  See adversary.mli.

   Parsing deliberately mirrors Check.Spec's [name:key=val,...] grammar
   (the dependency points the other way — Check.Spec.adversary delegates
   here), so predicates, properties and adversaries share one vocabulary
   across CLI flags, table rows and JSON artifacts. *)

type blocks = Split_at of int | Blocks of Rrfd.Pset.t list

type byz_behaviour = { equivocate : bool; corrupt : bool; forge : bool }

type atom =
  | Drop of { p : float }
  | Duplicate of { p : float; copies : int }
  | Spike of { p : float; factor : float }
  | Reorder of { p : float; window : float }
  | Partition of { at : float; heal : float; blocks : blocks }
  | Byz of { members : Rrfd.Pset.t; behaviour : byz_behaviour }

type t = { spec : string; atoms : atom list }

let none = { spec = "none"; atoms = [] }
let is_noop t = t.atoms = []
let make ~spec atoms = { spec; atoms }
let atoms t = t.atoms
let spec t = t.spec

let spec_names =
  "none, drop:p=<pct>, dup:p=<pct>,copies=<k>, spike:p=<pct>,factor=<x>, "
  ^ "reorder:p=<pct>,window=<w>, partition:at=<t0>,heal=<t1>,left=<k>, "
  ^ "byz:m=<k>,equiv=<0|1>,corrupt=<0|1>,forge=<0|1>"

(* [name:k1=v1,k2=v2] with small non-negative integer values; probabilities
   are percentages so spec strings stay integer-only like Check.Spec's. *)
let parse_atom s =
  let ( let* ) = Result.bind in
  let name, args =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let name = String.trim name in
  let* params =
    if args = "" then Ok []
    else
      String.split_on_char ',' args
      |> List.fold_left
           (fun acc kv ->
             let* acc = acc in
             match String.split_on_char '=' kv with
             | [ k; v ] -> (
                 match int_of_string_opt (String.trim v) with
                 | Some i when i >= 0 -> Ok ((String.trim k, i) :: acc)
                 | _ ->
                     Error
                       (Printf.sprintf
                          "adversary %S: parameter %s must be a non-negative \
                           integer"
                          s (String.trim k)))
             | _ -> Error (Printf.sprintf "adversary %S: malformed %S" s kv))
           (Ok [])
  in
  let param key default = Option.value ~default (List.assoc_opt key params) in
  let known allowed =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) params with
    | Some (k, _) ->
        Error (Printf.sprintf "adversary %s: unknown parameter %S" name k)
    | None -> Ok ()
  in
  let pct key default = float_of_int (param key default) /. 100.0 in
  match name with
  | "none" ->
      let* () = known [] in
      Ok None
  | "drop" ->
      let* () = known [ "p" ] in
      Ok (Some (Drop { p = pct "p" 20 }))
  | "dup" | "duplicate" ->
      let* () = known [ "p"; "copies" ] in
      Ok (Some (Duplicate { p = pct "p" 20; copies = max 1 (param "copies" 1) }))
  | "spike" ->
      let* () = known [ "p"; "factor" ] in
      Ok
        (Some
           (Spike
              { p = pct "p" 10; factor = float_of_int (max 1 (param "factor" 10)) }))
  | "reorder" ->
      let* () = known [ "p"; "window" ] in
      Ok
        (Some
           (Reorder
              { p = pct "p" 25; window = float_of_int (max 1 (param "window" 10)) }))
  | "partition" ->
      let* () = known [ "at"; "heal"; "left" ] in
      let at = float_of_int (param "at" 5)
      and heal = float_of_int (param "heal" 50)
      and left = max 1 (param "left" 1) in
      if heal <= at then
        Error
          (Printf.sprintf "adversary %s: heal=%g must exceed at=%g" name heal at)
      else Ok (Some (Partition { at; heal; blocks = Split_at left }))
  | "byz" ->
      (* Byzantine membership follows the same deterministic low-id
         convention as partition's [left=k]: processes 0..m-1 misbehave.
         [m=0] is the explicit "nobody is Byzantine" row of a grid. *)
      let* () = known [ "m"; "equiv"; "corrupt"; "forge" ] in
      let m = param "m" 1 in
      let flag key default = param key default <> 0 in
      let behaviour =
        {
          equivocate = flag "equiv" 1;
          corrupt = flag "corrupt" 0;
          forge = flag "forge" 0;
        }
      in
      let members =
        List.fold_left
          (fun acc p -> Rrfd.Pset.add p acc)
          Rrfd.Pset.empty
          (List.init m (fun p -> p))
      in
      Ok (Some (Byz { members; behaviour }))
  | _ ->
      Error
        (Printf.sprintf "unknown adversary %S, expected one of: %s" name
           spec_names)

let of_spec s =
  let s = String.trim s in
  if s = "" then Error "empty adversary spec"
  else
    let ( let* ) = Result.bind in
    let* atoms =
      String.split_on_char '+' s
      |> List.fold_left
           (fun acc atom ->
             let* acc = acc in
             let* parsed = parse_atom (String.trim atom) in
             match parsed with None -> Ok acc | Some a -> Ok (a :: acc))
           (Ok [])
    in
    Ok { spec = s; atoms = List.rev atoms }

let cuts blocks ~from ~to_ =
  match blocks with
  | Split_at k -> from < k <> (to_ < k)
  | Blocks bs ->
      let find p = List.find_opt (fun b -> Rrfd.Pset.mem p b) bs in
      (match (find from, find to_) with
      | Some bf, Some bt -> not (Rrfd.Pset.equal bf bt)
      | _ -> false)

let partitioned t ~now ~from ~to_ =
  List.exists
    (function
      | Partition { at; heal; blocks } ->
          now >= at && now < heal && cuts blocks ~from ~to_
      | _ -> false)
    t.atoms

let byzantine t ~n =
  List.fold_left
    (fun acc -> function
      | Byz { members; _ } -> Rrfd.Pset.union acc members
      | _ -> acc)
    Rrfd.Pset.empty t.atoms
  |> Rrfd.Pset.inter (Rrfd.Pset.full n)

let byz_behaviour t p =
  List.fold_left
    (fun acc atom ->
      match atom with
      | Byz { members; behaviour } when Rrfd.Pset.mem p members -> (
          match acc with
          | None -> Some behaviour
          | Some b ->
              Some
                {
                  equivocate = b.equivocate || behaviour.equivocate;
                  corrupt = b.corrupt || behaviour.corrupt;
                  forge = b.forge || behaviour.forge;
                })
      | _ -> acc)
    None t.atoms

(* Atoms consume the rng in list order; every branch draws the same
   number of variates whatever the earlier outcomes, except drops, which
   short-circuit the whole plan (also deterministically).  [Byz] atoms
   never touch the delay plan — lying is about content, not timing — so
   adding one leaves the benign delay stream bit-identical. *)
let plan t rng ~now ~from ~to_ ~delay ~redraw =
  if partitioned t ~now ~from ~to_ then []
  else if
    List.exists
      (function Drop { p } -> Dsim.Rng.float rng 1.0 < p | _ -> false)
      t.atoms
  then []
  else
    let delay =
      List.fold_left
        (fun d atom ->
          match atom with
          | Spike { p; factor } ->
              if Dsim.Rng.float rng 1.0 < p then d *. factor else d
          | Reorder { p; window } ->
              let jitter = Dsim.Rng.float rng window in
              if Dsim.Rng.float rng 1.0 < p then d +. jitter else d
          | Drop _ | Duplicate _ | Partition _ | Byz _ -> d)
        delay t.atoms
    in
    let extras =
      List.fold_left
        (fun acc atom ->
          match atom with
          | Duplicate { p; copies } ->
              let k = 1 + Dsim.Rng.int rng copies in
              if Dsim.Rng.float rng 1.0 < p then acc + k else acc
          | _ -> acc)
        0 t.atoms
    in
    let rec dup acc k = if k = 0 then acc else dup (redraw () :: acc) (k - 1) in
    delay :: List.rev (dup [] extras)
