(** Heartbeat failure detection (the classic, pre-RRFD kind).

    Sections 6–7 of the paper relate RRFDs to the Chandra–Toueg failure
    detectors that {e augment} an asynchronous system.  This module
    implements that classic detector over the simulated network: every
    process broadcasts heartbeats; a process is suspected by an observer
    when its heartbeat is overdue at that observer, and unsuspected (with
    an increased timeout) when a late one arrives.  Because the network's
    delays are bounded, the detector is eventually perfect (◇P): once
    timeouts stop adapting, exactly the crashed processes are suspected —
    stronger than the ◇S the consensus layer needs. *)

type t

val create :
  sim:Dsim.Sim.t ->
  n:int ->
  send_heartbeat:(from:Rrfd.Proc.t -> unit) ->
  ?interval:float ->
  ?initial_timeout:float ->
  ?timeout_increment:float ->
  ?horizon:float ->
  unit ->
  t
(** [create ~sim ~n ~send_heartbeat ()] schedules periodic heartbeat
    emission for every process until virtual time [horizon] (default
    1000.0).  The caller owns the message type: [send_heartbeat ~from]
    must broadcast a message that the caller routes back via {!beat} on
    delivery (a crashed sender's broadcasts are dropped by the network, so
    its heartbeats stop automatically).  [interval] (default 5.0) is the
    emission period, [initial_timeout] (default 12.0) the first suspicion
    threshold per observer/target pair, [timeout_increment] (default 5.0)
    the penalty added whenever a suspicion proves false. *)

val beat : t -> at:Rrfd.Proc.t -> from:Rrfd.Proc.t -> unit
(** Record a heartbeat from [from] delivered at observer [at]. *)

val suspects : t -> observer:Rrfd.Proc.t -> target:Rrfd.Proc.t -> bool
(** Whether [observer] currently suspects [target] (its heartbeat is
    overdue). *)

val suspected_by : t -> Rrfd.Proc.t -> Rrfd.Pset.t
(** The full suspect set of an observer. *)

val false_suspicions : t -> int
(** Suspicions later retracted by a late heartbeat (instrumentation for
    the adaptive-timeout behaviour). *)

val live_suspicions :
  t -> among:Rrfd.Pset.t -> (Rrfd.Proc.t * Rrfd.Proc.t) list
(** Current [(observer, target)] suspicions restricted to [among] — the
    convergence probe for fault-injection runs: after a partition heals
    and timeouts adapt, suspicions among live processes must drain. *)

val converged : t -> among:Rrfd.Pset.t -> bool
(** [live_suspicions t ~among = []]. *)
