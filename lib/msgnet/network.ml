module Pset = Rrfd.Pset

type 'msg signed = {
  seq : int;
  signer : Rrfd.Proc.t;
  receiver : Rrfd.Proc.t;
  sent_at : float;
  payload : 'msg;
}

type 'msg tamper =
  behaviour:Adversary.byz_behaviour ->
  now:float ->
  from:Rrfd.Proc.t ->
  to_:Rrfd.Proc.t ->
  'msg ->
  'msg option

type 'msg t = {
  sim : Dsim.Sim.t;
  n : int;
  min_delay : float;
  max_delay : float;
  adversary : Adversary.t;
  tamper : 'msg tamper option;
  log_sends : bool;
  deliver : Dsim.Sim.t -> to_:Rrfd.Proc.t -> from:Rrfd.Proc.t -> 'msg -> unit;
  mutable crashed : Pset.t;
  mutable log : 'msg signed list; (* newest first *)
  mutable seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable tampered : int;
  mutable lost_to_crash : int;
}

let create ~sim ~n ?(min_delay = 1.0) ?(max_delay = 10.0)
    ?(adversary = Adversary.none) ?tamper ?(log_sends = false) ~deliver () =
  if n < 1 || n > Pset.max_universe then invalid_arg "Network.create: bad n";
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Network.create: bad delay bounds";
  {
    sim;
    n;
    min_delay;
    max_delay;
    adversary;
    tamper;
    log_sends;
    deliver;
    crashed = Pset.empty;
    log = [];
    seq = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    tampered = 0;
    lost_to_crash = 0;
  }

let n t = t.n
let adversary t = t.adversary

let pick_delay t =
  t.min_delay +. Dsim.Rng.float (Dsim.Sim.rng t.sim) (t.max_delay -. t.min_delay)

let schedule_delivery t ~from ~to_ ~delay msg =
  Dsim.Sim.schedule t.sim ~delay (fun sim ->
      if Pset.mem to_ t.crashed then t.lost_to_crash <- t.lost_to_crash + 1
      else begin
        t.delivered <- t.delivered + 1;
        t.deliver sim ~to_ ~from msg
      end)

(* A signature here is an unforgeable stamp of the true origin: the
   network records [signer = from] no matter what the payload claims, so
   tampered content stays attributable.  Entries are appended at send
   time, before the delay plan — a dropped copy was still emitted, and
   its signature is exactly the evidence an accountability audit needs. *)
let log_signed t ~from ~to_ msg =
  if t.log_sends then begin
    t.log <-
      {
        seq = t.seq;
        signer = from;
        receiver = to_;
        sent_at = Dsim.Sim.now t.sim;
        payload = msg;
      }
      :: t.log;
    t.seq <- t.seq + 1
  end

let send t ~from ~to_ ?delay msg =
  if to_ < 0 || to_ >= t.n || from < 0 || from >= t.n then
    invalid_arg "Network.send: process out of range";
  if not (Pset.mem from t.crashed) then begin
    let delay = match delay with Some d -> d | None -> pick_delay t in
    t.sent <- t.sent + 1;
    (* Byzantine senders lie about content before the wire sees the
       message; the hook only ever fires for processes the adversary
       marks Byzantine, so honest payloads are untouchable by
       construction (lie-attribution soundness).  The hook closes over
       its own rng stream, keeping the benign delay schedule
       bit-identical whether or not anyone lies. *)
    let msg =
      if Rrfd.Proc.equal from to_ then msg
      else
        match (t.tamper, Adversary.byz_behaviour t.adversary from) with
        | Some tamper, Some behaviour -> (
            match
              tamper ~behaviour ~now:(Dsim.Sim.now t.sim) ~from ~to_ msg
            with
            | Some forged ->
                t.tampered <- t.tampered + 1;
                forged
            | None -> msg)
        | _ -> msg
    in
    log_signed t ~from ~to_ msg;
    (* Loopback traffic never leaves the process, so the adversary cannot
       touch it — a process always hears itself. *)
    if Rrfd.Proc.equal from to_ || Adversary.is_noop t.adversary then
      schedule_delivery t ~from ~to_ ~delay msg
    else
      match
        Adversary.plan t.adversary
          (Dsim.Sim.rng t.sim)
          ~now:(Dsim.Sim.now t.sim) ~from ~to_ ~delay
          ~redraw:(fun () -> pick_delay t)
      with
      | [] -> t.dropped <- t.dropped + 1
      | first :: copies ->
          schedule_delivery t ~from ~to_ ~delay:first msg;
          List.iter
            (fun d ->
              t.duplicated <- t.duplicated + 1;
              schedule_delivery t ~from ~to_ ~delay:d msg)
            copies
  end

let broadcast t ~from ?(self = true) msg =
  for to_ = 0 to t.n - 1 do
    if self || not (Rrfd.Proc.equal to_ from) then send t ~from ~to_ msg
  done

let crash t p =
  if p < 0 || p >= t.n then invalid_arg "Network.crash: process out of range";
  t.crashed <- Pset.add p t.crashed

let crashed t = t.crashed
let signed_log t = List.rev t.log
let messages_tampered t = t.tampered
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_lost_to_crash t = t.lost_to_crash
