module Pset = Rrfd.Pset

type 'msg t = {
  sim : Dsim.Sim.t;
  n : int;
  min_delay : float;
  max_delay : float;
  adversary : Adversary.t;
  deliver : Dsim.Sim.t -> to_:Rrfd.Proc.t -> from:Rrfd.Proc.t -> 'msg -> unit;
  mutable crashed : Pset.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable lost_to_crash : int;
}

let create ~sim ~n ?(min_delay = 1.0) ?(max_delay = 10.0)
    ?(adversary = Adversary.none) ~deliver () =
  if n < 1 || n > Pset.max_universe then invalid_arg "Network.create: bad n";
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Network.create: bad delay bounds";
  {
    sim;
    n;
    min_delay;
    max_delay;
    adversary;
    deliver;
    crashed = Pset.empty;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    lost_to_crash = 0;
  }

let n t = t.n
let adversary t = t.adversary

let pick_delay t =
  t.min_delay +. Dsim.Rng.float (Dsim.Sim.rng t.sim) (t.max_delay -. t.min_delay)

let schedule_delivery t ~from ~to_ ~delay msg =
  Dsim.Sim.schedule t.sim ~delay (fun sim ->
      if Pset.mem to_ t.crashed then t.lost_to_crash <- t.lost_to_crash + 1
      else begin
        t.delivered <- t.delivered + 1;
        t.deliver sim ~to_ ~from msg
      end)

let send t ~from ~to_ ?delay msg =
  if to_ < 0 || to_ >= t.n || from < 0 || from >= t.n then
    invalid_arg "Network.send: process out of range";
  if not (Pset.mem from t.crashed) then begin
    let delay = match delay with Some d -> d | None -> pick_delay t in
    t.sent <- t.sent + 1;
    (* Loopback traffic never leaves the process, so the adversary cannot
       touch it — a process always hears itself. *)
    if Rrfd.Proc.equal from to_ || Adversary.is_noop t.adversary then
      schedule_delivery t ~from ~to_ ~delay msg
    else
      match
        Adversary.plan t.adversary
          (Dsim.Sim.rng t.sim)
          ~now:(Dsim.Sim.now t.sim) ~from ~to_ ~delay
          ~redraw:(fun () -> pick_delay t)
      with
      | [] -> t.dropped <- t.dropped + 1
      | first :: copies ->
          schedule_delivery t ~from ~to_ ~delay:first msg;
          List.iter
            (fun d ->
              t.duplicated <- t.duplicated + 1;
              schedule_delivery t ~from ~to_ ~delay:d msg)
            copies
  end

let broadcast t ~from ?(self = true) msg =
  for to_ = 0 to t.n - 1 do
    if self || not (Rrfd.Proc.equal to_ from) then send t ~from ~to_ msg
  done

let crash t p =
  if p < 0 || p >= t.n then invalid_arg "Network.crash: process out of range";
  t.crashed <- Pset.add p t.crashed

let crashed t = t.crashed
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_lost_to_crash t = t.lost_to_crash
