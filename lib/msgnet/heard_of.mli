(** Heard-of extraction: from asynchronous executions to fault histories.

    The Heard-Of line of work (Shimi et al.; Damian–Drăgoi–Widder) derives
    a round-by-round "who did I hear from" record out of an asynchronous
    execution; the complement of that record is exactly the paper's fault
    history [{D(i,r)}].  This module is that bridge made executable: the
    {!Round_layer} feeds a recorder as rounds complete, {!to_history}
    materialises the {!Rrfd.Fault_history}, {!classify} asks which of the
    paper's predicates P1–P5 the network adversary actually induced, and
    {!replay_decisions} re-executes the extracted history on the abstract
    engine — the differential oracle: network decisions and engine
    decisions must agree bit-for-bit. *)

type t
(** A per-process, round-ordered record of heard-from sets. *)

val create : n:int -> t
(** @raise Invalid_argument if [n] is out of {!Rrfd.Pset} range. *)

val n : t -> int

val note :
  t -> Rrfd.Proc.t -> round:int -> ?lied:Rrfd.Pset.t -> heard:Rrfd.Pset.t ->
  unit -> unit
(** [note t i ~round ~heard ()] records that [i] completed [round] having
    heard the round-[round] messages of exactly [heard].  Rounds must be
    noted in order: [round] must be [completed t i + 1].  [lied] (default
    empty) names the subset of [heard] whose content differed from the
    sender's canonical round-[round] emission — "lied to [i]" as opposed
    to "silent toward [i]", the distinction the Byzantine-aware
    predicates need.
    @raise Invalid_argument on out-of-order rounds, if [heard] mentions a
    process outside the system, or if [lied ⊄ heard] (a lie is only
    observable on a message that arrived). *)

val lied : t -> proc:Rrfd.Proc.t -> round:int -> Rrfd.Pset.t option
(** The recorded lied-to set, or [None] if [proc] never completed
    [round]. *)

val completed : t -> Rrfd.Proc.t -> int
(** Number of rounds [i] has completed. *)

val heard : t -> proc:Rrfd.Proc.t -> round:int -> Rrfd.Pset.t option
(** The recorded heard-from set, or [None] if [i] never completed [round]. *)

val rounds : t -> int
(** [max_i completed t i] — the extracted history's length. *)

val to_history : t -> Rrfd.Fault_history.t
(** The extracted fault history: [D(i,r)] is the complement of [i]'s
    heard-from set for rounds [i] completed, and [∅] for rounds it never
    reached (an unreached round constrains nothing — the process was
    merely slow, which the engine models as hearing everyone). *)

val to_lie_history : t -> Rrfd.Fault_history.t
(** The lie history: [D(i,r)] is the set of processes whose round-[r]
    message reached [i] with non-canonical content, [∅] for unreached
    rounds.  Disjointly complements {!to_history}: silence and lying are
    different ways of being bad toward [i], and a crash never appears
    here. *)

val to_byz_history : t -> Rrfd.Fault_history.t
(** {!Rrfd.Fault_history.union} of {!to_history} and {!to_lie_history} —
    [D(i,r)] = "was bad toward [i] in round [r], silently or by lying".
    This fused view is what the Byzantine-aware predicates
    ({!Rrfd.Predicate.byzantine_round_bound},
    {!Rrfd.Predicate.eventual_honest_kernel}) are meant to judge. *)

val paper_predicates : f:int -> (string * Rrfd.Predicate.t) list
(** The paper's ladder [P1–P5] with resilience [f]: omission, crash,
    asynchronous (|D| ≤ f), shared-memory, snapshot. *)

val classify : f:int -> Rrfd.Fault_history.t -> (string * bool) list
(** Which of {!paper_predicates} hold of the history — the answer to
    "which model did this adversary induce?". *)

val replay_decisions :
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  Rrfd.Fault_history.t ->
  'out option array
(** Run the extracted history through {!Rrfd.Engine.states_after} (exactly
    [Fault_history.rounds] rounds, the pinned schedule) and apply the
    algorithm's decision function to the final states.  Because the round
    layer is communication-closed — a round-[r] message is emitted from
    the sender's state after [r-1] completed rounds, whatever the wall
    clock says — this must reproduce the network execution's decisions. *)
