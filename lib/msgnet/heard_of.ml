module Pset = Rrfd.Pset

(* Per process, the heard-from and lied-to sets of completed rounds,
   newest first.  The two lists advance in lockstep: one entry each per
   [note].  "Silent toward i" (complement of heard) and "lied to i"
   (arrived, but with non-canonical content) are deliberately separate
   records — a crash looks like the former everywhere, a Byzantine
   process can be cleanly one, the other, or both. *)
type t = { n : int; per_proc : Pset.t list array; lied_to : Pset.t list array }

let create ~n =
  if n < 1 || n > Pset.max_universe then invalid_arg "Heard_of.create: bad n";
  { n; per_proc = Array.make n []; lied_to = Array.make n [] }

let n t = t.n

let completed t i =
  if i < 0 || i >= t.n then invalid_arg "Heard_of.completed: bad proc";
  List.length t.per_proc.(i)

let note t i ~round ?(lied = Pset.empty) ~heard () =
  if i < 0 || i >= t.n then invalid_arg "Heard_of.note: bad proc";
  if round <> List.length t.per_proc.(i) + 1 then
    invalid_arg "Heard_of.note: rounds must be noted in order";
  if not (Pset.subset heard (Pset.full t.n)) then
    invalid_arg "Heard_of.note: heard set outside the system";
  (* A lie is only observable on a message that arrived. *)
  if not (Pset.subset lied heard) then
    invalid_arg "Heard_of.note: lied set must be within the heard set";
  t.per_proc.(i) <- heard :: t.per_proc.(i);
  t.lied_to.(i) <- lied :: t.lied_to.(i)

let heard t ~proc ~round =
  if proc < 0 || proc >= t.n then invalid_arg "Heard_of.heard: bad proc";
  let l = t.per_proc.(proc) in
  let c = List.length l in
  if round < 1 || round > c then None else Some (List.nth l (c - round))

let lied t ~proc ~round =
  if proc < 0 || proc >= t.n then invalid_arg "Heard_of.lied: bad proc";
  let l = t.lied_to.(proc) in
  let c = List.length l in
  if round < 1 || round > c then None else Some (List.nth l (c - round))

let rounds t = Array.fold_left (fun m l -> max m (List.length l)) 0 t.per_proc

let history_of_rows t rows ~cell =
  let r_max = rounds t in
  let chron = Array.map List.rev rows in
  let round_sets r =
    Array.map
      (fun l ->
        match List.nth_opt l (r - 1) with
        | Some h -> cell h
        | None -> Pset.empty)
      chron
  in
  Rrfd.Fault_history.of_rounds ~n:t.n
    (List.init r_max (fun r -> round_sets (r + 1)))

let to_history t =
  let full = Pset.full t.n in
  history_of_rows t t.per_proc ~cell:(fun h -> Pset.diff full h)

let to_lie_history t = history_of_rows t t.lied_to ~cell:(fun l -> l)

let to_byz_history t =
  Rrfd.Fault_history.union (to_history t) (to_lie_history t)

let paper_predicates ~f =
  [
    ("P1", Rrfd.Predicate.omission ~f);
    ("P2", Rrfd.Predicate.crash ~f);
    ("P3", Rrfd.Predicate.async_resilient ~f);
    ("P4", Rrfd.Predicate.shared_memory ~f);
    ("P5", Rrfd.Predicate.snapshot ~f);
  ]

let classify ~f history =
  List.map
    (fun (name, p) -> (name, Rrfd.Predicate.holds p history))
    (paper_predicates ~f)

let replay_decisions ~algorithm history =
  let n = Rrfd.Fault_history.n history in
  let rounds = Rrfd.Fault_history.rounds history in
  let schedule =
    List.init rounds (fun r ->
        Rrfd.Fault_history.round_sets history ~round:(r + 1))
  in
  let detector =
    Rrfd.Detector.of_schedule ~after:(Array.make n Pset.empty) schedule
  in
  let states, _ = Rrfd.Engine.states_after ~n ~rounds ~algorithm ~detector () in
  Array.map algorithm.Rrfd.Algorithm.decide states
