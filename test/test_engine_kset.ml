(* Engine semantics and Theorem 3.1 (one-round k-set agreement). *)

module Pset = Rrfd.Pset
module Engine = Rrfd.Engine

let s = Test_support.pset

(* A probe algorithm that records what it observes. *)
type probe = {
  me : int;
  observed : (int * Pset.t * int list) list; (* round, faulty, senders heard *)
}

let probe_algorithm : (probe, int, int) Rrfd.Algorithm.t =
  {
    name = "probe";
    init = (fun ~n:_ p -> { me = p; observed = [] });
    emit = (fun st ~round -> (st.me * 100) + round);
    deliver =
      (fun st ~round ~view ->
        let senders = ref [] in
        Rrfd.View.iter (fun j _ -> senders := j :: !senders) view;
        {
          st with
          observed =
            (round, Rrfd.View.faulty view, List.rev !senders) :: st.observed;
        });
    decide = (fun st -> if List.length st.observed >= 2 then Some st.me else None);
  }

let engine_delivers_exactly_unsuspected () =
  let d1 = [| s [ 1 ]; s []; s [ 0; 1 ] |] in
  let detector = Rrfd.Detector.of_schedule [ d1 ] in
  let states, history =
    Engine.states_after ~n:3 ~rounds:1 ~algorithm:probe_algorithm ~detector ()
  in
  Alcotest.(check int) "one round" 1 (Rrfd.Fault_history.rounds history);
  let round, faulty, senders = List.hd states.(0).observed in
  Alcotest.(check int) "round number" 1 round;
  Alcotest.(check bool) "faulty passed through" true (Pset.equal faulty (s [ 1 ]));
  Alcotest.(check (list int)) "heard complement" [ 0; 2 ] senders;
  let _, _, senders2 = List.hd states.(2).observed in
  Alcotest.(check (list int)) "p2 heard only p2" [ 2 ] senders2

let engine_stops_on_decision () =
  let outcome =
    Engine.run ~n:3 ~algorithm:probe_algorithm ~detector:Rrfd.Detector.none ()
  in
  Alcotest.(check int) "stops at round 2" 2 outcome.Engine.rounds_used;
  Array.iteri
    (fun i d -> Alcotest.(check (option int)) "decided self" (Some i) d)
    outcome.Engine.decisions;
  Alcotest.(check (array (option int))) "decision rounds"
    [| Some 2; Some 2; Some 2 |]
    outcome.Engine.decision_rounds

let engine_rejects_full_fault_set () =
  let detector = Rrfd.Detector.constant ~n:2 [| s [ 0; 1 ]; s [] |] in
  Alcotest.check_raises "D = S rejected"
    (Invalid_argument "Engine: detector declared every process faulty (D = S)")
    (fun () ->
      ignore (Engine.run ~n:2 ~algorithm:probe_algorithm ~detector ()))

let engine_online_check_stops () =
  let bad = Rrfd.Detector.constant ~n:3 [| s [ 1; 2 ]; s []; s [] |] in
  let outcome =
    Engine.run ~n:3 ~check:(Rrfd.Predicate.async_resilient ~f:1)
      ~stop_when_decided:false ~max_rounds:10 ~algorithm:probe_algorithm
      ~detector:bad ()
  in
  Alcotest.(check bool) "violation reported" true
    (Option.is_some outcome.Engine.violation);
  Alcotest.(check int) "stopped at first bad round" 1 outcome.Engine.rounds_used

(* Theorem 3.1: under the k-set detector, one round suffices. *)
let kset_one_round_example () =
  let inputs = [| 10; 20; 30; 40 |] in
  (* Common part {3}, uncertainty {0}: D ∈ {{3}, {0,3}} — k = 1 would fail,
     k = 2 allows it. *)
  let d = [| s [ 3 ]; s [ 0; 3 ]; s [ 3 ]; s [ 0; 3 ] |] in
  let detector = Rrfd.Detector.of_schedule [ d ] in
  let outcome =
    Engine.run ~n:4 ~check:(Rrfd.Predicate.k_set ~k:2)
      ~algorithm:(Rrfd.Kset.one_round ~inputs) ~detector ()
  in
  Alcotest.(check (option string)) "detector legal" None outcome.Engine.violation;
  Alcotest.(check (array (option int))) "decisions"
    [| Some 10; Some 20; Some 10; Some 20 |]
    outcome.Engine.decisions;
  Alcotest.(check (option string)) "2-set agreement" None
    (Agreement_check.kset ~k:2 ~inputs outcome.Engine.decisions)

let kset_property =
  QCheck.Test.make ~name:"Thm 3.1: ≤ k distinct decisions in one round"
    ~count:500
    (Test_support.sized_seed_plus ~max_n:16 QCheck.(int_range 1 8))
    (fun (n, seed, k_raw) ->
      let k = 1 + (k_raw mod n) in
      let rng = Test_support.rng_of seed in
      let inputs = Array.init n (fun i -> 1000 + i) in
      let detector = Rrfd.Detector_gen.k_set rng ~n ~k in
      let outcome =
        Engine.run ~n ~check:(Rrfd.Predicate.k_set ~k)
          ~algorithm:(Rrfd.Kset.one_round ~inputs) ~detector ()
      in
      match outcome.Engine.violation with
      | Some v -> QCheck.Test.fail_reportf "detector broke predicate: %s" v
      | None -> (
        if outcome.Engine.rounds_used <> 1 then
          QCheck.Test.fail_reportf "took %d rounds" outcome.Engine.rounds_used
        else
          match Agreement_check.kset ~k ~inputs outcome.Engine.decisions with
          | None -> true
          | Some reason -> QCheck.Test.fail_reportf "n=%d k=%d: %s" n k reason))

let consensus_under_identical_views =
  QCheck.Test.make ~name:"consensus under equation-5 detectors" ~count:300
    (Test_support.sized_seed ~max_n:16 ())
    (fun (n, seed) ->
      let rng = Test_support.rng_of seed in
      let inputs = Array.init n (fun i -> 7 * i) in
      let detector = Rrfd.Detector_gen.identical rng ~n in
      let outcome =
        Engine.run ~n ~algorithm:(Rrfd.Kset.consensus ~inputs) ~detector ()
      in
      Agreement_check.kset ~k:1 ~inputs outcome.Engine.decisions = None)

let tests =
  [
    Alcotest.test_case "delivery matches fault sets" `Quick
      engine_delivers_exactly_unsuspected;
    Alcotest.test_case "stops on decision" `Quick engine_stops_on_decision;
    Alcotest.test_case "rejects D = S" `Quick engine_rejects_full_fault_set;
    Alcotest.test_case "online predicate check" `Quick engine_online_check_stops;
    Alcotest.test_case "Thm 3.1 worked example" `Quick kset_one_round_example;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ kset_property; consensus_under_identical_views ]
