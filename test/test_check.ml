(* The lib/check model checker: generator soundness, shrinking,
   deterministic parallel search, artifact round-trips, and the seeded
   end-to-end find → shrink → replay pipeline the CLI exposes. *)

module H = Rrfd.Fault_history

let ok_spec = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let kset3 = ok_spec (Check.Spec.predicate "kset:k=3")
let kset2 = ok_spec (Check.Spec.predicate "kset:k=2")
let k_agreement2 = ok_spec (Check.Spec.property "k-agreement:k=2")

(* Gen --------------------------------------------------------------- *)

let gen_round_never_full =
  QCheck.Test.make ~name:"Gen.round_sets never outputs D = S" ~count:500
    (Test_support.sized_seed ~max_n:8 ())
    (fun (n, seed) ->
      let sets = Check.Gen.round_sets (Test_support.rng_of seed) ~n in
      Array.for_all
        (fun s -> not (Rrfd.Pset.equal s (Rrfd.Pset.full n)))
        sets)

let gen_respects_predicate =
  QCheck.Test.make ~name:"Gen.history satisfies its predicate" ~count:300
    (Test_support.sized_seed ~min_n:3 ~max_n:6 ())
    (fun (n, seed) ->
      let p = Rrfd.Predicate.async_resilient ~f:2 in
      match
        Check.Gen.history (Test_support.rng_of seed) ~n ~rounds:2 ~satisfying:p
      with
      | None -> true
      | Some h ->
        H.rounds h = 2 && H.n h = n && Rrfd.Predicate.holds p h)

(* Deterministic parallel search ------------------------------------- *)

let pool_search_first_hit () =
  let f i = if i > 10 && i mod 7 = 3 then Some (i * i) else None in
  let expect = Some 289 (* i = 17, the lowest qualifying index *) in
  List.iter
    (fun jobs ->
      Alcotest.(check (option int))
        (Printf.sprintf "first hit at -j %d" jobs)
        expect
        (Runtime.Pool.search ~jobs ~n:100 f))
    [ 1; 2; 4; 8 ];
  Alcotest.(check (option int)) "no hit" None
    (Runtime.Pool.search ~jobs:4 ~n:10 f)

let campaign_search_j_invariant =
  QCheck.Test.make ~name:"Campaign.search is -j invariant" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let f ~trial ~rng =
        let x = Dsim.Rng.int rng 1000 in
        if x < 25 then Some (trial, x) else None
      in
      let serial = Runtime.Campaign.search ~jobs:1 ~seed ~trials:200 f in
      List.for_all
        (fun jobs ->
          Runtime.Campaign.search ~jobs ~seed ~trials:200 f = serial)
        [ 2; 4; 8 ])

(* Shrinking --------------------------------------------------------- *)

let shrink_candidates_well_formed =
  QCheck.Test.make ~name:"Shrink.candidates never propose D = S" ~count:300
    (Test_support.history_arb ~max_n:5 ())
    (fun h ->
      List.for_all
        (fun c ->
          let n = H.n c in
          let full = Rrfd.Pset.full n in
          let ok = ref true in
          for r = 1 to H.rounds c do
            Array.iter
              (fun s -> if Rrfd.Pset.equal s full then ok := false)
              (H.round_sets c ~round:r)
          done;
          !ok)
        (Check.Shrink.candidates h))

let shrink_strictly_smaller =
  QCheck.Test.make ~name:"Shrink.candidates strictly shrink" ~count:300
    (Test_support.history_arb ~max_n:5 ())
    (fun h ->
      let weight h =
        let total = ref (H.n h + H.rounds h) in
        for r = 1 to H.rounds h do
          Array.iter
            (fun s -> total := !total + Rrfd.Pset.cardinal s)
            (H.round_sets h ~round:r)
        done;
        !total
      in
      let w = weight h in
      List.for_all (fun c -> weight c < w) (Check.Shrink.candidates h))

(* End-to-end: the acceptance-criteria scenario ---------------------- *)

let fuzz_config : Check.Checker.fuzz_config =
  { n = 4; rounds = 1; trials = 500; seed = 7; jobs = Some 2; attempts = 64 }

let seeded_violation () =
  match
    Check.Checker.fuzz fuzz_config ~sut:Check.Sut.kset_one_round
      ~predicate:kset3 ~properties:[ k_agreement2 ] ()
  with
  | None -> Alcotest.fail "seeded k-set violation not found"
  | Some ce -> ce

let fuzz_finds_and_shrinks () =
  let ce = seeded_violation () in
  Alcotest.(check int) "shrunk to 3 processes" 3 (H.n ce.Check.Checker.history);
  Alcotest.(check int) "shrunk to 1 round" 1 (H.rounds ce.Check.Checker.history);
  (* 1-minimality: no single shrink step keeps both predicate and failure. *)
  let still_fails h =
    snd
      (Check.Checker.test_history ~sut:Check.Sut.kset_one_round
         ~predicate:kset3 ~properties:[ k_agreement2 ] h)
    <> None
  in
  List.iter
    (fun c ->
      if Rrfd.Predicate.holds kset3 c && still_fails c then
        Alcotest.failf "not 1-minimal: %s still fails" (H.to_string_compact c))
    (Check.Shrink.candidates ce.Check.Checker.history)

let exhaustive_agrees_with_fuzz () =
  let ce = seeded_violation () in
  match
    Check.Checker.exhaustive ~jobs:2 ~n:3 ~rounds:1
      ~sut:Check.Sut.kset_one_round ~predicate:kset3
      ~properties:[ k_agreement2 ] ()
  with
  | None -> Alcotest.fail "exhaustive search missed the violation"
  | Some exh ->
    Alcotest.(check Test_support.history_t)
      "fuzz and exhaustive shrink to the same minimal history"
      exh.Check.Checker.history ce.Check.Checker.history

let exhaustive_proves_safety () =
  match
    Check.Checker.exhaustive ~n:3 ~rounds:1 ~sut:Check.Sut.kset_one_round
      ~predicate:kset2 ~properties:[ k_agreement2 ] ()
  with
  | None -> ()
  | Some ce ->
    Alcotest.failf "k-set(k=2) should be safe, got %s"
      (H.to_string_compact ce.Check.Checker.history)

(* Replay padding: a pinned history shorter than the SUT's horizon gets
   failure-free rounds appended, so the protocol still terminates. *)
let short_history_padded () =
  let obs =
    Check.Sut.run_history Check.Sut.adopt_commit ~check:Rrfd.Predicate.always
      (H.empty ~n:2)
  in
  Alcotest.(check int) "padded to the 2-round horizon" 2
    (H.rounds obs.Check.Property.history);
  Array.iter
    (fun d -> Alcotest.(check bool) "everyone decided" true (Option.is_some d))
    obs.Check.Property.decisions

(* Sharded enumeration: the union of the per-first-round shards the
   exhaustive checker hands to its domains must be exactly the serial
   fold's set — same count, same multiset of histories. *)
let shards_cover_the_fold () =
  let n = 3 and rounds = 2 in
  List.iter
    (fun (name, p) ->
      let collect fold = fold ~init:[] ~f:(fun acc h -> H.to_string_compact h :: acc) in
      let serial =
        collect (fun ~init ~f ->
            Adversary.Enumerate.fold ~n ~rounds ~satisfying:p ~init ~f)
      in
      let sharded =
        List.concat_map
          (fun d ->
            collect (fun ~init ~f ->
                Adversary.Enumerate.fold_extensions
                  ~prefix:(H.append (H.empty ~n) d)
                  ~rounds ~satisfying:p ~init ~f))
          (Adversary.Enumerate.round_assignments ~n)
      in
      Alcotest.(check int)
        (name ^ ": shard union has the serial count")
        (List.length serial) (List.length sharded);
      let digest l = Digest.string (String.concat "\n" (List.sort compare l)) in
      Alcotest.(check string)
        (name ^ ": shard union is the serial set")
        (Digest.to_hex (digest serial))
        (Digest.to_hex (digest sharded)))
    [
      ("omission:f=1", Rrfd.Predicate.omission ~f:1);
      ("async:f=1", Rrfd.Predicate.async_resilient ~f:1);
      ("crash-closure", Rrfd.Predicate.crash_closure);
    ]

(* Artifact ---------------------------------------------------------- *)

let artifact_roundtrip_and_replay () =
  let ce = seeded_violation () in
  let artifact =
    Check.Artifact.make ~sut_spec:"kset-one-round" ~predicate_spec:"kset:k=3"
      ~property_specs:[ "k-agreement:k=2" ] ~seed:fuzz_config.Check.Checker.seed
      ce
  in
  let reread =
    Check.Artifact.of_json
      (Report.Json.of_string
         (Report.Json.to_string_pretty (Check.Artifact.to_json artifact)))
  in
  Alcotest.(check Test_support.history_t)
    "history survives the JSON round-trip"
    ce.Check.Checker.history
    reread.Check.Artifact.counterexample.Check.Checker.history;
  Alcotest.(check string) "failure text survives" ce.Check.Checker.failure
    reread.Check.Artifact.counterexample.Check.Checker.failure;
  match Check.Artifact.replay reread with
  | Error e -> Alcotest.failf "replay refused: %s" e
  | Ok r ->
    Alcotest.(check bool) "replay reproduces the decision vector" true
      (Check.Artifact.reproduced r)

(* Regression for the Byzantine shrinker: greedy descent over lying
   plans reaches a 1-minimal fixpoint and is idempotent — re-minimizing
   a minimized witness accepts zero further steps and returns it
   unchanged.  Starts from a fat witness (extra lying cells and a
   fabricated cert on top of a forking split-brain core) so there is
   something real to strip. *)
let byz_shrink_minimal_and_idempotent () =
  let module Byz = Check.Byz_check in
  let module Acc = Msgnet.Accountability in
  let n = 4 and f = 1 in
  let inputs = Byz.binary_inputs n in
  let fat_witness seed =
    let strategies = Array.make n None in
    (* Members echo receivers' inputs (the fork driver), plus a gratuitous
       cert on member 0 the shrinker should be able to drop. *)
    for i = 0 to 1 do
      strategies.(i) <-
        Some
          {
            Acc.votes = Array.copy inputs;
            cert = (if i = 0 then Some (1, Rrfd.Pset.full (n - f)) else None);
          }
    done;
    { Byz.n; f; seed; inputs; strategies }
  in
  let rec hunt k =
    if k > 500 then Alcotest.fail "no forking schedule within 500 tries"
    else
      let w = fat_witness (Dsim.Rng.derive_seed 3 k) in
      if Byz.forks w then w else hunt (k + 1)
  in
  let w = hunt 0 in
  let minimal, steps = Byz.minimize ~still_fails:Byz.forks w in
  Alcotest.(check bool) "shrinking made progress" true (steps > 0);
  Alcotest.(check bool) "minimal witness still forks" true (Byz.forks minimal);
  (* 1-minimal: no single further reduction still forks. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "no candidate of the fixpoint forks" false
        (Byz.forks c))
    (Byz.candidates minimal);
  (* Idempotent: minimizing the fixpoint is a zero-step no-op. *)
  let again, steps' = Byz.minimize ~still_fails:Byz.forks minimal in
  Alcotest.(check int) "re-minimization accepts no steps" 0 steps';
  Alcotest.(check bool) "and returns the witness unchanged" true
    (again = minimal);
  (* The gratuitous cert cannot survive: forking is vote-driven here. *)
  Array.iter
    (fun st ->
      match st with
      | Some { Acc.cert = Some _; _ } ->
        Alcotest.fail "fabricated cert survived shrinking"
      | _ -> ())
    minimal.Byz.strategies

let tests =
  [
    Alcotest.test_case "Pool.search first hit is -j invariant" `Quick
      pool_search_first_hit;
    Alcotest.test_case "byz shrinker is 1-minimal and idempotent" `Quick
      byz_shrink_minimal_and_idempotent;
    Alcotest.test_case "fuzz finds and 1-minimally shrinks" `Quick
      fuzz_finds_and_shrinks;
    Alcotest.test_case "exhaustive agrees with fuzz" `Quick
      exhaustive_agrees_with_fuzz;
    Alcotest.test_case "exhaustive proves k=2 safe" `Quick
      exhaustive_proves_safety;
    Alcotest.test_case "short histories padded to horizon" `Quick
      short_history_padded;
    Alcotest.test_case "artifact JSON round-trip + replay" `Quick
      artifact_roundtrip_and_replay;
    Alcotest.test_case "shard union equals the serial fold" `Quick
      shards_cover_the_fold;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        gen_round_never_full;
        gen_respects_predicate;
        campaign_search_j_invariant;
        shrink_candidates_well_formed;
        shrink_strictly_smaller;
      ]
