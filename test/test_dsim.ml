(* Tests for the discrete-event substrate: Rng, Heap, Sim. *)

module Rng = Dsim.Rng
module Heap = Dsim.Heap
module Sim = Dsim.Sim

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let w = Rng.int_in_range rng ~min:5 ~max:9 in
    Alcotest.(check bool) "range inclusive" true (w >= 5 && w <= 9);
    let f = Rng.float rng 3.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let rng_sampling () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let sample = Rng.sample_without_replacement rng 5 20 in
    Alcotest.(check int) "sample size" 5 (List.length sample);
    Alcotest.(check bool) "sorted distinct" true
      (List.sort_uniq compare sample = sample);
    List.iter
      (fun v -> Alcotest.(check bool) "in universe" true (v >= 0 && v < 20))
      sample
  done;
  let all = Rng.sample_without_replacement rng 20 20 in
  Alcotest.(check int) "full sample" 20 (List.length all)

let rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let l = List.init 30 Fun.id in
  let shuffled = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare shuffled)

(* Build the next [n] outputs in stream order (List.init's evaluation order
   is not something to rely on for a stateful generator). *)
let take n rng =
  let rec go acc k = if k = 0 then List.rev acc else go (Rng.int64 rng :: acc) (k - 1) in
  go [] n

let common_prefix_len a b =
  let rec go n = function
    | x :: xs, y :: ys when x = y -> go (n + 1) (xs, ys)
    | _ -> n
  in
  go 0 (a, b)

(* Split-stream independence smoke test: a child stream must diverge from
   its parent immediately — any long shared prefix would mean trials of a
   campaign see correlated randomness. *)
let rng_split_streams_independent =
  QCheck.Test.make ~name:"split child shares no prefix with parent" ~count:500
    QCheck.int (fun seed ->
      let parent = Rng.create seed in
      let child = Rng.split parent in
      common_prefix_len (take 16 parent) (take 16 child) = 0)

let rng_derived_streams_independent =
  QCheck.Test.make ~name:"derived streams pairwise diverge" ~count:200
    QCheck.(pair int (int_range 0 1000))
    (fun (seed, stream) ->
      let a = Rng.derive ~seed ~stream in
      let b = Rng.derive ~seed ~stream:(stream + 1) in
      let same_seed_again = Rng.derive ~seed ~stream in
      let sa = take 16 a in
      common_prefix_len sa (take 16 b) = 0 && sa = take 16 same_seed_again)

let rng_sample_invariants =
  QCheck.Test.make ~name:"sample_without_replacement invariants" ~count:500
    QCheck.(triple int (int_range 0 40) (int_range 0 40))
    (fun (seed, n, k) ->
      let k = min k n in
      let rng = Rng.create seed in
      let sample = Rng.sample_without_replacement rng k n in
      List.length sample = k
      && List.sort_uniq compare sample = sample
      && List.for_all (fun v -> v >= 0 && v < n) sample)

let heap_orders () =
  let h = Heap.create () in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    Heap.push h (Rng.float rng 100.0) ()
  done;
  let rec drain last =
    match Heap.pop h with
    | None -> ()
    | Some (p, ()) ->
      Alcotest.(check bool) "non-decreasing" true (p >= last);
      drain p
  in
  drain neg_infinity;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let heap_stable_ties () =
  let h = Heap.create () in
  List.iter (fun i -> Heap.push h 1.0 i) [ 1; 2; 3; 4 ];
  let order = List.filter_map (fun _ -> Option.map snd (Heap.pop h)) [ (); (); (); () ] in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ] order

let sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:5.0 (fun _ -> log := 5 :: !log);
  Sim.schedule sim ~delay:1.0 (fun s ->
      log := 1 :: !log;
      Sim.schedule s ~delay:1.0 (fun _ -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "execution order" [ 1; 2; 5 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 5.0 (Sim.now sim)

let sim_until_and_budget () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun _ -> incr count)
  done;
  Sim.run ~until:4.5 sim;
  Alcotest.(check int) "until stops" 4 !count;
  Sim.run ~max_events:2 sim;
  Alcotest.(check int) "budget stops" 6 !count;
  Sim.run sim;
  Alcotest.(check int) "drains" 10 !count

let sim_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:2.0 (fun s ->
      Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time is in the past")
        (fun () -> Sim.schedule_at s ~time:1.0 (fun _ -> ())));
  Sim.run sim

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng seeds" `Quick rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick rng_bounds;
    Alcotest.test_case "rng sampling" `Quick rng_sampling;
    Alcotest.test_case "rng shuffle" `Quick rng_shuffle_permutes;
    Alcotest.test_case "heap orders" `Quick heap_orders;
    Alcotest.test_case "heap stable ties" `Quick heap_stable_ties;
    Alcotest.test_case "sim time order" `Quick sim_runs_in_time_order;
    Alcotest.test_case "sim until/budget" `Quick sim_until_and_budget;
    Alcotest.test_case "sim rejects past" `Quick sim_rejects_past;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        rng_split_streams_independent;
        rng_derived_streams_independent;
        rng_sample_invariants;
      ]
