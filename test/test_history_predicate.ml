(* Tests for Fault_history and the paper's named predicates. *)

module Pset = Rrfd.Pset
module H = Rrfd.Fault_history
module P = Rrfd.Predicate

let s = Pset.of_list

let history n rounds = H.of_rounds ~n (List.map Array.of_list rounds)

let holds p h = Alcotest.(check bool) (P.name p) true (Rrfd.Predicate.holds p h)

let fails p h reason =
  Alcotest.(check bool) reason false (Rrfd.Predicate.holds p h)

let history_accessors () =
  let h = history 3 [ [ s [ 1 ]; s []; s [ 0; 1 ] ]; [ s []; s [ 2 ]; s [] ] ] in
  Alcotest.(check int) "rounds" 2 (H.rounds h);
  Alcotest.(check int) "n" 3 (H.n h);
  Alcotest.(check bool) "d access" true (Pset.equal (H.d h ~proc:0 ~round:1) (s [ 1 ]));
  Alcotest.(check bool) "round union" true
    (Pset.equal (H.round_union h ~round:1) (s [ 0; 1 ]));
  Alcotest.(check bool) "round inter" true
    (Pset.equal (H.round_inter h ~round:1) Pset.empty);
  Alcotest.(check bool) "cumulative" true
    (Pset.equal (H.cumulative_union h) (s [ 0; 1; 2 ]));
  Alcotest.(check bool) "cumulative upto 1" true
    (Pset.equal (H.cumulative_union_upto h ~round:1) (s [ 0; 1 ]));
  Alcotest.check_raises "bad round"
    (Invalid_argument "Fault_history: round out of range") (fun () ->
      ignore (H.round_union h ~round:3))

let omission_pred () =
  let p = P.omission ~f:1 in
  holds p (history 3 [ [ s [ 2 ]; s []; s [] ] ]);
  holds p (history 3 [ [ s [ 2 ]; s [ 2 ]; s [] ]; [ s []; s [ 2 ]; s [] ] ]);
  fails p
    (history 3 [ [ s [ 1 ]; s []; s [] ]; [ s [ 2 ]; s []; s [] ] ])
    "two distinct faulty senders exceed f=1";
  fails p (history 3 [ [ s []; s []; s [ 2 ] ] ]) "self-suspicion";
  (* f bounds the *cumulative union*, not per-round sizes. *)
  holds (P.omission ~f:2) (history 3 [ [ s [ 1; 2 ]; s []; s [] ] ])

let crash_pred () =
  let p = P.crash ~f:2 in
  (* p2 crashes at round 1, partially missed, then missed by all. *)
  holds p
    (history 3 [ [ s [ 2 ]; s []; s [] ]; [ s [ 2 ]; s [ 2 ]; s [] ] ]);
  (* closure violated: p2 missed at round 1 but received by p1 at round 2
     without p1 missing it. *)
  fails p
    (history 3 [ [ s [ 2 ]; s []; s [] ]; [ s [ 2 ]; s []; s [] ] ])
    "crash closure violated";
  (* the crashed process itself is exempt from suspecting itself *)
  holds p
    (history 3 [ [ s [ 2 ]; s [ 2 ]; s [] ]; [ s [ 2 ]; s [ 2 ]; s [] ] ])

let async_pred () =
  let p = P.async_resilient ~f:1 in
  holds p (history 3 [ [ s [ 0 ]; s [ 2 ]; s [ 1 ] ] ]);
  fails p (history 3 [ [ s [ 0; 1 ]; s []; s [] ] ]) "fault set too big";
  (* unlike omission, different processes may be missed every round *)
  holds p (history 3 [ [ s [ 0 ]; s []; s [] ]; [ s [ 1 ]; s []; s [] ] ])

let async_mixed_pred () =
  let p = P.async_mixed ~f:1 ~t:2 in
  (* one process misses 2 (inside Q), others at most 1 *)
  holds p (history 4 [ [ s [ 1; 2 ]; s [ 0 ]; s []; s [ 3 ] ] ]);
  (* three processes missing 2 exceeds |Q| ≤ 2 *)
  fails p
    (history 4 [ [ s [ 1; 2 ]; s [ 0; 2 ]; s [ 0; 1 ]; s [] ] ])
    "too many weak processes";
  fails p
    (history 4 [ [ s [ 1; 2; 3 ]; s []; s []; s [] ] ])
    "weak process missing more than t"

let shm_pred () =
  let p = P.shared_memory ~f:2 in
  holds p (history 3 [ [ s [ 1 ]; s [ 0 ]; s [ 0 ] ] ]);
  (* everyone suspected by someone *)
  fails p
    (history 3 [ [ s [ 1 ]; s [ 2 ]; s [ 0 ] ] ])
    "no process seen by all"

let antisym_pred () =
  holds P.antisymmetric_misses (history 3 [ [ s [ 1 ]; s [ 2 ]; s [ 0 ] ] ]);
  fails P.antisymmetric_misses
    (history 3 [ [ s [ 1 ]; s [ 0 ]; s [] ] ])
    "mutual suspicion"

let snapshot_pred () =
  let p = P.snapshot ~f:2 in
  (* comparable chain ∅ ⊆ {2} ⊆ {1,2}: needs |D| ≤ f and no self *)
  holds p (history 3 [ [ s [ 1; 2 ]; s [ 2 ]; s [] ] ]);
  fails p
    (history 3 [ [ s [ 1 ]; s [ 2 ]; s [] ] ])
    "incomparable fault sets";
  fails p (history 3 [ [ s [ 0 ]; s []; s [] ] ]) "self-suspicion"

let detector_s_pred () =
  holds P.detector_s
    (history 3 [ [ s [ 1 ]; s [ 1 ]; s [ 1 ] ]; [ s [ 0 ]; s []; s [] ] ]);
  fails P.detector_s
    (history 3 [ [ s [ 1 ]; s [ 2 ]; s [ 0 ] ] ])
    "every process eventually suspected"

let k_set_pred () =
  let p1 = P.k_set ~k:1 in
  holds p1 (history 3 [ [ s [ 2 ]; s [ 2 ]; s [ 2 ] ] ]);
  fails p1
    (history 3 [ [ s [ 2 ]; s []; s [] ] ])
    "k=1 forbids any disagreement";
  let p2 = P.k_set ~k:2 in
  holds p2 (history 3 [ [ s [ 2 ]; s []; s [] ] ]);
  fails p2
    (history 3 [ [ s [ 1; 2 ]; s []; s [] ] ])
    "uncertainty of 2 breaks k=2"

let identical_pred () =
  holds P.identical_views (history 3 [ [ s [ 1 ]; s [ 1 ]; s [ 1 ] ] ]);
  fails P.identical_views
    (history 3 [ [ s [ 1 ]; s [ 1 ]; s [] ] ])
    "views differ"

(* Surgery operations (what the lib/check shrinker is built on). *)

let history_t = Test_support.history_t

let surgery_update () =
  let h = history 3 [ [ s [ 1 ]; s []; s [ 0; 1 ] ]; [ s []; s [ 2 ]; s [] ] ] in
  let h' = H.update h ~round:1 ~proc:2 (s [ 0 ]) in
  Alcotest.(check Test_support.pset_t) "slot replaced" (s [ 0 ])
    (H.d h' ~proc:2 ~round:1);
  Alcotest.(check Test_support.pset_t) "other slots untouched" (s [ 2 ])
    (H.d h' ~proc:1 ~round:2);
  Alcotest.(check history_t) "original unchanged"
    (history 3 [ [ s [ 1 ]; s []; s [ 0; 1 ] ]; [ s []; s [ 2 ]; s [] ] ])
    h

let surgery_drop_round () =
  let h = history 3 [ [ s [ 1 ]; s []; s [] ]; [ s []; s [ 2 ]; s [] ] ] in
  Alcotest.(check history_t) "drop first round"
    (history 3 [ [ s []; s [ 2 ]; s [] ] ])
    (H.drop_round h ~round:1);
  Alcotest.(check history_t) "drop last round"
    (history 3 [ [ s [ 1 ]; s []; s [] ] ])
    (H.drop_round h ~round:2)

let surgery_truncate () =
  let h = history 3 [ [ s [ 1 ]; s []; s [] ]; [ s []; s [ 2 ]; s [] ] ] in
  Alcotest.(check history_t) "truncate to 1"
    (history 3 [ [ s [ 1 ]; s []; s [] ] ])
    (H.truncate h ~rounds:1);
  Alcotest.(check history_t) "truncate to 0" (H.empty ~n:3)
    (H.truncate h ~rounds:0);
  Alcotest.(check history_t) "truncate to full length is identity" h
    (H.truncate h ~rounds:2)

let surgery_remove_proc () =
  (* Removing p1 from {p0,p1,p2}: ids above shift down, sets renumber. *)
  let h = history 3 [ [ s [ 1 ]; s [ 2 ]; s [ 0; 1 ] ] ] in
  Alcotest.(check history_t) "p1 removed, p2 becomes p1"
    (history 2 [ [ s []; s [ 0 ] ] ])
    (H.remove_proc h ~proc:1);
  Alcotest.check_raises "cannot remove the last process"
    (Invalid_argument "Fault_history.remove_proc: need n > 1") (fun () ->
      ignore (H.remove_proc (H.empty ~n:1) ~proc:0))

(* The same surgery ops on a wide universe (n = 70 crosses the Pset
   word boundary, so every per-round set is multi-word). *)
let surgery_wide () =
  let n = 70 in
  let faulty = s [ 61; 62; 63; 69 ] in
  let round = Array.init n (fun p -> if p = 69 then Pset.empty else faulty) in
  let h = H.of_rounds ~n [ round; round ] in
  Alcotest.(check int) "n" n (H.n h);
  Alcotest.(check Test_support.pset_t) "round union" faulty
    (H.round_union h ~round:1);
  let h' = H.update h ~round:2 ~proc:0 (s [ 65 ]) in
  Alcotest.(check Test_support.pset_t) "updated slot" (s [ 65 ])
    (H.d h' ~proc:0 ~round:2);
  Alcotest.(check Test_support.pset_t) "cumulative union picks it up"
    (Pset.add 65 faulty) (H.cumulative_union h');
  Alcotest.(check history_t) "drop then truncate agree"
    (H.drop_round h ~round:2) (H.truncate h ~rounds:1);
  (* Removing p63 renumbers everything above it down by one. *)
  let r = H.remove_proc h ~proc:63 in
  Alcotest.(check int) "n after remove" (n - 1) (H.n r);
  Alcotest.(check Test_support.pset_t) "sets renumber across the boundary"
    (s [ 61; 62; 68 ])
    (H.d r ~proc:0 ~round:1);
  Alcotest.(check bool) "codec round-trips wide" true
    (H.equal h (H.of_string_compact (H.to_string_compact h)))

let compact_roundtrip =
  QCheck.Test.make ~name:"to_string_compact/of_string_compact round-trip"
    ~count:500
    (Test_support.history_arb ~min_n:1 ~max_n:6 ())
    (fun h -> H.equal h (H.of_string_compact (H.to_string_compact h)))

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let explain_names_round () =
  let h = history 3 [ [ s []; s []; s [] ]; [ s [ 0; 1 ]; s []; s [] ] ] in
  match Rrfd.Predicate.explain (P.async_resilient ~f:1) h with
  | Some msg ->
    Alcotest.(check bool) "mentions round 2" true (contains msg "2")
  | None -> Alcotest.fail "expected a violation"

let tests =
  [
    Alcotest.test_case "history accessors" `Quick history_accessors;
    Alcotest.test_case "omission" `Quick omission_pred;
    Alcotest.test_case "crash" `Quick crash_pred;
    Alcotest.test_case "async" `Quick async_pred;
    Alcotest.test_case "async mixed" `Quick async_mixed_pred;
    Alcotest.test_case "shared memory" `Quick shm_pred;
    Alcotest.test_case "antisymmetric" `Quick antisym_pred;
    Alcotest.test_case "snapshot" `Quick snapshot_pred;
    Alcotest.test_case "detector S" `Quick detector_s_pred;
    Alcotest.test_case "k-set" `Quick k_set_pred;
    Alcotest.test_case "identical views" `Quick identical_pred;
    Alcotest.test_case "explain names round" `Quick explain_names_round;
    Alcotest.test_case "surgery: update" `Quick surgery_update;
    Alcotest.test_case "surgery: drop_round" `Quick surgery_drop_round;
    Alcotest.test_case "surgery: truncate" `Quick surgery_truncate;
    Alcotest.test_case "surgery: remove_proc" `Quick surgery_remove_proc;
    Alcotest.test_case "surgery: wide universe" `Quick surgery_wide;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ compact_roundtrip ]
