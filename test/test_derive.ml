(* Check.Derive (E26): every policy derives a sound, tight, certified
   predicate; witnesses really separate; byz projects onto benign;
   exhaustive mode proves tightness; artifacts replay; the whole thing
   is -j invariant. *)

module D = Check.Derive
module H = Rrfd.Fault_history
module P = Rrfd.Predicate

let ok_result = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* Small but meaningful budgets: enough observations to refute the
   obviously-false candidates, certification at double that. *)
let fuzz_cfg =
  { D.default_config with observe_trials = 200; certify_trials = 400; seed = 9 }

let exh_cfg =
  { fuzz_cfg with D.n = 3; f = 1; rounds = 3; exhaustive = true }

let fuzz_lat = lazy (ok_result (D.lattice_for ~cfg:fuzz_cfg))
let exh_lat = lazy (ok_result (D.lattice_for ~cfg:exh_cfg))

let derive ~lattice ~cfg policy =
  ok_result (D.derive ~lattice:(Lazy.force lattice) ~cfg ~policy ())

let spec_predicate s = ok_result (Check.Spec.predicate s)

(* Every E21 policy derives a certified, tight predicate whose witnesses
   genuinely separate: each satisfies the derived predicate and violates
   exactly the candidate it refutes. *)
let all_policies_derive () =
  List.iter
    (fun policy ->
      let o = derive ~lattice:fuzz_lat ~cfg:fuzz_cfg policy in
      Alcotest.(check bool) (policy ^ " certified") true o.D.certified;
      Alcotest.(check bool) (policy ^ " tight") true (D.tight o);
      Alcotest.(check bool) (policy ^ " ok") true (D.ok o);
      (* The round layer completes rounds on n − f, so these two are
         sound for every policy — the waiting rule, not the wire damage,
         shapes the induced model. *)
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s sound" policy s)
            true (List.mem s o.D.sound))
        [ "no-self"; Printf.sprintf "async:f=%d" fuzz_cfg.D.f ];
      let derived = D.predicate_of o in
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: witness for %s violates it" policy w.D.spec)
            false
            (P.holds (spec_predicate w.D.spec) w.D.history);
          Alcotest.(check bool)
            (Printf.sprintf "%s: witness for %s satisfies derived" policy
               w.D.spec)
            true
            (P.holds derived w.D.history))
        o.D.witnesses)
    Experiments.E21_faultnet.grid

(* A fresh batch of executions at an unrelated seed satisfies the
   derived predicate — the certificate generalises past its own seeds. *)
let fresh_batch_satisfies () =
  let policy = "drop:p=20" in
  let o = derive ~lattice:fuzz_lat ~cfg:fuzz_cfg policy in
  let derived = D.predicate_of o in
  let adversary = ok_result (Msgnet.Adversary.of_spec policy) in
  for trial = 0 to 99 do
    let rng = Dsim.Rng.create (Dsim.Rng.derive_seed 7777 trial) in
    let h, _ =
      D.induced_history ~adversary ~n:fuzz_cfg.D.n ~f:fuzz_cfg.D.f
        ~rounds:fuzz_cfg.D.rounds ~rng
    in
    if not (P.holds derived h) then
      Alcotest.failf "fresh trial %d violates the derived predicate: %s" trial
        (H.to_string_compact h)
  done

(* Byzantine atoms corrupt content, never delay schedules: at the same
   seed the benign projection of byz derives exactly what "none" does. *)
let byz_projects_onto_benign () =
  let none = derive ~lattice:fuzz_lat ~cfg:fuzz_cfg "none" in
  let byz = derive ~lattice:fuzz_lat ~cfg:fuzz_cfg "byz:m=2,corrupt=1" in
  Alcotest.(check (list string)) "same sound set" none.D.sound byz.D.sound;
  Alcotest.(check (list string))
    "same derived name" none.D.conjuncts byz.D.conjuncts;
  let skeleton o =
    List.map (fun w -> (w.D.spec, w.D.source)) o.D.witnesses
  in
  Alcotest.(check bool) "same witnesses" true (skeleton none = skeleton byz)

(* Exhaustive mode: every frontier member gets an enumeration-backed
   separation — a proof the derived predicate does not imply it. *)
let exhaustive_proves_tightness () =
  let o = derive ~lattice:exh_lat ~cfg:exh_cfg "none" in
  Alcotest.(check bool) "ok" true (D.ok o);
  Alcotest.(check bool) "has separations" true (o.D.separations <> []);
  Alcotest.(check (list string))
    "one separation per frontier member" o.D.frontier
    (List.map (fun w -> w.D.spec) o.D.separations);
  let derived = D.predicate_of o in
  List.iter
    (fun w ->
      Alcotest.(check bool) "enumeration-sourced" true (w.D.source = D.Exhaustive);
      Alcotest.(check bool)
        (w.D.spec ^ " separation satisfies derived")
        true (P.holds derived w.D.history);
      Alcotest.(check bool)
        (w.D.spec ^ " separation violates it")
        false
        (P.holds (spec_predicate w.D.spec) w.D.history))
    o.D.separations

(* Artifact: save → load → replay reproduces everything bit-for-bit. *)
let artifact_roundtrip_and_replay () =
  let o = derive ~lattice:exh_lat ~cfg:exh_cfg "drop:p=30" in
  let path = Filename.temp_file "derive" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      D.save path o;
      let loaded = ok_result (D.load path) in
      Alcotest.(check string) "policy survives" o.D.policy loaded.D.policy;
      Alcotest.(check (list string)) "sound survives" o.D.sound loaded.D.sound;
      let r = ok_result (D.replay loaded) in
      Alcotest.(check bool) "witnesses valid" true r.D.witnesses_valid;
      Alcotest.(check bool) "fuzz reproduced" true r.D.fuzz_reproduced;
      Alcotest.(check bool) "separations valid" true r.D.separations_valid;
      Alcotest.(check bool) "reproduced" true (D.reproduced r))

(* The whole outcome — not just the verdict — is identical at any -j. *)
let j_invariant () =
  let at jobs =
    let cfg = { fuzz_cfg with D.jobs = Some jobs } in
    Report.Json.to_string_pretty
      (D.to_json (derive ~lattice:fuzz_lat ~cfg "spike:p=20,factor=8"))
  in
  Alcotest.(check string) "-j1 = -j2" (at 1) (at 2)

(* Pinned error-message contract: every spec parser in the stack refuses
   unknown names the same way. *)
let unknown_spec_messages () =
  let check_err what result =
    match result with
    | Ok _ -> Alcotest.failf "%s: bogus spec accepted" what
    | Error e ->
      let prefix = Printf.sprintf "unknown %s \"bogus\", expected one of: " what in
      if not (String.starts_with ~prefix e) then
        Alcotest.failf "%s: unexpected message %S" what e
  in
  check_err "predicate" (Check.Spec.predicate "bogus");
  check_err "adversary" (Msgnet.Adversary.of_spec "bogus");
  check_err "generator" (Check.Spec.generator "bogus")

let tests =
  [
    Alcotest.test_case "every E21 policy derives ok" `Slow all_policies_derive;
    Alcotest.test_case "fresh batch satisfies derived" `Quick
      fresh_batch_satisfies;
    Alcotest.test_case "byz projects onto benign" `Quick
      byz_projects_onto_benign;
    Alcotest.test_case "exhaustive tightness proof" `Slow
      exhaustive_proves_tightness;
    Alcotest.test_case "artifact round-trip + replay" `Slow
      artifact_roundtrip_and_replay;
    Alcotest.test_case "-j invariance of the full artifact" `Quick j_invariant;
    Alcotest.test_case "unknown-spec messages pinned" `Quick
      unknown_spec_messages;
  ]
