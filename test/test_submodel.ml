(* The submodel relation of Section 2 (E13): exhaustive checks at n = 3 and
   sampled checks at larger sizes. *)

module P = Rrfd.Predicate
module S = Rrfd.Submodel

let implies name a b =
  match S.check_exhaustive ~n:3 ~rounds:2 a b with
  | S.Implies -> ()
  | S.Counterexample h ->
    Alcotest.failf "%s: unexpected counterexample:@ %a" name
      Rrfd.Fault_history.pp h

let refuted name a b =
  match S.check_exhaustive ~n:3 ~rounds:2 a b with
  | S.Counterexample _ -> ()
  | S.Implies -> Alcotest.failf "%s: expected a counterexample" name

let lattice_positive () =
  implies "crash ⇒ omission" (P.crash ~f:1) (P.omission ~f:1);
  implies "omission ⇒ async (same f)" (P.omission ~f:1) (P.async_resilient ~f:1);
  implies "snapshot ⇒ shm" (P.snapshot ~f:1) (P.shared_memory ~f:1);
  implies "shm ⇒ async" (P.shared_memory ~f:1) (P.async_resilient ~f:1);
  implies "identical ⇒ k-set(1)" P.identical_views (P.k_set ~k:1);
  implies "k-set(1) ⇒ k-set(2)" (P.k_set ~k:1) (P.k_set ~k:2);
  implies "async(1) ⇒ async(2)" (P.async_resilient ~f:1) (P.async_resilient ~f:2);
  implies "async(f) ⇒ mixed(f,t)" (P.async_resilient ~f:1) (P.async_mixed ~f:1 ~t:2);
  implies "omission(f = n−1) ⇒ detector-S" (P.omission ~f:2) P.detector_s;
  implies "snapshot ⇒ not-all-faulty" (P.snapshot ~f:2) P.not_all_faulty

let lattice_negative () =
  refuted "omission ⇏ crash" (P.omission ~f:1) (P.crash ~f:1);
  refuted "async ⇏ omission" (P.async_resilient ~f:1) (P.omission ~f:1);
  refuted "async ⇏ shm" (P.async_resilient ~f:1) (P.shared_memory ~f:1);
  refuted "shm ⇏ snapshot" (P.shared_memory ~f:1) (P.snapshot ~f:1);
  refuted "k-set(2) ⇏ k-set(1)" (P.k_set ~k:2) (P.k_set ~k:1);
  refuted "mixed(f,t) ⇏ async(f)" (P.async_mixed ~f:1 ~t:2) (P.async_resilient ~f:1);
  refuted "antisym alone ⇏ someone-seen-by-all"
    (P.conj (P.async_resilient ~f:2) P.antisymmetric_misses)
    P.someone_seen_by_all

(* The paper's item-6 equivalence: the detector-S predicate equals
   |∪∪D| < n, i.e. omission with f = n − 1. *)
let detector_s_equals_wait_free_omission () =
  let omission_wait_free =
    P.make ~name:"cumulative<n" ~doc:"|∪∪D| < n" (fun h ->
        if
          Rrfd.Pset.cardinal (Rrfd.Fault_history.cumulative_union h)
          < Rrfd.Fault_history.n h
        then None
        else Some "union covers everyone")
  in
  implies "S ⇒ |∪∪D| < n" P.detector_s omission_wait_free;
  implies "|∪∪D| < n ⇒ S" omission_wait_free P.detector_s

let sampled_agrees_with_exhaustive () =
  let rng = Dsim.Rng.create 17 in
  (* positive direction on a bigger system *)
  (match
     S.check_sampled rng ~samples:300 ~rounds:3
       ~gen:(fun rng -> Rrfd.Detector_gen.crash rng ~n:6 ~f:2)
       ~n:6 (P.crash ~f:2) (P.omission ~f:2)
   with
  | S.Implies -> ()
  | S.Counterexample _ -> Alcotest.fail "crash ⇒ omission refuted by sampling");
  (* negative direction found by sampling *)
  match
    S.check_sampled rng ~samples:300 ~rounds:3
      ~gen:(fun rng -> Rrfd.Detector_gen.omission rng ~n:6 ~f:2)
      ~n:6 (P.omission ~f:2) (P.crash ~f:2)
  with
  | S.Counterexample _ -> ()
  | S.Implies -> Alcotest.fail "sampling missed an easy counterexample"

let model_generators_match_their_predicates () =
  (* Every packaged model's canonical generator satisfies its own predicate. *)
  let rng = Dsim.Rng.create 23 in
  List.iter
    (fun m ->
      match
        S.check_sampled rng ~samples:100 ~rounds:3
          ~gen:m.Rrfd.Model.generator ~n:5 Rrfd.Predicate.always
          m.Rrfd.Model.predicate
      with
      | S.Implies -> ()
      | S.Counterexample h ->
        Alcotest.failf "%s: generator broke its predicate:@ %a"
          m.Rrfd.Model.name Rrfd.Fault_history.pp h)
    (Rrfd.Model.all ~n:5 ~f:2)

(* ------------------------------------------------------------------ *)
(* qcheck properties of the checkers themselves.                       *)
(* ------------------------------------------------------------------ *)

(* A varied pool of named predicates; properties draw indices into it. *)
let pool =
  [|
    ("true", P.always);
    ("no-self", P.no_self_suspicion);
    ("crash-closure", P.crash_closure);
    ("someone-seen", P.someone_seen_by_all);
    ("antisym", P.antisymmetric_misses);
    ("detector-s", P.detector_s);
    ("eq5", P.identical_views);
    ("kset:k=1", P.k_set ~k:1);
    ("kset:k=2", P.k_set ~k:2);
    ("async:f=1", P.async_resilient ~f:1);
    ("async:f=2", P.async_resilient ~f:2);
    ("omission:f=1", P.omission ~f:1);
    ("omission:f=2", P.omission ~f:2);
    ("crash:f=1", P.crash ~f:1);
    ("shm:f=1", P.shared_memory ~f:1);
    ("shm-alt:f=1", P.shared_memory_alt ~f:1);
    ("snapshot:f=1", P.snapshot ~f:1);
    ("async-mixed:f=1,t=2", P.async_mixed ~f:1 ~t:2);
  |]

let reflexivity_property =
  QCheck.Test.make ~name:"check_exhaustive is reflexive" ~count:18
    QCheck.(int_bound (Array.length pool - 1))
    (fun i ->
      let _, p = pool.(i) in
      S.check_exhaustive ~n:3 ~rounds:1 p p = S.Implies)

(* With one fixed sample set, "no sampled history satisfies a but not b"
   is a transitive relation — a theorem, provided every pairwise check
   sees the *same* samples.  Identically-seeded fresh RNGs guarantee
   that (check_sampled splits its argument per sample, deterministic in
   the seed). *)
let sampled_implies a b =
  S.check_sampled (Dsim.Rng.create 77) ~samples:60 ~rounds:2
    ~gen:(fun rng -> Rrfd.Detector_gen.async rng ~n:4 ~f:3)
    ~n:4 a b
  = S.Implies

let transitivity_property =
  QCheck.Test.make ~name:"sampled Implies is transitive on a fixed sample set"
    ~count:120
    QCheck.(
      triple
        (int_bound (Array.length pool - 1))
        (int_bound (Array.length pool - 1))
        (int_bound (Array.length pool - 1)))
    (fun (i, j, k) ->
      let _, a = pool.(i) and _, b = pool.(j) and _, c = pool.(k) in
      (not (sampled_implies a b && sampled_implies b c))
      || sampled_implies a c)

(* Regression pin: the first counterexample the exhaustive walk reports
   for a known non-implication must stay exactly this history (the
   enumeration order is part of the artifact-replay contract). *)
let pinned_counterexample () =
  match S.check_exhaustive ~n:3 ~rounds:2 (P.omission ~f:1) (P.crash ~f:1) with
  | S.Implies -> Alcotest.fail "omission:f=1 ⇒ crash:f=1 should be refuted"
  | S.Counterexample h ->
    Alcotest.(check string)
      "first counterexample pinned" "n=3;1:{}{}{1};2:{}{}{}"
      (Rrfd.Fault_history.to_string_compact h);
    Alcotest.(check bool) "satisfies the left side" true
      (P.holds (P.omission ~f:1) h);
    Alcotest.(check bool) "violates the right side" false
      (P.holds (P.crash ~f:1) h)

(* ------------------------------------------------------------------ *)
(* The named-predicate lattice (E26's order oracle).                   *)
(* ------------------------------------------------------------------ *)

let small_named =
  [
    ("true", P.always);
    ("async", P.async_resilient ~f:1);
    ("someone-seen", P.someone_seen_by_all);
    ("shm", P.shared_memory ~f:1);
    ("omission", P.omission ~f:1);
    ("crash", P.crash ~f:1);
  ]

let small_lattice = lazy (S.lattice ~n:3 ~rounds:2 small_named)

(* The bitset lattice must answer every pair exactly as the pairwise
   exhaustive walk does — same space, same verdicts. *)
let lattice_agrees_with_check_exhaustive () =
  let lat = Lazy.force small_lattice in
  List.iter
    (fun (na, pa) ->
      List.iter
        (fun (nb, pb) ->
          let expected =
            match S.check_exhaustive ~n:3 ~rounds:2 pa pb with
            | S.Implies -> true
            | S.Counterexample _ -> false
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s ⇒ %s" na nb)
            expected (S.implies lat na nb))
        small_named)
    small_named

let lattice_neighbours () =
  let lat = Lazy.force small_lattice in
  Alcotest.(check (list string))
    "covers below omission" [ "crash" ]
    (S.immediate_stronger lat "omission");
  Alcotest.(check (list string))
    "covers above crash" [ "omission" ]
    (S.immediate_weaker lat "crash");
  Alcotest.(check (list string))
    "covers below true" [ "async"; "someone-seen" ]
    (S.immediate_stronger lat "true");
  Alcotest.(check bool) "shm strictly stronger than async" true
    (S.strictly_stronger lat "shm" "async");
  Alcotest.(check bool) "async not stronger than shm" false
    (S.strictly_stronger lat "async" "shm")

let lattice_meet_and_frontier () =
  let lat = Lazy.force small_lattice in
  (* shm is exactly async ∧ someone-seen: the conjunction implies it,
     either conjunct alone does not. *)
  Alcotest.(check bool) "async ∧ someone-seen ⇒ shm" true
    (S.meet_implies lat [ "async"; "someone-seen" ] "shm");
  Alcotest.(check bool) "async alone ⇏ shm" false
    (S.meet_implies lat [ "async" ] "shm");
  Alcotest.(check bool) "empty meet is true" true
    (S.meet_implies lat [] "true");
  Alcotest.(check (list string))
    "redundant conjuncts dropped" [ "crash" ]
    (S.minimal_conjuncts lat [ "true"; "async"; "omission"; "crash" ]);
  Alcotest.(check (list string))
    "conjunction of incomparables kept" [ "async"; "someone-seen" ]
    (S.minimal_conjuncts lat [ "true"; "async"; "someone-seen" ]);
  Alcotest.(check (list string))
    "weakest of a chain plus branch" [ "shm" ]
    (S.weakest lat [ "crash"; "omission"; "shm" ]);
  (* omission:f=1 confines misses to one faulty set, so |⋃D| ≤ 1 < n:
     it is strictly stronger than someone-seen and drops out. *)
  Alcotest.(check (list string))
    "dominated members drop out" [ "someone-seen" ]
    (S.weakest lat [ "someone-seen"; "omission"; "crash" ]);
  Alcotest.(check (list string))
    "incomparables are all weakest" [ "async"; "someone-seen" ]
    (S.weakest lat [ "async"; "someone-seen"; "crash" ])

let tests =
  [
    Alcotest.test_case "lattice positive edges" `Slow lattice_positive;
    Alcotest.test_case "lattice refuted edges" `Slow lattice_negative;
    Alcotest.test_case "item 6 equivalence" `Slow detector_s_equals_wait_free_omission;
    Alcotest.test_case "sampled checks" `Quick sampled_agrees_with_exhaustive;
    Alcotest.test_case "model generators" `Quick model_generators_match_their_predicates;
    Alcotest.test_case "pinned counterexample" `Quick pinned_counterexample;
    Alcotest.test_case "lattice vs check_exhaustive" `Slow
      lattice_agrees_with_check_exhaustive;
    Alcotest.test_case "lattice neighbours" `Slow lattice_neighbours;
    Alcotest.test_case "lattice meet and frontier" `Slow
      lattice_meet_and_frontier;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ reflexivity_property; transitivity_property ]
