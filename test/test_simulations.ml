(* Theorems 4.1 and 4.3: the synchronous-from-asynchronous simulations. *)

module Pset = Rrfd.Pset

let omission_budget () =
  Alcotest.(check int) "⌊7/2⌋" 3 (Rrfd.Sim_omission.budget ~f:7 ~k:2);
  Alcotest.(check int) "⌊6/3⌋" 2 (Rrfd.Sim_omission.budget ~f:6 ~k:3);
  Alcotest.check_raises "f < k rejected"
    (Invalid_argument "Sim_omission.budget: need f ≥ k > 0") (fun () ->
      ignore (Rrfd.Sim_omission.budget ~f:1 ~k:2))

let omission_simulation_property =
  QCheck.Test.make
    ~name:"Thm 4.1: snapshot histories with k failures stay within omission-f"
    ~count:400
    (Test_support.sized_seed_plus ~min_n:3 ~max_n:12
       QCheck.(pair (int_range 1 3) (int_range 1 3)))
    (fun (n, seed, (k_raw, mult)) ->
      let k = 1 + (k_raw mod (n - 1)) in
      let f = min (n - 1) (k * mult) in
      if f < k then true
      else begin
        let rng = Test_support.rng_of seed in
        let inputs = Array.init n Fun.id in
        let result =
          Rrfd.Sim_omission.simulate ~n ~f ~k
            ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
            ~detector:(Rrfd.Detector_gen.iis rng ~n ~f:k)
            ()
        in
        match result.Rrfd.Sim_omission.omission_violation with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d k=%d: %s" n f k reason
      end)

let run_crash_sim ~n ~k ~sync_rounds ~seed =
  let rng = Test_support.rng_of seed in
  let inputs = Array.init n (fun i -> 100 + i) in
  let sync = Syncnet.Flood.min_flood ~inputs ~horizon:sync_rounds in
  let algorithm = Rrfd.Sim_crash.algorithm ~sync in
  let detector = Rrfd.Detector_gen.iis rng ~n ~f:k in
  let states, _async_history =
    Rrfd.Engine.states_after ~n
      ~rounds:(Rrfd.Sim_crash.async_rounds ~sync_rounds)
      ~algorithm ~detector ()
  in
  (states, inputs, algorithm)

let crash_simulation_small () =
  let states, _, _ = run_crash_sim ~n:4 ~k:1 ~sync_rounds:3 ~seed:42 in
  Array.iter
    (fun s ->
      Alcotest.(check int) "three simulated rounds" 3
        (Rrfd.Sim_crash.sync_rounds_completed s);
      Alcotest.(check int) "no missing witnesses" 0
        (Rrfd.Sim_crash.missing_witnesses s))
    states;
  Alcotest.(check (option string)) "simulated history is a crash history" None
    (Rrfd.Sim_crash.check_simulated ~f:3 ~k:1 states)

let crash_simulation_property =
  QCheck.Test.make
    ~name:
      "Thm 4.3: 3k async rounds simulate ⌊f/k⌋ synchronous crash rounds"
    ~count:300
    (Test_support.sized_seed_plus ~min_n:3 ~max_n:10 QCheck.(int_range 1 2))
    (fun (n, seed, k_raw) ->
      let k = 1 + (k_raw mod (n - 2)) in
      let sync_rounds = 2 in
      let f = k * sync_rounds in
      let states, _, _ = run_crash_sim ~n ~k ~sync_rounds ~seed in
      let missing =
        Array.fold_left
          (fun acc s -> acc + Rrfd.Sim_crash.missing_witnesses s)
          0 states
      in
      if missing > 0 then
        QCheck.Test.fail_reportf "missing witnesses: %d" missing
      else
        match Rrfd.Sim_crash.check_simulated ~f ~k states with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d k=%d: %s" n k reason)

let crash_simulation_preserves_flooding =
  (* Flooding for R simulated rounds with c committed crashes yields at most
     ⌊c/R⌋ + 1 distinct decisions — one extra value per full crash chain.
     The simulation commits at most k = 1 crash per round, so this is the
     Corollary 4.4 shape: R rounds under a k-failure asynchronous adversary
     behave like an R-round synchronous crash execution. *)
  QCheck.Test.make
    ~name:"simulated flooding obeys the ⌊c/R⌋+1 agreement bound (Cor 4.4 shape)"
    ~count:200
    (Test_support.sized_seed ~min_n:4 ~max_n:9 ())
    (fun (n, seed) ->
      let k = 1 in
      let sync_rounds = 3 in
      let states, inputs, algorithm = run_crash_sim ~n ~k ~sync_rounds ~seed in
      let decisions = Array.map algorithm.Rrfd.Algorithm.decide states in
      let history = Rrfd.Sim_crash.simulated_history states in
      let crashes =
        Pset.cardinal (Rrfd.Fault_history.cumulative_union history)
      in
      let bound = (crashes / sync_rounds) + 1 in
      let crashed =
        Array.to_list states
        |> List.mapi (fun i s -> (i, Rrfd.Sim_crash.self_crashed s))
        |> List.filter_map (fun (i, c) -> if c then Some i else None)
        |> Pset.of_list
      in
      match
        Agreement_check.kset ~allow_undecided:crashed ~k:bound ~inputs decisions
      with
      | None -> true
      | Some reason ->
        QCheck.Test.fail_reportf "n=%d crashes=%d bound=%d: %s" n crashes bound
          reason)

let tests =
  [
    Alcotest.test_case "omission budget" `Quick omission_budget;
    Alcotest.test_case "crash simulation, small run" `Quick crash_simulation_small;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        omission_simulation_property;
        crash_simulation_property;
        crash_simulation_preserves_flooding;
      ]
