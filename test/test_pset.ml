(* Unit and property tests for Rrfd.Pset. *)

module Pset = Rrfd.Pset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let set testable_name l = Alcotest.check (Alcotest.list Alcotest.int) testable_name l

let basic () =
  check "empty has nothing" false (Pset.mem 0 Pset.empty);
  check_int "empty cardinal" 0 (Pset.cardinal Pset.empty);
  let s = Pset.of_list [ 3; 1; 4; 1 ] in
  check_int "duplicates collapse" 3 (Pset.cardinal s);
  set "sorted elements" [ 1; 3; 4 ] (Pset.to_list s);
  check "mem present" true (Pset.mem 4 s);
  check "mem absent" false (Pset.mem 2 s);
  check "remove" false (Pset.mem 3 (Pset.remove 3 s));
  check_int "full n" 7 (Pset.cardinal (Pset.full 7))

let algebra () =
  let a = Pset.of_list [ 0; 1; 2 ] and b = Pset.of_list [ 2; 3 ] in
  set "union" [ 0; 1; 2; 3 ] (Pset.to_list (Pset.union a b));
  set "inter" [ 2 ] (Pset.to_list (Pset.inter a b));
  set "diff" [ 0; 1 ] (Pset.to_list (Pset.diff a b));
  check "subset yes" true (Pset.subset (Pset.of_list [ 1 ]) a);
  check "subset no" false (Pset.subset b a);
  check "disjoint no" false (Pset.disjoint a b);
  check "disjoint yes" true (Pset.disjoint (Pset.of_list [ 0 ]) (Pset.of_list [ 5 ]))

let extrema () =
  let s = Pset.of_list [ 5; 2; 9 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Pset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 9) (Pset.max_elt s);
  Alcotest.(check (option int)) "min empty" None (Pset.min_elt Pset.empty);
  check_int "nth 0" 2 (Pset.choose_nth s 0);
  check_int "nth 2" 9 (Pset.choose_nth s 2);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Pset.choose_nth: index 3 out of [0,3)") (fun () ->
      ignore (Pset.choose_nth s 3))

let enumeration () =
  let s = Pset.full 4 in
  check_int "subsets count" 16 (List.length (Pset.subsets s));
  check_int "k-subsets count" 6 (List.length (Pset.subsets_of_size s 2));
  List.iter
    (fun sub -> check "subset of s" true (Pset.subset sub s))
    (Pset.subsets s);
  List.iter
    (fun sub -> check_int "size 2" 2 (Pset.cardinal sub))
    (Pset.subsets_of_size s 2)

let out_of_range () =
  Alcotest.check_raises "negative id"
    (Invalid_argument "Pset: process id -1 out of [0,62)") (fun () ->
      ignore (Pset.singleton (-1)));
  Alcotest.check_raises "too large full"
    (Invalid_argument "Pset.full: size 63 out of [0,62]") (fun () ->
      ignore (Pset.full 63));
  Alcotest.check_raises "subset size too large"
    (Invalid_argument "Pset.random_subset_of_size: k 5 out of [0,3]") (fun () ->
      let rng = Dsim.Rng.create 7 in
      ignore (Pset.random_subset_of_size rng (Pset.full 3) 5))

let qcheck_props =
  let open QCheck in
  let gen_set =
    let open Gen in
    map Pset.of_list (list_size (int_bound 10) (int_bound (Pset.max_universe - 1)))
  in
  let arb_set = make ~print:Pset.to_string gen_set in
  [
    Test.make ~name:"union commutes" ~count:500 (pair arb_set arb_set)
      (fun (a, b) -> Pset.equal (Pset.union a b) (Pset.union b a));
    Test.make ~name:"inter absorbs union" ~count:500 (pair arb_set arb_set)
      (fun (a, b) -> Pset.equal (Pset.inter a (Pset.union a b)) a);
    Test.make ~name:"diff then union restores superset" ~count:500
      (pair arb_set arb_set) (fun (a, b) ->
        Pset.subset a (Pset.union (Pset.diff a b) (Pset.inter a b)));
    Test.make ~name:"cardinal = length of to_list" ~count:500 arb_set (fun s ->
        Pset.cardinal s = List.length (Pset.to_list s));
    Test.make ~name:"fold visits ascending" ~count:500 arb_set (fun s ->
        let l = List.rev (Pset.fold (fun p acc -> p :: acc) s []) in
        l = List.sort compare l);
    Test.make ~name:"random_subset_of_size has requested size" ~count:300
      (pair arb_set small_nat) (fun (s, k) ->
        let rng = Dsim.Rng.create (Pset.cardinal s + k) in
        let k = min k (Pset.cardinal s) in
        let sub = Pset.random_subset_of_size rng s k in
        Pset.cardinal sub = k && Pset.subset sub s);
  ]

let tests =
  [
    Alcotest.test_case "basic" `Quick basic;
    Alcotest.test_case "algebra" `Quick algebra;
    Alcotest.test_case "extrema" `Quick extrema;
    Alcotest.test_case "enumeration" `Quick enumeration;
    Alcotest.test_case "out-of-range" `Quick out_of_range;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
