(* Unit and property tests for Rrfd.Pset.

   Pset has two representations behind one abstract type — a one-word
   immediate int for ids below [small_universe] and a canonical
   multi-word array above — so beyond the basic algebra the suite
   drives both widths through identical op sequences (a shift-by-64
   differential), checks them against a Stdlib Set model, and
   concentrates qcheck traffic on the 61…70 promotion boundary. *)

module Pset = Rrfd.Pset
module IntSet = Set.Make (Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let set testable_name l = Alcotest.check (Alcotest.list Alcotest.int) testable_name l

let basic () =
  check "empty has nothing" false (Pset.mem 0 Pset.empty);
  check_int "empty cardinal" 0 (Pset.cardinal Pset.empty);
  let s = Pset.of_list [ 3; 1; 4; 1 ] in
  check_int "duplicates collapse" 3 (Pset.cardinal s);
  set "sorted elements" [ 1; 3; 4 ] (Pset.to_list s);
  check "mem present" true (Pset.mem 4 s);
  check "mem absent" false (Pset.mem 2 s);
  check "remove" false (Pset.mem 3 (Pset.remove 3 s));
  check_int "full n" 7 (Pset.cardinal (Pset.full 7))

let algebra () =
  let a = Pset.of_list [ 0; 1; 2 ] and b = Pset.of_list [ 2; 3 ] in
  set "union" [ 0; 1; 2; 3 ] (Pset.to_list (Pset.union a b));
  set "inter" [ 2 ] (Pset.to_list (Pset.inter a b));
  set "diff" [ 0; 1 ] (Pset.to_list (Pset.diff a b));
  check "subset yes" true (Pset.subset (Pset.of_list [ 1 ]) a);
  check "subset no" false (Pset.subset b a);
  check "disjoint no" false (Pset.disjoint a b);
  check "disjoint yes" true (Pset.disjoint (Pset.of_list [ 0 ]) (Pset.of_list [ 5 ]))

let extrema () =
  let s = Pset.of_list [ 5; 2; 9 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Pset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 9) (Pset.max_elt s);
  Alcotest.(check (option int)) "min empty" None (Pset.min_elt Pset.empty);
  check_int "nth 0" 2 (Pset.choose_nth s 0);
  check_int "nth 2" 9 (Pset.choose_nth s 2);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Pset.choose_nth: index 3 out of [0,3)") (fun () ->
      ignore (Pset.choose_nth s 3))

let enumeration () =
  let s = Pset.full 4 in
  check_int "subsets count" 16 (List.length (Pset.subsets s));
  check_int "k-subsets count" 6 (List.length (Pset.subsets_of_size s 2));
  List.iter
    (fun sub -> check "subset of s" true (Pset.subset sub s))
    (Pset.subsets s);
  List.iter
    (fun sub -> check_int "size 2" 2 (Pset.cardinal sub))
    (Pset.subsets_of_size s 2)

let out_of_range () =
  let bad_id p = Printf.sprintf "Pset: process id %d out of [0,%d)" p Pset.max_universe in
  Alcotest.check_raises "negative id" (Invalid_argument (bad_id (-1))) (fun () ->
      ignore (Pset.singleton (-1)));
  Alcotest.check_raises "too large full"
    (Invalid_argument
       (Printf.sprintf "Pset.full: size %d out of [0,%d]" (Pset.max_universe + 1)
          Pset.max_universe)) (fun () -> ignore (Pset.full (Pset.max_universe + 1)));
  Alcotest.check_raises "subset size too large"
    (Invalid_argument "Pset.random_subset_of_size: k 5 out of [0,3]") (fun () ->
      let rng = Dsim.Rng.create 7 in
      ignore (Pset.random_subset_of_size rng (Pset.full 3) 5));
  (* mem range-checks like every other entry point — it used to return
     a silent false for out-of-range ids. *)
  Alcotest.check_raises "mem negative id" (Invalid_argument (bad_id (-1)))
    (fun () -> ignore (Pset.mem (-1) Pset.empty));
  Alcotest.check_raises "mem past max_universe"
    (Invalid_argument (bad_id Pset.max_universe)) (fun () ->
      ignore (Pset.mem Pset.max_universe (Pset.full 4)));
  (* In-range ids past a set's width are fine and simply absent. *)
  check "mem beyond small width" false (Pset.mem 100 (Pset.full 4));
  check "mem beyond wide width" false (Pset.mem 500 (Pset.full 70))

(* Range checks are a property of the id, not of the receiving set's
   representation: mem/add/remove must raise the same error on the
   immediate-int and multi-word forms, and ids 61/62 — the last small id
   and the first wide one — are ordinary in-range values on both. *)
let out_of_range_both_representations () =
  let bad_id p =
    Printf.sprintf "Pset: process id %d out of [0,%d)" p Pset.max_universe
  in
  let reprs =
    [ ("small", Pset.full 4); ("wide", Pset.full 70) ]
  in
  List.iter
    (fun (label, s) ->
      List.iter
        (fun p ->
          let expect = Invalid_argument (bad_id p) in
          Alcotest.check_raises
            (Printf.sprintf "%s: mem %d raises" label p)
            expect
            (fun () -> ignore (Pset.mem p s));
          Alcotest.check_raises
            (Printf.sprintf "%s: add %d raises" label p)
            expect
            (fun () -> ignore (Pset.add p s));
          Alcotest.check_raises
            (Printf.sprintf "%s: remove %d raises" label p)
            expect
            (fun () -> ignore (Pset.remove p s)))
        [ -1; Pset.max_universe; Pset.max_universe + 61 ])
    reprs;
  (* Exactly at the 61/62 promotion boundary, on both representations:
     no raise, and the width adjusts rather than the range check. *)
  List.iter
    (fun (label, s) ->
      check (label ^ ": mem 61 in-range") (Pset.equal s (Pset.full 70))
        (Pset.mem 61 s);
      check (label ^ ": mem 62 in-range") (Pset.equal s (Pset.full 70))
        (Pset.mem 62 s);
      check (label ^ ": add 61 lands") true (Pset.mem 61 (Pset.add 61 s));
      check (label ^ ": add 62 lands") true (Pset.mem 62 (Pset.add 62 s));
      check (label ^ ": remove 62 clears") false
        (Pset.mem 62 (Pset.remove 62 (Pset.add 62 s))))
    reprs;
  check "add 61 keeps the small form small" true
    (Pset.is_small (Pset.add 61 (Pset.full 4)));
  check "add 62 promotes the small form" false
    (Pset.is_small (Pset.add 62 (Pset.full 4)));
  check "remove 62 from a small set is a small no-op" true
    (let s = Pset.full 4 in
     Pset.is_small (Pset.remove 62 s) && Pset.equal s (Pset.remove 62 s));
  check "remove 61 works on the wide form" false
    (Pset.mem 61 (Pset.remove 61 (Pset.full 70)))

(* The promotion boundary: small_universe = 62 splits the id space into
   the immediate-int and multi-word representations. *)
let representation () =
  check_int "small_universe" 62 Pset.small_universe;
  check "empty is small" true (Pset.is_small Pset.empty);
  check "61 is small" true (Pset.is_small (Pset.singleton 61));
  check "62 is wide" false (Pset.is_small (Pset.singleton 62));
  check "full 62 is small" true (Pset.is_small (Pset.full 62));
  check "full 63 is wide" false (Pset.is_small (Pset.full 63));
  check "add 62 promotes" false (Pset.is_small (Pset.add 62 (Pset.full 10)));
  (* Canonicity: any op whose result fits one word collapses back to the
     immediate representation, so equality stays structural. *)
  check "remove 62 demotes" true
    (Pset.is_small (Pset.remove 62 (Pset.add 62 (Pset.full 10))));
  check "inter demotes" true
    (Pset.is_small (Pset.inter (Pset.full 70) (Pset.full 10)));
  check "diff demotes" true
    (Pset.is_small
       (Pset.diff (Pset.full 70) (Pset.of_list [ 62; 63; 64; 65; 66; 67; 68; 69 ])));
  check "filter demotes" true
    (Pset.is_small (Pset.filter (fun p -> p < 5) (Pset.full 70)));
  check "demoted equals small" true
    (Pset.equal (Pset.full 10) (Pset.remove 62 (Pset.add 62 (Pset.full 10))))

let wide_basics () =
  let n = 200 in
  let s = Pset.full n in
  check_int "full 200 cardinal" n (Pset.cardinal s);
  Alcotest.(check (option int)) "max" (Some (n - 1)) (Pset.max_elt s);
  Alcotest.(check (option int)) "min" (Some 0) (Pset.min_elt s);
  check_int "nth 150" 150 (Pset.choose_nth s 150);
  check "mem 199" true (Pset.mem 199 s);
  check "subset of itself" true (Pset.subset s s);
  check "full 62 subset full 200" true (Pset.subset (Pset.full 62) s);
  let t = Pset.diff s (Pset.full 62) in
  check_int "diff cardinal" (n - 62) (Pset.cardinal t);
  check "disjoint halves" true (Pset.disjoint t (Pset.full 62));
  check "union restores" true (Pset.equal s (Pset.union t (Pset.full 62)));
  let sparse = Pset.of_list [ 0; 61; 62; 123; 124; 199 ] in
  set "sparse to_list" [ 0; 61; 62; 123; 124; 199 ] (Pset.to_list sparse);
  check_int "sparse nth 3" 123 (Pset.choose_nth sparse 3);
  check "compare consistent" true (Pset.compare s s = 0);
  check "small < wide" true (Pset.compare (Pset.full 62) s < 0)

let qcheck_props =
  let open QCheck in
  (* Ids concentrated around the 61…70 word boundary, with enough spread
     to cover multi-word sets and trailing-word normalization. *)
  let gen_id =
    Gen.(
      frequency
        [ (3, int_bound 61); (4, int_range 55 70); (2, int_range 62 130); (1, int_range 0 260) ])
  in
  let gen_ids = Gen.(list_size (int_bound 12) gen_id) in
  let gen_set = Gen.map Pset.of_list gen_ids in
  let arb_set = make ~print:Pset.to_string gen_set in
  let arb_ids = make ~print:Print.(list int) gen_ids in
  let small_ids = Gen.(list_size (int_bound 10) (int_bound 61)) in
  let arb_small = make ~print:Pset.to_string (Gen.map Pset.of_list small_ids) in
  (* Drive the one-word and multi-word paths through the same op
     sequence: shifting every id by 64 lands the whole computation in
     the wide representation, and the results must track. *)
  let shift64 s = Pset.of_list (List.map (fun p -> p + 64) (Pset.to_list s)) in
  [
    Test.make ~name:"union commutes" ~count:500 (pair arb_set arb_set)
      (fun (a, b) -> Pset.equal (Pset.union a b) (Pset.union b a));
    Test.make ~name:"inter absorbs union" ~count:500 (pair arb_set arb_set)
      (fun (a, b) -> Pset.equal (Pset.inter a (Pset.union a b)) a);
    Test.make ~name:"diff then union restores superset" ~count:500
      (pair arb_set arb_set) (fun (a, b) ->
        Pset.subset a (Pset.union (Pset.diff a b) (Pset.inter a b)));
    Test.make ~name:"cardinal = length of to_list" ~count:500 arb_set (fun s ->
        Pset.cardinal s = List.length (Pset.to_list s));
    Test.make ~name:"fold visits ascending" ~count:500 arb_set (fun s ->
        let l = List.rev (Pset.fold (fun p acc -> p :: acc) s []) in
        l = List.sort compare l);
    Test.make ~name:"random_subset_of_size has requested size" ~count:300
      (pair arb_set small_nat) (fun (s, k) ->
        let rng = Dsim.Rng.create (Pset.cardinal s + k) in
        let k = min k (Pset.cardinal s) in
        let sub = Pset.random_subset_of_size rng s k in
        Pset.cardinal sub = k && Pset.subset sub s);
    (* Model oracle: every observation agrees with Stdlib's Set. *)
    Test.make ~name:"model: of_list/to_list" ~count:500 arb_ids (fun ids ->
        Pset.to_list (Pset.of_list ids) = IntSet.elements (IntSet.of_list ids));
    Test.make ~name:"model: algebra" ~count:500 (pair arb_ids arb_ids)
      (fun (xs, ys) ->
        let a = Pset.of_list xs and b = Pset.of_list ys in
        let ma = IntSet.of_list xs and mb = IntSet.of_list ys in
        Pset.to_list (Pset.union a b) = IntSet.elements (IntSet.union ma mb)
        && Pset.to_list (Pset.inter a b) = IntSet.elements (IntSet.inter ma mb)
        && Pset.to_list (Pset.diff a b) = IntSet.elements (IntSet.diff ma mb)
        && Pset.subset a b = IntSet.subset ma mb
        && Pset.disjoint a b = IntSet.disjoint ma mb
        && Pset.equal a b = IntSet.equal ma mb
        && Pset.min_elt a = IntSet.min_elt_opt ma
        && Pset.max_elt a = IntSet.max_elt_opt ma);
    Test.make ~name:"model: add/remove/mem" ~count:500
      (pair arb_ids (make ~print:Print.int gen_id))
      (fun (ids, p) ->
        let s = Pset.of_list ids and m = IntSet.of_list ids in
        Pset.mem p s = IntSet.mem p m
        && Pset.to_list (Pset.add p s) = IntSet.elements (IntSet.add p m)
        && Pset.to_list (Pset.remove p s) = IntSet.elements (IntSet.remove p m));
    Test.make ~name:"model: choose_nth enumerates" ~count:300 arb_set (fun s ->
        List.mapi (fun i _ -> Pset.choose_nth s i) (Pset.to_list s) = Pset.to_list s);
    (* Representation invariants. *)
    Test.make ~name:"is_small iff all ids below small_universe" ~count:500
      arb_set (fun s ->
        Pset.is_small s
        = (match Pset.max_elt s with
          | None -> true
          | Some m -> m < Pset.small_universe));
    Test.make ~name:"compare is zero iff equal" ~count:500 (pair arb_set arb_set)
      (fun (a, b) -> Pset.compare a b = 0 = Pset.equal a b);
    (* Width differential: the same op sequence shifted into the wide
       representation gives the shifted result. *)
    Test.make ~name:"differential: union/inter/diff shift-equivariant" ~count:500
      (pair arb_small arb_small) (fun (a, b) ->
        let a' = shift64 a and b' = shift64 b in
        Pset.equal (shift64 (Pset.union a b)) (Pset.union a' b')
        && Pset.equal (shift64 (Pset.inter a b)) (Pset.inter a' b')
        && Pset.equal (shift64 (Pset.diff a b)) (Pset.diff a' b')
        && Pset.subset a b = Pset.subset a' b'
        && Pset.disjoint a b = Pset.disjoint a' b'
        && Pset.cardinal a = Pset.cardinal a');
    Test.make ~name:"differential: extrema/nth shift-equivariant" ~count:300
      arb_small (fun s ->
        let s' = shift64 s in
        Pset.min_elt s' = Option.map (( + ) 64) (Pset.min_elt s)
        && Pset.max_elt s' = Option.map (( + ) 64) (Pset.max_elt s)
        && List.for_all
             (fun i -> Pset.choose_nth s' i = Pset.choose_nth s i + 64)
             (List.mapi (fun i _ -> i) (Pset.to_list s)));
  ]

let tests =
  [
    Alcotest.test_case "basic" `Quick basic;
    Alcotest.test_case "algebra" `Quick algebra;
    Alcotest.test_case "extrema" `Quick extrema;
    Alcotest.test_case "enumeration" `Quick enumeration;
    Alcotest.test_case "out-of-range" `Quick out_of_range;
    Alcotest.test_case "out-of-range on both representations" `Quick
      out_of_range_both_representations;
    Alcotest.test_case "representation boundary" `Quick representation;
    Alcotest.test_case "wide basics" `Quick wide_basics;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
