(* The protocol catalog and its derivations: every entry round-trips
   through the model checker's SUT layer (names, horizons, properties and
   one clean fuzz run each), and the heard-of extraction honours its
   contract — completed prefixes survive [to_history] exactly and the
   induced history never self-suspects. *)

module Catalog = Protocols.Catalog
module H = Rrfd.Fault_history
module Pset = Rrfd.Pset

let ok_spec = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let catalog_well_formed () =
  let names = Catalog.names in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun proto ->
      let name = Catalog.name proto in
      (match Catalog.find name with
      | Some found ->
        Alcotest.(check string) (name ^ " find round-trip") name
          (Catalog.name found)
      | None -> Alcotest.failf "%s not found by its own name" name);
      let n = Catalog.default_n proto in
      let f = Catalog.default_f proto ~n in
      Alcotest.(check bool)
        (name ^ " horizon positive")
        true
        (Catalog.horizon proto ~n ~f >= 1);
      Alcotest.(check bool)
        (name ^ " resilience sane")
        true
        (f >= 0 && f < n))
    Catalog.all;
  Alcotest.(check bool) "unknown name" true (Catalog.find "no-such" = None)

(* Every catalog entry is reachable through the checker's spec grammar and
   derives a SUT whose name and horizon agree with the catalog's. *)
let sut_derivation () =
  List.iter
    (fun proto ->
      let name = Catalog.name proto in
      let sut = ok_spec (Check.Spec.sut name) in
      Alcotest.(check string) (name ^ " SUT name") name (Check.Sut.name sut);
      let n = Catalog.default_n proto in
      let f = Catalog.default_f proto ~n in
      Alcotest.(check int)
        (name ^ " SUT rounds = catalog horizon")
        (Catalog.horizon proto ~n ~f)
        (Check.Sut.rounds sut);
      let props = Check.Spec.default_properties sut in
      Alcotest.(check bool) (name ^ " has default properties") true
        (props <> []);
      List.iter (fun p -> ignore (ok_spec (Check.Spec.property p))) props)
    Catalog.all

(* Catalog invariants: names are unique, every entry declares its fault
   models from the known vocabulary, Byzantine capability is an explicit
   declaration (not a default), and every entry actually executes one
   tiny-n round on every substrate that supports it. *)
let catalog_invariants () =
  let names = Catalog.names in
  Alcotest.(check int)
    "catalog names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun proto ->
      let name = Catalog.name proto in
      let faults = Catalog.faults proto in
      Alcotest.(check bool)
        (name ^ ": declares at least one fault model")
        true (faults <> []);
      List.iter
        (fun fm ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S is known vocabulary" name fm)
            true
            (List.mem fm Catalog.known_faults))
        faults;
      Alcotest.(check int)
        (name ^ ": fault models are not repeated")
        (List.length faults)
        (List.length (List.sort_uniq compare faults)))
    Catalog.all;
  (* Byzantine capability is opt-in and byz-vote opts in: it is the
     accountability construction's protocol, built to survive lying
     members. *)
  let byz_capable =
    List.filter
      (fun p -> List.mem "byzantine" (Catalog.faults p))
      Catalog.all
  in
  Alcotest.(check (list string))
    "exactly the Byzantine-capable entries" [ "byz-vote" ]
    (List.map Catalog.name byz_capable);
  Alcotest.(check bool)
    "byz-vote still handles crashes" true
    (List.mem "crash" (Catalog.faults (Catalog.find_exn "byz-vote")));
  (* One round per substrate per entry, at the entry's own tiny default
     size.  The execution record must be structurally sane everywhere;
     decisions are substrate business, not this test's. *)
  List.iter
    (fun proto ->
      let name = Catalog.name proto in
      let n = Catalog.default_n proto in
      let f = Catalog.default_f proto ~n in
      let quiet =
        Rrfd.Detector.of_schedule ~after:(Array.make n Rrfd.Pset.empty) []
      in
      let sane label (ex : int Rrfd.Substrate.execution) =
        Alcotest.(check int)
          (Printf.sprintf "%s/%s: one decision slot per process" name label)
          n
          (Array.length ex.Rrfd.Substrate.decisions);
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: induced history sized to the run" name label)
          true
          (Rrfd.Fault_history.n ex.Rrfd.Substrate.induced = n
          && Rrfd.Fault_history.rounds ex.Rrfd.Substrate.induced
             = ex.Rrfd.Substrate.rounds_used)
      in
      sane "engine"
        (Catalog.run_engine proto ~max_rounds:1 ~n ~f ~detector:quiet ());
      sane "sync"
        (Catalog.run_sync proto ~rounds:1 ~n ~f
           ~pattern:(Syncnet.Faults.none ~n) ());
      sane "msgnet"
        (Catalog.run_msgnet proto ~rounds:1 ~seed:3 ~n ~f ());
      sane "live" (Catalog.run_live proto ~rounds:1 ~n ~f ()))
    Catalog.all

(* One fuzz run per protocol: under a predicate the protocol is safe for,
   a short Monte-Carlo search must come back clean.  Safety-only for the
   protocols whose liveness needs more than the fuzzed horizon. *)
let fuzz_each_protocol () =
  let safe_configs =
    [
      ("kset-one-round", "kset:k=2", [ "k-agreement:k=2"; "termination" ]);
      ("consensus", "kset:k=1", [ "agreement"; "validity"; "termination" ]);
      ("kset-snapshot", "kset:k=2", [ "k-agreement:k=2"; "termination" ]);
      ("adopt-commit", "true", [ "adopt-commit" ]);
      ("phased-consensus", "true", [ "agreement"; "validity" ]);
      ("early-deciding", "crash:f=1", [ "agreement"; "validity" ]);
      ("flood-consensus", "crash:f=1", [ "agreement"; "validity" ]);
      ("byz-vote", "true", [ "agreement"; "validity" ]);
    ]
  in
  Alcotest.(check (list string))
    "every protocol has a fuzz configuration" (Catalog.names)
    (List.map (fun (name, _, _) -> name) safe_configs);
  List.iter
    (fun (name, predicate, properties) ->
      let proto = Catalog.find_exn name in
      let sut = Check.Sut.of_protocol proto in
      let config : Check.Checker.fuzz_config =
        {
          n = Catalog.default_n proto;
          rounds = Check.Sut.rounds sut;
          trials = 40;
          seed = 11;
          jobs = Some 1;
          attempts = 64;
        }
      in
      match
        Check.Checker.fuzz config ~sut
          ~predicate:(ok_spec (Check.Spec.predicate predicate))
          ~properties:
            (List.map (fun p -> ok_spec (Check.Spec.property p)) properties)
          ()
      with
      | None -> ()
      | Some ce ->
        Alcotest.failf "%s violated under %s: %s" name predicate
          (H.to_string_compact ce.Check.Checker.history))
    safe_configs

(* Heard-of extraction on arbitrary well-formed records: [to_history]
   reproduces every noted round exactly (D(i,r) = complement of the heard
   set), pads unreached rounds with ∅, reports the right completed counts,
   and — since a process always hears itself — never self-suspects. *)
let heard_of_roundtrip =
  QCheck.Test.make
    ~name:"heard-of extraction preserves the completed prefix"
    ~count:200
    (Test_support.sized_seed ~min_n:2 ~max_n:7 ())
    (fun (n, seed) ->
      let rng = Test_support.rng_of seed in
      let max_rounds = 4 in
      let ho = Msgnet.Heard_of.create ~n in
      let completed =
        Array.init n (fun _ -> Dsim.Rng.int rng (max_rounds + 1))
      in
      let heards = Array.make_matrix n max_rounds Pset.empty in
      for i = 0 to n - 1 do
        for round = 1 to completed.(i) do
          let heard = Pset.add i (Pset.random_subset rng (Pset.full n)) in
          heards.(i).(round - 1) <- heard;
          Msgnet.Heard_of.note ho i ~round ~heard ()
        done
      done;
      let hist = Msgnet.Heard_of.to_history ho in
      let horizon = Array.fold_left max 0 completed in
      if H.rounds hist <> horizon then
        QCheck.Test.fail_reportf "history has %d rounds, expected %d"
          (H.rounds hist) horizon;
      if Msgnet.Heard_of.rounds ho <> horizon then
        QCheck.Test.fail_reportf "record reports %d rounds, expected %d"
          (Msgnet.Heard_of.rounds ho) horizon;
      for i = 0 to n - 1 do
        if Msgnet.Heard_of.completed ho i <> completed.(i) then
          QCheck.Test.fail_reportf "p%d completed %d, recorded %d" i
            completed.(i)
            (Msgnet.Heard_of.completed ho i);
        for round = 1 to horizon do
          let d = H.d hist ~proc:i ~round in
          let expected =
            if round <= completed.(i) then
              Pset.diff (Pset.full n) heards.(i).(round - 1)
            else Pset.empty
          in
          if not (Pset.equal d expected) then
            QCheck.Test.fail_reportf
              "p%d round %d: D = %s, expected %s" i round (Pset.to_string d)
              (Pset.to_string expected);
          if Pset.mem i d then
            QCheck.Test.fail_reportf "p%d ∈ D(p%d,%d)" i i round
        done
      done;
      true)

let tests =
  [
    Alcotest.test_case "catalog well-formed" `Quick catalog_well_formed;
    Alcotest.test_case "catalog invariants: names, fault models, substrates"
      `Slow catalog_invariants;
    Alcotest.test_case "SUT derivation agrees with catalog" `Quick
      sut_derivation;
    Alcotest.test_case "one clean fuzz run per protocol" `Slow
      fuzz_each_protocol;
    QCheck_alcotest.to_alcotest heard_of_roundtrip;
  ]
