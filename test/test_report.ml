(* lib/report: the json codec, the regression-check verdicts, and the
   engine work counters the reports carry. *)

module R = Report
module J = Report.Json

let mk_report ?(subjects = []) ?(tables = []) ?speedup () =
  {
    R.version = R.version;
    meta =
      {
        R.seed = 7;
        jobs = 2;
        recommended_jobs = 4;
        git_sha = "abc1234";
        hostname = "host";
      };
    subjects;
    tables;
    speedup;
  }

let json_roundtrip () =
  let stat = { R.count = 3; mean = 1.5; stddev = 0.25; min = 1.0; max = 2.0 } in
  let r =
    mk_report
      ~subjects:
        [
          {
            R.name = "rrfd/kset-one-round n=4";
            ns_per_run = 1234.5;
            alloc_per_run = Some 96.0;
          };
          {
            R.name = "rrfd/floodset n=8 ⌊f/k⌋";
            ns_per_run = 0.125;
            alloc_per_run = None;
          };
        ]
      ~tables:
        [
          {
            R.id = "E6";
            title = "one-round k-set (Thm 3.1)";
            ok = true;
            counters = [ ("rounds", stat); ("messages", stat) ];
          };
          { R.id = "E9"; title = "lower bound"; ok = false; counters = [] };
        ]
      ~speedup:
        {
          R.trials = 100;
          jobs = 2;
          serial_s = 1.5;
          parallel_s = 0.75;
          factor = 2.0;
          identical = true;
        }
      ()
  in
  let r' = R.of_string (R.to_string r) in
  Alcotest.(check bool) "encode/decode round-trip" true (r = r');
  (* no speedup section encodes as null and survives too *)
  let r2 = mk_report () in
  Alcotest.(check bool) "empty report round-trip" true
    (r2 = R.of_string (R.to_string r2));
  (* reports written before the oversubscription guard lack
     recommended_jobs; they decode with the 0 = unrecorded sentinel.
     v1 baselines also predate alloc_per_run: subjects decode with None
     so old baselines stay comparable across the schema bump. *)
  let old =
    {|{"version": 1, "meta": {"seed": 1, "jobs": 2, "git_sha": "x",
       "hostname": "h"},
       "subjects": [{"name": "s", "ns_per_run": 7.0}],
       "tables": [], "speedup": null}|}
  in
  let decoded = R.of_string old in
  Alcotest.(check int) "tolerant recommended_jobs decode" 0
    decoded.R.meta.R.recommended_jobs;
  (match decoded.R.subjects with
  | [ s ] ->
    Alcotest.(check bool) "v1 subject has no alloc estimate" true
      (s.R.alloc_per_run = None)
  | _ -> Alcotest.fail "v1 subject list decoded wrong");
  (* a wrong version is refused *)
  match R.of_string {|{"version": 99, "meta": {}}|} with
  | exception J.Error _ -> ()
  | _ -> Alcotest.fail "accepted schema version 99"

let json_parser () =
  let j =
    J.of_string
      {|{"a": "line\nbreak \"q\" A", "n": [1, -2.5, true, null], "u": "⌊x⌋"}|}
  in
  Alcotest.(check string) "escapes" "line\nbreak \"q\" A" (J.str (J.member "a" j));
  (match J.list (J.member "n" j) with
  | [ a; b; c; d ] ->
    Alcotest.(check int) "int" 1 (J.int a);
    Alcotest.(check (float 0.0)) "float" (-2.5) (J.num b);
    Alcotest.(check bool) "bool" true (J.bool c);
    Alcotest.(check bool) "null reads as nan" true (Float.is_nan (J.num d))
  | _ -> Alcotest.fail "wrong array arity");
  Alcotest.(check string) "utf8 passthrough" "⌊x⌋" (J.str (J.member "u" j));
  Alcotest.(check bool) "absent member is Null" true
    (J.member "zzz" j = J.Null);
  let s = J.to_string (J.String "a\"b\\c\nd\te") in
  Alcotest.(check string) "writer escapes invert" "a\"b\\c\nd\te"
    (J.str (J.of_string s));
  Alcotest.(check bool) "nan writes as null" true
    (J.to_string (J.Number nan) = "null");
  List.iter
    (fun bad ->
      match J.of_string bad with
      | exception J.Error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{} extra"; {|{"a" 1}|}; "" ]

let subject_verdicts () =
  let base ns = mk_report ~subjects:[ { R.name = "s"; ns_per_run = ns; alloc_per_run = None } ] () in
  let run old_ns new_ns =
    R.check ~tolerance_pct:50.0 ~baseline:(base old_ns) ~current:(base new_ns)
  in
  Alcotest.(check bool) "under tolerance" true (R.check_ok (run 100.0 149.0));
  Alcotest.(check bool) "exactly at tolerance" true
    (R.check_ok (run 100.0 150.0));
  let over = run 100.0 151.0 in
  Alcotest.(check bool) "over tolerance fails" false (R.check_ok over);
  Alcotest.(check (list string)) "regressed subject named" [ "s" ]
    over.R.regressions;
  Alcotest.(check bool) "improvement never gates" true
    (R.check_ok (run 100.0 1.0));
  let only name ns = mk_report ~subjects:[ { R.name; ns_per_run = ns; alloc_per_run = None } ] () in
  Alcotest.(check bool) "missing+new subjects don't gate" true
    (R.check_ok
       (R.check ~tolerance_pct:50.0 ~baseline:(only "a" 1.0)
          ~current:(only "b" 2.0)));
  Alcotest.(check bool) "no baseline estimate doesn't gate" true
    (R.check_ok (run nan 100.0))

let table_verdicts () =
  let tab ok =
    mk_report ~tables:[ { R.id = "E1"; title = "t"; ok; counters = [] } ] ()
  in
  let chk b c = R.check ~tolerance_pct:50.0 ~baseline:b ~current:c in
  Alcotest.(check bool) "ok/ok passes" true (R.check_ok (chk (tab true) (tab true)));
  Alcotest.(check bool) "fail/fail passes" true
    (R.check_ok (chk (tab false) (tab false)));
  let broken = chk (tab true) (tab false) in
  Alcotest.(check bool) "flip to failing gates" false (R.check_ok broken);
  Alcotest.(check (list string)) "broken table named" [ "E1" ]
    broken.R.broken_tables;
  let stale = chk (tab false) (tab true) in
  Alcotest.(check bool) "stale baseline status gates" false (R.check_ok stale);
  Alcotest.(check (list string)) "stale table named" [ "E1" ]
    stale.R.stale_tables;
  Alcotest.(check bool) "vanished ok-table gates" false
    (R.check_ok (chk (tab true) (mk_report ())))

let save_load_file () =
  let r = mk_report ~subjects:[ { R.name = "s"; ns_per_run = 42.0; alloc_per_run = None } ] () in
  let path = Filename.temp_file "rrfd_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      R.save path r;
      Alcotest.(check bool) "save/load round-trip" true (R.load path = r))

(* Engine counters against a run small enough to count by hand: n = 4, a
   fixed detector with D(0,r)=D(1,r)=D(2,r)={p3}, D(3,r)=∅ (satisfies the
   k=2 k-set predicate: |∪D − ∩D| = 1 < 2). *)
let engine_counters_hand_computed () =
  let n = 4 in
  let sets =
    [|
      Rrfd.Pset.of_list [ 3 ];
      Rrfd.Pset.of_list [ 3 ];
      Rrfd.Pset.of_list [ 3 ];
      Rrfd.Pset.empty;
    |]
  in
  let inputs = Tasks.Inputs.distinct n in
  let outcome =
    Rrfd.Engine.run ~n
      ~check:(Rrfd.Predicate.k_set ~k:2)
      ~algorithm:(Rrfd.Kset.one_round ~inputs)
      ~detector:(Rrfd.Detector.of_schedule [ sets ])
      ()
  in
  let c = outcome.Rrfd.Engine.counters in
  Alcotest.(check int) "one round" 1 c.Rrfd.Counters.rounds;
  (* three processes hear 4−1 = 3 senders, p3 hears all 4: 3·3 + 4 = 13 *)
  Alcotest.(check int) "messages" 13 c.Rrfd.Counters.messages;
  Alcotest.(check int) "one detector query" 1 c.Rrfd.Counters.detector_queries;
  Alcotest.(check int) "one predicate check" 1 c.Rrfd.Counters.predicate_checks;
  Alcotest.(check int) "rounds counter = rounds_used"
    outcome.Rrfd.Engine.rounds_used c.Rrfd.Counters.rounds;
  (* fixed horizon without a check: 3 of everything, 0 predicate checks *)
  let outcome2 =
    Rrfd.Engine.run ~n ~max_rounds:3 ~stop_when_decided:false
      ~algorithm:(Rrfd.Kset.one_round ~inputs)
      ~detector:(Rrfd.Detector.of_schedule [ sets ])
      ()
  in
  let c2 = outcome2.Rrfd.Engine.counters in
  Alcotest.(check int) "three rounds" 3 c2.Rrfd.Counters.rounds;
  Alcotest.(check int) "messages accumulate" 39 c2.Rrfd.Counters.messages;
  Alcotest.(check int) "three detector queries" 3
    c2.Rrfd.Counters.detector_queries;
  Alcotest.(check int) "no predicate checks" 0 c2.Rrfd.Counters.predicate_checks

let counters_aggregation () =
  let a =
    {
      Rrfd.Counters.rounds = 1;
      messages = 13;
      detector_queries = 1;
      predicate_checks = 1;
    }
  in
  Alcotest.(check bool) "zero is neutral" true
    (Rrfd.Counters.add Rrfd.Counters.zero a = a);
  let b = Rrfd.Counters.add a a in
  Alcotest.(check int) "field-wise sum" 26 b.Rrfd.Counters.messages;
  Alcotest.(check (list string)) "stable field order"
    [ "rounds"; "messages"; "detector-queries"; "predicate-checks" ]
    (List.map fst (Rrfd.Counters.to_fields a));
  (match Experiments.Table.counter_stats [| a; b |] with
  | ("rounds", s) :: rest ->
    Alcotest.(check (float 1e-9)) "rounds mean" 1.5 s.Runtime.Stats.mean;
    let msgs = List.assoc "messages" rest in
    Alcotest.(check (float 1e-9)) "messages mean" 19.5 msgs.Runtime.Stats.mean;
    Alcotest.(check int) "trial count" 2 msgs.Runtime.Stats.count
  | _ -> Alcotest.fail "unexpected counter_stats shape");
  Alcotest.(check bool) "empty trials, empty stats" true
    (Experiments.Table.counter_stats [||] = [])

let tests =
  [
    Alcotest.test_case "report json round-trip" `Quick json_roundtrip;
    Alcotest.test_case "json parser" `Quick json_parser;
    Alcotest.test_case "check: subject verdicts" `Quick subject_verdicts;
    Alcotest.test_case "check: table status" `Quick table_verdicts;
    Alcotest.test_case "save/load" `Quick save_load_file;
    Alcotest.test_case "engine counters (hand-computed)" `Quick
      engine_counters_hand_computed;
    Alcotest.test_case "counters aggregation" `Quick counters_aggregation;
  ]
