(* The experiment registry and table rendering. *)

let ids_unique_and_ordered () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  Alcotest.(check int) "twenty experiments" 20 (List.length ids);
  Alcotest.(check (list string)) "sorted E1..E19 then E21"
    (List.init 19 (fun i -> Printf.sprintf "E%d" (i + 1)) @ [ "E21" ])
    ids;
  Alcotest.(check int) "unique" 20 (List.length (List.sort_uniq compare ids))

let find_is_case_insensitive () =
  (match Experiments.Registry.find "e9" with
  | Some e -> Alcotest.(check string) "found E9" "E9" e.Experiments.Registry.id
  | None -> Alcotest.fail "e9 not found");
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "E99" = None)

let table_ok_detects_failures () =
  let good =
    {
      Experiments.Table.id = "T";
      title = "t";
      claim = "c";
      header = [ "a" ];
      rows = [ [ "yes" ]; [ "1" ] ];
      notes = [];
      counters = [];
    }
  in
  Alcotest.(check bool) "good table" true (Experiments.Table.ok good);
  let bad = { good with Experiments.Table.rows = [ [ "yes" ]; [ "NO" ] ] } in
  Alcotest.(check bool) "bad table" false (Experiments.Table.ok bad)

let cells_format () =
  Alcotest.(check string) "int" "42" (Experiments.Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Experiments.Table.cell_float 3.14159);
  Alcotest.(check string) "bool true" "yes" (Experiments.Table.cell_bool true);
  Alcotest.(check string) "bool false" "NO" (Experiments.Table.cell_bool false)

let every_experiment_runs_tiny () =
  (* Smoke: every registered experiment completes at a minimal trial count
     and produces at least one row. *)
  List.iter
    (fun e ->
      let t = e.Experiments.Registry.run ~seed:1 ~trials:(Some 2) ~jobs:(Some 1) in
      Alcotest.(check bool)
        (e.Experiments.Registry.id ^ " has rows")
        true
        (List.length t.Experiments.Table.rows > 0))
    Experiments.Registry.all

let tests =
  [
    Alcotest.test_case "ids unique and ordered" `Quick ids_unique_and_ordered;
    Alcotest.test_case "find case-insensitive" `Quick find_is_case_insensitive;
    Alcotest.test_case "table ok detection" `Quick table_ok_detects_failures;
    Alcotest.test_case "cell formatting" `Quick cells_format;
    Alcotest.test_case "every experiment runs" `Slow every_experiment_runs_tiny;
  ]
