(* The experiment registry and table rendering. *)

let ids_unique_and_ordered () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  Alcotest.(check int) "twenty-five experiments" 25 (List.length ids);
  Alcotest.(check (list string)) "sorted E1..E19 then E21..E26"
    (List.init 19 (fun i -> Printf.sprintf "E%d" (i + 1))
    @ [ "E21"; "E22"; "E23"; "E24"; "E25"; "E26" ])
    ids;
  Alcotest.(check int) "unique" 25 (List.length (List.sort_uniq compare ids))

let find_is_case_insensitive () =
  (match Experiments.Registry.find "e9" with
  | Some e -> Alcotest.(check string) "found E9" "E9" e.Experiments.Registry.id
  | None -> Alcotest.fail "e9 not found");
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "E99" = None)

let table_ok_detects_failures () =
  let good =
    {
      Experiments.Table.id = "T";
      title = "t";
      claim = "c";
      header = [ "a" ];
      rows = [ [ "yes" ]; [ "1" ] ];
      notes = [];
      counters = [];
    }
  in
  Alcotest.(check bool) "good table" true (Experiments.Table.ok good);
  let bad = { good with Experiments.Table.rows = [ [ "yes" ]; [ "NO" ] ] } in
  Alcotest.(check bool) "bad table" false (Experiments.Table.ok bad)

let cells_format () =
  Alcotest.(check string) "int" "42" (Experiments.Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Experiments.Table.cell_float 3.14159);
  Alcotest.(check string) "bool true" "yes" (Experiments.Table.cell_bool true);
  Alcotest.(check string) "bool false" "NO" (Experiments.Table.cell_bool false)

(* The experiments whose tables must carry per-trial engine-counter
   summaries: everything whose run-loop drives a substrate (the campaign
   experiments and the catalog-driven sync/engine loops). *)
let counter_backed =
  [
    "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E14"; "E17"; "E18"; "E21"; "E22";
    "E23"; "E25"; "E26";
  ]

let every_experiment_runs_tiny () =
  (* Smoke: every registered experiment completes at a minimal trial count
     and produces at least one row, with work counters where promised. *)
  List.iter
    (fun e ->
      let t = e.Experiments.Registry.run ~seed:1 ~trials:(Some 2) ~jobs:(Some 1) in
      Alcotest.(check bool)
        (e.Experiments.Registry.id ^ " has rows")
        true
        (List.length t.Experiments.Table.rows > 0);
      if List.mem e.Experiments.Registry.id counter_backed then (
        Alcotest.(check bool)
          (e.Experiments.Registry.id ^ " has work counters")
          true
          (t.Experiments.Table.counters <> []);
        List.iter
          (fun (_, s) ->
            Alcotest.(check bool)
              (e.Experiments.Registry.id ^ " counter stats sampled")
              true
              (s.Runtime.Stats.count > 0))
          t.Experiments.Table.counters))
    Experiments.Registry.all

let tests =
  [
    Alcotest.test_case "ids unique and ordered" `Quick ids_unique_and_ordered;
    Alcotest.test_case "find case-insensitive" `Quick find_is_case_insensitive;
    Alcotest.test_case "table ok detection" `Quick table_ok_detects_failures;
    Alcotest.test_case "cell formatting" `Quick cells_format;
    Alcotest.test_case "every experiment runs" `Slow every_experiment_runs_tiny;
  ]
