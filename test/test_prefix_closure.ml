(* Prefix-closure of the paper's communication predicates (P1–P5).

   Section 2 defines each model as a predicate over infinite fault
   histories whose finite behaviour is determined round by round; every
   finite prefix of a satisfying history must itself satisfy the
   predicate.  This is exactly what makes per-round rejection sampling in
   Check.Gen and online checking in Engine.run sound, so it gets its own
   property suite: once over arbitrary histories (implication form) and
   once over histories sampled to satisfy the predicate (so the
   implication is exercised non-vacuously). *)

module H = Rrfd.Fault_history
module P = Rrfd.Predicate

let predicates =
  [
    ("P1 omission(f=2)", P.omission ~f:2);
    ("P2 crash(f=2)", P.crash ~f:2);
    ("P3 async(f=2)", P.async_resilient ~f:2);
    ("P4 shared-memory(f=2)", P.shared_memory ~f:2);
    ("P5 snapshot(f=2)", P.snapshot ~f:2);
  ]

(* Every truncation, including the empty prefix, must satisfy [p]. *)
let prefixes_hold p h =
  let rec check r =
    r > H.rounds h
    || (P.holds p (H.truncate h ~rounds:r) && check (r + 1))
  in
  check 0

let closure_arbitrary (label, p) =
  QCheck.Test.make
    ~name:(label ^ " prefix-closed on arbitrary histories")
    ~count:1000
    (Test_support.history_arb ~max_n:5 ())
    (fun h -> (not (P.holds p h)) || prefixes_hold p h)

(* The implication above is vacuous on histories the predicate rejects, so
   also sample histories that satisfy it by construction. *)
let closure_sampled (label, p) =
  QCheck.Test.make
    ~name:(label ^ " prefix-closed on sampled satisfying histories")
    ~count:300
    (Test_support.sized_seed ~min_n:3 ~max_n:6 ())
    (fun (n, seed) ->
      match
        Check.Gen.history (Test_support.rng_of seed) ~n ~rounds:3 ~satisfying:p
      with
      | None -> true (* rejection budget exhausted; next seed *)
      | Some h ->
        if not (P.holds p h) then
          QCheck.Test.fail_reportf "Gen.history broke its predicate on %s"
            (H.to_string_compact h)
        else if not (prefixes_hold p h) then
          QCheck.Test.fail_reportf "prefix of %s escapes %s"
            (H.to_string_compact h) (P.name p)
        else true)

(* Sanity anchor: crash-closure really is violated by un-suspecting, so the
   suite is not passing because nothing ever violates anything. *)
let crash_closure_counterexample () =
  let s = Test_support.pset in
  let h = H.of_rounds ~n:3 [ [| s [ 2 ]; s [ 2 ]; s [ 2 ] |]; [| s []; s []; s [] |] ] in
  Alcotest.(check bool) "full history violates crash-closure" false
    (P.holds P.crash_closure h);
  Alcotest.(check bool) "its 1-round prefix satisfies it" true
    (P.holds P.crash_closure (H.truncate h ~rounds:1))

let tests =
  [
    Alcotest.test_case "crash-closure anchor" `Quick
      crash_closure_counterexample;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      (List.map closure_arbitrary predicates
      @ List.map closure_sampled predicates)
