(* The fault-injection layer: heard-of extraction well-formedness, seed and
   -j determinism, the differential oracle across the whole adversary grid,
   protocol robustness under sustained loss / healing partitions /
   duplication floods, and the network's crash-accounting identity. *)

module Pset = Rrfd.Pset

let grid = Experiments.E21_faultnet.grid

let adversary spec =
  match Msgnet.Adversary.of_spec spec with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let full_info_run ~seed ~spec ~n ~f ~rounds =
  Msgnet.Round_layer.run ~seed ~adversary:(adversary spec) ~n ~f ~rounds
    ~algorithm:(Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
    ()

(* Spec parsing: every grid entry parses, junk does not. *)
let spec_parsing () =
  List.iter (fun spec -> ignore (adversary spec)) grid;
  let bad s =
    match Msgnet.Adversary.of_spec s with
    | Ok _ -> Alcotest.failf "spec %S should not parse" s
    | Error _ -> ()
  in
  bad "gremlins:p=10";
  bad "drop:q=10";
  bad "partition:at=50,heal=10";
  Alcotest.(check bool) "none is noop" true
    (Msgnet.Adversary.is_noop (adversary "none"))

(* Extraction well-formedness: the heard-of record is prefix-closed (heard
   sets exist exactly for rounds 1..completed) and always contains the
   process itself, so the induced history never has i ∈ D(i,r). *)
let extraction_well_formed =
  QCheck.Test.make
    ~name:"extracted histories are prefix-closed and never self-suspect"
    ~count:120
    QCheck.(triple (int_range 3 7) (int_bound 1_000_000) (int_bound 1000))
    (fun (n, seed, which) ->
      let spec = List.nth grid (which mod List.length grid) in
      let f = (n - 1) / 2 in
      let rounds = 3 in
      let r = full_info_run ~seed ~spec ~n ~f ~rounds in
      let ho = r.Msgnet.Round_layer.heard_of in
      for i = 0 to n - 1 do
        let c = Msgnet.Heard_of.completed ho i in
        for round = 1 to rounds do
          match Msgnet.Heard_of.heard ho ~proc:i ~round with
          | Some h ->
            if round > c then
              QCheck.Test.fail_reportf
                "%s: p%d has a heard set for round %d beyond completed=%d"
                spec i round c;
            if not (Pset.mem i h) then
              QCheck.Test.fail_reportf "%s: p%d did not hear itself in round %d"
                spec i round
          | None ->
            if round <= c then
              QCheck.Test.fail_reportf
                "%s: p%d completed %d rounds but round %d is unrecorded" spec i
                c round
        done
      done;
      let hist = r.Msgnet.Round_layer.induced in
      for round = 1 to Rrfd.Fault_history.rounds hist do
        for i = 0 to n - 1 do
          if Pset.mem i (Rrfd.Fault_history.d hist ~proc:i ~round) then
            QCheck.Test.fail_reportf "%s: p%d ∈ D(p%d,%d)" spec i i round
        done
      done;
      true)

(* Determinism: the adversary's damage schedule is a pure function of the
   seed — same seed twice gives the same history, counters and decisions. *)
let seed_determinism =
  QCheck.Test.make ~name:"adversary schedules are deterministic per seed"
    ~count:60
    QCheck.(triple (int_range 3 6) (int_bound 1_000_000) (int_bound 1000))
    (fun (n, seed, which) ->
      let spec = List.nth grid (which mod List.length grid) in
      let f = (n - 1) / 2 in
      let a = full_info_run ~seed ~spec ~n ~f ~rounds:3 in
      let b = full_info_run ~seed ~spec ~n ~f ~rounds:3 in
      Rrfd.Fault_history.equal a.Msgnet.Round_layer.induced
        b.Msgnet.Round_layer.induced
      && a.Msgnet.Round_layer.messages_sent = b.Msgnet.Round_layer.messages_sent
      && a.Msgnet.Round_layer.messages_dropped
         = b.Msgnet.Round_layer.messages_dropped
      && a.Msgnet.Round_layer.messages_duplicated
         = b.Msgnet.Round_layer.messages_duplicated)

(* -j invariance: trials fanned over worker domains through
   Runtime.Campaign extract the same per-trial histories as a serial run —
   the contract behind the @faultnet-smoke byte-compare. *)
let campaign_jobs_invariance () =
  let spec = "drop:p=25+dup:p=15" in
  let adversary = adversary spec in
  let trial ~trial:_ ~rng =
    let seed = Dsim.Rng.bits30 rng in
    let r =
      Msgnet.Round_layer.run ~seed ~adversary ~n:5 ~f:2 ~rounds:3
        ~algorithm:
          (Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct 5))
        ()
    in
    Rrfd.Fault_history.to_string_compact r.Msgnet.Round_layer.induced
  in
  let serial = Runtime.Campaign.run ~jobs:1 ~seed:4 ~trials:16 trial in
  let parallel = Runtime.Campaign.run ~jobs:2 ~seed:4 ~trials:16 trial in
  Alcotest.(check (array string)) "histories identical at -j 1 and -j 2"
    serial parallel

(* The differential oracle over the full matrix: for every n in 3..6 and
   every grid policy, replaying the extracted history through the abstract
   engine reproduces the network's decisions, and the history satisfies the
   layer's guarantee P3 (|D| ≤ f). *)
let differential_matrix () =
  for n = 3 to 6 do
    let f = (n - 1) / 2 in
    List.iteri
      (fun idx spec ->
        let d =
          Msgnet.Round_layer.differential ~seed:(100 + (17 * idx) + n)
            ~adversary:(adversary spec) ~equal:Rrfd.Full_info.equal ~n ~f
            ~rounds:4
            ~algorithm:
              (Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
            ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d %s: replay matches" n spec)
          true d.Msgnet.Round_layer.matched;
        Alcotest.(check bool)
          (Printf.sprintf "n=%d %s: all processes completed" n spec)
          true d.Msgnet.Round_layer.all_completed;
        let held =
          Msgnet.Heard_of.classify ~f
            d.Msgnet.Round_layer.outcome.Msgnet.Round_layer.induced
        in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d %s: P3 holds" n spec)
          true (List.assoc "P3" held))
      grid
  done

(* Heartbeats under sustained loss and under a healing partition: adaptive
   timeouts must drain every live-live suspicion by the horizon. *)
let heartbeat_converges spec seed () =
  let n = 5 in
  let sim = Dsim.Sim.create ~seed () in
  let hb = ref None in
  let deliver _ ~to_ ~from () =
    Msgnet.Heartbeat.beat (Option.get !hb) ~at:to_ ~from
  in
  let net = Msgnet.Network.create ~sim ~n ~adversary:(adversary spec) ~deliver () in
  hb :=
    Some
      (Msgnet.Heartbeat.create ~sim ~n
         ~send_heartbeat:(fun ~from ->
           Msgnet.Network.broadcast net ~from ~self:false ())
         ~interval:3.0 ~initial_timeout:10.0 ~timeout_increment:10.0
         ~horizon:400.0 ());
  Dsim.Sim.run sim;
  let hb = Option.get !hb in
  Alcotest.(check bool)
    (Printf.sprintf "suspicions drained under %s" spec)
    true
    (Msgnet.Heartbeat.converged hb ~among:(Pset.full n));
  if String.length spec >= 9 && String.sub spec 0 9 = "partition" then
    Alcotest.(check bool) "partition caused (then retracted) suspicions" true
      (Msgnet.Heartbeat.false_suspicions hb > 0)

(* CT consensus terminates and stays safe under the same conditions. *)
let ct_converges spec seed () =
  let n = 5 and f = 2 in
  let inputs = Array.init n (fun i -> i mod 3) in
  let r =
    Msgnet.Ct_consensus.run ~seed ~adversary:(adversary spec) ~n ~f ~inputs ()
  in
  Array.iteri
    (fun i d ->
      if d = None then
        Alcotest.failf "p%d undecided under %s (phases=%d)" i spec
          r.Msgnet.Ct_consensus.phases_used)
    r.Msgnet.Ct_consensus.decisions;
  match
    Tasks.Agreement.check ~k:1 ~inputs r.Msgnet.Ct_consensus.decisions
  with
  | None -> ()
  | Some reason -> Alcotest.failf "agreement violated under %s: %s" spec reason

(* Regression: adopted timestamps must strictly outrank initial ones.
   Phases count from 0, so [ts <- phase] (instead of [phase + 1]) let this
   seed decide both 0 and 1 under 30% loss: c0 locked 0 at phase 0 with a
   majority of acks, but when c1 read its own majority at phase 1 the
   acked estimates tied at ts 0 with p1's never-adopted input, and the
   tie-break proposed 1. *)
let phase0_lock_regression () = ct_converges "drop:p=30" 234049724 ()

(* Duplication floods must not inflate quorums: CT stays safe and ABD
   atomic when most messages arrive in quadruplicate. *)
let duplication_safety () =
  let spec = "dup:p=60,copies=3" in
  ct_converges spec 11 ();
  let sim = Dsim.Sim.create ~seed:12 () in
  let reg =
    Msgnet.Abd.create ~sim ~n:5 ~f:2 ~writer:0 ~adversary:(adversary spec) ()
  in
  Msgnet.Abd.write reg ~value:1 ~on_done:(fun () ->
      Msgnet.Abd.write reg ~value:2 ~on_done:(fun () -> ()));
  List.iteri
    (fun i p ->
      Dsim.Sim.schedule sim
        ~delay:(3.0 +. (5.0 *. float_of_int i))
        (fun _ -> Msgnet.Abd.read reg ~proc:p ~on_done:(fun _ -> ())))
    [ 1; 2; 3; 4 ];
  Dsim.Sim.run sim;
  match Msgnet.Abd.History.check_atomic (Msgnet.Abd.History.events reg) with
  | None -> ()
  | Some reason -> Alcotest.failf "ABD atomicity violated: %s" reason

(* Crash accounting: the documented counter identity
   sent + duplicated = delivered + dropped + lost_to_crash holds in a
   drained simulation, and sends from a crashed process are uncounted
   no-ops. *)
let crash_accounting () =
  let sim = Dsim.Sim.create ~seed:5 () in
  let net =
    Msgnet.Network.create ~sim ~n:4
      ~adversary:(adversary "drop:p=30+dup:p=30,copies=2")
      ~deliver:(fun _ ~to_:_ ~from:_ () -> ())
      ()
  in
  for _ = 1 to 10 do
    Msgnet.Network.broadcast net ~from:0 ();
    Msgnet.Network.broadcast net ~from:1 ()
  done;
  Dsim.Sim.schedule sim ~delay:5.0 (fun _ ->
      Msgnet.Network.crash net 2;
      (* Post-crash sends are no-ops and must not move any counter. *)
      let before = Msgnet.Network.messages_sent net in
      Msgnet.Network.broadcast net ~from:2 ();
      Msgnet.Network.send net ~from:2 ~to_:0 ();
      Alcotest.(check int) "crashed sender's sends uncounted" before
        (Msgnet.Network.messages_sent net);
      for _ = 1 to 10 do
        Msgnet.Network.broadcast net ~from:3 ()
      done);
  Dsim.Sim.run sim;
  let sent = Msgnet.Network.messages_sent net
  and delivered = Msgnet.Network.messages_delivered net
  and dropped = Msgnet.Network.messages_dropped net
  and duplicated = Msgnet.Network.messages_duplicated net
  and lost = Msgnet.Network.messages_lost_to_crash net in
  Alcotest.(check int) "sent + duplicated = delivered + dropped + lost"
    (sent + duplicated)
    (delivered + dropped + lost);
  Alcotest.(check bool) "crash actually cost deliveries" true (lost > 0);
  Alcotest.(check bool) "adversary actually dropped" true (dropped > 0);
  Alcotest.(check bool) "adversary actually duplicated" true (duplicated > 0)

let tests =
  [
    Alcotest.test_case "adversary spec parsing" `Quick spec_parsing;
    Alcotest.test_case "campaign -j invariance" `Quick campaign_jobs_invariance;
    Alcotest.test_case "differential matrix (n×policy)" `Slow
      differential_matrix;
    Alcotest.test_case "heartbeat converges under loss" `Quick
      (heartbeat_converges "drop:p=30" 31);
    Alcotest.test_case "heartbeat converges after partition heals" `Quick
      (heartbeat_converges "partition:at=10,heal=120,left=2" 32);
    Alcotest.test_case "CT terminates under loss" `Quick
      (ct_converges "drop:p=30" 33);
    Alcotest.test_case "CT terminates across a healing partition" `Quick
      (ct_converges "partition:at=5,heal=60,left=2" 34);
    Alcotest.test_case "CT phase-0 lock regression" `Quick
      phase0_lock_regression;
    Alcotest.test_case "duplication cannot inflate quorums" `Quick
      duplication_safety;
    Alcotest.test_case "crash accounting identity" `Quick crash_accounting;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ extraction_well_formed; seed_determinism ]
