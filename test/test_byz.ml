(* The E24 Byzantine battery: two-sided accountability (fuzzed soundness
   over ≥ 10k lying plans, exhaustive completeness at n=4 f=1), lie
   attribution in the round layer's heard-of record, the CT equivocation
   audit, the Byzantine-aware predicates, and e24-byz artifact replay. *)

module Pset = Rrfd.Pset
module Acc = Msgnet.Accountability
module Byz = Check.Byz_check

let pset = Alcotest.testable (Fmt.of_to_string Pset.to_string) Pset.equal

(* The split-brain plan: every Byzantine member echoes each receiver's own
   input — the strongest fork driver in the strategy space. *)
let split_brain ~n ~f ~byz ~seed =
  let inputs = Byz.binary_inputs n in
  let strategies = Array.make n None in
  for i = 0 to byz - 1 do
    strategies.(i) <- Some { Acc.votes = Array.copy inputs; cert = None }
  done;
  { Byz.n; f; seed; inputs; strategies }

(* A split-brain witness that provably forks, found by walking derived
   delay schedules (deterministic; the demo CLI does the same walk). *)
let forking_witness =
  lazy
    (let rec hunt k =
       if k > 500 then Alcotest.fail "no forking schedule within 500 tries"
       else
         let w =
           split_brain ~n:4 ~f:1 ~byz:2 ~seed:(Dsim.Rng.derive_seed 0 k)
         in
         if Byz.forks w then w else hunt (k + 1)
     in
     hunt 0)

(* Soundness, fuzzed: over ≥ 10k random lying plans — equivocating votes
   and forged certificates — the audit never accuses an honest process,
   and every fork it does see convicts ≥ f+1.  Forks must actually occur
   or the run proves nothing. *)
let fuzz_soundness () =
  let r = Byz.fuzz ~seed:42 ~trials:6_000 () in
  Alcotest.(check int) "plain: no violations" 0 r.Byz.violations;
  Alcotest.(check bool) "plain: forks occurred" true (r.Byz.forked > 0);
  let rf = Byz.fuzz ~seed:43 ~trials:6_000 ~forge:true () in
  Alcotest.(check int) "forged: no violations" 0 rf.Byz.violations;
  Alcotest.(check bool) "forged: forks occurred" true (rf.Byz.forked > 0);
  Alcotest.(check bool)
    "forged certs were actually injected" true
    (rf.Byz.tampered > r.Byz.tampered)

(* The fuzzer is a Runtime.Campaign: its whole record — including which
   trial a hypothetical violation would land on — is -j independent. *)
let fuzz_determinism () =
  let a = Byz.fuzz ~jobs:1 ~seed:7 ~trials:500 ~forge:true () in
  let b = Byz.fuzz ~jobs:4 ~seed:7 ~trials:500 ~forge:true () in
  Alcotest.(check int) "forked" a.Byz.forked b.Byz.forked;
  Alcotest.(check int) "tampered" a.Byz.tampered b.Byz.tampered;
  Alcotest.(check int) "violations" a.Byz.violations b.Byz.violations

(* Completeness, proved: the entire per-receiver vote-strategy space at
   n=4, f=1, byz=2 (16² = 256 combinations, 3 schedules each).  Every
   fork in the space convicts ≥ f+1 = 2, and no plan anywhere in it
   frames an honest process. *)
let exhaustive_completeness () =
  let r = Byz.exhaustive ~seed:7 () in
  Alcotest.(check int) "covers 256 combos" 256 r.Byz.combos;
  Alcotest.(check int) "no violations" 0 r.Byz.violations;
  Alcotest.(check bool) "forks occurred (claim is not vacuous)" true
    (r.Byz.forked > 0);
  match r.Byz.min_accused_on_fork with
  | None -> Alcotest.fail "forked > 0 but no accused minimum"
  | Some m ->
    Alcotest.(check bool) "every fork convicts >= f+1 = 2" true (m >= 2)

(* The intersection bound, on a concrete fork: two honest deciders'
   quorums overlap in >= n - 2f processes, every one Byzantine. *)
let fork_anatomy () =
  let w = Lazy.force forking_witness in
  let o = Byz.run_witness w in
  (match o.Acc.fork with
  | None -> Alcotest.fail "witness no longer forks"
  | Some (p, q) ->
    let quorum i =
      match o.Acc.decisions.(i) with
      | Some (_, q) -> q
      | None -> Alcotest.fail "forked process did not decide"
    in
    let overlap = Pset.inter (quorum p) (quorum q) in
    Alcotest.(check bool) "overlap >= n - 2f" true (Pset.cardinal overlap >= 2);
    Alcotest.(check bool) "overlap is all-Byzantine" true
      (Pset.subset overlap o.Acc.byzantine));
  Alcotest.(check pset) "exactly the members are convicted" o.Acc.byzantine
    o.Acc.accused;
  List.iter
    (fun (a : Acc.accusation) ->
      match a.Acc.proof with
      | Acc.Equivocation { first; second } ->
        Alcotest.(check int) "both halves signed by the accused"
          a.Acc.accused first.Msgnet.Network.signer;
        Alcotest.(check int) "second half too" a.Acc.accused
          second.Msgnet.Network.signer;
        Alcotest.(check bool) "halves conflict" true
          (first.Msgnet.Network.payload <> second.Msgnet.Network.payload
          && fst first.Msgnet.Network.payload
             = fst second.Msgnet.Network.payload)
      | Acc.Phantom_quorum _ -> ())
    o.Acc.accusations

(* An honest execution: nobody decides differently, nobody is accused,
   nothing is tampered. *)
let honest_baseline () =
  let o =
    Acc.run ~seed:11 ~n:4 ~f:1
      ~inputs:(Byz.binary_inputs 4)
      ~strategies:(Acc.honest ~n:4) ()
  in
  Alcotest.(check bool) "no fork" true (o.Acc.fork = None);
  Alcotest.(check pset) "no accusations" Pset.empty o.Acc.accused;
  Alcotest.(check int) "no tampering" 0 o.Acc.messages_tampered

(* Lie attribution in the round layer: under byz:* specs the heard-of
   record's "lied" component only ever names adversary members, lied is
   a subset of heard by construction, the fused byz history is the
   pointwise union, and n - m honest processes stay clean in the lie
   history (the eventual-honest-kernel predicate). *)
let round_layer_lies () =
  List.iter
    (fun (spec, n, m) ->
      let adversary =
        match Msgnet.Adversary.of_spec spec with
        | Ok a -> a
        | Error e -> Alcotest.fail e
      in
      let members = Msgnet.Adversary.byzantine adversary ~n in
      Alcotest.(check int) (spec ^ ": member count") m (Pset.cardinal members);
      let r =
        Msgnet.Round_layer.run ~seed:5 ~adversary ~n ~f:((n - 1) / 2) ~rounds:3
          ~algorithm:(Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
          ()
      in
      let ho = r.Msgnet.Round_layer.heard_of in
      let lie_h = Msgnet.Heard_of.to_lie_history ho in
      Alcotest.(check bool)
        (spec ^ ": lies only from members")
        true
        (Pset.subset (Rrfd.Fault_history.cumulative_union lie_h) members);
      for i = 0 to n - 1 do
        for round = 1 to Rrfd.Fault_history.rounds lie_h do
          match
            ( Msgnet.Heard_of.lied ho ~proc:i ~round,
              Msgnet.Heard_of.heard ho ~proc:i ~round )
          with
          | Some lied, Some heard ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: lied ⊆ heard at (p%d,r%d)" spec i round)
              true (Pset.subset lied heard)
          | None, None -> ()
          | _ ->
            Alcotest.failf "%s: lied/heard desynchronised at (p%d,r%d)" spec i
              round
        done
      done;
      let fused = Msgnet.Heard_of.to_byz_history ho in
      Alcotest.(check bool)
        (spec ^ ": fused = silent ∪ lied")
        true
        (Rrfd.Fault_history.equal fused
           (Rrfd.Fault_history.union
              (Msgnet.Heard_of.to_history ho)
              lie_h));
      Alcotest.(check bool)
        (spec ^ ": honest kernel of n-m in the lie history")
        true
        (Rrfd.Predicate.holds
           (Rrfd.Predicate.eventual_honest_kernel ~k:(n - m))
           lie_h);
      if m > 0 then
        Alcotest.(check bool)
          (spec ^ ": tampering actually happened")
          true
          (r.Msgnet.Round_layer.messages_tampered > 0))
    [
      ("byz:m=1,equiv=1", 4, 1);
      ("byz:m=1,corrupt=1", 4, 1);
      ("byz:m=2,corrupt=1", 5, 2);
      ("byz:m=2,equiv=1,forge=1", 5, 2);
    ]

(* The CT probe: a corrupt member can fork CT (it trusts Decide on
   receipt), but the equivocation audit never accuses an honest
   process. *)
let ct_audit_sound () =
  let adversary =
    match Msgnet.Adversary.of_spec "byz:m=1,corrupt=1" with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  let members = Msgnet.Adversary.byzantine adversary ~n:4 in
  for seed = 0 to 19 do
    let r =
      Msgnet.Ct_consensus.run ~seed ~adversary ~n:4 ~f:1
        ~inputs:[| 0; 1; 0; 1 |] ~horizon:240.0 ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: accused ⊆ members" seed)
      true
      (Pset.subset r.Msgnet.Ct_consensus.accused members)
  done

(* The Byzantine-aware predicates on hand-built histories. *)
let predicates () =
  let h sets = Rrfd.Fault_history.of_rounds ~n:4 sets in
  let s l = Pset.of_list l in
  let quiet = h [ Array.make 4 (s [ 0 ]) ] in
  let noisy = h [ Array.make 4 (s [ 0 ]); Array.make 4 (s [ 0; 1 ]) ] in
  let healing =
    h [ Array.make 4 (s [ 0; 1; 2 ]); Array.make 4 (s [ 0 ]) ]
  in
  let check name p hist expect =
    Alcotest.(check bool) name expect (Rrfd.Predicate.holds p hist)
  in
  check "bound f=1 holds" (Rrfd.Predicate.byzantine_round_bound ~f:1) quiet true;
  check "bound f=1 fails on a 2-liar round"
    (Rrfd.Predicate.byzantine_round_bound ~f:1)
    noisy false;
  check "bound f=2 absorbs it"
    (Rrfd.Predicate.byzantine_round_bound ~f:2)
    noisy true;
  check "kernel k=3 on one clean round"
    (Rrfd.Predicate.eventual_honest_kernel ~k:3)
    quiet true;
  check "kernel k=3 fails when the last round has 2 liars"
    (Rrfd.Predicate.eventual_honest_kernel ~k:3)
    noisy false;
  check "kernel recovers after a bad first round"
    (Rrfd.Predicate.eventual_honest_kernel ~k:3)
    healing true;
  Alcotest.(check (option int))
    "kernel start skips the bad prefix" (Some 2)
    (Rrfd.Predicate.honest_kernel_start ~k:3 healing);
  Alcotest.(check (option int))
    "no kernel start on the noisy suffix" None
    (Rrfd.Predicate.honest_kernel_start ~k:3 noisy);
  (* Pointwise union pads the shorter history with empty rounds. *)
  let u = Rrfd.Fault_history.union quiet noisy in
  Alcotest.(check int) "union keeps the longer round count" 2
    (Rrfd.Fault_history.rounds u);
  Alcotest.(check pset) "round 1 is the pointwise union" (s [ 0 ])
    (Rrfd.Fault_history.d u ~proc:2 ~round:1);
  Alcotest.(check pset) "round 2 comes from the longer side" (s [ 0; 1 ])
    (Rrfd.Fault_history.d u ~proc:2 ~round:2)

(* The spec vocabulary reaches the new predicates. *)
let spec_vocabulary () =
  (match Check.Spec.predicate "byz-round:f=2" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let noisy =
      Rrfd.Fault_history.of_rounds ~n:4
        [ Array.make 4 (Pset.of_list [ 0; 1 ]) ]
    in
    Alcotest.(check bool) "byz-round:f=2 evaluates" true
      (Rrfd.Predicate.holds p noisy));
  match Check.Spec.predicate "honest-kernel:k=3" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check bool) "honest-kernel:k=3 evaluates" true
      (Rrfd.Predicate.holds p (Rrfd.Fault_history.empty ~n:4))

(* Artifact round-trip: a forked witness survives JSON — including a
   full-width 63-bit schedule seed — and replays to the identical fork
   flag and accused set. *)
let artifact_roundtrip () =
  let w = Lazy.force forking_witness in
  let artifact = Byz.of_outcome w (Byz.run_witness w) in
  Alcotest.(check bool) "expectation pins a fork" true artifact.Byz.expected_fork;
  let json = Byz.to_json artifact in
  let back = Byz.of_json json in
  Alcotest.(check int) "seed survives verbatim" w.Byz.seed
    back.Byz.witness.Byz.seed;
  let path = Filename.temp_file "e24_byz" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Byz.save path artifact;
      let r = Byz.replay (Byz.load path) in
      Alcotest.(check bool) "replay reproduces" true (Byz.reproduced r);
      Alcotest.(check bool) "replayed verdict accountable" true
        (r.Byz.verdict = Acc.Accountable));
  (* Malformed inputs are rejected, not misread. *)
  let reject name j =
    match Byz.of_json j with
    | exception Report.Json.Error _ -> ()
    | _ -> Alcotest.failf "%s should not parse" name
  in
  (match json with
  | Report.Json.Obj fields ->
    reject "wrong version"
      (Report.Json.Obj
         (("version", Report.Json.Number 99.0)
         :: List.remove_assoc "version" fields));
    reject "wrong kind"
      (Report.Json.Obj
         (("kind", Report.Json.String "e20-counterexample")
         :: List.remove_assoc "kind" fields))
  | _ -> Alcotest.fail "artifact JSON is not an object")

let tests =
  [
    Alcotest.test_case "fuzz: audit soundness over 12k lying plans" `Slow
      fuzz_soundness;
    Alcotest.test_case "fuzz: campaign is -j independent" `Quick
      fuzz_determinism;
    Alcotest.test_case "exhaustive: completeness proved at n=4 f=1" `Slow
      exhaustive_completeness;
    Alcotest.test_case "fork anatomy: quorum overlap is all-Byzantine" `Quick
      fork_anatomy;
    Alcotest.test_case "honest baseline: nothing accused" `Quick
      honest_baseline;
    Alcotest.test_case "round layer: lies attributed only to members" `Quick
      round_layer_lies;
    Alcotest.test_case "ct: equivocation audit never frames honest" `Quick
      ct_audit_sound;
    Alcotest.test_case "predicates: byz-round bound + honest kernel" `Quick
      predicates;
    Alcotest.test_case "spec: byz predicate vocabulary" `Quick spec_vocabulary;
    Alcotest.test_case "artifact: e24-byz JSON round-trip + replay" `Quick
      artifact_roundtrip;
  ]
