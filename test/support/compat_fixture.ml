(* Canonical catalog × substrate outcomes under pinned seeds.

   [render ()] runs every catalog protocol on all four substrates
   (abstract engine — failure-free and under a generated crash detector —
   the lock-step synchronous network, the event-driven asynchronous
   network, and the live domain-per-process substrate) with fully pinned
   configurations, and renders everything observable about each
   execution: decisions, decision rounds, rounds used, the induced fault
   history, the work counters, the violation report, the crashed set and
   the per-process completed-round counts.  [wall_ns] is deliberately
   excluded (it is the one legitimately nondeterministic field).

   The rendering is compared byte-for-byte against
   test/fixtures/engine_compat.expected, which was generated from the
   pre-refactor engine (see test/gen).  Any change to the executor, the
   history representation, the protocols or the RNG streams that alters
   an outcome shows up as a diff against the committed fixture.

   The live substrate runs real domains, so its cells use the
   [Wait_all] patience policy: rounds are lock-step, every process hears
   everyone every round, and every observable outcome is
   scheduler-independent. *)

module Pset = Rrfd.Pset
module Catalog = Protocols.Catalog

let n = 5

let f = 1

let base_seed = 1042

let pp_opt_int ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> Format.pp_print_int ppf v

let render_execution buf ~cell (ex : int Rrfd.Substrate.execution) =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let opt_array a =
    String.concat ","
      (Array.to_list (Array.map (Format.asprintf "%a" pp_opt_int) a))
  in
  pr "cell %s\n" cell;
  pr "  decisions=[%s]\n" (opt_array ex.Rrfd.Substrate.decisions);
  pr "  decision_rounds=[%s]\n" (opt_array ex.Rrfd.Substrate.decision_rounds);
  pr "  rounds_used=%d\n" ex.Rrfd.Substrate.rounds_used;
  pr "  induced=%s\n"
    (Rrfd.Fault_history.to_string_compact ex.Rrfd.Substrate.induced);
  pr "  counters=%s\n"
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "%s:%d" k v)
          (Rrfd.Counters.to_fields ex.Rrfd.Substrate.counters)));
  pr "  violation=%s\n"
    (match ex.Rrfd.Substrate.violation with None -> "-" | Some v -> v);
  pr "  crashed=%s\n" (Pset.to_string ex.Rrfd.Substrate.crashed);
  pr "  completed=[%s]\n"
    (String.concat ","
       (Array.to_list (Array.map string_of_int ex.Rrfd.Substrate.completed)))

let failure_free_detector =
  Rrfd.Detector.of_schedule ~after:(Array.make n Pset.empty) []

(* One derived RNG per (protocol, substrate) cell, exactly the
   Runtime.Campaign idiom: outcomes never depend on cell order. *)
let cell_rng ~proto_idx ~sub_idx =
  Dsim.Rng.create (Dsim.Rng.derive_seed base_seed ((proto_idx * 16) + sub_idx))

let render_protocol buf proto_idx proto =
  let name = Catalog.name proto in
  let inputs = Catalog.default_inputs ~n in
  let rounds = Catalog.horizon proto ~n ~f in
  (* engine, failure-free *)
  render_execution buf
    ~cell:(Printf.sprintf "%s/engine/none" name)
    (Catalog.run_engine proto ~inputs ~max_rounds:rounds ~n ~f
       ~detector:failure_free_detector ());
  (* engine, generated crash detector (pins the Detector_gen streams) *)
  let rng = cell_rng ~proto_idx ~sub_idx:1 in
  render_execution buf
    ~cell:(Printf.sprintf "%s/engine/crash" name)
    (Catalog.run_engine proto ~inputs ~max_rounds:rounds ~n ~f
       ~detector:(Rrfd.Detector_gen.crash rng ~n ~f)
       ());
  (* synchronous network under a random crash pattern *)
  let rng = cell_rng ~proto_idx ~sub_idx:2 in
  render_execution buf
    ~cell:(Printf.sprintf "%s/sync/crash" name)
    (Catalog.run_sync proto ~inputs ~rounds ~n ~f
       ~pattern:(Syncnet.Faults.random_crash rng ~n ~f ~max_round:rounds)
       ());
  (* asynchronous network with crashes, exactly the E22 idiom *)
  let rng = cell_rng ~proto_idx ~sub_idx:3 in
  let net_seed = Dsim.Rng.bits30 rng in
  let crashes =
    List.map
      (fun p -> (p, 1.0 +. float_of_int (Dsim.Rng.int rng 40)))
      (Dsim.Rng.sample_without_replacement rng f n)
  in
  render_execution buf
    ~cell:(Printf.sprintf "%s/msgnet/crash" name)
    (Catalog.run_msgnet proto ~inputs ~crashes ~rounds ~seed:net_seed ~n ~f ());
  (* live substrate, Wait_all: lock-step, scheduler-independent *)
  render_execution buf
    ~cell:(Printf.sprintf "%s/live/all" name)
    (Catalog.run_live proto ~inputs ~patience:Live.Patience.Wait_all ~rounds ~n
       ~f ())

let render () =
  let buf = Buffer.create (1 lsl 16) in
  List.iteri (fun i proto -> render_protocol buf i proto) Catalog.all;
  Buffer.contents buf
