(** Shared helpers for the test suite.

    Every suite that feeds random schedules into the model used to carry
    its own copy of the [(n, seed)] arbitrary, the [Pset.of_list]
    shorthand and the seed-to-RNG plumbing; they live here once.  The
    module also provides qcheck generators for {!Rrfd.Pset} and
    {!Rrfd.Fault_history} (printing compactly, shrinking through
    {!Check.Shrink.candidates}) so property failures report a minimal
    readable history instead of [<abstr>]. *)

val pset : Rrfd.Proc.t list -> Rrfd.Pset.t
(** [Pset.of_list], the [s [0;2]] shorthand the suites share. *)

val rng_of : int -> Dsim.Rng.t
(** [Dsim.Rng.create] — one deterministic stream per sampled seed. *)

(** {1 Alcotest testables} *)

val pset_t : Rrfd.Pset.t Alcotest.testable

val history_t : Rrfd.Fault_history.t Alcotest.testable
(** Built on {!Rrfd.Fault_history.pp}/[equal]: a failing check prints the
    whole history round by round. *)

(** {1 qcheck arbitraries} *)

val sized_seed : ?min_n:int -> max_n:int -> unit -> (int * int) QCheck.arbitrary
(** [(n, seed)] pairs: system size in [min_n..max_n] (default [min_n] 2)
    and an RNG seed — the shape every randomized model test samples. *)

val sized_seed_plus :
  ?min_n:int -> max_n:int -> 'a QCheck.arbitrary -> (int * int * 'a) QCheck.arbitrary
(** [(n, seed, extra)] — {!sized_seed} with one more dimension (a fault
    budget, a round count, …). *)

val pset_arb : n:int -> Rrfd.Pset.t QCheck.arbitrary
(** Arbitrary subsets of [{0..n-1}], shrinking element-wise. *)

val proper_pset_gen : n:int -> Rrfd.Pset.t QCheck.Gen.t
(** Proper subsets only — what a detector may legally output (D ≠ S). *)

val history_gen : ?max_rounds:int -> n:int -> Rrfd.Fault_history.t QCheck.Gen.t
(** Unconstrained histories of proper fault sets, up to [max_rounds]
    (default 4) rounds. *)

val history_arb :
  ?min_n:int -> ?max_n:int -> ?max_rounds:int -> unit ->
  Rrfd.Fault_history.t QCheck.arbitrary
(** Histories over sizes [min_n..max_n] (defaults 2..5).  Prints via
    {!Rrfd.Fault_history.to_string_compact}; shrinks through
    {!Check.Shrink.candidates}, so qcheck reports the same minimal
    histories the model checker does. *)

(** {1 Engine-compat fixture} *)

module Compat_fixture : sig
  val render : unit -> string
  (** Canonical catalog × substrate outcomes under pinned seeds; compared
      byte-for-byte against [test/fixtures/engine_compat.expected] by the
      differential pin test.  See [compat_fixture.ml] for the grid. *)
end
