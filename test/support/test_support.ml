module Pset = Rrfd.Pset
module H = Rrfd.Fault_history

let pset = Pset.of_list

let rng_of seed = Dsim.Rng.create seed

let pset_t = Alcotest.testable Pset.pp Pset.equal

let history_t = Alcotest.testable H.pp H.equal

let sized_seed ?(min_n = 2) ~max_n () =
  QCheck.(pair (int_range min_n max_n) (int_bound 100000))

let sized_seed_plus ?(min_n = 2) ~max_n extra =
  QCheck.(triple (int_range min_n max_n) (int_bound 100000) extra)

let pset_gen ~n =
  QCheck.Gen.(
    list_repeat n bool >|= fun flags ->
    snd
      (List.fold_left
         (fun (i, s) b -> (i + 1, if b then Pset.add i s else s))
         (0, Pset.empty) flags))

let pset_arb ~n =
  QCheck.make (pset_gen ~n) ~print:Pset.to_string ~shrink:(fun s yield ->
      List.iter (fun e -> yield (Pset.remove e s)) (Pset.to_list s))

(* Detectors never output D = S (not every process can be late), so history
   generators draw proper subsets: a full set has one sampled element
   knocked out. *)
let proper_pset_gen ~n =
  QCheck.Gen.(
    pair (pset_gen ~n) (int_bound (max 0 (n - 1))) >|= fun (s, i) ->
    if Pset.equal s (Pset.full n) then Pset.remove (Pset.choose_nth s i) s
    else s)

let round_gen ~n =
  QCheck.Gen.(list_repeat n (proper_pset_gen ~n) >|= Array.of_list)

let history_gen ?(max_rounds = 4) ~n =
  QCheck.Gen.(
    int_bound max_rounds >>= fun rounds ->
    list_repeat rounds (round_gen ~n) >|= H.of_rounds ~n)

let history_arb ?(min_n = 2) ?(max_n = 5) ?max_rounds () =
  QCheck.make
    QCheck.Gen.(int_range min_n max_n >>= fun n -> history_gen ?max_rounds ~n)
    ~print:H.to_string_compact
    ~shrink:(fun h yield -> List.iter yield (Check.Shrink.candidates h))

module Compat_fixture = Compat_fixture
