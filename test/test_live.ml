(* The live substrate: patience-spec parsing, mailbox semantics,
   well-formedness of scheduler-induced histories, the execution record's
   invariants, the live→pinned-replay differential at stress volume, and
   recording artifacts through check --replay's code path.

   Everything here runs real domains, so failures can be
   some-interleavings bugs: the qcheck and stress cases deliberately
   repeat across sizes and policies rather than asserting on one run. *)

module Pset = Rrfd.Pset

let all_policies =
  [
    Live.Patience.Wait_all;
    Live.Patience.Wait_quorum;
    (* generous enough to terminate promptly, tight enough that a loaded
       scheduler induces real omission *)
    Live.Patience.Deadline 50_000L;
  ]

(* Patience specs: parse, render, reject. *)
let patience_specs () =
  List.iter
    (fun p ->
      match Live.Patience.of_spec (Live.Patience.to_string p) with
      | Ok p' ->
        Alcotest.(check string)
          "roundtrip"
          (Live.Patience.to_string p)
          (Live.Patience.to_string p')
      | Error e -> Alcotest.fail e)
    all_policies;
  (match Live.Patience.of_spec "deadline:us=40" with
  | Ok (Live.Patience.Deadline ns) ->
    Alcotest.(check int64) "us scales" 40_000L ns
  | _ -> Alcotest.fail "deadline:us=40 should parse");
  (match Live.Patience.of_spec "deadline:ms=2" with
  | Ok (Live.Patience.Deadline ns) ->
    Alcotest.(check int64) "ms scales" 2_000_000L ns
  | _ -> Alcotest.fail "deadline:ms=2 should parse");
  List.iter
    (fun bad ->
      match Live.Patience.of_spec bad with
      | Ok _ -> Alcotest.failf "spec %S should not parse" bad
      | Error _ -> ())
    [ "eventually"; "deadline"; "deadline:s=1"; "deadline:ns=-5"; "quorum:n=2" ]

(* Mailbox semantics, single-threaded: arrival order, drain-on-receive,
   deadline expiry. *)
let mailbox_basics () =
  let box = Live.Mailbox.create () in
  Live.Mailbox.post box ~from:1 ~round:1 "a";
  Live.Mailbox.post box ~from:2 ~round:1 "b";
  Live.Mailbox.post box ~from:1 ~round:2 "c";
  Alcotest.(check (list (triple int int string)))
    "arrival order"
    [ (1, 1, "a"); (2, 1, "b"); (1, 2, "c") ]
    (Live.Mailbox.receive box ());
  (* empty box + deadline in the past: returns promptly and empty *)
  let deadline = Int64.add (Live.Mailbox.now_ns ()) 1_000L in
  Alcotest.(check (list (triple int int string)))
    "deadline expiry yields nothing" []
    (Live.Mailbox.receive box ~deadline_ns:deadline ())

(* A blocked receiver is woken by a post from another domain, and a poke
   wakes it with nothing pending. *)
let mailbox_cross_domain () =
  let box = Live.Mailbox.create () in
  let sender =
    Domain.spawn (fun () ->
        Unix.sleepf 0.002;
        Live.Mailbox.post box ~from:0 ~round:1 42)
  in
  Alcotest.(check (list (triple int int int)))
    "blocked receive woken by post"
    [ (0, 1, 42) ]
    (Live.Mailbox.receive box ());
  Domain.join sender;
  (* a poke is not sticky (unlike mail), so keep poking until the
     receiver has come back — one shot could land before it blocks *)
  let woke = Atomic.make false in
  let poker =
    Domain.spawn (fun () ->
        while not (Atomic.get woke) do
          Live.Mailbox.poke box;
          Unix.sleepf 0.0005
        done)
  in
  let got = Live.Mailbox.receive box () in
  Atomic.set woke true;
  Domain.join poker;
  Alcotest.(check (list (triple int int int))) "poke wakes with nothing" [] got

(* Live histories are well-formed whatever the scheduler did: every
   process completes the full horizon (the record is total, the
   degenerate prefix-closure), no process ever suspects itself, and
   quorum patience bounds every fault set by f (P3 by construction). *)
let histories_well_formed =
  QCheck.Test.make ~name:"live histories are total and never self-suspect"
    ~count:40
    QCheck.(pair (int_range 2 6) (int_bound 2))
    (fun (n, which) ->
      let patience = List.nth all_policies which in
      let f = (n - 1) / 2 in
      let proto = Protocols.Catalog.find_exn "flood-consensus" in
      let rounds = Protocols.Catalog.horizon proto ~n ~f in
      let ex = Protocols.Catalog.run_live proto ~patience ~n ~f ~rounds () in
      let h = ex.Rrfd.Substrate.induced in
      if Rrfd.Fault_history.rounds h <> rounds then
        QCheck.Test.fail_reportf "history has %d rounds, horizon %d"
          (Rrfd.Fault_history.rounds h)
          rounds;
      Array.iteri
        (fun i c ->
          if c <> rounds then
            QCheck.Test.fail_reportf "p%d completed %d/%d rounds" i c rounds)
        ex.Rrfd.Substrate.completed;
      for round = 1 to rounds do
        for i = 0 to n - 1 do
          let d = Rrfd.Fault_history.d h ~proc:i ~round in
          if Pset.mem i d then
            QCheck.Test.fail_reportf "p%d ∈ D(p%d,%d)" i i round;
          if patience = Live.Patience.Wait_quorum && Pset.cardinal d > f then
            QCheck.Test.fail_reportf
              "quorum patience induced |D(p%d,%d)| = %d > f = %d" i round
              (Pset.cardinal d) f
        done
      done;
      true)

(* The uniform execution record: the live substrate is the only one that
   reports real elapsed time, never crashes anybody, and counts exactly
   the delivered slots the history describes. *)
let execution_record () =
  let proto = Protocols.Catalog.find_exn "adopt-commit" in
  let n = 4 and f = 1 in
  let ex = Protocols.Catalog.run_live proto ~n ~f () in
  Alcotest.(check string) "substrate name" "live" ex.Rrfd.Substrate.substrate;
  (match ex.Rrfd.Substrate.wall_ns with
  | Some ns ->
    Alcotest.(check bool) "wall clock positive" true (Int64.compare ns 0L > 0)
  | None -> Alcotest.fail "live execution must carry wall_ns");
  Alcotest.(check bool) "nobody crashed" true
    (Pset.is_empty ex.Rrfd.Substrate.crashed);
  Alcotest.(check (option string)) "no violation" None
    ex.Rrfd.Substrate.violation;
  let h = ex.Rrfd.Substrate.induced in
  let expected_messages =
    let total = ref 0 in
    for round = 1 to Rrfd.Fault_history.rounds h do
      for i = 0 to n - 1 do
        total :=
          !total + n - Pset.cardinal (Rrfd.Fault_history.d h ~proc:i ~round)
      done
    done;
    !total
  in
  Alcotest.(check int) "messages = Σ (n − |D(i,r)|)" expected_messages
    ex.Rrfd.Substrate.counters.Rrfd.Counters.messages;
  Alcotest.(check int) "no detector queries" 0
    ex.Rrfd.Substrate.counters.Rrfd.Counters.detector_queries

(* An algorithm exception in one worker aborts the run and surfaces, and
   the runner rejects nonsense dimensions. *)
let failure_modes () =
  let bomb =
    {
      Rrfd.Algorithm.name = "bomb";
      init = (fun ~n:_ i -> i);
      emit = (fun i ~round:_ -> i);
      deliver =
        (fun i ~round:_ ~view:_ -> if i = 1 then failwith "kaboom" else i);
      decide = (fun _ -> None);
    }
  in
  Alcotest.check_raises "worker failure propagates" (Failure "kaboom")
    (fun () -> ignore (Live.run ~n:3 ~f:1 ~rounds:2 ~algorithm:bomb ()));
  let ok = { bomb with Rrfd.Algorithm.deliver = (fun i ~round:_ ~view:_ -> i) } in
  List.iter
    (fun (n, f, rounds) ->
      match Live.run ~n ~f ~rounds ~algorithm:ok () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "n=%d f=%d rounds=%d should be rejected" n f rounds)
    [ (0, 0, 1); (3, 3, 1); (3, -1, 1); (3, 1, -1) ]

(* The PR's hard gate: ≥200 seeded live runs across ≥3 protocols and all
   patience policies, every one's pinned engine replay bit-for-bit equal
   to the live decisions. *)
let differential_stress () =
  let protocols = [ "flood-consensus"; "adopt-commit"; "kset-one-round" ] in
  let n = 5 and f = 2 in
  let per_cell = 23 in
  (* 3 × 3 × 23 = 207 runs *)
  let total = ref 0 in
  List.iter
    (fun name ->
      let proto = Protocols.Catalog.find_exn name in
      List.iter
        (fun patience ->
          for trial = 0 to per_cell - 1 do
            incr total;
            let rng = Dsim.Rng.derive ~seed:23 ~stream:!total in
            ignore trial;
            let inputs = Protocols.Catalog.default_inputs ~n in
            Dsim.Rng.shuffle_in_place rng inputs;
            let ex = Protocols.Catalog.run_live proto ~inputs ~patience ~n ~f () in
            let replayed =
              Protocols.Catalog.replay proto ~inputs ~f
                ~history:ex.Rrfd.Substrate.induced ()
            in
            if ex.Rrfd.Substrate.decisions <> replayed.Rrfd.Substrate.decisions
            then
              Alcotest.failf
                "%s under %s: live decisions diverged from the pinned replay \
                 (history %s)"
                name
                (Live.Patience.to_string patience)
                (Rrfd.Fault_history.to_string_compact ex.Rrfd.Substrate.induced)
          done)
        all_policies)
    protocols;
  Alcotest.(check bool) "≥200 runs" true (!total >= 200)

(* A recorded live history survives the full artifact round-trip: save,
   load, replay through Checker.test_history, reproduced. *)
let record_roundtrip () =
  let proto = Protocols.Catalog.find_exn "flood-consensus" in
  let n = 5 and f = 2 in
  let ex = Protocols.Catalog.run_live proto ~n ~f () in
  match
    Check.Artifact.record ~sut_spec:"flood-consensus" ~n
      ~history:ex.Rrfd.Substrate.induced ()
  with
  | Error e -> Alcotest.fail e
  | Ok artifact ->
    let path = Filename.temp_file ~temp_dir:"." "live_record" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Check.Artifact.save path artifact;
        let loaded = Check.Artifact.load path in
        match Check.Artifact.replay loaded with
        | Error e -> Alcotest.fail e
        | Ok replay ->
          Alcotest.(check bool) "clean recording" false
            replay.Check.Artifact.failure_expected;
          Alcotest.(check bool) "no failure on replay" true
            (replay.Check.Artifact.failure = None);
          Alcotest.(check bool) "reproduced" true
            (Check.Artifact.reproduced replay))

(* effective_jobs: the oversubscription guard never exceeds
   recommended/n_procs, never goes below 1, and respects an explicit cap. *)
let effective_jobs_guard () =
  let recommended = Domain.recommended_domain_count () in
  List.iter
    (fun n_procs ->
      let j = Live.effective_jobs ~n_procs () in
      Alcotest.(check bool)
        (Printf.sprintf "1 ≤ jobs ≤ recommended/n at n=%d" n_procs)
        true
        (j >= 1 && j <= max 1 (recommended / n_procs)))
    [ 1; 2; 7; 64; 10_000 ];
  Alcotest.(check int) "explicit cap respected" 1
    (Live.effective_jobs ~jobs:1 ~n_procs:1 ())

(* E23's artifact codec: decode inverts encode, foreign documents are
   refused. *)
let e23_codec () =
  let records = Experiments.E23_live.collect ~trials:1 () in
  let json = Experiments.E23_live.to_json records in
  let s = Report.Json.to_string json in
  let back = Experiments.E23_live.of_json (Report.Json.of_string s) in
  Alcotest.(check string) "codec roundtrip" s
    (Report.Json.to_string (Experiments.E23_live.to_json back));
  Alcotest.(check bool) "table regenerates ok" true
    (Experiments.Table.ok (Experiments.E23_live.table_of back));
  (match
     Experiments.E23_live.of_json
       (Report.Json.of_string {|{"version": 1, "kind": "rrfd-counterexample"}|})
   with
  | exception Report.Json.Error _ -> ()
  | _ -> Alcotest.fail "foreign kind accepted");
  match
    Experiments.E23_live.of_json (Report.Json.of_string {|{"version": 99}|})
  with
  | exception Report.Json.Error _ -> ()
  | _ -> Alcotest.fail "foreign version accepted"

let tests =
  [
    Alcotest.test_case "patience specs" `Quick patience_specs;
    Alcotest.test_case "mailbox basics" `Quick mailbox_basics;
    Alcotest.test_case "mailbox cross-domain" `Quick mailbox_cross_domain;
    QCheck_alcotest.to_alcotest histories_well_formed;
    Alcotest.test_case "execution record invariants" `Quick execution_record;
    Alcotest.test_case "failure modes" `Quick failure_modes;
    Alcotest.test_case "differential stress (207 live runs)" `Slow
      differential_stress;
    Alcotest.test_case "record artifact roundtrip" `Quick record_roundtrip;
    Alcotest.test_case "effective-jobs guard" `Quick effective_jobs_guard;
    Alcotest.test_case "E23 artifact codec" `Quick e23_codec;
  ]
