(* Additional executor, heartbeat and network unit coverage. *)

module IntExec = Shm.Exec.Make (struct
  type t = int
end)

let kill_after_stops_a_process () =
  let finished = Array.make 3 false in
  let body ~proc =
    for i = 0 to 9 do
      IntExec.write proc i
    done;
    finished.(proc) <- true
  in
  let kill = [| None; Some 3; None |] in
  let outcome =
    IntExec.run ~kill_after:kill ~n_procs:3 ~n_locs:3
      ~schedule:Shm.Exec.Round_robin body
  in
  Alcotest.(check bool) "p0 finished" true finished.(0);
  Alcotest.(check bool) "p1 killed mid-run" false finished.(1);
  Alcotest.(check bool) "p2 finished" true finished.(2);
  Alcotest.(check (array bool)) "killed flags"
    [| false; true; false |]
    outcome.IntExec.killed_flags;
  Alcotest.(check int) "p1 executed exactly 3 steps" 3
    outcome.IntExec.steps_per_process.(1)

let kill_at_zero_means_no_steps () =
  let outcome =
    IntExec.run
      ~kill_after:[| Some 0; None |]
      ~n_procs:2 ~n_locs:2 ~schedule:Shm.Exec.Round_robin
      (fun ~proc -> IntExec.write proc 1)
  in
  Alcotest.(check int) "no steps" 0 outcome.IntExec.steps_per_process.(0);
  Alcotest.(check int) "peer unaffected" 1 outcome.IntExec.steps_per_process.(1)

let fixed_schedule_falls_back () =
  (* A Fixed schedule naming only p0 must still run p1 to completion. *)
  let outcome =
    IntExec.run ~n_procs:2 ~n_locs:2 ~schedule:(Shm.Exec.Fixed [ 0; 0 ])
      (fun ~proc ->
        IntExec.write proc 1;
        ignore (IntExec.read ((proc + 1) mod 2)))
  in
  Alcotest.(check int) "all steps ran" 4 outcome.IntExec.steps

let network_explicit_delay_ordering () =
  let sim = Dsim.Sim.create ~seed:1 () in
  let log = ref [] in
  let deliver _ ~to_:_ ~from:_ msg = log := msg :: !log in
  let net = Msgnet.Network.create ~sim ~n:2 ~deliver () in
  Msgnet.Network.send net ~from:0 ~to_:1 ~delay:10.0 "slow";
  Msgnet.Network.send net ~from:0 ~to_:1 ~delay:1.0 "fast";
  Dsim.Sim.run sim;
  Alcotest.(check (list string)) "explicit delays respected" [ "slow"; "fast" ] !log

let network_rejects_out_of_range () =
  let sim = Dsim.Sim.create () in
  let net = Msgnet.Network.create ~sim ~n:2 ~deliver:(fun _ ~to_:_ ~from:_ _ -> ()) () in
  Alcotest.check_raises "bad receiver"
    (Invalid_argument "Network.send: process out of range") (fun () ->
      Msgnet.Network.send net ~from:0 ~to_:5 "x")

let engine_max_rounds_without_decisions () =
  let never_decides : (unit, unit, unit) Rrfd.Algorithm.t =
    {
      name = "never";
      init = (fun ~n:_ _ -> ());
      emit = (fun () ~round:_ -> ());
      deliver = (fun () ~round:_ ~view:_ -> ());
      decide = (fun () -> None);
    }
  in
  let outcome =
    Rrfd.Engine.run ~n:3 ~max_rounds:5 ~algorithm:never_decides
      ~detector:Rrfd.Detector.none ()
  in
  Alcotest.(check int) "ran to max" 5 outcome.Rrfd.Engine.rounds_used;
  Alcotest.(check (array (option unit))) "nobody decided"
    [| None; None; None |]
    outcome.Rrfd.Engine.decisions

let detector_of_schedule_after () =
  let s = Rrfd.Pset.of_list in
  let after = [| s [ 1 ]; s []; s [] |] in
  let det = Rrfd.Detector.of_schedule ~after [ [| s []; s []; s [] |] ] in
  let h = Rrfd.Fault_history.empty ~n:3 in
  let r1 = Rrfd.Detector.next det h in
  let h = Rrfd.Fault_history.append h r1 in
  let r2 = Rrfd.Detector.next det h in
  Alcotest.(check bool) "round 1 from schedule" true (Rrfd.Pset.is_empty r1.(0));
  Alcotest.(check bool) "round 2 from after" true (Rrfd.Pset.equal r2.(0) (s [ 1 ]))

let tests =
  [
    Alcotest.test_case "kill_after stops a process" `Quick kill_after_stops_a_process;
    Alcotest.test_case "kill at zero" `Quick kill_at_zero_means_no_steps;
    Alcotest.test_case "fixed schedule fallback" `Quick fixed_schedule_falls_back;
    Alcotest.test_case "network explicit delays" `Quick network_explicit_delay_ordering;
    Alcotest.test_case "network range check" `Quick network_rejects_out_of_range;
    Alcotest.test_case "engine max rounds" `Quick engine_max_rounds_without_decisions;
    Alcotest.test_case "schedule detector after" `Quick detector_of_schedule_after;
  ]
