(* The campaign runtime: Stats fixtures, Pool scheduling, and the
   determinism contract (same seed => same table at every -j). *)

module Pool = Runtime.Pool
module Campaign = Runtime.Campaign
module Stats = Runtime.Stats

let feq msg expected actual = Alcotest.(check (float 1e-9)) msg expected actual

let stats_empty () =
  let s = Stats.of_list [] in
  Alcotest.(check int) "count" 0 s.Stats.count;
  Alcotest.(check bool) "mean nan" true (Float.is_nan s.Stats.mean);
  Alcotest.(check bool) "stddev nan" true (Float.is_nan s.Stats.stddev);
  Alcotest.(check bool) "min nan" true (Float.is_nan s.Stats.min);
  Alcotest.(check bool) "max nan" true (Float.is_nan s.Stats.max);
  let lo, hi = Stats.ci95 s in
  Alcotest.(check bool) "ci nan" true (Float.is_nan lo && Float.is_nan hi)

let stats_singleton () =
  let s = Stats.of_list [ 5.0 ] in
  Alcotest.(check int) "count" 1 s.Stats.count;
  feq "mean" 5.0 s.Stats.mean;
  feq "stddev" 0.0 s.Stats.stddev;
  feq "min" 5.0 s.Stats.min;
  feq "max" 5.0 s.Stats.max;
  let lo, hi = Stats.ci95 s in
  feq "ci lo" 5.0 lo;
  feq "ci hi" 5.0 hi

let stats_fixture () =
  (* Hand-computed: mean 5, sum of squared deviations 32, sample variance
     32/7, stddev sqrt(32/7) ≈ 2.13809. *)
  let s = Stats.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check int) "count" 8 s.Stats.count;
  feq "mean" 5.0 s.Stats.mean;
  feq "stddev" (sqrt (32.0 /. 7.0)) s.Stats.stddev;
  feq "min" 2.0 s.Stats.min;
  feq "max" 9.0 s.Stats.max;
  let h = 1.96 *. sqrt (32.0 /. 7.0) /. sqrt 8.0 in
  feq "ci halfwidth" h (Stats.ci95_halfwidth s);
  let lo, hi = Stats.ci95 s in
  feq "ci lo" (5.0 -. h) lo;
  feq "ci hi" (5.0 +. h) hi

let stats_of_ints () =
  let s = Stats.of_ints [| 1; 2; 3 |] in
  feq "mean" 2.0 s.Stats.mean;
  feq "stddev" 1.0 s.Stats.stddev

let pool_matches_serial () =
  let f i = (i * i) - (3 * i) in
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            (Array.init n f)
            (Pool.map_range ~jobs ~n f))
        [ 0; 1; 5; 1000 ])
    [ 1; 2; 4; 7 ]

let pool_iter_covers_range () =
  let n = 500 in
  let hits = Array.make n 0 in
  (* Disjoint indices: each is written by exactly one worker. *)
  Pool.iter_range ~jobs:4 ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index once" (Array.make n 1) hits

let pool_propagates_exception () =
  Alcotest.check_raises "worker failure surfaces" (Failure "boom") (fun () ->
      ignore
        (Pool.map_range ~jobs:4 ~n:100 (fun i ->
             if i = 37 then failwith "boom" else i)))

let campaign_jobs_invariant () =
  let observe ~trial ~rng =
    (* Consume a trial-dependent amount of randomness to catch any stream
       sharing between trials. *)
    let draws = 1 + (trial mod 5) in
    let acc = ref 0 in
    for _ = 1 to draws do
      acc := !acc + Dsim.Rng.int rng 1000
    done;
    !acc
  in
  let reference = Campaign.run ~jobs:1 ~seed:42 ~trials:200 observe in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d equals serial" jobs)
        reference
        (Campaign.run ~jobs ~seed:42 ~trials:200 observe))
    [ 2; 4; 8 ]

let campaign_map_keeps_order () =
  let items = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  let tagged =
    Campaign.map ~jobs:4 ~seed:7 items (fun ~index ~rng:_ s ->
        Printf.sprintf "%d:%s" index s)
  in
  Alcotest.(check (list string))
    "order preserved"
    [ "0:a"; "1:b"; "2:c"; "3:d"; "4:e"; "5:f"; "6:g" ]
    tagged

let campaign_stats_roundtrip () =
  let s =
    Campaign.run_stats ~jobs:4 ~seed:3 ~trials:100 (fun ~trial ~rng:_ ->
        float_of_int trial)
  in
  Alcotest.(check int) "count" 100 s.Stats.count;
  feq "mean" 49.5 s.Stats.mean;
  feq "min" 0.0 s.Stats.min;
  feq "max" 99.0 s.Stats.max

(* Pool.search determinism under contention.  Dense hits make many workers
   race the best-index CAS loop at once; whatever interleaving the
   scheduler produces, the answer must be the serial one — the hit with
   the smallest index.  Repeated because a CAS livelock or lost update is
   a some-interleavings bug, not an every-run bug. *)
let pool_search_contended () =
  let n = 4096 in
  for round = 1 to 40 do
    (* every third index hits: thousands of concurrent lower_best calls *)
    let dense i = if i mod 3 = 0 then Some (i * 10) else None in
    Alcotest.(check (option int))
      (Printf.sprintf "dense hits, round %d" round)
      (Some 0)
      (Pool.search ~jobs:8 ~n dense);
    (* first hit deep inside a late chunk: early workers race past it *)
    let sparse i = if i >= 2000 then Some i else None in
    Alcotest.(check (option int))
      (Printf.sprintf "sparse hits, round %d" round)
      (Some 2000)
      (Pool.search ~jobs:8 ~n sparse)
  done;
  Alcotest.(check (option int)) "no hits" None
    (Pool.search ~jobs:8 ~n (fun _ -> None))

(* The end-to-end contract of the tentpole: a campaign-backed experiment
   renders the same table at -j 1 and -j 4 for the same seed. *)
let table_testable =
  Alcotest.testable
    (fun ppf t -> Format.fprintf ppf "table %s" t.Experiments.Table.id)
    ( = )

let registry_deterministic_across_jobs () =
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | None -> Alcotest.failf "%s not registered" id
      | Some e ->
        let run jobs =
          e.Experiments.Registry.run ~seed:0 ~trials:(Some 40)
            ~jobs:(Some jobs)
        in
        Alcotest.check table_testable
          (id ^ ": -j 1 = -j 4")
          (run 1) (run 4))
    [ "E6"; "E9"; "E11"; "E14" ]

let tests =
  [
    Alcotest.test_case "stats empty" `Quick stats_empty;
    Alcotest.test_case "stats singleton" `Quick stats_singleton;
    Alcotest.test_case "stats fixture" `Quick stats_fixture;
    Alcotest.test_case "stats of ints" `Quick stats_of_ints;
    Alcotest.test_case "pool matches serial" `Quick pool_matches_serial;
    Alcotest.test_case "pool iter covers range" `Quick pool_iter_covers_range;
    Alcotest.test_case "pool propagates exception" `Quick
      pool_propagates_exception;
    Alcotest.test_case "campaign invariant under -j" `Quick
      campaign_jobs_invariant;
    Alcotest.test_case "campaign map keeps order" `Quick
      campaign_map_keeps_order;
    Alcotest.test_case "campaign stats roundtrip" `Quick
      campaign_stats_roundtrip;
    Alcotest.test_case "pool search deterministic under contention" `Quick
      pool_search_contended;
    Alcotest.test_case "registry tables deterministic across jobs" `Slow
      registry_deterministic_across_jobs;
  ]
