(* Model oracle for Fault_history's arena-backed representation.

   The history now stores rounds in a flat preallocated arena that grows
   by doubling, with an executor-only in-place tip append and surgery
   operations that must copy rather than alias.  The oracle is the
   obvious list-of-rounds model: every operation is applied to both, and
   the compact rendering must agree after each step.  Universes are
   drawn from both sides of the Pset representation boundary (n ≤ 62
   immediate, n > 62 wide), so the arena bookkeeping is exercised on
   multi-word fault sets too. *)

module H = Rrfd.Fault_history
module Pset = Rrfd.Pset

(* Operations, with raw integer parameters normalised against the
   current state at apply time (so shrinking stays well-typed). *)
type op =
  | Append of int list list  (* one id list per process, taken mod n *)
  | Update of int * int * int list
  | Drop of int
  | Truncate of int
  | Remove_proc of int

let pset_of ~n ids = Pset.of_list (List.map (fun i -> abs i mod n) ids)

let round_of ~n idss =
  Array.init n (fun p ->
      match List.nth_opt idss (p mod max 1 (List.length idss)) with
      | Some ids -> pset_of ~n ids
      | None -> Pset.empty)

(* The model: plain list of rounds, surgery by list manipulation. *)
let model_remove_proc ~n ~proc rows =
  let renumber s =
    Pset.fold
      (fun j acc ->
        if j = proc then acc
        else Pset.add (if j < proc then j else j - 1) acc)
      s Pset.empty
  in
  List.map
    (fun row ->
      Array.init (n - 1) (fun i ->
          renumber row.(if i < proc then i else i + 1)))
    rows

let apply_model (n, rows) op =
  match op with
  | Append idss -> (n, rows @ [ round_of ~n idss ])
  | Update (r, p, ids) when rows <> [] ->
    let r = 1 + (abs r mod List.length rows) and p = abs p mod n in
    ( n,
      List.mapi
        (fun i row ->
          if i = r - 1 then (
            let row = Array.copy row in
            row.(p) <- pset_of ~n ids;
            row)
          else row)
        rows )
  | Drop r when rows <> [] ->
    let r = 1 + (abs r mod List.length rows) in
    (n, List.filteri (fun i _ -> i <> r - 1) rows)
  | Truncate k ->
    let k = abs k mod (List.length rows + 1) in
    (n, List.filteri (fun i _ -> i < k) rows)
  | Remove_proc p when n > 1 ->
    let p = abs p mod n in
    (n - 1, model_remove_proc ~n ~proc:p rows)
  | Update _ | Drop _ | Remove_proc _ -> (n, rows)

let apply_real (n, h) op =
  match op with
  | Append idss -> (n, H.append h (round_of ~n idss))
  | Update (r, p, ids) when H.rounds h > 0 ->
    let r = 1 + (abs r mod H.rounds h) and p = abs p mod n in
    (n, H.update h ~round:r ~proc:p (pset_of ~n ids))
  | Drop r when H.rounds h > 0 ->
    (n, H.drop_round h ~round:(1 + (abs r mod H.rounds h)))
  | Truncate k -> (n, H.truncate h ~rounds:(abs k mod (H.rounds h + 1)))
  | Remove_proc p when n > 1 -> (n - 1, H.remove_proc h ~proc:(abs p mod n))
  | Update _ | Drop _ | Remove_proc _ -> (n, h)

let render ~n rows = H.to_string_compact (H.of_rounds ~n rows)

let qcheck_props =
  let open QCheck in
  let gen_ids = Gen.(list_size (int_bound 4) (int_bound 200)) in
  let gen_op =
    Gen.(
      frequency
        [
          (5, map (fun l -> Append l) (list_size (int_bound 5) gen_ids));
          (2, map3 (fun r p l -> Update (r, p, l)) nat nat gen_ids);
          (1, map (fun r -> Drop r) nat);
          (1, map (fun k -> Truncate k) nat);
          (1, map (fun p -> Remove_proc p) nat);
        ])
  in
  (* both Pset representations: immediate (n ≤ 62) and wide (n > 62) *)
  let gen_n = Gen.(frequency [ (3, int_range 1 8); (1, int_range 63 80) ]) in
  let arb_scenario =
    make
      ~print:(fun (n, ops) ->
        Printf.sprintf "n=%d, %d ops" n (List.length ops))
      Gen.(pair gen_n (list_size (int_bound 20) gen_op))
  in
  [
    Test.make ~name:"model: op sequences agree" ~count:300 arb_scenario
      (fun (n, ops) ->
        let _, h, mn, rows =
          List.fold_left
            (fun (rn, h, mn, rows) op ->
              let rn, h = apply_real (rn, h) op in
              let mn, rows = apply_model (mn, rows) op in
              if rn <> mn then
                Test.fail_reportf "process counts diverged: %d vs %d" rn mn;
              if H.to_string_compact h <> render ~n:mn rows then
                Test.fail_reportf "history diverged after an op:@.%a" H.pp h;
              (rn, h, mn, rows))
            (n, H.empty ~n, n, []) ops
        in
        H.to_string_compact h = render ~n:mn rows);
    Test.make ~name:"model: in-place appends cross the arena capacity"
      ~count:300
      (make
         ~print:Print.(pair int (pair int int))
         Gen.(pair gen_n (pair (int_bound 4) (int_range 0 12))))
      (fun (n, (capacity, rounds)) ->
        let rng = Dsim.Rng.create (n + (capacity * 131) + rounds) in
        let h = ref (H.create ~n ~capacity) in
        let rows = ref [] in
        for _ = 1 to rounds do
          let row =
            Array.init n (fun _ ->
                Pset.random_subset rng (Pset.full n))
          in
          let h' = H.append_in_place !h row in
          (* the tip append extends the handle itself *)
          if not (h' == !h) then
            Test.fail_report "append_in_place returned a fresh handle";
          rows := !rows @ [ row ]
        done;
        H.to_string_compact !h = render ~n !rows);
  ]

(* Functional appends from a shared prefix must not clobber each other
   even though they share an arena: the second append sees a backing
   whose tip moved past it and must copy. *)
let branching_append () =
  let n = 5 in
  let row k = Array.init n (fun i -> if i = k then Pset.of_list [ k ] else Pset.empty) in
  let prefix = H.append (H.create ~n ~capacity:4) (row 0) in
  let a = H.append prefix (row 1) in
  let b = H.append prefix (row 2) in
  Alcotest.(check string)
    "first branch intact"
    (render ~n [ row 0; row 1 ])
    (H.to_string_compact a);
  Alcotest.(check string)
    "second branch intact"
    (render ~n [ row 0; row 2 ])
    (H.to_string_compact b);
  Alcotest.(check string)
    "prefix untouched"
    (render ~n [ row 0 ])
    (H.to_string_compact prefix)

let tests =
  [ Alcotest.test_case "branching appends don't alias" `Quick branching_append ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
