let () =
  Alcotest.run "rrfd"
    [
      ("pset", Test_pset.tests);
      ("dsim", Test_dsim.tests);
      ("history+predicate", Test_history_predicate.tests);
      ("prefix-closure", Test_prefix_closure.tests);
      ("detector-gen", Test_detector_gen.tests);
      ("engine+kset", Test_engine_kset.tests);
      ("engine-compat", Test_engine_compat.tests);
      ("fault-history-model", Test_fault_history_model.tests);
      ("adopt-commit", Test_adopt_commit.tests);
      ("simulations", Test_simulations.tests);
      ("syncnet", Test_syncnet.tests);
      ("msgnet", Test_msgnet.tests);
      ("shm", Test_shm.tests);
      ("semisync", Test_semisync.tests);
      ("lower-bound", Test_lower_bound.tests);
      ("submodel", Test_submodel.tests);
      ("emulation", Test_emulation.tests);
      ("full-info+tasks", Test_fullinfo_tasks.tests);
      ("abd+ct", Test_abd_ct.tests);
      ("early-deciding", Test_early_deciding.tests);
      ("trace+model", Test_trace_model.tests);
      ("serialization", Test_serialization.tests);
      ("ablation", Test_ablation.tests);
      ("composition", Test_composition.tests);
      ("phased-consensus", Test_phased.tests);
      ("safe-agreement", Test_safe_agreement.tests);
      ("exec+net extras", Test_exec_extra.tests);
      ("bg-simulation", Test_bg.tests);
      ("snapshot-stress", Test_snapshot_stress.tests);
      ("protocols", Test_protocols.tests);
      ("registry", Test_registry.tests);
      ("runtime", Test_runtime.tests);
      ("report", Test_report.tests);
      ("check", Test_check.tests);
      ("faultnet", Test_faultnet.tests);
      ("derive", Test_derive.tests);
      ("live", Test_live.tests);
      ("byz", Test_byz.tests);
    ]
