let () = print_string (Test_support.Compat_fixture.render ())
