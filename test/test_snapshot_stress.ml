(* Stress tests for the atomic-snapshot construction: force the borrowed-
   scan path and check linearizability-flavoured invariants under heavy
   contention. *)

module S = Shm.Snapshot.Make (struct
  type t = int
end)

let borrow_path_exercised () =
  (* Updates interleave aggressively with one long scan; the construction
     must still terminate and return a coherent snapshot (it will borrow an
     embedded scan when double collects keep failing). *)
  let n = 4 in
  let result = ref [||] in
  let body ~proc =
    if proc = 0 then begin
      S.update ~proc 0;
      result := S.scan ()
    end
    else
      for i = 1 to 6 do
        S.update ~proc ((proc * 100) + i)
      done
  in
  (* Schedule: p0 starts its scan, then writers run in bursts between every
     one of p0's steps — the worst case for double collects. *)
  let script =
    List.concat
      (List.init 400 (fun i ->
           if i mod 4 = 0 then [ 0 ] else [ 1 + (i mod 3); 2 + (i mod 2) ]))
  in
  let _ = S.run ~n ~schedule:(Shm.Exec.Fixed script) body in
  Alcotest.(check int) "snapshot has n slots" n (Array.length !result);
  (* any value present must be a value some process actually wrote *)
  Array.iteri
    (fun q v ->
      match v with
      | None -> ()
      | Some v when q = 0 -> Alcotest.(check int) "p0 slot" 0 v
      | Some v ->
        Alcotest.(check bool) "plausible value" true
          (v >= (q * 100) + 1 && v <= (q * 100) + 6))
    !result

let scans_never_go_backwards =
  QCheck.Test.make ~name:"per-process scan sequences are monotone" ~count:300
    (Test_support.sized_seed ~max_n:6 ())
    (fun (n, seed) ->
      let rng = Test_support.rng_of seed in
      let per_proc_scans = Array.make n [] in
      let body ~proc =
        for i = 1 to 3 do
          S.update ~proc i;
          per_proc_scans.(proc) <- S.scan () :: per_proc_scans.(proc)
        done
      in
      let _ = S.run ~n ~schedule:(Shm.Exec.Random rng) body in
      (* within one process, later scans dominate earlier ones pointwise *)
      let leq a b =
        Array.for_all2
          (fun x y ->
            match (x, y) with
            | None, _ -> true
            | Some _, None -> false
            | Some u, Some v -> u <= v)
          a b
      in
      Array.for_all
        (fun scans ->
          let ordered = List.rev scans in
          let rec chain = function
            | a :: (b :: _ as rest) -> leq a b && chain rest
            | [ _ ] | [] -> true
          in
          chain ordered)
        per_proc_scans)

let own_update_visible =
  QCheck.Test.make ~name:"a scan after own update reflects it" ~count:300
    (Test_support.sized_seed ~min_n:1 ~max_n:6 ())
    (fun (n, seed) ->
      let rng = Test_support.rng_of seed in
      let ok = ref true in
      let body ~proc =
        S.update ~proc 41;
        S.update ~proc 42;
        let s = S.scan () in
        if s.(proc) <> Some 42 then ok := false
      in
      let _ = S.run ~n ~schedule:(Shm.Exec.Random rng) body in
      !ok)

let tests =
  [ Alcotest.test_case "borrow path" `Quick borrow_path_exercised ]
  @ List.map QCheck_alcotest.to_alcotest [ scans_never_go_backwards; own_update_visible ]
