(* Differential pin of the executor hot-path refactor.

   Test_support.Compat_fixture.render runs every catalog protocol on all
   four substrates under fully pinned seeds and renders every observable
   field of each execution.  The committed fixture
   (test/fixtures/engine_compat.expected) was generated from the
   pre-refactor executor, so a byte-for-byte comparison proves the
   view-based zero-allocation engine, the arena-backed fault history and
   the RNG representation change preserved every outcome and every draw
   stream.  Regenerate only from a trusted tree:
   dune exec test/gen/gen_compat.exe > test/fixtures/engine_compat.expected *)

(* dune runtest runs the executable in test/; dune exec runs it from the
   workspace root — accept both. *)
let fixture_path () =
  List.find Sys.file_exists
    [ "fixtures/engine_compat.expected"; "test/fixtures/engine_compat.expected" ]

let compat_pin () =
  let expected =
    In_channel.with_open_bin (fixture_path ()) In_channel.input_all
  in
  let actual = Test_support.Compat_fixture.render () in
  if not (String.equal expected actual) then begin
    let exp_lines = String.split_on_char '\n' expected in
    let act_lines = String.split_on_char '\n' actual in
    let rec first_diff i = function
      | e :: es, a :: aas ->
        if String.equal e a then first_diff (i + 1) (es, aas)
        else Some (i, e, a)
      | e :: _, [] -> Some (i, e, "<end of output>")
      | [], a :: _ -> Some (i, "<end of fixture>", a)
      | [], [] -> None
    in
    match first_diff 1 (exp_lines, act_lines) with
    | Some (line, e, a) ->
      Alcotest.failf
        "executor output diverged from the pre-refactor fixture at line %d:\n\
         fixture: %s\n\
         current: %s" line e a
    | None -> Alcotest.fail "fixture mismatch (line endings?)"
  end

(* The three validate_round rejections, pinned by exact message: the
   engine's per-round detector validation is what makes the downstream
   View.unsafe_set legal, so weakening it (or rewording it, which would
   break callers matching on the message) must show up here. *)
let validate_round_messages () =
  let n = 3 in
  let algorithm = Rrfd.Kset.one_round ~inputs:(Tasks.Inputs.distinct n) in
  let run detector () =
    ignore (Rrfd.Engine.run ~n ~algorithm ~detector ())
  in
  let bad name next = Rrfd.Detector.make ~name next in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Engine: detector returned wrong number of fault sets")
    (run (bad "arity" (fun _ -> [| Rrfd.Pset.empty |])));
  Alcotest.check_raises "outside the system"
    (Invalid_argument "Engine: detector named a process outside the system")
    (run (bad "outside" (fun _ -> Array.make n (Rrfd.Pset.of_list [ n ]))));
  Alcotest.check_raises "D = S"
    (Invalid_argument
       "Engine: detector declared every process faulty (D = S)")
    (run (bad "all-faulty" (fun _ -> Array.make n (Rrfd.Pset.full n))))

let tests =
  [
    Alcotest.test_case "catalog x substrates vs pre-refactor fixture" `Quick
      compat_pin;
    Alcotest.test_case "validate_round rejections (exact messages)" `Quick
      validate_round_messages;
  ]
