(* Benchmark harness.

   Two parts, both printed on every run:

   1. The experiment tables E1-E19 — one per claim of the paper (the paper
      has no numeric tables of its own; these are its theorems rendered as
      measurable artifacts).  Trial counts are reduced here to keep the
      harness quick; `rrfd-experiments all` runs the full versions.
   2. Bechamel micro-benchmarks of the building blocks (one Test.make per
      subsystem), reporting estimated time per operation.

   Telemetry: `--json PATH` additionally writes everything measured as a
   BENCH json (schema in lib/report and README.md); `--check BASELINE
   [--tolerance PCT]` compares the fresh run against a saved report and
   exits non-zero on a timing regression beyond tolerance or a table that
   was passing in the baseline and fails now.  `--trials`,
   `--speedup-trials` and `--quota` shrink the run for CI smoke jobs. *)

(* The raw OS monotonic clock (ns since an arbitrary origin).  Bound before
   the opens: Toolkit exports a measure module of the same name. *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit

let seed = 0

(* CLI ---------------------------------------------------------------- *)

let json_path = ref None
let check_path = ref None
let tolerance = ref 50.0
let table_trials = ref 50
let speedup_trials = ref 1500
let quota = ref 0.25
let scale_repeats = ref 2

let () =
  let spec =
    [
      ( "--json",
        Arg.String (fun p -> json_path := Some p),
        "PATH  write the run's telemetry as BENCH json (PATH `auto` names \
         it BENCH_<shortsha>.json)" );
      ( "--check",
        Arg.String (fun p -> check_path := Some p),
        "BASELINE.json  compare this run against a saved report; exit \
         non-zero on regression" );
      ( "--tolerance",
        Arg.Set_float tolerance,
        "PCT  allowed ns/run slowdown before --check fails (default 50)" );
      ( "--trials",
        Arg.Set_int table_trials,
        "N  per-configuration trial count for the experiment tables \
         (default 50)" );
      ( "--speedup-trials",
        Arg.Set_int speedup_trials,
        "N  E6 trial count for the serial-vs-parallel check (default 1500)" );
      ( "--quota",
        Arg.Set_float quota,
        "SECS  bechamel time budget per subject (default 0.25)" );
      ( "--scale-repeats",
        Arg.Set_int scale_repeats,
        "N  timed repetitions per E25 scale probe (default 2; 0 skips the \
         scale section)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench [--json PATH] [--check BASELINE.json] [--tolerance PCT] [--trials \
     N] [--speedup-trials N] [--quota SECS]"

(* Accurate per-run allocation measure.  Bechamel 0.5's own
   minor_allocated reads [Gc.quick_stat], which on OCaml 5 excludes the
   words allocated since the last minor collection — subjects that
   allocate less than a minor heap per sampling batch report 0.
   [Gc.minor_words] reads the domain's allocation pointer directly, so
   the OLS fit over it is exact down to a single word per run. *)
module Minor_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words"
  let unit () = "mnw"
end

let minor_words_instance =
  Measure.instance (module Minor_words) (Measure.register (module Minor_words))

(* -------------------------------------------------------------------- *)
(* Micro-benchmark subjects.                                             *)

(* The steady-state kernel subjects hoist everything reusable — inputs,
   algorithm, the (stateful) generator — out of the timed closure, so the
   number is the per-run cost of the engine loop plus one detector query,
   not of rebuilding the fixture. *)
let bench_engine_kset_round n =
  let rng = Dsim.Rng.create seed in
  let inputs = Tasks.Inputs.distinct n in
  let detector = Rrfd.Detector_gen.k_set rng ~n ~k:2 in
  let algorithm = Rrfd.Kset.one_round ~inputs in
  Staged.stage (fun () -> ignore (Rrfd.Engine.run ~n ~algorithm ~detector ()))

let bench_full_info_rounds n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.distinct n in
      let detector = Rrfd.Detector_gen.async rng ~n ~f:((n - 1) / 2) in
      ignore
        (Rrfd.Engine.states_after ~n ~rounds:4
           ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
           ~detector ()))

let bench_immediate_snapshot n =
  let rng = Dsim.Rng.create seed in
  let schedule = Shm.Exec.Random (Dsim.Rng.split rng) in
  Staged.stage (fun () ->
      ignore (Shm.Immediate_snapshot.run_once ~n ~schedule))

let bench_adopt_commit_registers n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.binary rng n in
      ignore
        (Shm.Adopt_commit_shm.run ~inputs
           ~schedule:(Shm.Exec.Random (Dsim.Rng.split rng))))

let bench_sim_crash_round n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.distinct n in
      let sync = Syncnet.Flood.min_flood ~inputs ~horizon:2 in
      ignore
        (Rrfd.Engine.states_after ~n ~rounds:6
           ~algorithm:(Rrfd.Sim_crash.algorithm ~sync)
           ~detector:(Rrfd.Detector_gen.iis rng ~n ~f:1)
           ()))

let bench_two_step n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.distinct n in
      ignore
        (Semisync.Two_step.run ~n ~inputs
           ~schedule:(Semisync.Machine.Random (Dsim.Rng.split rng))
           ()))

let bench_ring_baseline n =
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.distinct n in
      ignore
        (Semisync.Ring_baseline.run ~n ~inputs
           ~schedule:Semisync.Machine.Round_robin))

let bench_round_layer n =
  let counter = ref 0 in
  Staged.stage (fun () ->
      incr counter;
      let inputs = Tasks.Inputs.distinct n in
      ignore
        (Msgnet.Round_layer.run ~seed:!counter ~n ~f:((n - 1) / 2) ~rounds:3
           ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
           ()))

(* The round layer with the adversary and its repair protocol active: what
   fault injection costs on top of the clean path above. *)
let bench_faultnet_round_layer n =
  let counter = ref 0 in
  let adversary =
    match Msgnet.Adversary.of_spec "drop:p=20+dup:p=20" with
    | Ok a -> a
    | Error e -> failwith e
  in
  Staged.stage (fun () ->
      incr counter;
      let inputs = Tasks.Inputs.distinct n in
      ignore
        (Msgnet.Round_layer.run ~seed:!counter ~adversary ~n ~f:((n - 1) / 2)
           ~rounds:3
           ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
           ()))

let bench_abd_write_read n =
  let counter = ref 0 in
  Staged.stage (fun () ->
      incr counter;
      let sim = Dsim.Sim.create ~seed:!counter () in
      let reg = Msgnet.Abd.create ~sim ~n ~f:((n - 1) / 2) ~writer:0 () in
      Msgnet.Abd.write reg ~value:1 ~on_done:(fun () ->
          Msgnet.Abd.read reg ~proc:(n - 1) ~on_done:(fun _ -> ()));
      Dsim.Sim.run sim)

let bench_ct_consensus n =
  let counter = ref 0 in
  Staged.stage (fun () ->
      incr counter;
      let inputs = Tasks.Inputs.distinct n in
      ignore
        (Msgnet.Ct_consensus.run ~seed:!counter ~n ~f:((n - 1) / 2) ~inputs ()))

let bench_early_deciding n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let f = (n - 1) / 2 in
      let inputs = Tasks.Inputs.distinct n in
      let pattern = Syncnet.Faults.random_crash rng ~n ~f:1 ~max_round:2 in
      ignore
        (Syncnet.Sync_net.run ~n ~rounds:(f + 1) ~pattern
           ~algorithm:(Syncnet.Early_deciding.algorithm ~inputs ~f)
           ()))

let bench_safe_agreement n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.distinct n in
      ignore
        (Shm.Safe_agreement.run ~inputs
           ~schedule:(Shm.Exec.Random (Dsim.Rng.split rng))
           ()))

let bench_phased_consensus n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let inputs = Tasks.Inputs.distinct n in
      let stabilize_at = 4 in
      ignore
        (Rrfd.Engine.run ~n
           ~max_rounds:(Rrfd.Phased_consensus.rounds_needed ~stabilize_at)
           ~algorithm:(Rrfd.Phased_consensus.algorithm ~inputs)
           ~detector:
             (Rrfd.Phased_consensus.detector (Dsim.Rng.split rng) ~n
                ~f:(n - 1) ~stabilize_at)
           ()))

(* One whole (serial) campaign per run: measures the per-trial overhead the
   Runtime layer adds on top of the raw engine loop above. *)
let bench_campaign_kset n =
  Staged.stage (fun () ->
      ignore
        (Runtime.Campaign.run ~jobs:1 ~seed ~trials:32 (fun ~trial:_ ~rng ->
             let inputs = Tasks.Inputs.distinct n in
             let detector = Rrfd.Detector_gen.k_set rng ~n ~k:2 in
             Rrfd.Engine.run ~n
               ~algorithm:(Rrfd.Kset.one_round ~inputs)
               ~detector ())))

(* The unified substrate layer's dispatch cost: the same engine execution
   as kset-one-round above, but reached through the protocol catalog's
   existentially-packed entry and returned as a Substrate execution record
   — the abstraction tax every catalog-driven run-loop and E22 cell pays
   over the direct call path. *)
let bench_substrate_dispatch n =
  let rng = Dsim.Rng.create seed in
  let proto = Protocols.Catalog.find_exn "kset-one-round" in
  let detector = Rrfd.Detector_gen.k_set rng ~n ~k:2 in
  Staged.stage (fun () ->
      ignore (Protocols.Catalog.run_engine proto ~n ~f:1 ~detector ()))

let bench_sync_flood n =
  let rng = Dsim.Rng.create seed in
  Staged.stage (fun () ->
      let f = (n - 1) / 2 in
      let inputs = Tasks.Inputs.distinct n in
      let pattern = Syncnet.Faults.random_crash rng ~n ~f ~max_round:(f + 1) in
      ignore
        (Syncnet.Sync_net.run ~n ~rounds:(f + 1) ~pattern
           ~algorithm:(Syncnet.Flood.consensus ~inputs ~f)
           ()))

(* The live substrate: spawn n-1 real domains, run quorum-patience
   flood-consensus and join.  Dominated by domain spawn/join cost, so it
   measures the price of trading simulated rounds for real scheduling. *)
let bench_live_substrate n =
  let proto = Protocols.Catalog.find_exn "flood-consensus" in
  Staged.stage (fun () ->
      ignore (Protocols.Catalog.run_live proto ~n ~f:((n - 1) / 2) ()))

let tests =
  Test.make_grouped ~name:"rrfd" ~fmt:"%s/%s"
    [
      Test.make_indexed ~name:"kset-one-round" ~fmt:"%s n=%d" ~args:[ 4; 8; 16; 32 ]
        bench_engine_kset_round;
      Test.make_indexed ~name:"substrate-dispatch" ~fmt:"%s n=%d"
        ~args:[ 4; 8; 16; 32 ] bench_substrate_dispatch;
      Test.make_indexed ~name:"full-info-4-rounds" ~fmt:"%s n=%d" ~args:[ 4; 8 ]
        bench_full_info_rounds;
      Test.make_indexed ~name:"immediate-snapshot" ~fmt:"%s n=%d"
        ~args:[ 4; 8; 16 ] bench_immediate_snapshot;
      Test.make_indexed ~name:"adopt-commit-registers" ~fmt:"%s n=%d"
        ~args:[ 4; 8; 16 ] bench_adopt_commit_registers;
      Test.make_indexed ~name:"sim-crash-2-sync-rounds" ~fmt:"%s n=%d"
        ~args:[ 4; 8 ] bench_sim_crash_round;
      Test.make_indexed ~name:"semisync-two-step" ~fmt:"%s n=%d"
        ~args:[ 4; 16; 32 ] bench_two_step;
      Test.make_indexed ~name:"semisync-ring-baseline" ~fmt:"%s n=%d"
        ~args:[ 4; 16; 32 ] bench_ring_baseline;
      Test.make_indexed ~name:"msgnet-round-layer" ~fmt:"%s n=%d" ~args:[ 4; 8 ]
        bench_round_layer;
      Test.make_indexed ~name:"faultnet-round-layer" ~fmt:"%s n=%d"
        ~args:[ 4; 8 ] bench_faultnet_round_layer;
      Test.make_indexed ~name:"sync-floodset" ~fmt:"%s n=%d" ~args:[ 4; 8; 16 ]
        bench_sync_flood;
      Test.make_indexed ~name:"sync-early-deciding" ~fmt:"%s n=%d"
        ~args:[ 4; 8; 16 ] bench_early_deciding;
      Test.make_indexed ~name:"abd-write+read" ~fmt:"%s n=%d" ~args:[ 3; 5; 9 ]
        bench_abd_write_read;
      Test.make_indexed ~name:"ct-consensus" ~fmt:"%s n=%d" ~args:[ 3; 5 ]
        bench_ct_consensus;
      Test.make_indexed ~name:"safe-agreement" ~fmt:"%s n=%d" ~args:[ 2; 4; 8 ]
        bench_safe_agreement;
      Test.make_indexed ~name:"phased-consensus" ~fmt:"%s n=%d" ~args:[ 4; 8 ]
        bench_phased_consensus;
      Test.make_indexed ~name:"campaign-kset-32-trials" ~fmt:"%s n=%d"
        ~args:[ 8; 16 ] bench_campaign_kset;
      Test.make_indexed ~name:"live-substrate" ~fmt:"%s n=%d" ~args:[ 2; 4 ]
        bench_live_substrate;
    ]

(* Returns (name, ns/run, minor words/run) estimates alongside the printed
   listing, so the telemetry layer can export exactly what was shown.  The
   allocation column is the same OLS fit applied to bechamel's
   minor_allocated measure: words of minor-heap allocation per run,
   attributing loop-amortised GC noise away exactly like the clock fit. *)
let run_timing () =
  Printf.printf
    "\n=== micro-benchmarks (estimated time / minor words per run) ===\n%!";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second !quota) ~kde:None () in
  let raw =
    Benchmark.all cfg [ minor_words_instance; Instance.monotonic_clock ] tests
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | None -> nan
    | Some ols_result -> (
      match Analyze.OLS.estimates ols_result with
      | Some (t :: _) -> t
      | Some [] | None -> nan)
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols minor_words_instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name _ ->
      let nanos = estimate times name in
      let words = estimate allocs name in
      let alloc = if Float.is_nan words then None else Some words in
      rows := (name, nanos, alloc) :: !rows)
    times;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, nanos, alloc) ->
      let alloc_str =
        match alloc with
        | None -> ""
        | Some w -> Printf.sprintf "  %10.1f w/run" w
      in
      if Float.is_nan nanos then Printf.printf "  %-40s (no estimate)\n" name
      else if nanos > 1_000_000.0 then
        Printf.printf "  %-40s %10.3f ms/run%s\n" name
          (nanos /. 1_000_000.0) alloc_str
      else if nanos > 1_000.0 then
        Printf.printf "  %-40s %10.3f us/run%s\n" name (nanos /. 1_000.0)
          alloc_str
      else Printf.printf "  %-40s %10.1f ns/run%s\n" name nanos alloc_str)
    rows;
  rows

(* The E25 scale probes, timed whole-run (they are far too coarse for
   bechamel's per-op sampling): wide-Pset throughput at n = 100,
   denominated in work units so the --check gate catches the
   representation going accidentally quadratic.  The separate
   bench/scale-baseline.json carries only these subjects; CI gates them
   in the scale-smoke job with a loose tolerance. *)
let run_scale () =
  if !scale_repeats <= 0 then []
  else begin
    Printf.printf "\n=== scale throughput (E25 probes, wide Pset) ===\n%!";
    let ms =
      Experiments.E25_scale.measure
        ~now_ns:(fun () -> Mclock.now ())
        ~ns:[ 100 ] ~repeats:!scale_repeats ()
    in
    Experiments.E25_scale.print_measurements ms;
    List.map
      (fun s -> (s.Report.name, s.Report.ns_per_run, s.Report.alloc_per_run))
      (Experiments.E25_scale.subjects_of ms)
  end

let run_tables () =
  Printf.printf "=== experiment tables (reduced trial counts) ===\n%!";
  let tables =
    List.map
      (fun e ->
        e.Experiments.Registry.run ~seed ~trials:(Some !table_trials)
          ~jobs:None)
      Experiments.Registry.all
  in
  List.iter Experiments.Table.print tables;
  tables

(* Serial-vs-parallel wall clock for a campaign-backed experiment, with the
   determinism contract checked on the spot: the two tables must be equal
   cell for cell.  Timed with the monotonic clock — NTP slews and
   wall-clock jumps must not skew a determinism/speedup verdict. *)
let run_speedup () =
  let jobs = Runtime.Pool.recommended_jobs () in
  Printf.printf "\n=== campaign speedup (E6, %d cores recommended) ===\n%!" jobs;
  let wall f =
    let t0 = Mclock.now () in
    let r = f () in
    let t1 = Mclock.now () in
    (r, Int64.to_float (Int64.sub t1 t0) /. 1e9)
  in
  let trials = !speedup_trials in
  let serial, t_serial =
    wall (fun () -> Experiments.E06_kset_one_round.run ~seed ~trials ~jobs:1 ())
  in
  let parallel, t_parallel =
    wall (fun () -> Experiments.E06_kset_one_round.run ~seed ~trials ~jobs ())
  in
  let identical = serial = parallel in
  let factor = t_serial /. t_parallel in
  Printf.printf
    "  E6 x%d trials: serial %.3fs, -j %d %.3fs, speedup %.2fx, tables \
     identical: %s\n"
    trials t_serial jobs t_parallel factor
    (if identical then "yes" else "NO");
  if jobs < 4 then
    Printf.printf
      "  (fewer than 4 cores: speedup is not expected to clear 1.5x here)\n";
  {
    Report.trials;
    jobs;
    serial_s = t_serial;
    parallel_s = t_parallel;
    factor;
    identical;
  }

(* Telemetry ---------------------------------------------------------- *)

let build_report ~subjects ~tables ~speedup =
  {
    Report.version = Report.version;
    meta =
      {
        Report.seed;
        jobs = Runtime.Pool.recommended_jobs ();
        recommended_jobs = Domain.recommended_domain_count ();
        git_sha = Report.git_short_sha ();
        hostname = (try Unix.gethostname () with _ -> "unknown");
      };
    subjects =
      List.map
        (fun (name, nanos, alloc) ->
          { Report.name; ns_per_run = nanos; alloc_per_run = alloc })
        subjects;
    tables =
      List.map
        (fun t ->
          {
            Report.id = t.Experiments.Table.id;
            title = t.Experiments.Table.title;
            ok = Experiments.Table.ok t;
            counters =
              List.map
                (fun (label, s) -> (label, Report.stat_of_stats s))
                t.Experiments.Table.counters;
          })
        tables;
    speedup = Some speedup;
  }

let () =
  let tables = run_tables () in
  let failed = List.filter (fun t -> not (Experiments.Table.ok t)) tables in
  let subjects = run_timing () @ run_scale () in
  let speedup = run_speedup () in
  let report = build_report ~subjects ~tables ~speedup in
  Option.iter
    (fun path ->
      let path = Report.artifact_path ~prefix:"BENCH" path in
      Report.save path report;
      Printf.printf "\nbench: wrote %s\n" path)
    !json_path;
  let check_passed =
    match !check_path with
    | None -> true
    | Some path ->
      let baseline = Report.load path in
      let result =
        Report.check ~tolerance_pct:!tolerance ~baseline ~current:report
      in
      Report.print_check result;
      Report.check_ok result
  in
  let deterministic = speedup.Report.identical in
  if not deterministic then
    Printf.printf "\nbench: serial and parallel E6 tables DIFFER\n";
  if failed <> [] then
    Printf.printf "\nbench: FAILED tables: %s\n"
      (String.concat ", " (List.map (fun t -> t.Experiments.Table.id) failed));
  if not check_passed then
    Printf.printf "\nbench: regression check against baseline FAILED\n";
  if failed = [] && deterministic && check_passed then
    Printf.printf "\nbench: all experiment tables OK\n"
  else exit 1
