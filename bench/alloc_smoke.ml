(* Allocation smoke gate: proves the engine's steady-state rounds
   allocate zero minor-heap words.

   Method: run the same fixture twice with identical per-run setup —
   same n, same [max_rounds] (so the history arena is sized identically
   and never grows), same algorithm and detector — varying only how many
   steady-state rounds execute before a stopping predicate ends the run.
   Everything that allocates per run (states, decision arrays, the first
   round's emit-buffer sizing, the algorithm's round-1 transitions, the
   harness's own [Gc.minor_words] boxing) is present in both runs and
   cancels; the only difference is the extra steady-state rounds.  If
   those rounds allocate a single word, the two [Gc.minor_words] deltas
   differ and the gate fails.

   This is exact, not statistical: allocation on a fixed seed-free path
   is deterministic, so the deltas are compared with [=], no tolerance.

   Scope: universes small enough for the immediate Pset representation
   (n ≤ 62).  Wide universes store fault sets as heap arrays, so set
   algebra ([Pset.diff] inside [View.unsafe_set]) inherently allocates
   there; the hot-path discipline (DESIGN.md) claims zero allocation for
   the immediate representation only.

   Wired to the [@alloc-smoke] dune alias; CI runs it in the smoke
   matrix next to the determinism byte-compares. *)

let failures = ref 0

(* A predicate whose only job is to stop the run after [k] rounds.  The
   engine treats a predicate report as a violation and halts; returning a
   preallocated [Some] keeps the stop itself off the minor heap. *)
let stop_after k =
  let stop = Some "alloc-smoke: planned stop" in
  Rrfd.Predicate.make
    ~incr:(fun _h ~round -> if round >= k then stop else None)
    ~name:"alloc-smoke-stop" ~doc:"stops the run after k rounds"
    (fun h -> if Rrfd.Fault_history.rounds h >= k then stop else None)

(* Minor words allocated by [f ()].  The boxing of the second counter
   read lands after the read itself, so the delta is exact up to a
   constant that is identical across calls — and the gate only compares
   deltas against each other. *)
let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

(* [per_round ~run] is the exact number of minor words one extra
   steady-state round costs, measured as the delta between a 2-round and
   a 4-round execution of the same fixture. *)
let per_round ~run =
  ignore (run ~rounds:2);
  (* warm up: first call may trigger lazy initialisation *)
  let short = minor_delta (fun () -> run ~rounds:2) in
  let long = minor_delta (fun () -> run ~rounds:4) in
  (long -. short) /. 2.0

let check ~label ~run =
  let words = per_round ~run in
  if words = 0.0 then Printf.printf "  %-28s 0 words/round  OK\n" label
  else begin
    incr failures;
    Printf.printf "  %-28s %+.1f words/round  FAIL\n" label words
  end

(* One fixed fault set per process, constant across rounds: p0 misses
   p_{n-1}, everyone else misses nobody.  Constant detectors return the
   same array every query, so the detector contributes zero words. *)
let fixture n =
  let sets = Array.make n Rrfd.Pset.empty in
  sets.(0) <- Rrfd.Pset.of_list [ n - 1 ];
  let detector = Rrfd.Detector.constant ~n sets in
  let algorithm = Rrfd.Kset.one_round ~inputs:(Tasks.Inputs.distinct n) in
  (detector, algorithm)

let engine_kernel n ~rounds =
  let detector, algorithm = fixture n in
  ignore
    (Rrfd.Engine.run ~n ~max_rounds:4 ~check:(stop_after rounds)
       ~stop_when_decided:false ~algorithm ~detector ())

let substrate_dispatch n ~rounds =
  let detector, algorithm = fixture n in
  let config =
    {
      Rrfd.Engine.As_substrate.detector;
      check = Some (stop_after rounds);
      stop_when_decided = false;
    }
  in
  ignore (Rrfd.Engine.As_substrate.execute config ~n ~rounds:4 ~algorithm)

let () =
  Printf.printf "=== alloc smoke: minor words per steady-state round ===\n";
  List.iter
    (fun n ->
      check
        ~label:(Printf.sprintf "kset-one-round n=%d" n)
        ~run:(engine_kernel n);
      check
        ~label:(Printf.sprintf "substrate-dispatch n=%d" n)
        ~run:(substrate_dispatch n))
    [ 4; 16; 48 ];
  if !failures > 0 then begin
    Printf.printf "alloc smoke: %d kernel(s) allocate in steady state\n"
      !failures;
    exit 1
  end;
  Printf.printf "alloc smoke: steady-state rounds are allocation-free\n"
