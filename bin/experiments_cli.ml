(* Command-line runner for the paper's experiments (E1-E14).

   `rrfd-experiments list`            enumerate experiments
   `rrfd-experiments run E6 E9`       run selected experiments
   `rrfd-experiments all`             run everything
   options: --seed, --trials, -j/--jobs *)

open Cmdliner

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ())

let seed_arg =
  let doc = "Random seed; every experiment is reproducible from it." in
  Arg.(value & opt int Experiments.Registry.default_seed & info [ "seed" ] ~doc)

let trials_arg =
  let doc = "Override the per-configuration trial count." in
  Arg.(value & opt (some int) None & info [ "trials" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo campaigns (default: all cores).  \
     Tables are bit-identical for every value: trial RNGs derive from \
     (seed, trial index), so -j only changes wall-clock time."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)

let list_cmd =
  let run () =
    setup_logs ();
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments and what they reproduce.")
    Term.(const run $ const ())

let run_tables tables =
  List.iter Experiments.Table.print tables;
  let failed =
    List.filter (fun t -> not (Experiments.Table.ok t)) tables
  in
  if failed = [] then begin
    Printf.printf "\nAll %d experiment table(s) match the paper's claims.\n"
      (List.length tables);
    0
  end
  else begin
    Printf.printf "\n%d experiment table(s) FAILED: %s\n" (List.length failed)
      (String.concat ", " (List.map (fun t -> t.Experiments.Table.id) failed));
    1
  end

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (e.g. E6 e9)." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run seed trials jobs ids =
    setup_logs ();
    let entries =
      List.map
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try `list`)\n" id;
            exit 2)
        ids
    in
    run_tables
      (List.map
         (fun e -> e.Experiments.Registry.run ~seed ~trials ~jobs)
         entries)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run selected experiments.")
    Term.(const run $ seed_arg $ trials_arg $ jobs_arg $ ids_arg)

let all_cmd =
  let run seed trials jobs =
    setup_logs ();
    run_tables
      (List.map
         (fun e -> e.Experiments.Registry.run ~seed ~trials ~jobs)
         Experiments.Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (E1-E19).")
    Term.(const run $ seed_arg $ trials_arg $ jobs_arg)

(* `lattice` — print the submodel relation between two named predicates at
   a configurable (small) system size. *)
let lattice_cmd =
  let predicate_of_name ~f name =
    match String.lowercase_ascii name with
    | "crash" -> Some (Rrfd.Predicate.crash ~f)
    | "omission" -> Some (Rrfd.Predicate.omission ~f)
    | "async" -> Some (Rrfd.Predicate.async_resilient ~f)
    | "shm" -> Some (Rrfd.Predicate.shared_memory ~f)
    | "snapshot" -> Some (Rrfd.Predicate.snapshot ~f)
    | "kset" -> Some (Rrfd.Predicate.k_set ~k:(f + 1))
    | "eq5" -> Some Rrfd.Predicate.identical_views
    | "dets" | "detector-s" -> Some Rrfd.Predicate.detector_s
    | _ -> None
  in
  let names = "crash, omission, async, shm, snapshot, kset, eq5, detector-s" in
  let a_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEFT" ~doc:names)
  in
  let b_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RIGHT" ~doc:names)
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"System size (keep ≤ 4).") in
  let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Resilience parameter.") in
  let rounds_arg =
    Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"History length (keep ≤ 2).")
  in
  let run a b n f rounds =
    setup_logs ();
    match (predicate_of_name ~f a, predicate_of_name ~f b) with
    | Some pa, Some pb -> (
      match Rrfd.Submodel.check_exhaustive ~n ~rounds pa pb with
      | Rrfd.Submodel.Implies ->
        Printf.printf "%s ⇒ %s over every ≤%d-round %d-process history\n"
          (Rrfd.Predicate.name pa) (Rrfd.Predicate.name pb) rounds n;
        0
      | Rrfd.Submodel.Counterexample h ->
        Printf.printf "%s ⇏ %s; counterexample:\n  %s\n"
          (Rrfd.Predicate.name pa) (Rrfd.Predicate.name pb)
          (Rrfd.Fault_history.to_string_compact h);
        0)
    | None, _ | _, None ->
      Printf.eprintf "unknown predicate name; choose from: %s\n" names;
      2
  in
  Cmd.v
    (Cmd.info "lattice"
       ~doc:"Check a submodel relation (Sec. 2) exhaustively at a small size.")
    Term.(const run $ a_arg $ b_arg $ n_arg $ f_arg $ rounds_arg)

(* `trace` — run one-round k-set agreement under a chosen model and print
   the full transcript. *)
let trace_cmd =
  let n_arg = Arg.(value & opt int 6 & info [ "n" ] ~doc:"System size.") in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement bound.") in
  let run seed n k =
    setup_logs ();
    let rng = Dsim.Rng.create seed in
    let inputs = Tasks.Inputs.distinct n in
    let trace =
      Rrfd.Trace.record ~n
        ~check:(Rrfd.Predicate.k_set ~k)
        ~pp_msg:Format.pp_print_int
        ~algorithm:(Rrfd.Kset.one_round ~inputs)
        ~detector:(Rrfd.Detector_gen.k_set rng ~n ~k)
        ()
    in
    Format.printf "@[<v>%a@]@." (Rrfd.Trace.pp Format.pp_print_int) trace;
    Printf.printf "history: %s\n"
      (Rrfd.Fault_history.to_string_compact
         trace.Rrfd.Trace.outcome.Rrfd.Engine.history);
    match
      Tasks.Agreement.check ~k ~inputs
        trace.Rrfd.Trace.outcome.Rrfd.Engine.decisions
    with
    | None ->
      Printf.printf "%d-set agreement: OK\n" k;
      0
    | Some reason ->
      Printf.printf "%d-set agreement VIOLATED: %s\n" k reason;
      1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one-round k-set agreement (Thm 3.1) and print the transcript.")
    Term.(const run $ seed_arg $ n_arg $ k_arg)

let main =
  let doc =
    "Reproduce the results of Gafni's 'Round-by-Round Fault Detectors' \
     (PODC 1998)."
  in
  Cmd.group
    (Cmd.info "rrfd-experiments" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; lattice_cmd; trace_cmd ]

let () = exit (Cmd.eval' main)
