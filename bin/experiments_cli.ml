(* Command-line runner for the paper's experiments (E1-E26).

   `rrfd-experiments list`            enumerate experiments
   `rrfd-experiments run E6 E9`       run selected experiments
   `rrfd-experiments all`             run everything
   `rrfd-experiments faultnet`        fault-injection + heard-of replay
   `rrfd-experiments xsub`            cross-substrate differential matrix
   `rrfd-experiments live`            real domains + live heard-of replay
   `rrfd-experiments scale`           large-n grid / throughput gate
   `rrfd-experiments byz`             Byzantine fork accountability (E24)
   `rrfd-experiments derive`          derive+certify heard-of predicates (E26)
   options: --seed, --trials, -j/--jobs *)

(* The raw OS monotonic clock, for the scale throughput measurements. *)
module Mclock = Monotonic_clock

open Cmdliner

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ())

let seed_arg =
  let doc = "Random seed; every experiment is reproducible from it." in
  Arg.(value & opt int Experiments.Registry.default_seed & info [ "seed" ] ~doc)

let trials_arg =
  let doc = "Override the per-configuration trial count." in
  Arg.(value & opt (some int) None & info [ "trials" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo campaigns (default: all cores).  \
     Tables are bit-identical for every value: trial RNGs derive from \
     (seed, trial index), so -j only changes wall-clock time."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)

let list_cmd =
  let run () =
    setup_logs ();
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments and what they reproduce.")
    Term.(const run $ const ())

let run_tables tables =
  List.iter Experiments.Table.print tables;
  let failed =
    List.filter (fun t -> not (Experiments.Table.ok t)) tables
  in
  if failed = [] then begin
    Printf.printf "\nAll %d experiment table(s) match the paper's claims.\n"
      (List.length tables);
    0
  end
  else begin
    Printf.printf "\n%d experiment table(s) FAILED: %s\n" (List.length failed)
      (String.concat ", " (List.map (fun t -> t.Experiments.Table.id) failed));
    1
  end

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (e.g. E6 e9)." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run seed trials jobs ids =
    setup_logs ();
    let entries =
      List.map
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try `list`)\n" id;
            exit 2)
        ids
    in
    run_tables
      (List.map
         (fun e -> e.Experiments.Registry.run ~seed ~trials ~jobs)
         entries)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run selected experiments.")
    Term.(const run $ seed_arg $ trials_arg $ jobs_arg $ ids_arg)

let all_cmd =
  let run seed trials jobs =
    setup_logs ();
    run_tables
      (List.map
         (fun e -> e.Experiments.Registry.run ~seed ~trials ~jobs)
         Experiments.Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment (E1-E26).")
    Term.(const run $ seed_arg $ trials_arg $ jobs_arg)

(* `lattice` — print the submodel relation between two named predicates at
   a configurable (small) system size. *)
let lattice_cmd =
  let predicate_of_name ~f name =
    match String.lowercase_ascii name with
    | "crash" -> Some (Rrfd.Predicate.crash ~f)
    | "omission" -> Some (Rrfd.Predicate.omission ~f)
    | "async" -> Some (Rrfd.Predicate.async_resilient ~f)
    | "shm" -> Some (Rrfd.Predicate.shared_memory ~f)
    | "snapshot" -> Some (Rrfd.Predicate.snapshot ~f)
    | "kset" -> Some (Rrfd.Predicate.k_set ~k:(f + 1))
    | "eq5" -> Some Rrfd.Predicate.identical_views
    | "dets" | "detector-s" -> Some Rrfd.Predicate.detector_s
    | _ -> None
  in
  let names = "crash, omission, async, shm, snapshot, kset, eq5, detector-s" in
  let a_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEFT" ~doc:names)
  in
  let b_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RIGHT" ~doc:names)
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"System size (keep ≤ 4).") in
  let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Resilience parameter.") in
  let rounds_arg =
    Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"History length (keep ≤ 2).")
  in
  let run a b n f rounds =
    setup_logs ();
    match (predicate_of_name ~f a, predicate_of_name ~f b) with
    | Some pa, Some pb -> (
      match Rrfd.Submodel.check_exhaustive ~n ~rounds pa pb with
      | Rrfd.Submodel.Implies ->
        Printf.printf "%s ⇒ %s over every ≤%d-round %d-process history\n"
          (Rrfd.Predicate.name pa) (Rrfd.Predicate.name pb) rounds n;
        0
      | Rrfd.Submodel.Counterexample h ->
        Printf.printf "%s ⇏ %s; counterexample:\n  %s\n"
          (Rrfd.Predicate.name pa) (Rrfd.Predicate.name pb)
          (Rrfd.Fault_history.to_string_compact h);
        0)
    | None, _ | _, None ->
      Printf.eprintf "unknown predicate name, expected one of: %s\n" names;
      2
  in
  Cmd.v
    (Cmd.info "lattice"
       ~doc:"Check a submodel relation (Sec. 2) exhaustively at a small size.")
    Term.(const run $ a_arg $ b_arg $ n_arg $ f_arg $ rounds_arg)

(* `trace` — run any catalog protocol under a chosen model and print the
   full transcript.  Protocol names, printers and horizons all come from
   the catalog; nothing here is per-protocol. *)
let trace_cmd =
  let protocol_arg =
    let doc =
      "Catalog protocol to trace: "
      ^ String.concat ", " Protocols.Catalog.names
      ^ "."
    in
    Arg.(
      value
      & opt string "kset-one-round"
      & info [ "protocol" ] ~docv:"NAME" ~doc)
  in
  let n_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~doc:"System size (default: 6 for k-set protocols, the \
                           catalog default otherwise).")
  in
  let k_arg =
    Arg.(
      value & opt int 2
      & info [ "k" ] ~doc:"Agreement bound (k-set protocols only).")
  in
  let run seed protocol n k =
    setup_logs ();
    match Protocols.Catalog.find protocol with
    | None ->
      Printf.eprintf "unknown protocol %s, expected one of: %s\n" protocol
        (String.concat ", " Protocols.Catalog.names);
      2
    | Some proto ->
      let is_kset = String.length protocol >= 4 && String.sub protocol 0 4 = "kset" in
      let n =
        match n with
        | Some n -> n
        | None -> if is_kset then 6 else Protocols.Catalog.default_n proto
      in
      let f =
        if is_kset then k - 1 else Protocols.Catalog.default_f proto ~n
      in
      let inputs = Tasks.Inputs.distinct n in
      let detector rng =
        if is_kset then Rrfd.Detector_gen.k_set rng ~n ~k
        else Rrfd.Detector_gen.crash rng ~n ~f
      in
      let check = if is_kset then Some (Rrfd.Predicate.k_set ~k) else None in
      let max_rounds = max 1 (Protocols.Catalog.horizon proto ~n ~f) in
      (* Two identically-seeded RNGs: one consumed by the rendered
         transcript, one by the execution we report decisions from. *)
      print_endline
        (Protocols.Catalog.transcript proto ~inputs ?check ~n ~f ~max_rounds
           ~detector:(detector (Dsim.Rng.create seed))
           ());
      let ex =
        Protocols.Catalog.run_engine proto ~inputs ?check ~max_rounds ~n ~f
          ~detector:(detector (Dsim.Rng.create seed))
          ()
      in
      Printf.printf "history: %s\n"
        (Rrfd.Fault_history.to_string_compact ex.Rrfd.Substrate.induced);
      if is_kset then (
        match
          Tasks.Agreement.check ~k ~inputs ex.Rrfd.Substrate.decisions
        with
        | None ->
          Printf.printf "%d-set agreement: OK\n" k;
          0
        | Some reason ->
          Printf.printf "%d-set agreement VIOLATED: %s\n" k reason;
          1)
      else begin
        Format.printf "decisions: @[<h>%a@]@."
          (Format.pp_print_array
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
             (fun fmt d ->
               match d with
               | None -> Format.pp_print_string fmt "-"
               | Some v -> Protocols.Catalog.pp_out proto fmt v))
          ex.Rrfd.Substrate.decisions;
        0
      end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a catalog protocol on the abstract engine and print the full \
          round-by-round transcript.")
    Term.(const run $ seed_arg $ protocol_arg $ n_arg $ k_arg)

(* `check` — the schedule-space model checker: fuzz (or exhaustively
   enumerate) predicate-satisfying fault histories hunting for one that
   makes a system violate a safety property, shrink it, persist it as a
   JSON artifact, and replay such artifacts deterministically. *)
let check_cmd =
  let sut_arg =
    let doc = "System under test: " ^ Check.Spec.sut_names ^ "." in
    Arg.(value & opt string "kset-one-round" & info [ "sut" ] ~docv:"SUT" ~doc)
  in
  let predicate_arg =
    let doc =
      "RRFD predicate the histories must satisfy (the model under test): "
      ^ Check.Spec.predicate_names
      ^ ".  Weaken it deliberately (e.g. kset:k=3 against k-agreement:k=2) \
         to watch the checker refute the theorem's converse."
    in
    Arg.(
      value & opt (some string) None & info [ "predicate" ] ~docv:"PRED" ~doc)
  in
  let generator_arg =
    let doc =
      "Constructive sampling: draw histories from this detector generator \
       instead of rejection sampling ("
      ^ Check.Spec.generator_names ^ ")."
    in
    Arg.(value & opt (some string) None & info [ "generator" ] ~docv:"GEN" ~doc)
  in
  let property_arg =
    let doc =
      "Safety property to check (repeatable): " ^ Check.Spec.property_names
      ^ ".  Default: the SUT's own specification."
    in
    Arg.(value & opt_all string [] & info [ "property" ] ~docv:"PROP" ~doc)
  in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"System size.") in
  let rounds_arg =
    let doc = "History length to explore (default: what the SUT needs)." in
    Arg.(value & opt (some int) None & info [ "rounds" ] ~doc)
  in
  let trials_arg =
    Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Fuzzing trials.")
  in
  let attempts_arg =
    let doc = "Per-round rejection budget when sampling histories." in
    Arg.(value & opt int 64 & info [ "attempts" ] ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Enumerate every history of the given size instead of fuzzing (keep \
       n ≤ 4, rounds ≤ 2)."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let save_arg =
    let doc = "Write the counterexample artifact (JSON) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let doc =
      "Invert the exit status: succeed iff a violation was found (CI smoke \
       checks that seeded violations stay findable)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let replay_arg =
    let doc =
      "Replay the counterexample artifact at $(docv): re-execute its \
       history and verify the recorded decision vector bit-for-bit."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let trace_flag =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full transcript.")
  in
  let or_die = function
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let pp_decisions pp_out ppf decisions =
    Array.iteri
      (fun i d ->
        if i > 0 then Format.fprintf ppf " ";
        match d with
        | None -> Format.fprintf ppf "p%d→⊥" i
        | Some v -> Format.fprintf ppf "p%d→%a" i pp_out v)
      decisions
  in
  let print_counterexample ~sut ce =
    let open Check.Checker in
    Printf.printf "COUNTEREXAMPLE refuting %s under %s\n" ce.sut ce.property;
    (match ce.trial with
    | -1 -> Printf.printf "  found by exhaustive enumeration"
    | t -> Printf.printf "  found at trial %d" t);
    Printf.printf ", shrunk in %d step(s) to:\n" ce.shrink_steps;
    Format.printf "  @[<v>%a@]@." Rrfd.Fault_history.pp ce.history;
    Printf.printf "  compact: %s\n"
      (Rrfd.Fault_history.to_string_compact ce.history);
    Format.printf "  decisions: %a@."
      (pp_decisions (Check.Sut.pp_out sut))
      ce.decisions;
    Printf.printf "  failure: %s\n" ce.failure
  in
  let do_replay path with_trace =
    let artifact = Check.Artifact.load path in
    let ce = artifact.Check.Artifact.counterexample in
    Printf.printf
      "replaying %s: sut %s, predicate %s, property %s (seed %d, trial %d)\n"
      path artifact.Check.Artifact.sut artifact.Check.Artifact.predicate
      ce.Check.Checker.property artifact.Check.Artifact.seed
      ce.Check.Checker.trial;
    Printf.printf "  history: %s\n"
      (Rrfd.Fault_history.to_string_compact ce.Check.Checker.history);
    let replay = or_die (Check.Artifact.replay artifact) in
    let sut = or_die (Check.Spec.sut artifact.Check.Artifact.sut) in
    if with_trace then
      Printf.printf "%s\n" replay.Check.Artifact.transcript;
    Format.printf "  decisions: %a@."
      (pp_decisions (Check.Sut.pp_out sut))
      replay.Check.Artifact.obs.Check.Property.decisions;
    (match replay.Check.Artifact.failure with
    | Some (prop, msg) -> Printf.printf "  failure: %s: %s\n" prop msg
    | None when replay.Check.Artifact.failure_expected ->
      Printf.printf "  failure: none (property holds on replay!)\n"
    | None -> Printf.printf "  failure: none (clean recording, as expected)\n");
    if Check.Artifact.reproduced replay then begin
      Printf.printf "replay REPRODUCED the recorded decision vector exactly.\n";
      0
    end
    else begin
      Printf.printf
        "replay DIVERGED from the recording (decisions %s, failure %s, \
         expected %s).\n"
        (if replay.Check.Artifact.decisions_match then "match" else "differ")
        (if replay.Check.Artifact.failure = None then "absent" else "present")
        (if replay.Check.Artifact.failure_expected then "present" else "absent");
      1
    end
  in
  let run seed trials jobs sut_spec predicate_spec generator_spec
      property_specs n rounds attempts exhaustive save expect replay
      with_trace =
    setup_logs ();
    match replay with
    | Some path -> do_replay path with_trace
    | None ->
      let sut = or_die (Check.Spec.sut sut_spec) in
      let generator =
        Option.map
          (fun spec -> (spec, or_die (Check.Spec.generator spec)))
          generator_spec
      in
      let predicate_spec, predicate =
        match (predicate_spec, generator) with
        | Some spec, _ -> (spec, or_die (Check.Spec.predicate spec))
        | None, Some (spec, (_, paired)) -> (spec, paired)
        | None, None -> ("kset:k=2", or_die (Check.Spec.predicate "kset:k=2"))
      in
      let property_specs =
        match property_specs with
        | [] -> Check.Spec.default_properties sut
        | specs -> specs
      in
      let properties =
        List.map (fun s -> or_die (Check.Spec.property s)) property_specs
      in
      let rounds =
        match rounds with Some r -> r | None -> Check.Sut.rounds sut
      in
      let found =
        if exhaustive then
          Check.Checker.exhaustive ?jobs ~n ~rounds ~sut ~predicate
            ~properties ()
        else
          Check.Checker.fuzz
            { Check.Checker.n; rounds; trials; seed; jobs; attempts }
            ~sut ~predicate
            ?generator:(Option.map (fun (_, (gen, _)) -> gen) generator)
            ~properties ()
      in
      (match found with
      | None ->
        if exhaustive then
          Printf.printf
            "no counterexample: every %d-round %d-process history satisfying \
             %s keeps %s safe.\n"
            rounds n
            (Rrfd.Predicate.name predicate)
            (String.concat " ∧ " property_specs)
        else
          Printf.printf "no counterexample in %d trial(s) (seed %d).\n" trials
            seed
      | Some ce ->
        print_counterexample ~sut ce;
        if with_trace then
          Printf.printf "%s\n"
            (Check.Sut.transcript sut ~check:predicate
               ce.Check.Checker.history);
        Option.iter
          (fun path ->
            Check.Artifact.save path
              (Check.Artifact.make ~sut_spec ~predicate_spec
                 ~property_specs ~seed ce);
            Printf.printf "artifact saved to %s\n" path)
          save);
      let violated = found <> None in
      if violated = expect then 0 else 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check a protocol over the schedule space of an RRFD \
          predicate: fuzz or exhaustively enumerate fault histories, shrink \
          any property violation to a minimal history, and save/replay it \
          as a JSON artifact.")
    Term.(
      const run $ seed_arg $ trials_arg $ jobs_arg $ sut_arg $ predicate_arg
      $ generator_arg $ property_arg $ n_arg $ rounds_arg $ attempts_arg
      $ exhaustive_arg $ save_arg $ expect_arg $ replay_arg $ trace_flag)

(* `faultnet` — drive the fault-injection network layer: run one adversary
   spec through the round layer and the heard-of differential oracle, or
   reproduce the full E21 grid, optionally writing a deterministic JSON
   artifact (the -j smoke gate compares those byte-for-byte). *)
let faultnet_cmd =
  let adversary_arg =
    let doc =
      "Adversary policy, atoms joined with '+': " ^ Check.Spec.adversary_names
      ^ ".  Probabilities are percentages, e.g. \
         drop:p=20+dup:p=10,copies=2."
    in
    Arg.(
      value & opt string "drop:p=20" & info [ "adversary" ] ~docv:"SPEC" ~doc)
  in
  let n_arg = Arg.(value & opt int 5 & info [ "n" ] ~doc:"System size.") in
  let f_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "f" ] ~doc:"Resilience (default: a minority, (n-1)/2).")
  in
  let rounds_arg =
    Arg.(value & opt int 4 & info [ "rounds" ] ~doc:"Simulated rounds.")
  in
  let grid_arg =
    let doc =
      "Run the full E21 adversary grid instead of a single spec \
       (--adversary/-n/--f/--rounds are ignored)."
    in
    Arg.(value & flag & info [ "grid" ] ~doc)
  in
  let json_arg =
    let doc =
      "With $(b,--grid): also write the table and every trial's extracted \
       history to $(docv) as compact JSON ($(b,auto) names the file \
       FAULTNET_<git-sha>.json).  The output depends only on --seed and \
       --trials — never on -j — which is what the faultnet smoke gate \
       compares."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let or_die = function
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let run_single ~seed ~spec ~n ~f ~rounds =
    let adversary = or_die (Check.Spec.adversary spec) in
    let d =
      Msgnet.Round_layer.differential ~seed ~adversary
        ~equal:Rrfd.Full_info.equal ~n ~f ~rounds
        ~algorithm:(Rrfd.Full_info.algorithm ~inputs:(Tasks.Inputs.distinct n))
        ()
    in
    let o = d.Msgnet.Round_layer.outcome in
    Printf.printf "faultnet: %s over n=%d f=%d rounds=%d (seed %d)\n" spec n f
      rounds seed;
    Printf.printf "  messages: sent=%d delivered=%d dropped=%d duplicated=%d\n"
      o.Msgnet.Round_layer.messages_sent o.Msgnet.Round_layer.messages_delivered
      o.Msgnet.Round_layer.messages_dropped
      o.Msgnet.Round_layer.messages_duplicated;
    Printf.printf "  completed rounds: %s  (virtual time %.1f)\n"
      (String.concat " "
         (Array.to_list
            (Array.map string_of_int o.Msgnet.Round_layer.completed)))
      o.Msgnet.Round_layer.virtual_time;
    let induced = o.Msgnet.Round_layer.induced in
    Format.printf "  induced history:@;<1 4>@[<v>%a@]@." Rrfd.Fault_history.pp
      induced;
    Printf.printf "  compact: %s\n"
      (Rrfd.Fault_history.to_string_compact induced);
    let held = Msgnet.Heard_of.classify ~f induced in
    Printf.printf "  predicates (f=%d): %s\n" f
      (String.concat "  "
         (List.map
            (fun (p, b) -> Printf.sprintf "%s=%s" p (if b then "yes" else "no"))
            held));
    let p3 = List.assoc "P3" held in
    if d.Msgnet.Round_layer.matched then
      Printf.printf "  replay: engine decisions match the network's%s.\n"
        (if d.Msgnet.Round_layer.all_completed then ""
         else " over the completed prefix")
    else Printf.printf "  replay: DIVERGED from the abstract engine.\n";
    if not p3 then
      Printf.printf
        "  P3 VIOLATED: some D(i,r) exceeds f — the round layer's guarantee \
         broke.\n";
    if d.Msgnet.Round_layer.matched && p3 then 0 else 1
  in
  let run_grid ~seed ~trials ~jobs ~json =
    let table, histories =
      Experiments.E21_faultnet.run_detailed ~seed ?trials ?jobs ()
    in
    Experiments.Table.print table;
    Option.iter
      (fun path ->
        let str s = Report.Json.String s in
        let j =
          Report.Json.Obj
            [
              ("id", str table.Experiments.Table.id);
              ("seed", Report.Json.Number (float_of_int seed));
              ("header", Report.Json.List (List.map str table.Experiments.Table.header));
              ( "rows",
                Report.Json.List
                  (List.map
                     (fun row -> Report.Json.List (List.map str row))
                     table.Experiments.Table.rows) );
              ("ok", Report.Json.Bool (Experiments.Table.ok table));
              ( "histories",
                Report.Json.Obj
                  (List.map
                     (fun (spec, hs) ->
                       (spec, Report.Json.List (List.map str hs)))
                     histories) );
            ]
        in
        let path = Report.artifact_path ~prefix:"FAULTNET" path in
        Report.save_json path j;
        Printf.printf "grid artifact written to %s\n" path)
      json;
    if Experiments.Table.ok table then 0 else 1
  in
  let run seed trials jobs spec n f rounds grid json =
    setup_logs ();
    if grid then run_grid ~seed ~trials ~jobs ~json
    else
      let f = match f with Some f -> f | None -> (n - 1) / 2 in
      run_single ~seed ~spec ~n ~f ~rounds
  in
  Cmd.v
    (Cmd.info "faultnet"
       ~doc:
         "Damage the asynchronous network with a fault-injection adversary, \
          extract the induced heard-of fault history, classify it against \
          the paper's predicate ladder and differentially replay it on the \
          abstract engine — for one spec, or the whole E21 grid.")
    Term.(
      const run $ seed_arg $ trials_arg $ jobs_arg $ adversary_arg $ n_arg
      $ f_arg $ rounds_arg $ grid_arg $ json_arg)

(* `xsub` — the E22 cross-substrate differential matrix: every catalog
   protocol over every execution substrate under equivalent fault
   policies, each induced history replayed pinned on the abstract engine.
   The --json artifact embeds every trial's induced and replayed compact
   histories; it depends only on --seed and --trials, never on -j, which
   is what the xsub smoke gate compares byte-for-byte. *)
let xsub_cmd =
  let json_arg =
    let doc =
      "Also write the table and every trial's per-substrate induced and \
       replayed histories to $(docv) as compact JSON ($(b,auto) names the \
       file XSUB_<git-sha>.json).  The output depends only on --seed and \
       --trials — never on -j."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run seed trials jobs json =
    setup_logs ();
    let table, details =
      Experiments.E22_xsub.run_detailed ~seed ?trials ?jobs ()
    in
    Experiments.Table.print table;
    Option.iter
      (fun path ->
        let str s = Report.Json.String s in
        let trial_json (o : Experiments.E22_xsub.trial_obs) =
          Report.Json.List
            (List.map
               (fun (s : Experiments.E22_xsub.sub_obs) ->
                 Report.Json.Obj
                   [
                     ("sub", str s.Experiments.E22_xsub.sub);
                     ("induced", str s.Experiments.E22_xsub.compact);
                     ("replayed", str s.Experiments.E22_xsub.replay_compact);
                     ( "decisions_ok",
                       Report.Json.Bool s.Experiments.E22_xsub.decisions_ok );
                     ( "classes_ok",
                       Report.Json.Bool s.Experiments.E22_xsub.classes_ok );
                   ])
               o.Experiments.E22_xsub.subs)
        in
        let j =
          Report.Json.Obj
            [
              ("id", str table.Experiments.Table.id);
              ("seed", Report.Json.Number (float_of_int seed));
              ( "header",
                Report.Json.List
                  (List.map str table.Experiments.Table.header) );
              ( "rows",
                Report.Json.List
                  (List.map
                     (fun row -> Report.Json.List (List.map str row))
                     table.Experiments.Table.rows) );
              ("ok", Report.Json.Bool (Experiments.Table.ok table));
              ( "cells",
                Report.Json.List
                  (List.map
                     (fun (protocol, policy, obs) ->
                       Report.Json.Obj
                         [
                           ("protocol", str protocol);
                           ("policy", str policy);
                           ( "trials",
                             Report.Json.List (List.map trial_json obs) );
                         ])
                     details) );
            ]
        in
        let path = Report.artifact_path ~prefix:"XSUB" path in
        Report.save_json path j;
        Printf.printf "matrix artifact written to %s\n" path)
      json;
    if Experiments.Table.ok table then 0 else 1
  in
  Cmd.v
    (Cmd.info "xsub"
       ~doc:
         "Run the E22 cross-substrate differential matrix: every catalog \
          protocol over the abstract engine, the synchronous network and \
          the asynchronous network under equivalent fault policies, with \
          every induced fault history replayed pinned on the abstract \
          engine and checked for bit-for-bit decision and P1-P5 agreement.")
    Term.(const run $ seed_arg $ trials_arg $ jobs_arg $ json_arg)

(* `live` — the real-concurrency substrate: run a protocol with one OCaml
   domain per process, extract the heard-of history the scheduler induced,
   classify it and validate the pinned engine replay against the live
   decisions.  Modes: one narrated run (default), a --stress campaign of
   differential runs, --record to persist the run as a check-replayable
   artifact, and the E23 --grid whose --json artifact regenerates
   deterministically from recorded histories (--from). *)
let live_cmd =
  let protocol_arg =
    let doc =
      "Protocol to run (see `rrfd-experiments check --help` for the \
       catalog names)."
    in
    Arg.(
      value
      & opt string "flood-consensus"
      & info [ "protocol" ] ~docv:"NAME" ~doc)
  in
  let n_arg = Arg.(value & opt int 5 & info [ "n" ] ~doc:"System size.") in
  let f_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "f" ] ~doc:"Resilience (default: a minority, (n-1)/2).")
  in
  let rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ]
          ~doc:"Round horizon (default: the protocol's at n, f).")
  in
  let patience_arg =
    let doc =
      "Round-completion policy: " ^ Live.Patience.names
      ^ ".  Determines when a live process gives up on its peers — whom \
         it had not heard from by then becomes its fault set D(i,r)."
    in
    Arg.(value & opt string "quorum" & info [ "patience" ] ~docv:"SPEC" ~doc)
  in
  let stress_arg =
    let doc =
      "Run $(docv) live executions and require every one's pinned engine \
       replay to reproduce its decisions bit-for-bit."
    in
    Arg.(value & opt (some int) None & info [ "stress" ] ~docv:"N" ~doc)
  in
  let record_arg =
    let doc =
      "Write the run's extracted history as a check-replayable artifact \
       to $(docv) ($(b,auto) names the file LIVE_<git-sha>.json); verify \
       it later with `rrfd-experiments check --replay PATH`."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)
  in
  let grid_arg =
    let doc =
      "Run the E23 n × patience grid instead of a single configuration \
       (--protocol/-n/--f/--rounds/--patience are ignored)."
    in
    Arg.(value & flag & info [ "grid" ] ~doc)
  in
  let json_arg =
    let doc =
      "With $(b,--grid): write every run's record (history, inputs, \
       decisions, wall time) to $(docv) as JSON ($(b,auto) names the \
       file LIVE_<git-sha>.json).  Collection is nondeterministic — the \
       scheduler decides — but regeneration from a recorded artifact \
       ($(b,--from)) is byte-identical at any -j."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let from_arg =
    let doc =
      "With $(b,--grid): skip the live phase and rebuild the table (and \
       --json artifact) deterministically from the records in $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"FILE" ~doc)
  in
  let or_die = function
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let find_protocol name =
    match Protocols.Catalog.find name with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown protocol %S, expected one of: %s\n" name
        (String.concat ", " Protocols.Catalog.names);
      exit 2
  in
  let differential_once proto ~inputs ~patience ~n ~f ~rounds =
    let ex = Protocols.Catalog.run_live proto ~inputs ~patience ~n ~f ~rounds () in
    let replayed =
      Protocols.Catalog.replay proto ~inputs ~f
        ~history:ex.Rrfd.Substrate.induced ()
    in
    (ex, ex.Rrfd.Substrate.decisions = replayed.Rrfd.Substrate.decisions)
  in
  let run_single ~proto_name ~patience ~n ~f ~rounds ~record =
    let proto = find_protocol proto_name in
    let inputs = Protocols.Catalog.default_inputs ~n in
    let ex, matched = differential_once proto ~inputs ~patience ~n ~f ~rounds in
    Printf.printf "live: %s over n=%d f=%d rounds=%d, patience %s\n" proto_name
      n f rounds
      (Live.Patience.to_string patience);
    (match ex.Rrfd.Substrate.wall_ns with
    | Some ns -> Printf.printf "  wall clock: %.3f ms\n" (Int64.to_float ns /. 1e6)
    | None -> ());
    let induced = ex.Rrfd.Substrate.induced in
    Format.printf "  induced history:@;<1 4>@[<v>%a@]@." Rrfd.Fault_history.pp
      induced;
    Printf.printf "  compact: %s\n"
      (Rrfd.Fault_history.to_string_compact induced);
    Printf.printf "  predicates (f=%d): %s\n" f
      (String.concat "  "
         (List.map
            (fun (p, b) -> Printf.sprintf "%s=%s" p (if b then "yes" else "no"))
            (Msgnet.Heard_of.classify ~f induced)));
    if matched then
      Printf.printf "  replay: engine decisions match the live run's.\n"
    else Printf.printf "  replay: DIVERGED from the abstract engine.\n";
    let recorded_ok =
      match record with
      | None -> true
      | Some path ->
        let path = Report.artifact_path ~prefix:"LIVE" path in
        (match
           Check.Artifact.record ~sut_spec:proto_name ~n ~history:induced ()
         with
        | Ok artifact ->
          Check.Artifact.save path artifact;
          Printf.printf
            "  recorded %s (verify: rrfd-experiments check --replay %s)\n"
            path path;
          true
        | Error msg ->
          Printf.printf "  record FAILED: %s\n" msg;
          false)
    in
    if matched && recorded_ok then 0 else 1
  in
  let run_stress ~seed ~proto_name ~patience ~n ~f ~rounds count =
    let proto = find_protocol proto_name in
    let mismatches = ref 0 in
    for trial = 0 to count - 1 do
      let rng = Dsim.Rng.derive ~seed ~stream:trial in
      let inputs = Protocols.Catalog.default_inputs ~n in
      Dsim.Rng.shuffle_in_place rng inputs;
      let _, matched = differential_once proto ~inputs ~patience ~n ~f ~rounds in
      if not matched then incr mismatches
    done;
    Printf.printf
      "live stress: %s, n=%d f=%d rounds=%d, patience %s: %d/%d replays \
       matched\n"
      proto_name n f rounds
      (Live.Patience.to_string patience)
      (count - !mismatches) count;
    if !mismatches = 0 then 0 else 1
  in
  let run_grid ~seed ~trials ~jobs ~json ~from =
    let records =
      match from with
      | Some path ->
        Experiments.E23_live.of_json (Report.Json.of_string (In_channel.with_open_bin path In_channel.input_all))
      | None -> Experiments.E23_live.collect ~seed ?trials ?jobs ()
    in
    let table = Experiments.E23_live.table_of records in
    Experiments.Table.print table;
    Option.iter
      (fun path ->
        let path = Report.artifact_path ~prefix:"LIVE" path in
        Report.save_json path (Experiments.E23_live.to_json records);
        Printf.printf "live-grid artifact written to %s\n" path)
      json;
    if Experiments.Table.ok table then 0 else 1
  in
  let run seed trials jobs proto_name n f rounds patience stress record grid
      json from =
    setup_logs ();
    if grid then run_grid ~seed ~trials ~jobs ~json ~from
    else
      let patience = or_die (Live.Patience.of_spec patience) in
      let f = match f with Some f -> f | None -> (n - 1) / 2 in
      let rounds =
        match rounds with
        | Some r -> r
        | None ->
          Protocols.Catalog.horizon (find_protocol proto_name) ~n ~f
      in
      match stress with
      | Some count -> run_stress ~seed ~proto_name ~patience ~n ~f ~rounds count
      | None -> run_single ~proto_name ~patience ~n ~f ~rounds ~record
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:
         "Run a protocol on the live substrate — one OCaml domain per \
          process, real mailboxes, real clock — extract the heard-of fault \
          history the scheduler induced, classify it against the paper's \
          predicate ladder and differentially replay it pinned on the \
          abstract engine.  One run, a --stress campaign, a --record \
          artifact for check --replay, or the E23 --grid.")
    Term.(
      const run $ seed_arg $ trials_arg $ jobs_arg $ protocol_arg $ n_arg
      $ f_arg $ rounds_arg $ patience_arg $ stress_arg $ record_arg $ grid_arg
      $ json_arg $ from_arg)

(* `scale` — the E25 large-n grid on the wide Pset.  Default mode runs
   the correctness campaign (kset / heartbeat / ct at every --ns size)
   and optionally writes a deterministic JSON artifact: it depends only
   on --seed, --trials and --ns — never on -j — which is what the
   scale smoke gate compares byte-for-byte.  --bench instead times the
   same probes wall-clock, denominates them in work units (ns/run,
   ns/round, ns/msg) and gates them against a saved subjects-only BENCH
   report with --check/--tolerance. *)
let scale_cmd =
  let ns_arg =
    let doc =
      "Comma-separated system sizes to run the probes at.  Anything above \
       62 exercises the multi-word Pset representation; n = 10000 is \
       feasible for the kset probe but budget minutes for the simulated \
       network probes."
    in
    Arg.(value & opt (list int) [ 100; 1000 ] & info [ "ns" ] ~docv:"N,N,..." ~doc)
  in
  let json_arg =
    let doc =
      "Write the grid's per-trial digests (ok flags, work counters, \
       decision checksums) to $(docv) as JSON ($(b,auto) names the file \
       SCALE_<git-sha>.json).  With $(b,--bench): write the throughput \
       subjects as a BENCH report instead (the shape --check consumes)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let bench_arg =
    let doc =
      "Time the probes instead of campaigning them: wall-clock each \
       (probe, n) cell, report ns/run with ns/round and ns/msg work \
       denominators (plus rounds/s and msgs/s for humans)."
    in
    Arg.(value & flag & info [ "bench" ] ~doc)
  in
  let repeats_arg =
    let doc = "With $(b,--bench): timed repetitions per (probe, n) cell." in
    Arg.(value & opt int 2 & info [ "repeats" ] ~doc)
  in
  let check_arg =
    let doc =
      "With $(b,--bench): compare the fresh throughput subjects against \
       the BENCH report at $(docv); exit non-zero on a regression beyond \
       --tolerance."
    in
    Arg.(value & opt (some string) None & info [ "check" ] ~docv:"BASELINE" ~doc)
  in
  let tolerance_arg =
    let doc =
      "Allowed ns/run slowdown (percent) before --check fails.  The \
       default is deliberately loose: shared CI runners jitter, and the \
       gate exists to catch the representation going accidentally \
       quadratic, not 2x noise."
    in
    Arg.(value & opt float 400.0 & info [ "tolerance" ] ~doc)
  in
  let build_report subjects =
    {
      Report.version = Report.version;
      meta =
        {
          Report.seed = 0;
          jobs = Runtime.Pool.recommended_jobs ();
          recommended_jobs = Domain.recommended_domain_count ();
          git_sha = Report.git_short_sha ();
          hostname = (try Unix.gethostname () with _ -> "unknown");
        };
      subjects;
      tables = [];
      speedup = None;
    }
  in
  let run_bench ~seed ~ns ~repeats ~json ~check ~tolerance =
    let now_ns () = Mclock.now () in
    let ms = Experiments.E25_scale.measure ~now_ns ~seed ~ns ~repeats () in
    Experiments.E25_scale.print_measurements ms;
    let report = build_report (Experiments.E25_scale.subjects_of ms) in
    Option.iter
      (fun path ->
        let path = Report.artifact_path ~prefix:"SCALE" path in
        Report.save path report;
        Printf.printf "scale bench report written to %s\n" path)
      json;
    let all_ok = List.for_all (fun m -> m.Experiments.E25_scale.m_ok) ms in
    if not all_ok then
      Printf.printf "scale: a probe FAILED its correctness gate while timed\n";
    let check_passed =
      match check with
      | None -> true
      | Some path ->
        let baseline = Report.load path in
        let result =
          Report.check ~tolerance_pct:tolerance ~baseline ~current:report
        in
        Report.print_check result;
        Report.check_ok result
    in
    if all_ok && check_passed then 0 else 1
  in
  let run_grid ~seed ~trials ~jobs ~ns ~json =
    let table, cells =
      Experiments.E25_scale.run_detailed ~seed ?trials ?jobs ~ns ()
    in
    Experiments.Table.print table;
    Option.iter
      (fun path ->
        let path = Report.artifact_path ~prefix:"SCALE" path in
        Report.save_json path (Experiments.E25_scale.to_json cells);
        Printf.printf "scale grid artifact written to %s\n" path)
      json;
    if Experiments.Table.ok table then 0 else 1
  in
  let run seed trials jobs ns json bench repeats check tolerance =
    setup_logs ();
    if ns = [] || List.exists (fun n -> n < 1) ns then begin
      Printf.eprintf "--ns needs at least one positive size\n";
      2
    end
    else if bench then run_bench ~seed ~ns ~repeats ~json ~check ~tolerance
    else run_grid ~seed ~trials ~jobs ~ns ~json
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run the E25 large-n scaling grid on the wide Pset — one-round \
          k-set agreement, heartbeat convergence and Chandra-Toueg \
          consensus at sizes far beyond the one-word 62-process cap — as \
          a deterministic correctness campaign (--json artifact, \
          -j-independent) or a throughput measurement gated against a \
          saved baseline (--bench --check).")
    Term.(
      const run $ seed_arg $ trials_arg $ jobs_arg $ ns_arg $ json_arg
      $ bench_arg $ repeats_arg $ check_arg $ tolerance_arg)

(* `byz` — the E24 Byzantine accountability battery: a single forked
   execution with its audit transcript, the full grid, the soundness
   fuzzer, the proof-grade exhaustive enumeration, and e24-byz artifact
   save/replay.  The --grid --json artifact depends only on --seed and
   --trials — never on -j — which is what the byz smoke gate compares
   byte-for-byte. *)
let byz_cmd =
  let module Acc = Msgnet.Accountability in
  let module Byz = Check.Byz_check in
  let n_arg = Arg.(value & opt int 4 & info [ "n" ] ~doc:"System size.") in
  let f_arg =
    Arg.(value & opt int 1 & info [ "f" ] ~doc:"Audit resilience bound.")
  in
  let byz_arg =
    Arg.(
      value & opt int 2
      & info [ "byz" ] ~doc:"Byzantine member count (processes 0..byz-1).")
  in
  let forge_arg =
    Arg.(
      value & flag
      & info [ "forge" ]
          ~doc:"Let fuzzed members fabricate phantom-quorum certificates.")
  in
  let grid_arg =
    let doc = "Run the full E24 grid instead of the single-fork demo." in
    Arg.(value & flag & info [ "grid" ] ~doc)
  in
  let json_arg =
    let doc =
      "With $(b,--grid): also write the table and per-row digests to \
       $(docv) as compact JSON ($(b,auto) names the file \
       BYZ_<git-sha>.json).  The output depends only on --seed and \
       --trials — never on -j — which is what the byz smoke gate \
       compares."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let fuzz_arg =
    let doc =
      "Fuzz soundness over $(docv) random lying plans: the audit must \
       never accuse an honest process, and every fork must convict \
       ≥ f+1."
    in
    Arg.(value & opt (some int) None & info [ "fuzz" ] ~docv:"TRIALS" ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Enumerate the entire per-receiver vote-strategy space (16² = 256 \
       combinations at the n=4 defaults) under --exhaustive-seeds delay \
       schedules each: a finite completeness proof, not a sample."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let seeds_arg =
    Arg.(
      value & opt int 3
      & info [ "exhaustive-seeds" ] ~docv:"K"
          ~doc:"Delay schedules per enumerated strategy combination.")
  in
  let save_arg =
    let doc =
      "With the single-fork demo: save the witness and its expected \
       outcome as a replayable e24-byz JSON artifact at $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay an e24-byz artifact and verify the pinned fork flag and \
       accused set reproduce (exit 0 iff they do)."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let pp_verdict ppf = function
    | Acc.Accountable -> Format.fprintf ppf "accountable"
    | Acc.Unsound honest ->
      Format.fprintf ppf "UNSOUND (honest %s accused)"
        (Rrfd.Pset.to_string honest)
    | Acc.Incomplete { accused; needed } ->
      Format.fprintf ppf "INCOMPLETE (%d accused, %d needed)"
        (Rrfd.Pset.cardinal accused) needed
  in
  let print_outcome ~f (o : Acc.outcome) =
    Array.iteri
      (fun i d ->
        match d with
        | None -> Printf.printf "  p%d: no decision\n" i
        | Some (v, q) ->
          Printf.printf "  p%d: decided %d on quorum %s\n" i v
            (Rrfd.Pset.to_string q))
      o.Acc.decisions;
    (match o.Acc.fork with
    | None -> Printf.printf "  no fork among honest deciders\n"
    | Some (p, q) ->
      Printf.printf "  FORK: honest p%d and p%d decided differently\n" p q);
    Printf.printf "  audit over %d signed sends (%d tampered):\n"
      (List.length o.Acc.log) o.Acc.messages_tampered;
    List.iter
      (fun a -> Format.printf "    %a@." Acc.pp_accusation a)
      o.Acc.accusations;
    Format.printf "  verdict: %a@." pp_verdict (Acc.check ~f o)
  in
  let run_demo ~seed ~n ~f ~byz ~forge ~save =
    (* Walk derived seeds until the split-brain plan actually forks —
       deterministic in --seed, and each attempt is a legitimate
       execution of the same lying strategy under a fresh schedule. *)
    let inputs = Byz.binary_inputs n in
    let strategies = Array.make n None in
    for i = 0 to byz - 1 do
      let cert =
        if forge then Some (0, Rrfd.Pset.of_list (List.init (n - f) Fun.id))
        else None
      in
      strategies.(i) <- Some { Acc.votes = Array.copy inputs; cert }
    done;
    let witness_at k =
      { Byz.n; f; seed = Dsim.Rng.derive_seed seed k; inputs; strategies }
    in
    let attempts = 200 in
    let rec hunt k =
      if k >= attempts then None
      else
        let w = witness_at k in
        if Byz.forks w then Some (k, w) else hunt (k + 1)
    in
    Printf.printf
      "byz: split-brain plan, n=%d f=%d byz=%d%s (every member echoes \
       each receiver's own input)\n"
      n f byz
      (if forge then " + forged certs" else "");
    match hunt 0 with
    | None ->
      Printf.printf
        "  no fork in %d delay schedules — below the n/3 threshold this \
         is the theorem, above it try another --seed\n"
        attempts;
      if 3 * byz > n then 1 else 0
    | Some (k, w) ->
      let outcome = Byz.run_witness w in
      Printf.printf "  fork found at schedule %d (seed %d):\n" k w.Byz.seed;
      print_outcome ~f outcome;
      Option.iter
        (fun path ->
          Byz.save path (Byz.of_outcome w outcome);
          Printf.printf "  artifact written to %s\n" path)
        save;
      if Acc.check ~f outcome = Acc.Accountable then 0 else 1
  in
  let run_grid ~seed ~trials ~jobs ~json =
    let table, digests =
      Experiments.E24_byzantine.run_detailed ~seed ?trials ?jobs ()
    in
    Experiments.Table.print table;
    Option.iter
      (fun path ->
        let str s = Report.Json.String s in
        let num i = Report.Json.Number (float_of_int i) in
        let digest_json (d : Experiments.E24_byzantine.row_digest) =
          Report.Json.Obj
            [
              ("spec", str d.spec);
              ("trials", num d.trials);
              ("vote_forks", num d.vote_forks);
              ( "min_accused_on_fork",
                match d.min_accused_on_fork with
                | None -> Report.Json.Null
                | Some m -> num m );
              ("vote_sound_all", Report.Json.Bool d.vote_sound_all);
              ("vote_complete_all", Report.Json.Bool d.vote_complete_all);
              ("lied_sound_all", Report.Json.Bool d.lied_sound_all);
              ("kernel_all", Report.Json.Bool d.kernel_all);
              ("tampered_total", num d.tampered_total);
              ("ct_violations", num d.ct_violations);
              ("ct_sound_all", Report.Json.Bool d.ct_sound_all);
              ("ct_undecided_total", num d.ct_undecided_total);
            ]
        in
        let j =
          Report.Json.Obj
            [
              ("id", str table.Experiments.Table.id);
              ("seed", num seed);
              ( "header",
                Report.Json.List
                  (List.map str table.Experiments.Table.header) );
              ( "rows",
                Report.Json.List
                  (List.map
                     (fun row -> Report.Json.List (List.map str row))
                     table.Experiments.Table.rows) );
              ("ok", Report.Json.Bool (Experiments.Table.ok table));
              ("digests", Report.Json.List (List.map digest_json digests));
            ]
        in
        let path = Report.artifact_path ~prefix:"BYZ" path in
        Report.save_json path j;
        Printf.printf "grid artifact written to %s\n" path)
      json;
    if Experiments.Table.ok table then 0 else 1
  in
  let run_fuzz ~seed ~jobs ~n ~f ~byz ~forge ~trials =
    let r = Byz.fuzz ?jobs ~n ~f ~byz ~forge ~seed ~trials () in
    Printf.printf
      "byz fuzz: %d trials (n=%d f=%d byz=%d%s) — %d forked, %d sends \
       tampered, %d violations\n"
      r.Byz.trials n f byz
      (if forge then " forge" else "")
      r.Byz.forked r.Byz.tampered r.Byz.violations;
    (match r.Byz.first_violation with
    | None -> ()
    | Some (idx, w, v) ->
      Format.printf "  first violation at trial %d: %a@." idx pp_verdict v;
      let path = Printf.sprintf "BYZ_violation_%d.json" idx in
      Byz.save path (Byz.of_outcome w (Byz.run_witness w));
      Printf.printf "  witness saved to %s\n" path);
    if r.Byz.violations = 0 then 0 else 1
  in
  let run_exhaustive ~seed ~jobs ~seeds ~n ~f ~byz =
    let r = Byz.exhaustive ?jobs ~seeds ~n ~f ~byz ~seed () in
    Printf.printf
      "byz exhaustive: %d strategy combinations × %d schedules = %d runs \
       (n=%d f=%d byz=%d)\n"
      r.Byz.combos seeds r.Byz.runs n f byz;
    Printf.printf "  forked: %d   min accused on fork: %s   violations: %d\n"
      r.Byz.forked
      (match r.Byz.min_accused_on_fork with
      | None -> "-"
      | Some m -> string_of_int m)
      r.Byz.violations;
    let complete =
      r.Byz.violations = 0 && r.Byz.forked > 0
      && match r.Byz.min_accused_on_fork with
         | Some m -> m >= f + 1
         | None -> false
    in
    Printf.printf
      (if complete then
         "  completeness proved: every fork in the space convicts ≥ f+1 = \
          %d, soundly\n"
       else "  completeness NOT established (f+1 = %d)\n")
      (f + 1);
    if complete then 0 else 1
  in
  let run_replay path =
    let artifact = Byz.load path in
    let r = Byz.replay artifact in
    Printf.printf "byz replay: %s\n" path;
    print_outcome ~f:artifact.Byz.witness.Byz.f r.Byz.outcome;
    Printf.printf "  fork %s, accused set %s\n"
      (if r.Byz.fork_match then "reproduced" else "DIVERGED")
      (if r.Byz.accused_match then "reproduced" else "DIVERGED");
    if Byz.reproduced r then 0 else 1
  in
  let run seed trials jobs n f byz forge grid json fuzz exhaustive seeds save
      replay =
    setup_logs ();
    match replay with
    | Some path -> run_replay path
    | None ->
      if grid then run_grid ~seed ~trials ~jobs ~json
      else if exhaustive then run_exhaustive ~seed ~jobs ~seeds ~n ~f ~byz
      else
        match fuzz with
        | Some trials -> run_fuzz ~seed ~jobs ~n ~f ~byz ~forge ~trials
        | None -> run_demo ~seed ~n ~f ~byz ~forge ~save
  in
  Cmd.v
    (Cmd.info "byz"
       ~doc:
         "Byzantine round-machines with fork accountability (E24): fork \
          the accountable quorum vote with equivocating members, replay \
          the signed send log into ≥ f+1 convictions, fuzz the audit's \
          soundness, prove its completeness exhaustively, and save or \
          replay e24-byz witnesses.")
    Term.(
      const run $ seed_arg $ trials_arg $ jobs_arg $ n_arg $ f_arg $ byz_arg
      $ forge_arg $ grid_arg $ json_arg $ fuzz_arg $ exhaustive_arg
      $ seeds_arg $ save_arg $ replay_arg)

let derive_cmd =
  let module Derive = Check.Derive in
  let policy_arg =
    let doc =
      "Adversary policy to characterise, atoms joined with '+': "
      ^ Check.Spec.adversary_names ^ "."
    in
    Arg.(
      value & opt string "drop:p=20" & info [ "policy" ] ~docv:"SPEC" ~doc)
  in
  let n_arg = Arg.(value & opt int 5 & info [ "n" ] ~doc:"System size.") in
  let f_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "f" ] ~doc:"Resilience (default: a minority, (n-1)/2).")
  in
  let rounds_arg =
    Arg.(value & opt int 4 & info [ "rounds" ] ~doc:"Simulated rounds.")
  in
  let fuzz_arg =
    let doc =
      "Certification trials: fresh executions, sharded through \
       Campaign.search, that must all satisfy the derived predicate \
       (the upward certificate; the verdict is identical at every -j)."
    in
    Arg.(value & opt int 10_000 & info [ "fuzz" ] ~docv:"TRIALS" ~doc)
  in
  let exhaustive_arg =
    let doc =
      "Prove tightness by enumeration: for each frontier member, search \
       the $(i,whole) space of derived-predicate histories for a \
       separating one (requires n ≤ 4; the space is ((2^n-1)^n)^rounds)."
    in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let grid_arg =
    let doc =
      "Run the full E26 grid — every E21 policy plus a Byzantine row at \
       n=5 f=2, and two exhaustively-proven rows at n=3 — instead of a \
       single policy (--policy/-n/-f/--rounds/--exhaustive ignored; \
       --trials sets the observation count per row, with certification \
       at twice that)."
    in
    Arg.(value & flag & info [ "grid" ] ~doc)
  in
  let json_arg =
    let doc =
      "With $(b,--grid): also write the table and every row's full \
       e26-derive artifact (witnesses and separations included) to \
       $(docv) as compact JSON ($(b,auto) names the file \
       DERIVE_<git-sha>.json).  The output depends only on --seed and \
       --trials — never on -j — which is what the derive smoke gate \
       compares."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let save_arg =
    let doc =
      "Save the derivation — policy, derived predicate, every witness \
       and separation — as a replayable e26-derive artifact."
    in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a saved e26-derive artifact: re-check every witness pair, \
       re-run each fuzz witness's (seed, trial) execution and each \
       separation's enumeration, and demand bit-identical histories."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let or_die = function
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let run_replay path =
    let outcome = or_die (Derive.load path) in
    let r = or_die (Derive.replay outcome) in
    Printf.printf "derive replay: %s (policy %s)\n" path
      outcome.Derive.policy;
    Printf.printf "  derived: %s\n"
      (String.concat " ∧ " outcome.Derive.conjuncts);
    Printf.printf "  witness pairs: %s\n"
      (if r.Derive.witnesses_valid then "valid" else "INVALID");
    Printf.printf "  fuzz witnesses: %s\n"
      (if r.Derive.fuzz_reproduced then "reproduced bit-for-bit"
       else "DIVERGED");
    Printf.printf "  separations: %s\n"
      (if r.Derive.separations_valid then "re-proved by enumeration"
       else "DIVERGED");
    if Derive.reproduced r then 0 else 1
  in
  let run_grid ~seed ~trials ~jobs ~json =
    let table, rows =
      Experiments.E26_derive.run_detailed ~seed ?trials ?jobs ()
    in
    Experiments.Table.print table;
    Option.iter
      (fun path ->
        let str s = Report.Json.String s in
        let j =
          Report.Json.Obj
            [
              ("id", str table.Experiments.Table.id);
              ("seed", Report.Json.Number (float_of_int seed));
              ( "header",
                Report.Json.List
                  (List.map str table.Experiments.Table.header) );
              ( "rows",
                Report.Json.List
                  (List.map
                     (fun row -> Report.Json.List (List.map str row))
                     table.Experiments.Table.rows) );
              ("ok", Report.Json.Bool (Experiments.Table.ok table));
              ( "derivations",
                Report.Json.List
                  (List.map
                     (fun (r : Experiments.E26_derive.row) ->
                       Report.Json.Obj
                         [
                           ("policy", str r.Experiments.E26_derive.policy);
                           ("mode", str r.Experiments.E26_derive.mode);
                           ( "artifact",
                             Derive.to_json r.Experiments.E26_derive.outcome
                           );
                         ])
                     rows) );
            ]
        in
        let path = Report.artifact_path ~prefix:"DERIVE" path in
        Report.save_json path j;
        Printf.printf "grid artifact written to %s\n" path)
      json;
    if Experiments.Table.ok table then 0 else 1
  in
  let run_single ~seed ~trials ~jobs ~policy ~n ~f ~rounds ~fuzz ~exhaustive
      ~save =
    let cfg =
      {
        Derive.n;
        f;
        rounds;
        observe_trials = Option.value trials ~default:2000;
        certify_trials = fuzz;
        exhaustive;
        seed;
        jobs;
      }
    in
    let outcome = or_die (Derive.derive ~cfg ~policy ()) in
    Format.printf "%a@." Derive.pp outcome;
    Option.iter
      (fun path ->
        Derive.save path outcome;
        Printf.printf "artifact written to %s\n" path)
      save;
    if Derive.ok outcome then 0 else 1
  in
  let run seed trials jobs policy n f rounds fuzz exhaustive grid json save
      replay =
    setup_logs ();
    match replay with
    | Some path -> run_replay path
    | None ->
      if grid then run_grid ~seed ~trials ~jobs ~json
      else
        let f = match f with Some f -> f | None -> (n - 1) / 2 in
        run_single ~seed ~trials ~jobs ~policy ~n ~f ~rounds ~fuzz
          ~exhaustive ~save
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:
         "Derive the strongest heard-of predicate an adversary policy's \
          executions satisfy (E26), certified two-sidedly: a fresh fuzz \
          campaign proves it sound, a violating execution per stronger \
          candidate proves it tight (at small n by exhaustive \
          enumeration), with replayable e26-derive artifacts.")
    Term.(
      const run $ seed_arg $ trials_arg $ jobs_arg $ policy_arg $ n_arg
      $ f_arg $ rounds_arg $ fuzz_arg $ exhaustive_arg $ grid_arg $ json_arg
      $ save_arg $ replay_arg)

let main =
  let doc =
    "Reproduce the results of Gafni's 'Round-by-Round Fault Detectors' \
     (PODC 1998)."
  in
  Cmd.group
    (Cmd.info "rrfd-experiments" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; lattice_cmd; trace_cmd; check_cmd;
      faultnet_cmd; xsub_cmd; live_cmd; scale_cmd; byz_cmd; derive_cmd ]

let () = exit (Cmd.eval' main)
