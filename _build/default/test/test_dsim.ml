(* Tests for the discrete-event substrate: Rng, Heap, Sim. *)

module Rng = Dsim.Rng
module Heap = Dsim.Heap
module Sim = Dsim.Sim

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let w = Rng.int_in_range rng ~min:5 ~max:9 in
    Alcotest.(check bool) "range inclusive" true (w >= 5 && w <= 9);
    let f = Rng.float rng 3.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let rng_sampling () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let sample = Rng.sample_without_replacement rng 5 20 in
    Alcotest.(check int) "sample size" 5 (List.length sample);
    Alcotest.(check bool) "sorted distinct" true
      (List.sort_uniq compare sample = sample);
    List.iter
      (fun v -> Alcotest.(check bool) "in universe" true (v >= 0 && v < 20))
      sample
  done;
  let all = Rng.sample_without_replacement rng 20 20 in
  Alcotest.(check int) "full sample" 20 (List.length all)

let rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let l = List.init 30 Fun.id in
  let shuffled = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare shuffled)

let heap_orders () =
  let h = Heap.create () in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    Heap.push h (Rng.float rng 100.0) ()
  done;
  let rec drain last =
    match Heap.pop h with
    | None -> ()
    | Some (p, ()) ->
      Alcotest.(check bool) "non-decreasing" true (p >= last);
      drain p
  in
  drain neg_infinity;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let heap_stable_ties () =
  let h = Heap.create () in
  List.iter (fun i -> Heap.push h 1.0 i) [ 1; 2; 3; 4 ];
  let order = List.filter_map (fun _ -> Option.map snd (Heap.pop h)) [ (); (); (); () ] in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ] order

let sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:5.0 (fun _ -> log := 5 :: !log);
  Sim.schedule sim ~delay:1.0 (fun s ->
      log := 1 :: !log;
      Sim.schedule s ~delay:1.0 (fun _ -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "execution order" [ 1; 2; 5 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 5.0 (Sim.now sim)

let sim_until_and_budget () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun _ -> incr count)
  done;
  Sim.run ~until:4.5 sim;
  Alcotest.(check int) "until stops" 4 !count;
  Sim.run ~max_events:2 sim;
  Alcotest.(check int) "budget stops" 6 !count;
  Sim.run sim;
  Alcotest.(check int) "drains" 10 !count

let sim_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:2.0 (fun s ->
      Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time is in the past")
        (fun () -> Sim.schedule_at s ~time:1.0 (fun _ -> ())));
  Sim.run sim

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng seeds" `Quick rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick rng_bounds;
    Alcotest.test_case "rng sampling" `Quick rng_sampling;
    Alcotest.test_case "rng shuffle" `Quick rng_shuffle_permutes;
    Alcotest.test_case "heap orders" `Quick heap_orders;
    Alcotest.test_case "heap stable ties" `Quick heap_stable_ties;
    Alcotest.test_case "sim time order" `Quick sim_runs_in_time_order;
    Alcotest.test_case "sim until/budget" `Quick sim_until_and_budget;
    Alcotest.test_case "sim rejects past" `Quick sim_rejects_past;
  ]
