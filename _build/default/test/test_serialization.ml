(* Fault-history equality and compact serialization round-trips. *)

module Pset = Rrfd.Pset
module H = Rrfd.Fault_history

let s = Pset.of_list

let explicit_round_trip () =
  let h =
    H.of_rounds ~n:3
      [ [| s [ 1 ]; s []; s [ 0; 1 ] |]; [| s []; s []; s [] |] ]
  in
  let text = H.to_string_compact h in
  Alcotest.(check string) "rendering" "n=3;1:{1}{}{0,1};2:{}{}{}" text;
  Alcotest.(check bool) "round trip" true (H.equal h (H.of_string_compact text))

let empty_history () =
  let h = H.empty ~n:4 in
  let text = H.to_string_compact h in
  Alcotest.(check string) "empty" "n=4" text;
  Alcotest.(check bool) "round trip" true (H.equal h (H.of_string_compact text))

let malformed_inputs () =
  List.iter
    (fun bad ->
      Alcotest.check_raises bad
        (Invalid_argument "Fault_history.of_string_compact: malformed input")
        (fun () -> ignore (H.of_string_compact bad)))
    [ "x=3"; "n=three"; "n=2;1:{0}"; "n=2;1:0}{1}"; "n=2;1:{a}{}" ]

let equality_cases () =
  let a = H.of_rounds ~n:2 [ [| s [ 1 ]; s [] |] ] in
  let b = H.of_rounds ~n:2 [ [| s [ 1 ]; s [] |] ] in
  let c = H.of_rounds ~n:2 [ [| s []; s [] |] ] in
  Alcotest.(check bool) "equal" true (H.equal a b);
  Alcotest.(check bool) "different sets" false (H.equal a c);
  Alcotest.(check bool) "different lengths" false
    (H.equal a (H.append a [| s []; s [] |]))

let round_trip_property =
  QCheck.Test.make ~name:"compact serialization round-trips" ~count:500
    QCheck.(triple (int_range 1 10) (int_bound 100000) (int_range 0 5))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let rec build h r =
        if r = 0 then h
        else
          let round =
            Array.init n (fun _ ->
                Pset.random_subset rng (Pset.full n))
          in
          (* keep D ≠ S conventions irrelevant here: any subset is legal in
             a raw history *)
          build (H.append h round) (r - 1)
      in
      let h = build (H.empty ~n) rounds in
      H.equal h (H.of_string_compact (H.to_string_compact h)))

let tests =
  [
    Alcotest.test_case "explicit round trip" `Quick explicit_round_trip;
    Alcotest.test_case "empty history" `Quick empty_history;
    Alcotest.test_case "malformed inputs" `Quick malformed_inputs;
    Alcotest.test_case "equality" `Quick equality_cases;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ round_trip_property ]
