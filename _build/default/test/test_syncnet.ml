(* The synchronous substrate: fault patterns, induced histories (items 1-2),
   and the flooding baselines. *)

module Pset = Rrfd.Pset

let s = Pset.of_list

let pattern_accessors () =
  let p = Syncnet.Faults.crash ~n:4 [ (1, 2, s [ 0 ]) ] in
  Alcotest.(check bool) "faulty" true
    (Pset.equal (Syncnet.Faults.faulty_processes p) (s [ 1 ]));
  Alcotest.(check bool) "not crashed before its round" true
    (Pset.is_empty (Syncnet.Faults.crashed_before p ~round:2));
  Alcotest.(check bool) "crashed after" true
    (Pset.equal (Syncnet.Faults.crashed_before p ~round:3) (s [ 1 ]));
  Alcotest.(check bool) "full delivery before crash" true
    (Syncnet.Faults.delivered p ~round:1 ~sender:1 ~receiver:3);
  Alcotest.(check bool) "partial delivery at crash round" false
    (Syncnet.Faults.delivered p ~round:2 ~sender:1 ~receiver:3);
  Alcotest.(check bool) "survivor receives at crash round" true
    (Syncnet.Faults.delivered p ~round:2 ~sender:1 ~receiver:0);
  Alcotest.(check bool) "nothing after crash" false
    (Syncnet.Faults.delivered p ~round:3 ~sender:1 ~receiver:0)

let floodset_example () =
  (* n = 4, f = 1: p3 crashes at round 1 revealing its (minimal) value only
     to p0; flooding needs the second round to spread it. *)
  let inputs = [| 5; 6; 7; 1 |] in
  let pattern = Syncnet.Faults.crash ~n:4 [ (3, 1, s [ 0 ]) ] in
  let result =
    Syncnet.Sync_net.run ~n:4 ~rounds:2 ~pattern
      ~algorithm:(Syncnet.Flood.consensus ~inputs ~f:1)
      ()
  in
  Alcotest.(check (option string)) "consensus among survivors" None
    (Agreement_check.kset
       ~allow_undecided:result.Syncnet.Sync_net.crashed ~k:1 ~inputs
       result.Syncnet.Sync_net.decisions);
  (* everyone alive decides 1: p0 relays it in round 2 *)
  Array.iteri
    (fun i d -> if i < 3 then Alcotest.(check (option int)) "decides 1" (Some 1) d)
    result.Syncnet.Sync_net.decisions

let induced_history_matches_crash_predicate =
  QCheck.Test.make
    ~name:"E1: random crash runs induce crash-predicate histories" ~count:400
    QCheck.(triple (int_range 2 12) (int_bound 100000) (int_range 1 5))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let f = Dsim.Rng.int rng n in
      let pattern = Syncnet.Faults.random_crash rng ~n ~f ~max_round:rounds in
      let inputs = Array.init n Fun.id in
      let result =
        Syncnet.Sync_net.run ~n ~rounds ~pattern ~stop_when_decided:false
          ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
          ()
      in
      match
        Rrfd.Predicate.explain (Rrfd.Predicate.crash ~f)
          result.Syncnet.Sync_net.induced
      with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason)

let induced_history_matches_omission_predicate =
  QCheck.Test.make
    ~name:"E1: random omission runs induce omission-predicate histories"
    ~count:400
    QCheck.(triple (int_range 2 12) (int_bound 100000) (int_range 1 5))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let f = Dsim.Rng.int rng n in
      let pattern = Syncnet.Faults.random_omission rng ~n ~f in
      let inputs = Array.init n Fun.id in
      let result =
        Syncnet.Sync_net.run ~n ~rounds ~pattern ~stop_when_decided:false
          ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
          ()
      in
      match
        Rrfd.Predicate.explain (Rrfd.Predicate.omission ~f)
          result.Syncnet.Sync_net.induced
      with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason)

let floodset_solves_consensus =
  QCheck.Test.make
    ~name:"FloodSet: consensus in f+1 rounds under random crash patterns"
    ~count:400
    QCheck.(pair (int_range 2 12) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Dsim.Rng.create seed in
      let f = Dsim.Rng.int rng n in
      let inputs = Array.init n (fun i -> (i * 13) mod 7) in
      let pattern = Syncnet.Faults.random_crash rng ~n ~f ~max_round:(f + 1) in
      let result =
        Syncnet.Sync_net.run ~n ~rounds:(f + 1) ~pattern
          ~algorithm:(Syncnet.Flood.consensus ~inputs ~f)
          ()
      in
      match
        Agreement_check.kset
          ~allow_undecided:result.Syncnet.Sync_net.crashed ~k:1 ~inputs
          result.Syncnet.Sync_net.decisions
      with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason)

let kset_flood_solves_kset =
  QCheck.Test.make
    ~name:"k-set flooding: ⌊f/k⌋+1 rounds suffice under crash patterns"
    ~count:400
    QCheck.(triple (int_range 3 12) (int_bound 100000) (int_range 1 4))
    (fun (n, seed, k_raw) ->
      let rng = Dsim.Rng.create seed in
      let k = 1 + (k_raw mod (n - 1)) in
      let f = min (n - 1) (k + Dsim.Rng.int rng n) in
      if f < k then true
      else begin
        let inputs = Array.init n Fun.id in
        let horizon = (f / k) + 1 in
        let pattern = Syncnet.Faults.random_crash rng ~n ~f ~max_round:horizon in
        let result =
          Syncnet.Sync_net.run ~n ~rounds:horizon ~pattern
            ~algorithm:(Syncnet.Flood.kset ~inputs ~f ~k)
            ()
        in
        match
          Agreement_check.kset
            ~allow_undecided:result.Syncnet.Sync_net.crashed ~k ~inputs
            result.Syncnet.Sync_net.decisions
        with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d k=%d: %s" n f k reason
      end)

let tests =
  [
    Alcotest.test_case "pattern accessors" `Quick pattern_accessors;
    Alcotest.test_case "floodset worked example" `Quick floodset_example;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        induced_history_matches_crash_predicate;
        induced_history_matches_omission_predicate;
        floodset_solves_consensus;
        kset_flood_solves_kset;
      ]
