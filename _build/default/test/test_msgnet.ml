(* The asynchronous message-passing substrate and the item-3 round layer. *)

module Pset = Rrfd.Pset

let network_delivers_everything () =
  let sim = Dsim.Sim.create ~seed:1 () in
  let got = ref [] in
  let deliver _ ~to_ ~from msg = got := (to_, from, msg) :: !got in
  let net = Msgnet.Network.create ~sim ~n:3 ~deliver () in
  Msgnet.Network.broadcast net ~from:0 "hello";
  Msgnet.Network.send net ~from:1 ~to_:2 "direct";
  Dsim.Sim.run sim;
  Alcotest.(check int) "4 deliveries" 4 (List.length !got);
  Alcotest.(check int) "sent counter" 4 (Msgnet.Network.messages_sent net);
  Alcotest.(check int) "delivered counter" 4 (Msgnet.Network.messages_delivered net)

let network_respects_crashes () =
  let sim = Dsim.Sim.create ~seed:1 () in
  let got = ref 0 in
  let deliver _ ~to_:_ ~from:_ _ = incr got in
  let net = Msgnet.Network.create ~sim ~n:3 ~deliver () in
  Msgnet.Network.crash net 0;
  Msgnet.Network.broadcast net ~from:0 "lost";
  Msgnet.Network.broadcast net ~from:1 "partial";
  Dsim.Sim.run sim;
  (* p1's copies to p0 are dropped at delivery time (p0 crashed). *)
  Alcotest.(check int) "only live receivers of live sender" 2 !got

let network_delay_order_can_invert () =
  (* With a wide delay window, a later send may arrive earlier. *)
  let sim = Dsim.Sim.create ~seed:3 () in
  let log = ref [] in
  let deliver _ ~to_:_ ~from:_ msg = log := msg :: !log in
  let net = Msgnet.Network.create ~sim ~n:2 ~min_delay:1.0 ~max_delay:50.0 ~deliver () in
  for i = 0 to 19 do
    Msgnet.Network.send net ~from:0 ~to_:1 i
  done;
  Dsim.Sim.run sim;
  let arrival = List.rev !log in
  Alcotest.(check bool) "not FIFO" true (arrival <> List.sort compare arrival)

let round_layer_completes_and_satisfies_p3 =
  QCheck.Test.make
    ~name:"E2: round layer induces predicate-3 histories and all live finish"
    ~count:200
    QCheck.(triple (int_range 2 10) (int_bound 100000) (int_range 1 5))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let f = Dsim.Rng.int rng n in
      let crash_count = Dsim.Rng.int rng (f + 1) in
      let crashes =
        Dsim.Rng.sample_without_replacement rng crash_count n
        |> List.map (fun p -> (p, Dsim.Rng.float rng 30.0))
      in
      let inputs = Array.init n Fun.id in
      let result =
        Msgnet.Round_layer.run ~seed ~crashes ~n ~f ~rounds
          ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
          ()
      in
      let live_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun i completed ->
               Pset.mem i result.Msgnet.Round_layer.crashed
               || completed = rounds)
             result.Msgnet.Round_layer.completed)
      in
      if not live_ok then QCheck.Test.fail_reportf "a live process stalled"
      else
        match
          Rrfd.Predicate.explain
            (Rrfd.Predicate.async_resilient ~f)
            result.Msgnet.Round_layer.induced
        with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason)

let round_layer_full_information_recreates_missed_rounds =
  (* Item 3, "A implements N": running full-information, a process that
     receives p_j's round-r view can recreate every earlier message of p_j
     it missed: the view contains p_j's value for all earlier rounds. *)
  QCheck.Test.make ~name:"item 3: full information recreates missed messages"
    ~count:100
    QCheck.(pair (int_range 3 8) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Dsim.Rng.create seed in
      let f = 1 + Dsim.Rng.int rng (n - 1) in
      let inputs = Array.init n (fun i -> i * 11) in
      let result =
        Msgnet.Round_layer.run ~seed ~n ~f ~rounds:3
          ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
          ()
      in
      (* Every completed process's final view knows the input of every
         process it ever heard from, directly or transitively. *)
      let ok = ref true in
      Array.iteri
        (fun i completed ->
          if completed = 3 then begin
            let view_opt = result.Msgnet.Round_layer.decisions.(i) in
            match view_opt with
            | None -> ok := false
            | Some view ->
              let heard = Rrfd.Full_info.heard_from_last_round view in
              Pset.iter
                (fun j ->
                  if not (Rrfd.Full_info.knows_input_of view j) then ok := false)
                heard
          end)
        result.Msgnet.Round_layer.completed;
      !ok)

let tests =
  [
    Alcotest.test_case "network delivers" `Quick network_delivers_everything;
    Alcotest.test_case "network crashes" `Quick network_respects_crashes;
    Alcotest.test_case "network reorders" `Quick network_delay_order_can_invert;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        round_layer_completes_and_satisfies_p3;
        round_layer_full_information_recreates_missed_rounds;
      ]
