(* The message-passing register emulation (ABD) and the classic
   failure-detector consensus (Chandra-Toueg style) — the paper's item-4
   citation [22] and its Sec. 6-7 relation to detector-augmented systems. *)

module Pset = Rrfd.Pset

let drive sim = Dsim.Sim.run sim

let abd_sequential_read_after_write () =
  let sim = Dsim.Sim.create ~seed:3 () in
  let reg = Msgnet.Abd.create ~sim ~n:5 ~f:2 ~writer:0 () in
  let read_result = ref (Some (-1)) in
  Msgnet.Abd.write reg ~value:42 ~on_done:(fun () ->
      Msgnet.Abd.read reg ~proc:3 ~on_done:(fun v -> read_result := v));
  drive sim;
  Alcotest.(check (option int)) "read sees completed write" (Some 42) !read_result;
  Alcotest.(check (option string)) "history atomic" None
    (Msgnet.Abd.History.check_atomic (Msgnet.Abd.History.events reg))

let abd_initial_read () =
  let sim = Dsim.Sim.create ~seed:4 () in
  let reg = Msgnet.Abd.create ~sim ~n:3 ~f:1 ~writer:0 () in
  let result = ref (Some 0) in
  Msgnet.Abd.read reg ~proc:2 ~on_done:(fun v -> result := v);
  drive sim;
  Alcotest.(check (option int)) "unwritten register reads None" None !result

let abd_tolerates_f_crashes () =
  let sim = Dsim.Sim.create ~seed:5 () in
  let reg = Msgnet.Abd.create ~sim ~n:5 ~f:2 ~writer:0 () in
  Msgnet.Abd.crash reg 3;
  Msgnet.Abd.crash reg 4;
  let done_write = ref false and read_result = ref None in
  Msgnet.Abd.write reg ~value:7 ~on_done:(fun () ->
      done_write := true;
      Msgnet.Abd.read reg ~proc:1 ~on_done:(fun v -> read_result := v));
  drive sim;
  Alcotest.(check bool) "write completes despite f crashes" true !done_write;
  Alcotest.(check (option int)) "read completes too" (Some 7) !read_result

let abd_rejects_bad_parameters () =
  let sim = Dsim.Sim.create () in
  Alcotest.check_raises "2f ≥ n" (Invalid_argument "Abd.create: need 0 ≤ 2f < n")
    (fun () -> ignore (Msgnet.Abd.create ~sim ~n:4 ~f:2 ~writer:0 ()))

let abd_atomicity_property =
  QCheck.Test.make ~name:"ABD: histories are atomic under random delays/crashes"
    ~count:200
    QCheck.(pair (int_range 3 9) (int_bound 100000))
    (fun (n, seed) ->
      let f = (n - 1) / 2 in
      let rng = Dsim.Rng.create seed in
      let sim = Dsim.Sim.create ~seed () in
      let reg =
        Msgnet.Abd.create ~sim ~n ~f ~writer:0 ~min_delay:1.0 ~max_delay:20.0 ()
      in
      (* Writer issues a chain of writes; readers fire at random times;
         up to f random non-writer crashes. *)
      let rec write_chain k () =
        if k < 5 then
          Msgnet.Abd.write reg ~value:(100 + k) ~on_done:(fun () ->
              Dsim.Sim.schedule sim ~delay:(Dsim.Rng.float rng 10.0) (fun _ ->
                  write_chain (k + 1) ()))
      in
      write_chain 0 ();
      for _ = 1 to 8 do
        let proc = 1 + Dsim.Rng.int rng (n - 1) in
        Dsim.Sim.schedule sim ~delay:(Dsim.Rng.float rng 120.0) (fun _ ->
            Msgnet.Abd.read reg ~proc ~on_done:(fun _ -> ()))
      done;
      let crash_count = Dsim.Rng.int rng (f + 1) in
      let victims = Dsim.Rng.sample_without_replacement rng crash_count (n - 1) in
      List.iter
        (fun v ->
          Dsim.Sim.schedule sim ~delay:(Dsim.Rng.float rng 100.0) (fun _ ->
              Msgnet.Abd.crash reg (v + 1)))
        victims;
      drive sim;
      match Msgnet.Abd.History.check_atomic (Msgnet.Abd.History.events reg) with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d: %s" n reason)

let ct_failure_free () =
  let inputs = [| 3; 1; 4; 1; 5 |] in
  let r = Msgnet.Ct_consensus.run ~n:5 ~f:2 ~inputs () in
  Alcotest.(check (option string)) "consensus" None
    (Agreement_check.kset ~k:1 ~inputs r.Msgnet.Ct_consensus.decisions);
  Alcotest.(check bool) "few phases" true (r.Msgnet.Ct_consensus.phases_used <= 3)

let ct_with_coordinator_crash () =
  (* p0 coordinates phase 0; crash it immediately so phase 1 must finish. *)
  let inputs = [| 9; 8; 7; 6; 5 |] in
  let r =
    Msgnet.Ct_consensus.run ~n:5 ~f:2 ~inputs ~crashes:[ (0, 0.5) ] ()
  in
  let live = Pset.remove 0 (Pset.full 5) in
  Pset.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d decided" i)
        true
        (Option.is_some r.Msgnet.Ct_consensus.decisions.(i)))
    live;
  Alcotest.(check (option string)) "agreement among live" None
    (Agreement_check.kset
       ~allow_undecided:(Pset.singleton 0)
       ~k:1 ~inputs r.Msgnet.Ct_consensus.decisions)

let ct_property =
  QCheck.Test.make
    ~name:"CT consensus: agreement and termination with f < n/2 crashes"
    ~count:100
    QCheck.(pair (int_range 3 9) (int_bound 100000))
    (fun (n, seed) ->
      let f = (n - 1) / 2 in
      let rng = Dsim.Rng.create seed in
      let inputs = Array.init n (fun i -> 50 + ((i * 17) mod 5)) in
      let crash_count = Dsim.Rng.int rng (f + 1) in
      let crashes =
        Dsim.Rng.sample_without_replacement rng crash_count n
        |> List.map (fun p -> (p, Dsim.Rng.float rng 60.0))
      in
      let r = Msgnet.Ct_consensus.run ~seed ~n ~f ~inputs ~crashes () in
      let crashed = Pset.of_list (List.map fst crashes) in
      match
        Agreement_check.kset ~allow_undecided:crashed ~k:1 ~inputs
          r.Msgnet.Ct_consensus.decisions
      with
      | None -> true
      | Some reason ->
        QCheck.Test.fail_reportf "n=%d f=%d crashes=%s: %s (phases=%d)" n f
          (Pset.to_string crashed) reason r.Msgnet.Ct_consensus.phases_used)

let heartbeat_detects_crash () =
  (* Standalone detector check through the consensus runner's plumbing:
     run with one crash and assert the run still terminates quickly, which
     requires the detector to have suspected the crashed coordinator. *)
  let inputs = [| 1; 2; 3 |] in
  let r = Msgnet.Ct_consensus.run ~n:3 ~f:1 ~inputs ~crashes:[ (0, 0.1) ] () in
  Alcotest.(check bool) "phase advanced past dead coordinator" true
    (r.Msgnet.Ct_consensus.phases_used >= 1);
  Alcotest.(check bool) "p1 decided" true
    (Option.is_some r.Msgnet.Ct_consensus.decisions.(1))

let tests =
  [
    Alcotest.test_case "ABD read-after-write" `Quick abd_sequential_read_after_write;
    Alcotest.test_case "ABD initial read" `Quick abd_initial_read;
    Alcotest.test_case "ABD tolerates f crashes" `Quick abd_tolerates_f_crashes;
    Alcotest.test_case "ABD parameter check" `Quick abd_rejects_bad_parameters;
    Alcotest.test_case "CT failure-free" `Quick ct_failure_free;
    Alcotest.test_case "CT coordinator crash" `Quick ct_with_coordinator_crash;
    Alcotest.test_case "heartbeat detects crash" `Quick heartbeat_detects_crash;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ abd_atomicity_property; ct_property ]
