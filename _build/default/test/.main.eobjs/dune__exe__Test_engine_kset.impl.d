test/test_engine_kset.ml: Agreement_check Alcotest Array Dsim List Option QCheck QCheck_alcotest Rrfd
