test/test_trace_model.ml: Alcotest Array Format List Rrfd String Syncnet
