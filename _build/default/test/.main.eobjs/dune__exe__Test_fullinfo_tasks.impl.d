test/test_fullinfo_tasks.ml: Alcotest Array Dsim Rrfd String Tasks
