test/test_pset.ml: Alcotest Dsim Gen List QCheck QCheck_alcotest Rrfd Test
