test/test_registry.ml: Alcotest Experiments List Printf
