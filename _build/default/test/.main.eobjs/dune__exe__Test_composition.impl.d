test/test_composition.ml: Adversary Alcotest Array Dsim Int List Msgnet QCheck QCheck_alcotest Rrfd Shm Syncnet Tasks
