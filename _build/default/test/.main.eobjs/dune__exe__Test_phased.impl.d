test/test_phased.ml: Agreement_check Alcotest Array Dsim Fun List QCheck QCheck_alcotest Rrfd
