test/test_emulation.ml: Adversary Alcotest Dsim List QCheck QCheck_alcotest Rrfd
