test/agreement_check.ml: Tasks
