test/test_abd_ct.ml: Agreement_check Alcotest Array Dsim List Msgnet Option Printf QCheck QCheck_alcotest Rrfd
