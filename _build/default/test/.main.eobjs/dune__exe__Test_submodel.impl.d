test/test_submodel.ml: Alcotest Dsim List Rrfd
