test/test_early_deciding.ml: Adversary Agreement_check Alcotest Array Dsim Fun List Printf QCheck QCheck_alcotest Rrfd Syncnet Tasks
