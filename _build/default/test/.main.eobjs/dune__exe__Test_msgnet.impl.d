test/test_msgnet.ml: Alcotest Array Dsim Fun List Msgnet QCheck QCheck_alcotest Rrfd
