test/test_shm.ml: Alcotest Array Dsim Fun List Option QCheck QCheck_alcotest Rrfd Shm
