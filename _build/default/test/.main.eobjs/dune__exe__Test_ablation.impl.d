test/test_ablation.ml: Adversary Alcotest Array Dsim List Rrfd String Tasks
