test/test_serialization.ml: Alcotest Array Dsim List QCheck QCheck_alcotest Rrfd
