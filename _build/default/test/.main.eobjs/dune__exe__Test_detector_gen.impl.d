test/test_detector_gen.ml: Alcotest Dsim List QCheck QCheck_alcotest Rrfd Test
