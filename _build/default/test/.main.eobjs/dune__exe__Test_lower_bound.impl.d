test/test_lower_bound.ml: Adversary Alcotest Array List Printf Rrfd Syncnet Tasks
