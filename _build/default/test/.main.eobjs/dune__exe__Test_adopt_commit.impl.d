test/test_adopt_commit.ml: Alcotest Array Dsim Format List Option QCheck QCheck_alcotest Rrfd Shm
