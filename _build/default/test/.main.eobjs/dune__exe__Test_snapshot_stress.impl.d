test/test_snapshot_stress.ml: Alcotest Array Dsim List QCheck QCheck_alcotest Shm
