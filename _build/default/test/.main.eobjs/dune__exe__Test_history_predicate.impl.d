test/test_history_predicate.ml: Alcotest Array List Rrfd String
