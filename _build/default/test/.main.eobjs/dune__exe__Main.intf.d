test/main.mli:
