test/test_semisync.ml: Agreement_check Alcotest Array Dsim List Option Printf QCheck QCheck_alcotest Rrfd Semisync
