test/test_safe_agreement.ml: Alcotest Array Dsim Fun Int List Option QCheck QCheck_alcotest Shm
