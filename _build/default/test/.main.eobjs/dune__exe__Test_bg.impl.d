test/test_bg.ml: Alcotest Array Dsim Int List Option QCheck QCheck_alcotest Rrfd Syncnet Tasks
