test/test_exec_extra.ml: Alcotest Array Dsim Msgnet Rrfd Shm
