test/test_simulations.ml: Agreement_check Alcotest Array Dsim Fun List QCheck QCheck_alcotest Rrfd Syncnet
