test/test_dsim.ml: Alcotest Dsim Fun List Option
