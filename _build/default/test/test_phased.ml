(* Phased consensus under the eventually-stable RRFD. *)

let run ~n ~f ~stabilize_at ~seed ~inputs =
  let rng = Dsim.Rng.create seed in
  Rrfd.Engine.run ~n
    ~max_rounds:(Rrfd.Phased_consensus.rounds_needed ~stabilize_at)
    ~check:(Rrfd.Phased_consensus.predicate ~f ~stabilize_at)
    ~algorithm:(Rrfd.Phased_consensus.algorithm ~inputs)
    ~detector:(Rrfd.Phased_consensus.detector rng ~n ~f ~stabilize_at)
    ()

let immediate_stability_one_phase () =
  let inputs = [| 4; 5; 6; 7 |] in
  let outcome = run ~n:4 ~f:3 ~stabilize_at:1 ~seed:3 ~inputs in
  Alcotest.(check (option string)) "legal adversary" None
    outcome.Rrfd.Engine.violation;
  Alcotest.(check int) "one phase" 3 outcome.Rrfd.Engine.rounds_used;
  Alcotest.(check (option string)) "consensus" None
    (Agreement_check.kset ~k:1 ~inputs outcome.Rrfd.Engine.decisions)

let consensus_property =
  QCheck.Test.make
    ~name:"phased consensus: agreement/validity always, termination at GST"
    ~count:400
    QCheck.(triple (int_range 2 12) (int_bound 100000) (int_range 1 12))
    (fun (n, seed, stabilize_at) ->
      let f = n - 1 in
      let inputs = Array.init n (fun i -> 100 + (i mod 3)) in
      let outcome = run ~n ~f ~stabilize_at ~seed ~inputs in
      match outcome.Rrfd.Engine.violation with
      | Some v -> QCheck.Test.fail_reportf "adversary illegal: %s" v
      | None -> (
        match Agreement_check.kset ~k:1 ~inputs outcome.Rrfd.Engine.decisions with
        | None -> true
        | Some reason ->
          QCheck.Test.fail_reportf "n=%d GST=%d: %s" n stabilize_at reason))

let early_commit_is_sticky =
  (* Safety alone (no termination): run only pre-stabilisation phases under
     a fully adversarial detector and check every decided value agrees. *)
  QCheck.Test.make ~name:"phased consensus: early commits are sticky" ~count:400
    QCheck.(pair (int_range 2 10) (int_bound 100000))
    (fun (n, seed) ->
      let f = n - 1 in
      let stabilize_at = 100 (* never, within this horizon *) in
      let rng = Dsim.Rng.create seed in
      let inputs = Array.init n (fun i -> i mod 2) in
      let outcome =
        Rrfd.Engine.run ~n ~max_rounds:15 ~stop_when_decided:false
          ~check:(Rrfd.Phased_consensus.predicate ~f ~stabilize_at)
          ~algorithm:(Rrfd.Phased_consensus.algorithm ~inputs)
          ~detector:(Rrfd.Phased_consensus.detector rng ~n ~f ~stabilize_at)
          ()
      in
      let decided =
        Array.to_list outcome.Rrfd.Engine.decisions |> List.filter_map Fun.id
      in
      match List.sort_uniq compare decided with
      | [] | [ _ ] -> true
      | _ :: _ :: _ -> QCheck.Test.fail_reportf "two different early decisions")

let rounds_needed_formula () =
  Alcotest.(check int) "GST 1 → 1 phase" 3
    (Rrfd.Phased_consensus.rounds_needed ~stabilize_at:1);
  Alcotest.(check int) "GST 4 → 2 phases" 6
    (Rrfd.Phased_consensus.rounds_needed ~stabilize_at:4);
  Alcotest.(check int) "GST 5 → 3 phases" 9
    (Rrfd.Phased_consensus.rounds_needed ~stabilize_at:5)

let tests =
  [
    Alcotest.test_case "immediate stability" `Quick immediate_stability_one_phase;
    Alcotest.test_case "rounds formula" `Quick rounds_needed_formula;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ consensus_property; early_commit_is_sticky ]
