(* Section 5: the semi-synchronous machine, the 2-step algorithm, and the
   Θ(n) baseline. *)

module Pset = Rrfd.Pset

let machine_round_robin_is_fair () =
  let program =
    {
      Semisync.Machine.name = "counter";
      init = (fun ~n:_ _ -> 0);
      step = (fun s ~inbox:_ -> (s + 1, None));
      decide = (fun s -> if s >= 3 then Some s else None);
    }
  in
  let r = Semisync.Machine.run ~n:4 ~schedule:Semisync.Machine.Round_robin program in
  Array.iter
    (fun d -> Alcotest.(check (option int)) "three steps each" (Some 3) d)
    r.Semisync.Machine.decisions

let machine_broadcast_reaches_all () =
  let received = Array.make 3 false in
  let program =
    {
      Semisync.Machine.name = "bcast";
      init = (fun ~n:_ p -> p);
      step =
        (fun s ~inbox ->
          if inbox <> [] then received.(s) <- true;
          (s, if s = 0 then Some "m" else None));
      decide = (fun _ -> Some 0);
    }
  in
  (* everyone decides at step 1, but p0's broadcast fills the buffers; give
     each process two steps by delaying decisions *)
  let program =
    { program with
      Semisync.Machine.decide = (fun _ -> None);
      step =
        (fun s ~inbox ->
          if inbox <> [] then received.(s) <- true;
          (s, if s = 0 then Some "m" else None));
    }
  in
  let _ =
    Semisync.Machine.run ~n:3 ~schedule:Semisync.Machine.Round_robin
      ~max_steps_per_process:3 program
  in
  Array.iter (fun b -> Alcotest.(check bool) "received" true b) received

let two_step_decides_in_two_steps () =
  let inputs = [| 4; 5; 6 |] in
  let r =
    Semisync.Two_step.run ~n:3 ~inputs ~schedule:Semisync.Machine.Round_robin ()
  in
  Array.iter
    (fun steps -> Alcotest.(check (option int)) "two steps" (Some 2) steps)
    r.Semisync.Two_step.result.Semisync.Machine.steps_to_decide;
  Alcotest.(check (option string)) "consensus" None
    (Agreement_check.kset ~k:1 ~inputs
       r.Semisync.Two_step.result.Semisync.Machine.decisions);
  Alcotest.(check (option string)) "equation 5" None
    (Semisync.Two_step.check_identical r)

let two_step_property =
  QCheck.Test.make
    ~name:"E12/Thm 5.1: 2-step consensus under random speeds and crashes"
    ~count:500
    QCheck.(triple (int_range 2 16) (int_bound 100000) (int_bound 100))
    (fun (n, seed, crash_raw) ->
      let rng = Dsim.Rng.create seed in
      let inputs = Array.init n (fun i -> 50 + i) in
      (* crash up to n-1 processes at random step counts *)
      let crash_count = crash_raw mod n in
      let crashes =
        Dsim.Rng.sample_without_replacement rng crash_count n
        |> List.map (fun p -> (p, 1 + Dsim.Rng.int rng 4))
      in
      let r =
        Semisync.Two_step.run ~n ~inputs
          ~schedule:(Semisync.Machine.Random (Dsim.Rng.split rng))
          ~crashes ()
      in
      let crashed = r.Semisync.Two_step.result.Semisync.Machine.crashed in
      let decisions = r.Semisync.Two_step.result.Semisync.Machine.decisions in
      (match Semisync.Two_step.check_identical r with
      | Some reason -> QCheck.Test.fail_reportf "eq5: %s" reason
      | None -> ());
      let steps_ok =
        Array.for_all
          (fun s -> match s with None -> true | Some s -> s = 2)
          r.Semisync.Two_step.result.Semisync.Machine.steps_to_decide
      in
      if not steps_ok then QCheck.Test.fail_reportf "a decision took ≠ 2 steps"
      else
        match
          Agreement_check.kset ~allow_undecided:crashed ~k:1 ~inputs decisions
        with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d: %s" n reason)

let ring_baseline_takes_linear_steps () =
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> 900 + i) in
      let r =
        Semisync.Ring_baseline.run ~n ~inputs ~schedule:Semisync.Machine.Round_robin
      in
      Alcotest.(check (option string)) "consensus on p0's value" None
        (Agreement_check.kset ~k:1 ~inputs r.Semisync.Machine.decisions);
      Array.iter
        (fun d -> Alcotest.(check (option int)) "value of p0" (Some 900) d)
        r.Semisync.Machine.decisions;
      let max_steps =
        Array.fold_left
          (fun acc s -> max acc (Option.value s ~default:0))
          0 r.Semisync.Machine.steps_to_decide
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: max steps %d ≥ n" n max_steps)
        true (max_steps >= n))
    [ 2; 4; 8; 16 ]

let tests =
  [
    Alcotest.test_case "machine fairness" `Quick machine_round_robin_is_fair;
    Alcotest.test_case "machine broadcast" `Quick machine_broadcast_reaches_all;
    Alcotest.test_case "two-step worked example" `Quick two_step_decides_in_two_steps;
    Alcotest.test_case "ring baseline linear" `Quick ring_baseline_takes_linear_steps;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ two_step_property ]
