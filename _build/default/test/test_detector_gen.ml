(* Property tests: every constructive generator satisfies its predicate.

   Each QCheck case draws a seed (and size parameters), materialises a
   multi-round history from the generated detector, and checks the
   corresponding predicate — the engine-independent core of experiments
   E1–E6. *)

module P = Rrfd.Predicate
module D = Rrfd.Detector
module G = Rrfd.Detector_gen

let materialise detector ~n ~rounds =
  let rec go h r =
    if r > rounds then h
    else go (Rrfd.Fault_history.append h (D.next detector h)) (r + 1)
  in
  go (Rrfd.Fault_history.empty ~n) 1

let gen_case name make_detector make_predicate =
  let open QCheck in
  Test.make ~name ~count:200
    (triple (int_range 2 10) (int_bound 1000) (int_range 1 6))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let f = if n > 1 then (seed mod (n - 1)) + 0 else 0 in
      let f = max 0 (min f (n - 1)) in
      let detector = make_detector rng ~n ~f in
      let history = materialise detector ~n ~rounds in
      match Rrfd.Predicate.explain (make_predicate ~f) history with
      | None -> true
      | Some reason -> Test.fail_reportf "n=%d f=%d: %s" n f reason)

let props =
  [
    gen_case "omission generator satisfies omission predicate"
      (fun rng ~n ~f -> G.omission rng ~n ~f)
      (fun ~f -> P.omission ~f);
    gen_case "crash generator satisfies crash predicate"
      (fun rng ~n ~f -> G.crash rng ~n ~f)
      (fun ~f -> P.crash ~f);
    gen_case "async generator satisfies async predicate"
      (fun rng ~n ~f -> G.async rng ~n ~f)
      (fun ~f -> P.async_resilient ~f);
    gen_case "shm generator satisfies shm predicate"
      (fun rng ~n ~f -> G.shared_memory rng ~n ~f)
      (fun ~f -> P.shared_memory ~f);
    gen_case "iis generator satisfies snapshot predicate"
      (fun rng ~n ~f -> G.iis rng ~n ~f)
      (fun ~f -> P.snapshot ~f);
    gen_case "mixed generator satisfies mixed predicate"
      (fun rng ~n ~f -> G.async_mixed rng ~n ~f ~t:(max f (min (n - 1) (f + 1))))
      (fun ~f:_ -> P.always);
    gen_case "detector-S generator satisfies detector-S predicate"
      (fun rng ~n ~f:_ -> G.detector_s rng ~n)
      (fun ~f:_ -> P.detector_s);
    gen_case "identical generator satisfies equation 5"
      (fun rng ~n ~f:_ -> G.identical rng ~n)
      (fun ~f:_ -> P.identical_views);
  ]

let mixed_really_mixed =
  QCheck.Test.make ~name:"mixed generator satisfies its own predicate" ~count:200
    QCheck.(triple (int_range 3 10) (int_bound 1000) (int_range 1 5))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let f = seed mod (n - 1) in
      let t = max f (min (n - 1) (f + 1)) in
      let detector = Rrfd.Detector_gen.async_mixed rng ~n ~f ~t in
      let history = materialise detector ~n ~rounds in
      Rrfd.Predicate.holds (P.async_mixed ~f ~t) history)

let kset_generator =
  QCheck.Test.make ~name:"k-set generator satisfies k-set predicate" ~count:200
    QCheck.(triple (int_range 2 12) (int_bound 1000) (int_range 1 5))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let k = 1 + (seed mod n) in
      let detector = G.k_set rng ~n ~k in
      let history = materialise detector ~n ~rounds in
      Rrfd.Predicate.holds (P.k_set ~k) history)

let schedule_detector () =
  let s = Rrfd.Pset.of_list in
  let d1 = [| s [ 1 ]; s []; s [] |] and d2 = [| s []; s [ 0 ]; s [] |] in
  let det = D.of_schedule [ d1; d2 ] in
  let h = materialise det ~n:3 ~rounds:3 in
  Alcotest.(check bool) "round 1 replayed" true
    (Rrfd.Pset.equal (Rrfd.Fault_history.d h ~proc:0 ~round:1) (s [ 1 ]));
  Alcotest.(check bool) "round 2 replayed" true
    (Rrfd.Pset.equal (Rrfd.Fault_history.d h ~proc:1 ~round:2) (s [ 0 ]));
  Alcotest.(check bool) "after repeats last" true
    (Rrfd.Pset.equal (Rrfd.Fault_history.d h ~proc:1 ~round:3) (s [ 0 ]))

let none_detector () =
  let h = materialise D.none ~n:4 ~rounds:3 in
  Alcotest.(check bool) "no faults ever" true
    (Rrfd.Pset.is_empty (Rrfd.Fault_history.cumulative_union h))

let tests =
  [
    Alcotest.test_case "schedule detector" `Quick schedule_detector;
    Alcotest.test_case "failure-free detector" `Quick none_detector;
  ]
  @ List.map QCheck_alcotest.to_alcotest (props @ [ mixed_really_mixed; kset_generator ])
