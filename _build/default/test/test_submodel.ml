(* The submodel relation of Section 2 (E13): exhaustive checks at n = 3 and
   sampled checks at larger sizes. *)

module P = Rrfd.Predicate
module S = Rrfd.Submodel

let implies name a b =
  match S.check_exhaustive ~n:3 ~rounds:2 a b with
  | S.Implies -> ()
  | S.Counterexample h ->
    Alcotest.failf "%s: unexpected counterexample:@ %a" name
      Rrfd.Fault_history.pp h

let refuted name a b =
  match S.check_exhaustive ~n:3 ~rounds:2 a b with
  | S.Counterexample _ -> ()
  | S.Implies -> Alcotest.failf "%s: expected a counterexample" name

let lattice_positive () =
  implies "crash ⇒ omission" (P.crash ~f:1) (P.omission ~f:1);
  implies "omission ⇒ async (same f)" (P.omission ~f:1) (P.async_resilient ~f:1);
  implies "snapshot ⇒ shm" (P.snapshot ~f:1) (P.shared_memory ~f:1);
  implies "shm ⇒ async" (P.shared_memory ~f:1) (P.async_resilient ~f:1);
  implies "identical ⇒ k-set(1)" P.identical_views (P.k_set ~k:1);
  implies "k-set(1) ⇒ k-set(2)" (P.k_set ~k:1) (P.k_set ~k:2);
  implies "async(1) ⇒ async(2)" (P.async_resilient ~f:1) (P.async_resilient ~f:2);
  implies "async(f) ⇒ mixed(f,t)" (P.async_resilient ~f:1) (P.async_mixed ~f:1 ~t:2);
  implies "omission(f = n−1) ⇒ detector-S" (P.omission ~f:2) P.detector_s;
  implies "snapshot ⇒ not-all-faulty" (P.snapshot ~f:2) P.not_all_faulty

let lattice_negative () =
  refuted "omission ⇏ crash" (P.omission ~f:1) (P.crash ~f:1);
  refuted "async ⇏ omission" (P.async_resilient ~f:1) (P.omission ~f:1);
  refuted "async ⇏ shm" (P.async_resilient ~f:1) (P.shared_memory ~f:1);
  refuted "shm ⇏ snapshot" (P.shared_memory ~f:1) (P.snapshot ~f:1);
  refuted "k-set(2) ⇏ k-set(1)" (P.k_set ~k:2) (P.k_set ~k:1);
  refuted "mixed(f,t) ⇏ async(f)" (P.async_mixed ~f:1 ~t:2) (P.async_resilient ~f:1);
  refuted "antisym alone ⇏ someone-seen-by-all"
    (P.conj (P.async_resilient ~f:2) P.antisymmetric_misses)
    P.someone_seen_by_all

(* The paper's item-6 equivalence: the detector-S predicate equals
   |∪∪D| < n, i.e. omission with f = n − 1. *)
let detector_s_equals_wait_free_omission () =
  let omission_wait_free =
    P.make ~name:"cumulative<n" ~doc:"|∪∪D| < n" (fun h ->
        if
          Rrfd.Pset.cardinal (Rrfd.Fault_history.cumulative_union h)
          < Rrfd.Fault_history.n h
        then None
        else Some "union covers everyone")
  in
  implies "S ⇒ |∪∪D| < n" P.detector_s omission_wait_free;
  implies "|∪∪D| < n ⇒ S" omission_wait_free P.detector_s

let sampled_agrees_with_exhaustive () =
  let rng = Dsim.Rng.create 17 in
  (* positive direction on a bigger system *)
  (match
     S.check_sampled rng ~samples:300 ~rounds:3
       ~gen:(fun rng -> Rrfd.Detector_gen.crash rng ~n:6 ~f:2)
       ~n:6 (P.crash ~f:2) (P.omission ~f:2)
   with
  | S.Implies -> ()
  | S.Counterexample _ -> Alcotest.fail "crash ⇒ omission refuted by sampling");
  (* negative direction found by sampling *)
  match
    S.check_sampled rng ~samples:300 ~rounds:3
      ~gen:(fun rng -> Rrfd.Detector_gen.omission rng ~n:6 ~f:2)
      ~n:6 (P.omission ~f:2) (P.crash ~f:2)
  with
  | S.Counterexample _ -> ()
  | S.Implies -> Alcotest.fail "sampling missed an easy counterexample"

let model_generators_match_their_predicates () =
  (* Every packaged model's canonical generator satisfies its own predicate. *)
  let rng = Dsim.Rng.create 23 in
  List.iter
    (fun m ->
      match
        S.check_sampled rng ~samples:100 ~rounds:3
          ~gen:m.Rrfd.Model.generator ~n:5 Rrfd.Predicate.always
          m.Rrfd.Model.predicate
      with
      | S.Implies -> ()
      | S.Counterexample h ->
        Alcotest.failf "%s: generator broke its predicate:@ %a"
          m.Rrfd.Model.name Rrfd.Fault_history.pp h)
    (Rrfd.Model.all ~n:5 ~f:2)

let tests =
  [
    Alcotest.test_case "lattice positive edges" `Slow lattice_positive;
    Alcotest.test_case "lattice refuted edges" `Slow lattice_negative;
    Alcotest.test_case "item 6 equivalence" `Slow detector_s_equals_wait_free_omission;
    Alcotest.test_case "sampled checks" `Quick sampled_agrees_with_exhaustive;
    Alcotest.test_case "model generators" `Quick model_generators_match_their_predicates;
  ]
