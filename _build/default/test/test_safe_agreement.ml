(* Safe agreement: the BG-simulation primitive behind the impossibility
   results Section 4 transfers. *)

let all_agree_and_valid ~inputs decisions =
  let decided = Array.to_list decisions |> List.filter_map Fun.id in
  let distinct = List.sort_uniq compare decided in
  List.length distinct <= 1
  && List.for_all (fun v -> Array.exists (Int.equal v) inputs) decided

let crash_free_terminates () =
  let inputs = [| 3; 1; 4; 1; 5 |] in
  let r = Shm.Safe_agreement.run ~inputs ~schedule:Shm.Exec.Round_robin () in
  Array.iter
    (fun d -> Alcotest.(check bool) "decided" true (Option.is_some d))
    r.Shm.Safe_agreement.decisions;
  Alcotest.(check bool) "agreement+validity" true
    (all_agree_and_valid ~inputs r.Shm.Safe_agreement.decisions)

let solo_runner_decides_own () =
  let inputs = [| 7; 8; 9 |] in
  (* p1 runs alone to completion before anyone else takes a step. *)
  let r =
    Shm.Safe_agreement.run ~inputs
      ~schedule:(Shm.Exec.Fixed (List.init 400 (fun _ -> 1)))
      ()
  in
  Alcotest.(check (option int)) "p1 decides its own value" (Some 8)
    r.Shm.Safe_agreement.decisions.(1)

let doorway_crash_blocks () =
  let inputs = [| 5; 6; 7 |] in
  let stuck = [| true; false; false |] in
  (* p0 enters the doorway first and dies there; with a schedule that runs
     p0's doorway entry before anyone else moves, nobody can resolve. *)
  let prefix = List.init 200 (fun i -> if i < 50 then 0 else (i mod 2) + 1) in
  let r =
    Shm.Safe_agreement.run ~inputs ~stuck_in_doorway:stuck
      ~schedule:(Shm.Exec.Fixed prefix) ()
  in
  Alcotest.(check (option int)) "p1 blocked" None r.Shm.Safe_agreement.decisions.(1);
  Alcotest.(check (option int)) "p2 blocked" None r.Shm.Safe_agreement.decisions.(2)

let property_agreement_always =
  QCheck.Test.make
    ~name:"safe agreement: deciders agree and values are valid, always"
    ~count:400
    QCheck.(triple (int_range 1 8) (int_bound 100000) (int_bound 255))
    (fun (n, seed, stuck_bits) ->
      let rng = Dsim.Rng.create seed in
      let inputs = Array.init n (fun i -> 10 * (i + 1)) in
      let stuck = Array.init n (fun i -> (stuck_bits lsr i) land 1 = 1) in
      let r =
        Shm.Safe_agreement.run ~inputs ~stuck_in_doorway:stuck
          ~schedule:(Shm.Exec.Random rng) ()
      in
      if all_agree_and_valid ~inputs r.Shm.Safe_agreement.decisions then true
      else QCheck.Test.fail_reportf "n=%d: disagreement or invalid value" n)

let property_termination_without_doorway_crash =
  QCheck.Test.make
    ~name:"safe agreement: everyone decides when no doorway crash" ~count:400
    QCheck.(pair (int_range 1 8) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Dsim.Rng.create seed in
      let inputs = Array.init n (fun i -> 10 * (i + 1)) in
      let r = Shm.Safe_agreement.run ~inputs ~schedule:(Shm.Exec.Random rng) () in
      Array.for_all Option.is_some r.Shm.Safe_agreement.decisions)

let tests =
  [
    Alcotest.test_case "crash-free terminates" `Quick crash_free_terminates;
    Alcotest.test_case "solo runner" `Quick solo_runner_decides_own;
    Alcotest.test_case "doorway crash blocks" `Quick doorway_crash_blocks;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ property_agreement_always; property_termination_without_doorway_crash ]
