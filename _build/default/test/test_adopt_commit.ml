(* The adopt-commit protocol: pure functions, the RRFD two-round version,
   and the register version (Section 4.2). *)

module Ac = Rrfd.Adopt_commit

let propose_commit_on_unanimity () =
  (match Ac.propose ~own:5 ~seen:[ 5; 5; 5 ] with
  | Ac.Commit_vote 5 -> ()
  | _ -> Alcotest.fail "expected commit vote 5");
  match Ac.propose ~own:5 ~seen:[ 5; 6 ] with
  | Ac.Adopt_vote 5 -> ()
  | _ -> Alcotest.fail "expected adopt vote of own value"

let resolve_cases () =
  (match Ac.resolve ~own:1 ~seen:[ Ac.Commit_vote 9; Ac.Commit_vote 9 ] with
  | Ac.Commit 9 -> ()
  | _ -> Alcotest.fail "unanimous commits commit");
  (match Ac.resolve ~own:1 ~seen:[ Ac.Commit_vote 9; Ac.Adopt_vote 2 ] with
  | Ac.Adopt 9 -> ()
  | _ -> Alcotest.fail "mixed with a commit adopts the committed value");
  match Ac.resolve ~own:1 ~seen:[ Ac.Adopt_vote 2; Ac.Adopt_vote 3 ] with
  | Ac.Adopt 1 -> ()
  | _ -> Alcotest.fail "no commit adopts own"

let run_rrfd ~n ~seed ~inputs =
  let rng = Dsim.Rng.create seed in
  let detector = Rrfd.Detector_gen.iis rng ~n ~f:(n - 1) in
  let outcome =
    Rrfd.Engine.run ~n
      ~check:(Rrfd.Predicate.snapshot ~f:(n - 1))
      ~algorithm:(Ac.algorithm ~inputs) ~detector ()
  in
  outcome

let rrfd_two_rounds () =
  let outcome = run_rrfd ~n:4 ~seed:7 ~inputs:[| 1; 2; 1; 2 |] in
  Alcotest.(check int) "two rounds" 2 outcome.Rrfd.Engine.rounds_used;
  Alcotest.(check (option string)) "spec holds" None
    (Ac.check_outcomes ~inputs:[| 1; 2; 1; 2 |] outcome.Rrfd.Engine.decisions)

let rrfd_property =
  QCheck.Test.make
    ~name:"RRFD adopt-commit meets its spec under snapshot adversaries"
    ~count:500
    QCheck.(triple (int_range 2 12) (int_bound 100000) (int_range 1 3))
    (fun (n, seed, universe) ->
      let rng = Dsim.Rng.create (seed * 31) in
      let inputs = Array.init n (fun _ -> Dsim.Rng.int rng universe) in
      let outcome = run_rrfd ~n ~seed ~inputs in
      match outcome.Rrfd.Engine.violation with
      | Some v -> QCheck.Test.fail_reportf "adversary broke predicate: %s" v
      | None -> (
        match Ac.check_outcomes ~inputs outcome.Rrfd.Engine.decisions with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d: %s" n reason))

let register_version_roundrobin () =
  let inputs = [| 3; 3; 3 |] in
  let r = Shm.Adopt_commit_shm.run ~inputs ~schedule:Shm.Exec.Round_robin in
  Alcotest.(check (option string)) "all commit on agreement" None
    (Ac.check_outcomes ~inputs
       (Array.map Option.some r.Shm.Adopt_commit_shm.outcomes));
  Array.iter
    (fun o ->
      Alcotest.(check bool) "committed" true (Ac.is_commit o);
      Alcotest.(check int) "value 3" 3 (Ac.value_of o))
    r.Shm.Adopt_commit_shm.outcomes

let register_version_solo_first () =
  (* p0 runs to completion before anyone else steps: it must commit. *)
  let inputs = [| 1; 2 |] in
  let solo_prefix = List.init 20 (fun _ -> 0) in
  let r =
    Shm.Adopt_commit_shm.run ~inputs ~schedule:(Shm.Exec.Fixed solo_prefix)
  in
  (match r.Shm.Adopt_commit_shm.outcomes.(0) with
  | Ac.Commit 1 -> ()
  | o ->
    Alcotest.failf "solo process should commit its value, got %a"
      (Ac.pp_outcome Format.pp_print_int)
      o);
  Alcotest.(check (option string)) "agreement carried" None
    (Ac.check_outcomes ~inputs
       (Array.map Option.some r.Shm.Adopt_commit_shm.outcomes))

let register_property =
  QCheck.Test.make
    ~name:"register adopt-commit meets its spec under random interleavings"
    ~count:500
    QCheck.(triple (int_range 1 10) (int_bound 100000) (int_range 1 3))
    (fun (n, seed, universe) ->
      let rng = Dsim.Rng.create seed in
      let inputs = Array.init n (fun _ -> Dsim.Rng.int rng universe) in
      let r =
        Shm.Adopt_commit_shm.run ~inputs
          ~schedule:(Shm.Exec.Random (Dsim.Rng.split rng))
      in
      match
        Ac.check_outcomes ~inputs
          (Array.map Option.some r.Shm.Adopt_commit_shm.outcomes)
      with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d: %s" n reason)

let tests =
  [
    Alcotest.test_case "propose" `Quick propose_commit_on_unanimity;
    Alcotest.test_case "resolve" `Quick resolve_cases;
    Alcotest.test_case "RRFD version, two rounds" `Quick rrfd_two_rounds;
    Alcotest.test_case "register version, round robin" `Quick
      register_version_roundrobin;
    Alcotest.test_case "register version, solo run" `Quick
      register_version_solo_first;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ rrfd_property; register_property ]
