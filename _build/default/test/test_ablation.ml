(* Ablations: which predicate ingredients carry which guarantees.

   The paper's models differ by small predicate clauses; these tests show
   the clauses are load-bearing:

   - adopt-commit is safe under the snapshot predicate (comparability) AND
     under the shared-memory predicate (someone seen by all), but breaks
     under bare async(f) once f ≥ n/2;
   - one-round k-set agreement breaks as soon as the detector may exceed
     the uncertainty bound;
   - the recording detector lets two algorithms face the same schedule. *)

module Pset = Rrfd.Pset
module Ac = Rrfd.Adopt_commit

let s = Pset.of_list

let adopt_commit_breaks_under_bare_async () =
  (* n = 3, f = 2: p0 partitioned from {p1,p2} for both rounds.  Two
     different values get committed — exactly what comparability or
     someone-seen-by-all rules out. *)
  let inputs = [| 1; 2; 2 |] in
  let round = [| s [ 1; 2 ]; s [ 0 ]; s [ 0 ] |] in
  let detector = Rrfd.Detector.of_schedule [ round; round ] in
  let outcome =
    Rrfd.Engine.run ~n:3
      ~check:(Rrfd.Predicate.async_resilient ~f:2)
      ~algorithm:(Ac.algorithm ~inputs) ~detector ()
  in
  Alcotest.(check (option string)) "the schedule is legal async(2)" None
    outcome.Rrfd.Engine.violation;
  (match Ac.check_outcomes ~inputs outcome.Rrfd.Engine.decisions with
  | Some reason ->
    Alcotest.(check bool) "agreement clause broken" true
      (String.length reason >= 9 && String.sub reason 0 9 = "agreement")
  | None -> Alcotest.fail "expected an adopt-commit violation");
  match (outcome.Rrfd.Engine.decisions.(0), outcome.Rrfd.Engine.decisions.(1)) with
  | Some (Ac.Commit 1), Some (Ac.Commit 2) -> ()
  | _ -> Alcotest.fail "expected two conflicting commits"

let adopt_commit_safe_under_shm_exhaustive () =
  (* Someone-seen-by-all restores safety: over every legal 2-round shm(2)
     history of a 3-process system, the spec holds. *)
  let inputs = [| 1; 2; 2 |] in
  let counterexample =
    Adversary.Enumerate.find ~n:3 ~rounds:2
      ~satisfying:(Rrfd.Predicate.shared_memory ~f:2)
      ~f:(fun h ->
        let rounds =
          List.init (Rrfd.Fault_history.rounds h) (fun r ->
              Rrfd.Fault_history.round_sets h ~round:(r + 1))
        in
        let detector = Rrfd.Detector.of_schedule rounds in
        let outcome =
          Rrfd.Engine.run ~n:3 ~algorithm:(Ac.algorithm ~inputs) ~detector ()
        in
        Ac.check_outcomes ~inputs outcome.Rrfd.Engine.decisions <> None)
  in
  match counterexample with
  | None -> ()
  | Some h ->
    Alcotest.failf "adopt-commit broke under shm history %s"
      (Rrfd.Fault_history.to_string_compact h)

let kset_breaks_beyond_uncertainty_bound () =
  (* Uncertainty of exactly k distinct separations defeats the k-set bound:
     under a k-set(k+1) detector the one-round algorithm can output k+1
     values. *)
  let inputs = [| 10; 20; 30; 40 |] in
  (* Common part {3}, uncertainty {0,1}: legal for k = 3, illegal for
     k = 2 — and the algorithm outputs exactly 3 distinct values. *)
  let round = [| s [ 3 ]; s [ 0; 3 ]; s [ 0; 1; 3 ]; s [ 0; 1; 3 ] |] in
  let detector = Rrfd.Detector.of_schedule [ round ] in
  let outcome =
    Rrfd.Engine.run ~n:4 ~algorithm:(Rrfd.Kset.one_round ~inputs) ~detector ()
  in
  Alcotest.(check int) "3 distinct decisions" 3
    (Tasks.Agreement.distinct_decisions ~decisions:outcome.Rrfd.Engine.decisions);
  Alcotest.(check bool) "violates k=2" false
    (Rrfd.Predicate.holds (Rrfd.Predicate.k_set ~k:2) outcome.Rrfd.Engine.history);
  Alcotest.(check bool) "satisfies k=3" true
    (Rrfd.Predicate.holds (Rrfd.Predicate.k_set ~k:3) outcome.Rrfd.Engine.history)

let recording_detector_replays () =
  let rng = Dsim.Rng.create 31 in
  let base = Rrfd.Detector_gen.async rng ~n:4 ~f:1 in
  let recorded, log = Rrfd.Detector.recording base in
  let inputs = [| 0; 1; 2; 3 |] in
  let first =
    Rrfd.Engine.states_after ~n:4 ~rounds:3
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
      ~detector:recorded ()
  in
  let replayed =
    Rrfd.Engine.states_after ~n:4 ~rounds:3
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
      ~detector:(Rrfd.Detector.of_schedule (log ()))
      ()
  in
  Alcotest.(check bool) "identical histories" true
    (Rrfd.Fault_history.equal (snd first) (snd replayed));
  let v1 = (fst first).(2) and v2 = (fst replayed).(2) in
  Alcotest.(check bool) "identical views" true (Rrfd.Full_info.equal v1 v2)

let tests =
  [
    Alcotest.test_case "adopt-commit breaks under bare async" `Quick
      adopt_commit_breaks_under_bare_async;
    Alcotest.test_case "adopt-commit safe under shm (exhaustive)" `Slow
      adopt_commit_safe_under_shm_exhaustive;
    Alcotest.test_case "k-set breaks beyond the bound" `Quick
      kset_breaks_beyond_uncertainty_bound;
    Alcotest.test_case "recording detector replays" `Quick
      recording_detector_replays;
  ]
