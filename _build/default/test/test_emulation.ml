(* Item 4 / item 3 emulations and the knowledge-propagation analysis. *)

module Pset = Rrfd.Pset
module P = Rrfd.Predicate

let closure_gives_shm_predicate =
  (* Item 4: with 2f < n, two async-MP rounds implement one shared-memory
     round: |D_sim| ≤ f and someone is seen by all. *)
  QCheck.Test.make ~name:"E3: 2 rounds of async(f), 2f<n ⇒ one shm round"
    ~count:400
    QCheck.(pair (int_range 3 12) (int_bound 100000))
    (fun (n, seed) ->
      let f = (n - 1) / 2 in
      let rng = Dsim.Rng.create seed in
      let detector = Rrfd.Detector_gen.async rng ~n ~f in
      let r = Rrfd.Emulation.two_round_closure ~n ~detector in
      let h = Rrfd.Fault_history.of_rounds ~n [ r.Rrfd.Emulation.simulated ] in
      match Rrfd.Predicate.explain (P.shared_memory ~f) h with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason)

let closure_b_implements_a =
  (* Item 3's B: with f < t and 2t < n, two rounds of B give fault sets of
     size at most f — a round of system A. *)
  QCheck.Test.make ~name:"E2: 2 rounds of mixed(f,t), 2t<n ⇒ one async(f) round"
    ~count:400
    QCheck.(pair (int_range 5 14) (int_bound 100000))
    (fun (n, seed) ->
      let t = (n - 1) / 2 in
      if t < 2 then true
      else begin
        let f = t - 1 in
        let rng = Dsim.Rng.create seed in
        let detector = Rrfd.Detector_gen.async_mixed rng ~n ~f ~t in
        let r = Rrfd.Emulation.two_round_closure ~n ~detector in
        let h = Rrfd.Fault_history.of_rounds ~n [ r.Rrfd.Emulation.simulated ] in
        match Rrfd.Predicate.explain (P.async_resilient ~f) h with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d t=%d: %s" n f t reason
      end)

let iterated_closure_stays_legal =
  QCheck.Test.make ~name:"iterated closure keeps both histories legal" ~count:100
    QCheck.(pair (int_range 3 9) (int_bound 100000))
    (fun (n, seed) ->
      let f = (n - 1) / 2 in
      let rng = Dsim.Rng.create seed in
      let detector = Rrfd.Detector_gen.async rng ~n ~f in
      let simulated, underlying =
        Rrfd.Emulation.simulate_rounds ~n ~rounds:3 ~detector
      in
      Rrfd.Fault_history.rounds simulated = 3
      && Rrfd.Fault_history.rounds underlying = 6
      && Rrfd.Predicate.holds (P.shared_memory ~f) simulated
      && Rrfd.Predicate.holds (P.async_resilient ~f) underlying)

(* Item 4's alternative predicate: under P3 ∧ antisymmetry, somebody's
   round-1 value is known to all within n rounds (the cycle-length
   argument). *)
let known_by_all_within_n =
  QCheck.Test.make ~name:"E14: known-by-all within n rounds under antisymmetry"
    ~count:300
    QCheck.(pair (int_range 2 10) (int_bound 100000))
    (fun (n, seed) ->
      let f = max 1 ((n - 1) / 2) in
      let rng = Dsim.Rng.create seed in
      let detector = Rrfd.Detector_gen.antisymmetric rng ~n ~f in
      match Rrfd.Emulation.known_by_all_within ~n ~detector ~max_rounds:n with
      | Some r -> r <= n
      | None -> QCheck.Test.fail_reportf "nobody known by all after n rounds")

let knowledge_on_explicit_history () =
  let s = Pset.of_list in
  (* p0 misses p1, p1 misses p2, p2 misses p0 — the 3-cycle: nobody known
     by all after one round... *)
  let cycle = [| s [ 1 ]; s [ 2 ]; s [ 0 ] |] in
  let h1 = Rrfd.Fault_history.of_rounds ~n:3 [ cycle ] in
  Alcotest.(check (option int)) "cycle blocks round 1" None
    (Rrfd.Emulation.knowledge_rounds h1);
  (* ...but a clean second round finishes the job. *)
  let h2 = Rrfd.Fault_history.of_rounds ~n:3 [ cycle; [| s []; s []; s [] |] ] in
  Alcotest.(check (option int)) "clean round 2 resolves" (Some 2)
    (Rrfd.Emulation.knowledge_rounds h2)

(* The paper conjectures two rounds suffice under the alternative
   shared-memory predicate; search exhaustively for a counterexample at
   n = 3 and record the outcome either way. *)
let two_round_conjecture_exhaustive () =
  let predicate = P.shared_memory_alt ~f:2 in
  let counterexample =
    Adversary.Enumerate.find ~n:3 ~rounds:2 ~satisfying:predicate ~f:(fun h ->
        Rrfd.Emulation.knowledge_rounds h = None)
  in
  (* We record the result rather than assert a side: the conjecture is open
     in the paper.  At n = 3 the search settles it for this system size. *)
  match counterexample with
  | None -> () (* conjecture holds at n = 3 *)
  | Some h ->
    (* a genuine counterexample must still satisfy the predicate *)
    Alcotest.(check bool) "counterexample is legal" true
      (Rrfd.Predicate.holds predicate h)

let tests =
  [
    Alcotest.test_case "knowledge on explicit history" `Quick
      knowledge_on_explicit_history;
    Alcotest.test_case "two-round conjecture search (n=3)" `Slow
      two_round_conjecture_exhaustive;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        closure_gives_shm_predicate;
        closure_b_implements_a;
        iterated_closure_stays_legal;
        known_by_all_within_n;
      ]
