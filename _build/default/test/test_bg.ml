(* The BG simulation: k+1 wait-free simulators drive an n-process
   k-resilient execution. *)

let flood ~n ~rounds = Syncnet.Flood.min_flood ~inputs:(Tasks.Inputs.distinct n) ~horizon:rounds

let crash_free_simulates_everything () =
  let n = 5 and k = 2 and rounds = 3 in
  let rng = Dsim.Rng.create 5 in
  let o =
    Rrfd.Bg_simulation.simulate ~rng ~simulators:(k + 1) ~n ~k ~rounds
      ~algorithm:(flood ~n ~rounds) ()
  in
  Alcotest.(check int) "no wedges" 0 o.Rrfd.Bg_simulation.wedged_instances;
  Alcotest.(check int) "nobody stalled" 0 o.Rrfd.Bg_simulation.stalled_processes;
  Array.iter
    (fun c -> Alcotest.(check int) "all rounds" rounds c)
    o.Rrfd.Bg_simulation.completed;
  Alcotest.(check bool) "fault sets ≤ k" true o.Rrfd.Bg_simulation.fault_set_sizes_ok;
  Array.iter
    (fun d -> Alcotest.(check bool) "decided" true (Option.is_some d))
    o.Rrfd.Bg_simulation.decisions

let one_simulator_suffices () =
  let n = 4 and k = 1 and rounds = 2 in
  let rng = Dsim.Rng.create 9 in
  let o =
    Rrfd.Bg_simulation.simulate ~rng ~simulators:1 ~n ~k ~rounds
      ~algorithm:(flood ~n ~rounds) ()
  in
  Alcotest.(check int) "nobody stalled" 0 o.Rrfd.Bg_simulation.stalled_processes

let simulation_property =
  QCheck.Test.make
    ~name:
      "BG: ≤k simulator crashes stall ≤k simulated processes, fault sets ≤ k"
    ~count:300
    QCheck.(triple (int_range 3 8) (int_bound 100000) (int_range 1 3))
    (fun (n, seed, k_raw) ->
      let k = 1 + (k_raw mod (n - 1)) in
      let rounds = 3 in
      let rng = Dsim.Rng.create seed in
      let simulators = k + 1 in
      let crash_count = Dsim.Rng.int rng (min k simulators) in
      let crashes =
        Dsim.Rng.sample_without_replacement rng crash_count simulators
        |> List.map (fun s -> (s, Dsim.Rng.int rng 60))
      in
      let o =
        Rrfd.Bg_simulation.simulate ~rng ~simulators ~crashes ~n ~k ~rounds
          ~algorithm:(flood ~n ~rounds) ()
      in
      if not o.Rrfd.Bg_simulation.fault_set_sizes_ok then
        QCheck.Test.fail_reportf "a receive set missed more than k"
      else if o.Rrfd.Bg_simulation.stalled_processes > crash_count then
        QCheck.Test.fail_reportf "n=%d k=%d: %d crashes stalled %d processes"
          n k crash_count o.Rrfd.Bg_simulation.stalled_processes
      else begin
        (* completers of a full flooding run hold valid decisions *)
        let inputs = Tasks.Inputs.distinct n in
        Array.for_all2
          (fun completed d ->
            if completed = rounds then
              match d with
              | Some v -> Array.exists (Int.equal v) inputs
              | None -> false
            else true)
          o.Rrfd.Bg_simulation.completed o.Rrfd.Bg_simulation.decisions
      end)

let wedge_really_happens =
  (* Over many seeds with an aggressive crash, at least one run must wedge
     an instance mid-doorway — the phenomenon the BG machinery is about. *)
  QCheck.Test.make ~name:"BG: doorway wedges occur under crashes" ~count:1
    QCheck.unit
    (fun () ->
      let wedged = ref 0 in
      for seed = 0 to 80 do
        let n = 4 and k = 1 and rounds = 2 in
        let rng = Dsim.Rng.create seed in
        let o =
          Rrfd.Bg_simulation.simulate ~rng ~simulators:2
            ~crashes:[ (0, 3 + (seed mod 10)) ] ~n ~k ~rounds
            ~algorithm:(flood ~n ~rounds) ()
        in
        wedged := !wedged + o.Rrfd.Bg_simulation.wedged_instances
      done;
      if !wedged = 0 then QCheck.Test.fail_reportf "no wedge in 81 runs"
      else true)

let tests =
  [
    Alcotest.test_case "crash-free full simulation" `Quick
      crash_free_simulates_everything;
    Alcotest.test_case "single simulator" `Quick one_simulator_suffices;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ simulation_property; wedge_really_happens ]
