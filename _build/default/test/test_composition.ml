(* Cross-substrate compositions: the paper's constructions stacked on each
   other, end to end.

   - real async network → item-3 round layer → two-round heard-of closure
     → shared-memory predicate (items 3 + 4 composed);
   - IIS detector → Thm 4.1 simulation → omission predicate → flooding
     decides (Sec. 4 composed with Sec. 2);
   - Thm 3.3 construction → Thm 3.1 algorithm (Sec. 3 composed). *)

module Pset = Rrfd.Pset

let network_rounds_to_shm_closure =
  QCheck.Test.make
    ~name:"items 3+4 composed: network rounds drive the shm closure"
    ~count:100
    QCheck.(pair (int_range 3 9) (int_bound 100000))
    (fun (n, seed) ->
      let f = (n - 1) / 2 in
      let inputs = Tasks.Inputs.distinct n in
      (* Two real network rounds produce an item-3 history... *)
      let result =
        Msgnet.Round_layer.run ~seed ~n ~f ~rounds:2
          ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
          ()
      in
      let h = result.Msgnet.Round_layer.induced in
      if Rrfd.Fault_history.rounds h < 2 then true
      else begin
        (* ...which replayed through the closure must land in the
           shared-memory predicate (2f < n). *)
        let detector =
          Rrfd.Detector.of_schedule
            [
              Rrfd.Fault_history.round_sets h ~round:1;
              Rrfd.Fault_history.round_sets h ~round:2;
            ]
        in
        let closure = Rrfd.Emulation.two_round_closure ~n ~detector in
        let simulated =
          Rrfd.Fault_history.of_rounds ~n [ closure.Rrfd.Emulation.simulated ]
        in
        match
          Rrfd.Predicate.explain (Rrfd.Predicate.shared_memory ~f) simulated
        with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason
      end)

let iis_simulation_flooding =
  QCheck.Test.make
    ~name:"Secs. 2+4 composed: IIS rounds simulate sync flooding that decides"
    ~count:100
    QCheck.(pair (int_range 4 10) (int_bound 100000))
    (fun (n, seed) ->
      let k = 1 + (seed mod 2) in
      let f = 2 * k in
      let rng = Dsim.Rng.create seed in
      let inputs = Tasks.Inputs.distinct n in
      (* ⌊f/k⌋ = 2 simulated omission rounds; flooding with horizon 2 needs
         only validity here (agreement needs more rounds in general), so we
         check the simulation's predicate and the decisions' validity. *)
      let result =
        Rrfd.Sim_omission.simulate ~n ~f ~k
          ~algorithm:(Syncnet.Flood.min_flood ~inputs ~horizon:2)
          ~detector:(Rrfd.Detector_gen.iis rng ~n ~f:k)
          ()
      in
      match result.Rrfd.Sim_omission.omission_violation with
      | Some reason -> QCheck.Test.fail_reportf "predicate: %s" reason
      | None ->
        let decisions = result.Rrfd.Sim_omission.outcome.Rrfd.Engine.decisions in
        Array.for_all
          (function
            | Some v -> Array.exists (Int.equal v) inputs
            | None -> false)
          decisions)

let thm33_feeds_thm31 =
  QCheck.Test.make ~name:"Sec. 3 composed: Thm 3.3 detector solves via Thm 3.1"
    ~count:200
    QCheck.(triple (int_range 2 10) (int_bound 100000) (int_range 1 3))
    (fun (n, seed, k_raw) ->
      let k = 1 + (k_raw mod n) in
      let rng = Dsim.Rng.create seed in
      let r =
        Shm.Thm33.one_round ~rng:(Dsim.Rng.split rng) ~n ~k
          ~schedule:(Shm.Exec.Random (Dsim.Rng.split rng))
          ()
      in
      let inputs = Tasks.Inputs.distinct n in
      let outcome =
        Rrfd.Engine.run ~n
          ~algorithm:(Rrfd.Kset.one_round ~inputs)
          ~detector:(Rrfd.Detector.of_schedule [ r.Shm.Thm33.fault_sets ])
          ()
      in
      Tasks.Agreement.check ~k ~inputs outcome.Rrfd.Engine.decisions = None)

let omission_chain_matches_crash_chain () =
  (* Both readings of the chain adversary force the same decision pattern
     below the bound. *)
  let k = 2 and rounds = 2 in
  let n = Adversary.Lower_bound.required_processes ~k ~rounds in
  let adv = Adversary.Lower_bound.build ~n ~k ~rounds in
  let run pattern =
    let result =
      Syncnet.Sync_net.run ~n ~rounds ~pattern
        ~algorithm:
          (Syncnet.Flood.min_flood ~inputs:adv.Adversary.Lower_bound.inputs
             ~horizon:rounds)
        ()
    in
    Array.mapi
      (fun i d ->
        if Pset.mem i result.Syncnet.Sync_net.crashed then None else d)
      result.Syncnet.Sync_net.decisions
  in
  let crash_decisions =
    run (Syncnet.Faults.crash ~n adv.Adversary.Lower_bound.crash_specs)
  in
  let omission_decisions =
    run
      (Syncnet.Faults.omission ~n
         ~faulty:(Adversary.Lower_bound.omission_faulty adv)
         ~drops:(fun ~round ~sender ->
           Adversary.Lower_bound.omission_drops adv ~round ~sender))
  in
  Alcotest.(check int) "crash: k+1 values" (k + 1)
    (Tasks.Agreement.distinct_decisions ~decisions:crash_decisions);
  Alcotest.(check int) "omission: k+1 values" (k + 1)
    (Tasks.Agreement.distinct_decisions ~decisions:omission_decisions)

let tests =
  [
    Alcotest.test_case "omission chain = crash chain" `Quick
      omission_chain_matches_crash_chain;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ network_rounds_to_shm_closure; iis_simulation_flooding; thm33_feeds_thm31 ]
