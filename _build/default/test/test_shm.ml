(* The shared-memory substrate: executor, atomic snapshot, immediate
   snapshot (item 5), and the Theorem 3.3 construction. *)

module Pset = Rrfd.Pset

module IntExec = Shm.Exec.Make (struct
  type t = int
end)

let exec_round_robin_interleaves () =
  let log = ref [] in
  let body ~proc =
    IntExec.write proc proc;
    log := (proc, IntExec.read ((proc + 1) mod 2)) :: !log
  in
  let outcome =
    IntExec.run ~n_procs:2 ~n_locs:2 ~schedule:Shm.Exec.Round_robin body
  in
  Alcotest.(check int) "4 steps" 4 outcome.IntExec.steps;
  (* round robin: w0 w1 r0 r1 — both reads see the other's write *)
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "saw peer" true (Option.is_some v))
    !log

let exec_fixed_schedule_solo () =
  let seen = ref None in
  let body ~proc =
    IntExec.write proc (proc + 10);
    if proc = 0 then seen := IntExec.read 1
  in
  (* p0 runs completely before p1 starts: it must miss p1's write *)
  let _ =
    IntExec.run ~n_procs:2 ~n_locs:2 ~schedule:(Shm.Exec.Fixed [ 0; 0; 1 ]) body
  in
  Alcotest.(check (option int)) "p0 missed p1" None !seen

let exec_enforces_swmr () =
  let body ~proc:_ = IntExec.write 0 1 in
  Alcotest.check_raises "wrong owner"
    (Invalid_argument "Exec: p1 wrote location 0 owned by p0") (fun () ->
      ignore
        (IntExec.run ~enforce_swmr:Fun.id ~n_procs:2 ~n_locs:2
           ~schedule:Shm.Exec.Round_robin body))

module IntSnap = Shm.Snapshot.Make (struct
  type t = int
end)

let snapshot_sees_own_updates () =
  let result = ref [||] in
  let body ~proc =
    IntSnap.update ~proc (proc * 7);
    if proc = 0 then result := IntSnap.scan ()
  in
  let _ = IntSnap.run ~n:3 ~schedule:Shm.Exec.Round_robin body in
  Alcotest.(check (option int)) "own value present" (Some 0) !result.(0)

(* Linearizability witness for scans: under any interleaving, the set of
   scans returned (ordered by completion) must be monotone — each later scan
   reflects a superset of updates (values here only grow). *)
let snapshot_scans_monotone =
  QCheck.Test.make ~name:"snapshot scans are monotone under random schedules"
    ~count:300
    QCheck.(pair (int_range 2 8) (int_bound 100000))
    (fun (n, seed) ->
      let scans = ref [] in
      let body ~proc =
        IntSnap.update ~proc 1;
        scans := IntSnap.scan () :: !scans;
        IntSnap.update ~proc 2;
        scans := IntSnap.scan () :: !scans
      in
      let rng = Dsim.Rng.create seed in
      let _ = IntSnap.run ~n ~schedule:(Shm.Exec.Random rng) body in
      (* order scans by "how much they saw" — all must form a chain under
         the pointwise order (None < Some 1 < Some 2) *)
      let leq a b =
        let le x y =
          match (x, y) with
          | None, _ -> true
          | Some _, None -> false
          | Some u, Some v -> u <= v
        in
        Array.for_all2 le a b
      in
      let all = !scans in
      List.for_all
        (fun s1 -> List.for_all (fun s2 -> leq s1 s2 || leq s2 s1) all)
        all)

let immediate_snapshot_properties =
  QCheck.Test.make
    ~name:"E4: immediate snapshot satisfies self-inclusion/comparability/immediacy"
    ~count:500
    QCheck.(pair (int_range 1 10) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Dsim.Rng.create seed in
      let r =
        Shm.Immediate_snapshot.run_once ~n ~schedule:(Shm.Exec.Random rng)
      in
      match Shm.Immediate_snapshot.check_views r.Shm.Immediate_snapshot.views with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d: %s" n reason)

let immediate_snapshot_fault_sets_satisfy_p5 =
  QCheck.Test.make
    ~name:"E4: IIS rounds satisfy the snapshot predicate (item 5)" ~count:200
    QCheck.(triple (int_range 1 8) (int_bound 100000) (int_range 1 4))
    (fun (n, seed, rounds) ->
      let rng = Dsim.Rng.create seed in
      let h = Shm.Iis.history rng ~n ~rounds in
      match
        Rrfd.Predicate.explain (Rrfd.Predicate.snapshot ~f:(n - 1)) h
      with
      | None -> true
      | Some reason -> QCheck.Test.fail_reportf "n=%d: %s" n reason)

let solo_immediate_snapshot () =
  (* A process running alone must see exactly itself. *)
  let r =
    Shm.Immediate_snapshot.run_once ~n:3
      ~schedule:(Shm.Exec.Fixed (List.init 200 (fun _ -> 2)))
  in
  Alcotest.(check bool) "solo view is {p2}" true
    (Pset.equal r.Shm.Immediate_snapshot.views.(2) (Pset.singleton 2))

let kset_object_bounds_outputs () =
  let rng = Dsim.Rng.create 9 in
  let obj = Shm.Kset_object.create ~rng ~k:2 () in
  let outputs = List.init 50 (fun i -> Shm.Kset_object.propose obj i) in
  let distinct = List.sort_uniq compare outputs in
  Alcotest.(check bool) "≤ 2 distinct outputs" true (List.length distinct <= 2);
  List.iter
    (fun v -> Alcotest.(check bool) "validity" true (v >= 0 && v < 50))
    outputs

let thm33_construction =
  QCheck.Test.make
    ~name:"E8/Thm 3.3: construction yields k-set-predicate fault sets"
    ~count:400
    QCheck.(triple (int_range 2 10) (int_bound 100000) (int_range 1 4))
    (fun (n, seed, k_raw) ->
      let k = 1 + (k_raw mod n) in
      let rng = Dsim.Rng.create seed in
      let r =
        Shm.Thm33.one_round ~rng:(Dsim.Rng.split rng) ~n ~k
          ~schedule:(Shm.Exec.Random (Dsim.Rng.split rng))
          ()
      in
      if not r.Shm.Thm33.values_readable then
        QCheck.Test.fail_reportf "an unsuspected process's value was unreadable"
      else begin
        let h =
          Rrfd.Fault_history.of_rounds ~n [ r.Shm.Thm33.fault_sets ]
        in
        match Rrfd.Predicate.explain (Rrfd.Predicate.k_set ~k) h with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d k=%d: %s" n k reason
      end)

let tests =
  [
    Alcotest.test_case "executor round robin" `Quick exec_round_robin_interleaves;
    Alcotest.test_case "executor fixed schedule" `Quick exec_fixed_schedule_solo;
    Alcotest.test_case "executor SWMR enforcement" `Quick exec_enforces_swmr;
    Alcotest.test_case "snapshot self-visibility" `Quick snapshot_sees_own_updates;
    Alcotest.test_case "immediate snapshot solo" `Quick solo_immediate_snapshot;
    Alcotest.test_case "k-set object bounds" `Quick kset_object_bounds_outputs;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        snapshot_scans_monotone;
        immediate_snapshot_properties;
        immediate_snapshot_fault_sets_satisfy_p5;
        thm33_construction;
      ]
