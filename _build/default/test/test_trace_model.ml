(* The Trace transcript recorder, the Model packages, and the predicate
   combinators. *)

module Pset = Rrfd.Pset

let s = Pset.of_list

let trace_matches_engine () =
  let inputs = [| 5; 6; 7 |] in
  let d = [| s [ 2 ]; s [ 2 ]; s [ 2 ] |] in
  let detector = Rrfd.Detector.of_schedule [ d ] in
  let trace =
    Rrfd.Trace.record ~n:3 ~pp_msg:Format.pp_print_int
      ~algorithm:(Rrfd.Kset.one_round ~inputs)
      ~detector ()
  in
  Alcotest.(check int) "one round traced" 1 (List.length trace.Rrfd.Trace.rounds);
  let round = List.hd trace.Rrfd.Trace.rounds in
  Alcotest.(check (array string)) "emissions rendered"
    [| "5"; "6"; "7" |]
    round.Rrfd.Trace.emissions;
  Alcotest.(check int) "all decided this round" 3
    (List.length round.Rrfd.Trace.new_decisions);
  Alcotest.(check (array (option int))) "outcome decisions embedded"
    [| Some 5; Some 5; Some 5 |]
    trace.Rrfd.Trace.outcome.Rrfd.Engine.decisions

let trace_multi_round () =
  let inputs = [| 1; 2; 3; 4 |] in
  let trace =
    Rrfd.Trace.record ~n:4 ~stop_when_decided:false ~max_rounds:3
      ~pp_msg:(fun ppf l -> Format.fprintf ppf "%d" (List.length l))
      ~algorithm:(Syncnet.Flood.min_flood ~inputs ~horizon:3)
      ~detector:Rrfd.Detector.none ()
  in
  Alcotest.(check int) "three rounds" 3 (List.length trace.Rrfd.Trace.rounds);
  (* flooding: everyone knows everything from round 2 on *)
  let last = List.nth trace.Rrfd.Trace.rounds 2 in
  Array.iter
    (fun e -> Alcotest.(check string) "message carries 4 values" "4" e)
    last.Rrfd.Trace.emissions;
  (* rendering shouldn't raise *)
  let rendered =
    Format.asprintf "%a" (Rrfd.Trace.pp Format.pp_print_int) trace
  in
  Alcotest.(check bool) "non-empty rendering" true (String.length rendered > 0)

let predicate_disj () =
  let h_selfish = Rrfd.Fault_history.of_rounds ~n:3 [ [| s [ 0 ]; s []; s [] |] ] in
  let p =
    Rrfd.Predicate.disj Rrfd.Predicate.no_self_suspicion
      (Rrfd.Predicate.async_resilient ~f:1)
  in
  Alcotest.(check bool) "one side enough" true (Rrfd.Predicate.holds p h_selfish);
  let h_both_bad =
    Rrfd.Fault_history.of_rounds ~n:3 [ [| s [ 0; 1 ]; s []; s [] |] ]
  in
  Alcotest.(check bool) "both sides fail" false
    (Rrfd.Predicate.holds p h_both_bad)

let model_metadata () =
  let models = Rrfd.Model.all ~n:5 ~f:2 in
  Alcotest.(check int) "nine models" 9 (List.length models);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Rrfd.Model.name ^ " has description")
        true
        (String.length m.Rrfd.Model.description > 0))
    models

let tests =
  [
    Alcotest.test_case "trace matches engine" `Quick trace_matches_engine;
    Alcotest.test_case "trace multi round" `Quick trace_multi_round;
    Alcotest.test_case "predicate disj" `Quick predicate_disj;
    Alcotest.test_case "model metadata" `Quick model_metadata;
  ]
