(* Corollaries 4.2/4.4: the chain adversary forces k+1 values at horizon
   ⌊f/k⌋ and agreement returns one round later. *)

module Pset = Rrfd.Pset

let run_against_chain ~n ~k ~chain_rounds ~horizon =
  let adv = Adversary.Lower_bound.build ~n ~k ~rounds:chain_rounds in
  let pattern = Syncnet.Faults.crash ~n adv.Adversary.Lower_bound.crash_specs in
  let f = k * chain_rounds in
  let algorithm =
    Syncnet.Flood.min_flood ~inputs:adv.Adversary.Lower_bound.inputs ~horizon
  in
  let result = Syncnet.Sync_net.run ~n ~rounds:horizon ~pattern ~algorithm () in
  (adv, f, result)

let distinct_live_decisions result =
  Tasks.Agreement.distinct_decisions
    ~decisions:
      (Array.mapi
         (fun i d ->
           if Pset.mem i result.Syncnet.Sync_net.crashed then None else d)
         result.Syncnet.Sync_net.decisions)

let chain_breaks_agreement_at_the_bound () =
  List.iter
    (fun (k, rounds) ->
      let n = Adversary.Lower_bound.required_processes ~k ~rounds in
      let _, _, result = run_against_chain ~n ~k ~chain_rounds:rounds ~horizon:rounds in
      Alcotest.(check int)
        (Printf.sprintf "k=%d rounds=%d: k+1 values" k rounds)
        (k + 1) (distinct_live_decisions result))
    [ (1, 1); (1, 2); (1, 4); (2, 1); (2, 3); (3, 2) ]

let one_more_round_restores_agreement () =
  List.iter
    (fun (k, rounds) ->
      let n = Adversary.Lower_bound.required_processes ~k ~rounds in
      let _, _, result =
        run_against_chain ~n ~k ~chain_rounds:rounds ~horizon:(rounds + 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d rounds=%d: ≤ k values at ⌊f/k⌋+1" k rounds)
        true
        (distinct_live_decisions result <= k))
    [ (1, 1); (1, 2); (1, 4); (2, 1); (2, 3); (3, 2) ]

let chain_respects_crash_budget () =
  let adv = Adversary.Lower_bound.build ~n:12 ~k:2 ~rounds:3 in
  Alcotest.(check int) "k·rounds crashes" 6
    (List.length adv.Adversary.Lower_bound.crash_specs);
  (* and the induced execution really satisfies the crash predicate *)
  let pattern = Syncnet.Faults.crash ~n:12 adv.Adversary.Lower_bound.crash_specs in
  let result =
    Syncnet.Sync_net.run ~n:12 ~rounds:4 ~pattern ~stop_when_decided:false
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs:adv.Adversary.Lower_bound.inputs)
      ()
  in
  Alcotest.(check (option string)) "crash predicate holds" None
    (Rrfd.Predicate.explain (Rrfd.Predicate.crash ~f:6)
       result.Syncnet.Sync_net.induced)

let requires_enough_processes () =
  Alcotest.check_raises "too small"
    (Invalid_argument
       "Lower_bound.build: system too small for the chain construction")
    (fun () -> ignore (Adversary.Lower_bound.build ~n:3 ~k:2 ~rounds:1))

let tests =
  [
    Alcotest.test_case "k+1 values at the bound" `Quick
      chain_breaks_agreement_at_the_bound;
    Alcotest.test_case "agreement one round later" `Quick
      one_more_round_restores_agreement;
    Alcotest.test_case "crash budget and predicate" `Quick
      chain_respects_crash_budget;
    Alcotest.test_case "size requirement" `Quick requires_enough_processes;
  ]
