(* Full-information views and the task checkers. *)

module Pset = Rrfd.Pset
module FI = Rrfd.Full_info

let s = Pset.of_list

let view_after rounds detector =
  let inputs = [| 10; 11; 12 |] in
  let states, history =
    Rrfd.Engine.states_after ~n:3 ~rounds
      ~algorithm:(FI.algorithm ~inputs) ~detector ()
  in
  (states, history)

let views_grow_and_track_owner () =
  let states, _ = view_after 2 Rrfd.Detector.none in
  Array.iteri
    (fun i v ->
      Alcotest.(check int) "owner" i (FI.owner v);
      Alcotest.(check int) "depth" 2 (FI.depth v))
    states

let failure_free_views_know_everything () =
  let states, _ = view_after 1 Rrfd.Detector.none in
  Array.iter
    (fun v ->
      Alcotest.(check (list (pair int int)))
        "all inputs known"
        [ (0, 10); (1, 11); (2, 12) ]
        (FI.known_inputs v))
    states

let missed_inputs_stay_unknown () =
  (* p0 never hears p2, directly or indirectly, for two rounds. *)
  let d = [| s [ 2 ]; s [ 2 ]; s [ 0; 1 ] |] in
  let detector = Rrfd.Detector.of_schedule ~after:d [ d ] in
  let states, _ = view_after 2 detector in
  Alcotest.(check bool) "p0 doesn't know p2" false
    (FI.knows_input_of states.(0) 2);
  Alcotest.(check bool) "p0 knows p1" true (FI.knows_input_of states.(0) 1);
  Alcotest.(check bool) "p2 knows itself" true (FI.knows_input_of states.(2) 2)

let relayed_knowledge_propagates () =
  (* Round 1: p1 hears p2.  Round 2: p0 hears p1 (still not p2): p0 now
     knows p2's input through p1's round-1 view. *)
  let r1 = [| s [ 2 ]; s []; s [] |] in
  let r2 = [| s [ 2 ]; s []; s [] |] in
  let detector = Rrfd.Detector.of_schedule [ r1; r2 ] in
  let states, _ = view_after 2 detector in
  Alcotest.(check bool) "p0 learned p2 via p1" true
    (FI.knows_input_of states.(0) 2)

let heard_last_round () =
  let d = [| s [ 1 ]; s []; s [] |] in
  let states, _ = view_after 1 (Rrfd.Detector.of_schedule [ d ]) in
  Alcotest.(check bool) "heard = complement" true
    (Pset.equal (FI.heard_from_last_round states.(0)) (s [ 0; 2 ]))

let view_equality () =
  let states1, _ = view_after 2 Rrfd.Detector.none in
  let states2, _ = view_after 2 Rrfd.Detector.none in
  Alcotest.(check bool) "deterministic equal" true
    (FI.equal states1.(0) states2.(0));
  Alcotest.(check bool) "different owners differ" false
    (FI.equal states1.(0) states1.(1))

let agreement_checker_clauses () =
  let inputs = [| 1; 2; 3 |] in
  Alcotest.(check (option string)) "ok" None
    (Tasks.Agreement.check ~k:2 ~inputs [| Some 1; Some 2; Some 1 |]);
  (match Tasks.Agreement.check ~k:1 ~inputs [| Some 1; Some 2; Some 1 |] with
  | Some m ->
    Alcotest.(check bool) "agreement clause" true
      (String.length m > 0 && String.sub m 0 9 = "agreement")
  | None -> Alcotest.fail "expected agreement violation");
  (match Tasks.Agreement.check ~k:2 ~inputs [| Some 9; Some 2; Some 1 |] with
  | Some m ->
    Alcotest.(check bool) "validity clause" true (String.sub m 0 8 = "validity")
  | None -> Alcotest.fail "expected validity violation");
  (match Tasks.Agreement.check ~k:2 ~inputs [| None; Some 2; Some 1 |] with
  | Some m ->
    Alcotest.(check bool) "termination clause" true
      (String.sub m 0 11 = "termination")
  | None -> Alcotest.fail "expected termination violation");
  Alcotest.(check (option string)) "undecided allowance" None
    (Tasks.Agreement.check
       ~allow_undecided:(Pset.singleton 0)
       ~k:2 ~inputs
       [| None; Some 2; Some 1 |])

let agreement_report () =
  let inputs = [| 1; 2; 3 |] in
  let r = Tasks.Agreement.evaluate ~inputs ~decisions:[| Some 1; None; Some 7 |] in
  Alcotest.(check (list int)) "undecided" [ 1 ] r.Tasks.Agreement.undecided;
  Alcotest.(check (list int)) "distinct" [ 1; 7 ] r.Tasks.Agreement.distinct_values;
  Alcotest.(check (list (pair int int))) "invalid" [ (2, 7) ] r.Tasks.Agreement.invalid;
  Alcotest.(check int) "distinct count" 2
    (Tasks.Agreement.distinct_decisions ~decisions:[| Some 1; None; Some 7 |])

let input_generators () =
  Alcotest.(check (array int)) "distinct" [| 0; 1; 2 |] (Tasks.Inputs.distinct 3);
  Alcotest.(check (array int)) "constant" [| 5; 5 |] (Tasks.Inputs.constant 2 5);
  let rng = Dsim.Rng.create 1 in
  Array.iter
    (fun v -> Alcotest.(check bool) "binary" true (v = 0 || v = 1))
    (Tasks.Inputs.binary rng 20);
  Array.iter
    (fun v -> Alcotest.(check bool) "in universe" true (v >= 0 && v < 5))
    (Tasks.Inputs.random rng ~n:20 ~universe:5)

let tests =
  [
    Alcotest.test_case "views grow" `Quick views_grow_and_track_owner;
    Alcotest.test_case "failure-free knows all" `Quick
      failure_free_views_know_everything;
    Alcotest.test_case "missed inputs unknown" `Quick missed_inputs_stay_unknown;
    Alcotest.test_case "relay propagates" `Quick relayed_knowledge_propagates;
    Alcotest.test_case "heard last round" `Quick heard_last_round;
    Alcotest.test_case "view equality" `Quick view_equality;
    Alcotest.test_case "agreement clauses" `Quick agreement_checker_clauses;
    Alcotest.test_case "agreement report" `Quick agreement_report;
    Alcotest.test_case "input generators" `Quick input_generators;
  ]
