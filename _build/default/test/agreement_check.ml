(* Shared shorthand for the agreement checker in tests. *)

let kset ?allow_undecided ~k ~inputs decisions =
  Tasks.Agreement.check ?allow_undecided ~k ~inputs decisions
