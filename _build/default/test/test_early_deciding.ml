(* Early-deciding synchronous consensus: correctness (non-uniform) and the
   min(f'+2, f+1) decision-round shape. *)

module Pset = Rrfd.Pset

let s = Pset.of_list

let mask_crashed result =
  Array.mapi
    (fun i d ->
      if Pset.mem i result.Syncnet.Sync_net.crashed then None else d)
    result.Syncnet.Sync_net.decisions

let failure_free_decides_in_two_rounds () =
  let n = 6 and f = 4 in
  let inputs = Tasks.Inputs.distinct n in
  let result =
    Syncnet.Sync_net.run ~n ~rounds:(f + 1) ~pattern:(Syncnet.Faults.none ~n)
      ~algorithm:(Syncnet.Early_deciding.algorithm ~inputs ~f)
      ()
  in
  Array.iter
    (fun r -> Alcotest.(check (option int)) "round 2" (Some 2) r)
    result.Syncnet.Sync_net.decision_rounds;
  Alcotest.(check (option string)) "consensus" None
    (Agreement_check.kset ~k:1 ~inputs result.Syncnet.Sync_net.decisions)

let one_crash_decides_by_round_three () =
  let n = 6 and f = 4 in
  let inputs = Tasks.Inputs.distinct n in
  let pattern = Syncnet.Faults.crash ~n [ (0, 1, s [ 1 ]) ] in
  let result =
    Syncnet.Sync_net.run ~n ~rounds:(f + 1) ~pattern
      ~algorithm:(Syncnet.Early_deciding.algorithm ~inputs ~f)
      ()
  in
  Array.iteri
    (fun i r ->
      if not (Pset.mem i result.Syncnet.Sync_net.crashed) then
        match r with
        | Some round ->
          Alcotest.(check bool)
            (Printf.sprintf "p%d decides by f'+2 = 3" i)
            true (round <= 3)
        | None -> Alcotest.failf "p%d undecided" i)
    result.Syncnet.Sync_net.decision_rounds;
  Alcotest.(check (option string)) "consensus among live" None
    (Agreement_check.kset
       ~allow_undecided:result.Syncnet.Sync_net.crashed ~k:1 ~inputs
       (mask_crashed result))

let early_deciding_correct_under_random_crashes =
  QCheck.Test.make
    ~name:"early deciding: non-uniform consensus, decisions by min(f'+2, f+1)"
    ~count:500
    QCheck.(pair (int_range 2 12) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Dsim.Rng.create seed in
      let f = Dsim.Rng.int rng n in
      let inputs = Array.init n (fun i -> (i * 7) mod 4) in
      let pattern = Syncnet.Faults.random_crash rng ~n ~f ~max_round:(f + 1) in
      let result =
        Syncnet.Sync_net.run ~n ~rounds:(f + 1) ~pattern
          ~algorithm:(Syncnet.Early_deciding.algorithm ~inputs ~f)
          ()
      in
      let actual_failures =
        Pset.cardinal (Syncnet.Faults.faulty_processes pattern)
      in
      let bound = min (actual_failures + 2) (f + 1) in
      let rounds_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun i r ->
               Pset.mem i result.Syncnet.Sync_net.crashed
               ||
               match r with Some round -> round <= bound | None -> false)
             result.Syncnet.Sync_net.decision_rounds)
      in
      if not rounds_ok then
        QCheck.Test.fail_reportf "n=%d f=%d f'=%d: decision after round %d" n f
          actual_failures bound
      else
        match
          Agreement_check.kset
            ~allow_undecided:result.Syncnet.Sync_net.crashed ~k:1 ~inputs
            (mask_crashed result)
        with
        | None -> true
        | Some reason -> QCheck.Test.fail_reportf "n=%d f=%d: %s" n f reason)

let chain_adversary_forces_late_decisions () =
  (* Against the E9 chain (k = 1) the early rule cannot fire early: some
     correct process decides only at round f' + 2. *)
  let k = 1 and chain_rounds = 3 in
  let n = Adversary.Lower_bound.required_processes ~k ~rounds:chain_rounds in
  let f = k * chain_rounds in
  let adv = Adversary.Lower_bound.build ~n ~k ~rounds:chain_rounds in
  let pattern = Syncnet.Faults.crash ~n adv.Adversary.Lower_bound.crash_specs in
  let result =
    Syncnet.Sync_net.run ~n ~rounds:(f + 2) ~pattern
      ~algorithm:
        (Syncnet.Early_deciding.algorithm ~inputs:adv.Adversary.Lower_bound.inputs ~f:(f + 1))
      ()
  in
  let latest =
    Array.fold_left
      (fun acc r -> match r with Some round -> max acc round | None -> acc)
      0 result.Syncnet.Sync_net.decision_rounds
  in
  Alcotest.(check bool) "some process decides late" true (latest >= chain_rounds + 1);
  Alcotest.(check (option string)) "still consensus" None
    (Agreement_check.kset
       ~allow_undecided:result.Syncnet.Sync_net.crashed ~k:1
       ~inputs:adv.Adversary.Lower_bound.inputs (mask_crashed result))

let tests =
  [
    Alcotest.test_case "failure-free: 2 rounds" `Quick
      failure_free_decides_in_two_rounds;
    Alcotest.test_case "one crash: ≤ 3 rounds" `Quick
      one_crash_decides_by_round_three;
    Alcotest.test_case "chain adversary forces lateness" `Quick
      chain_adversary_forces_late_decisions;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ early_deciding_correct_under_random_crashes ]
