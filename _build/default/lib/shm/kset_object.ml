type t = {
  k : int;
  rng : Dsim.Rng.t option;
  mutable anchors : int list; (* oldest first *)
  mutable proposals : int;
}

let create ?rng ~k () =
  if k < 1 then invalid_arg "Kset_object.create: k must be ≥ 1";
  { k; rng; anchors = []; proposals = 0 }

let k t = t.k

let anchors t = t.anchors

let proposals_seen t = t.proposals

let propose t v =
  t.proposals <- t.proposals + 1;
  let adversary_says_adopt =
    match t.rng with None -> false | Some rng -> Dsim.Rng.bool rng
  in
  if
    List.length t.anchors < t.k
    && (t.anchors = [] || adversary_says_adopt)
    && not (List.mem v t.anchors)
  then t.anchors <- t.anchors @ [ v ];
  match t.rng with
  | None -> List.hd t.anchors
  | Some rng -> Dsim.Rng.choose rng t.anchors
