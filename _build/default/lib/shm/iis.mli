(** The iterated immediate snapshot model (item 5) as an RRFD.

    Each round is one fresh one-shot immediate snapshot: the fault set
    handed to process [i] is the complement of its view.  Running the
    protocol under adversarial interleavings therefore {e generates}
    histories of the item-5 predicate from real shared-memory executions —
    the "system N implements A" direction of item 5, with the opposite
    direction a corollary of the protocol's output properties. *)

val detector : Dsim.Rng.t -> n:int -> Rrfd.Detector.t
(** A detector whose every round is produced by actually executing the
    participating-set protocol under a random interleaving.  Histories
    satisfy [Rrfd.Predicate.snapshot ~f:(n - 1)] (wait-free). *)

val history : Dsim.Rng.t -> n:int -> rounds:int -> Rrfd.Fault_history.t
(** [history rng ~n ~rounds] materialises a fault history of the model. *)

val steps_per_round : Dsim.Rng.t -> n:int -> int
(** Register operations one round costs under a random interleaving
    (instrumentation for the benchmarks). *)
