let one_round rng ~n =
  let result =
    Immediate_snapshot.run_once ~n ~schedule:(Exec.Random (Dsim.Rng.split rng))
  in
  Immediate_snapshot.to_fault_sets result.Immediate_snapshot.views

let detector rng ~n =
  Rrfd.Detector.make ~name:(Printf.sprintf "iis(n=%d)" n) (fun _history ->
      one_round rng ~n)

let history rng ~n ~rounds =
  let rec go h r =
    if r > rounds then h
    else go (Rrfd.Fault_history.append h (one_round rng ~n)) (r + 1)
  in
  go (Rrfd.Fault_history.empty ~n) 1

let steps_per_round rng ~n =
  let result =
    Immediate_snapshot.run_once ~n ~schedule:(Exec.Random (Dsim.Rng.split rng))
  in
  result.Immediate_snapshot.steps
