(** Safe agreement — the Borowsky–Gafni simulation primitive.

    The paper's Section 4 transfers asynchronous impossibility results
    ([9, 11, 12]) to synchronous lower bounds; those impossibility results
    rest on the BG simulation, whose core primitive is {e safe agreement}:
    agreement and validity of consensus, but termination only if no process
    crashes inside its {e unsafe window}.

    The classic snapshot protocol: a proposer raises its cell to level 1
    (entering the doorway), scans, and either backs off to level 0 (someone
    already reached level 2) or raises to level 2.  Resolution scans until
    no cell is at level 1 and returns the value of the lowest-id level-2
    cell.  A crash strictly inside the doorway (after the level-1 write,
    before the level-2/0 write) can block resolution forever — exactly the
    window the BG simulation works around. *)

type result = {
  decisions : int option array;  (** [None] = blocked or crashed. *)
  stuck : bool array;  (** Processes that crashed inside their doorway. *)
  steps : int;
}

val run :
  inputs:int array ->
  schedule:Exec.strategy ->
  ?stuck_in_doorway:bool array ->
  ?resolve_attempts:int ->
  unit ->
  result
(** One execution among [Array.length inputs] processes.
    [stuck_in_doorway.(i)] makes process [i] crash right after its level-1
    write — the blocking fault.  Live processes retry resolution up to
    [resolve_attempts] (default [8n]) scans.  Guarantees demonstrated by
    the tests: deciders always agree on a proposed value; with no doorway
    crash every live process decides; with one, resolution can block. *)
