(** A linearizable k-set consensus object (the oracle of Theorem 3.3).

    The object accepts proposals and returns, to every caller, a value that
    was proposed no later than the call's linearization point, with at most
    [k] distinct values ever returned.  The adversary (the object's random
    stream) picks {e which} of the eligible anchor values each caller gets,
    so experiments quantify over the object's allowed behaviours rather
    than a single benign one. *)

type t

val create : ?rng:Dsim.Rng.t -> k:int -> unit -> t
(** A fresh object.  Without [rng] the object is deterministic (always
    returns the first anchor). *)

val k : t -> int

val propose : t -> int -> int
(** [propose obj v] registers [v] and returns one of the object's anchor
    values.  The first at most [k] distinct proposals become anchors;
    replies are drawn among current anchors.  Validity: the reply was
    proposed before the reply is issued.  Agreement: at most [k] distinct
    replies over the object's lifetime. *)

val anchors : t -> int list
(** Current anchor values, oldest first (≤ k of them). *)

val proposals_seen : t -> int
