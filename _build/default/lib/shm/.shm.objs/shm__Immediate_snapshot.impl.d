lib/shm/immediate_snapshot.ml: Array Printf Rrfd Snapshot
