lib/shm/thm33.ml: Array Dsim Exec Kset_object Printf Rrfd
