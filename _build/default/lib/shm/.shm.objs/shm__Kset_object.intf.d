lib/shm/kset_object.mli: Dsim
