lib/shm/immediate_snapshot.mli: Exec Rrfd
