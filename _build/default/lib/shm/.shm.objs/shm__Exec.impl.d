lib/shm/exec.ml: Array Dsim Effect List Option Printf
