lib/shm/iis.mli: Dsim Rrfd
