lib/shm/iis.ml: Dsim Exec Immediate_snapshot Printf Rrfd
