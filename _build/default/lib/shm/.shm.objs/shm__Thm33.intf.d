lib/shm/thm33.mli: Dsim Exec Rrfd
