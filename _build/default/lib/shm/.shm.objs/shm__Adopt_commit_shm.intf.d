lib/shm/adopt_commit_shm.mli: Exec Rrfd
