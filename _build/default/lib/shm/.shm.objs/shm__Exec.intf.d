lib/shm/exec.mli: Dsim
