lib/shm/snapshot.mli: Exec
