lib/shm/safe_agreement.mli: Exec
