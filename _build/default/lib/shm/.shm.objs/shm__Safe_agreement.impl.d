lib/shm/safe_agreement.ml: Array Option Snapshot
