lib/shm/kset_object.ml: Dsim List
