lib/shm/snapshot.ml: Array Exec Fun Option
