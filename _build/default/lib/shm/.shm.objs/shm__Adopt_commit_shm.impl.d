lib/shm/adopt_commit_shm.ml: Array Exec Rrfd
