module Pset = Rrfd.Pset

module S = Snapshot.Make (struct
  type t = int (* a process's current level *)
end)

type result = { views : Rrfd.Pset.t array; steps : int }

let run_once ~n ~schedule =
  if n < 1 || n > Pset.max_universe then invalid_arg "Immediate_snapshot: bad n";
  let views = Array.make n Pset.empty in
  let body ~proc =
    let rec descend level =
      S.update ~proc level;
      let levels = S.scan () in
      let at_or_below = ref Pset.empty in
      Array.iteri
        (fun q l ->
          match l with
          | Some lq when lq <= level -> at_or_below := Pset.add q !at_or_below
          | Some _ | None -> ())
        levels;
      if Pset.cardinal !at_or_below >= level then views.(proc) <- !at_or_below
      else descend (level - 1)
    in
    descend n
  in
  let outcome = S.run ~n ~schedule body in
  { views; steps = outcome.S.steps }

let check_views views =
  let n = Array.length views in
  let violation = ref None in
  let report fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  for i = 0 to n - 1 do
    if not (Pset.mem i views.(i)) then report "p%d missing from its own view" i
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        not (Pset.subset views.(i) views.(j) || Pset.subset views.(j) views.(i))
      then report "views of p%d and p%d are incomparable" i j
    done
  done;
  for i = 0 to n - 1 do
    Pset.iter
      (fun j ->
        if not (Pset.subset views.(j) views.(i)) then
          report "immediacy broken: p%d ∈ view of p%d but V_%d ⊄ V_%d" j i j i)
      views.(i)
  done;
  !violation

let to_fault_sets views =
  let n = Array.length views in
  Array.map (fun v -> Pset.diff (Pset.full n) v) views
