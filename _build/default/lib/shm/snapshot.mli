(** Wait-free atomic snapshots from SWMR registers.

    The Afek–Attiya–Dolev–Gafni–Merritt–Shavit construction: each process
    owns one segment; {!Make.update} writes (value, sequence number,
    embedded scan); {!Make.scan} repeatedly double-collects and either
    returns a clean double collect (two identical collects form a
    linearizable snapshot) or, after seeing some process move twice, borrows
    that process's embedded scan — which was itself obtained entirely inside
    the scanner's interval.  Both operations are wait-free.

    This is the substrate behind item 5's model: the iterated
    immediate-snapshot protocol ({!Immediate_snapshot}) runs its collects
    through these scans. *)

module Make (V : sig
  type t
end) : sig
  type outcome = { steps : int; steps_per_process : int array }

  val run : n:int -> schedule:Exec.strategy -> (proc:int -> unit) -> outcome
  (** [run ~n ~schedule body] executes [body ~proc:p] for each process over
      one fresh [n]-segment snapshot object, interleaving register steps
      according to [schedule].  Not reentrant: one run at a time. *)

  val update : proc:int -> V.t -> unit
  (** Replace the calling process's segment.  Wait-free, linearizable.
      Only valid inside a {!run} body. *)

  val scan : unit -> V.t option array
  (** A linearizable snapshot of all segments ([None] = never written).
      Only valid inside a {!run} body. *)

  val collects_performed : unit -> int
  (** Total low-level collects executed so far in the current run
      (instrumentation for the benchmarks). *)
end
