module Pset = Rrfd.Pset

module E = Exec.Make (struct
  type t = int
end)

type result = {
  fault_sets : Rrfd.Pset.t array;
  chosen : int array;
  values_readable : bool;
  steps : int;
}

let one_round ?rng ~n ~k ~schedule () =
  if n < 1 || n > Pset.max_universe then invalid_arg "Thm33.one_round: bad n";
  let obj = Kset_object.create ?rng ~k () in
  let fault_sets = Array.make n Pset.empty in
  let chosen = Array.make n (-1) in
  let readable = ref true in
  (* Locations: [0, n) value cells, [n, 2n) choice cells. *)
  let owner loc = loc mod n in
  let body ~proc =
    E.write proc (1000 + proc);
    let j = Kset_object.propose obj proc in
    chosen.(proc) <- j;
    E.write (n + proc) j;
    let q = ref Pset.empty in
    for c = 0 to n - 1 do
      match E.read (n + c) with
      | Some id -> q := Pset.add id !q
      | None -> ()
    done;
    Pset.iter
      (fun id -> if E.read id = None then readable := false)
      !q;
    fault_sets.(proc) <- Pset.diff (Pset.full n) !q
  in
  let outcome = E.run ~enforce_swmr:owner ~n_procs:n ~n_locs:(2 * n) ~schedule body in
  {
    fault_sets;
    chosen;
    values_readable = !readable;
    steps = outcome.E.steps;
  }

let detector rng ~n ~k =
  Rrfd.Detector.make ~name:(Printf.sprintf "thm33(n=%d,k=%d)" n k)
    (fun _history ->
      let r =
        one_round ~rng:(Dsim.Rng.split rng) ~n ~k
          ~schedule:(Exec.Random (Dsim.Rng.split rng)) ()
      in
      r.fault_sets)
