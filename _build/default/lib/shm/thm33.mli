(** Theorem 3.3: k-set consensus plus SWMR memory implements the k-set
    RRFD.

    The construction, per round: process [i] (1) writes its emitted value to
    its value cell, (2) proposes its identifier to a k-set consensus object
    and receives an identifier [j], (3) writes [j] to its choice cell,
    (4) collects all choice cells; [Q_i] is the set of identifiers read and
    the fault set is [D(i) = S − Q_i].  Fault sets can differ only on the
    at most [k] chosen identifiers, and all contain the identifier whose
    choice cell was written first, so [|⋃D − ⋂D| ≤ k − 1 < k] — predicate
    of Section 3.  Every member of [Q_i] wrote its value cell before its
    choice cell, so the emitted values of unsuspected processes are
    readable. *)

type result = {
  fault_sets : Rrfd.Pset.t array;  (** [D(i)] per process. *)
  chosen : int array;  (** Identifier each process got from the object. *)
  values_readable : bool;
      (** Whether every collected identifier's value cell was readable —
          the theorem's side condition (always true). *)
  steps : int;
}

val one_round :
  ?rng:Dsim.Rng.t -> n:int -> k:int -> schedule:Exec.strategy -> unit -> result
(** Execute one round of the construction under the given interleaving,
    with a fresh adversarial k-set object. *)

val detector : Dsim.Rng.t -> n:int -> k:int -> Rrfd.Detector.t
(** An RRFD adversary whose rounds are produced by actually running the
    construction — histories satisfy [Rrfd.Predicate.k_set ~k]. *)
