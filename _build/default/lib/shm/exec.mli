(** Cooperative step-level executor for shared-memory algorithms.

    Shared-memory protocols are sensitive to the {e interleaving} of
    individual register operations, so this substrate runs each process as a
    lightweight fiber (OCaml 5 effect handlers) and lets an adversarial
    scheduler choose, at every step, which process's next register operation
    executes.  Each {!Make.read} or {!Make.write} of a single location is
    one atomic step — the granularity at which SWMR registers are atomic.

    The memory is a flat array of locations holding values of the functor
    parameter type; the SWMR discipline (each location written by one
    process) is the caller's convention, checked when [enforce_swmr] is
    set. *)

(** Scheduling strategies. *)
type strategy =
  | Round_robin  (** Cycle through runnable processes in id order. *)
  | Random of Dsim.Rng.t  (** Uniform runnable process each step. *)
  | Fixed of int list
      (** Explicit process sequence; when exhausted (or the named process is
          blocked/finished) falls back to round-robin.  Lets tests pin exact
          interleavings. *)

module Make (V : sig
  type t
end) : sig
  val read : int -> V.t option
  (** [read loc] atomically reads location [loc] ([None] if never written).
      Must be called from inside a program run by {!run}. *)

  val write : int -> V.t -> unit
  (** [write loc v] atomically writes [v].  Must be called from inside a
      program run by {!run}. *)

  type outcome = {
    steps : int;  (** Total register operations executed. *)
    steps_per_process : int array;
    killed_flags : bool array;  (** Processes crashed via [kill_after]. *)
  }

  val run :
    ?enforce_swmr:(int -> int) ->
    ?kill_after:int option array ->
    n_procs:int ->
    n_locs:int ->
    schedule:strategy ->
    (proc:int -> unit) ->
    outcome
  (** [run ~n_procs ~n_locs ~schedule body] starts [body ~proc:i] as a fiber
      for each process and interleaves their register operations until all
      terminate.  [enforce_swmr loc] gives the owner of each location; a
      write by any other process raises [Invalid_argument].

      [kill_after.(i) = Some k] crashes process [i] after its [k]-th
      register operation: its pending operation is discarded and it never
      runs again — the asynchronous-crash model at step granularity, used
      by the safe-agreement experiments.

      Programs must not perform effects other than {!read}/{!write} and
      must terminate (the executor runs to quiescence). *)

  val killed : outcome -> bool array
  (** Which processes were crashed by [kill_after]. *)
end
