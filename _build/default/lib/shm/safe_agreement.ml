type cell = { value : int; level : int }

module S = Snapshot.Make (struct
  type t = cell
end)

type result = {
  decisions : int option array;
  stuck : bool array;
  steps : int;
}

let resolve_from ~n snapshot =
  let doorway_open =
    Array.exists
      (function Some { level = 1; _ } -> true | Some _ | None -> false)
      snapshot
  in
  if doorway_open then None
  else
    (* lowest-id level-2 cell, if any *)
    let rec find i =
      if i >= n then None
      else
        match snapshot.(i) with
        | Some { level = 2; value } -> Some value
        | Some _ | None -> find (i + 1)
    in
    find 0

let run ~inputs ~schedule ?stuck_in_doorway ?resolve_attempts () =
  let n = Array.length inputs in
  if n < 1 then invalid_arg "Safe_agreement.run: no processes";
  let stuck =
    match stuck_in_doorway with
    | Some flags ->
      if Array.length flags <> n then
        invalid_arg "Safe_agreement.run: stuck array length mismatch";
      Array.copy flags
    | None -> Array.make n false
  in
  let attempts = Option.value resolve_attempts ~default:(8 * n) in
  let decisions = Array.make n None in
  let body ~proc =
    let v = inputs.(proc) in
    S.update ~proc { value = v; level = 1 };
    if not stuck.(proc) then begin
      let snap = S.scan () in
      let someone_committed =
        Array.exists
          (function Some { level = 2; _ } -> true | Some _ | None -> false)
          snap
      in
      S.update ~proc { value = v; level = (if someone_committed then 0 else 2) };
      let rec resolve attempt =
        if attempt < attempts && Option.is_none decisions.(proc) then begin
          (match resolve_from ~n (S.scan ()) with
          | Some value -> decisions.(proc) <- Some value
          | None -> ());
          resolve (attempt + 1)
        end
      in
      resolve 0
    end
  in
  let outcome = S.run ~n ~schedule body in
  { decisions; stuck; steps = outcome.S.steps }
