(** The register-based adopt-commit protocol, verbatim from Section 4.2.

    Two arrays of SWMR registers [C·,1] and [C·,2]: a process writes its
    proposal, collects the first array, writes "commit v" if it saw only
    [v] (else "adopt own"), collects the second array, and resolves.
    Wait-free for any interleaving of register steps; the experiments sweep
    random and targeted schedules and check the adopt-commit specification
    ({!Rrfd.Adopt_commit.check_outcomes}) on every run. *)

type result = {
  outcomes : int Rrfd.Adopt_commit.outcome array;
  steps : int;
}

val run : inputs:int array -> schedule:Exec.strategy -> result
(** One wait-free execution among [Array.length inputs] processes. *)
