module Make (V : sig
  type t
end) =
struct
  type cell = { value : V.t; seq : int; embedded : V.t option array }

  module E = Exec.Make (struct
    type t = cell
  end)

  type outcome = { steps : int; steps_per_process : int array }

  (* One run at a time; [run] installs the segment count. *)
  let current_n = ref 0

  let collects = ref 0

  let collects_performed () = !collects

  let collect () =
    let n = !current_n in
    incr collects;
    Array.init n (fun q -> E.read q)

  let same_seq a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x.seq = y.seq
    | None, Some _ | Some _, None -> false

  let values c = Array.map (Option.map (fun cell -> cell.value)) c

  let scan () =
    let n = !current_n in
    if n = 0 then invalid_arg "Snapshot.scan: not inside a run";
    let moved = Array.make n 0 in
    let rec attempt () =
      let c1 = collect () in
      let c2 = collect () in
      let clean = ref true in
      for q = 0 to n - 1 do
        if not (same_seq c1.(q) c2.(q)) then begin
          clean := false;
          moved.(q) <- moved.(q) + 1
        end
      done;
      if !clean then values c2
      else
        (* A process seen moving twice performed a whole update — and hence
           a whole embedded scan — inside our interval: borrow it. *)
        let borrowable = ref None in
        for q = 0 to n - 1 do
          if !borrowable = None && moved.(q) >= 2 then
            match c2.(q) with
            | Some cell -> borrowable := Some cell.embedded
            | None -> ()
        done;
        match !borrowable with Some view -> Array.copy view | None -> attempt ()
    in
    attempt ()

  let update ~proc v =
    let n = !current_n in
    if n = 0 then invalid_arg "Snapshot.update: not inside a run";
    let embedded = scan () in
    let seq = match E.read proc with Some c -> c.seq + 1 | None -> 1 in
    E.write proc { value = v; seq; embedded }

  let run ~n ~schedule body =
    current_n := n;
    collects := 0;
    Fun.protect
      ~finally:(fun () -> current_n := 0)
      (fun () ->
        let o =
          E.run ~enforce_swmr:Fun.id ~n_procs:n ~n_locs:n ~schedule body
        in
        { steps = o.E.steps; steps_per_process = o.E.steps_per_process })
end
