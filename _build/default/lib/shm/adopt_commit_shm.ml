module Ac = Rrfd.Adopt_commit

type cell = First of int | Second of int Ac.vote

module E = Exec.Make (struct
  type t = cell
end)

type result = { outcomes : int Ac.outcome array; steps : int }

let run ~inputs ~schedule =
  let n = Array.length inputs in
  if n < 1 then invalid_arg "Adopt_commit_shm.run: no processes";
  let outcomes = Array.make n (Ac.Adopt min_int) in
  (* Locations: [0, n) first-round cells, [n, 2n) second-round cells. *)
  let owner loc = loc mod n in
  let collect base extract =
    let seen = ref [] in
    for c = n - 1 downto 0 do
      match E.read (base + c) with
      | Some cell -> seen := extract cell :: !seen
      | None -> ()
    done;
    !seen
  in
  let body ~proc =
    let own = inputs.(proc) in
    E.write proc (First own);
    let seen1 =
      collect 0 (function First v -> v | Second _ -> assert false)
    in
    let vote = Ac.propose ~own ~seen:seen1 in
    E.write (n + proc) (Second vote);
    let seen2 =
      collect n (function Second v -> v | First _ -> assert false)
    in
    outcomes.(proc) <- Ac.resolve ~own ~seen:seen2
  in
  let outcome = E.run ~enforce_swmr:owner ~n_procs:n ~n_locs:(2 * n) ~schedule body in
  { outcomes; steps = outcome.E.steps }
