(** The item-3 construction: asynchronous message passing implements the
    f-resilient RRFD.

    Each process simulates rounds on top of the raw network by tagging
    messages with round numbers, buffering messages that arrive early,
    discarding messages that arrive late, and completing round [r] as soon
    as it holds at least [n − f] round-[r] messages.  The fault set
    [D(i,r)] is the set of senders whose round-[r] message had not arrived
    at completion time — by construction [|D(i,r)| ≤ f], which is exactly
    predicate (3).  The experiments re-check that the induced history
    satisfies it. *)

type 'out result = {
  decisions : 'out option array;
  induced : Rrfd.Fault_history.t;
      (** Derived fault history over the requested number of rounds.  Slots
          of rounds a (crashed) process never completed hold the empty set;
          [completed] says how far each process got. *)
  completed : int array;  (** Rounds completed by each process. *)
  crashed : Rrfd.Pset.t;
  messages_sent : int;
  virtual_time : float;  (** Simulated time at which the run drained. *)
}

val run :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?crashes:(Rrfd.Proc.t * float) list ->
  n:int ->
  f:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Rrfd.Algorithm.t ->
  unit ->
  'out result
(** [run ~n ~f ~rounds ~algorithm ()] executes [algorithm] for [rounds]
    simulated rounds over the asynchronous network.  [crashes] lists
    processes and the virtual times at which they crash (at most [f] of
    them, or the waiting rule could block the survivors).
    @raise Invalid_argument if more than [f] crashes are requested. *)
