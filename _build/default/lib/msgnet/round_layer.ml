module Pset = Rrfd.Pset

type 'out result = {
  decisions : 'out option array;
  induced : Rrfd.Fault_history.t;
  completed : int array;
  crashed : Rrfd.Pset.t;
  messages_sent : int;
  virtual_time : float;
}

type ('s, 'm) proc = {
  mutable state : 's;
  mutable current_round : int; (* round currently being collected *)
  buffers : (int, 'm option array) Hashtbl.t;
  mutable fault_sets : Pset.t list; (* D(i, r) for completed rounds, newest first *)
  mutable done_ : bool;
}

let buffer_for proc ~n round =
  match Hashtbl.find_opt proc.buffers round with
  | Some b -> b
  | None ->
    let b = Array.make n None in
    Hashtbl.replace proc.buffers round b;
    b

let run ?(seed = 0) ?min_delay ?max_delay ?(crashes = []) ~n ~f ~rounds
    ~algorithm () =
  if f < 0 || f >= n then invalid_arg "Round_layer.run: need 0 ≤ f < n";
  if List.length crashes > f then
    invalid_arg "Round_layer.run: more crashes than the resilience bound";
  let open Rrfd.Algorithm in
  let sim = Dsim.Sim.create ~seed () in
  let procs =
    Array.init n (fun i ->
        {
          state = algorithm.init ~n i;
          current_round = 1;
          buffers = Hashtbl.create 16;
          fault_sets = [];
          done_ = false;
        })
  in
  let network = ref None in
  let net () = Option.get !network in
  let emit_round i round =
    let msg = algorithm.emit procs.(i).state ~round in
    Network.broadcast (net ()) ~from:i (round, msg)
  in
  (* Complete as many consecutive rounds as the buffers allow. *)
  let rec try_complete i =
    let proc = procs.(i) in
    if not proc.done_ then begin
      let round = proc.current_round in
      let buffer = buffer_for proc ~n round in
      let received_count =
        Array.fold_left (fun c m -> if Option.is_some m then c + 1 else c) 0 buffer
      in
      if received_count >= n - f then begin
        let faulty =
          Pset.filter (fun j -> Option.is_none buffer.(j)) (Pset.full n)
        in
        proc.state <-
          algorithm.deliver proc.state ~round ~received:(Array.copy buffer)
            ~faulty;
        proc.fault_sets <- faulty :: proc.fault_sets;
        Hashtbl.remove proc.buffers round;
        proc.current_round <- round + 1;
        if round + 1 > rounds then proc.done_ <- true
        else begin
          emit_round i (round + 1);
          try_complete i
        end
      end
    end
  in
  let deliver _sim ~to_ ~from (round, msg) =
    let proc = procs.(to_) in
    if (not proc.done_) && round >= proc.current_round then begin
      let buffer = buffer_for proc ~n round in
      (* Duplicate-free by construction: one message per (sender, round). *)
      buffer.(from) <- Some msg;
      if round = proc.current_round then try_complete to_
    end
  in
  network := Some (Network.create ~sim ~n ?min_delay ?max_delay ~deliver ());
  List.iter
    (fun (p, time) ->
      Dsim.Sim.schedule_at sim ~time (fun _ -> Network.crash (net ()) p))
    crashes;
  for i = 0 to n - 1 do
    emit_round i 1
  done;
  Dsim.Sim.run sim;
  let completed = Array.map (fun p -> List.length p.fault_sets) procs in
  let max_completed = Array.fold_left max 0 completed in
  let per_proc =
    Array.map (fun p -> Array.of_list (List.rev p.fault_sets)) procs
  in
  let induced =
    Rrfd.Fault_history.of_rounds ~n
      (List.init max_completed (fun r ->
           Array.init n (fun i ->
               if r < Array.length per_proc.(i) then per_proc.(i).(r)
               else Pset.empty)))
  in
  let decisions = Array.map (fun p -> algorithm.decide p.state) procs in
  {
    decisions;
    induced;
    completed;
    crashed = Network.crashed (net ());
    messages_sent = Network.messages_sent (net ());
    virtual_time = Dsim.Sim.now sim;
  }
