module Pset = Rrfd.Pset

type 'msg t = {
  sim : Dsim.Sim.t;
  n : int;
  min_delay : float;
  max_delay : float;
  deliver : Dsim.Sim.t -> to_:Rrfd.Proc.t -> from:Rrfd.Proc.t -> 'msg -> unit;
  mutable crashed : Pset.t;
  mutable sent : int;
  mutable delivered : int;
}

let create ~sim ~n ?(min_delay = 1.0) ?(max_delay = 10.0) ~deliver () =
  if n < 1 || n > Pset.max_universe then invalid_arg "Network.create: bad n";
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Network.create: bad delay bounds";
  { sim; n; min_delay; max_delay; deliver; crashed = Pset.empty; sent = 0; delivered = 0 }

let n t = t.n

let pick_delay t =
  t.min_delay +. Dsim.Rng.float (Dsim.Sim.rng t.sim) (t.max_delay -. t.min_delay)

let send t ~from ~to_ ?delay msg =
  if to_ < 0 || to_ >= t.n || from < 0 || from >= t.n then
    invalid_arg "Network.send: process out of range";
  if not (Pset.mem from t.crashed) then begin
    let delay = match delay with Some d -> d | None -> pick_delay t in
    t.sent <- t.sent + 1;
    Dsim.Sim.schedule t.sim ~delay (fun sim ->
        if not (Pset.mem to_ t.crashed) then begin
          t.delivered <- t.delivered + 1;
          t.deliver sim ~to_ ~from msg
        end)
  end

let broadcast t ~from ?(self = true) msg =
  for to_ = 0 to t.n - 1 do
    if self || not (Rrfd.Proc.equal to_ from) then send t ~from ~to_ msg
  done

let crash t p =
  if p < 0 || p >= t.n then invalid_arg "Network.crash: process out of range";
  t.crashed <- Pset.add p t.crashed

let crashed t = t.crashed

let messages_sent t = t.sent

let messages_delivered t = t.delivered
