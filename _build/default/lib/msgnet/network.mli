(** Asynchronous point-to-point network on the discrete-event simulator.

    Messages are delivered after adversarially chosen finite delays (drawn
    from the simulator's random stream within configurable bounds, or
    overridden per send).  Processes can crash: a crashed process sends
    nothing further, and messages already in flight {e from} it are still
    delivered — the standard asynchronous crash model.  Delivery is not
    FIFO unless the delay bounds make it so. *)

type 'msg t
(** A network carrying messages of type ['msg] between [n] processes. *)

val create :
  sim:Dsim.Sim.t ->
  n:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  deliver:(Dsim.Sim.t -> to_:Rrfd.Proc.t -> from:Rrfd.Proc.t -> 'msg -> unit) ->
  unit ->
  'msg t
(** [create ~sim ~n ~deliver ()] builds a network whose per-message delays
    are uniform in [\[min_delay, max_delay\]] (defaults 1.0 and 10.0);
    [deliver] is invoked at the receiver's delivery time.  Messages to
    crashed processes are silently dropped. *)

val n : _ t -> int

val send : 'msg t -> from:Rrfd.Proc.t -> to_:Rrfd.Proc.t -> ?delay:float -> 'msg -> unit
(** Queue one message.  No-op if the sender has crashed. *)

val broadcast : 'msg t -> from:Rrfd.Proc.t -> ?self:bool -> 'msg -> unit
(** Send to every process, including the sender itself when [self] (default
    true); each copy gets an independent delay. *)

val crash : 'msg t -> Rrfd.Proc.t -> unit
(** Crash a process: it sends nothing from now on and receives nothing. *)

val crashed : 'msg t -> Rrfd.Pset.t

val messages_sent : _ t -> int

val messages_delivered : _ t -> int
