lib/msgnet/round_layer.ml: Array Dsim Hashtbl List Network Option Rrfd
