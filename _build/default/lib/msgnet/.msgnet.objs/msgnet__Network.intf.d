lib/msgnet/network.mli: Dsim Rrfd
