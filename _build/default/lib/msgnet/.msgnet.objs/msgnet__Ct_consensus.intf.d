lib/msgnet/ct_consensus.mli: Rrfd
