lib/msgnet/network.ml: Dsim Rrfd
