lib/msgnet/abd.mli: Dsim Rrfd
