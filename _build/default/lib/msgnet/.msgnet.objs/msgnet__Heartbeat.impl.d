lib/msgnet/heartbeat.ml: Array Dsim Rrfd
