lib/msgnet/ct_consensus.ml: Array Dsim Hashtbl Heartbeat List Network Option Rrfd
