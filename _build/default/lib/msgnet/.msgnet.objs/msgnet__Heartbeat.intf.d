lib/msgnet/heartbeat.mli: Dsim Rrfd
