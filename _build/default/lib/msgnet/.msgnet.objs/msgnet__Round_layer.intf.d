lib/msgnet/round_layer.mli: Rrfd
