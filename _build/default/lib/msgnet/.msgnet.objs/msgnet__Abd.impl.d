lib/msgnet/abd.ml: Array Dsim Hashtbl List Network Option Printf Rrfd
