(** A Θ(n)-step baseline for semi-synchronous consensus.

    Stand-in for the 2n-step algorithm that Dolev–Dwork–Stockmeyer gave and
    whose round complexity the paper's Section 5 improves to 2 steps: the
    value of [p_0] is relayed around the identifier ring — [p_j] broadcasts
    hop [j] after seeing hop [j − 1], and no earlier than its own
    [(j + 1)]-th step, mirroring the phase structure of the original
    algorithm — and a process decides when it sees hop [n − 1].  Under
    uniform speeds every process takes Θ(n) of its own steps before
    deciding.  Failure-free runs only; the comparison of interest is the
    step count's growth with [n] against the flat 2 of {!Two_step}. *)

val run :
  n:int -> inputs:int array -> schedule:Machine.schedule -> Machine.result
(** Run the ring relay.  All processes decide [inputs.(0)]. *)
