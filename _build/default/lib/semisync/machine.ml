module Pset = Rrfd.Pset

type schedule =
  | Round_robin
  | Random of Dsim.Rng.t
  | Fixed_then_round_robin of int list

type ('s, 'm) program = {
  name : string;
  init : n:int -> Rrfd.Proc.t -> 's;
  step : 's -> inbox:(Rrfd.Proc.t * 'm) list -> 's * 'm option;
  decide : 's -> int option;
}

type result = {
  decisions : int option array;
  steps_to_decide : int option array;
  total_steps : int;
  crashed : Rrfd.Pset.t;
}

let run ~n ~schedule ?(max_steps_per_process = 64) ?(crashes = []) program =
  if n < 1 || n > Pset.max_universe then invalid_arg "Machine.run: bad n";
  let states = Array.init n (fun i -> program.init ~n i) in
  let inboxes = Array.make n [] in
  (* newest first; reversed on receipt *)
  let steps = Array.make n 0 in
  let decisions = Array.make n None in
  let steps_to_decide = Array.make n None in
  let crash_at = Array.make n max_int in
  List.iter
    (fun (p, s) ->
      if p < 0 || p >= n then invalid_arg "Machine.run: crash proc out of range";
      if s < 1 then invalid_arg "Machine.run: crash step must be ≥ 1";
      crash_at.(p) <- s)
    crashes;
  let crashed p = steps.(p) + 1 >= crash_at.(p) in
  let live_undone p =
    (not (crashed p))
    && steps.(p) < max_steps_per_process
    && Option.is_none decisions.(p)
  in
  let total = ref 0 in
  let execute p =
    let inbox = List.rev inboxes.(p) in
    inboxes.(p) <- [];
    let state, broadcast = program.step states.(p) ~inbox in
    states.(p) <- state;
    steps.(p) <- steps.(p) + 1;
    incr total;
    (match broadcast with
    | None -> ()
    | Some m ->
      for q = 0 to n - 1 do
        inboxes.(q) <- (p, m) :: inboxes.(q)
      done);
    if Option.is_none decisions.(p) then begin
      match program.decide states.(p) with
      | None -> ()
      | Some v ->
        decisions.(p) <- Some v;
        steps_to_decide.(p) <- Some steps.(p)
    end
  in
  let runnable () =
    let ready = ref [] in
    for p = n - 1 downto 0 do
      if live_undone p then ready := p :: !ready
    done;
    !ready
  in
  let rec drive ~rr_next ~script =
    match runnable () with
    | [] -> ()
    | ready ->
      let pick_rr () =
        let rec find i =
          let candidate = (rr_next + i) mod n in
          if List.mem candidate ready then candidate else find (i + 1)
        in
        find 0
      in
      let p, script =
        match (schedule, script) with
        | Round_robin, _ -> (pick_rr (), script)
        | Random rng, _ -> (Dsim.Rng.choose rng ready, script)
        | Fixed_then_round_robin _, q :: rest when List.mem q ready -> (q, rest)
        | Fixed_then_round_robin _, _ :: rest -> (pick_rr (), rest)
        | Fixed_then_round_robin _, [] -> (pick_rr (), [])
      in
      execute p;
      drive ~rr_next:((p + 1) mod n) ~script
  in
  let script =
    match schedule with
    | Fixed_then_round_robin s -> s
    | Round_robin | Random _ -> []
  in
  drive ~rr_next:0 ~script;
  let crashed_set =
    Pset.filter (fun p -> crash_at.(p) <> max_int) (Pset.full n)
  in
  { decisions; steps_to_decide; total_steps = !total; crashed = crashed_set }
